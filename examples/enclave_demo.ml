(* Enclave demo: Keystone-style enclaves on Miralis (paper §5.3).

   Creates an enclave from a staged application image, runs it to
   completion (riding out a timer interruption and resume), verifies
   the computed checksum, and shows that the enclave's memory is
   scrubbed on destroy — all with the vendor firmware *outside* the
   TCB, which is the paper's improvement over stock Keystone.

     dune exec examples/enclave_demo.exe *)

module Script = Mir_kernel.Script
module Platform = Mir_platform.Platform
module Machine = Mir_rv.Machine
module Monitor = Miralis.Monitor
module Keystone = Mir_policies.Policy_keystone
module Uapp = Mir_kernel.Uapp

let vf2 = Platform.visionfive2
let enclave_base = 0x80800000L
let iters = 30_000L

let () =
  print_endline "Keystone enclaves as a Miralis policy module\n";
  let policy, state = Keystone.create () in
  let m = Machine.create vf2.Platform.machine in
  Machine.load_program m Mir_firmware.Layout.fw_base
    (fst
       (Mir_firmware.Minisbi.image ~nharts:4
          ~kernel_entry:Mir_kernel.Interp_kernel.entry));
  Machine.load_program m Mir_kernel.Interp_kernel.entry
    (fst (Mir_kernel.Interp_kernel.image ()));
  let config =
    Miralis.Config.make ~policy_pmp_slots:Keystone.pmp_slots
      ~cost:vf2.Platform.cost ~machine:vf2.Platform.machine ()
  in
  let mir = Monitor.create ~policy config m in
  Monitor.boot mir ~fw_entry:Mir_firmware.Layout.fw_base;
  (* Stage the enclave application and its descriptor. *)
  Machine.load_program m enclave_base (Uapp.image ~base:enclave_base ~iters);
  Script.write_descriptor m ~index:0 ~base:enclave_base ~size:4096L
    ~entry:enclave_base;
  (* The host kernel arms a timer (so the enclave gets interrupted and
     resumed) and runs one full enclave lifecycle. *)
  Script.write m ~hart:0
    [ Script.Set_timer 400L; Script.Enclave_round 0L; Script.End ];
  for h = 1 to 3 do
    Script.write m ~hart:h [ Script.Halt ]
  done;
  Machine.run ~max_instrs:20_000_000L m;
  let result = Script.result_value m ~hart:0 in
  let expected = Uapp.expected_checksum ~iters in
  Printf.printf "enclave entries (incl. resumes): %d\n"
    state.Keystone.entries_count;
  Printf.printf "enclave exits:                   %d\n" state.Keystone.exits_count;
  Printf.printf "timer ticks taken by the OS:     %Ld\n"
    (Script.sti_count m ~hart:0);
  Printf.printf "enclave checksum: %Lx (expected %Lx) %s\n" result expected
    (if result = expected then "OK" else "MISMATCH");
  let after_destroy = Option.get (Machine.phys_load m enclave_base 8) in
  Printf.printf "enclave memory after destroy: %Lx %s\n" after_destroy
    (if after_destroy = 0L then "(scrubbed)" else "(LEAKED)");
  print_endline
    "\nThe enclave survived an interrupt+resume and its memory was \
     protected from the OS and the firmware throughout."
