(* Confidential-VM demo: the ACE policy (paper §5.4).

   The host "hypervisor" promotes a staged guest into a confidential
   VM over the COVH-style interface, schedules it with run_vcpu
   (resuming across an interrupt-induced exit), and destroys it. The
   CVM's memory is inaccessible to the host *and* to the vendor
   firmware — the firmware is outside the TCB, unlike stock ACE.

     dune exec examples/cvm_demo.exe *)

module Script = Mir_kernel.Script
module Platform = Mir_platform.Platform
module Machine = Mir_rv.Machine
module Monitor = Miralis.Monitor
module Ace = Mir_policies.Policy_ace
module Uapp = Mir_kernel.Uapp

let platform = Platform.qemu_virt
let cvm_base = 0x80800000L
let iters = 20_000L

let () =
  print_endline "Confidential VMs via the ACE policy (on qemu-virt, as in \
                 the paper)\n";
  let policy, state = Ace.create () in
  let m = Machine.create platform.Platform.machine in
  Machine.load_program m Mir_firmware.Layout.fw_base
    (fst
       (Mir_firmware.Minisbi.image ~nharts:4
          ~kernel_entry:Mir_kernel.Interp_kernel.entry));
  Machine.load_program m Mir_kernel.Interp_kernel.entry
    (fst (Mir_kernel.Interp_kernel.image ()));
  let config =
    Miralis.Config.make ~policy_pmp_slots:Ace.pmp_slots
      ~cost:platform.Platform.cost ~machine:platform.Platform.machine ()
  in
  let mir = Monitor.create ~policy config m in
  Monitor.boot mir ~fw_entry:Mir_firmware.Layout.fw_base;
  ignore mir;
  Machine.load_program m cvm_base (Uapp.image ~base:cvm_base ~iters);
  Script.write_descriptor m ~index:0 ~base:cvm_base ~size:4096L
    ~entry:cvm_base;
  Script.write m ~hart:0
    [ Script.Set_timer 500L; Script.Cvm_round 0L; Script.End ];
  for h = 1 to 3 do
    Script.write m ~hart:h [ Script.Halt ]
  done;
  Machine.run ~max_instrs:20_000_000L m;
  let result = Script.result_value m ~hart:0 in
  let expected = Uapp.expected_checksum ~iters in
  Printf.printf "vCPU entries (incl. resumes): %d\n" state.Ace.vcpu_entries;
  Printf.printf "VM exits:                     %d\n" state.Ace.vm_exits;
  Printf.printf "guest result: %Lx (expected %Lx) %s\n" result expected
    (if result = expected then "OK" else "MISMATCH");
  Printf.printf "CVM memory after destroy: %Lx (scrubbed)\n"
    (Option.get (Machine.phys_load m cvm_base 8));
  print_endline
    "\nThe host scheduled the CVM but never saw its memory; neither did \
     the virtualized firmware."
