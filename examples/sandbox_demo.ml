(* Sandbox demo: malicious firmware vs. the firmware sandbox policy.

   Boots each attack firmware from the evil suite under Miralis with
   the sandbox policy (paper §5.2) and shows every attack being
   stopped: reading/writing OS memory, reading Miralis's own memory,
   escaping through the virtual PMP, and DMA exfiltration through the
   block device.

     dune exec examples/sandbox_demo.exe *)

module Script = Mir_kernel.Script
module Platform = Mir_platform.Platform
module Machine = Mir_rv.Machine
module Monitor = Miralis.Monitor
module Sandbox = Mir_policies.Policy_sandbox

let vf2 = Platform.visionfive2

let boot_with ~firmware =
  let policy, state = Sandbox.create () in
  let m = Machine.create vf2.Platform.machine in
  ignore (Machine.attach_blockdev m ~capacity_sectors:256 ~latency_ticks:50L);
  let fw, _ = firmware ~nharts:4 ~kernel_entry:Mir_kernel.Interp_kernel.entry in
  Machine.load_program m Mir_firmware.Layout.fw_base fw;
  Machine.load_program m Mir_kernel.Interp_kernel.entry
    (fst (Mir_kernel.Interp_kernel.image ()));
  let config =
    Miralis.Config.make ~policy_pmp_slots:Sandbox.pmp_slots
      ~cost:vf2.Platform.cost ~machine:vf2.Platform.machine ()
  in
  let mir = Monitor.create ~policy config m in
  Monitor.boot mir ~fw_entry:Mir_firmware.Layout.fw_base;
  (m, mir, state)

let provoke m =
  (* any SBI call from the OS triggers the staged attack *)
  Script.write m ~hart:0 [ Script.Putchar 'A'; Script.End ];
  for h = 1 to 3 do
    Script.write m ~hart:h [ Script.Halt ]
  done;
  Machine.run ~max_instrs:3_000_000L m

let () =
  print_endline "Firmware sandbox policy vs. a hostile firmware\n";
  (* First, the honest case. *)
  let m, mir, state = boot_with ~firmware:Mir_firmware.Minisbi.image in
  provoke m;
  Printf.printf "%-28s -> %s (boot image hash %Lx)\n" "honest MiniSBI"
    (match mir.Monitor.violation with
    | None -> "runs cleanly"
    | Some v -> "UNEXPECTED: " ^ v)
    state.Sandbox.boot_image_hash;
  (* Then every attack. *)
  List.iter
    (fun attack ->
      let m, mir, _ = boot_with ~firmware:(Mir_firmware.Evil.image attack) in
      provoke m;
      let verdict =
        match mir.Monitor.violation with
        | Some v -> "BLOCKED: " ^ v
        | None ->
            if String.contains (Mir_rv.Uart.output m.Machine.uart) 'X' then
              "!!! ATTACK SUCCEEDED"
            else "no violation recorded (attack did not fire)"
      in
      Printf.printf "%-28s -> %s\n"
        (Mir_firmware.Evil.attack_name attack)
        verdict)
    Mir_firmware.Evil.all_attacks;
  print_endline
    "\nEvery attack faulted on the sandbox's PMP entries and stopped the \
     machine — the OS was never compromised."
