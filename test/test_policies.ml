(* Isolation-policy tests: the firmware sandbox against the malicious
   firmware suite, Keystone enclaves, and ACE confidential VMs. *)

module Setup = Mir_harness.Setup
module Script = Mir_kernel.Script
module Uapp = Mir_kernel.Uapp
module Platform = Mir_platform.Platform
module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Sandbox = Mir_policies.Policy_sandbox
module Keystone = Mir_policies.Policy_keystone
module Ace = Mir_policies.Policy_ace
module Monitor = Miralis.Monitor
module Vhart = Miralis.Vhart

let vf2 = Platform.visionfive2

let create_sandboxed ?firmware () =
  let policy, state = Sandbox.create () in
  (* the sandbox needs 3 policy PMP slots; rebuild the config through
     Setup by adjusting the platform's default of 1 *)
  let sys =
    let m = Machine.create vf2.Platform.machine in
    let fw =
      (Option.value firmware ~default:Mir_firmware.Minisbi.image)
        ~nharts:4 ~kernel_entry:Mir_kernel.Interp_kernel.entry
    in
    Machine.load_program m Mir_firmware.Layout.fw_base (fst fw);
    Machine.load_program m Mir_kernel.Interp_kernel.entry
      (fst (Mir_kernel.Interp_kernel.image ()));
    let config =
      Miralis.Config.make ~policy_pmp_slots:Sandbox.pmp_slots
        ~cost:vf2.Platform.cost ~machine:vf2.Platform.machine ()
    in
    let mir = Monitor.create ~policy config m in
    Monitor.boot mir ~fw_entry:Mir_firmware.Layout.fw_base;
    {
      Setup.platform = vf2;
      mode = Setup.Virtualized;
      machine = m;
      miralis = Some mir;
    }
  in
  (sys, state)

let test_sandbox_honest_firmware () =
  let sys, state = create_sandboxed () in
  Setup.run_scripts sys
    [
      [
        Script.Putchar 'A';
        Script.Rdtime;
        Script.Set_timer 100L;
        Script.Tick_wfi 50L;
        Script.Misaligned_load;
        Script.Putchar 'Z';
        Script.End;
      ];
    ];
  Helpers.check_str "uart" "AZ" (Setup.uart_output sys);
  Alcotest.(check bool)
    "no violation" true
    ((Option.get sys.Setup.miralis).Monitor.violation = None);
  Alcotest.(check bool) "sandbox locked" true state.Sandbox.locked;
  Alcotest.(check bool)
    "boot image hashed" true
    (state.Sandbox.boot_image_hash <> 0L)

let test_sandbox_blocks_attack attack () =
  let sys, _state =
    create_sandboxed ~firmware:(Mir_firmware.Evil.image attack) ()
  in
  (* Any SBI call from the kernel triggers the attack. *)
  Setup.run_scripts sys ~max_instrs:2_000_000L
    [ [ Script.Putchar 'A'; Script.End ] ];
  let mir = Option.get sys.Setup.miralis in
  Alcotest.(check bool)
    (Mir_firmware.Evil.attack_name attack ^ " detected")
    true
    (mir.Monitor.violation <> None);
  Alcotest.(check bool)
    "attack did not succeed" false
    (String.contains (Setup.uart_output sys) 'X')

let test_sandbox_scrubs_registers () =
  let sys, state = create_sandboxed () in
  state.Sandbox.locked <- true;
  let mir = Option.get sys.Setup.miralis in
  let hart = sys.Setup.machine.Machine.harts.(0) in
  let vh = mir.Monitor.vharts.(0) in
  vh.Vhart.world <- Vhart.Os;
  (* Pretend the OS performs a set_timer SBI call with secrets in
     callee-saved registers. *)
  for r = 1 to 31 do
    Hart.set hart r (Int64.of_int (0x1000 + r))
  done;
  Hart.set hart 17 Mir_sbi.Sbi.ext_time;
  Hart.set hart 16 0L;
  Hart.set hart 10 999L;
  let ctx = Monitor.policy_ctx mir hart in
  ignore (mir.Monitor.policy.Miralis.Policy.on_ecall_from_os ctx);
  Monitor.switch_to_fw mir hart vh;
  (* allow-list for set_timer: a0, a6, a7 *)
  Helpers.check_i64 "a0 passes" 999L (Hart.get hart 10);
  Helpers.check_i64 "a7 passes" Mir_sbi.Sbi.ext_time (Hart.get hart 17);
  Helpers.check_i64 "t0 scrubbed" 0L (Hart.get hart 5);
  Helpers.check_i64 "s3 scrubbed" 0L (Hart.get hart 19);
  Helpers.check_i64 "sp scrubbed" 0L (Hart.get hart 2);
  (* Firmware computes a return value; everything else must come back. *)
  Hart.set hart 10 0L;
  Hart.set hart 11 7L;
  Monitor.switch_to_os mir hart vh;
  Helpers.check_i64 "a0 is return" 0L (Hart.get hart 10);
  Helpers.check_i64 "a1 is return" 7L (Hart.get hart 11);
  Helpers.check_i64 "t0 restored" 0x1005L (Hart.get hart 5);
  Helpers.check_i64 "sp restored" 0x1002L (Hart.get hart 2)

(* ------------------------------------------------------------------ *)
(* Keystone                                                            *)
(* ------------------------------------------------------------------ *)

let enclave_base = 0x80800000L
let enclave_size = 4096L

let create_keystone () =
  let policy, state = Keystone.create () in
  let m = Machine.create vf2.Platform.machine in
  Machine.load_program m Mir_firmware.Layout.fw_base
    (fst
       (Mir_firmware.Minisbi.image ~nharts:4
          ~kernel_entry:Mir_kernel.Interp_kernel.entry));
  Machine.load_program m Mir_kernel.Interp_kernel.entry
    (fst (Mir_kernel.Interp_kernel.image ()));
  let config =
    Miralis.Config.make ~policy_pmp_slots:Keystone.pmp_slots
      ~cost:vf2.Platform.cost ~machine:vf2.Platform.machine ()
  in
  let mir = Monitor.create ~policy config m in
  Monitor.boot mir ~fw_entry:Mir_firmware.Layout.fw_base;
  let sys =
    {
      Setup.platform = vf2;
      mode = Setup.Virtualized;
      machine = m;
      miralis = Some mir;
    }
  in
  (sys, state)

let stage_enclave sys ~iters =
  Machine.load_program sys.Setup.machine enclave_base
    (Uapp.image ~base:enclave_base ~iters);
  Script.write_descriptor sys.Setup.machine ~index:0 ~base:enclave_base
    ~size:enclave_size ~entry:enclave_base

let test_keystone_enclave_runs () =
  let sys, state = create_keystone () in
  stage_enclave sys ~iters:50L;
  Setup.run_scripts sys
    [ [ Script.Enclave_round 0L; Script.Putchar 'K'; Script.End ] ];
  Helpers.check_str "uart" "K" (Setup.uart_output sys);
  Alcotest.(check bool) "entered" true (state.Keystone.entries_count >= 1);
  Alcotest.(check int) "exited" 1 state.Keystone.exits_count;
  Helpers.check_i64 "checksum"
    (Uapp.expected_checksum ~iters:50L)
    (Script.result_value sys.Setup.machine ~hart:0)

let test_keystone_os_cannot_read_enclave () =
  let sys, _ = create_keystone () in
  stage_enclave sys ~iters:10L;
  (* Pre-create the enclave via one round... instead, probe while an
     enclave exists: create it white-box and let the kernel probe. *)
  let mir = Option.get sys.Setup.miralis in
  ignore mir;
  (* Mark probe cell with a sentinel first. *)
  Setup.run_scripts sys ~max_instrs:3_000_000L
    [
      [
        (* Create an enclave (round runs it to completion and destroys
           it), then create another and probe while it exists: the
           simplest observable variant is to probe enclave memory
           after staging but before any round — no enclave exists, so
           the probe succeeds; then run a round and probe after
           destroy: memory must be scrubbed to zero. *)
        Script.Load_probe enclave_base;
        Script.Enclave_round 0L;
        Script.Load_probe enclave_base;
        Script.End;
      ];
    ];
  (* After destroy, the enclave image was scrubbed: the second probe
     must read zero (the first read the app's first instruction). *)
  Helpers.check_i64 "enclave memory scrubbed on destroy" 0L
    (Script.probe_value sys.Setup.machine ~hart:0)

let test_keystone_isolation_while_enclave_exists () =
  let sys, state = create_keystone () in
  stage_enclave sys ~iters:10L;
  (* Create an enclave white-box (as if previously created) and verify
     an OS read of its memory faults. *)
  let e =
    {
      Keystone.eid = 99;
      base = enclave_base;
      size = enclave_size;
      entry = enclave_base;
      state = Keystone.Created;
    }
  in
  state.Keystone.enclaves <- [ e ];
  let mir = Option.get sys.Setup.miralis in
  Monitor.reinstall_pmp mir sys.Setup.machine.Machine.harts.(0);
  ignore
    (Machine.phys_store sys.Setup.machine
       (Int64.add (Script.region_base ~hart:0) Script.counter_probe)
       8 0x5AFEL);
  Setup.run_scripts sys ~max_instrs:3_000_000L
    [ [ Script.Load_probe enclave_base; Script.Putchar 'N'; Script.End ] ];
  (* The load faults; MiniSBI reports the unhandled trap ('!') and
     stops. The probe value must not have been overwritten with
     enclave memory. *)
  Helpers.check_i64 "probe blocked" 0x5AFEL
    (Script.probe_value sys.Setup.machine ~hart:0);
  Alcotest.(check bool)
    "kernel did not continue" false
    (String.contains (Setup.uart_output sys) 'N')

let test_keystone_interrupted_and_resumed () =
  let sys, state = create_keystone () in
  (* A long enclave: the armed timer interrupts it at least once. *)
  stage_enclave sys ~iters:40_000L;
  Setup.run_scripts sys
    [ [ Script.Set_timer 300L; Script.Enclave_round 0L; Script.End ] ];
  Alcotest.(check bool)
    "timer interrupted the enclave" true
    (state.Keystone.entries_count >= 2);
  Alcotest.(check int) "eventually completed" 1 state.Keystone.exits_count;
  Helpers.check_i64 "checksum correct despite interruption"
    (Uapp.expected_checksum ~iters:40_000L)
    (Script.result_value sys.Setup.machine ~hart:0);
  Alcotest.(check bool)
    "OS observed its timer tick" true
    (Script.sti_count sys.Setup.machine ~hart:0 >= 1L)

(* ------------------------------------------------------------------ *)
(* ACE                                                                 *)
(* ------------------------------------------------------------------ *)

let create_ace () =
  let policy, state = Ace.create () in
  let platform = Platform.qemu_virt in
  let m = Machine.create platform.Platform.machine in
  Machine.load_program m Mir_firmware.Layout.fw_base
    (fst
       (Mir_firmware.Minisbi.image ~nharts:4
          ~kernel_entry:Mir_kernel.Interp_kernel.entry));
  Machine.load_program m Mir_kernel.Interp_kernel.entry
    (fst (Mir_kernel.Interp_kernel.image ()));
  let config =
    Miralis.Config.make ~policy_pmp_slots:Ace.pmp_slots
      ~cost:platform.Platform.cost ~machine:platform.Platform.machine ()
  in
  let mir = Monitor.create ~policy config m in
  Monitor.boot mir ~fw_entry:Mir_firmware.Layout.fw_base;
  let sys =
    {
      Setup.platform;
      mode = Setup.Virtualized;
      machine = m;
      miralis = Some mir;
    }
  in
  (sys, state)

let test_ace_cvm_lifecycle () =
  let sys, state = create_ace () in
  Machine.load_program sys.Setup.machine enclave_base
    (Uapp.image ~base:enclave_base ~iters:80L);
  Script.write_descriptor sys.Setup.machine ~index:0 ~base:enclave_base
    ~size:enclave_size ~entry:enclave_base;
  Setup.run_scripts sys
    [ [ Script.Cvm_round 0L; Script.Putchar 'C'; Script.End ] ];
  Helpers.check_str "uart" "C" (Setup.uart_output sys);
  Alcotest.(check bool) "vcpu entered" true (state.Ace.vcpu_entries >= 1);
  Alcotest.(check bool) "vm exited" true (state.Ace.vm_exits >= 1);
  Helpers.check_i64 "checksum"
    (Uapp.expected_checksum ~iters:80L)
    (Script.result_value sys.Setup.machine ~hart:0);
  (* destroyed memory is scrubbed *)
  Helpers.check_i64 "scrubbed" 0L
    (Option.get (Machine.phys_load sys.Setup.machine enclave_base 8))

let test_ace_firmware_cannot_read_cvm () =
  (* The paper's headline for the ACE policy: the firmware is excluded
     from the CVM's TCB. A malicious firmware trying to read CVM
     memory faults on the policy PMP. *)
  let policy, state = Ace.create () in
  let m = Machine.create vf2.Platform.machine in
  Machine.load_program m Mir_firmware.Layout.fw_base
    (fst
       (Mir_firmware.Evil.image Mir_firmware.Evil.Read_os_memory ~nharts:4
          ~kernel_entry:Mir_kernel.Interp_kernel.entry));
  Machine.load_program m Mir_kernel.Interp_kernel.entry
    (fst (Mir_kernel.Interp_kernel.image ()));
  let config =
    Miralis.Config.make ~policy_pmp_slots:Ace.pmp_slots
      ~cost:vf2.Platform.cost ~machine:vf2.Platform.machine ()
  in
  let mir = Monitor.create ~policy config m in
  Monitor.boot mir ~fw_entry:Mir_firmware.Layout.fw_base;
  (* Stage a CVM over the kernel image area the evil firmware reads. *)
  state.Ace.cvms <-
    [
      {
        Ace.id = 1;
        base = Mir_kernel.Interp_kernel.entry;
        size = 4096L;
        entry = Mir_kernel.Interp_kernel.entry;
        state = Ace.Ready;
      };
    ];
  Array.iter (fun h -> Monitor.reinstall_pmp mir h) m.Machine.harts;
  let sys =
    { Setup.platform = vf2; mode = Setup.Virtualized; machine = m;
      miralis = Some mir }
  in
  (* The kernel's first instruction fetch... the kernel itself is
     inside the CVM region now, so use a script-free run: the evil
     firmware attacks on the first trap from the OS; the kernel's
     first fetch faults on the CVM PMP, reinjects to the firmware,
     which then attacks and faults itself. Either way the attack's
     success marker must not appear. *)
  Machine.run ~max_instrs:2_000_000L m;
  Alcotest.(check bool)
    "attack did not succeed" false
    (String.contains (Setup.uart_output sys) 'X')

(* ------------------------------------------------------------------ *)
(* Schedule independence: an isolation verdict must not depend on how  *)
(* harts interleave. Honest firmware stays clean and evil firmware is  *)
(* caught under every seeded random schedule, and the explorer's       *)
(* keystone oracles hold across schedules when no bug is injected.     *)
(* ------------------------------------------------------------------ *)

module Explore = Mir_explore.Explore
module ExpScenario = Mir_explore.Scenario
module Sched = Mir_explore.Sched
module Config = Miralis.Config

let schedule_seeds = [ 0; 1; 2 ]

(* Run a system to completion under a seeded random schedule, stopping
   early once the policy has flagged a violation. Picks of halted
   harts are remapped to the next runnable one. *)
let run_random_schedule sys ~label ~max_steps =
  let m = sys.Setup.machine in
  let nharts = Array.length m.Machine.harts in
  let prng = Config.derive Config.default_seed label in
  let sched = Sched.random ~prng ~nharts () in
  let mir = Option.get sys.Setup.miralis in
  let step = ref 0 in
  let last = ref (-1) in
  let pick m =
    if mir.Monitor.violation <> None then raise Exit;
    let h0 = sched.Sched.pick m ~step:!step ~last:!last in
    let h = ref (((h0 mod nharts) + nharts) mod nharts) in
    let tries = ref 0 in
    while !tries < nharts && m.Machine.harts.(!h).Hart.halted do
      h := (!h + 1) mod nharts;
      incr tries
    done;
    incr step;
    last := !h;
    !h
  in
  try Machine.run_scheduled m ~max_steps ~pick with Exit -> ()

let test_sandbox_honest_schedule_independent () =
  List.iter
    (fun i ->
      let sys, _ = create_sandboxed () in
      Array.iter
        (fun h ->
          Script.write sys.Setup.machine ~hart:h.Hart.id
            (if h.Hart.id = 0 then
               [
                 Script.Putchar 'A';
                 Script.Rdtime;
                 Script.Set_timer 100L;
                 Script.Misaligned_load;
                 Script.Putchar 'Z';
                 Script.End;
               ]
             else [ Script.Halt ]))
        sys.Setup.machine.Machine.harts;
      run_random_schedule sys
        ~label:(Printf.sprintf "policies:sandbox:honest:%d" i)
        ~max_steps:2_000_000;
      Alcotest.(check bool)
        (Printf.sprintf "no violation under schedule %d" i)
        true
        ((Option.get sys.Setup.miralis).Monitor.violation = None);
      Helpers.check_str
        (Printf.sprintf "uart under schedule %d" i)
        "AZ" (Setup.uart_output sys))
    schedule_seeds

let test_sandbox_evil_schedule_independent () =
  List.iter
    (fun i ->
      let sys, _ =
        create_sandboxed
          ~firmware:(Mir_firmware.Evil.image Mir_firmware.Evil.Read_os_memory)
          ()
      in
      Array.iter
        (fun h ->
          Script.write sys.Setup.machine ~hart:h.Hart.id
            (if h.Hart.id = 0 then [ Script.Putchar 'A'; Script.End ]
             else [ Script.Halt ]))
        sys.Setup.machine.Machine.harts;
      run_random_schedule sys
        ~label:(Printf.sprintf "policies:sandbox:evil:%d" i)
        ~max_steps:2_000_000;
      Alcotest.(check bool)
        (Printf.sprintf "attack detected under schedule %d" i)
        true
        ((Option.get sys.Setup.miralis).Monitor.violation <> None);
      Alcotest.(check bool)
        (Printf.sprintf "attack failed under schedule %d" i)
        false
        (String.contains (Setup.uart_output sys) 'X'))
    schedule_seeds

let test_keystone_oracles_schedule_independent () =
  let scn = Option.get (ExpScenario.find "keystone") in
  List.iter
    (fun i ->
      let inst =
        scn.ExpScenario.build ~nharts:2 ~seed:Config.default_seed
      in
      let prng =
        Config.derive Config.default_seed
          (Printf.sprintf "policies:keystone:%d" i)
      in
      let o =
        Explore.run_once inst ~sched:(Sched.random ~prng ~nharts:2 ()) ()
      in
      match o.Explore.violation with
      | None -> ()
      | Some v ->
          Alcotest.failf "schedule %d: spurious %s violation (%s)" i
            v.Mir_explore.Oracle.oracle v.Mir_explore.Oracle.detail)
    schedule_seeds

let () =
  Alcotest.run "policies"
    ([
       Alcotest.test_case "sandbox: honest firmware" `Quick
         test_sandbox_honest_firmware;
       Alcotest.test_case "sandbox: register scrubbing" `Quick
         test_sandbox_scrubs_registers;
     ]
     @ List.map
         (fun a ->
           Alcotest.test_case
             ("sandbox blocks: " ^ Mir_firmware.Evil.attack_name a)
             `Quick
             (test_sandbox_blocks_attack a))
         Mir_firmware.Evil.all_attacks
     @ [
         Alcotest.test_case "keystone: enclave runs" `Quick
           test_keystone_enclave_runs;
         Alcotest.test_case "keystone: scrub on destroy" `Quick
           test_keystone_os_cannot_read_enclave;
         Alcotest.test_case "keystone: OS blocked from enclave" `Quick
           test_keystone_isolation_while_enclave_exists;
         Alcotest.test_case "keystone: interrupt & resume" `Quick
           test_keystone_interrupted_and_resumed;
         Alcotest.test_case "ace: cvm lifecycle" `Quick test_ace_cvm_lifecycle;
         Alcotest.test_case "ace: firmware blocked from cvm" `Quick
           test_ace_firmware_cannot_read_cvm;
         Alcotest.test_case "sandbox honest: schedule independent" `Slow
           test_sandbox_honest_schedule_independent;
         Alcotest.test_case "sandbox evil: schedule independent" `Slow
           test_sandbox_evil_schedule_independent;
         Alcotest.test_case "keystone oracles: schedule independent" `Slow
           test_keystone_oracles_schedule_independent;
       ]
    |> fun tests -> [ ("policies", tests) ])
