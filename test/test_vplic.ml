(* The experimental virtual PLIC (paper §4.3): firmware PLIC accesses
   are shadowed/filtered, and end-to-end a firmware can program the
   PLIC from vM-mode without seeing the OS's contexts. *)

module Plic = Mir_rv.Plic
module Machine = Mir_rv.Machine
module Vplic = Miralis.Vplic
module Monitor = Miralis.Monitor
module Platform = Mir_platform.Platform
module Asm = Mir_asm.Asm
open Asm.I
open Asm.Reg

let test_priority_shadow_and_mirror () =
  let plic = Plic.create ~nharts:2 ~nsources:4 in
  let vp = Vplic.create ~nharts:2 ~nsources:4 in
  (* write priority of source 2 *)
  ignore (Vplic.emulate_access vp plic ~hart:0 ~offset:8L ~size:4
            ~write:(Some 5L));
  Helpers.check_i64 "shadowed (clamped to 3 bits)" 5L (Vplic.vpriority vp 2);
  Alcotest.(check bool) "read back" true
    (Vplic.emulate_access vp plic ~hart:0 ~offset:8L ~size:4 ~write:None
    = Some 5L)

let test_own_context_only () =
  let plic = Plic.create ~nharts:2 ~nsources:4 in
  let vp = Vplic.create ~nharts:2 ~nsources:4 in
  (* hart 0's M context enable word is at 0x2000 + 0*0x80 *)
  ignore (Vplic.emulate_access vp plic ~hart:0 ~offset:0x2000L ~size:4
            ~write:(Some 0b110L));
  Helpers.check_i64 "own enables stored" 0b110L (Vplic.venable vp ~hart:0);
  (* the OS's S context (0x2000 + 1*0x80) reads as zero and writes are
     dropped *)
  ignore (Vplic.emulate_access vp plic ~hart:0 ~offset:0x2080L ~size:4
            ~write:(Some (-1L)));
  Alcotest.(check bool) "foreign context hidden" true
    (Vplic.emulate_access vp plic ~hart:0 ~offset:0x2080L ~size:4 ~write:None
    = Some 0L);
  (* the underlying S context was not modified *)
  Alcotest.(check bool) "physical S enables untouched" false (Plic.seip plic 0)

let test_claim_passthrough () =
  let plic = Plic.create ~nharts:1 ~nsources:4 in
  let vp = Vplic.create ~nharts:1 ~nsources:4 in
  (* program prio + enable for source 3 through the virtual interface *)
  ignore (Vplic.emulate_access vp plic ~hart:0 ~offset:12L ~size:4
            ~write:(Some 2L));
  ignore (Vplic.emulate_access vp plic ~hart:0 ~offset:0x2000L ~size:4
            ~write:(Some 0b1000L));
  Plic.raise_irq plic 3;
  (* claim through the virtual claim register (ctx 0 = M of hart 0) *)
  Alcotest.(check bool) "claims source 3" true
    (Vplic.emulate_access vp plic ~hart:0 ~offset:0x200004L ~size:4
       ~write:None
    = Some 3L);
  (* complete *)
  ignore (Vplic.emulate_access vp plic ~hart:0 ~offset:0x200004L ~size:4
            ~write:(Some 3L));
  Plic.lower_irq plic 3;
  Alcotest.(check bool) "line low after complete" false (Plic.meip plic 0)

(* End-to-end: a firmware that programs the PLIC from vM-mode. The
   PLIC window is PMP-blocked, every access traps and is emulated. *)
let plic_firmware ~nharts ~kernel_entry =
  ignore nharts;
  ignore kernel_entry;
  Asm.assemble ~base:Mir_firmware.Layout.fw_base
    [
      label "entry";
      li t0 Plic.default_base;
      (* priority(src1) = 4 *)
      li t1 4L;
      sw t1 4L t0;
      (* enable src1 in our M context *)
      li t2 (Int64.add Plic.default_base 0x2000L);
      li t1 2L;
      sw t1 0L t2;
      (* read the priority back and report it on the UART *)
      lw t3 4L t0;
      li t4 Mir_firmware.Layout.uart;
      addi t3 t3 48L;
      (* '0' + prio *)
      sb t3 0L t4;
      li t0 Mir_firmware.Layout.syscon;
      li t1 0x5555L;
      sw t1 0L t0;
      label "spin";
      j "spin";
    ]

let test_firmware_programs_vplic () =
  let platform = Platform.qemu_virt (* 16 PMP entries *) in
  let m = Machine.create platform.Platform.machine in
  let fw, _ =
    plic_firmware ~nharts:4 ~kernel_entry:Mir_kernel.Interp_kernel.entry
  in
  Machine.load_program m Mir_firmware.Layout.fw_base fw;
  let config =
    Miralis.Config.make ~virtualize_plic:true ~cost:platform.Platform.cost
      ~machine:platform.Platform.machine ()
  in
  let mir = Monitor.create config m in
  Monitor.boot mir ~fw_entry:Mir_firmware.Layout.fw_base;
  Machine.run ~max_instrs:500_000L m;
  Helpers.check_str "firmware saw its write" "4"
    (Mir_rv.Uart.output m.Machine.uart);
  Alcotest.(check bool) "accesses were emulated" true
    (mir.Monitor.stats.Miralis.Vfm_stats.vclint_accesses >= 3
    || mir.Monitor.stats.Miralis.Vfm_stats.traps_from_fw > 0);
  Helpers.check_i64 "shadow state updated" 2L
    (Vplic.venable mir.Monitor.vplic ~hart:0)

let () =
  Alcotest.run "vplic"
    [
      ( "vplic",
        [
          Alcotest.test_case "priority shadow" `Quick
            test_priority_shadow_and_mirror;
          Alcotest.test_case "own context only" `Quick test_own_context_only;
          Alcotest.test_case "claim passthrough" `Quick test_claim_passthrough;
          Alcotest.test_case "firmware programs vPLIC" `Quick
            test_firmware_programs_vplic;
        ] );
    ]
