(* Symbolic-engine tests.

   Domain soundness: for every functorized transform, a random
   concrete state must be contained in the concretization of the
   symbolic result — running the transform at the symbolic backend
   under a total concolic assignment and evaluating the result word
   must equal running the same transform at the concrete [int64]
   instantiation on the corresponding values. Seeded quickcheck-style
   sampling, no external generators.

   Plus sanity checks of the expression layer's equivalence verdicts
   and of the path explorer. *)

module Prng = Mir_util.Prng
module B = Mir_sym.Backend
module W = Mir_sym.Word
module E = Mir_sym.Expr
module Eng = Mir_sym.Engine
module Csr_spec = Mir_rv.Csr_spec
module Csr_addr = Mir_rv.Csr_addr
module Priv = Mir_rv.Priv
module Instr = Mir_rv.Instr
module Xs = Mir_rv.Hart.Xfer (B)
module Xc = Mir_rv.Hart.Xfer_c
module CSs = Csr_spec.Sem (B)
module ESs = Miralis.Emulator.Sem (B)
module ESc = Miralis.Emulator.Sem (Mir_util.Bits_sig.I64)

let samples = 200
let prng = Prng.create ~seed:0x53594D31L (* "SYM1" *)

(* Run [sym] (a function over fresh symbolic words) concolically under
   the concrete input values and check its 64-bit result against
   [conc] applied to the same values. *)
let check_word_transform name inputs conc sym =
  for i = 1 to samples do
    Eng.reset ();
    let values = List.map (fun n -> (n, Prng.next prng)) inputs in
    let words = List.map (fun (n, _) -> Eng.fresh_word n) values in
    let env = Eng.env_of_inputs values in
    let got = Eng.concolic env (fun () -> W.eval env (sym words)) in
    let expected = conc (List.map snd values) in
    if got <> expected then
      Alcotest.failf "%s sample %d: concrete 0x%Lx, symbolic 0x%Lx" name i
        expected got
  done

let vcfg =
  (Miralis.Config.make
     ~machine:
       {
         Mir_rv.Machine.default_config with
         Mir_rv.Machine.ram_size = 64 * 1024;
         nharts = 1;
       }
     ())
    .Miralis.Config.vcsr_config

let spec_of addr = Option.get (Csr_spec.find vcfg addr)

let test_legalize_rules () =
  let rules =
    [
      ("epc", Csr_spec.R_epc);
      ("tvec", Csr_spec.R_tvec);
      ("satp", Csr_spec.R_satp);
      ("mstatus", Csr_spec.R_mstatus);
      ("pmpcfg", Csr_spec.R_pmpcfg 3);
      ("force_or", Csr_spec.R_force_or Csr_spec.Irq.s_mask);
      ("id", Csr_spec.R_id);
    ]
  in
  List.iter
    (fun (name, rule) ->
      check_word_transform
        ("legalize " ^ name)
        [ "old"; "value" ]
        (function
          | [ old; value ] -> Csr_spec.C.legalize rule ~old ~value
          | _ -> assert false)
        (function
          | [ old; value ] -> CSs.legalize rule ~old ~value
          | _ -> assert false))
    rules

let test_apply_write_read () =
  List.iter
    (fun addr ->
      let s = spec_of addr in
      check_word_transform
        ("apply_write " ^ s.Csr_spec.name)
        [ "old"; "value" ]
        (function
          | [ old; value ] ->
              Csr_spec.C.apply_read s (Csr_spec.C.apply_write s ~old ~value)
          | _ -> assert false)
        (function
          | [ old; value ] ->
              CSs.apply_read s (CSs.apply_write s ~old ~value)
          | _ -> assert false))
    [
      Csr_addr.mstatus;
      Csr_addr.mtvec;
      Csr_addr.mepc;
      Csr_addr.satp;
      Csr_addr.mideleg;
      Csr_addr.mie;
      Csr_addr.pmpcfg 0;
      Csr_addr.pmpaddr 0;
    ]

let test_views () =
  let pair name conc sym =
    check_word_transform name [ "a"; "b" ]
      (function [ a; b ] -> conc a b | _ -> assert false)
      (function [ a; b ] -> sym a b | _ -> assert false)
  in
  pair "sstatus_write"
    (fun mstatus value -> Csr_spec.C.sstatus_write ~mstatus ~value)
    (fun mstatus value -> CSs.sstatus_write ~mstatus ~value);
  pair "sie_read"
    (fun mie mideleg -> Csr_spec.C.sie_read ~mie ~mideleg)
    (fun mie mideleg -> CSs.sie_read ~mie ~mideleg);
  pair "sip_read"
    (fun mip mideleg -> Csr_spec.C.sip_read ~mip ~mideleg)
    (fun mip mideleg -> CSs.sip_read ~mip ~mideleg)

let test_xfer_transforms () =
  let one name conc sym =
    check_word_transform name [ "mstatus" ]
      (function [ m ] -> conc m | _ -> assert false)
      (function [ m ] -> sym m | _ -> assert false)
  in
  one "trap_entry_m"
    (fun m -> Xc.trap_entry_m ~mstatus:m ~from_priv:Priv.S)
    (fun m -> Xs.trap_entry_m ~mstatus:m ~from_priv:Priv.S);
  one "trap_entry_s"
    (fun m -> Xc.trap_entry_s ~mstatus:m ~from_priv:Priv.U)
    (fun m -> Xs.trap_entry_s ~mstatus:m ~from_priv:Priv.U);
  one "mret_mstatus"
    (fun m -> Xc.mret_mstatus m)
    (fun m -> Xs.mret_mstatus m);
  one "mret_mstatus skip_mpie"
    (Xc.mret_mstatus ~skip_mpie:true)
    (Xs.mret_mstatus ~skip_mpie:true);
  one "sret_mstatus" Xc.sret_mstatus Xs.sret_mstatus;
  List.iter
    (fun op ->
      check_word_transform "csr_rmw" [ "old"; "src" ]
        (function
          | [ old; src ] -> Xc.csr_rmw op ~old ~src | _ -> assert false)
        (function
          | [ old; src ] -> Xs.csr_rmw op ~old ~src | _ -> assert false))
    [ Instr.Csrrw; Instr.Csrrs; Instr.Csrrc ]

(* Decisions (target privileges, interrupt selection) return concrete
   values even symbolically: compare them directly under concolic
   evaluation. *)
let test_decisions () =
  for _ = 1 to samples do
    Eng.reset ();
    let values =
      List.map
        (fun n -> (n, Prng.next prng))
        [ "mstatus"; "mip"; "mie"; "mideleg" ]
    in
    let words = List.map (fun (n, _) -> Eng.fresh_word n) values in
    let m, mip, mie, mideleg =
      match words with
      | [ a; b; c; d ] -> (a, b, c, d)
      | _ -> assert false
    in
    let mc, mipc, miec, midelegc =
      match List.map snd values with
      | [ a; b; c; d ] -> (a, b, c, d)
      | _ -> assert false
    in
    let env = Eng.env_of_inputs values in
    Eng.concolic env (fun () ->
        Alcotest.(check bool)
          "mret_target_priv" true
          (Xs.mret_target_priv m = Xc.mret_target_priv mc);
        Alcotest.(check bool)
          "sret_target_priv" true
          (Xs.sret_target_priv m = Xc.sret_target_priv mc);
        List.iter
          (fun priv ->
            let order = Miralis.Emulator.intr_priority in
            Alcotest.(check bool)
              "pending_interrupt" true
              (Xs.pending_interrupt ~order ~priv ~mstatus:m ~mip ~mie ~mideleg
              = Xc.pending_interrupt ~order ~priv ~mstatus:mc ~mip:mipc
                  ~mie:miec ~mideleg:midelegc))
          [ Priv.M; Priv.S; Priv.U ];
        List.iter
          (fun world ->
            let order = Miralis.Emulator.intr_priority in
            Alcotest.(check bool)
              "virtual_interrupt" true
              (ESs.virtual_interrupt ~order ~world ~mstatus:m ~mip ~mie
                 ~mideleg
              = ESc.virtual_interrupt ~order ~world ~mstatus:mc ~mip:mipc
                  ~mie:miec ~mideleg:midelegc))
          [ Miralis.Vhart.Firmware; Miralis.Vhart.Os ])
  done

(* ------------------------------------------------------------------ *)
(* Expression-layer sanity                                             *)
(* ------------------------------------------------------------------ *)

let no_env _ = None

let test_expr_equiv () =
  let a = E.Var 0 and b = E.Var 1 in
  (match E.equiv no_env (E.and_ a b) (E.and_ b a) with
  | E.Proved -> ()
  | _ -> Alcotest.fail "a&b = b&a should prove");
  (match E.equiv no_env (E.not_ (E.and_ a b)) (E.or_ (E.not_ a) (E.not_ b))
   with
  | E.Proved -> ()
  | _ -> Alcotest.fail "De Morgan should prove");
  (match E.equiv no_env a (E.not_ a) with
  | E.Refuted _ -> ()
  | _ -> Alcotest.fail "a = !a should refute");
  (match E.equiv no_env (E.or_ a b) (E.and_ a b) with
  | E.Refuted asg ->
      (* the refutation must actually falsify the equivalence *)
      let env v = Some (List.assoc_opt v asg = Some true) |> Option.get in
      Alcotest.(check bool)
        "refutation falsifies" true
        (E.eval env (E.or_ a b) <> E.eval env (E.and_ a b))
  | _ -> Alcotest.fail "a|b = a&b should refute")

let test_explore () =
  Eng.reset ();
  let w = Eng.fresh_word "w" in
  (* two genuine splits: four leaves, all depth 2 *)
  let ex =
    Eng.explore (fun () ->
        let a = B.decide (B.test w 0) and b = B.decide (B.test w 1) in
        (a, b))
  in
  Alcotest.(check int) "paths" 4 ex.Eng.paths;
  Alcotest.(check int) "unexplored" 0 ex.Eng.unexplored;
  Alcotest.(check int) "depth hist" 4 ex.Eng.depth_hist.(2);
  Alcotest.(check bool)
    "all outcomes reached" true
    (List.sort compare (List.map (fun l -> l.Eng.value) ex.Eng.leaves)
    = [ (false, false); (false, true); (true, false); (true, true) ])

let test_explore_depth_bound () =
  Eng.reset ();
  let w = Eng.fresh_word "w" in
  let ex =
    Eng.explore ~max_depth:3 (fun () ->
        let n = ref 0 in
        for i = 0 to 7 do
          if B.decide (B.test w i) then incr n
        done;
        !n)
  in
  Alcotest.(check int) "no full paths" 0 ex.Eng.paths;
  Alcotest.(check bool) "cut paths counted" true (ex.Eng.unexplored > 0)

let () =
  Alcotest.run "sym"
    [
      ( "domain-soundness",
        [
          Alcotest.test_case "legalize rules" `Quick test_legalize_rules;
          Alcotest.test_case "apply_write/read" `Quick test_apply_write_read;
          Alcotest.test_case "views" `Quick test_views;
          Alcotest.test_case "xfer transforms" `Quick test_xfer_transforms;
          Alcotest.test_case "decisions" `Quick test_decisions;
        ] );
      ( "engine",
        [
          Alcotest.test_case "expr equiv" `Quick test_expr_equiv;
          Alcotest.test_case "explore" `Quick test_explore;
          Alcotest.test_case "depth bound" `Quick test_explore_depth_bound;
        ] );
    ]
