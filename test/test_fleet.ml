(* Fleet determinism tests.

   The fleet's contract is that every per-machine and aggregate result
   is a pure function of (fleet seed, machine count, workload) —
   independent of how many domains run it or which domain steals which
   machine. These tests pin the splitmix64 seed-derivation vectors,
   compare a whole fleet run at 1 domain against the same run at 3
   domains, and replay a machine recorded during a parallel fleet run
   serially against its event log. *)

module Fleet = Mir_fleet.Fleet
module Load = Mir_fleet.Load
module Pool = Mir_fleet.Pool
module Prng = Mir_util.Prng

let check_i64 = Alcotest.(check int64)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* splitmix64 per-machine seed derivation                              *)
(* ------------------------------------------------------------------ *)

(* stream_seed with seed 0 walks the canonical splitmix64 output
   sequence from state 0 (the reference vectors from Vigna's
   splitmix64.c), because stream i is mix((i+1) * golden). *)
let test_stream_seed_reference () =
  List.iter
    (fun (index, expect) ->
      check_i64
        (Printf.sprintf "splitmix64 reference vector %d" index)
        expect
        (Prng.stream_seed ~seed:0L ~index))
    [
      (0, 0xE220A8397B1DCDAFL);
      (1, 0x6E789E6AA1B965F4L);
      (2, 0x06C45D188009454FL);
      (3, 0xF88BB8A8724C81ECL);
    ]

let test_stream_seed_fleet_vectors () =
  let seed = Fleet.default_spec.Fleet.seed in
  check_i64 "default fleet seed spells \"Fleet\"" 0x466C656574L seed;
  List.iter
    (fun (index, expect) ->
      check_i64
        (Printf.sprintf "fleet seed, machine %d" index)
        expect
        (Prng.stream_seed ~seed ~index))
    [
      (0, 0xA8D51C76E498A44FL);
      (1, 0x1CF0578807916502L);
      (2, 0xAB45D1CA8EA85600L);
      (3, 0x5BC303D954732424L);
      (63, 0xFD6ED411952B65D0L);
    ]

let test_stream_seed_distinct () =
  let n = 256 in
  let seen = Hashtbl.create n in
  for i = 0 to n - 1 do
    let s = Prng.stream_seed ~seed:0x4D6972616C6973L ~index:i in
    check_bool "no stream-seed collision" false (Hashtbl.mem seen s);
    Hashtbl.replace seen s ()
  done;
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Prng.stream_seed: negative index") (fun () ->
      ignore (Prng.stream_seed ~seed:0L ~index:(-1)))

(* ------------------------------------------------------------------ *)
(* Work-stealing pool                                                  *)
(* ------------------------------------------------------------------ *)

let test_pool_runs_each_task_once () =
  let tasks = 50 in
  let counts = Array.init tasks (fun _ -> Atomic.make 0) in
  Pool.run ~domains:4 ~tasks (fun i -> Atomic.incr counts.(i));
  Array.iteri
    (fun i c ->
      check_int (Printf.sprintf "task %d runs exactly once" i) 1 (Atomic.get c))
    counts

let test_pool_propagates_failure () =
  Alcotest.check_raises "worker exception resurfaces" (Failure "task 7")
    (fun () ->
      Pool.run ~domains:3 ~tasks:16 (fun i ->
          if i = 7 then failwith "task 7"))

(* ------------------------------------------------------------------ *)
(* Fleet determinism across domain counts                              *)
(* ------------------------------------------------------------------ *)

let small_spec =
  {
    Fleet.default_spec with
    Fleet.machines = 6;
    duration_ms = 0.2;
    workload = "mix";
  }

let test_fleet_domain_invariance () =
  let serial = Fleet.run { small_spec with Fleet.domains = 1 } in
  let parallel = Fleet.run { small_spec with Fleet.domains = 3 } in
  Array.iteri
    (fun i (m : Fleet.machine_result) ->
      let p = parallel.Fleet.results.(i) in
      check_i64 (Printf.sprintf "machine %d seed" i) m.Fleet.mseed p.Fleet.mseed;
      Alcotest.(check string)
        (Printf.sprintf "machine %d profile" i)
        m.Fleet.profile p.Fleet.profile;
      check_i64
        (Printf.sprintf "machine %d digest" i)
        m.Fleet.digest p.Fleet.digest;
      check_i64
        (Printf.sprintf "machine %d instrs" i)
        m.Fleet.instrs p.Fleet.instrs;
      check_int (Printf.sprintf "machine %d traps" i) m.Fleet.traps p.Fleet.traps)
    serial.Fleet.results;
  let a = Fleet.aggregate serial and b = Fleet.aggregate parallel in
  check_int "aggregate requests" a.Fleet.requests b.Fleet.requests;
  check_int "aggregate traps" a.Fleet.traps b.Fleet.traps;
  check_int "aggregate world switches" a.Fleet.world_switches
    b.Fleet.world_switches;
  check_i64 "fleet digest" a.Fleet.fleet_digest b.Fleet.fleet_digest;
  Alcotest.(check (float 0.))
    "p99 latency domain-invariant" a.Fleet.p99_cycles b.Fleet.p99_cycles;
  Alcotest.(check string)
    "drained logs identical (never torn)"
    (Fleet.drain_logs serial) (Fleet.drain_logs parallel);
  check_bool "all machines completed" true a.Fleet.all_completed

let test_fleet_latency_sane () =
  let agg = Fleet.aggregate (Fleet.run { small_spec with Fleet.domains = 2 }) in
  check_bool "p50 positive" true (agg.Fleet.p50_cycles > 0.);
  check_bool "p50 <= p99" true (agg.Fleet.p50_cycles <= agg.Fleet.p99_cycles);
  check_bool "p99 <= p999" true (agg.Fleet.p99_cycles <= agg.Fleet.p999_cycles);
  (* every machine's plan is reflected in the aggregate request count *)
  let planned = ref 0 in
  for id = 0 to small_spec.Fleet.machines - 1 do
    let _, stream = Fleet.plan small_spec id in
    planned := !planned + stream.Load.requests
  done;
  check_int "aggregate requests match the pure plan" !planned
    agg.Fleet.requests

(* The per-machine plan is a pure function: calling it repeatedly, in
   any order, yields the same seed and the same script. *)
let test_plan_pure () =
  let ids = [ 3; 0; 5; 3; 1 ] in
  List.iter
    (fun id ->
      let s1, st1 = Fleet.plan small_spec id in
      let s2, st2 = Fleet.plan small_spec id in
      check_i64 "plan seed stable" s1 s2;
      check_bool "plan script stable" true
        (st1.Load.script = st2.Load.script))
    ids

(* ------------------------------------------------------------------ *)
(* Serial replay of a machine recorded during a parallel fleet run     *)
(* ------------------------------------------------------------------ *)

let test_fleet_record_replay () =
  let spec =
    { small_spec with Fleet.machines = 3; domains = 2;
      record_machine = Some 1 }
  in
  let r = Fleet.run spec in
  let recorded = r.Fleet.results.(1) in
  check_bool "recorded machine has events" true
    (recorded.Fleet.events <> []);
  (match
     Fleet.replay_machine spec ~id:1 ~events:recorded.Fleet.events
   with
  | Mir_trace.Replay.Match _ -> ()
  | Mir_trace.Replay.Diverged d ->
      Alcotest.failf "serial replay diverged: %s"
        (Format.asprintf "%a" Mir_trace.Replay.pp_divergence d)
  | Mir_trace.Replay.Truncated { verified; remaining } ->
      Alcotest.failf "serial replay truncated: %d verified, %d remaining"
        verified remaining);
  (* the unrecorded machines are byte-identical to a fleet run without
     any recorder attached *)
  let plain = Fleet.run { spec with Fleet.record_machine = None } in
  check_i64 "recording does not perturb other machines"
    plain.Fleet.results.(0).Fleet.digest r.Fleet.results.(0).Fleet.digest

let () =
  Alcotest.run "fleet"
    [
      ( "seed-derivation",
        [
          Alcotest.test_case "splitmix64 reference vectors" `Quick
            test_stream_seed_reference;
          Alcotest.test_case "fleet seed vectors" `Quick
            test_stream_seed_fleet_vectors;
          Alcotest.test_case "streams distinct, negatives rejected" `Quick
            test_stream_seed_distinct;
        ] );
      ( "pool",
        [
          Alcotest.test_case "each task runs exactly once" `Quick
            test_pool_runs_each_task_once;
          Alcotest.test_case "failure propagates" `Quick
            test_pool_propagates_failure;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "1 vs 3 domains bit-identical" `Slow
            test_fleet_domain_invariance;
          Alcotest.test_case "latency percentiles sane" `Quick
            test_fleet_latency_sane;
          Alcotest.test_case "per-machine plan is pure" `Quick
            test_plan_pure;
          Alcotest.test_case "parallel record, serial replay" `Slow
            test_fleet_record_replay;
        ] );
    ]
