(* Decoded basic-block engine tests.

   The engine's contract (DESIGN.md §11) is bit-exactness with the
   per-instruction interpreter at every step boundary.  These tests
   pin the three places that contract can silently rot:

   - step-count equivalence: [Machine.step_blocks ~budget] consumes
     exactly the budget and lands on the same architectural state as
     [budget] calls to [Machine.step], for every budget — including
     budgets that stop mid-block;
   - the invalidation matrix: self-modifying stores, fence.i, sfence
     (global and per-address), satp switches with no fence, PMP
     permission revocation, and snapshot restore must all prevent a
     stale compiled block from executing dead code;
   - determinism: fleet digests are bit-identical with the engine on
     or off, and a trace recorded under the engine replays green
     under the interpreter. *)

module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Block = Mir_rv.Block
module Instr = Mir_rv.Instr
module Encode = Mir_rv.Encode
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Priv = Mir_rv.Priv
module Pmp = Mir_rv.Pmp
module Vmem = Mir_rv.Vmem
module Prng = Mir_util.Prng
module Blockdiff = Mir_verif.Blockdiff
module Blockfuzz = Mir_fuzz.Blockfuzz
module Fleet = Mir_fleet.Fleet
module Snapshot = Mir_trace.Snapshot

let check_i64 = Alcotest.(check int64)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let enc i = Encode.encode i

let fail_divergence name (d : Blockdiff.divergence) =
  Alcotest.failf "%s: diverged at seg %d on %s (blocks=%s interp=%s)" name
    d.Blockdiff.seg_index d.Blockdiff.field d.Blockdiff.blocks_state
    d.Blockdiff.interp_state

(* ------------------------------------------------------------------ *)
(* Checked-in vectors replay green                                     *)
(* ------------------------------------------------------------------ *)

let test_vectors_replay () =
  let dir = if Sys.file_exists "vectors" then "vectors" else "test/vectors" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6 && String.sub f 0 6 = "block-")
    |> List.sort compare
  in
  check_bool "block vectors present" true (List.length files >= 8);
  List.iter
    (fun f ->
      match Blockdiff.load ~path:(Filename.concat dir f) with
      | Error e -> Alcotest.failf "%s: %s" f e
      | Ok case -> (
          match Blockdiff.run_case case with
          | None -> ()
          | Some d -> fail_divergence f d))
    files

(* ------------------------------------------------------------------ *)
(* Step-count equivalence                                              *)
(* ------------------------------------------------------------------ *)

(* The same generated program, consumed through the engine with every
   budget from 1 to 80 in a single segment — so most budgets stop the
   engine mid-block — and once in 96 one-step segments (full
   per-step lockstep).  The interpreter side of [run_case] steps
   exactly the consumed count, so any off-by-one in the engine's
   budget accounting shows up as a state divergence. *)
let test_step_count_equivalence () =
  let rng = Prng.create ~seed:0xB10CB10CL in
  for _ = 1 to 3 do
    let base = Blockfuzz.gen_case rng in
    for k = 1 to 80 do
      match Blockdiff.run_case { base with Blockdiff.segs = [| k |] } with
      | None -> ()
      | Some d -> fail_divergence (Printf.sprintf "budget=%d" k) d
    done;
    match Blockdiff.run_case { base with Blockdiff.segs = Array.make 96 1 } with
    | None -> ()
    | Some d -> fail_divergence "per-step lockstep" d
  done

(* ------------------------------------------------------------------ *)
(* Direct machines for the invalidation matrix                         *)
(* ------------------------------------------------------------------ *)

let small_config =
  { Machine.default_config with Machine.ram_size = 64 * 1024; nharts = 1 }

let machine_of_words ?(config = small_config) ?(at = 0) words =
  let m = Machine.create config in
  let base = Int64.add config.Machine.ram_base (Int64.of_int at) in
  let img = Bytes.create (4 * Array.length words) in
  Array.iteri (fun i w -> Bytes.set_int32_le img (4 * i) (Int32.of_int w)) words;
  Machine.load_program m base img;
  let h = m.Machine.harts.(0) in
  Hart.reset h ~pc:base;
  (m, h)

(* Consume exactly [n] machine steps through the block engine. *)
let consume_blocks m h n =
  let c = ref 0 in
  while !c < n && (not m.Machine.poweroff) && not h.Hart.halted do
    c := !c + Machine.step_blocks m h ~budget:(n - !c)
  done;
  !c

let consume m h ~blocks n =
  if blocks then consume_blocks m h n
  else begin
    let c = ref 0 in
    while !c < n && (not m.Machine.poweroff) && not h.Hart.halted do
      Machine.step m h;
      incr c
    done;
    !c
  end

(* Architectural fingerprint compared across engines. *)
let fingerprint h =
  let csr = h.Hart.csr in
  ( h.Hart.pc,
    Priv.to_string h.Hart.priv,
    (Hart.get h 5, Hart.get h 6, Hart.get h 7),
    (h.Hart.cycles, h.Hart.instret),
    ( Csr_file.read_raw csr Csr_addr.mcause,
      Csr_file.read_raw csr Csr_addr.mepc ) )

let check_fingerprint name a b =
  let pa, ra, xa, ca, ta = fingerprint a and pb, rb, xb, cb, tb = fingerprint b in
  check_i64 (name ^ ": pc") pb pa;
  Alcotest.(check string) (name ^ ": priv") rb ra;
  let x5a, x6a, x7a = xa and x5b, x6b, x7b = xb in
  check_i64 (name ^ ": x5") x5b x5a;
  check_i64 (name ^ ": x6") x6b x6a;
  check_i64 (name ^ ": x7") x7b x7a;
  let cya, ia = ca and cyb, ib = cb in
  check_int (name ^ ": cycles") cyb cya;
  check_int (name ^ ": instret") ib ia;
  let mca, mea = ta and mcb, meb = tb in
  check_i64 (name ^ ": mcause") mcb mca;
  check_i64 (name ^ ": mepc") meb mea

(* ------------------------------------------------------------------ *)
(* Invalidation: self-modifying store on the cached page               *)
(* ------------------------------------------------------------------ *)

(* The loop stores into its own page every iteration (same bits, so
   execution never changes — but the engine cannot know that and must
   drop the page's blocks), then re-dispatches.  Stats must show both
   the invalidations and the recompiles. *)
let selfmod_words =
  [|
    enc (Instr.Op_imm (Instr.Addi, 6, 6, 1L));
    enc (Instr.Store { width = Instr.W; rs2 = 14; rs1 = 12; imm = 16L });
    enc (Instr.Op_imm (Instr.Addi, 7, 7, 1L));
    enc (Instr.Jal (0, -12L));
    enc Instr.Ebreak;
    (* slot 4: the store target; never executed *)
  |]

let setup_selfmod _m h =
  Hart.set h 12 small_config.Machine.ram_base;
  Hart.set h 14 (Int64.of_int (enc (Instr.Op_imm (Instr.Addi, 5, 5, 1L))))

let test_selfmod_store_invalidates () =
  let m, h = machine_of_words selfmod_words in
  setup_selfmod m h;
  let n = consume_blocks m h 80 in
  check_int "all steps consumed" 80 n;
  let s = Machine.block_stats m in
  check_bool "blocks compiled" true (s.Block.compiled >= 5);
  check_bool "blocks invalidated" true (s.Block.invalidated >= 5);
  check_bool "blocks dispatched" true (s.Block.dispatches >= 5);
  let r = Machine.block_hit_rate m in
  check_bool "hit rate in [0,1]" true (r >= 0. && r <= 1.);
  (* and the interpreter twin agrees on the architectural outcome *)
  let mi, hi = machine_of_words selfmod_words in
  setup_selfmod mi hi;
  let ni = consume mi hi ~blocks:false 80 in
  check_int "twin steps" n ni;
  check_fingerprint "selfmod" h hi;
  check_i64 "loop iterations counted" (Hart.get hi 6) (Hart.get h 6);
  check_bool "loop made progress" true (Hart.get h 6 >= 15L)

(* ------------------------------------------------------------------ *)
(* Invalidation: fence.i                                               *)
(* ------------------------------------------------------------------ *)

(* A hot loop compiles blocks, then a single fence.i falls through to
   a second loop: the flush must count the live blocks as invalidated
   and the second loop must compile fresh.  (A fence.i on every lap
   would legitimately never compile anything — blocks mirror the
   icache, and the flush keeps every word cold.) *)
let fence_words =
  [|
    enc (Instr.Op_imm (Instr.Addi, 5, 5, 1L));
    enc (Instr.Op_imm (Instr.Addi, 6, 0, 20L));
    enc (Instr.Branch (Instr.Bne, 5, 6, -8L));
    enc Instr.Fence_i;
    enc (Instr.Op_imm (Instr.Addi, 7, 7, 1L));
    enc (Instr.Jal (0, -4L));
  |]

let test_fence_i_flushes () =
  let m, h = machine_of_words fence_words in
  (* 20 laps x 3 steps, one fence.i, then the second loop *)
  let n = consume_blocks m h 91 in
  check_int "all steps consumed" 91 n;
  let s = Machine.block_stats m in
  check_bool "blocks compiled before and after the fence" true
    (s.Block.compiled >= 2);
  check_bool "fence.i invalidated the live blocks" true
    (s.Block.invalidated >= 1);
  check_bool "blocks dispatched" true (s.Block.dispatches >= 2);
  let mi, hi = machine_of_words fence_words in
  let ni = consume mi hi ~blocks:false 91 in
  check_int "twin steps" n ni;
  check_fingerprint "fence.i" h hi;
  check_i64 "first loop completed" 20L (Hart.get h 5);
  check_bool "second loop ran" true (Hart.get h 7 >= 10L)

(* ------------------------------------------------------------------ *)
(* Invalidation: Sv39 remaps, satp switches, PMP revocation            *)
(* ------------------------------------------------------------------ *)

(* S-mode spin loop at VA 0x4000, first mapped to a physical page
   whose loop increments x6; mid-run the mapping (or its permission)
   changes.  Blocks are physically indexed, so a stale translation —
   or a resident block surviving a vm-epoch bump — would keep
   incrementing x6 when the architecture says x7 (or a trap).  Each
   scenario runs under both engines and must land on identical
   state. *)

let pg_ram_size = 512 * 1024
let pg_config =
  { Machine.default_config with Machine.ram_size = pg_ram_size; nharts = 1 }

let root0_off = 0x40000
let root1_off = 0x41000
let l1a_off = 0x42000
let l1b_off = 0x43000
let l0a_off = 0x44000
let l0b_off = 0x45000
let page_a_off = 0x5000
let page_b_off = 0x6000
let va = 0x4000L (* vpn2 = 0, vpn1 = 0, vpn0 = 4 *)

let pabs off = Int64.add pg_config.Machine.ram_base (Int64.of_int off)
let pstore m off v = ignore (Machine.phys_store m (pabs off) 8 v)

let pte_ptr off =
  Int64.logor
    (Int64.shift_left (Int64.shift_right_logical (pabs off) 12) 10)
    Vmem.pte_v

let pte_leaf off =
  Int64.logor
    (Int64.shift_left (Int64.shift_right_logical (pabs off) 12) 10)
    (List.fold_left Int64.logor 0L
       [ Vmem.pte_v; Vmem.pte_r; Vmem.pte_w; Vmem.pte_x; Vmem.pte_a;
         Vmem.pte_d ])

let satp_of root_off =
  Int64.logor (Int64.shift_left 8L 60)
    (Int64.shift_right_logical (pabs root_off) 12)

let paging_machine () =
  let spin rd =
    [| enc (Instr.Op_imm (Instr.Addi, rd, rd, 1L)); enc (Instr.Jal (0, -4L)) |]
  in
  (* page A increments x6, page B increments x7 — same shape, so the
     loop continues seamlessly across a remap *)
  let m, h = machine_of_words ~config:pg_config ~at:page_a_off (spin 6) in
  let img = Bytes.create 8 in
  Array.iteri
    (fun i w -> Bytes.set_int32_le img (4 * i) (Int32.of_int w))
    (spin 7);
  Machine.load_program m (pabs page_b_off) img;
  (* two address spaces: root0 maps VA->page A, root1 maps VA->page B *)
  pstore m root0_off (pte_ptr l1a_off);
  pstore m l1a_off (pte_ptr l0a_off);
  pstore m (l0a_off + (8 * 4)) (pte_leaf page_a_off);
  pstore m root1_off (pte_ptr l1b_off);
  pstore m l1b_off (pte_ptr l0b_off);
  pstore m (l0b_off + (8 * 4)) (pte_leaf page_b_off);
  Hart.reset h ~pc:va;
  let csr = h.Hart.csr in
  (* PMP slot 7: NAPOT allow-all so S-mode runs until a higher-priority
     slot interposes *)
  Csr_file.write csr (Csr_addr.pmpaddr 7) (-1L);
  Csr_file.write csr (Csr_addr.pmpcfg 0)
    (Int64.shift_left (Int64.of_int 0b0011111) 56);
  Csr_file.write csr Csr_addr.satp (satp_of root0_off);
  h.Hart.priv <- Priv.S;
  (m, h)

type pg_event = Sfence_all | Sfence_va | Satp_switch | Pmp_revoke

let pg_event_name = function
  | Sfence_all -> "remap+sfence.vma(global)"
  | Sfence_va -> "remap+sfence.vma(vaddr)"
  | Satp_switch -> "satp switch, no fence"
  | Pmp_revoke -> "pmp exec revoke"

let run_paging event ~blocks =
  let m, h = paging_machine () in
  let n1 = consume m h ~blocks 51 in
  check_int "phase 1 steps" 51 n1;
  let csr = h.Hart.csr in
  (match event with
  | Sfence_all ->
      pstore m (l0a_off + (8 * 4)) (pte_leaf page_b_off);
      Machine.sfence_vma m ()
  | Sfence_va ->
      pstore m (l0a_off + (8 * 4)) (pte_leaf page_b_off);
      Machine.sfence_vma m ~vaddr:va ()
  | Satp_switch -> Csr_file.write csr Csr_addr.satp (satp_of root1_off)
  | Pmp_revoke ->
      (* slot 6 (higher priority than the allow-all slot 7) covers page
         A with read-only NAPOT: the very next fetch must fault *)
      Csr_file.write csr (Csr_addr.pmpaddr 6)
        (Pmp.napot_encode ~base:(pabs page_a_off) ~size:0x1000L);
      let cfg = Csr_file.read_raw csr (Csr_addr.pmpcfg 0) in
      Csr_file.write csr (Csr_addr.pmpcfg 0)
        (Int64.logor cfg (Int64.shift_left (Int64.of_int 0b0011001) 48)));
  let _ = consume m h ~blocks 51 in
  (m, h)

let test_paging_matrix () =
  List.iter
    (fun event ->
      let name = pg_event_name event in
      let _, hb = run_paging event ~blocks:true in
      let _, hi = run_paging event ~blocks:false in
      check_fingerprint name hb hi;
      match event with
      | Sfence_all | Sfence_va | Satp_switch ->
          (* the loop ran in page A before the event and page B after *)
          check_bool (name ^ ": ran page A") true (Hart.get hb 6 >= 20L);
          check_bool (name ^ ": switched to page B") true
            (Hart.get hb 7 >= 20L)
      | Pmp_revoke ->
          check_i64 (name ^ ": instruction access fault") 1L
            (Csr_file.read_raw hb.Hart.csr Csr_addr.mcause);
          check_i64 (name ^ ": page B never ran") 0L (Hart.get hb 7))
    [ Sfence_all; Sfence_va; Satp_switch; Pmp_revoke ]

(* ------------------------------------------------------------------ *)
(* Invalidation: snapshot restore                                      *)
(* ------------------------------------------------------------------ *)

(* Take a checkpoint mid-loop, patch the loop body (compiling new
   blocks), then restore: the spliced blocks must not survive the
   rewind — post-restore execution runs the restored code, and the
   whole sequence matches the interpreter bit-for-bit. *)
let snapshot_words =
  [| enc (Instr.Op_imm (Instr.Addi, 6, 6, 1L)); enc (Instr.Jal (0, -4L)) |]

let run_snapshot ~blocks =
  let m, h = machine_of_words snapshot_words in
  let _ = consume m h ~blocks 40 in
  let snap = Snapshot.take m in
  let h0 = Snapshot.hash m in
  (* patch slot 0 to increment x7 instead, as the verifier would *)
  let addr = small_config.Machine.ram_base in
  ignore
    (Machine.phys_store m addr 4
       (Int64.of_int (enc (Instr.Op_imm (Instr.Addi, 7, 7, 1L)))));
  Machine.invalidate_icache m addr 4;
  let _ = consume m h ~blocks 20 in
  check_bool "patched code ran" true (Hart.get h 7 >= 9L);
  Snapshot.restore m snap;
  check_i64 "restore rewinds the hash" h0 (Snapshot.hash m);
  let _ = consume m h ~blocks 30 in
  (m, h)

let test_snapshot_restore_drops_blocks () =
  let mb, hb = run_snapshot ~blocks:true in
  let _, hi = run_snapshot ~blocks:false in
  check_fingerprint "snapshot restore" hb hi;
  (* 2-instruction loop: 40 steps before the checkpoint, 30 after the
     rewind; the patched x7 increments are gone *)
  check_i64 "x6 resumed from the checkpoint" 35L (Hart.get hb 6);
  check_i64 "patched increments rolled back" 0L (Hart.get hb 7);
  check_i64 "final hashes agree" (Snapshot.hash mb)
    (let mi, _ = run_snapshot ~blocks:false in
     Snapshot.hash mi)

(* ------------------------------------------------------------------ *)
(* Determinism: fleet digests and cross-engine replay                  *)
(* ------------------------------------------------------------------ *)

let small_spec =
  {
    Fleet.default_spec with
    Fleet.machines = 4;
    domains = 1;
    duration_ms = 0.2;
    workload = "mix";
  }

let test_fleet_engine_invariance () =
  let on = Fleet.run { small_spec with Fleet.block_engine = true } in
  let off = Fleet.run { small_spec with Fleet.block_engine = false } in
  Array.iteri
    (fun i (a : Fleet.machine_result) ->
      let b = off.Fleet.results.(i) in
      check_i64 (Printf.sprintf "machine %d digest" i) b.Fleet.digest
        a.Fleet.digest;
      check_i64 (Printf.sprintf "machine %d instrs" i) b.Fleet.instrs
        a.Fleet.instrs;
      check_int (Printf.sprintf "machine %d traps" i) b.Fleet.traps
        a.Fleet.traps)
    on.Fleet.results;
  check_i64 "fleet digest"
    (Fleet.aggregate off).Fleet.fleet_digest
    (Fleet.aggregate on).Fleet.fleet_digest

let test_record_blocks_replay_interp () =
  let spec =
    {
      small_spec with
      Fleet.machines = 2;
      record_machine = Some 1;
      block_engine = true;
    }
  in
  let res = Fleet.run spec in
  let events = res.Fleet.results.(1).Fleet.events in
  check_bool "events recorded under the engine" true (events <> []);
  match
    Fleet.replay_machine { spec with Fleet.block_engine = false } ~id:1 ~events
  with
  | Mir_trace.Replay.Match { verified } ->
      check_bool "events verified" true (verified > 0)
  | outcome ->
      Alcotest.failf "cross-engine replay: %s"
        (Format.asprintf "%a" Mir_trace.Replay.pp_outcome outcome)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "blocks"
    [
      ( "oracle",
        [
          Alcotest.test_case "checked-in vectors replay green" `Quick
            test_vectors_replay;
          Alcotest.test_case "step-count equivalence (all budgets)" `Quick
            test_step_count_equivalence;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "self-modifying store" `Quick
            test_selfmod_store_invalidates;
          Alcotest.test_case "fence.i flushes" `Quick test_fence_i_flushes;
          Alcotest.test_case "sfence/satp/pmp matrix" `Quick
            test_paging_matrix;
          Alcotest.test_case "snapshot restore" `Quick
            test_snapshot_restore_drops_blocks;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fleet digests engine-invariant" `Slow
            test_fleet_engine_invariance;
          Alcotest.test_case "record under blocks, replay interpreted" `Slow
            test_record_blocks_replay_interp;
        ] );
    ]
