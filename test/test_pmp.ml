(* PMP reference-model tests, including the corner cases the paper
   reports as real bugs: W=1/R=0 legalization (done in Csr_spec), TOR
   entry-0 semantics, lock behaviour, and partial-overlap denial. *)

module Pmp = Mir_rv.Pmp
module Priv = Mir_rv.Priv

let e ?(r = false) ?(w = false) ?(x = false) ?(a = Pmp.Off) ?(l = false) addr =
  { Pmp.r; w; x; a; l; addr }

let napot ~base ~size = Pmp.napot_encode ~base ~size

let check_verdict name expected got =
  let to_s = function
    | Pmp.Allowed -> "allowed"
    | Pmp.Denied -> "denied"
    | Pmp.No_match -> "no-match"
  in
  Alcotest.(check string) name (to_s expected) (to_s got)

let test_napot_range () =
  let entry = e ~r:true ~a:Pmp.Napot (napot ~base:0x80000000L ~size:0x1000L) in
  match Pmp.range ~prev_addr:0L entry with
  | Some (lo, hi) ->
      Helpers.check_i64 "lo" 0x80000000L lo;
      Helpers.check_i64 "hi" 0x80001000L hi
  | None -> Alcotest.fail "no range"

let test_na4_range () =
  let entry = e ~r:true ~a:Pmp.Na4 (Int64.shift_right_logical 0x80000000L 2) in
  match Pmp.range ~prev_addr:0L entry with
  | Some (lo, hi) ->
      Helpers.check_i64 "lo" 0x80000000L lo;
      Helpers.check_i64 "hi" 0x80000004L hi
  | None -> Alcotest.fail "no range"

let test_tor_range () =
  let entry = e ~r:true ~a:Pmp.Tor (Pmp.tor_encode 0x2000L) in
  (match Pmp.range ~prev_addr:(Pmp.tor_encode 0x1000L) entry with
  | Some (lo, hi) ->
      Helpers.check_i64 "lo" 0x1000L lo;
      Helpers.check_i64 "hi" 0x2000L hi
  | None -> Alcotest.fail "no range");
  (* Empty TOR region (prev >= addr) matches nothing. *)
  Alcotest.(check bool)
    "empty" true
    (Pmp.range ~prev_addr:(Pmp.tor_encode 0x2000L) entry = None)

let test_tor_entry0_starts_at_zero () =
  (* With TOR addressing on entry 0, the region starts at address 0 —
     the semantics the VFM must recreate with its zero-anchor entry. *)
  let entries = [| e ~r:true ~a:Pmp.Tor (Pmp.tor_encode 0x1000L) |] in
  check_verdict "addr 0 readable" Pmp.Allowed
    (Pmp.lookup ~entries Pmp.Read ~addr:0L ~size:4);
  check_verdict "below boundary" Pmp.Allowed
    (Pmp.lookup ~entries Pmp.Read ~addr:0xFFCL ~size:4);
  check_verdict "at boundary" Pmp.No_match
    (Pmp.lookup ~entries Pmp.Read ~addr:0x1000L ~size:4)

let test_priority_first_match_wins () =
  let entries =
    [|
      e ~a:Pmp.Napot (napot ~base:0x80000000L ~size:0x1000L) (* deny *);
      e ~r:true ~w:true ~x:true ~a:Pmp.Napot
        (napot ~base:0x80000000L ~size:0x100000L);
    |]
  in
  check_verdict "inner denied" Pmp.Denied
    (Pmp.lookup ~entries Pmp.Read ~addr:0x80000800L ~size:8);
  check_verdict "outer allowed" Pmp.Allowed
    (Pmp.lookup ~entries Pmp.Read ~addr:0x80002000L ~size:8)

let test_partial_overlap_fails () =
  (* An access straddling the boundary of the matching region fails
     even if both sides would individually be allowed. *)
  let entries =
    [|
      e ~r:true ~a:Pmp.Napot (napot ~base:0x80000000L ~size:0x1000L);
      e ~r:true ~a:Pmp.Napot (napot ~base:0x80001000L ~size:0x1000L);
    |]
  in
  check_verdict "straddling" Pmp.Denied
    (Pmp.lookup ~entries Pmp.Read ~addr:0x80000FFCL ~size:8)

let test_mmode_rules () =
  let deny_all = e ~a:Pmp.Napot (napot ~base:0x80000000L ~size:0x1000L) in
  let locked_deny = { deny_all with l = true } in
  (* Unlocked entries do not constrain M-mode. *)
  Alcotest.(check bool) "M unlocked" true
    (Pmp.check ~entries:[| deny_all |] ~priv:Priv.M Pmp.Read ~addr:0x80000010L
       ~size:8);
  (* Locked entries do. *)
  Alcotest.(check bool) "M locked" false
    (Pmp.check ~entries:[| locked_deny |] ~priv:Priv.M Pmp.Read
       ~addr:0x80000010L ~size:8);
  (* No match: M allowed, S/U denied. *)
  Alcotest.(check bool) "M no-match" true
    (Pmp.check ~entries:[| deny_all |] ~priv:Priv.M Pmp.Read ~addr:0x1000L
       ~size:8);
  Alcotest.(check bool) "S no-match" false
    (Pmp.check ~entries:[| deny_all |] ~priv:Priv.S Pmp.Read ~addr:0x1000L
       ~size:8);
  Alcotest.(check bool) "U no-match" false
    (Pmp.check ~entries:[| deny_all |] ~priv:Priv.U Pmp.Read ~addr:0x1000L
       ~size:8)

let test_no_entries_all_allowed () =
  (* With zero implemented PMP entries, S/U accesses are allowed. *)
  Alcotest.(check bool) "S no pmp" true
    (Pmp.check ~entries:[||] ~priv:Priv.S Pmp.Read ~addr:0x1000L ~size:8)

let test_perm_bits () =
  let rx =
    e ~r:true ~x:true ~a:Pmp.Napot (napot ~base:0x80000000L ~size:0x1000L)
  in
  let ck access expect name =
    Alcotest.(check bool) name expect
      (Pmp.check ~entries:[| rx |] ~priv:Priv.U access ~addr:0x80000000L
         ~size:4)
  in
  ck Pmp.Read true "read ok";
  ck Pmp.Exec true "exec ok";
  ck Pmp.Write false "write denied"

let test_locked_tor_locks_prev_addr () =
  let entries =
    [|
      e ~r:true ~a:Pmp.Napot (napot ~base:0x1000L ~size:0x1000L);
      e ~r:true ~l:true ~a:Pmp.Tor (Pmp.tor_encode 0x4000L);
    |]
  in
  Alcotest.(check bool) "addr of entry 0 locked by TOR entry 1" true
    (Pmp.locked entries 0);
  Alcotest.(check bool) "entry 1 locked" true (Pmp.locked entries 1)

let test_cfg_byte_roundtrip () =
  for b = 0 to 255 do
    let b' = b land 0x9F in
    (* reserved bits cleared *)
    let entry = Pmp.entry_of_cfg_byte b' ~addr:0L in
    Alcotest.(check int)
      (Printf.sprintf "byte %x" b')
      b'
      (Pmp.cfg_byte_of_entry entry)
  done

(* Fixed-vector boundary cases: exact first/last grain of each
   addressing mode, plus straddling accesses — the PR-1 bug class
   (address-matching off-by-ones) frozen as literal expectations. *)

let test_napot_boundary_vectors () =
  let entries =
    [| e ~r:true ~a:Pmp.Napot (napot ~base:0x80004000L ~size:0x1000L) |]
  in
  let ck name expected addr size =
    check_verdict name expected (Pmp.lookup ~entries Pmp.Read ~addr ~size)
  in
  ck "just below" Pmp.No_match 0x80003FFCL 4;
  ck "first word" Pmp.Allowed 0x80004000L 4;
  ck "last word" Pmp.Allowed 0x80004FFCL 4;
  ck "one past" Pmp.No_match 0x80005000L 4;
  (* straddling either edge is a partial overlap: denied *)
  ck "straddles start" Pmp.Denied 0x80003FFCL 8;
  ck "straddles end" Pmp.Denied 0x80004FFCL 8

let test_na4_boundary_vectors () =
  let entries =
    [| e ~r:true ~a:Pmp.Na4 (Int64.shift_right_logical 0x80000100L 2) |]
  in
  let ck name expected addr size =
    check_verdict name expected (Pmp.lookup ~entries Pmp.Read ~addr ~size)
  in
  ck "the word" Pmp.Allowed 0x80000100L 4;
  ck "below" Pmp.No_match 0x800000FCL 4;
  ck "above" Pmp.No_match 0x80000104L 4;
  ck "8-byte access straddles out" Pmp.Denied 0x80000100L 8

let test_tor_boundary_vectors () =
  (* TOR pair: entry 0 ends at 0x1000, entry 1 covers [0x1000,0x3000) *)
  let entries =
    [|
      e ~a:Pmp.Tor (Pmp.tor_encode 0x1000L);
      e ~r:true ~w:true ~a:Pmp.Tor (Pmp.tor_encode 0x3000L);
    |]
  in
  let ck name expected addr size =
    check_verdict name expected (Pmp.lookup ~entries Pmp.Write ~addr ~size)
  in
  ck "below region: entry0, no perms" Pmp.Denied 0xFF8L 4;
  ck "first word" Pmp.Allowed 0x1000L 4;
  ck "last word" Pmp.Allowed 0x2FFCL 4;
  ck "at upper bound" Pmp.No_match 0x3000L 4;
  ck "straddles lower bound" Pmp.Denied 0xFFCL 8;
  ck "straddles upper bound" Pmp.Denied 0x2FFCL 8

let test_locked_entry_vectors () =
  (* A locked entry binds M-mode too — including the partial-overlap
     rule; an identical unlocked entry does not. *)
  let region l =
    [| e ~r:true ~l ~a:Pmp.Napot (napot ~base:0x2000L ~size:0x1000L) |]
  in
  Alcotest.(check bool) "M write inside locked R-only region" false
    (Pmp.check ~entries:(region true) ~priv:Priv.M Pmp.Write ~addr:0x2800L
       ~size:8);
  Alcotest.(check bool) "M write inside unlocked region" true
    (Pmp.check ~entries:(region false) ~priv:Priv.M Pmp.Write ~addr:0x2800L
       ~size:8);
  Alcotest.(check bool) "M straddling locked region boundary" false
    (Pmp.check ~entries:(region true) ~priv:Priv.M Pmp.Read ~addr:0x2FFCL
       ~size:8);
  (* the lock also freezes the pmpaddr CSR behind it *)
  let csr = Mir_rv.Csr_file.create Mir_rv.Csr_spec.default_config ~hart_id:0 in
  let addr0 = Mir_rv.Csr_addr.pmpaddr 0 in
  Mir_rv.Csr_file.write csr addr0 0x1234L;
  Mir_rv.Csr_file.write csr (Mir_rv.Csr_addr.pmpcfg 0) 0x99L (* L|R *);
  Mir_rv.Csr_file.write csr addr0 0x5678L;
  Helpers.check_i64 "locked pmpaddr write ignored" 0x1234L
    (Mir_rv.Csr_file.read csr addr0)

let test_partial_overlap_vectors () =
  (* Adjacent regions with different permissions: an access contained
     in either is judged by its own entry; a straddling access is
     denied even though both sides individually allow reading. *)
  let entries =
    [|
      e ~r:true ~w:true ~a:Pmp.Napot (napot ~base:0x4000L ~size:0x1000L);
      e ~r:true ~a:Pmp.Napot (napot ~base:0x5000L ~size:0x1000L);
    |]
  in
  check_verdict "read low" Pmp.Allowed
    (Pmp.lookup ~entries Pmp.Read ~addr:0x4FF8L ~size:8);
  check_verdict "read high" Pmp.Allowed
    (Pmp.lookup ~entries Pmp.Read ~addr:0x5000L ~size:8);
  check_verdict "read straddling" Pmp.Denied
    (Pmp.lookup ~entries Pmp.Read ~addr:0x4FFCL ~size:8);
  check_verdict "write low" Pmp.Allowed
    (Pmp.lookup ~entries Pmp.Write ~addr:0x4FF8L ~size:8);
  check_verdict "write high denied" Pmp.Denied
    (Pmp.lookup ~entries Pmp.Write ~addr:0x5000L ~size:8)

let test_napot_encode_decode =
  Helpers.qcheck_case ~count:200 "napot range round-trips"
    (fun (base_k, size_log) ->
      let size_log = 3 + (abs size_log mod 20) in
      let size = Int64.shift_left 1L size_log in
      let base =
        Int64.mul size (Int64.of_int (abs base_k mod 1024))
      in
      let addr = Pmp.napot_encode ~base ~size in
      let entry = e ~r:true ~a:Pmp.Napot addr in
      match Pmp.range ~prev_addr:0L entry with
      | Some (lo, hi) -> lo = base && hi = Int64.add base size
      | None -> false)
    QCheck.(pair small_int small_int)

(* Differential property: the precomputed-range fast path agrees with
   the reference check on random configurations. *)
let prop_ranges_equivalent =
  Helpers.qcheck_case ~count:800 "check_ranges == check"
    (fun (seed, addr_raw) ->
      let prng = Mir_util.Prng.create ~seed in
      let entries =
        Array.init 6 (fun _ ->
            Pmp.entry_of_cfg_byte
              (Mir_util.Prng.int_below prng 256 land 0x9F)
              ~addr:
                (Int64.shift_right_logical (Mir_util.Prng.next prng)
                   (2 + Mir_util.Prng.int_below prng 30)))
      in
      let ranges = Pmp.precompute entries in
      let addr =
        Mir_util.Bits.align_down
          (Int64.logand addr_raw 0xFFFFFFFFFL)
          ~size:8
      in
      List.for_all
        (fun priv ->
          List.for_all
            (fun access ->
              Pmp.check ~entries ~priv access ~addr ~size:8
              = Pmp.check_ranges ranges ~priv access ~addr ~size:8)
            [ Pmp.Read; Pmp.Write; Pmp.Exec ])
        [ Priv.M; Priv.S; Priv.U ])
    QCheck.(pair int64 int64)

let () =
  Alcotest.run "pmp"
    [
      ( "pmp",
        [
          Alcotest.test_case "napot range" `Quick test_napot_range;
          Alcotest.test_case "na4 range" `Quick test_na4_range;
          Alcotest.test_case "tor range" `Quick test_tor_range;
          Alcotest.test_case "tor entry0 zero base" `Quick
            test_tor_entry0_starts_at_zero;
          Alcotest.test_case "priority" `Quick test_priority_first_match_wins;
          Alcotest.test_case "partial overlap" `Quick test_partial_overlap_fails;
          Alcotest.test_case "m-mode rules" `Quick test_mmode_rules;
          Alcotest.test_case "no entries" `Quick test_no_entries_all_allowed;
          Alcotest.test_case "perm bits" `Quick test_perm_bits;
          Alcotest.test_case "locked TOR" `Quick test_locked_tor_locks_prev_addr;
          Alcotest.test_case "cfg byte roundtrip" `Quick test_cfg_byte_roundtrip;
          Alcotest.test_case "napot boundary vectors" `Quick
            test_napot_boundary_vectors;
          Alcotest.test_case "na4 boundary vectors" `Quick
            test_na4_boundary_vectors;
          Alcotest.test_case "tor boundary vectors" `Quick
            test_tor_boundary_vectors;
          Alcotest.test_case "locked entry vectors" `Quick
            test_locked_entry_vectors;
          Alcotest.test_case "partial overlap vectors" `Quick
            test_partial_overlap_vectors;
          test_napot_encode_decode;
          prop_ranges_equivalent;
        ] );
    ]
