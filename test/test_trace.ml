(* Record–replay and checkpoint subsystem (lib/trace).

   Covers: JSONL round-trips for every event kind, ring-buffer drop
   semantics, dirty-page tracking, full record → fresh-system replay
   with bit-identical final state, checkpoint/restore straight-line
   equivalence plus rewind-replay from a mid-run checkpoint, and
   divergence detection of a single mutated CSR. *)

module Setup = Mir_harness.Setup
module Script = Mir_kernel.Script
module Platform = Mir_platform.Platform
module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Memory = Mir_rv.Memory
module Event = Mir_trace.Event
module Ring = Mir_trace.Ring
module Recorder = Mir_trace.Recorder
module Tracer = Mir_trace.Tracer
module Snapshot = Mir_trace.Snapshot
module Replay = Mir_trace.Replay

let vf2 = Platform.visionfive2

(* ------------------------------------------------------------------ *)
(* Event serialization                                                 *)
(* ------------------------------------------------------------------ *)

let sample_events =
  let mk seq kind =
    {
      Event.seq;
      hart = seq mod 4;
      instrs = Int64.of_int (1000 * seq);
      pc = Int64.add 0x8000_0000L (Int64.of_int (4 * seq));
      digest = Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (seq + 1));
      kind;
    }
  in
  [
    mk 0
      (Event.Trap
         {
           cause = Mir_rv.Cause.Exception Mir_rv.Cause.Illegal_instr;
           from_priv = Mir_rv.Priv.U;
           to_m = true;
           tval = 0x30200073L;
         });
    mk 1
      (Event.Trap
         {
           cause = Mir_rv.Cause.Interrupt Mir_rv.Cause.Supervisor_timer;
           from_priv = Mir_rv.Priv.S;
           to_m = false;
           tval = 0L;
         });
    mk 2
      (Event.Vtrap
         {
           cause = Mir_rv.Cause.Interrupt Mir_rv.Cause.Machine_timer;
           tval = 0L;
         });
    mk 3 (Event.Csr_write { addr = 0x340; value = 0xDEAD_BEEFL });
    mk 4
      (Event.Mmio
         { write = true; addr = 0x0200_4000L; size = 8; value = -1L });
    mk 5 (Event.Mmio { write = false; addr = 0x1000_0005L; size = 1; value = 0x60L });
    mk 6 (Event.World_switch { to_fw = true });
    mk 7 (Event.World_switch { to_fw = false });
    mk 8 Event.Pmp_reinstall;
    mk 9 (Event.Sbi_call { ext = 0x54494D45L; fid = 0L; offloaded = true });
  ]

let test_event_roundtrip () =
  List.iter
    (fun ev ->
      let js = Event.to_json ev in
      match Event.of_json js with
      | Error e -> Alcotest.failf "%s: parse error %s" (Event.kind_name ev.Event.kind) e
      | Ok ev' ->
          Alcotest.(check bool)
            (Event.kind_name ev.Event.kind ^ ": round-trips")
            true (Event.equal ev ev');
          Helpers.check_int
            (Event.kind_name ev.Event.kind ^ ": seq preserved")
            ev.Event.seq ev'.Event.seq)
    sample_events

let test_event_parse_errors () =
  List.iter
    (fun bad ->
      match Event.of_json bad with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad
      | Error _ -> ())
    [ ""; "{"; "{\"kind\":\"nope\"}"; "{\"seq\":\"0x1\"}" ]

let test_recorder_jsonl_roundtrip () =
  let r = Recorder.create () in
  List.iter (Recorder.push r) sample_events;
  let text = Recorder.to_jsonl r in
  match Recorder.of_jsonl text with
  | Error e -> Alcotest.failf "of_jsonl: %s" e
  | Ok evs ->
      Helpers.check_int "count" (List.length sample_events) (List.length evs);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "event equal" true (Event.equal a b))
        sample_events evs

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_drops_oldest () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Ring.push r i
  done;
  Helpers.check_int "length" 4 (Ring.length r);
  Helpers.check_int "dropped" 6 (Ring.dropped r);
  Helpers.check_int "total" 10 (Ring.total r);
  Alcotest.(check (list int)) "keeps newest" [ 7; 8; 9; 10 ] (Ring.to_list r);
  Helpers.check_int "get 0 = oldest retained" 7 (Ring.get r 0);
  Ring.clear r;
  Helpers.check_int "clear resets length" 0 (Ring.length r);
  Helpers.check_int "clear resets dropped" 0 (Ring.dropped r)

(* ------------------------------------------------------------------ *)
(* Dirty-page tracking                                                 *)
(* ------------------------------------------------------------------ *)

let test_dirty_pages () =
  let mem = Memory.create ~base:0x8000_0000L ~size:(64 * 1024) in
  Memory.clear_dirty mem;
  Alcotest.(check (list int)) "clean after clear" [] (Memory.dirty_pages mem);
  Memory.store mem 0x8000_0008L 8 1L;
  Memory.store mem 0x8000_2000L 4 2L;
  (* straddles the page-1/page-2 boundary *)
  Memory.store_bytes mem 0x8000_1FFEL (Bytes.make 4 'x');
  Alcotest.(check (list int))
    "pages 0,1,2 dirty" [ 0; 1; 2 ] (Memory.dirty_pages mem);
  Memory.clear_dirty mem;
  Alcotest.(check (list int)) "cleared" [] (Memory.dirty_pages mem);
  (* loads do not dirty *)
  ignore (Memory.load mem 0x8000_0008L 8);
  Alcotest.(check (list int)) "loads are clean" [] (Memory.dirty_pages mem)

(* ------------------------------------------------------------------ *)
(* Record → fresh-system replay                                        *)
(* ------------------------------------------------------------------ *)

(* trap-heavy scripts across two harts so the log interleaves *)
let scripts =
  [
    Script.
      [
        Putchar 'r'; Rdtime; Set_timer 300L; Tick_wfi 100L; Ipi_self;
        Rfence; Misaligned_load; Misaligned_store; Compute 400L;
        Disk_io { write = true; sector = 7 };
        Disk_io { write = false; sector = 7 };
        Loop 6L; Putchar '!'; End;
      ];
    Script.[ Rdtime; Set_timer 200L; Tick_wfi 80L; Compute 300L; Loop 4L; Halt ];
  ]

let record_run () =
  let sys = Setup.create vf2 Setup.Virtualized in
  let recorder, tracer = Setup.attach_recorder sys in
  Setup.run_scripts sys scripts;
  (sys, recorder, tracer)

let test_record_replay_fresh () =
  let sys1, recorder, _ = record_run () in
  let h1 = Setup.state_hash sys1 in
  let events = Recorder.events recorder in
  Helpers.check_int "no drops" 0 (Recorder.dropped recorder);
  Alcotest.(check bool) "recorded something" true (List.length events > 100);
  (* both harts contribute *)
  Alcotest.(check bool)
    "hart 1 in the log" true
    (List.exists (fun e -> e.Event.hart = 1) events);
  let sys2 = Setup.create vf2 Setup.Virtualized in
  let replay, _ = Setup.attach_replay sys2 ~events in
  Setup.run_scripts sys2 scripts;
  (match Replay.finish replay with
  | Replay.Match { verified } ->
      Helpers.check_int "all events verified" (List.length events) verified
  | o -> Alcotest.failf "replay: %s" (Format.asprintf "%a" Replay.pp_outcome o));
  Helpers.check_i64 "bit-identical final state" h1 (Setup.state_hash sys2)

let test_jsonl_file_roundtrip_replay () =
  let sys1, recorder, _ = record_run () in
  let path = Filename.temp_file "mir_trace" ".jsonl" in
  Recorder.save recorder ~path;
  let events =
    match Recorder.load ~path with
    | Ok e -> e
    | Error e -> Alcotest.failf "load: %s" e
  in
  Sys.remove path;
  let sys2 = Setup.create vf2 Setup.Virtualized in
  let replay, _ = Setup.attach_replay sys2 ~events in
  Setup.run_scripts sys2 scripts;
  (match Replay.finish replay with
  | Replay.Match _ -> ()
  | o -> Alcotest.failf "replay: %s" (Format.asprintf "%a" Replay.pp_outcome o));
  Helpers.check_i64 "same final state" (Setup.state_hash sys1)
    (Setup.state_hash sys2)

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

let drop n l =
  let rec go n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> go (n - 1) t in
  go n l

let test_checkpoint_restore_and_rewind_replay () =
  let sys = Setup.create vf2 Setup.Virtualized in
  let recorder, tracer = Setup.attach_recorder sys in
  let mgr =
    Setup.checkpoint_manager sys ~every:8_000L ~events_seen:(fun () ->
        Recorder.count recorder)
  in
  Setup.run_scripts sys scripts;
  let h1 = Setup.state_hash sys in
  let events = Recorder.events recorder in
  let cps = Snapshot.checkpoints mgr in
  Alcotest.(check bool) "several checkpoints" true (List.length cps >= 3);
  (* a mid-run checkpoint, not the root *)
  let mid = List.nth cps (List.length cps / 2) in
  Alcotest.(check bool) "mid is mid-run" true (Snapshot.instrs mid > 0L);
  (* restore and re-run to completion: must converge to the same state *)
  Snapshot.restore sys.Setup.machine mid;
  let replay =
    Replay.create ~machine:sys.Setup.machine
      ~events:(drop (Snapshot.events_before mid) events)
      ()
  in
  Tracer.set_sink tracer (Replay.feed replay);
  Machine.run ~max_instrs:500_000_000L sys.Setup.machine;
  Helpers.check_i64 "restored re-run matches straight-line" h1
    (Setup.state_hash sys);
  match Replay.finish replay with
  | Replay.Match { verified } ->
      Helpers.check_int "log suffix fully verified"
        (List.length events - Snapshot.events_before mid)
        verified
  | o ->
      Alcotest.failf "rewind replay: %s"
        (Format.asprintf "%a" Replay.pp_outcome o)

let test_checkpoint_paging_workload () =
  (* Checkpoint in the middle of an Sv39 workload, then rewind-replay:
     restore must drop the TLB and fetch-page cache along with the
     icache, or the resumed run serves translations for the restored
     page tables from the pre-restore address space and diverges. *)
  let paging_scripts sys =
    [
      Script.
        [
          Enable_paging (Mir_kernel.Paging.identity_satp sys.Setup.machine);
          Putchar 'p'; Rdtime; Set_timer 300L; Misaligned_load;
          Misaligned_store; Compute 600L; Tick_wfi 100L; Loop 8L;
          Putchar '!'; End;
        ];
    ]
  in
  let sys = Setup.create vf2 Setup.Virtualized in
  let recorder, tracer = Setup.attach_recorder sys in
  let mgr =
    Setup.checkpoint_manager sys ~every:8_000L ~events_seen:(fun () ->
        Recorder.count recorder)
  in
  Setup.run_scripts sys (paging_scripts sys);
  let h1 = Setup.state_hash sys in
  let events = Recorder.events recorder in
  let cps = Snapshot.checkpoints mgr in
  Alcotest.(check bool) "several checkpoints" true (List.length cps >= 3);
  let mid = List.nth cps (List.length cps / 2) in
  Alcotest.(check bool) "mid is mid-run" true (Snapshot.instrs mid > 0L);
  Snapshot.restore sys.Setup.machine mid;
  let replay =
    Replay.create ~machine:sys.Setup.machine
      ~events:(drop (Snapshot.events_before mid) events)
      ()
  in
  Tracer.set_sink tracer (Replay.feed replay);
  Machine.run ~max_instrs:500_000_000L sys.Setup.machine;
  Helpers.check_i64 "paged restored re-run matches straight-line" h1
    (Setup.state_hash sys);
  match Replay.finish replay with
  | Replay.Match _ -> ()
  | o ->
      Alcotest.failf "paging rewind replay: %s"
        (Format.asprintf "%a" Replay.pp_outcome o)

(* ------------------------------------------------------------------ *)
(* Divergence detection                                                *)
(* ------------------------------------------------------------------ *)

let test_divergence_detects_mutated_csr () =
  let _, recorder, _ = record_run () in
  let events = Recorder.events recorder in
  let n = List.length events / 3 in
  let sys = Setup.create vf2 Setup.Virtualized in
  let replay, _ = Setup.attach_replay sys ~events in
  (* once n events have verified, silently corrupt hart 0's mscratch —
     the digest of hart 0's next event must flag it *)
  let m = sys.Setup.machine in
  let injected = ref false in
  let prev = m.Machine.on_chunk in
  m.Machine.on_chunk <-
    Some
      (fun mm ->
        (match prev with Some f -> f mm | None -> ());
        if (not !injected) && Replay.verified replay >= n then begin
          injected := true;
          Mir_rv.Csr_file.write_raw
            mm.Machine.harts.(0).Hart.csr
            Mir_rv.Csr_addr.mscratch 0xDEAD_BEEFL
        end);
  Setup.run_scripts sys scripts;
  Alcotest.(check bool) "mutation injected" true !injected;
  match Replay.finish replay with
  | Replay.Diverged d ->
      Helpers.check_int "on the mutated hart" 0 d.Replay.hart;
      Alcotest.(check bool) "caught past the injection point" true (d.Replay.seq >= n);
      let delta =
        List.find_opt (fun dl -> dl.Replay.name = "mscratch") d.Replay.deltas
      in
      (match delta with
      | None ->
          Alcotest.failf "mscratch not in deltas: %s"
            (Format.asprintf "%a" Replay.pp_divergence d)
      | Some dl -> Helpers.check_i64 "live value" 0xDEAD_BEEFL dl.Replay.live)
  | o ->
      Alcotest.failf "expected divergence, got %s"
        (Format.asprintf "%a" Replay.pp_outcome o)

(* ------------------------------------------------------------------ *)
(* Seeded PRNG plumbing                                                *)
(* ------------------------------------------------------------------ *)

let test_config_prng () =
  let stream seed label =
    let p = Miralis.Config.derive seed label in
    List.init 8 (fun _ -> Mir_util.Prng.next p)
  in
  Alcotest.(check (list int64))
    "same seed+label is deterministic"
    (stream 42L "verif:mret") (stream 42L "verif:mret");
  Alcotest.(check bool)
    "different labels decorrelate" true
    (stream 42L "verif:mret" <> stream 42L "verif:sret");
  Alcotest.(check bool)
    "different seeds decorrelate" true
    (stream 42L "verif:mret" <> stream 43L "verif:mret")

let () =
  Alcotest.run "trace"
    [
      ( "events",
        [
          Alcotest.test_case "json round-trip all kinds" `Quick
            test_event_roundtrip;
          Alcotest.test_case "malformed json rejected" `Quick
            test_event_parse_errors;
          Alcotest.test_case "recorder jsonl round-trip" `Quick
            test_recorder_jsonl_roundtrip;
        ] );
      ( "ring",
        [ Alcotest.test_case "drops oldest on overflow" `Quick test_ring_drops_oldest ] );
      ( "memory",
        [ Alcotest.test_case "dirty-page tracking" `Quick test_dirty_pages ] );
      ( "replay",
        [
          Alcotest.test_case "record then replay fresh system" `Slow
            test_record_replay_fresh;
          Alcotest.test_case "jsonl file round-trip replay" `Slow
            test_jsonl_file_roundtrip_replay;
          Alcotest.test_case "divergence: one mutated CSR" `Slow
            test_divergence_detects_mutated_csr;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "restore + rewind-replay converge" `Slow
            test_checkpoint_restore_and_rewind_replay;
          Alcotest.test_case "checkpoint mid-paging workload" `Quick
            test_checkpoint_paging_workload;
        ] );
      ( "prng",
        [ Alcotest.test_case "config-rooted determinism" `Quick test_config_prng ] );
    ]
