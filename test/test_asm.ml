(* Assembler tests: layout, label resolution, li expansion, data
   directives — verified by executing the assembled programs. *)

module Asm = Mir_asm.Asm
module Machine = Mir_rv.Machine
open Asm.I
open Asm.Reg

let ram_base = Machine.default_config.Machine.ram_base
let result_addr = Int64.add ram_base 0x100000L
let poweroff = [ li t6 0x100000L; li t5 0x5555L; sw t5 0L t6 ]
let store_result reg = [ li t6 result_addr; sd reg 0L t6 ]

let run prog =
  let m, labels = Helpers.machine_with prog in
  ignore (Helpers.run_to_completion m);
  (Option.get (Machine.phys_load m result_addr 8), labels)

let test_li_values () =
  (* li must materialize arbitrary 64-bit constants exactly *)
  List.iter
    (fun v ->
      let r, _ = run ([ li a0 v ] @ store_result a0 @ poweroff) in
      Helpers.check_i64 (Printf.sprintf "li %Lx" v) v r)
    [
      0L; 1L; -1L; 2047L; -2048L; 2048L; 0x7FFFFFFFL; 0x80000000L;
      0xFFFFFFFFL; 0x123456789ABCDEFL; Int64.min_int; Int64.max_int;
      0x8000000080000000L; 0xDEADBEEFCAFEBABEL;
    ]

let test_la_resolves_forward_and_back () =
  let prog =
    [ la a0 "back"; la a1 "fwd"; sub a2 a1 a0 ]
    @ store_result a2 @ poweroff
    @ [ label "fwd"; Asm.Word64 7L ]
  in
  let prog = (Asm.Label "back" :: prog) in
  let r, labels = run prog in
  let fwd = Asm.label_addr labels "fwd" and back = Asm.label_addr labels "back" in
  Helpers.check_i64 "distance" (Int64.sub fwd back) r

let test_word_label () =
  let prog =
    [ la a0 "table"; ld a1 0L a0 ]
    @ store_result a1 @ poweroff
    @ [ Asm.Align 8; label "table"; Asm.Word_label "target"; label "target" ]
  in
  let r, labels = run prog in
  Helpers.check_i64 "word_label" (Asm.label_addr labels "target") r

let test_branch_dispatch () =
  let r, _ =
    run
      ([
         li a0 5L; li a1 5L;
         beq a0 a1 "eq";
         li a2 0L;
         j "done";
         label "eq";
         li a2 42L;
         label "done";
       ]
      @ store_result a2 @ poweroff)
  in
  Helpers.check_i64 "beq taken" 42L r

let test_call_ret () =
  let r, _ =
    run
      ([ li a0 0L; call "f"; call "f"; call "f" ]
      @ store_result a0 @ poweroff
      @ [ label "f"; addi a0 a0 7L; ret ])
  in
  Helpers.check_i64 "three calls" 21L r

let test_data_directives () =
  let r, _ =
    run
      ([ la a0 "data"; lw a1 0L a0; lbu a2 4L a0; add a3 a1 a2 ]
      @ store_result a3 @ poweroff
      @ [ Asm.Align 4; label "data"; Asm.Word32 1000L; Asm.Ascii "\005" ])
  in
  Helpers.check_i64 "word32 + ascii byte" 1005L r

let test_space_and_align () =
  let _, labels =
    Asm.assemble ~base:0x1000L
      [ Asm.Space 3; Asm.Align 8; Asm.Label "here"; Asm.I.nop ]
  in
  Helpers.check_i64 "aligned label" 0x1008L (Asm.label_addr labels "here")

let test_duplicate_label_rejected () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Asm: duplicate label x")
    (fun () ->
      ignore (Asm.assemble ~base:0L [ Asm.Label "x"; Asm.Label "x" ]))

let test_unknown_label_rejected () =
  Alcotest.(check bool) "unknown raises" true
    (match Asm.assemble ~base:0L [ Asm.I.j "nowhere" ] with
    | exception Asm.Unknown_label "nowhere" -> true
    | _ -> false)

let prop_li_random =
  Helpers.qcheck_case ~count:150 "li materializes random constants"
    (fun v ->
      let r, _ = run ([ li a0 v ] @ store_result a0 @ poweroff) in
      r = v)
    QCheck.int64

let () =
  Alcotest.run "asm"
    [
      ( "asm",
        [
          Alcotest.test_case "li values" `Quick test_li_values;
          Alcotest.test_case "la forward/back" `Quick
            test_la_resolves_forward_and_back;
          Alcotest.test_case "word_label" `Quick test_word_label;
          Alcotest.test_case "branch dispatch" `Quick test_branch_dispatch;
          Alcotest.test_case "call/ret" `Quick test_call_ret;
          Alcotest.test_case "data directives" `Quick test_data_directives;
          Alcotest.test_case "space/align" `Quick test_space_and_align;
          Alcotest.test_case "duplicate label" `Quick
            test_duplicate_label_rejected;
          Alcotest.test_case "unknown label" `Quick
            test_unknown_label_rejected;
          prop_li_random;
        ] );
    ]
