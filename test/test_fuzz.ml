(* Tests for the coverage-guided differential fuzzer: determinism,
   bug-catching + shrinking, serialization round-trips, and the
   checked-in conformance vector suite. *)

module Fuzz = Mir_fuzz
module Config = Miralis.Config

let seed = Config.default_seed

(* Same seed, same budget -> byte-identical campaign: corpus content
   hashes, coverage map and coverage curve. *)
let test_deterministic () =
  let run () = Fuzz.Fuzzer.run ~seed:5L ~max_execs:1500 () in
  let a = run () and b = run () in
  Alcotest.(check int)
    "same corpus size"
    (List.length a.Fuzz.Fuzzer.corpus)
    (List.length b.Fuzz.Fuzzer.corpus);
  List.iter2
    (fun x y ->
      Helpers.check_i64 "same corpus hash" (Fuzz.Input.hash x)
        (Fuzz.Input.hash y))
    a.Fuzz.Fuzzer.corpus b.Fuzz.Fuzzer.corpus;
  Helpers.check_bool "same coverage counts" true
    (Fuzz.Coverage.equal a.Fuzz.Fuzzer.coverage b.Fuzz.Fuzzer.coverage);
  Alcotest.(check (list (pair int int)))
    "same coverage curve" a.Fuzz.Fuzzer.curve b.Fuzz.Fuzzer.curve;
  Helpers.check_bool "found some coverage" true
    (Fuzz.Coverage.edges a.Fuzz.Fuzzer.coverage > 0)

(* Every §6.5 bug class must be caught, and the shrunk reproduction
   must be a genuine failing input no bigger than the original and
   within the advertised bound. *)
let test_catches_and_shrinks_injected_bugs () =
  List.iter
    (fun (name, bug) ->
      match
        (Fuzz.Fuzzer.run ~inject_bug:bug ~seed:42L ~max_execs:30_000 ())
          .Fuzz.Fuzzer.divergence
      with
      | None -> Alcotest.failf "%s: not caught in 30k execs" name
      | Some d ->
          let len_found = Fuzz.Input.length d.Fuzz.Fuzzer.input
          and len_min = Fuzz.Input.length d.Fuzz.Fuzzer.shrunk in
          if len_min > len_found then
            Alcotest.failf "%s: shrunk %d ops > original %d ops" name len_min
              len_found;
          if len_min > 8 then
            Alcotest.failf "%s: shrunk input still has %d ops" name len_min;
          (* the minimized input must still fail on a fresh executor *)
          let exec = Fuzz.Exec.create ~inject_bug:bug ~seed:42L () in
          Helpers.check_bool
            (name ^ ": shrunk input still diverges")
            true
            (Fuzz.Exec.diverges exec d.Fuzz.Fuzzer.shrunk);
          (* ... and must pass without the bug (it is the emulator
             that is broken, not the oracle) *)
          let clean = Fuzz.Exec.create ~seed:42L () in
          Helpers.check_bool
            (name ^ ": shrunk input agrees without the bug")
            true
            (not (Fuzz.Exec.diverges clean d.Fuzz.Fuzzer.shrunk)))
    [
      ("mpp", Config.Mpp_not_legalized);
      ("pmp-wr", Config.Pmp_w_without_r);
      ("vpmp-overrun", Config.Vpmp_overrun);
      ("irq-priority", Config.Interrupt_priority_swapped);
      ("mret-mpie", Config.Mret_skips_mpie);
    ]

(* A clean emulator survives a substantial campaign. *)
let test_no_false_positives () =
  let r = Fuzz.Fuzzer.run ~seed:7L ~max_execs:8_000 () in
  match r.Fuzz.Fuzzer.divergence with
  | None -> ()
  | Some d ->
      Alcotest.failf "clean campaign diverged: %s" d.Fuzz.Fuzzer.reason

let test_coverage_roundtrip () =
  let c = Fuzz.Coverage.create () in
  List.iter
    (fun i -> ignore (Fuzz.Coverage.add c i))
    [ 0; 0; 0; 5; 17; 17; 4093; Fuzz.Coverage.size - 1 ];
  match Fuzz.Coverage.of_string (Fuzz.Coverage.to_string c) with
  | Error msg -> Alcotest.failf "coverage parse: %s" msg
  | Ok c' ->
      Helpers.check_bool "coverage round-trips" true (Fuzz.Coverage.equal c c');
      Alcotest.(check int) "edges" (Fuzz.Coverage.edges c)
        (Fuzz.Coverage.edges c');
      Alcotest.(check int) "total" (Fuzz.Coverage.total c)
        (Fuzz.Coverage.total c')

let test_input_jsonl_roundtrip () =
  let check_input name input =
    match Fuzz.Input.of_jsonl (Fuzz.Input.to_jsonl input) with
    | Error msg -> Alcotest.failf "%s: parse: %s" name msg
    | Ok input' ->
        Helpers.check_bool (name ^ " round-trips") true
          (Fuzz.Input.equal input input');
        Helpers.check_i64 (name ^ " hash") (Fuzz.Input.hash input)
          (Fuzz.Input.hash input')
  in
  List.iter (fun (name, input) -> check_input name input) Fuzz.Vectors.builtin;
  (* and a pile of generated ones *)
  let config = Fuzz.Exec.config (Fuzz.Exec.create ~seed ()) in
  let prng = Config.derive seed "test:jsonl" in
  for i = 1 to 50 do
    check_input
      (Printf.sprintf "fresh-%d" i)
      (Fuzz.Gen.fresh config prng ~len:(1 + (i mod Fuzz.Gen.max_len)))
  done

(* The built-in conformance vectors agree on a clean emulator... *)
let test_builtin_vectors_agree () =
  match Fuzz.Fuzzer.replay ~seed Fuzz.Vectors.builtin with
  | Ok (), coverage ->
      Helpers.check_bool "vectors exercise many edges" true
        (Fuzz.Coverage.edges coverage > 10)
  | Error (name, idx, reason), _ ->
      Alcotest.failf "vector %s diverges at op %d: %s" name idx reason

(* ... and the irq-priority vector pins the interrupt-priority bug. *)
let test_irq_vector_detects_priority_bug () =
  match
    Fuzz.Fuzzer.replay ~seed
      ~inject_bug:Config.Interrupt_priority_swapped
      Fuzz.Vectors.builtin
  with
  | Ok (), _ -> Alcotest.fail "irq-priority bug not detected by vectors"
  | Error (name, _, _), _ ->
      Alcotest.(check string) "caught by the irq vector" "irq-priority" name

(* The checked-in test/vectors/ files replay green: they are the
   regression suite for the emulator, frozen on disk. *)
let test_checked_in_vectors_agree () =
  (* cwd is the test directory under `dune runtest`, the project root
     under a bare `dune exec` *)
  let dir =
    if Sys.file_exists "vectors" then "vectors" else "test/vectors"
  in
  let vectors = Fuzz.Corpus.load_dir dir in
  Helpers.check_bool "vectors directory is populated" true
    (List.length vectors >= 10);
  let inputs =
    List.map
      (fun (name, r) ->
        match r with
        | Ok input -> (name, input)
        | Error msg -> Alcotest.failf "%s: %s" name msg)
      vectors
  in
  match Fuzz.Fuzzer.replay ~seed inputs with
  | Ok (), _ -> ()
  | Error (name, idx, reason), _ ->
      Alcotest.failf "checked-in vector %s diverges at op %d: %s" name idx
        reason

(* Corpus persistence: content-hash names, loadable, deduplicated. *)
let test_corpus_dir_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "mir_fuzz_test" in
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (if Sys.file_exists dir then Sys.readdir dir else [||]);
  let r = Fuzz.Fuzzer.run ~seed:11L ~max_execs:500 ~corpus_dir:dir () in
  let loaded = Fuzz.Corpus.load_dir dir in
  (* mutation can rediscover an input with identical content (count
     bucketing makes it "interesting" again): files dedup by hash *)
  let distinct =
    List.sort_uniq Int64.compare (List.map Fuzz.Input.hash r.Fuzz.Fuzzer.corpus)
  in
  Alcotest.(check int)
    "one file per distinct corpus input" (List.length distinct)
    (List.length loaded);
  List.iter
    (fun (name, res) ->
      match res with
      | Error msg -> Alcotest.failf "%s: %s" name msg
      | Ok input ->
          let expect = Printf.sprintf "cov-%016Lx.jsonl" (Fuzz.Input.hash input) in
          Alcotest.(check string) "hash-named" expect name)
    loaded

let () =
  Alcotest.run "fuzz"
    [
      ( "fuzz",
        [
          Alcotest.test_case "deterministic campaigns" `Quick
            test_deterministic;
          Alcotest.test_case "catches and shrinks injected bugs" `Slow
            test_catches_and_shrinks_injected_bugs;
          Alcotest.test_case "no false positives" `Quick
            test_no_false_positives;
          Alcotest.test_case "coverage round-trip" `Quick
            test_coverage_roundtrip;
          Alcotest.test_case "input jsonl round-trip" `Quick
            test_input_jsonl_roundtrip;
          Alcotest.test_case "builtin vectors agree" `Quick
            test_builtin_vectors_agree;
          Alcotest.test_case "irq vector detects priority bug" `Quick
            test_irq_vector_detects_priority_bug;
          Alcotest.test_case "checked-in vectors agree" `Quick
            test_checked_in_vectors_agree;
          Alcotest.test_case "corpus dir round-trip" `Quick
            test_corpus_dir_roundtrip;
        ] );
    ]
