(* A-extension tests: fetch-and-op semantics, LR/SC success and
   failure, cross-hart reservation invalidation, SMP counters, and the
   encoder round-trip for the AMO space. *)

module Machine = Mir_rv.Machine
module Instr = Mir_rv.Instr
module Asm = Mir_asm.Asm
open Asm.I
open Asm.Reg

let ram_base = Machine.default_config.Machine.ram_base
let result_addr = Int64.add ram_base 0x100000L
let cell = Int64.add ram_base 0x100100L
let poweroff = [ li t6 0x100000L; li t5 0x5555L; sw t5 0L t6 ]
let store_result reg = [ li t6 result_addr; sd reg 0L t6 ]

let run prog =
  let m, _ = Helpers.machine_with prog in
  ignore (Helpers.run_to_completion m);
  (Option.get (Machine.phys_load m result_addr 8), m)

let test_amoadd () =
  let r, m =
    run
      ([ li a0 cell; li a1 40L; sd a1 0L a0; li a2 2L;
         amoadd_d a3 a2 a0 ]
      @ store_result a3 @ poweroff)
  in
  Helpers.check_i64 "rd = old value" 40L r;
  Helpers.check_i64 "memory updated" 42L (Option.get (Machine.phys_load m cell 8))

let test_amoswap_w_sign_extends () =
  let r, m =
    run
      ([ li a0 cell; li a1 0xFFFFFFFFL; sw a1 0L a0; li a2 5L;
         amoswap_w a3 a2 a0 ]
      @ store_result a3 @ poweroff)
  in
  (* the 32-bit old value is sign-extended into rd *)
  Helpers.check_i64 "rd sign-extended" (-1L) r;
  Helpers.check_i64 "low word swapped" 5L
    (Option.get (Machine.phys_load m cell 4))

let test_lr_sc_success () =
  let r, m =
    run
      ([ li a0 cell; li a1 7L; sd a1 0L a0;
         lr_d a2 a0; addi a2 a2 1L; sc_d a3 a2 a0 ]
      @ store_result a3 @ poweroff)
  in
  Helpers.check_i64 "sc succeeded" 0L r;
  Helpers.check_i64 "incremented" 8L (Option.get (Machine.phys_load m cell 8))

let test_sc_without_reservation_fails () =
  let r, m =
    run
      ([ li a0 cell; li a1 7L; sd a1 0L a0; li a2 99L; sc_d a3 a2 a0 ]
      @ store_result a3 @ poweroff)
  in
  Helpers.check_i64 "sc failed" 1L r;
  Helpers.check_i64 "memory untouched" 7L
    (Option.get (Machine.phys_load m cell 8))

let test_store_breaks_reservation () =
  let r, _ =
    run
      ([ li a0 cell; lr_d a2 a0;
         (* an intervening ordinary store to the same address *)
         li a1 3L; sd a1 0L a0;
         sc_d a3 a2 a0 ]
      @ store_result a3 @ poweroff)
  in
  Helpers.check_i64 "sc failed after store" 1L r

let test_misaligned_amo_traps () =
  let r, _ =
    run
      ([ la t0 "mtrap"; csrw Mir_rv.Csr_addr.mtvec t0;
         li a0 (Int64.add cell 4L); li a2 1L;
         amoadd_d a3 a2 a0;
         label "mtrap"; csrr a0 Mir_rv.Csr_addr.mcause ]
      @ store_result a0 @ poweroff)
  in
  (* cause 6: store/AMO misaligned *)
  Helpers.check_i64 "amo misaligned" 6L r

let test_smp_atomic_counter () =
  (* four harts each add 1000 to a shared cell with amoadd; the final
     value proves atomicity across the round-robin interleaving *)
  let config = { Machine.default_config with Machine.nharts = 4 } in
  let prog =
    [
      li a0 cell;
      li t0 1000L;
      li t1 1L;
      label "loop";
      amoadd_d zero t1 a0;
      addi t0 t0 (-1L);
      bnez t0 "loop";
      (* rendezvous: bump the arrival counter *)
      li a1 (Int64.add cell 8L);
      li t2 1L;
      amoadd_d zero t2 a1;
      (* hart 0 waits for all four then powers off *)
      csrr t3 Mir_rv.Csr_addr.mhartid;
      bnez t3 "park";
      label "wait";
      ld t4 0L a1;
      li t5 4L;
      bne t4 t5 "wait";
    ]
    @ poweroff
    @ [ label "park"; wfi; j "park" ]
  in
  let m, _ = Helpers.machine_with ~config prog in
  Machine.run ~max_instrs:10_000_000L m;
  Helpers.check_i64 "4 x 1000 atomic increments" 4000L
    (Option.get (Machine.phys_load m cell 8))

let prop_amo_roundtrip =
  let gen =
    QCheck.Gen.(
      oneofl
        Instr.[ Lr; Sc; Swap; Amoadd; Amoxor; Amoand; Amoor; Amomin;
                Amomax; Amominu; Amomaxu ]
      >>= fun op ->
      bool >>= fun wide ->
      bool >>= fun aq ->
      bool >>= fun rl ->
      int_range 0 31 >>= fun rd ->
      int_range 0 31 >>= fun rs1 ->
      int_range 0 31 >>= fun rs2 ->
      let rs2 = if op = Instr.Lr then 0 else rs2 in
      return (Instr.Amo { op; wide; aq; rl; rd; rs1; rs2 }))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"amo decode(encode) = id" ~count:1000
       (QCheck.make gen ~print:Instr.to_string)
       (fun i -> Mir_rv.Decode.decode (Mir_rv.Encode.encode i) = Some i))

let test_misa_advertises_a () =
  let f = Mir_rv.Csr_file.create Mir_rv.Csr_spec.default_config ~hart_id:0 in
  Alcotest.(check bool) "misa.A" true
    (Mir_util.Bits.test (Mir_rv.Csr_file.read f Mir_rv.Csr_addr.misa) 0)

let () =
  Alcotest.run "atomics"
    [
      ( "atomics",
        [
          Alcotest.test_case "amoadd" `Quick test_amoadd;
          Alcotest.test_case "amoswap.w sign extension" `Quick
            test_amoswap_w_sign_extends;
          Alcotest.test_case "lr/sc success" `Quick test_lr_sc_success;
          Alcotest.test_case "sc without reservation" `Quick
            test_sc_without_reservation_fails;
          Alcotest.test_case "store breaks reservation" `Quick
            test_store_breaks_reservation;
          Alcotest.test_case "misaligned amo" `Quick test_misaligned_amo_traps;
          Alcotest.test_case "smp atomic counter" `Quick
            test_smp_atomic_counter;
          Alcotest.test_case "misa advertises A" `Quick test_misa_advertises_a;
          prop_amo_roundtrip;
        ] );
    ]
