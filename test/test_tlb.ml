(* Software-TLB semantics (lib/rv/tlb.ml + the Machine.resolve fast
   path).

   Each test builds a minimal Sv39 address space (one root, one L1,
   one L0 table, a few data pages) on a 1-hart machine with a 16-entry
   TLB and drives translations through Machine.vload/vstore, checking
   the hit/miss counters and the invalidation events the ISSUE's
   matrix requires: sfence.vma (global and per-address), satp writes
   without a fence, mstatus.SUM changes, D-bit promotion on the first
   store through a Load-installed entry, and PMP reconfiguration. *)

module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Tlb = Mir_rv.Tlb
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Cause = Mir_rv.Cause
module Priv = Mir_rv.Priv
module Vmem = Mir_rv.Vmem
module Pmp = Mir_rv.Pmp
module Ms = Mir_rv.Csr_spec.Mstatus

let config =
  {
    Machine.default_config with
    Machine.ram_size = 512 * 1024;
    nharts = 1;
    tlb_entries = 16;
  }

let ram_base = config.Machine.ram_base
let root_off = 0x20000
let l1_off = 0x21000
let l0_off = 0x22000
let page_off p = 0x10000 + (p lsl 12)

type env = { m : Machine.t; hart : Hart.t }

let abs off = Int64.add ram_base (Int64.of_int off)

let store64 env off v =
  Alcotest.(check bool) "phys_store in RAM" true
    (Machine.phys_store env.m (abs off) 8 v)

let load64 env off = Option.get (Machine.phys_load env.m (abs off) 8)

let pte_at off lowbits =
  Int64.logor
    (Int64.shift_left (Int64.shift_right_logical (abs off) 12) 10)
    lowbits

let rwxad =
  List.fold_left Int64.logor 0L
    Vmem.[ pte_v; pte_r; pte_w; pte_x; pte_a; pte_d ]

let map env ~vpn ~page ~perms =
  store64 env (l0_off + (8 * vpn)) (pte_at (page_off page) perms)

let satp_value = Int64.logor (Int64.shift_left 8L 60)
    (Int64.shift_right_logical (abs root_off) 12)

let setup () =
  let m = Machine.create config in
  let hart = m.Machine.harts.(0) in
  Hart.reset hart ~pc:ram_base;
  let env = { m; hart } in
  let csr = hart.Hart.csr in
  (* PMP slot 7: NAPOT allow-all baseline *)
  Csr_file.write csr (Csr_addr.pmpaddr 7) (-1L);
  Csr_file.write csr (Csr_addr.pmpcfg 0)
    (Int64.shift_left 0b0011111L 56);
  store64 env root_off (pte_at l1_off Vmem.pte_v);
  store64 env l1_off (pte_at l0_off Vmem.pte_v);
  Csr_file.write csr Csr_addr.satp satp_value;
  hart.Hart.priv <- Priv.S;
  Machine.sfence_vma m ();
  (* absorb the epoch bumps from the setup CSR writes so the tests
     below see clean hit/miss deltas *)
  Tlb.sync_epoch hart.Hart.tlb (Csr_file.vm_epoch csr);
  Tlb.reset_counters hart.Hart.tlb;
  env

let vload env vaddr = Machine.vload env.m env.hart vaddr 8 ~signed:false
let vstore env vaddr v = Machine.vstore env.m env.hart vaddr 8 v

let check_load_faults name env vaddr exc =
  match vload env vaddr with
  | v -> Alcotest.failf "%s: expected fault, got %#Lx" name v
  | exception Cause.Trap (e, _) ->
      Alcotest.(check string) name
        (Cause.to_string (Cause.Exception exc))
        (Cause.to_string (Cause.Exception e))

(* ------------------------------------------------------------------ *)

let test_hit_after_walk () =
  let env = setup () in
  map env ~vpn:5 ~page:0 ~perms:rwxad;
  Machine.sfence_vma env.m ();
  store64 env (page_off 0 + 0x18) 0x1122_3344_5566_7788L;
  let tlb = env.hart.Hart.tlb in
  Tlb.reset_counters tlb;
  Helpers.check_i64 "first load walks" 0x1122_3344_5566_7788L
    (vload env 0x5018L);
  Helpers.check_int "one miss" 1 (Tlb.misses tlb);
  Helpers.check_int "no hit yet" 0 (Tlb.hits tlb);
  Helpers.check_i64 "second load" 0x1122_3344_5566_7788L (vload env 0x5018L);
  Helpers.check_int "served from the TLB" 1 (Tlb.hits tlb);
  Helpers.check_int "still one miss" 1 (Tlb.misses tlb);
  (* fetch shares the entry: rwxad includes X *)
  let p1 = Machine.resolve env.m env.hart ~priv:Priv.S Vmem.Fetch 0x5000L 4 in
  Helpers.check_i64 "fetch resolves to the pool page" (abs (page_off 0)) p1;
  let h = Tlb.hits tlb in
  ignore (Machine.resolve env.m env.hart ~priv:Priv.S Vmem.Fetch 0x5000L 4);
  Helpers.check_int "fetch hit" (h + 1) (Tlb.hits tlb)

let test_sfence_invalidation () =
  let env = setup () in
  map env ~vpn:5 ~page:0 ~perms:rwxad;
  map env ~vpn:6 ~page:1 ~perms:rwxad;
  Machine.sfence_vma env.m ();
  let tlb = env.hart.Hart.tlb in
  ignore (vload env 0x5000L);
  ignore (vload env 0x6000L);
  (* global sfence drops everything *)
  Machine.sfence_vma env.m ();
  let m0 = Tlb.misses tlb in
  ignore (vload env 0x5000L);
  Helpers.check_int "global sfence: re-walk" (m0 + 1) (Tlb.misses tlb);
  ignore (vload env 0x6000L);
  (* per-address sfence only drops the named page *)
  Machine.sfence_vma env.m ~vaddr:0x6000L ();
  let h0 = Tlb.hits tlb and m1 = Tlb.misses tlb in
  ignore (vload env 0x5000L);
  Helpers.check_int "other page still cached" (h0 + 1) (Tlb.hits tlb);
  ignore (vload env 0x6000L);
  Helpers.check_int "named page re-walks" (m1 + 1) (Tlb.misses tlb)

let test_satp_write_invalidates_without_sfence () =
  let env = setup () in
  map env ~vpn:5 ~page:0 ~perms:rwxad;
  Machine.sfence_vma env.m ();
  store64 env (page_off 0) 0xAAAAL;
  store64 env (page_off 1) 0xBBBBL;
  Helpers.check_i64 "initial mapping" 0xAAAAL (vload env 0x5000L);
  (* remap the vpage with no sfence at all; rewriting satp (even with
     the same value) must flush the stale translation *)
  map env ~vpn:5 ~page:1 ~perms:rwxad;
  Csr_file.write env.hart.Hart.csr Csr_addr.satp satp_value;
  Helpers.check_i64 "stale translation not served" 0xBBBBL
    (vload env 0x5000L)

let test_sum_toggle_invalidates () =
  let env = setup () in
  let csr = env.hart.Hart.csr in
  map env ~vpn:5 ~page:0 ~perms:(Int64.logor rwxad Vmem.pte_u);
  Machine.sfence_vma env.m ();
  (* SUM=1: S-mode may touch the U page; this installs the entry *)
  Csr_file.write csr Csr_addr.mstatus
    (Int64.logor
       (Csr_file.read_raw csr Csr_addr.mstatus)
       (Int64.shift_left 1L Ms.sum));
  ignore (vload env 0x5000L);
  (* clearing SUM, with no fence, must invalidate the cached verdict *)
  Csr_file.write csr Csr_addr.mstatus
    (Int64.logand
       (Csr_file.read_raw csr Csr_addr.mstatus)
       (Int64.lognot (Int64.shift_left 1L Ms.sum)));
  check_load_faults "U page without SUM faults" env 0x5000L
    Cause.Load_page_fault

let test_dbit_promotion () =
  let env = setup () in
  let no_d =
    List.fold_left Int64.logor 0L Vmem.[ pte_v; pte_r; pte_w; pte_a ]
  in
  map env ~vpn:5 ~page:0 ~perms:no_d;
  Machine.sfence_vma env.m ();
  ignore (vload env 0x5000L) (* installs a load-only entry *);
  Helpers.check_i64 "D clear after load" 0L
    (Int64.logand (load64 env (l0_off + 40)) Vmem.pte_d);
  let tlb = env.hart.Hart.tlb in
  let m0 = Tlb.misses tlb in
  vstore env 0x5000L 0x77L;
  Helpers.check_int "store through load-entry re-walks" (m0 + 1)
    (Tlb.misses tlb);
  Helpers.check_i64 "walk set the D bit" Vmem.pte_d
    (Int64.logand (load64 env (l0_off + 40)) Vmem.pte_d);
  Helpers.check_i64 "store landed" 0x77L (load64 env (page_off 0));
  let h0 = Tlb.hits tlb in
  vstore env 0x5000L 0x78L;
  Helpers.check_int "second store hits" (h0 + 1) (Tlb.hits tlb)

let test_pmp_reconfig_invalidates () =
  let env = setup () in
  let csr = env.hart.Hart.csr in
  map env ~vpn:5 ~page:0 ~perms:rwxad;
  Machine.sfence_vma env.m ();
  ignore (vload env 0x5000L) (* caches the page-wide PMP pass *);
  (* interpose a no-permission NAPOT entry over the pool page in a
     higher-priority slot — no fence: the cfg write must invalidate *)
  Csr_file.write csr (Csr_addr.pmpaddr 0)
    (Pmp.napot_encode ~base:(abs (page_off 0)) ~size:4096L);
  Csr_file.write csr (Csr_addr.pmpcfg 0)
    (Int64.logor
       (Csr_file.read_raw csr (Csr_addr.pmpcfg 0))
       0b0011000L);
  check_load_faults "revoked PMP region faults" env 0x5000L
    Cause.Load_access_fault

(* ------------------------------------------------------------------ *)
(* Multi-hart: a fence issued by one hart must shoot down its          *)
(* siblings' cached translations.                                      *)
(* ------------------------------------------------------------------ *)

let setup_mh () =
  let m = Machine.create { config with Machine.nharts = 2 } in
  Array.iter
    (fun hart ->
      Hart.reset hart ~pc:ram_base;
      let csr = hart.Hart.csr in
      Csr_file.write csr (Csr_addr.pmpaddr 7) (-1L);
      Csr_file.write csr (Csr_addr.pmpcfg 0)
        (Int64.shift_left 0b0011111L 56))
    m.Machine.harts;
  let env = { m; hart = m.Machine.harts.(0) } in
  store64 env root_off (pte_at l1_off Vmem.pte_v);
  store64 env l1_off (pte_at l0_off Vmem.pte_v);
  Array.iter
    (fun hart ->
      Csr_file.write hart.Hart.csr Csr_addr.satp satp_value;
      hart.Hart.priv <- Priv.S)
    m.Machine.harts;
  Machine.sfence_vma m ();
  Array.iter
    (fun hart ->
      Tlb.sync_epoch hart.Hart.tlb (Csr_file.vm_epoch hart.Hart.csr);
      Tlb.reset_counters hart.Hart.tlb)
    m.Machine.harts;
  env

let vload_on env hart vaddr =
  Machine.vload env.m hart vaddr 8 ~signed:false

let test_cross_hart_sfence () =
  let env = setup_mh () in
  let h1 = env.m.Machine.harts.(1) in
  map env ~vpn:5 ~page:0 ~perms:rwxad;
  Machine.sfence_vma env.m ();
  store64 env (page_off 0) 0xAAAAL;
  store64 env (page_off 1) 0xBBBBL;
  Helpers.check_i64 "hart 1 initial walk" 0xAAAAL (vload_on env h1 0x5000L);
  (* remap with no fence: hart 1 keeps serving the stale frame *)
  map env ~vpn:5 ~page:1 ~perms:rwxad;
  let h0hits = Tlb.hits h1.Hart.tlb in
  Helpers.check_i64 "stale entry until fenced" 0xAAAAL
    (vload_on env h1 0x5000L);
  Helpers.check_int "served from hart 1's TLB" (h0hits + 1)
    (Tlb.hits h1.Hart.tlb);
  (* hart 0 fences: hart 1's very next access must re-walk *)
  let m0 = Tlb.misses h1.Hart.tlb in
  Machine.sfence_vma env.m ~from:0 ();
  Helpers.check_i64 "remote fence reaches hart 1" 0xBBBBL
    (vload_on env h1 0x5000L);
  Helpers.check_int "hart 1 re-walked" (m0 + 1) (Tlb.misses h1.Hart.tlb)

let test_cross_hart_sfence_per_address () =
  let env = setup_mh () in
  let h1 = env.m.Machine.harts.(1) in
  map env ~vpn:5 ~page:0 ~perms:rwxad;
  map env ~vpn:6 ~page:2 ~perms:rwxad;
  Machine.sfence_vma env.m ();
  store64 env (page_off 0) 0xAAAAL;
  store64 env (page_off 1) 0xBBBBL;
  ignore (vload_on env h1 0x5000L);
  ignore (vload_on env h1 0x6000L);
  map env ~vpn:5 ~page:1 ~perms:rwxad;
  (* hart 0 fences only the remapped page *)
  Machine.sfence_vma env.m ~from:0 ~vaddr:0x5000L ();
  let hits = Tlb.hits h1.Hart.tlb and misses = Tlb.misses h1.Hart.tlb in
  Helpers.check_i64 "named page re-walked on hart 1" 0xBBBBL
    (vload_on env h1 0x5000L);
  Helpers.check_int "miss on the named page" (misses + 1)
    (Tlb.misses h1.Hart.tlb);
  ignore (vload_on env h1 0x6000L);
  Helpers.check_int "other page still cached on hart 1" (hits + 1)
    (Tlb.hits h1.Hart.tlb)

let () =
  Alcotest.run "tlb"
    [
      ( "tlb",
        [
          Alcotest.test_case "hit after walk" `Quick test_hit_after_walk;
          Alcotest.test_case "sfence global + per-address" `Quick
            test_sfence_invalidation;
          Alcotest.test_case "satp write invalidates without sfence" `Quick
            test_satp_write_invalidates_without_sfence;
          Alcotest.test_case "SUM toggle invalidates" `Quick
            test_sum_toggle_invalidates;
          Alcotest.test_case "D-bit promotion on first store" `Quick
            test_dbit_promotion;
          Alcotest.test_case "PMP reconfig invalidates" `Quick
            test_pmp_reconfig_invalidates;
        ] );
      ( "multi-hart",
        [
          Alcotest.test_case "cross-hart sfence (global)" `Quick
            test_cross_hart_sfence;
          Alcotest.test_case "cross-hart sfence (per-address)" `Quick
            test_cross_hart_sfence_per_address;
        ] );
    ]
