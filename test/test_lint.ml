(* The AST-driven invariant analyzer (lib/analysis).

   Per rule: at least one triggering and one non-triggering fixture,
   including a string-literal/comment decoy — the class of false
   positives the old grep lint could not avoid (this very file would
   have tripped it). Regression fixtures pin the legacy
   false-positive/negative classes: rule 2 firing on comments and
   doc-strings, rule 6 missing annotated and multi-line mutable
   bindings. A generic sweep asserts every rule's diagnostics
   disappear when the rule is disabled, and a self-run asserts the
   repository itself is clean. *)

module Lint = Mir_analysis.Lint
module Rules = Mir_analysis.Rules
module Allowlist = Mir_analysis.Allowlist
module Diagnostic = Mir_analysis.Diagnostic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* [(rule, line)] pairs for a snippet placed at [file]. *)
let diags ?rules ~file src =
  List.map
    (fun d -> (d.Diagnostic.rule, d.Diagnostic.line))
    (Lint.check_source ?rules ~file src)

let count rule ds = List.length (List.filter (fun (r, _) -> r = rule) ds)

let fired ?rules ~file ~rule src = count rule (diags ?rules ~file src)

(* ------------------------------------------------------------------ *)
(* Rule 1: obj-magic                                                   *)
(* ------------------------------------------------------------------ *)

let test_obj_magic () =
  check_int "Obj.magic flagged" 1
    (fired ~file:"lib/core/x.ml" ~rule:"obj-magic" "let f x = Obj.magic x\n");
  check_int "qualified Stdlib.Obj.magic flagged" 1
    (fired ~file:"bin/x.ml" ~rule:"obj-magic"
       "let f x = Stdlib.Obj.magic x\n");
  check_int "comment and string decoys silent" 0
    (fired ~file:"lib/core/x.ml" ~rule:"obj-magic"
       "(* Obj.magic is banned *)\nlet s = \"Obj.magic\"\n")

(* ------------------------------------------------------------------ *)
(* Rule 2: stdlib-random                                               *)
(* ------------------------------------------------------------------ *)

let test_stdlib_random () =
  check_int "Random.int flagged" 1
    (fired ~file:"lib/core/x.ml" ~rule:"stdlib-random"
       "let x = Random.int 5\n");
  check_int "Random.State flagged" 1
    (fired ~file:"lib/core/x.ml" ~rule:"stdlib-random"
       "let s = Random.State.make [| 1 |]\n");
  check_int "module alias flagged" 1
    (fired ~file:"lib/core/x.ml" ~rule:"stdlib-random"
       "module R = Random\n");
  check_int "open Random flagged" 1
    (fired ~file:"lib/core/x.ml" ~rule:"stdlib-random" "open Random\n");
  check_int "the seeded PRNG itself is sanctioned" 0
    (fired ~file:"lib/util/prng.ml" ~rule:"stdlib-random"
       "let x = Random.int 5\n")

(* Satellite regression: the legacy `grep "Random\."` fired on comments,
   doc-strings and string literals. The analyzer must not. *)
let test_random_comment_decoy () =
  check_int "comment/doc-string/string decoys silent" 0
    (fired ~file:"lib/core/x.ml" ~rule:"stdlib-random"
       "(* seeding via Random.self_init is banned; use Prng *)\n\
        let doc = \"Random.int rolls host entropy\"\n\n\
        (** [reseed] never touches [Random.State]. *)\n\
        let reseed prng = prng\n")

(* ------------------------------------------------------------------ *)
(* Rules 3/4: CSR write paths and raw satp installs                    *)
(* ------------------------------------------------------------------ *)

let test_csr_write_path () =
  check_int "Csr_file.write outside sanctioned paths flagged" 1
    (fired ~file:"lib/explore/x.ml" ~rule:"csr-write-path"
       "let f c v = Csr_file.write c v\n");
  check_int "set_mip_bits flagged too" 1
    (fired ~file:"lib/fleet/x.ml" ~rule:"csr-write-path"
       "let f c = Csr_file.set_mip_bits c 8L\n");
  check_int "the emulator install path is sanctioned" 0
    (fired ~file:"lib/core/emulator.ml" ~rule:"csr-write-path"
       "let f c v = Csr_file.write c v\n");
  check_int "string decoy silent" 0
    (fired ~file:"lib/explore/x.ml" ~rule:"csr-write-path"
       "let s = \"Csr_file.write\"\n")

let test_satp_raw_install () =
  (* Multi-line application: the legacy single-line regex missed the
     satp argument on the continuation line. *)
  let multiline =
    "let f c v =\n  Csr_file.write_raw c\n    Csr_addr.satp v\n"
  in
  check_int "multi-line raw satp install flagged" 1
    (fired ~file:"lib/core/emulator.ml" ~rule:"satp-raw-install" multiline);
  check_int "world switch is sanctioned" 0
    (fired ~file:"lib/core/world.ml" ~rule:"satp-raw-install" multiline);
  check_int "write_raw of a non-satp CSR not a satp diagnostic" 0
    (fired ~file:"lib/core/emulator.ml" ~rule:"satp-raw-install"
       "let f c v = Csr_file.write_raw c Csr_addr.mepc v\n")

(* ------------------------------------------------------------------ *)
(* Rules 5/7: Machine.step / Machine.step_blocks fences               *)
(* ------------------------------------------------------------------ *)

let test_machine_step () =
  check_int "Machine.step outside the fence flagged" 1
    (fired ~file:"lib/explore/x.ml" ~rule:"machine-step"
       "let f m h = Machine.step m h\n");
  check_int "qualified Mir_rv.Machine.step flagged" 1
    (fired ~file:"examples/x.ml" ~rule:"machine-step"
       "let f m h = Mir_rv.Machine.step m h\n");
  check_int "the block-engine tests are sanctioned" 0
    (fired ~file:"test/test_blocks.ml" ~rule:"machine-step"
       "let f m h = Machine.step m h\n");
  check_int "comment decoy silent" 0
    (fired ~file:"lib/explore/x.ml" ~rule:"machine-step"
       "(* switch points are atomic within one Machine.step *)\n\
        let doc = 1\n");
  (* step_blocks is not step: each fence reports under its own id. *)
  check_int "step_blocks does not fire machine-step" 0
    (fired ~file:"lib/explore/x.ml" ~rule:"machine-step"
       "let f m h = Machine.step_blocks m h\n")

let test_block_step () =
  check_int "Machine.step_blocks outside the fence flagged" 1
    (fired ~file:"lib/explore/x.ml" ~rule:"block-step"
       "let f m h = Machine.step_blocks m h\n");
  check_int "the differ is sanctioned" 0
    (fired ~file:"lib/verif/blockdiff.ml" ~rule:"block-step"
       "let f m h = Machine.step_blocks m h\n")

(* ------------------------------------------------------------------ *)
(* Rule 6: toplevel-mutable                                            *)
(* ------------------------------------------------------------------ *)

(* Satellite regression: the legacy single-line regex missed annotated
   and multi-line bindings; the analyzer sees both, at the right line. *)
let test_toplevel_mutable_legacy_misses () =
  let ds =
    diags ~file:"lib/core/x.ml"
      "let table =\n\
      \  Hashtbl.create 64\n\
       let count : int ref = ref 0\n"
  in
  check_int "multi-line + annotated both flagged" 2
    (count "toplevel-mutable" ds);
  check_bool "multi-line binding anchored at its let" true
    (List.mem ("toplevel-mutable", 1) ds);
  check_bool "annotated binding anchored at its let" true
    (List.mem ("toplevel-mutable", 3) ds)

let test_toplevel_mutable_forms () =
  let flag src =
    check_int src 1 (fired ~file:"lib/sym/x.ml" ~rule:"toplevel-mutable" src)
  in
  flag "let cell = { contents = 0 }\n";
  flag "let buf = Bytes.create 16\n";
  flag "let later = lazy (compute ())\n";
  flag "let state = Atomic.make 0\n";
  flag "let scratch = Array.make 8 0\n";
  flag "module Inner = struct\n  let q = Queue.create ()\nend\n";
  flag "module F (X : sig end) = struct\n  let st = Stack.create ()\nend\n";
  flag "let t = let n = 64 in Hashtbl.create n\n"

let test_toplevel_mutable_negative () =
  check_int "mutable state inside a constructor is the idiom" 0
    (fired ~file:"lib/core/x.ml" ~rule:"toplevel-mutable"
       "let make () = { tlb = Hashtbl.create 64; epoch = ref 0 }\n");
  check_int "immutable top-level values are fine" 0
    (fired ~file:"lib/core/x.ml" ~rule:"toplevel-mutable"
       "let names = [| \"a\"; \"b\" |]\nlet k = 42\n");
  check_int "tests are outside the rule's scope" 0
    (fired ~file:"test/test_x.ml" ~rule:"toplevel-mutable"
       "let mem = Hashtbl.create 64\n");
  check_int "string decoy silent" 0
    (fired ~file:"lib/core/x.ml" ~rule:"toplevel-mutable"
       "let doc = \"let t = Hashtbl.create 64\"\n")

(* ------------------------------------------------------------------ *)
(* Rule 8: domain-capture race detector                                *)
(* ------------------------------------------------------------------ *)

let test_domain_capture_positive () =
  let flag what src =
    check_int what 1 (fired ~file:"bin/x.ml" ~rule:"domain-capture" src)
  in
  flag "captured ref assigned"
    "let go r = Domain.spawn (fun () -> r := 1)\n";
  flag "captured ref dereferenced"
    "let go r = Domain.spawn (fun () -> print_int !r)\n";
  flag "captured hashtable mutated"
    "let go h = Domain.spawn (fun () -> Hashtbl.add h 1 2)\n";
  flag "captured array written (indexing sugar)"
    "let go slots = Domain.spawn (fun () -> slots.(0) <- 1)\n";
  flag "captured record field assigned"
    "let go t = Domain.spawn (fun () -> t.count <- t.count + 1)\n";
  flag "module-level state mutated from a spawned domain"
    "let go () = Domain.spawn (fun () -> Shared.counter := 1)\n";
  flag "fleet pool closures are spawn sites too"
    "let go h = Pool.run ~domains:2 ~tasks:4 (fun i -> Hashtbl.add h i i)\n";
  flag "qualified Fleet.Pool.run recognized"
    "let go h = Mir_fleet.Pool.run ~domains:2 ~tasks:4\n\
    \    (fun i -> Hashtbl.add h i i)\n"

let test_domain_capture_negative () =
  let ok what src =
    check_int what 0 (fired ~file:"bin/x.ml" ~rule:"domain-capture" src)
  in
  ok "ref local to the closure is domain-private"
    "let go () = Domain.spawn (fun () -> let c = ref 0 in c := 1; !c)\n";
  ok "Atomic operations are the sanctioned wrapper"
    "let go a = Domain.spawn (fun () -> Atomic.incr a)\n";
  ok "Mutex.protect guards its critical section"
    "let go m r = Domain.spawn (fun () -> Mutex.protect m (fun () -> r := 1))\n";
  ok "pure closures are fine"
    "let go xs = Domain.spawn (fun () -> List.length xs)\n";
  ok "mutation outside any spawn is rule 6's business, not rule 8's"
    "let go r = r := 1\n";
  ok "shadowing parameter makes the target closure-local"
    "let go r = Domain.spawn (fun r -> r := 1)\n"

(* ------------------------------------------------------------------ *)
(* Rule 9: determinism sources                                         *)
(* ------------------------------------------------------------------ *)

let test_determinism () =
  let ds =
    diags ~file:"lib/workloads/x.ml"
      "let t0 () = Sys.time ()\n\
       let t1 () = Unix.gettimeofday ()\n\
       let t2 () = Unix.time ()\n\
       let seed () = Domain.self ()\n"
  in
  check_int "all four entropy sources flagged" 4 (count "determinism" ds);
  check_int "Random.self_init flagged" 1
    (fired ~file:"lib/core/x.ml" ~rule:"determinism"
       "let s () = Random.self_init ()\n");
  check_int "bench/ may read the wall clock" 0
    (fired ~file:"bench/x.ml" ~rule:"determinism"
       "let t0 () = Unix.gettimeofday ()\n");
  check_int "comment decoy silent" 0
    (fired ~file:"lib/core/x.ml" ~rule:"determinism"
       "(* never call Sys.time or Unix.gettimeofday here *)\nlet k = 1\n")

(* ------------------------------------------------------------------ *)
(* Every rule's fixtures go dark when the rule is disabled             *)
(* ------------------------------------------------------------------ *)

let rule_triggers =
  [
    ("obj-magic", "lib/core/x.ml", "let f x = Obj.magic x\n");
    ("stdlib-random", "lib/core/x.ml", "let x = Random.int 5\n");
    ("csr-write-path", "lib/explore/x.ml", "let f c v = Csr_file.write c v\n");
    ( "satp-raw-install",
      "lib/core/emulator.ml",
      "let f c v =\n  Csr_file.write_raw c\n    Csr_addr.satp v\n" );
    ("machine-step", "lib/explore/x.ml", "let f m h = Machine.step m h\n");
    ( "toplevel-mutable",
      "lib/core/x.ml",
      "let t =\n  Hashtbl.create 64\n" );
    ( "block-step",
      "lib/explore/x.ml",
      "let f m h = Machine.step_blocks m h\n" );
    ( "domain-capture",
      "bin/x.ml",
      "let go r = Domain.spawn (fun () -> r := 1)\n" );
    ("determinism", "lib/core/x.ml", "let t () = Sys.time ()\n");
  ]

let test_catalog_covers_triggers () =
  check_int "one trigger fixture per rule" (List.length Rules.all)
    (List.length rule_triggers);
  List.iter
    (fun (rule, _, _) ->
      check_bool (rule ^ " is a known rule id") true (Rules.by_id rule <> None))
    rule_triggers

let test_disabled_rule_goes_dark () =
  List.iter
    (fun (rule, file, src) ->
      check_bool
        (rule ^ " fires when enabled")
        true
        (fired ~file ~rule src >= 1);
      check_int
        (rule ^ " dark when disabled")
        0
        (fired ~rules:(Rules.except [ rule ]) ~file ~rule src))
    rule_triggers

(* ------------------------------------------------------------------ *)
(* Parsing and rendering                                               *)
(* ------------------------------------------------------------------ *)

let test_parse_error_is_a_diagnostic () =
  check_int "broken source yields one parse-error" 1
    (fired ~file:"lib/core/x.ml" ~rule:"parse-error" "let let let\n");
  check_int "interfaces parse too" 1
    (fired ~file:"lib/core/x.mli" ~rule:"parse-error" "val : : :\n");
  check_int "clean interfaces yield nothing" 0
    (List.length (diags ~file:"lib/core/x.mli" "val f : int -> int\n"))

let test_json_render () =
  let report =
    {
      Lint.diagnostics =
        [
          {
            Diagnostic.rule = "obj-magic";
            file = "lib/x.ml";
            line = 3;
            col = 7;
            message = "a \"quoted\" message";
          };
        ];
      files = 1;
      unused_allowlist = [];
    }
  in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  let s = Lint.render ~format:`Json report in
  check_bool "has count" true (contains_sub s "\"count\": 1");
  check_bool "lists the rule" true (contains_sub s "\"rule\": \"obj-magic\"");
  check_bool "escapes quotes" true
    (contains_sub s "a \\\"quoted\\\" message")

(* ------------------------------------------------------------------ *)
(* Allowlist hygiene                                                   *)
(* ------------------------------------------------------------------ *)

let test_allowlist_entries_are_justified () =
  List.iter
    (fun e ->
      check_bool
        (Printf.sprintf "entry %s/%s has a written justification"
           e.Allowlist.rule e.Allowlist.path)
        true
        (String.length e.Allowlist.reason > 20);
      check_bool
        (Printf.sprintf "entry %s/%s names a known rule" e.Allowlist.rule
           e.Allowlist.path)
        true
        (Rules.by_id e.Allowlist.rule <> None))
    Allowlist.entries

let test_allowlist_suppression () =
  let d rule file line =
    { Diagnostic.rule; file; line; col = 0; message = "m" }
  in
  let ent =
    { Allowlist.rule = "determinism"; path = "lib/fuzz/"; line = None;
      reason = "r" }
  in
  check_bool "dir prefix matches" true
    (Allowlist.suppresses ent (d "determinism" "lib/fuzz/fuzzer.ml" 29));
  check_bool "other rule untouched" false
    (Allowlist.suppresses ent (d "obj-magic" "lib/fuzz/fuzzer.ml" 29));
  check_bool "other path untouched" false
    (Allowlist.suppresses ent (d "determinism" "lib/verif/prove.ml" 29));
  let pinned = { ent with Allowlist.path = "lib/fuzz/fuzzer.ml";
                 line = Some 29 } in
  check_bool "line pin matches its line" true
    (Allowlist.suppresses pinned (d "determinism" "lib/fuzz/fuzzer.ml" 29));
  check_bool "line pin rejects other lines" false
    (Allowlist.suppresses pinned (d "determinism" "lib/fuzz/fuzzer.ml" 30));
  let kept, unused = Allowlist.apply [] in
  check_int "nothing kept from nothing" 0 (List.length kept);
  check_int "all entries unused on an empty report"
    (List.length Allowlist.entries) (List.length unused)

(* ------------------------------------------------------------------ *)
(* Self-run: the repository is clean                                   *)
(* ------------------------------------------------------------------ *)

let rec find_root dir depth =
  if depth > 8 then None
  else if
    Sys.file_exists (Filename.concat dir "lib/rv")
    && Sys.file_exists (Filename.concat dir "bin")
  then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_root parent (depth + 1)

let test_self_run_clean () =
  match find_root (Sys.getcwd ()) 0 with
  | None -> Alcotest.fail "could not locate the repository root"
  | Some root ->
      let report = Lint.run ~root ~dirs:Lint.default_dirs () in
      check_bool "scanned a real tree" true (report.Lint.files > 100);
      List.iter
        (fun d -> Printf.eprintf "self-run: %s\n" (Diagnostic.to_string d))
        report.Lint.diagnostics;
      check_int "zero diagnostics on the repository" 0
        (List.length report.Lint.diagnostics);
      check_int "no unused allowlist entries" 0
        (List.length report.Lint.unused_allowlist)

let () =
  Alcotest.run "lint"
    [
      ( "legacy rules on the AST",
        [
          Alcotest.test_case "obj-magic" `Quick test_obj_magic;
          Alcotest.test_case "stdlib-random" `Quick test_stdlib_random;
          Alcotest.test_case "random comment decoy (legacy FP)" `Quick
            test_random_comment_decoy;
          Alcotest.test_case "csr-write-path" `Quick test_csr_write_path;
          Alcotest.test_case "satp-raw-install" `Quick test_satp_raw_install;
          Alcotest.test_case "machine-step" `Quick test_machine_step;
          Alcotest.test_case "block-step" `Quick test_block_step;
        ] );
      ( "toplevel-mutable",
        [
          Alcotest.test_case "legacy misses (annotated, multi-line)" `Quick
            test_toplevel_mutable_legacy_misses;
          Alcotest.test_case "all mutable forms" `Quick
            test_toplevel_mutable_forms;
          Alcotest.test_case "negatives" `Quick test_toplevel_mutable_negative;
        ] );
      ( "domain-capture",
        [
          Alcotest.test_case "races flagged" `Quick
            test_domain_capture_positive;
          Alcotest.test_case "synchronized/local captures pass" `Quick
            test_domain_capture_negative;
        ] );
      ( "determinism",
        [ Alcotest.test_case "entropy sources" `Quick test_determinism ] );
      ( "engine",
        [
          Alcotest.test_case "catalog covers triggers" `Quick
            test_catalog_covers_triggers;
          Alcotest.test_case "disabled rules go dark" `Quick
            test_disabled_rule_goes_dark;
          Alcotest.test_case "parse errors are diagnostics" `Quick
            test_parse_error_is_a_diagnostic;
          Alcotest.test_case "json rendering" `Quick test_json_render;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "entries are justified" `Quick
            test_allowlist_entries_are_justified;
          Alcotest.test_case "suppression semantics" `Quick
            test_allowlist_suppression;
        ] );
      ( "self-run",
        [ Alcotest.test_case "repository is clean" `Quick test_self_run_clean ]
      );
    ]
