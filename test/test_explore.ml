(* Schedule-explorer regression tests.

   The checked-in artifacts under test/schedules/ are shrunk failing
   schedules for the three injected race bugs; replaying each one must
   reproduce its recorded oracle violation deterministically, and each
   must stay small (the ISSUE's <= 8 preemption points bound). The
   round-robin baseline must stay blind to all three bugs — that
   asymmetry is the whole point of the explorer. *)

module Explore = Mir_explore.Explore
module Scenario = Mir_explore.Scenario
module Oracle = Mir_explore.Oracle
module Schedule = Mir_trace.Schedule
module Shrink = Mir_fuzz.Shrink
module Machine = Mir_rv.Machine
module Config = Miralis.Config

let schedule_files = [ "msip-drop.jsonl"; "vm-epoch.jsonl"; "pmp-handoff.jsonl" ]

let load_schedule file =
  match Schedule.load ~path:(Filename.concat "schedules" file) with
  | Ok sch -> sch
  | Error e -> Alcotest.failf "%s: %s" file e

let test_replay_reproduces file () =
  let sch = load_schedule file in
  Alcotest.(check bool)
    "artifact is shrunk (<= 8 preemption points)" true
    (Schedule.preemption_points sch <= 8);
  match Explore.replay sch with
  | Error e -> Alcotest.failf "replay failed: %s" e
  | Ok o ->
      Alcotest.(check bool) "violation reproduced" true
        (Explore.reproduces sch o);
      (match o.Explore.violation with
      | Some v ->
          Alcotest.(check string) "same oracle" sch.Schedule.oracle
            v.Oracle.oracle
      | None -> Alcotest.fail "replay produced no violation");
      (* determinism: a second fresh replay lands on the same step *)
      (match Explore.replay sch with
      | Ok o2 ->
          Alcotest.(check int) "deterministic step count" o.Explore.steps
            o2.Explore.steps
      | Error e -> Alcotest.failf "second replay failed: %s" e)

(* Round-robin never catches any injected bug: its switch points are
   periodic, never adjacent to the trap windows the bugs need. *)
let test_round_robin_blind bug () =
  let scn = Explore.scenario_for_bug bug in
  let c =
    Explore.run_family scn ~bug ~family:Explore.Rr ~seed:Config.default_seed
      ~max_schedules:1 ~nharts:2 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "round-robin misses %s" (Explore.bug_name bug))
    true
    (c.Explore.caught = None)

(* Without any injected bug every scenario is oracle-clean under the
   random schedules too — the oracles have no false positives. *)
let test_no_bug_clean scn () =
  List.iter
    (fun family ->
      let c =
        Explore.run_family scn ~family ~seed:Config.default_seed
          ~max_schedules:5 ~nharts:2 ()
      in
      match c.Explore.caught with
      | None -> ()
      | Some (v, _) ->
          Alcotest.failf "%s/%s: spurious %s violation" scn.Scenario.name
            (Explore.family_name family) v.Oracle.oracle)
    [ Explore.Rr; Explore.Random ]

(* The PR 2 shrinker underlying ddmin_tail: pinned head, minimal
   failing subset otherwise. *)
let test_ddmin_unit () =
  let items = List.init 10 (fun i -> i + 1) in
  let still_fails l = List.mem 3 l && List.mem 7 l in
  Alcotest.(check (list int))
    "minimal subset (head pinned)" [ 1; 3; 7 ]
    (Shrink.ddmin ~still_fails items)

let () =
  Alcotest.run "explore"
    [
      ( "replay",
        List.map
          (fun file ->
            Alcotest.test_case file `Slow (test_replay_reproduces file))
          schedule_files );
      ( "round-robin blind",
        List.map
          (fun bug ->
            Alcotest.test_case (Explore.bug_name bug) `Slow
              (test_round_robin_blind bug))
          [
            Machine.Dropped_msip;
            Machine.Delayed_vm_epoch;
            Machine.Pmp_handoff_window;
          ] );
      ( "oracles",
        List.map
          (fun scn ->
            Alcotest.test_case
              (scn.Scenario.name ^ " clean without bug")
              `Slow (test_no_bug_clean scn))
          Scenario.all );
      ("shrink", [ Alcotest.test_case "ddmin unit" `Quick test_ddmin_unit ]);
    ]
