(* Verification-harness tests: the faithful-emulation and
   faithful-execution checkers pass on the real implementation, and —
   crucially — each injected bug class from the paper's §6.5 is caught
   by the corresponding task. *)

module Tasks = Mir_verif.Tasks
module Fe = Mir_verif.Faithful_execution
module Config = Miralis.Config

let clean r =
  Alcotest.(check int)
    (r.Tasks.name ^ " clean")
    0 r.Tasks.mismatches;
  Alcotest.(check bool)
    (r.Tasks.name ^ " ran cases")
    true (r.Tasks.cases > 0)

let dirty r =
  Alcotest.(check bool)
    (r.Tasks.name ^ " detects the injected bug")
    true (r.Tasks.mismatches > 0)

let test_mret_clean () = clean (Tasks.mret ~samples:400 ())
let test_sret_clean () = clean (Tasks.sret ~samples:400 ())
let test_wfi_clean () = clean (Tasks.wfi ~samples:400 ())
let test_decoder_clean () = clean (Tasks.decoder ~words:50_000 ())
let test_csr_read_clean () = clean (Tasks.csr_read ~samples:8 ())
let test_csr_write_clean () = clean (Tasks.csr_write ~samples:10 ())
let test_virtual_interrupt_clean () = clean (Tasks.virtual_interrupt ())
let test_end_to_end_clean () = clean (Tasks.end_to_end ~samples:4 ())
let test_pmp_clean () = clean (Fe.run ~configs:60 ())

(* Each §6.5 bug class must be caught. *)
(* MPP=0b10 only reaches mstatus through a sampled register value, so
   this one needs a larger sample budget than its siblings. *)
let test_bug_mpp () =
  dirty (Tasks.csr_write ~samples:30 ~inject_bug:Config.Mpp_not_legalized ())

let test_bug_pmp_wr () =
  dirty (Tasks.csr_write ~samples:10 ~inject_bug:Config.Pmp_w_without_r ())

let test_bug_vpmp_overrun () =
  dirty (Tasks.csr_write ~samples:10 ~inject_bug:Config.Vpmp_overrun ())

let test_bug_interrupt_priority () =
  dirty
    (Tasks.virtual_interrupt ~inject_bug:Config.Interrupt_priority_swapped ())

let test_bug_mret_mpie () =
  dirty (Tasks.mret ~samples:400 ~inject_bug:Config.Mret_skips_mpie ())

(* The Vpmp_overrun bug is also a *memory protection* hole: the extra
   entry displaces the physical catch-all. The faithful-execution
   checker must see it too. *)
let test_bug_vpmp_overrun_execution () =
  dirty (Fe.run ~configs:60 ~inject_bug:Config.Vpmp_overrun ())

let () =
  Alcotest.run "verif"
    [
      ( "faithful-emulation",
        [
          Alcotest.test_case "mret" `Quick test_mret_clean;
          Alcotest.test_case "sret" `Quick test_sret_clean;
          Alcotest.test_case "wfi/fence/ecall" `Quick test_wfi_clean;
          Alcotest.test_case "decoder" `Quick test_decoder_clean;
          Alcotest.test_case "csr read" `Quick test_csr_read_clean;
          Alcotest.test_case "csr write" `Quick test_csr_write_clean;
          Alcotest.test_case "virtual interrupt" `Quick
            test_virtual_interrupt_clean;
          Alcotest.test_case "end to end" `Quick test_end_to_end_clean;
        ] );
      ( "faithful-execution",
        [ Alcotest.test_case "pmp multiplexing" `Quick test_pmp_clean ] );
      ( "bug-injection",
        [
          Alcotest.test_case "MPP not legalized" `Quick test_bug_mpp;
          Alcotest.test_case "PMP W without R" `Quick test_bug_pmp_wr;
          Alcotest.test_case "vPMP overrun" `Quick test_bug_vpmp_overrun;
          Alcotest.test_case "interrupt priority" `Quick
            test_bug_interrupt_priority;
          Alcotest.test_case "mret skips MPIE" `Quick test_bug_mret_mpie;
          Alcotest.test_case "vPMP overrun (execution)" `Quick
            test_bug_vpmp_overrun_execution;
        ] );
    ]
