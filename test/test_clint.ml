(* Cross-hart CLINT / virtual-CLINT properties: msip and mtimecmp are
   strictly per-hart state (a write for one hart never changes a
   sibling's view), mtime is shared and monotonic, and the checkpoint
   path restores all of it. These are the invariants the explorer's
   msip-delivery oracle builds on. *)

module Clint = Mir_rv.Clint
module Device = Mir_rv.Device
module Vclint = Miralis.Vclint

let nharts = 4

(* ------------------------------------------------------------------ *)
(* Physical CLINT                                                      *)
(* ------------------------------------------------------------------ *)

let test_msip_independence =
  Helpers.qcheck_case ~count:300 "msip writes are per-hart"
    (fun (target, value) ->
      let target = target mod nharts in
      let c = Clint.create ~nharts in
      (* seed every hart with the opposite value, flip one *)
      for h = 0 to nharts - 1 do
        Clint.set_msip c h (not value)
      done;
      Clint.set_msip c target value;
      let ok = ref (Clint.msip c target = value) in
      for h = 0 to nharts - 1 do
        if h <> target then ok := !ok && Clint.msip c h = not value
      done;
      !ok)
    QCheck.(pair small_int bool)

let test_mtimecmp_independence =
  Helpers.qcheck_case ~count:300 "mtimecmp writes are per-hart"
    (fun (target, value) ->
      let target = target mod nharts in
      let c = Clint.create ~nharts in
      for h = 0 to nharts - 1 do
        Clint.set_mtimecmp c h (Int64.of_int h)
      done;
      Clint.set_mtimecmp c target value;
      let ok = ref (Clint.mtimecmp c target = value) in
      for h = 0 to nharts - 1 do
        if h <> target then ok := !ok && Clint.mtimecmp c h = Int64.of_int h
      done;
      !ok)
    QCheck.(pair small_int int64)

let test_mtip_per_hart () =
  let c = Clint.create ~nharts in
  Clint.set_mtime c 100L;
  Clint.set_mtimecmp c 0 50L;
  Clint.set_mtimecmp c 1 100L;
  Clint.set_mtimecmp c 2 101L;
  Clint.set_mtimecmp c 3 Int64.max_int;
  Alcotest.(check bool) "past deadline" true (Clint.mtip c 0);
  Alcotest.(check bool) "at deadline" true (Clint.mtip c 1);
  Alcotest.(check bool) "before deadline" false (Clint.mtip c 2);
  Alcotest.(check bool) "unarmed" false (Clint.mtip c 3);
  (* shared clock: one advance moves every hart's line together *)
  Clint.advance c 1L;
  Alcotest.(check bool) "fires after advance" true (Clint.mtip c 2)

let test_mtime_monotonic =
  Helpers.qcheck_case ~count:300 "advance never rewinds mtime"
    (fun ticks ->
      let c = Clint.create ~nharts in
      let ok = ref true in
      List.iter
        (fun t ->
          let before = Clint.mtime c in
          Clint.advance c (Int64.of_int (abs t));
          ok := !ok && Int64.unsigned_compare (Clint.mtime c) before >= 0)
        ticks;
      !ok)
    QCheck.(small_list small_int)

let test_mmio_matches_direct () =
  let c = Clint.create ~nharts in
  let d = Clint.device c ~base:0L in
  for h = 0 to nharts - 1 do
    d.Device.store (Clint.msip_offset h) 4 (if h mod 2 = 0 then 1L else 0L);
    d.Device.store (Clint.mtimecmp_offset h) 8 (Int64.of_int (1000 + h))
  done;
  for h = 0 to nharts - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "msip %d via mmio" h)
      (h mod 2 = 0) (Clint.msip c h);
    Helpers.check_i64
      (Printf.sprintf "mtimecmp %d via mmio" h)
      (Int64.of_int (1000 + h))
      (Clint.mtimecmp c h)
  done

let test_clint_snapshot () =
  let c = Clint.create ~nharts in
  Clint.set_mtime c 777L;
  Clint.set_msip c 1 true;
  Clint.set_mtimecmp c 2 4242L;
  let snap = Clint.save_state c in
  Clint.advance c 100L;
  Clint.set_msip c 1 false;
  Clint.set_msip c 3 true;
  Clint.set_mtimecmp c 2 0L;
  Clint.load_state c snap;
  Helpers.check_i64 "mtime restored" 777L (Clint.mtime c);
  Alcotest.(check bool) "msip 1 restored" true (Clint.msip c 1);
  Alcotest.(check bool) "msip 3 restored" false (Clint.msip c 3);
  Helpers.check_i64 "mtimecmp restored" 4242L (Clint.mtimecmp c 2)

(* ------------------------------------------------------------------ *)
(* Virtual CLINT                                                       *)
(* ------------------------------------------------------------------ *)

let test_vmsip_independence =
  Helpers.qcheck_case ~count:300 "virtual msip/ipi flags are per-hart"
    (fun (target, value) ->
      let target = target mod nharts in
      let vc = Vclint.create ~nharts in
      Vclint.set_vmsip vc target value;
      Vclint.set_os_ipi_pending vc target value;
      let ok = ref (Vclint.vmsip vc target = value) in
      ok := !ok && Vclint.os_ipi_pending vc target = value;
      for h = 0 to nharts - 1 do
        if h <> target then begin
          ok := !ok && not (Vclint.vmsip vc h);
          ok := !ok && not (Vclint.os_ipi_pending vc h)
        end
      done;
      !ok)
    QCheck.(pair small_int bool)

let test_vclint_emulate_per_hart () =
  let vc = Vclint.create ~nharts in
  let c = Clint.create ~nharts in
  Clint.set_mtime c 50L;
  (* a firmware msip write through the emulation path touches only the
     virtual state of the addressed hart *)
  let store off v =
    ignore (Vclint.emulate_access vc c ~offset:off ~size:4 ~write:(Some v))
  in
  store (Clint.msip_offset 2) 1L;
  Alcotest.(check bool) "vmsip 2 set" true (Vclint.vmsip vc 2);
  Alcotest.(check bool) "vmsip 1 clear" false (Vclint.vmsip vc 1);
  Alcotest.(check bool) "physical msip untouched" false (Clint.msip c 2);
  (* mtimecmp goes to the virtual comparator, mtime reads pass through *)
  ignore
    (Vclint.emulate_access vc c
       ~offset:(Clint.mtimecmp_offset 1)
       ~size:8 ~write:(Some 9000L));
  Helpers.check_i64 "vmtimecmp 1" 9000L (Vclint.vmtimecmp vc 1);
  Helpers.check_i64 "vmtimecmp 0 untouched" Int64.minus_one
    (Vclint.vmtimecmp vc 0);
  (match
     Vclint.emulate_access vc c ~offset:Clint.mtime_offset ~size:8 ~write:None
   with
  | Some v -> Helpers.check_i64 "mtime passthrough" 50L v
  | None -> Alcotest.fail "mtime read not served")

let test_vclint_physical_mux () =
  let vc = Vclint.create ~nharts in
  let c = Clint.create ~nharts in
  (* physical comparator = min(virtual deadline, offload deadline) *)
  Vclint.set_vmtimecmp vc 0 500L;
  Vclint.set_offload_deadline vc 0 300L;
  Vclint.program_physical vc c 0;
  Helpers.check_i64 "offload wins" 300L (Clint.mtimecmp c 0);
  Vclint.set_offload_deadline vc 0 800L;
  Vclint.program_physical vc c 0;
  Helpers.check_i64 "virtual wins" 500L (Clint.mtimecmp c 0);
  (* the virtual MTI line follows the virtual deadline, not the muxed
     physical comparator *)
  Clint.set_mtime c 400L;
  Alcotest.(check bool) "vmtip before vdeadline" false (Vclint.vmtip vc c 0);
  Clint.set_mtime c 500L;
  Alcotest.(check bool) "vmtip at vdeadline" true (Vclint.vmtip vc c 0)

let test_vclint_snapshot () =
  let vc = Vclint.create ~nharts in
  Vclint.set_vmsip vc 0 true;
  Vclint.set_os_ipi_pending vc 1 true;
  Vclint.set_rfence_pending vc 2 true;
  Vclint.set_vmtimecmp vc 3 123L;
  let snap = Vclint.save_state vc in
  Vclint.set_vmsip vc 0 false;
  Vclint.set_os_ipi_pending vc 1 false;
  Vclint.set_rfence_pending vc 2 false;
  Vclint.set_vmtimecmp vc 3 0L;
  Vclint.load_state vc snap;
  Alcotest.(check bool) "vmsip restored" true (Vclint.vmsip vc 0);
  Alcotest.(check bool) "ipi restored" true (Vclint.os_ipi_pending vc 1);
  Alcotest.(check bool) "rfence restored" true (Vclint.rfence_pending vc 2);
  Helpers.check_i64 "vmtimecmp restored" 123L (Vclint.vmtimecmp vc 3)

let () =
  Alcotest.run "clint"
    [
      ( "clint",
        [
          test_msip_independence;
          test_mtimecmp_independence;
          Alcotest.test_case "mtip per hart" `Quick test_mtip_per_hart;
          test_mtime_monotonic;
          Alcotest.test_case "mmio matches direct" `Quick
            test_mmio_matches_direct;
          Alcotest.test_case "snapshot round-trip" `Quick test_clint_snapshot;
        ] );
      ( "vclint",
        [
          test_vmsip_independence;
          Alcotest.test_case "emulated access per hart" `Quick
            test_vclint_emulate_per_hart;
          Alcotest.test_case "physical comparator mux" `Quick
            test_vclint_physical_mux;
          Alcotest.test_case "snapshot round-trip" `Quick
            test_vclint_snapshot;
        ] );
    ]
