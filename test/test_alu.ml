(* ALU semantics, with emphasis on the RISC-V division corner cases and
   the W-form sign-extension rule. *)

module Alu = Mir_rv.Alu
module Instr = Mir_rv.Instr

let test_div_corner_cases () =
  Helpers.check_i64 "div by zero" (-1L) (Alu.op Instr.Div 42L 0L);
  Helpers.check_i64 "divu by zero" (-1L) (Alu.op Instr.Divu 42L 0L);
  Helpers.check_i64 "rem by zero" 42L (Alu.op Instr.Rem 42L 0L);
  Helpers.check_i64 "remu by zero" 42L (Alu.op Instr.Remu 42L 0L);
  Helpers.check_i64 "signed overflow div" Int64.min_int
    (Alu.op Instr.Div Int64.min_int (-1L));
  Helpers.check_i64 "signed overflow rem" 0L
    (Alu.op Instr.Rem Int64.min_int (-1L))

let test_divw_corner_cases () =
  Helpers.check_i64 "divw by zero" (-1L) (Alu.op32 Instr.Divw 7L 0L);
  Helpers.check_i64 "divw overflow" (-2147483648L)
    (Alu.op32 Instr.Divw (-2147483648L) (-1L));
  Helpers.check_i64 "remw overflow" 0L
    (Alu.op32 Instr.Remw (-2147483648L) (-1L))

let test_mulh () =
  Helpers.check_i64 "mulhu max" 0xFFFFFFFFFFFFFFFEL
    (Alu.op Instr.Mulhu (-1L) (-1L));
  Helpers.check_i64 "mulh -1*-1" 0L (Alu.op Instr.Mulh (-1L) (-1L));
  Helpers.check_i64 "mulh min*min"
    0x4000000000000000L
    (Alu.op Instr.Mulh Int64.min_int Int64.min_int);
  Helpers.check_i64 "mulhsu -1,max" (-1L)
    (Alu.op Instr.Mulhsu (-1L) (-1L));
  Helpers.check_i64 "mulh small" 0L (Alu.op Instr.Mulh 3L 4L);
  Helpers.check_i64 "mulhu 2^32*2^32" 1L
    (Alu.op Instr.Mulhu 0x100000000L 0x100000000L)

let test_shifts_mask_shamt () =
  (* Register shifts use only the low 6 bits of rs2. *)
  Helpers.check_i64 "sll wraps" 2L (Alu.op Instr.Sll 1L 65L);
  Helpers.check_i64 "srl wraps" 1L (Alu.op Instr.Srl 2L 65L);
  (* W-shifts use only 5 bits. *)
  Helpers.check_i64 "sllw wraps" 2L (Alu.op32 Instr.Sllw 1L 33L)

let test_w_forms_sign_extend () =
  Helpers.check_i64 "addw overflow value" (-2147483648L)
    (Alu.op32 Instr.Addw 0x7FFFFFFFL 1L);
  Helpers.check_i64 "sraw neg" (-1L) (Alu.op32 Instr.Sraw (-2L) 1L);
  Helpers.check_i64 "srlw on negative" 0x7FFFFFFFL
    (Alu.op32 Instr.Srlw 0xFFFFFFFFL 1L);
  Helpers.check_i64 "subw" (-1L) (Alu.op32 Instr.Subw 0L 1L)

let test_slt () =
  Helpers.check_i64 "slt true" 1L (Alu.op Instr.Slt (-1L) 0L);
  Helpers.check_i64 "sltu false (wrap)" 0L (Alu.op Instr.Sltu (-1L) 0L);
  Helpers.check_i64 "sltiu imm" 1L (Alu.op_imm Instr.Sltiu 5L 6L)

let test_branches () =
  let ck name op a b expect =
    Alcotest.(check bool) name expect (Alu.branch_taken op a b)
  in
  ck "beq" Instr.Beq 5L 5L true;
  ck "bne" Instr.Bne 5L 5L false;
  ck "blt signed" Instr.Blt (-1L) 0L true;
  ck "bltu wrap" Instr.Bltu (-1L) 0L false;
  ck "bge equal" Instr.Bge 3L 3L true;
  ck "bgeu" Instr.Bgeu 0L (-1L) false

(* Differential property: mulh via decomposition equals a slow
   reference using arbitrary-precision emulation through splitting. *)
let prop_mulhu_reference =
  Helpers.qcheck_case ~count:1000 "mulhu matches schoolbook reference"
    (fun (a, b) ->
      (* Reference: compute via 4 32x32 products using strings of
         Int64 arithmetic — same structure, independent coding. *)
      let mask = 0xFFFFFFFFL in
      let al = Int64.logand a mask and ah = Int64.shift_right_logical a 32 in
      let bl = Int64.logand b mask and bh = Int64.shift_right_logical b 32 in
      let p0 = Int64.mul al bl in
      let p1 = Int64.mul al bh in
      let p2 = Int64.mul ah bl in
      let p3 = Int64.mul ah bh in
      let mid =
        Int64.add
          (Int64.add (Int64.shift_right_logical p0 32) (Int64.logand p1 mask))
          (Int64.logand p2 mask)
      in
      let hi =
        Int64.add p3
          (Int64.add
             (Int64.add (Int64.shift_right_logical p1 32)
                (Int64.shift_right_logical p2 32))
             (Int64.shift_right_logical mid 32))
      in
      Alu.op Instr.Mulhu a b = hi)
    QCheck.(pair int64 int64)

let prop_mul_low_consistent =
  Helpers.qcheck_case ~count:1000 "mulh/mul consistent with sign flip"
    (fun (a, b) ->
      (* (-a) * b has high word = lognot(high(a*b)) + carry; just check
         mulh(a,b) for small values against exact math. *)
      let a = Int64.of_int32 (Int64.to_int32 a) in
      let b = Int64.of_int32 (Int64.to_int32 b) in
      let exact = Int64.mul a b in
      let hi = Alu.op Instr.Mulh a b in
      let lo = Int64.mul a b in
      (* for 32-bit inputs the product fits in 64 bits: high word is
         the sign extension of the low word *)
      hi = Int64.shift_right exact 63 && lo = exact)
    QCheck.(pair int64 int64)

let () =
  Alcotest.run "alu"
    [
      ( "alu",
        [
          Alcotest.test_case "div corner cases" `Quick test_div_corner_cases;
          Alcotest.test_case "divw corner cases" `Quick test_divw_corner_cases;
          Alcotest.test_case "mulh" `Quick test_mulh;
          Alcotest.test_case "shift masking" `Quick test_shifts_mask_shamt;
          Alcotest.test_case "w-form sign extension" `Quick
            test_w_forms_sign_extend;
          Alcotest.test_case "slt" `Quick test_slt;
          Alcotest.test_case "branches" `Quick test_branches;
          prop_mulhu_reference;
          prop_mul_low_consistent;
        ] );
    ]
