(* End-to-end machine tests: assembled programs executed on the
   simulated hart, covering arithmetic, traps, delegation, interrupts,
   PMP enforcement, privilege transitions and devices. *)

module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Csr_file = Mir_rv.Csr_file
module C = Mir_rv.Csr_addr
module Pmp = Mir_rv.Pmp
module Clint = Mir_rv.Clint
module Asm = Mir_asm.Asm
open Asm.I
open Asm.Reg

let ram_base = Machine.default_config.Machine.ram_base

(* Common epilogue: write the 0x5555 "finish" token to the syscon. *)
let poweroff = [ li t6 0x100000L; li t5 0x5555L; sw t5 0L t6 ]

(* Scratch cell in RAM used by programs to report results. *)
let result_addr = Int64.add ram_base 0x100000L
let store_result reg = [ li t6 result_addr; sd reg 0L t6 ]

let result m = Option.get (Machine.phys_load m result_addr 8)

let run prog =
  let m, _ = Helpers.machine_with prog in
  ignore (Helpers.run_to_completion m);
  m

let test_arithmetic_loop () =
  (* sum of 1..10 *)
  let m =
    run
      ([ li a0 0L; li a1 10L; label "loop"; add a0 a0 a1; addi a1 a1 (-1L);
         bnez a1 "loop" ]
      @ store_result a0 @ poweroff)
  in
  Helpers.check_i64 "sum" 55L (result m)

let test_memory_ops () =
  let m =
    run
      ([
         li a0 (Int64.add ram_base 0x2000L);
         li a1 0x1122334455667788L;
         sd a1 0L a0;
         lw a2 0L a0; (* sign-extended low word *)
         lwu a3 4L a0;
         lb a4 7L a0;
         lhu a5 0L a0;
         add a6 a2 a3;
         add a6 a6 a4;
         add a6 a6 a5;
       ]
      @ store_result a6 @ poweroff)
  in
  (* lw = 0x55667788 sign-extends positive; lwu = 0x11223344;
     lb(7) = 0x11; lhu = 0x7788 *)
  let expect =
    Int64.add
      (Int64.add 0x55667788L 0x11223344L)
      (Int64.add 0x11L 0x7788L)
  in
  Helpers.check_i64 "loads" expect (result m)

let test_ecall_to_mtvec () =
  let m =
    run
      ([ la t0 "mtrap"; csrw C.mtvec t0; ecall; label "after" ]
      @ store_result zero @ poweroff
      @ [ label "mtrap"; csrr a0 C.mcause ]
      @ store_result a0 @ poweroff)
  in
  (* ecall from M = cause 11 *)
  Helpers.check_i64 "mcause" 11L (result m)

let test_mret_to_umode_and_illegal () =
  (* Drop to U-mode; executing mret there must trap as illegal
     instruction (the mechanism vM-mode is built on). PMP must open
     memory for U-mode first. *)
  let m =
    run
      ([
         (* PMP entry 0: allow everything *)
         li t0 (-1L);
         csrw (C.pmpaddr 0) t0;
         li t0 0x1FL; (* NAPOT RWX *)
         csrw (C.pmpcfg 0) t0;
         la t0 "mtrap";
         csrw C.mtvec t0;
         la t0 "ucode";
         csrw C.mepc t0;
         (* clear MPP to U *)
         li t1 0x1800L;
         csrc C.mstatus t1;
         mret;
         label "ucode";
         mret; (* illegal in U *)
         label "mtrap";
         csrr a0 C.mcause;
         csrr a1 C.mtval;
       ]
      @ store_result a0 @ poweroff)
  in
  Helpers.check_i64 "illegal cause" 2L (result m);
  (* mtval must carry the raw mret encoding. *)
  let h = m.Machine.harts.(0) in
  Helpers.check_i64 "mtval = mret bits" 0x30200073L
    (Csr_file.read_raw h.Hart.csr C.mtval)

let test_medeleg_routes_to_smode () =
  (* Delegate ecall-from-U to S-mode and check the S handler runs. *)
  let m =
    run
      ([
         li t0 (-1L);
         csrw (C.pmpaddr 0) t0;
         li t0 0x1FL;
         csrw (C.pmpcfg 0) t0;
         la t0 "mtrap";
         csrw C.mtvec t0;
         la t0 "strap";
         csrw C.stvec t0;
         (* medeleg bit 8: ecall from U *)
         li t0 0x100L;
         csrw C.medeleg t0;
         la t0 "ucode";
         csrw C.mepc t0;
         li t1 0x1800L;
         csrc C.mstatus t1;
         mret;
         label "ucode";
         ecall;
         label "strap";
         csrr a0 C.scause;
         li a1 100L;
         add a0 a0 a1;
       ]
      @ store_result a0 @ poweroff
      @ [ label "mtrap" ] @ store_result zero @ poweroff)
  in
  (* scause 8 + 100 marker proves the S handler ran. *)
  Helpers.check_i64 "s-handler" 108L (result m)

let test_timer_interrupt () =
  let clint_mtime = Int64.add Clint.default_base Clint.mtime_offset in
  let clint_mtimecmp = Int64.add Clint.default_base (Clint.mtimecmp_offset 0) in
  let m =
    run
      [
        la t0 "mtrap";
        csrw C.mtvec t0;
        (* mie.MTIE *)
        li t0 0x80L;
        csrw C.mie t0;
        li t1 clint_mtime;
        ld t2 0L t1;
        addi t2 t2 20L;
        li t3 clint_mtimecmp;
        sd t2 0L t3;
        (* mstatus.MIE *)
        csrsi C.mstatus 8;
        label "idle";
        wfi;
        j "idle";
        label "mtrap";
        csrr a0 C.mcause;
        li t6 result_addr;
        sd a0 0L t6;
        li t6 0x100000L;
        li t5 0x5555L;
        sw t5 0L t6;
      ]
  in
  (* Interrupt bit | code 7 *)
  Helpers.check_i64 "mti cause" (Int64.logor (Int64.shift_left 1L 63) 7L)
    (result m)

let test_software_interrupt_ipi () =
  (* Hart 0 sends itself a software interrupt through the CLINT. *)
  let msip0 = Int64.add Clint.default_base (Clint.msip_offset 0) in
  let m =
    run
      [
        la t0 "mtrap";
        csrw C.mtvec t0;
        li t0 0x8L; (* mie.MSIE *)
        csrw C.mie t0;
        csrsi C.mstatus 8;
        li t1 msip0;
        li t2 1L;
        sw t2 0L t1;
        label "spin";
        j "spin";
        label "mtrap";
        csrr a0 C.mcause;
        li t6 result_addr;
        sd a0 0L t6;
        li t6 0x100000L;
        li t5 0x5555L;
        sw t5 0L t6;
      ]
  in
  Helpers.check_i64 "msi cause" (Int64.logor (Int64.shift_left 1L 63) 3L)
    (result m)

let test_pmp_denies_umode () =
  (* Entry 0 denies a window; entry 1 allows everything. A U-mode load
     in the window must fault with cause 5. *)
  let secret = Int64.add ram_base 0x300000L in
  let m =
    run
      ([
         li t0 (Pmp.napot_encode ~base:secret ~size:0x1000L);
         csrw (C.pmpaddr 0) t0;
         li t1 (-1L);
         csrw (C.pmpaddr 1) t1;
         (* cfg: entry0 = NAPOT no-perm (0x18), entry1 = NAPOT RWX (0x1F) *)
         li t2 0x1F18L;
         csrw (C.pmpcfg 0) t2;
         la t0 "mtrap";
         csrw C.mtvec t0;
         la t0 "ucode";
         csrw C.mepc t0;
         li t1 0x1800L;
         csrc C.mstatus t1;
         mret;
         label "ucode";
         li a0 secret;
         ld a1 0L a0; (* must fault *)
         label "mtrap";
         csrr a0 C.mcause;
       ]
      @ store_result a0 @ poweroff)
  in
  Helpers.check_i64 "load access fault" 5L (result m)

let test_misaligned_load_traps () =
  let m =
    run
      ([
         la t0 "mtrap";
         csrw C.mtvec t0;
         li a0 (Int64.add ram_base 0x2001L);
         ld a1 0L a0;
         label "mtrap";
         csrr a0 C.mcause;
       ]
      @ store_result a0 @ poweroff)
  in
  Helpers.check_i64 "load misaligned" 4L (result m)

let test_misaligned_handled_in_hw () =
  let config = { Machine.default_config with Machine.hw_misaligned = true } in
  let m, _ =
    Helpers.machine_with ~config
      ([
         li a0 (Int64.add ram_base 0x2000L);
         li a1 0x1122334455667788L;
         sd a1 0L a0;
         ld a2 1L a0; (* misaligned, handled by hardware *)
       ]
      @ store_result a2 @ poweroff)
  in
  ignore (Helpers.run_to_completion m);
  Helpers.check_i64 "hw misaligned" 0x0011223344556677L (result m)

let test_time_csr_traps_without_counter () =
  (* default config: has_time_csr = false (like the VisionFive 2). *)
  let m =
    run
      ([
         la t0 "mtrap";
         csrw C.mtvec t0;
         csrr a0 C.time;
         label "mtrap";
         csrr a0 C.mcause;
       ]
      @ store_result a0 @ poweroff)
  in
  Helpers.check_i64 "time read illegal" 2L (result m)

let test_time_csr_reads_with_counter () =
  let config =
    {
      Machine.default_config with
      Machine.csr_config =
        { Mir_rv.Csr_spec.default_config with has_time_csr = true };
    }
  in
  let m, _ =
    Helpers.machine_with ~config
      ([
         (* enable TM in mcounteren for completeness (read from M is
            always allowed) *)
         csrr a0 C.time;
         addi a0 a0 1L;
       ]
      @ store_result a0 @ poweroff)
  in
  ignore (Helpers.run_to_completion m);
  Alcotest.(check bool) "time read >= 1" true (result m >= 1L)

let test_uart_output () =
  let uart = Mir_rv.Uart.default_base in
  let m =
    run
      ([
         li t0 uart;
         li t1 (Int64.of_int (Char.code 'h'));
         sb t1 0L t0;
         li t1 (Int64.of_int (Char.code 'i'));
         sb t1 0L t0;
       ]
      @ poweroff)
  in
  Helpers.check_str "uart" "hi" (Mir_rv.Uart.output m.Machine.uart)

let test_wfi_wakes_on_pending_disabled () =
  (* WFI must wake when an interrupt becomes pending even if
     mstatus.MIE is clear; execution continues sequentially. *)
  let clint_mtime = Int64.add Clint.default_base Clint.mtime_offset in
  let clint_mtimecmp = Int64.add Clint.default_base (Clint.mtimecmp_offset 0) in
  let m =
    run
      ([
         li t0 0x80L;
         csrw C.mie t0;
         (* MIE stays clear *)
         li t1 clint_mtime;
         ld t2 0L t1;
         addi t2 t2 20L;
         li t3 clint_mtimecmp;
         sd t2 0L t3;
         wfi;
         li a0 7L;
       ]
      @ store_result a0 @ poweroff)
  in
  Helpers.check_i64 "resumed after wfi" 7L (result m)

let test_sret_returns_to_umode () =
  let m =
    run
      ([
         li t0 (-1L);
         csrw (C.pmpaddr 0) t0;
         li t0 0x1FL;
         csrw (C.pmpcfg 0) t0;
         la t0 "mtrap";
         csrw C.mtvec t0;
         (* enter S-mode *)
         la t0 "scode";
         csrw C.mepc t0;
         li t1 0x1800L;
         csrc C.mstatus t1;
         li t1 0x800L;
         csrs C.mstatus t1;
         (* MPP = S *)
         mret;
         label "scode";
         (* from S, sret to U *)
         la t0 "ucode";
         csrw C.sepc t0;
         (* clear SPP -> U *)
         li t1 0x100L;
         csrc C.sstatus t1;
         sret;
         label "ucode";
         ecall; (* from U -> M (not delegated) *)
         label "mtrap";
         csrr a0 C.mcause;
       ]
      @ store_result a0 @ poweroff)
  in
  Helpers.check_i64 "ecall from U" 8L (result m)

let test_multihart_ipi () =
  (* Hart 0 IPIs hart 1; hart 1's handler reports and powers off. *)
  let config = { Machine.default_config with Machine.nharts = 2 } in
  let msip1 = Int64.add Clint.default_base (Clint.msip_offset 1) in
  let prog =
    [
      (* all harts start here; discriminate on mhartid *)
      csrr t0 C.mhartid;
      bnez t0 "hart1";
      (* hart 0: send IPI to hart 1, then spin *)
      li t1 msip1;
      li t2 1L;
      sw t2 0L t1;
      label "spin0";
      j "spin0";
      label "hart1";
      la t0 "mtrap";
      csrw C.mtvec t0;
      li t0 0x8L;
      csrw C.mie t0;
      csrsi C.mstatus 8;
      label "spin1";
      wfi;
      j "spin1";
      label "mtrap";
      csrr a0 C.mcause;
      li t6 result_addr;
      sd a0 0L t6;
      li t6 0x100000L;
      li t5 0x5555L;
      sw t5 0L t6;
    ]
  in
  let m, _ = Helpers.machine_with ~config prog in
  Machine.run ~max_instrs:1_000_000L m;
  Helpers.check_i64 "hart1 got MSI" (Int64.logor (Int64.shift_left 1L 63) 3L)
    (result m)

let test_mcycle_increments () =
  let m =
    run ([ csrr a0 C.mcycle; csrr a1 C.mcycle; sub a2 a1 a0 ]
         @ store_result a2 @ poweroff)
  in
  Alcotest.(check bool) "cycles advance" true (result m >= 1L)

let () =
  Alcotest.run "machine"
    [
      ( "machine",
        [
          Alcotest.test_case "arithmetic loop" `Quick test_arithmetic_loop;
          Alcotest.test_case "memory ops" `Quick test_memory_ops;
          Alcotest.test_case "ecall to mtvec" `Quick test_ecall_to_mtvec;
          Alcotest.test_case "mret to U + illegal" `Quick
            test_mret_to_umode_and_illegal;
          Alcotest.test_case "medeleg to S" `Quick test_medeleg_routes_to_smode;
          Alcotest.test_case "timer interrupt" `Quick test_timer_interrupt;
          Alcotest.test_case "software interrupt" `Quick
            test_software_interrupt_ipi;
          Alcotest.test_case "pmp denies U" `Quick test_pmp_denies_umode;
          Alcotest.test_case "misaligned traps" `Quick
            test_misaligned_load_traps;
          Alcotest.test_case "misaligned in hw" `Quick
            test_misaligned_handled_in_hw;
          Alcotest.test_case "time CSR traps" `Quick
            test_time_csr_traps_without_counter;
          Alcotest.test_case "time CSR reads" `Quick
            test_time_csr_reads_with_counter;
          Alcotest.test_case "uart" `Quick test_uart_output;
          Alcotest.test_case "wfi wake" `Quick
            test_wfi_wakes_on_pending_disabled;
          Alcotest.test_case "sret to U" `Quick test_sret_returns_to_umode;
          Alcotest.test_case "multihart ipi" `Quick test_multihart_ipi;
          Alcotest.test_case "mcycle" `Quick test_mcycle_increments;
        ] );
    ]
