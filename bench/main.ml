(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md for the experiment index), plus a
   Bechamel microbenchmark section for the simulator's own hot
   primitives.

   Usage:
     bench/main.exe               run everything
     bench/main.exe <name>...     run selected experiments
   Names: table1 table2 table3 table4 table5 fig3 fig10 fig11 fig12
          fig13 fig14 boottime sstc q1 q4 trace fuzz sym ips explore
          fleet lint micro *)

module T = Mir_experiments.Exp_tables
module F = Mir_experiments.Exp_figs

let experiments =
  [
    ("table1", fun () -> T.table1 ());
    ("table2", fun () -> T.table2 ());
    ("table3", fun () -> T.table3 ());
    ("table4", fun () -> T.table4 ());
    ("table5", fun () -> T.table5 ());
    ("fig3", fun () -> F.fig3 ());
    ("fig10", fun () -> F.fig10 ());
    ("fig11", fun () -> F.fig11 ());
    ("fig12", fun () -> F.fig12 ());
    ("fig13", fun () -> F.fig13 ());
    ("fig14", fun () -> F.fig14 ());
    ("boottime", fun () -> F.boot_time ());
    ("sstc", fun () -> F.sstc_projection ());
    ("q1", fun () -> F.q1 ());
    ("q4", fun () -> F.q4 ());
  ]

(* ------------------------------------------------------------------ *)
(* Recording / replay overhead (BENCH_trace.json)                      *)
(* ------------------------------------------------------------------ *)

let trace_bench () =
  print_endline "\nTrace recording / replay overhead";
  print_endline "=================================";
  let module Setup = Mir_harness.Setup in
  let module Script = Mir_kernel.Script in
  (* trap-heavy workload: every iteration takes timer + IPI + rfence +
     misaligned traps through the monitor, with compute in between *)
  let script =
    Script.
      [
        Rdtime; Set_timer 500L; Ipi_self; Rfence; Misaligned_load;
        Misaligned_store; Compute 2000L; Tick_wfi 200L; Loop 60L; End;
      ]
  in
  let fresh () =
    Setup.create Mir_platform.Platform.visionfive2 Setup.Virtualized
  in
  let timed sys =
    let t0 = Unix.gettimeofday () in
    Setup.run_scripts sys [ script ];
    let dt = Unix.gettimeofday () -. t0 in
    let instrs = float_of_int sys.Setup.machine.Mir_rv.Machine.instr_count in
    instrs /. dt
  in
  let ips_off = timed (fresh ()) in
  let sys_rec = fresh () in
  let recorder, _ = Setup.attach_recorder sys_rec in
  let mgr =
    Setup.checkpoint_manager sys_rec ~every:100_000L
      ~events_seen:(fun () -> Mir_trace.Recorder.count recorder)
  in
  let ips_on = timed sys_rec in
  let events = Mir_trace.Recorder.events recorder in
  let nevents = List.length events in
  let ncheckpoints = List.length (Mir_trace.Snapshot.checkpoints mgr) in
  let sys_rep = fresh () in
  let replay, _ = Setup.attach_replay sys_rep ~events in
  let ips_replay = timed sys_rep in
  let diverged =
    match Mir_trace.Replay.finish replay with
    | Mir_trace.Replay.Match _ -> false
    | _ -> true
  in
  let overhead = ips_off /. ips_on in
  Printf.printf "  recording off      %10.0f instrs/sec\n" ips_off;
  Printf.printf "  recording on       %10.0f instrs/sec  (%.2fx overhead)\n"
    ips_on overhead;
  Printf.printf "  replay (verifying) %10.0f instrs/sec\n" ips_replay;
  Printf.printf "  events=%d checkpoints=%d divergence=%b\n" nevents
    ncheckpoints diverged;
  let oc = open_out "BENCH_trace.json" in
  Printf.fprintf oc
    "{\n  \"ips_off\": %.0f,\n  \"ips_recording\": %.0f,\n  \
     \"ips_replay\": %.0f,\n  \"recording_overhead\": %.3f,\n  \
     \"events\": %d,\n  \"checkpoints\": %d,\n  \"diverged\": %b\n}\n"
    ips_off ips_on ips_replay overhead nevents ncheckpoints diverged;
  close_out oc;
  print_endline "  wrote BENCH_trace.json"

(* ------------------------------------------------------------------ *)
(* Memory-system fast path: instrs/sec with paging on (BENCH_ips.json) *)
(* ------------------------------------------------------------------ *)

(* A Linux-boot-shaped virtualized workload: Sv39 on, then a loop of
   native compute, timer programming, misaligned accesses (firmware
   MPRV emulation through the page tables), wfi ticks and console
   MMIO.  The Loop opcode re-enters the script from the top, so satp
   is rewritten once per iteration — a context-switch-shaped TLB flush
   rate rather than an unrealistically static address space.  Run once
   with the TLB disabled (every access takes the full Sv39 walk) and
   once with the default TLB; the ratio is the fast-path speedup. *)
let ips_bench () =
  print_endline "\nMemory-system fast path (S-mode paging on)";
  print_endline "==========================================";
  let module Setup = Mir_harness.Setup in
  let module Script = Mir_kernel.Script in
  let budget =
    match Sys.getenv_opt "MIRALIS_IPS_BUDGET" with
    | Some s -> Int64.of_string s
    | None -> 4_000_000L
  in
  let platform tlb_entries block_engine =
    let p = Mir_platform.Platform.visionfive2 in
    {
      p with
      Mir_platform.Platform.machine =
        { p.Mir_platform.Platform.machine with
          Mir_rv.Machine.tlb_entries; nharts = 1; block_engine };
    }
  in
  let script sys =
    Script.
      [
        Enable_paging (Mir_kernel.Paging.identity_satp sys.Setup.machine);
        Compute 3000L;
        Rdtime;
        Set_timer 400L;
        Misaligned_load;
        Compute 3000L;
        Misaligned_store;
        Tick_wfi 150L;
        Putchar '.';
        Loop 1_000_000_000L;
        End;
      ]
  in
  let measure tlb_entries block_engine =
    let sys =
      Setup.create (platform tlb_entries block_engine) Setup.Virtualized
    in
    let t0 = Unix.gettimeofday () in
    Setup.run_scripts ~max_instrs:budget sys [ script sys ];
    let dt = Unix.gettimeofday () -. t0 in
    let instrs = sys.Setup.machine.Mir_rv.Machine.instr_count in
    (float_of_int instrs /. dt, sys)
  in
  let default_tlb =
    Mir_rv.Machine.default_config.Mir_rv.Machine.tlb_entries
  in
  let ips_walker, _ = measure 0 false in
  let ips_tlb, sys = measure default_tlb false in
  let ips_blocks, bsys = measure default_tlb true in
  let hits, misses, flushes = Mir_rv.Machine.tlb_totals sys.Setup.machine in
  let bstats = Mir_rv.Machine.block_stats bsys.Setup.machine in
  let bhit = Mir_rv.Machine.block_hit_rate bsys.Setup.machine in
  let speedup = ips_tlb /. ips_walker in
  let speedup_blocks = ips_blocks /. ips_tlb in
  let hit_rate =
    if hits + misses = 0 then 0.
    else float_of_int hits /. float_of_int (hits + misses)
  in
  Printf.printf "  walker only (tlb=0) %10.0f instrs/sec\n" ips_walker;
  Printf.printf "  software TLB        %10.0f instrs/sec  (%.2fx)\n" ips_tlb
    speedup;
  Printf.printf "  decoded blocks      %10.0f instrs/sec  (%.2fx vs tlb)\n"
    ips_blocks speedup_blocks;
  Printf.printf "  tlb: %d hits / %d misses (%.1f%% hit rate), %d flushes\n"
    hits misses (100. *. hit_rate) flushes;
  Printf.printf
    "  blocks: %d compiled, %d invalidated, %d dispatches, %.2f%% hit rate\n"
    bstats.Mir_rv.Block.compiled bstats.Mir_rv.Block.invalidated
    bstats.Mir_rv.Block.dispatches (100. *. bhit);
  let oc = open_out "BENCH_ips.json" in
  Printf.fprintf oc
    "{\n  \"budget_instrs\": %Ld,\n  \"ips_walker\": %.0f,\n  \
     \"ips_tlb\": %.0f,\n  \"speedup\": %.3f,\n  \"tlb_hits\": %d,\n  \
     \"tlb_misses\": %d,\n  \"tlb_hit_rate\": %.4f,\n  \
     \"tlb_flushes\": %d,\n  \"ips_blocks\": %.0f,\n  \
     \"speedup_blocks\": %.3f,\n  \"block_hit_rate\": %.4f,\n  \
     \"blocks_compiled\": %d,\n  \"block_invalidations\": %d,\n  \
     \"block_dispatches\": %d,\n  \"block_interp_instrs\": %d\n}\n"
    budget ips_walker ips_tlb speedup hits misses hit_rate flushes ips_blocks
    speedup_blocks bhit bstats.Mir_rv.Block.compiled
    bstats.Mir_rv.Block.invalidated bstats.Mir_rv.Block.dispatches
    bstats.Mir_rv.Block.interp_instrs;
  close_out oc;
  print_endline "  wrote BENCH_ips.json"

(* ------------------------------------------------------------------ *)
(* Differential fuzzing throughput and coverage (BENCH_fuzz.json)      *)
(* ------------------------------------------------------------------ *)

let fuzz_bench () =
  print_endline "\nDifferential fuzzing throughput";
  print_endline "===============================";
  let max_execs = 50_000 in
  let r =
    Mir_fuzz.Fuzzer.run ~seed:Miralis.Config.default_seed ~max_execs ()
  in
  let edges = Mir_fuzz.Coverage.edges r.Mir_fuzz.Fuzzer.coverage in
  Printf.printf "  %d execs in %.2fs: %.0f execs/sec\n"
    r.Mir_fuzz.Fuzzer.execs r.Mir_fuzz.Fuzzer.seconds
    r.Mir_fuzz.Fuzzer.execs_per_sec;
  Printf.printf "  coverage: %d edges, corpus: %d inputs, diverged: %b\n"
    edges
    (List.length r.Mir_fuzz.Fuzzer.corpus)
    (r.Mir_fuzz.Fuzzer.divergence <> None);
  let curve =
    String.concat ", "
      (List.map
         (fun (execs, e) -> Printf.sprintf "[%d, %d]" execs e)
         r.Mir_fuzz.Fuzzer.curve)
  in
  let oc = open_out "BENCH_fuzz.json" in
  Printf.fprintf oc
    "{\n  \"execs\": %d,\n  \"seconds\": %.3f,\n  \"execs_per_sec\": %.0f,\n  \
     \"edges\": %d,\n  \"corpus\": %d,\n  \"diverged\": %b,\n  \
     \"coverage_curve\": [%s]\n}\n"
    r.Mir_fuzz.Fuzzer.execs r.Mir_fuzz.Fuzzer.seconds
    r.Mir_fuzz.Fuzzer.execs_per_sec edges
    (List.length r.Mir_fuzz.Fuzzer.corpus)
    (r.Mir_fuzz.Fuzzer.divergence <> None)
    curve;
  close_out oc;
  print_endline "  wrote BENCH_fuzz.json"

(* ------------------------------------------------------------------ *)
(* Schedule-exploration throughput (BENCH_explore.json)                *)
(* ------------------------------------------------------------------ *)

let explore_bench () =
  print_endline "\nSchedule-exploration throughput";
  print_endline "===============================";
  let module Explore = Mir_explore.Explore in
  let module Scenario = Mir_explore.Scenario in
  let seed = Miralis.Config.default_seed in
  let budget = 40 in
  let schedules = ref 0 in
  let steps = ref 0 in
  let traps = ref 0 in
  let counts = ref [] in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun scn ->
      List.iter
        (fun family ->
          let c =
            Explore.run_family scn ~family ~seed ~max_schedules:budget
              ~nharts:2 ()
          in
          schedules := !schedules + c.Explore.schedules_run;
          steps := !steps + c.Explore.steps_total;
          traps := !traps + c.Explore.trap_points_total;
          counts := c.Explore.switch_counts @ !counts)
        [ Explore.Random; Explore.Pct ])
    Scenario.all;
  let dt = Unix.gettimeofday () -. t0 in
  let sched_rate = float_of_int !schedules /. dt in
  let step_rate = float_of_int !steps /. dt in
  (* histogram of preemption points per schedule, bucket width 64 *)
  let bucket_w = 64 in
  let hist = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let b = (max 0 (n - 1)) / bucket_w * bucket_w in
      Hashtbl.replace hist b (1 + Option.value (Hashtbl.find_opt hist b) ~default:0))
    !counts;
  let buckets =
    Hashtbl.fold (fun b n acc -> (b, n) :: acc) hist []
    |> List.sort compare
  in
  Printf.printf "  %d schedules, %d steps in %.2fs: %.0f schedules/sec, %.0f steps/sec\n"
    !schedules !steps dt sched_rate step_rate;
  Printf.printf "  trap-adjacent preemptions: %d\n" !traps;
  List.iter
    (fun (b, n) ->
      Printf.printf "  preemption points %4d-%4d: %d schedules\n" b
        (b + bucket_w - 1) n)
    buckets;
  let oc = open_out "BENCH_explore.json" in
  Printf.fprintf oc
    "{\n  \"schedules\": %d,\n  \"steps\": %d,\n  \"seconds\": %.3f,\n  \
     \"schedules_per_sec\": %.0f,\n  \"steps_per_sec\": %.0f,\n  \
     \"trap_adjacent_preemptions\": %d,\n  \"preemption_hist\": [%s]\n}\n"
    !schedules !steps dt sched_rate step_rate !traps
    (String.concat ", "
       (List.map (fun (b, n) -> Printf.sprintf "[%d, %d]" b n) buckets));
  close_out oc;
  print_endline "  wrote BENCH_explore.json"

(* ------------------------------------------------------------------ *)
(* Symbolic prover throughput (BENCH_sym.json)                         *)
(* ------------------------------------------------------------------ *)

let sym_bench () =
  print_endline "\nSymbolic faithful-emulation prover";
  print_endline "==================================";
  let reports = Mir_verif.Prove.all () in
  let paths = List.fold_left (fun a r -> a + r.Mir_verif.Prove.paths) 0 reports
  and instances =
    List.fold_left (fun a r -> a + r.Mir_verif.Prove.instances) 0 reports
  and seconds =
    List.fold_left (fun a r -> a +. r.Mir_verif.Prove.seconds) 0. reports
  in
  let hist_len =
    List.fold_left
      (fun a r -> max a (Array.length r.Mir_verif.Prove.depth_hist))
      0 reports
  in
  let hist = Array.make hist_len 0 in
  List.iter
    (fun r ->
      Array.iteri
        (fun d n -> hist.(d) <- hist.(d) + n)
        r.Mir_verif.Prove.depth_hist)
    reports;
  let max_depth = ref 0 in
  Array.iteri (fun d n -> if n > 0 then max_depth := d) hist;
  let paths_per_sec = float_of_int paths /. seconds in
  List.iter
    (fun r -> Format.printf "  %a@." Mir_verif.Prove.pp_report r)
    reports;
  Printf.printf "  %d paths in %.2fs: %.0f paths/sec (max split depth %d)\n"
    paths seconds paths_per_sec !max_depth;
  let task_json =
    String.concat ",\n    "
      (List.map
         (fun r ->
           Printf.sprintf
             "{\"name\": %S, \"instances\": %d, \"paths\": %d, \
              \"unexplored\": %d, \"proved\": %b, \"seconds\": %.3f}"
             r.Mir_verif.Prove.name r.Mir_verif.Prove.instances
             r.Mir_verif.Prove.paths r.Mir_verif.Prove.unexplored
             (Mir_verif.Prove.proved r) r.Mir_verif.Prove.seconds)
         reports)
  in
  let hist_json =
    String.concat ", "
      (Array.to_list (Array.mapi (fun _ n -> string_of_int n)
                        (Array.sub hist 0 (!max_depth + 1))))
  in
  let oc = open_out "BENCH_sym.json" in
  Printf.fprintf oc
    "{\n  \"instances\": %d,\n  \"paths\": %d,\n  \"seconds\": %.3f,\n  \
     \"paths_per_sec\": %.0f,\n  \"split_depth_hist\": [%s],\n  \
     \"tasks\": [\n    %s\n  ]\n}\n"
    instances paths seconds paths_per_sec hist_json task_json;
  close_out oc;
  print_endline "  wrote BENCH_sym.json"

(* ------------------------------------------------------------------ *)
(* Domain-parallel machine fleet (BENCH_fleet.json)                    *)
(* ------------------------------------------------------------------ *)

(* Run the same fleet at several domain counts.  Everything except
   wall-clock time must be bit-identical across counts (the fleet's
   determinism contract); the scaling table records how aggregate
   host-side throughput responds to domains.  On a single-core host
   the curve is flat — the "deterministic" bit is the part that must
   hold everywhere. *)
let fleet_bench () =
  print_endline "\nDomain-parallel machine fleet";
  print_endline "=============================";
  let module Fleet = Mir_fleet.Fleet in
  let machines =
    match Sys.getenv_opt "MIRALIS_FLEET_MACHINES" with
    | Some s -> int_of_string s
    | None -> 64
  in
  let duration_ms =
    match Sys.getenv_opt "MIRALIS_FLEET_DURATION_MS" with
    | Some s -> float_of_string s
    | None -> 1.0
  in
  let spec = { Fleet.default_spec with Fleet.machines; duration_ms } in
  let domain_counts =
    let recommended = Mir_fleet.Pool.default_domains () in
    List.sort_uniq compare (1 :: 2 :: 4 :: [ recommended ])
    |> List.filter (fun d -> d <= max 4 recommended)
  in
  Printf.printf "  %d machines, workload %s, seed 0x%Lx, %.2f ms each\n"
    machines spec.Fleet.workload spec.Fleet.seed duration_ms;
  let runs =
    List.map
      (fun domains ->
        let r = Fleet.run { spec with Fleet.domains } in
        let agg = Fleet.aggregate r in
        (domains, r, agg))
      domain_counts
  in
  let _, base_run, base = List.hd runs in
  let digests_of r =
    Array.map (fun m -> m.Fleet.digest) r.Fleet.results
  in
  let base_digests = digests_of base_run in
  let deterministic =
    List.for_all
      (fun (_, r, agg) ->
        digests_of r = base_digests
        && agg.Fleet.fleet_digest = base.Fleet.fleet_digest
        && agg.Fleet.requests = base.Fleet.requests
        && agg.Fleet.traps = base.Fleet.traps)
      runs
  in
  let base_wall = (fun (_, r, _) -> r.Fleet.wall_seconds) (List.hd runs) in
  let scaling =
    List.map
      (fun (domains, r, agg) ->
        (domains, r.Fleet.wall_seconds, agg.Fleet.traps_per_wall_sec,
         base_wall /. r.Fleet.wall_seconds))
      runs
  in
  let best_speedup =
    List.fold_left (fun a (_, _, _, s) -> max a s) 0. scaling
  in
  Printf.printf
    "  aggregate: %d requests, %d traps, %d world switches, %Ld instrs\n"
    base.Fleet.requests base.Fleet.traps base.Fleet.world_switches
    base.Fleet.instrs;
  Printf.printf "  simulated trap rate: %.0f traps/s (consolidated)\n"
    base.Fleet.sim_trap_rate;
  Printf.printf "  latency: p50=%.0f p99=%.0f p999=%.0f simulated cycles\n"
    base.Fleet.p50_cycles base.Fleet.p99_cycles base.Fleet.p999_cycles;
  List.iter
    (fun (d, wall, tps, speedup) ->
      Printf.printf
        "  domains=%d  wall=%.2fs  %8.0f traps/s host-side  speedup %.2fx\n"
        d wall tps speedup)
    scaling;
  Printf.printf "  deterministic across domain counts: %b\n" deterministic;
  if not base.Fleet.all_completed then
    print_endline "  WARNING: some machines hit the instruction budget";
  let oc = open_out "BENCH_fleet.json" in
  Printf.fprintf oc
    "{\n  \"machines\": %d,\n  \"workload\": %S,\n  \"seed\": \"0x%Lx\",\n  \
     \"duration_ms\": %.3f,\n  \"requests\": %d,\n  \"traps\": %d,\n  \
     \"world_switches\": %d,\n  \"offload_hits\": %d,\n  \
     \"instrs\": %Ld,\n  \"all_completed\": %b,\n  \
     \"sim_trap_rate\": %.0f,\n  \"p50_cycles\": %.0f,\n  \
     \"p99_cycles\": %.0f,\n  \"p999_cycles\": %.0f,\n  \
     \"fleet_digest\": \"%016Lx\",\n  \"deterministic\": %b,\n  \
     \"best_speedup\": %.3f,\n  \"scaling\": [\n%s\n  ]\n}\n"
    machines spec.Fleet.workload spec.Fleet.seed duration_ms
    base.Fleet.requests base.Fleet.traps base.Fleet.world_switches
    base.Fleet.offload_hits base.Fleet.instrs base.Fleet.all_completed
    base.Fleet.sim_trap_rate base.Fleet.p50_cycles base.Fleet.p99_cycles
    base.Fleet.p999_cycles base.Fleet.fleet_digest deterministic
    best_speedup
    (String.concat ",\n"
       (List.map
          (fun (d, wall, tps, speedup) ->
            Printf.sprintf
              "    {\"domains\": %d, \"wall_seconds\": %.3f, \
               \"traps_per_sec\": %.0f, \"speedup\": %.3f}"
              d wall tps speedup)
          scaling));
  close_out oc;
  print_endline "  wrote BENCH_fleet.json"

(* ------------------------------------------------------------------ *)
(* Static analyzer cost (BENCH_lint.json)                               *)
(* ------------------------------------------------------------------ *)

(* The invariant analyzer runs on every CI cycle and is meant to grow a
   rule per PR, so its cost stays on the dashboard: parse + rule-engine
   throughput in files/sec over the real tree. *)
let lint_bench () =
  print_endline "\nStatic analyzer throughput (lib/analysis)";
  print_endline "=========================================";
  let module Lint = Mir_analysis.Lint in
  let module Rules = Mir_analysis.Rules in
  let rec find_root dir depth =
    if depth > 8 then None
    else if Sys.file_exists (Filename.concat dir "lib/rv") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_root parent (depth + 1)
  in
  match find_root (Sys.getcwd ()) 0 with
  | None -> print_endline "  repository sources not found; skipped"
  | Some root ->
      (* one warm-up pass faults the sources into the page cache *)
      let warm = Lint.run ~root ~dirs:Lint.default_dirs () in
      let passes = 5 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to passes do
        ignore (Lint.run ~root ~dirs:Lint.default_dirs ())
      done;
      let dt = Unix.gettimeofday () -. t0 in
      let files_per_sec = float_of_int (warm.Lint.files * passes) /. dt in
      let nrules = List.length Rules.all in
      Printf.printf
        "  %d files × %d rules × %d passes in %.2fs  →  %8.0f files/sec\n"
        warm.Lint.files nrules passes dt files_per_sec;
      Printf.printf "  diagnostics on the tree: %d\n"
        (List.length warm.Lint.diagnostics);
      let oc = open_out "BENCH_lint.json" in
      Printf.fprintf oc
        "{\n  \"files\": %d,\n  \"rules\": %d,\n  \"passes\": %d,\n  \
         \"seconds\": %.3f,\n  \"files_per_sec\": %.0f,\n  \
         \"diagnostics\": %d\n}\n"
        warm.Lint.files nrules passes dt files_per_sec
        (List.length warm.Lint.diagnostics);
      close_out oc;
      print_endline "  wrote BENCH_lint.json"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulator's primitives              *)
(* ------------------------------------------------------------------ *)

let micro () =
  print_endline "\nSimulator microbenchmarks (Bechamel)";
  print_endline "====================================";
  let open Bechamel in
  let open Toolkit in
  let decode_word = 0x34011173 (* csrrw sp, mscratch, sp *) in
  let machine = Mir_rv.Machine.create Mir_rv.Machine.default_config in
  let hart = machine.Mir_rv.Machine.harts.(0) in
  let image, _ =
    Mir_asm.Asm.assemble ~base:0x80000000L
      Mir_asm.Asm.I.
        [ label "loop"; addi Mir_asm.Asm.Reg.a0 Mir_asm.Asm.Reg.a0 1L;
          xor Mir_asm.Asm.Reg.a1 Mir_asm.Asm.Reg.a1 Mir_asm.Asm.Reg.a0;
          j "loop" ]
  in
  Mir_rv.Machine.load_program machine 0x80000000L image;
  Mir_rv.Hart.reset hart ~pc:0x80000000L;
  let ranges = Mir_rv.Csr_file.pmp_ranges hart.Mir_rv.Hart.csr in
  (* a TLB with one hot entry: the hit path must stay allocation-free,
     which the minor-words column below verifies *)
  let tlb = Mir_rv.Tlb.create ~entries:256 in
  Mir_rv.Tlb.install tlb ~priv:Mir_rv.Priv.S ~vaddr:0x4000L
    ~phys:0x80004000L ~pte:0xCFL ~sum:false ~mxr:false ~pmp_r:true
    ~pmp_w:true ~pmp_x:true;
  let tests =
    [
      Test.make ~name:"tlb-hit-load" (Staged.stage (fun () ->
          ignore
            (Mir_rv.Tlb.lookup tlb ~priv:Mir_rv.Priv.S Mir_rv.Vmem.Load
               0x4123L)));
      Test.make ~name:"decode" (Staged.stage (fun () ->
          ignore (Mir_rv.Decode.decode decode_word)));
      Test.make ~name:"hart-step" (Staged.stage (fun () ->
          Mir_rv.Machine.step machine hart));
      Test.make ~name:"pmp-check" (Staged.stage (fun () ->
          ignore
            (Mir_rv.Pmp.check_ranges ranges ~priv:Mir_rv.Priv.S
               Mir_rv.Pmp.Read ~addr:0x80001000L ~size:8)));
      Test.make ~name:"csr-read" (Staged.stage (fun () ->
          ignore
            (Mir_rv.Csr_file.read hart.Mir_rv.Hart.csr
               Mir_rv.Csr_addr.mstatus)));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock; minor_allocated ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) () in
    Benchmark.all cfg instances test
  in
  let raw = benchmark (Test.make_grouped ~name:"sim" tests) in
  let analyze instance =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      instance raw
  in
  let times = analyze Instance.monotonic_clock in
  let words = analyze Instance.minor_allocated in
  let estimate tbl name =
    match Analyze.OLS.estimates (Hashtbl.find tbl name) with
    | Some [ est ] -> est
    | _ | (exception Not_found) -> nan
  in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
          let w = estimate words name in
          Printf.printf "  %-24s %8.1f ns/op  %8.2f minor words/op%s\n" name
            est w
            (if w < 1.0 then "  [alloc-free]" else "")
      | _ -> ())
    times

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let t0 = Unix.gettimeofday () in
  (match args with
  | [] ->
      List.iter (fun (_, f) -> f ()) experiments;
      trace_bench ();
      fuzz_bench ();
      sym_bench ();
      ips_bench ();
      explore_bench ();
      fleet_bench ();
      lint_bench ();
      micro ()
  | names ->
      List.iter
        (fun name ->
          if name = "micro" then micro ()
          else if name = "trace" then trace_bench ()
          else if name = "fuzz" then fuzz_bench ()
          else if name = "sym" then sym_bench ()
          else if name = "ips" then ips_bench ()
          else if name = "explore" then explore_bench ()
          else if name = "fleet" then fleet_bench ()
          else if name = "lint" then lint_bench ()
          else
            match List.assoc_opt name experiments with
            | Some f -> f ()
            | None ->
                Printf.eprintf
                  "unknown experiment %S; known: %s trace fuzz sym ips \
                   explore fleet lint micro\n"
                  name
                  (String.concat " " (List.map fst experiments)))
        names);
  Printf.printf "\n[bench completed in %.1fs]\n" (Unix.gettimeofday () -. t0)
