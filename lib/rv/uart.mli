(** A console UART (transmit-only 16550 subset).

    Byte writes to offset 0 append to an output buffer that tests and
    the CLI read back; offset 5 (LSR) always reports "transmit
    ready". *)

type t

val default_base : int64
val create : unit -> t
val output : t -> string
(** Everything written so far. *)

val clear : t -> unit
val device : t -> base:int64 -> Device.t

(** {2 Checkpoint support} *)

type state
(** Opaque deep copy of the device state. *)

val save_state : t -> state
val load_state : t -> state -> unit
