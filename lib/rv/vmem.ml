module Bits = Mir_util.Bits

type access = Fetch | Load | Store

let pte_v = 0x01L
let pte_r = 0x02L
let pte_w = 0x04L
let pte_x = 0x08L
let pte_u = 0x10L
let pte_g = 0x20L
let pte_a = 0x40L
let pte_d = 0x80L
let pte_ppn pte = Bits.extract pte ~lo:10 ~hi:53

let fault = function
  | Fetch -> Cause.Instr_page_fault
  | Load -> Cause.Load_page_fault
  | Store -> Cause.Store_page_fault

let page_shift = 12
let levels = 3
let ptesize = 8L

(* A successful walk: the translated physical address, the leaf PTE
   *after* the hardware A/D update, and the level it was found at
   (0 = 4 KiB page).  This is exactly what a TLB needs to install an
   entry without re-deriving anything. *)
type leaf = { phys : int64; pte : int64; level : int }

(* The walker is functorized over its PTE memory so the hot path reads
   the bus directly (static module functions, no per-call closures)
   while the monitor's MPRV emulation and the unit tests keep the
   flexible closure-backed view below. *)
module type MEM = sig
  type mem

  val read : mem -> int64 -> int64 option
  val write : mem -> int64 -> int64 -> unit
end

module Make (M : MEM) = struct
  let translate_leaf mem ~satp ~priv ~sum ~mxr access vaddr =
    let mode = Bits.extract satp ~lo:60 ~hi:63 in
    if priv = Priv.M || mode = 0L then
      Ok { phys = vaddr; pte = 0L; level = -1 }
    else begin
      (* Sv39: the virtual address must be sign-extended from bit 38. *)
      let canonical = Bits.sext vaddr ~width:39 = vaddr in
      if not canonical then Error (fault access)
      else
        let root =
          Int64.shift_left (Bits.extract satp ~lo:0 ~hi:43) page_shift
        in
        let vpn i =
          Bits.extract vaddr ~lo:(page_shift + (9 * i))
            ~hi:(page_shift + (9 * i) + 8)
        in
        let rec walk level table =
          if level < 0 then Error (fault access)
          else
            let pte_addr = Int64.add table (Int64.mul (vpn level) ptesize) in
            match M.read mem pte_addr with
            | None -> Error (fault access)
            | Some pte ->
                let v = Int64.logand pte pte_v <> 0L in
                let r = Int64.logand pte pte_r <> 0L in
                let w = Int64.logand pte pte_w <> 0L in
                let x = Int64.logand pte pte_x <> 0L in
                if (not v) || ((not r) && w) then Error (fault access)
                else if (not r) && not x then
                  (* pointer to next level *)
                  walk (level - 1)
                    (Int64.shift_left (pte_ppn pte) page_shift)
                else begin
                  (* leaf PTE: check permissions *)
                  let u = Int64.logand pte pte_u <> 0L in
                  let perm_ok =
                    match access with
                    | Fetch -> x && (if priv = Priv.U then u else not u)
                    | Load ->
                        (r || (mxr && x))
                        && (if priv = Priv.U then u else (not u) || sum)
                    | Store ->
                        w && (if priv = Priv.U then u else (not u) || sum)
                  in
                  if not perm_ok then Error (fault access)
                  else begin
                    (* misaligned superpage check *)
                    let ppn = pte_ppn pte in
                    let misaligned =
                      level > 0
                      && Bits.extract ppn ~lo:0 ~hi:((9 * level) - 1) <> 0L
                    in
                    if misaligned then Error (fault access)
                    else begin
                      (* hardware-managed A/D bits *)
                      let need_d = access = Store in
                      let pte' =
                        Int64.logor pte
                          (Int64.logor pte_a (if need_d then pte_d else 0L))
                      in
                      if pte' <> pte then M.write mem pte_addr pte';
                      let page_off = Bits.extract vaddr ~lo:0 ~hi:11 in
                      let ppn_mixed =
                        if level = 0 then ppn
                        else
                          (* superpage: low PPN bits come from vaddr *)
                          Int64.logor
                            (Int64.logand ppn
                               (Int64.lognot (Bits.mask (9 * level))))
                            (Bits.extract vaddr ~lo:page_shift
                               ~hi:(page_shift + (9 * level) - 1))
                      in
                      Ok
                        {
                          phys =
                            Int64.logor
                              (Int64.shift_left ppn_mixed page_shift)
                              page_off;
                          pte = pte';
                          level;
                        }
                    end
                  end
                end
        in
        walk (levels - 1) root
    end
end

(* Bus-backed walker: the interpreter's path.  PTE reads and A/D
   write-back go straight to the bus with no intermediate closures. *)
module Bus_mem = struct
  type mem = Bus.t

  let read bus addr = Bus.load bus addr 8
  let write bus addr v = ignore (Bus.store bus addr 8 v)
end

module On_bus = Make (Bus_mem)

(* Closure-backed walker: keeps the historical [translate] signature
   for the monitor's MPRV load/store emulation and for tests that back
   PTE memory with a Hashtbl. *)
module Fn_mem = struct
  type mem = {
    read : int64 -> int64 option;
    write : int64 -> int64 -> unit;
  }

  let read m a = m.read a
  let write m a v = m.write a v
end

module On_fns = Make (Fn_mem)

let translate ~read ~write ~satp ~priv ~sum ~mxr access vaddr =
  Result.map
    (fun l -> l.phys)
    (On_fns.translate_leaf { Fn_mem.read; write } ~satp ~priv ~sum ~mxr access
       vaddr)
