(** The simulated RISC-V machine: harts, bus, devices, interpreter.

    This module is the executable ISA specification: it implements
    instruction fetch/decode/execute, privilege checking, PMP
    enforcement, Sv39 translation, trap taking with delegation, and
    interrupt delivery — the [hw : C × S × I → S] transition function
    of the paper's §6.1.

    The key extension point for the VFM is {!field:t.mmode_hook}: when
    set, a trap whose architectural target is M-mode updates the
    M-level CSRs exactly as hardware would and then invokes the hook
    instead of redirecting to [mtvec]. The hook — Miralis — is thus the
    machine's M-mode software, without the OCaml runtime having to run
    on the simulated CPU (see DESIGN.md, substitution table). *)

type config = {
  csr_config : Csr_spec.config;
  nharts : int;
  ram_base : int64;
  ram_size : int;
  cycles_per_tick : int;  (** CPU cycles per mtime tick *)
  hw_misaligned : bool;  (** hardware performs misaligned accesses *)
  trap_penalty : int;  (** pipeline cost of taking any trap *)
  xret_penalty : int;  (** pipeline cost of mret/sret *)
  mmio_penalty : int;  (** uncached device access cost *)
  tlb_entries : int;
      (** per-hart software-TLB slots (default 256; 0 disables the TLB
          and the fetch-page cache, leaving the raw walker) *)
  block_engine : bool;
      (** execute {!run} through the decoded basic-block cache
          (default true). {!step} always remains the per-instruction
          interpreter — the differential oracle — and {!run_scheduled}
          always steps the interpreter so schedule exploration
          preempts at exact step counts. The engine requires the
          fetch-page cache ([tlb_entries > 0]) to ever hit; with it
          disabled every step falls back to the interpreter. *)
}

val default_config : config
(** One hart, 16 MiB of RAM at 0x8000_0000, CLINT/PLIC/UART mapped at
    their conventional addresses, misaligned accesses trapping (like
    the VisionFive 2). *)

(** Injectable cross-hart race windows (schedule explorer, lib/explore).
    Each defect delays one cross-hart propagation step — the remote TLB
    shootdown of an sfence, the physical MSIP kick behind a vCLINT IPI,
    the sibling reinstall of a policy PMP handoff — by {!race_window}
    global steps, opening an inconsistency window that only a
    preemptive schedule can observe. *)
type race_bug = Delayed_vm_epoch | Dropped_msip | Pmp_handoff_window

type t = {
  config : config;
  harts : Hart.t array;
  bus : Bus.t;
  clint : Clint.t;
  plic : Plic.t;
  uart : Uart.t;
  mutable blockdev : Blockdev.t option;
  mutable nic : Nic.t option;
  icache : (Instr.t * int) option array;
      (** decoded-instruction cache (instruction, raw bits) *)
  blocks : Block.cache;
      (** decoded basic blocks over the icache, physically indexed;
          see DESIGN.md §11 *)
  mutable block_engine : bool;
      (** whether {!run} dispatches through {!step_blocks}; initial
          value comes from {!field:config.block_engine} *)
  mutable mmode_hook : (t -> Hart.t -> Cause.t -> unit) option;
  mutable on_trap :
    (t -> Hart.t -> Cause.t -> from_priv:Priv.t -> to_m:bool -> unit) option;
      (** observation hook fired on every trap, for statistics *)
  mutable on_csr_write : (t -> Hart.t -> int -> int64 -> unit) option;
      (** fired after every architectural CSR write executed by a
          guest instruction, with the legalized stored value *)
  mutable on_mmio :
    (t -> Hart.t -> write:bool -> addr:int64 -> size:int -> value:int64 ->
     unit)
    option;
      (** fired after every successful device (non-RAM) load/store *)
  mutable on_chunk : (t -> unit) option;
      (** fired once per scheduler round in {!run}, after device
          polling — used by the checkpoint layer *)
  mutable poweroff : bool;
  mutable instr_count : int;
      (** total machine steps retired (plain [int]: unboxed updates;
          63 bits outlast any simulation) *)
  mutable race_bug : race_bug option;
      (** armed race-window injection; [None] (the default) leaves
          every propagation step atomic as before *)
  mutable deferred : deferred list;
      (** pending cross-hart propagation actions; ticked once per
          global step, empty unless a race bug is armed *)
}

and deferred = { mutable ticks : int; action : t -> unit }

val create : config -> t
val attach_blockdev : t -> capacity_sectors:int -> latency_ticks:int64 -> Blockdev.t
val attach_nic : t -> Nic.t

val phys_load : t -> int64 -> int -> int64 option
(** Unchecked physical access (used by loaders and by the VFM, which
    conceptually runs in M-mode). *)

val phys_store : t -> int64 -> int -> int64 -> bool

val load_program : t -> int64 -> bytes -> unit
(** Copy a program image into RAM and invalidate the icache. *)

val pmp_check :
  t -> Hart.t -> priv:Priv.t -> Pmp.access -> addr:int64 -> size:int -> bool
(** The hart's current physical PMP applied to an access. *)

val translate :
  t -> Hart.t -> priv:Priv.t -> Vmem.access -> int64 ->
  (int64, Cause.exc) result
(** Sv39 translation using the hart's satp/mstatus context. *)

val take_trap : t -> Hart.t -> Cause.t -> tval:int64 -> unit
(** Architectural trap entry (delegation, CSR updates, hook). *)

val pending_interrupt : t -> Hart.t -> Cause.intr option
(** The interrupt the hart would take next, per the architectural
    enable/delegation/priority rules (exposed for the verifier). *)

val step : t -> Hart.t -> unit
(** Execute one instruction (or deliver one interrupt / idle one
    quantum in WFI). *)

val step_blocks : t -> Hart.t -> budget:int -> int
(** Consume up to [budget] machine steps through the decoded
    basic-block engine and return the number consumed (at least 1 on
    a live, non-powered-off machine). Bit-exact with calling {!step}
    the same number of times — architectural state, cycles, instret
    and the global instruction count all agree at every step
    boundary; only cache statistics differ. Exposed for the
    differential harness (lib/verif) and the benchmark; lint rule 7
    keeps other layers on {!run}/{!step}. *)

val block_stats : t -> Block.stats
(** Lifetime block-cache counters for this machine. *)

val block_hit_rate : t -> float
(** Fraction of block-engine-retired instructions that came from
    compiled blocks (0 when the engine never ran). *)

val set_block_engine : t -> bool -> unit
(** Toggle the engine used by {!run}; flushing is unnecessary because
    blocks mirror icache contents either way. *)

val block_engine_enabled : t -> bool

val charge : Hart.t -> int -> unit
(** Add cost-model cycles to a hart. *)

val resume : Hart.t -> pc:int64 -> priv:Priv.t -> unit
(** Redirect a hart (used by the VFM when returning from emulation). *)

val run : ?max_instrs:int64 -> ?chunk:int -> t -> unit
(** Run all harts round-robin until power-off, all harts halt, or the
    instruction budget is exhausted. *)

val run_scheduled : ?max_steps:int -> ?chunk:int -> pick:(t -> int) -> t -> unit
(** Run under an external scheduler: [pick] chooses the hart for every
    single step, so a schedule explorer can preempt at arbitrary step
    boundaries. Device time is synced every [chunk] scheduled steps
    (pass [32 * nharts] to mirror {!run}'s cadence). [pick] should
    return a non-halted hart; a halted or out-of-range pick steps
    nothing but still consumes the step budget. [pick] may raise to
    abort the run. *)

val race_window : int
(** Width, in global steps, of every injected race window. *)

val defer : t -> ticks:int -> (t -> unit) -> unit
(** Schedule an action to run at the start of the [ticks]-th next
    machine step (any hart). Used by the race-bug injections to model
    delayed cross-hart propagation. *)

val all_halted : t -> bool
val now_ticks : t -> int64
(** Current mtime. *)

val flush_icache : t -> unit

val invalidate_icache : t -> int64 -> int -> unit
(** Invalidate the decoded-instruction cache for a physical range
    (used by the verifier, which patches instructions directly). *)

val sfence_vma : t -> ?from:int -> ?vaddr:int64 -> unit -> unit
(** Architectural [sfence.vma] over the software TLBs of all harts:
    global without [vaddr], per-vpage with it. [from] names the
    fencing hart; it changes nothing architecturally, but under the
    Delayed_vm_epoch injected bug the cross-hart shootdown (every hart
    but [from]) lands {!race_window} steps late. *)

val flush_tlbs : t -> unit
(** Flush every hart's TLB and fetch-page cache (checkpoint restore,
    external state surgery). *)

val tlb_totals : t -> int * int * int
(** Aggregate TLB (hits, misses, flushes) over all harts. *)

val resolve : t -> Hart.t -> priv:Priv.t -> Vmem.access -> int64 -> int -> int64
(** Translate + PMP-check one access, through the TLB; raises
    [Cause.Trap] on fault. Exposed for the paging differential
    harness. *)

val vload : t -> Hart.t -> int64 -> int -> signed:bool -> int64
(** Virtual load at the hart's effective privilege; raises
    [Cause.Trap] on fault. *)

val vstore : t -> Hart.t -> int64 -> int -> int64 -> unit
(** Virtual store at the hart's effective privilege; raises
    [Cause.Trap] on fault. *)
