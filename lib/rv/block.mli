(** Decoded basic blocks and their physically-indexed cache.

    A block is an array of pre-decoded instruction closures keyed by
    the icache word index (physical RAM location) of its first
    instruction. Virtual-side validity is re-checked on every dispatch
    through the TLB fetch-page cache (vm-epoch invalidation covers
    satp/PMP/mstatus writes and sfence.vma); physical-side
    invalidation is page-granular and driven by the same
    [Machine.icache_invalidate]/[flush_icache] events that keep the
    word icache coherent. See DESIGN.md §11 for the full invalidation
    matrix. *)

type t = {
  ops : (Hart.t -> unit) array;
      (** one closure per instruction, in address order; each advances
          the hart exactly as [Machine.exec] would (raising
          [Cause.Trap] for faults). Closures that need their own pc
          read it as [hart.bpc] plus a compile-time offset; pure
          closures leave [pc] itself to the executor — see
          block.ml *)
  pure_run : int array;
      (** [pure_run.(i)] = length of the run of consecutive pure
          (register-only, non-trapping, hook-free) ops starting at
          [i]; every suffix of a pure run is itself a pure run *)
  cls : Bytes.t;
      (** executor class per op — 0 pure, 1 control (jal/jalr/branch),
          2 memory (load/store/amo), 3 delegate; see block.ml for the
          exact guarantees each class makes to the executor *)
  term_inert : bool;
      (** the final op's class is <= 2, i.e. falling off the block end
          provably leaves translation, privilege and the vm-epoch as
          they were at dispatch (enables same-page chain shortcuts) *)
  whole : bool;
      (** one pure run capped by a control terminator, <= 16 ops: the
          executor's resident self-chain loop applies (see
          [Machine.exec_block]) *)
}

val length : t -> int

type cache
(** Per-machine block store, indexed like the icache (one slot per RAM
    word). Owned by a [Machine.t] — never shared across machines or
    domains. *)

val create : words:int -> cache
(** [words] = RAM size / 4, matching the icache. *)

val lookup : cache -> int -> t option
(** Block starting at the given RAM word index, if still live. The
    index must be in range (it comes from the fetch-page cache, which
    only holds pages wholly inside RAM). *)

val insert : cache -> int -> t -> unit
(** Publish a freshly compiled block at its start word index. *)

val note_dispatch : cache -> unit
val note_dispatches : cache -> int -> unit
val note_block_instrs : cache -> int -> unit
val note_interp_instr : cache -> unit
(** Stats feeders for the executor in [Machine]. *)

val invalidate_word : cache -> int -> unit
(** A store hit the given RAM word: drop every block on its 4 KiB
    page (blocks never span pages, so this is a complete kill). Costs
    one array read when the page holds no blocks. *)

val flush : cache -> unit
(** Drop every block (program load, snapshot restore, fence.i). *)

type stats = {
  compiled : int;
  invalidated : int;
  dispatches : int;  (** block executions begun *)
  block_instrs : int;  (** instructions retired inside blocks *)
  interp_instrs : int;
      (** instructions retired by the engine's interpreter fallback *)
}

val stats : cache -> stats

val hit_rate : cache -> float
(** block-retired / (block-retired + fallback-retired) instructions;
    0 when the engine has not executed anything. *)
