(** A DMA-capable block device with a latency model.

    Used by the IOzone-style disk benchmarks. Commands complete after a
    configurable number of timer ticks and raise a PLIC interrupt. The
    device performs DMA to RAM — which is exactly why the VFM must
    revoke *firmware* access to it (no IOPMP on the modelled
    platforms).

    Register layout (8-byte registers):
    - 0x00 sector, 0x08 dma address, 0x10 length (bytes),
    - 0x18 command (1 = read into RAM, 2 = write from RAM),
    - 0x20 status (0 idle, 1 busy, 2 done), write to acknowledge. *)

type t

val default_base : int64
val sector_size : int

val create :
  ram:Memory.t -> capacity_sectors:int -> latency_ticks:int64 -> irq:int -> t

val device : t -> base:int64 -> Device.t

val poll : t -> now:int64 -> (int -> unit) -> unit
(** [poll t ~now raise_irq] completes any command whose deadline has
    passed, performing the DMA and signalling the interrupt. *)

val write_sector : t -> int -> bytes -> unit
(** Back-door used by tests and workload setup. *)

val read_sector : t -> int -> bytes
val busy : t -> bool

(** {2 Checkpoint support} *)

type state
(** Opaque deep copy of the device state. *)

val save_state : t -> state
val load_state : t -> state -> unit
