(** Core-Local Interruptor (CLINT).

    Standard SiFive-compatible layout at offset 0 of its window:
    - [0x0000 + 4*h]: msip for hart [h] (software interrupt)
    - [0x4000 + 8*h]: mtimecmp for hart [h]
    - [0xBFF8]: mtime

    The CLINT is the only MMIO device the paper needed to emulate in
    the VFM; the virtual CLINT in [lib/vfm] wraps this same layout. *)

type t

val default_base : int64
val window_size : int64

val create : nharts:int -> t
val nharts : t -> int

val mtime : t -> int64
val set_mtime : t -> int64 -> unit
val advance : t -> int64 -> unit
(** Add ticks to mtime. *)

val mtimecmp : t -> int -> int64
val set_mtimecmp : t -> int -> int64 -> unit
val msip : t -> int -> bool
val set_msip : t -> int -> bool -> unit

val mtip : t -> int -> bool
(** Timer interrupt line for a hart: [mtime >= mtimecmp]. *)

val device : t -> base:int64 -> Device.t
(** The MMIO view. *)

(* Register offsets, exported for the VFM's virtual CLINT. *)
val msip_offset : int -> int64
val mtimecmp_offset : int -> int64
val mtime_offset : int64

(** {2 Checkpoint support} *)

type state
(** Opaque deep copy of the device state. *)

val save_state : t -> state
val load_state : t -> state -> unit
