(** Platform-Level Interrupt Controller (minimal but functional).

    Supports [nsources] level-triggered sources and one context per
    hart per privilege target (M and S). Layout (relative to base):
    - [0x000000 + 4*src]: priority of source [src]
    - [0x001000]: pending bits (read-only, word 0)
    - [0x002000 + 0x80*ctx]: enable bits, word 0 of context [ctx]
    - [0x200000 + 0x1000*ctx]: threshold
    - [0x200004 + 0x1000*ctx]: claim/complete

    Context numbering: [2*h] targets M-mode of hart [h], [2*h+1]
    targets S-mode of hart [h] (the QEMU virt convention). *)

type t

val default_base : int64
val window_size : int64
val create : nharts:int -> nsources:int -> t

val raise_irq : t -> int -> unit
(** Mark a source pending (level high). *)

val lower_irq : t -> int -> unit

val enable_source : t -> ctx:int -> int -> unit
(** Route [src] to [ctx] (priority raised to at least 1), without
    going through the MMIO window — so a harness can drive the
    external line like the CLINT-driven timer/software ones. *)

val pending_for : t -> ctx:int -> bool
(** True iff some enabled source with priority above the context's
    threshold is pending and unclaimed — i.e. the external interrupt
    line for that context is high. *)

val meip : t -> int -> bool
(** External interrupt line to M-mode of a hart. *)

val seip : t -> int -> bool
(** External interrupt line to S-mode of a hart. *)

val claim : t -> ctx:int -> int
(** Claim the highest-priority pending enabled source (0 if none). *)

val complete : t -> ctx:int -> int -> unit
val device : t -> base:int64 -> Device.t

(** {2 Checkpoint support} *)

type state
(** Opaque deep copy of the device state. *)

val save_state : t -> state
val load_state : t -> state -> unit
