module Bits = Mir_util.Bits

type t = {
  config : Csr_spec.config;
  store : int64 array; (* indexed by CSR address *)
  specs : Csr_spec.t option array;
  mutable pmp_cache : Pmp.entry array option;
  mutable pmp_ranges_cache : Pmp.ranges option;
      (* decoded PMP entries, invalidated on pmpcfg/pmpaddr writes;
         rebuilding on every memory access dominated simulation time *)
  mutable vm_epoch : int;
      (* bumped whenever a CSR write can change virtual-memory or
         protection behaviour (satp, PMP registers, mstatus
         MPRV/SUM/MXR) — whichever write path performed it.  The
         hart's TLB compares this lazily and flushes on mismatch, so
         even raw installs during a world switch invalidate cached
         translations. *)
}

let create config ~hart_id =
  let store = Array.make 4096 0L in
  let specs = Array.init 4096 (fun addr -> Csr_spec.find config addr) in
  Array.iteri
    (fun addr spec ->
      match spec with Some s -> store.(addr) <- s.Csr_spec.reset | None -> ())
    specs;
  store.(Csr_addr.mhartid) <- Int64.of_int hart_id;
  {
    config;
    store;
    specs;
    pmp_cache = None;
    pmp_ranges_cache = None;
    vm_epoch = 0;
  }

let config t = t.config
let spec t addr = if addr >= 0 && addr < 4096 then t.specs.(addr) else None
let exists t addr = Option.is_some (spec t addr)
let read_raw t addr = t.store.(addr)

let is_pmp_reg addr = Csr_addr.is_pmpcfg addr || Csr_addr.is_pmpaddr addr

let vm_epoch t = t.vm_epoch

(* MPRV | SUM | MXR: the mstatus bits that change how memory accesses
   translate or are permitted. *)
let mstatus_vm_mask = 0xE0000L

let write_raw t addr v =
  if is_pmp_reg addr then begin
    t.pmp_cache <- None;
    t.pmp_ranges_cache <- None;
    t.vm_epoch <- t.vm_epoch + 1
  end
  else if addr = Csr_addr.satp then t.vm_epoch <- t.vm_epoch + 1
  else if
    addr = Csr_addr.mstatus
    && Int64.logand (Int64.logxor t.store.(addr) v) mstatus_vm_mask <> 0L
  then t.vm_epoch <- t.vm_epoch + 1;
  t.store.(addr) <- v

let dump t = Array.copy t.store

let restore_dump t store =
  Array.blit store 0 t.store 0 (Array.length t.store);
  t.pmp_cache <- None;
  t.pmp_ranges_cache <- None;
  t.vm_epoch <- t.vm_epoch + 1

let decode_pmp_entries t =
  Array.init t.config.Csr_spec.pmp_count (fun i ->
      let cfg_reg = Csr_addr.pmpcfg (i / 8 * 2) in
      let byte =
        Int64.to_int
          (Bits.extract t.store.(cfg_reg) ~lo:(8 * (i mod 8))
             ~hi:((8 * (i mod 8)) + 7))
      in
      Pmp.entry_of_cfg_byte byte ~addr:t.store.(Csr_addr.pmpaddr i))

let pmp_entries t =
  match t.pmp_cache with
  | Some e -> e
  | None ->
      let e = decode_pmp_entries t in
      t.pmp_cache <- Some e;
      e

let pmp_ranges t =
  match t.pmp_ranges_cache with
  | Some r -> r
  | None ->
      let r = Pmp.precompute (pmp_entries t) in
      t.pmp_ranges_cache <- Some r;
      r

let mideleg t = t.store.(Csr_addr.mideleg)

(* The view semantics (sstatus/sie/sip over mstatus/mie/mip) live in
   Csr_spec.Sem so the symbolic prover analyses the very same code;
   [Csr_spec.C] is its concrete int64 instantiation. *)

let read t addr =
  if addr = Csr_addr.sstatus then
    Csr_spec.C.sstatus_read ~mstatus:t.store.(Csr_addr.mstatus)
  else if addr = Csr_addr.sie then
    Csr_spec.C.sie_read ~mie:t.store.(Csr_addr.mie) ~mideleg:(mideleg t)
  else if addr = Csr_addr.sip then
    Csr_spec.C.sip_read ~mip:t.store.(Csr_addr.mip) ~mideleg:(mideleg t)
  else
    match spec t addr with
    | Some s -> Csr_spec.apply_read s t.store.(addr)
    | None -> invalid_arg ("Csr_file.read: " ^ Csr_addr.name addr)

(* Every cooked-write branch funnels its final store through
   [write_raw] so the PMP caches and the vm-epoch are maintained no
   matter which alias was written. *)
let write t addr v =
  if addr = Csr_addr.sstatus then
    write_raw t Csr_addr.mstatus
      (Csr_spec.C.sstatus_write ~mstatus:t.store.(Csr_addr.mstatus) ~value:v)
  else if addr = Csr_addr.sie then
    write_raw t Csr_addr.mie
      (Csr_spec.C.sie_write ~mie:t.store.(Csr_addr.mie) ~mideleg:(mideleg t)
         ~value:v)
  else if addr = Csr_addr.sip then
    write_raw t Csr_addr.mip
      (Csr_spec.C.sip_write ~mip:t.store.(Csr_addr.mip) ~mideleg:(mideleg t)
         ~value:v)
  else if Csr_addr.is_pmpaddr addr then begin
    let i = addr - 0x3B0 in
    if not (Pmp.locked (pmp_entries t) i) then
      match spec t addr with
      | Some s ->
          write_raw t addr (Csr_spec.apply_write s ~old:t.store.(addr) ~value:v)
      | None -> invalid_arg "Csr_file.write: pmpaddr"
  end
  else
    match spec t addr with
    | Some s ->
        write_raw t addr (Csr_spec.apply_write s ~old:t.store.(addr) ~value:v)
    | None -> invalid_arg ("Csr_file.write: " ^ Csr_addr.name addr)

let set_mip_bits t bits on =
  let m = t.store.(Csr_addr.mip) in
  let m' = if on then Int64.logor m bits else Int64.logand m (Int64.lognot bits) in
  (* skip the no-change case: an int64-array store allocates, and the
     line refresh calls this every 16 steps with mostly-stable lines *)
  if m' <> m then t.store.(Csr_addr.mip) <- m'
