(* Dirty tracking uses 4 KiB pages: coarse enough that the per-store
   cost is one shift and one byte write, fine enough that incremental
   checkpoints stay small. *)
let page_shift = 12
let page_size = 1 lsl page_shift

type t = { base : int64; data : Bytes.t; dirty : Bytes.t }

let create ~base ~size =
  let npages = (size + page_size - 1) / page_size in
  { base; data = Bytes.make size '\000'; dirty = Bytes.make npages '\000' }

let base t = t.base
let size t = Bytes.length t.data

let mark_dirty t o len =
  for p = o lsr page_shift to (o + len - 1) lsr page_shift do
    Bytes.unsafe_set t.dirty p '\001'
  done

let in_range t addr len =
  let off = Int64.sub addr t.base in
  off >= 0L && Int64.add off (Int64.of_int len) <= Int64.of_int (Bytes.length t.data)

let offset t addr = Int64.to_int (Int64.sub addr t.base)

let load t addr size =
  let o = offset t addr in
  match size with
  | 1 -> Int64.of_int (Char.code (Bytes.get t.data o))
  | 2 -> Int64.of_int (Bytes.get_uint16_le t.data o)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data o)) 0xFFFFFFFFL
  | 8 -> Bytes.get_int64_le t.data o
  | _ -> invalid_arg "Memory.load: size"

let store t addr size v =
  let o = offset t addr in
  mark_dirty t o size;
  match size with
  | 1 -> Bytes.set t.data o (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | 2 -> Bytes.set_uint16_le t.data o (Int64.to_int (Int64.logand v 0xFFFFL))
  | 4 -> Bytes.set_int32_le t.data o (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le t.data o v
  | _ -> invalid_arg "Memory.store: size"

let load_bytes t addr len = Bytes.sub t.data (offset t addr) len

let store_bytes t addr b =
  let o = offset t addr in
  if Bytes.length b > 0 then mark_dirty t o (Bytes.length b);
  Bytes.blit b 0 t.data o (Bytes.length b)

let fill t addr len c =
  let o = offset t addr in
  if len > 0 then mark_dirty t o len;
  Bytes.fill t.data o len c

(* ------------------------------------------------------------------ *)
(* Dirty pages and snapshots (used by lib/trace checkpoints)           *)
(* ------------------------------------------------------------------ *)

let npages t = Bytes.length t.dirty

let dirty_pages t =
  let acc = ref [] in
  for p = npages t - 1 downto 0 do
    if Bytes.get t.dirty p <> '\000' then acc := p :: !acc
  done;
  !acc

let clear_dirty t = Bytes.fill t.dirty 0 (npages t) '\000'

let page_len t p =
  min page_size (Bytes.length t.data - (p lsl page_shift))

let get_page t p = Bytes.sub t.data (p lsl page_shift) (page_len t p)

let set_page t p b =
  Bytes.blit b 0 t.data (p lsl page_shift) (Bytes.length b)

let copy_all t = Bytes.copy t.data
let restore_all t b = Bytes.blit b 0 t.data 0 (Bytes.length t.data)

(* FNV-1a over the whole RAM, 8 bytes at a stride (RAM sizes are
   power-of-two and >= 4 KiB, so always a multiple of 8). *)
let hash t =
  let h = ref 0xCBF29CE484222325L in
  let n = Bytes.length t.data in
  let i = ref 0 in
  while !i + 8 <= n do
    h :=
      Int64.mul
        (Int64.logxor !h (Bytes.get_int64_le t.data !i))
        0x100000001B3L;
    i := !i + 8
  done;
  !h
