(** Architectural state of one hart (hardware thread).

    The general-purpose registers, program counter, privilege level and
    CSR file. Cycle and retired-instruction counters are kept here so
    the cost model (and the VFM, which charges emulation cycles) can
    account time per hart. *)

type t = {
  id : int;
  mutable pc : int64;
  regs : Bytes.t;
      (** 32 little-endian int64 slots (flat, unboxed); access through
          {!get}/{!set} — x0 is forced to zero and never stored to *)
  csr : Csr_file.t;
  tlb : Tlb.t;  (** per-hart software TLB + fetch-page cache *)
  mutable priv : Priv.t;
  mutable wfi : bool;  (** stalled in [wfi] *)
  mutable halted : bool;  (** stopped (HSM or test-finish) *)
  mutable cycles : int;
  mutable instret : int;
      (** plain [int] counters: 63 bits outlast any simulation, and
          unboxed read-modify-write keeps the per-instruction cost to
          one store (a boxed [int64] would allocate on every
          retire) *)
  mutable irq_stale : int;  (** steps since the interrupt lines were
                                refreshed (machine-internal) *)
  mutable reservation : int64 option;
      (** LR/SC reservation (physical address), cleared by stores and
          traps *)
  mutable just_trapped : bool;
      (** set by trap entry, cleared when the hart next steps: "this
          hart's last completed step ended in a trap and it has not run
          since". The schedule explorer reads it to flag trap-entry
          points as preemption-interesting; the machine uses it to
          model mid-emulation preemption windows for injected race
          bugs. *)
  mutable bpc : int64;
      (** block-engine scratch: entry pc of the decoded block being
          executed, read by pc-relative closures while [pc] itself
          stays unwritten across pure runs. Meaningless outside
          [Machine.exec_block]; never snapshotted or hashed. *)
}

val create : ?tlb_entries:int -> Csr_spec.config -> id:int -> t
(** [tlb_entries] sizes the software TLB (default 256; 0 disables
    it). *)

val get : t -> int -> int64
(** Read a register; x0 reads zero. *)

val set : t -> int -> int64 -> unit
(** Write a register; writes to x0 are discarded. *)

val reset : t -> pc:int64 -> unit
(** Reset to M-mode at the given PC (registers cleared, TLB
    flushed). *)

(** Privilege-transfer transforms (trap entry, mret/sret, interrupt
    selection) over an abstract bitvector domain. The interpreter runs
    the concrete instantiation {!Xfer_c}; the faithful-emulation
    prover runs the same functor at the symbolic backend. *)
module Xfer (B : Mir_util.Bits_sig.S) : sig
  val trap_entry_m : mstatus:B.t -> from_priv:Priv.t -> B.t
  (** mstatus after trap entry to M: MPIE<-MIE, MIE<-0, MPP<-priv. *)

  val trap_entry_s : mstatus:B.t -> from_priv:Priv.t -> B.t
  (** mstatus after a delegated trap: SPIE<-SIE, SIE<-0, SPP<-priv. *)

  val mret_mstatus : ?skip_mpie:bool -> B.t -> B.t
  (** mstatus after mret; [skip_mpie] reproduces Mret_skips_mpie. *)

  val mret_target_priv : B.t -> Priv.t
  (** The MPP field as a privilege (decides the MPP bits). *)

  val sret_mstatus : B.t -> B.t
  (** mstatus after sret: SIE<-SPIE, SPIE<-1, SPP<-U, MPRV<-0. *)

  val sret_target_priv : B.t -> Priv.t

  val csr_rmw : Instr.csr_op -> old:B.t -> src:B.t -> B.t
  (** The written value of csrrw/csrrs/csrrc before WARL merging. *)

  val select_interrupt : (Cause.intr * int) list -> B.t -> Cause.intr option
  (** Highest-priority pending interrupt in the mask, if any. *)

  val pending_interrupt :
    order:(Cause.intr * int) list ->
    priv:Priv.t ->
    mstatus:B.t ->
    mip:B.t ->
    mie:B.t ->
    mideleg:B.t ->
    Cause.intr option
  (** The architectural take-an-interrupt decision. *)
end

module Xfer_c : sig
  val trap_entry_m : mstatus:int64 -> from_priv:Priv.t -> int64
  val trap_entry_s : mstatus:int64 -> from_priv:Priv.t -> int64
  val mret_mstatus : ?skip_mpie:bool -> int64 -> int64
  val mret_target_priv : int64 -> Priv.t
  val sret_mstatus : int64 -> int64
  val sret_target_priv : int64 -> Priv.t
  val csr_rmw : Instr.csr_op -> old:int64 -> src:int64 -> int64
  val select_interrupt : (Cause.intr * int) list -> int64 -> Cause.intr option

  val pending_interrupt :
    order:(Cause.intr * int) list ->
    priv:Priv.t ->
    mstatus:int64 ->
    mip:int64 ->
    mie:int64 ->
    mideleg:int64 ->
    Cause.intr option
end
(** {!Xfer} at the concrete [int64] domain. *)
