module Bits = Mir_util.Bits
module Ms = Csr_spec.Mstatus

type config = {
  csr_config : Csr_spec.config;
  nharts : int;
  ram_base : int64;
  ram_size : int;
  cycles_per_tick : int;
  hw_misaligned : bool;
  trap_penalty : int;
  xret_penalty : int;
  mmio_penalty : int;
  tlb_entries : int;
      (* per-hart software-TLB slots (rounded up to a power of two);
         0 disables the TLB and the fetch-page cache, leaving the raw
         walker — the configuration the differential fuzzer and the
         ips benchmark use as oracle/baseline *)
  block_engine : bool;
      (* execute [run] through the decoded basic-block cache; [step]
         always remains the per-instruction interpreter (the oracle),
         and [run_scheduled] always steps the interpreter so schedule
         exploration preempts at exact step counts. Requires the
         fetch-page cache (tlb_entries > 0) to ever hit. *)
}

let default_config =
  {
    csr_config = Csr_spec.default_config;
    nharts = 1;
    ram_base = 0x80000000L;
    ram_size = 16 * 1024 * 1024;
    cycles_per_tick = 100;
    hw_misaligned = false;
    trap_penalty = 140;
    xret_penalty = 100;
    mmio_penalty = 60;
    tlb_entries = 256;
    block_engine = true;
  }

(* Injectable cross-hart race windows, driven by the schedule explorer
   (lib/explore). Each defect delays one cross-hart propagation step
   (a remote TLB shootdown, a physical MSIP kick, a sibling PMP
   reinstall) by [race_window] global machine steps, opening a short
   inconsistency window that only a preemptive schedule can observe:
   under the stock round-robin [run], the window opens and closes
   inside one hart's slice, before the next hart-switch point. *)
type race_bug = Delayed_vm_epoch | Dropped_msip | Pmp_handoff_window

type t = {
  config : config;
  harts : Hart.t array;
  bus : Bus.t;
  clint : Clint.t;
  plic : Plic.t;
  uart : Uart.t;
  mutable blockdev : Blockdev.t option;
  mutable nic : Nic.t option;
  icache : (Instr.t * int) option array;
  blocks : Block.cache;
  mutable block_engine : bool;
  mutable mmode_hook : (t -> Hart.t -> Cause.t -> unit) option;
  mutable on_trap :
    (t -> Hart.t -> Cause.t -> from_priv:Priv.t -> to_m:bool -> unit) option;
  mutable on_csr_write : (t -> Hart.t -> int -> int64 -> unit) option;
  mutable on_mmio :
    (t -> Hart.t -> write:bool -> addr:int64 -> size:int -> value:int64 ->
     unit)
    option;
  mutable on_chunk : (t -> unit) option;
  mutable poweroff : bool;
  mutable instr_count : int;
  mutable race_bug : race_bug option;
  mutable deferred : deferred list;
}

and deferred = { mutable ticks : int; action : t -> unit }

let syscon_base = 0x100000L

let create config =
  let ram = Memory.create ~base:config.ram_base ~size:config.ram_size in
  let bus = Bus.create ~ram in
  let clint = Clint.create ~nharts:config.nharts in
  let plic = Plic.create ~nharts:config.nharts ~nsources:8 in
  let uart = Uart.create () in
  Bus.add_device bus (Clint.device clint ~base:Clint.default_base);
  Bus.add_device bus (Plic.device plic ~base:Plic.default_base);
  Bus.add_device bus (Uart.device uart ~base:Uart.default_base);
  let m =
    {
      config;
      harts =
        Array.init config.nharts (fun id ->
            Hart.create ~tlb_entries:config.tlb_entries config.csr_config
              ~id);
      bus;
      clint;
      plic;
      uart;
      blockdev = None;
      nic = None;
      icache = Array.make (config.ram_size / 4) None;
      blocks = Block.create ~words:(config.ram_size / 4);
      block_engine = config.block_engine;
      mmode_hook = None;
      on_trap = None;
      on_csr_write = None;
      on_mmio = None;
      on_chunk = None;
      poweroff = false;
      instr_count = 0;
      race_bug = None;
      deferred = [];
    }
  in
  (* Test-finisher ("syscon"): a word write of 0x5555 powers off. *)
  Bus.add_device bus
    {
      Device.name = "syscon";
      base = syscon_base;
      size = 0x1000L;
      load = (fun _ _ -> 0L);
      store =
        (fun off _ v ->
          if off = 0L && Int64.logand v 0xFFFFL = 0x5555L then
            m.poweroff <- true);
    };
  m

let attach_blockdev t ~capacity_sectors ~latency_ticks =
  let dev =
    Blockdev.create ~ram:(Bus.ram t.bus) ~capacity_sectors ~latency_ticks
      ~irq:1
  in
  Bus.add_device t.bus (Blockdev.device dev ~base:Blockdev.default_base);
  t.blockdev <- Some dev;
  dev

let attach_nic t =
  let dev = Nic.create ~ram:(Bus.ram t.bus) ~irq:2 in
  Bus.add_device t.bus (Nic.device dev ~base:Nic.default_base);
  t.nic <- Some dev;
  dev

let phys_load t addr size = Bus.load t.bus addr size
let phys_store t addr size v = Bus.store t.bus addr size v

let icache_index t addr =
  let off = Int64.sub addr t.config.ram_base in
  if off >= 0L && off < Int64.of_int t.config.ram_size then
    Some (Int64.to_int off / 4)
  else None

let icache_invalidate t addr size =
  match icache_index t addr with
  | Some i ->
      t.icache.(i) <- None;
      Block.invalidate_word t.blocks i;
      let last = Int64.add addr (Int64.of_int (size - 1)) in
      (match icache_index t last with
      | Some j when j <> i ->
          t.icache.(j) <- None;
          Block.invalidate_word t.blocks j
      | _ -> ())
  | None -> ()

let flush_icache t =
  Array.fill t.icache 0 (Array.length t.icache) None;
  Block.flush t.blocks
let invalidate_icache t addr size = icache_invalidate t addr size

(* Deferred cross-hart actions for the injected race windows: the
   countdown ticks once per global machine step (any hart), so a
   deferral of [race_window] models a propagation delay of a few
   instructions of wall-clock. The queue is almost always empty; the
   single [deferred <> []] test in [step] is the only cost when no bug
   is armed. *)
let race_window = 6
let defer t ~ticks action = t.deferred <- t.deferred @ [ { ticks; action } ]

let tick_deferred t =
  List.iter (fun d -> d.ticks <- d.ticks - 1) t.deferred;
  let due, rest = List.partition (fun d -> d.ticks <= 0) t.deferred in
  t.deferred <- rest;
  List.iter (fun d -> d.action t) due

(* sfence.vma semantics over the software TLBs.  All harts are flushed
   on any hart's fence: over-invalidation is always architecturally
   safe, and it makes the counted-but-unfenced SBI remote-fence
   offload conservative too.  [from] names the fencing hart; it only
   matters under the Delayed_vm_epoch injected bug, where the fencing
   hart's own TLB stays coherent but the cross-hart shootdown lands
   [race_window] steps late. *)
let sfence_vma t ?from ?vaddr () =
  let flush h =
    match vaddr with
    | None -> Tlb.flush h.Hart.tlb
    | Some va -> Tlb.flush_page h.Hart.tlb va
  in
  match (t.race_bug, from) with
  | Some Delayed_vm_epoch, Some f ->
      Array.iter (fun h -> if h.Hart.id = f then flush h) t.harts;
      defer t ~ticks:race_window (fun t ->
          Array.iter (fun h -> if h.Hart.id <> f then flush h) t.harts)
  | _ -> Array.iter flush t.harts

let flush_tlbs t = Array.iter (fun h -> Tlb.flush h.Hart.tlb) t.harts

(* Aggregate TLB counters over the harts: (hits, misses, flushes). *)
let tlb_totals t =
  Array.fold_left
    (fun (h, m, f) hart ->
      let tlb = hart.Hart.tlb in
      (h + Tlb.hits tlb, m + Tlb.misses tlb, f + Tlb.flushes tlb))
    (0, 0, 0) t.harts

let load_program t addr bytes =
  Memory.store_bytes (Bus.ram t.bus) addr bytes;
  flush_icache t

let pmp_check t hart ~priv access ~addr ~size =
  ignore t;
  Pmp.check_ranges (Csr_file.pmp_ranges hart.Hart.csr) ~priv access ~addr
    ~size

let mstatus hart = Csr_file.read_raw hart.Hart.csr Csr_addr.mstatus

let translate t hart ~priv access vaddr =
  let satp = Csr_file.read_raw hart.Hart.csr Csr_addr.satp in
  let ms = mstatus hart in
  Vmem.translate
    ~read:(fun a -> phys_load t a 8)
    ~write:(fun a v -> ignore (phys_store t a 8 v))
    ~satp ~priv ~sum:(Bits.test ms Ms.sum) ~mxr:(Bits.test ms Ms.mxr) access
    vaddr

let charge hart n = hart.Hart.cycles <- hart.Hart.cycles + n

let resume hart ~pc ~priv =
  hart.Hart.pc <- pc;
  hart.Hart.priv <- priv

(* ------------------------------------------------------------------ *)
(* Interrupt lines and pending-interrupt selection                     *)
(* ------------------------------------------------------------------ *)

let update_irq_lines t hart =
  let csr = hart.Hart.csr in
  let h = hart.Hart.id in
  Csr_file.set_mip_bits csr Csr_spec.Irq.mtip (Clint.mtip t.clint h);
  Csr_file.set_mip_bits csr Csr_spec.Irq.msip (Clint.msip t.clint h);
  Csr_file.set_mip_bits csr Csr_spec.Irq.meip (Plic.meip t.plic h);
  Csr_file.set_mip_bits csr Csr_spec.Irq.seip (Plic.seip t.plic h);
  (* Sstc: stimecmp drives STIP when menvcfg.STCE is set. *)
  if t.config.csr_config.Csr_spec.has_sstc then begin
    let menvcfg = Csr_file.read_raw csr Csr_addr.menvcfg in
    if Bits.test menvcfg 63 then
      let stimecmp = Csr_file.read_raw csr Csr_addr.stimecmp in
      Csr_file.set_mip_bits csr Csr_spec.Irq.stip
        (Bits.ule stimecmp (Clint.mtime t.clint))
  end

(* Standard priority: MEI, MSI, MTI, SEI, SSI, STI. *)
let intr_priority =
  Cause.
    [
      (Machine_external, 11);
      (Machine_software, 3);
      (Machine_timer, 7);
      (Supervisor_external, 9);
      (Supervisor_software, 1);
      (Supervisor_timer, 5);
    ]

let pending_interrupt t hart =
  ignore t;
  let csr = hart.Hart.csr in
  let mip = Csr_file.read_raw csr Csr_addr.mip in
  let mie = Csr_file.read_raw csr Csr_addr.mie in
  (* fast path: the common every-step case allocates nothing *)
  if Int64.logand mip mie = 0L then None
  else
    Hart.Xfer_c.pending_interrupt ~order:intr_priority ~priv:hart.Hart.priv
      ~mstatus:(mstatus hart) ~mip ~mie
      ~mideleg:(Csr_file.read_raw csr Csr_addr.mideleg)

(* ------------------------------------------------------------------ *)
(* Trap entry                                                          *)
(* ------------------------------------------------------------------ *)

let tvec_target tvec cause =
  let base = Int64.logand tvec (Int64.lognot 3L) in
  match cause with
  | Cause.Interrupt i when Int64.logand tvec 3L = 1L ->
      Int64.add base (Int64.of_int (4 * Cause.intr_code i))
  | _ -> base

let take_trap t hart cause ~tval =
  charge hart t.config.trap_penalty;
  hart.Hart.just_trapped <- true;
  let csr = hart.Hart.csr in
  let from_priv = hart.Hart.priv in
  let delegated =
    from_priv <> Priv.M
    &&
    match cause with
    | Cause.Exception e ->
        Bits.test (Csr_file.read_raw csr Csr_addr.medeleg) (Cause.exc_code e)
    | Cause.Interrupt i ->
        Bits.test (Csr_file.read_raw csr Csr_addr.mideleg) (Cause.intr_code i)
  in
  let to_m = not delegated in
  if to_m then begin
    Csr_file.write_raw csr Csr_addr.mepc hart.Hart.pc;
    Csr_file.write_raw csr Csr_addr.mcause (Cause.to_xcause cause);
    Csr_file.write_raw csr Csr_addr.mtval tval;
    (match t.on_trap with
    | Some f -> f t hart cause ~from_priv ~to_m
    | None -> ());
    Csr_file.write_raw csr Csr_addr.mstatus
      (Hart.Xfer_c.trap_entry_m ~mstatus:(mstatus hart) ~from_priv);
    hart.Hart.priv <- Priv.M;
    (match t.mmode_hook with
    | Some hook -> hook t hart cause
    | None ->
        hart.Hart.pc <-
          tvec_target (Csr_file.read_raw csr Csr_addr.mtvec) cause);
    (* the handler (hook or firmware-to-be) may retire device state:
       refresh the lines before the next interrupt decision *)
    update_irq_lines t hart
  end
  else begin
    Csr_file.write_raw csr Csr_addr.sepc hart.Hart.pc;
    Csr_file.write_raw csr Csr_addr.scause (Cause.to_xcause cause);
    Csr_file.write_raw csr Csr_addr.stval tval;
    (match t.on_trap with
    | Some f -> f t hart cause ~from_priv ~to_m
    | None -> ());
    Csr_file.write_raw csr Csr_addr.mstatus
      (Hart.Xfer_c.trap_entry_s ~mstatus:(mstatus hart) ~from_priv);
    hart.Hart.priv <- Priv.S;
    hart.Hart.pc <- tvec_target (Csr_file.read_raw csr Csr_addr.stvec) cause
  end

(* ------------------------------------------------------------------ *)
(* Memory access from the interpreter                                  *)
(* ------------------------------------------------------------------ *)

let effective_priv hart =
  let ms = mstatus hart in
  if Bits.test ms Ms.mprv then Ms.get_mpp ms else hart.Hart.priv

let access_fault (access : Vmem.access) =
  match access with
  | Vmem.Fetch -> Cause.Instr_access_fault
  | Vmem.Load -> Cause.Load_access_fault
  | Vmem.Store -> Cause.Store_access_fault

let pmp_access (access : Vmem.access) =
  match access with
  | Vmem.Fetch -> Pmp.Exec
  | Vmem.Load -> Pmp.Read
  | Vmem.Store -> Pmp.Write

let page_mask = Int64.lognot 0xFFFL

(* Translate + PMP-check one access of [size] bytes at [vaddr];
   raises Cause.Trap on fault.

   Translated accesses go through the per-hart software TLB: a hit
   answers translation, leaf permission, and PMP in a few integer
   compares with zero allocation.  A miss runs the bus-backed walker
   (no per-call closures), PMP-checks the result, and installs the
   page together with page-wide PMP verdicts so subsequent hits can
   skip the range scan.  Accesses never straddle a page here: aligned
   accesses of size <= 8 cannot cross a 4 KiB boundary, and misaligned
   ones are resolved byte by byte. *)
let resolve t hart ~priv access vaddr size =
  let csr = hart.Hart.csr in
  if priv = Priv.M || Csr_file.read_raw csr Csr_addr.satp = 0L then begin
    (* bare addressing / M-mode: no walk, PMP only *)
    if not (pmp_check t hart ~priv (pmp_access access) ~addr:vaddr ~size)
    then raise (Cause.Trap (access_fault access, vaddr));
    vaddr
  end
  else begin
    let tlb = hart.Hart.tlb in
    Tlb.sync_epoch tlb (Csr_file.vm_epoch csr);
    let pbase = Tlb.lookup tlb ~priv access vaddr in
    if pbase >= 0 then
      Int64.logor (Int64.of_int pbase) (Int64.logand vaddr 0xFFFL)
    else begin
      let satp = Csr_file.read_raw csr Csr_addr.satp in
      let ms = mstatus hart in
      let sum = Bits.test ms Ms.sum and mxr = Bits.test ms Ms.mxr in
      match
        Vmem.On_bus.translate_leaf t.bus ~satp ~priv ~sum ~mxr access vaddr
      with
      | Error e -> raise (Cause.Trap (e, vaddr))
      | Ok leaf ->
          let phys = leaf.Vmem.phys in
          if
            not (pmp_check t hart ~priv (pmp_access access) ~addr:phys ~size)
          then raise (Cause.Trap (access_fault access, vaddr));
          let ranges = Csr_file.pmp_ranges csr in
          let pg = Int64.logand phys page_mask in
          let pmp_page k =
            Pmp.check_ranges ranges ~priv k ~addr:pg ~size:4096
          in
          Tlb.install tlb ~priv ~vaddr ~phys ~pte:leaf.Vmem.pte ~sum ~mxr
            ~pmp_r:(pmp_page Pmp.Read) ~pmp_w:(pmp_page Pmp.Write)
            ~pmp_x:(pmp_page Pmp.Exec);
          phys
    end
  end

let vload t hart vaddr size ~signed =
  let priv = effective_priv hart in
  if not (Bits.is_aligned vaddr ~size) then begin
    if not t.config.hw_misaligned then
      raise (Cause.Trap (Cause.Load_misaligned, vaddr));
    (* Slow byte-wise path for hardware-handled misaligned loads.
       MMIO bytes pay the same penalty and fire the same hook as the
       aligned path, so costs and trace recording agree. *)
    let v = ref 0L in
    for i = size - 1 downto 0 do
      let a = Int64.add vaddr (Int64.of_int i) in
      let phys = resolve t hart ~priv Vmem.Load a 1 in
      let is_mmio = not (Memory.in_range (Bus.ram t.bus) phys 1) in
      if is_mmio then charge hart t.config.mmio_penalty;
      match phys_load t phys 1 with
      | Some b ->
          (if is_mmio then
             match t.on_mmio with
             | Some f -> f t hart ~write:false ~addr:phys ~size:1 ~value:b
             | None -> ());
          v := Int64.logor (Int64.shift_left !v 8) b
      | None -> raise (Cause.Trap (Cause.Load_access_fault, vaddr))
    done;
    if signed then Bits.sext !v ~width:(8 * size) else !v
  end
  else begin
    let phys = resolve t hart ~priv Vmem.Load vaddr size in
    let is_mmio = not (Memory.in_range (Bus.ram t.bus) phys size) in
    if is_mmio then charge hart t.config.mmio_penalty;
    match phys_load t phys size with
    | Some v ->
        (if is_mmio then
           match t.on_mmio with
           | Some f -> f t hart ~write:false ~addr:phys ~size ~value:v
           | None -> ());
        if signed then Bits.sext v ~width:(8 * size) else v
    | None -> raise (Cause.Trap (Cause.Load_access_fault, vaddr))
  end

let vstore t hart vaddr size v =
  let priv = effective_priv hart in
  if not (Bits.is_aligned vaddr ~size) then begin
    if not t.config.hw_misaligned then
      raise (Cause.Trap (Cause.Store_misaligned, vaddr));
    for i = 0 to size - 1 do
      let a = Int64.add vaddr (Int64.of_int i) in
      let phys = resolve t hart ~priv Vmem.Store a 1 in
      let byte = Bits.extract v ~lo:(8 * i) ~hi:((8 * i) + 7) in
      let is_mmio = not (Memory.in_range (Bus.ram t.bus) phys 1) in
      if is_mmio then begin
        charge hart t.config.mmio_penalty;
        (* as on the aligned path: a device store may change interrupt
           lines, so force a refresh on every hart's next step *)
        Array.iter (fun h -> h.Hart.irq_stale <- 16) t.harts
      end;
      if not (phys_store t phys 1 byte) then
        raise (Cause.Trap (Cause.Store_access_fault, vaddr));
      (if is_mmio then
         match t.on_mmio with
         | Some f -> f t hart ~write:true ~addr:phys ~size:1 ~value:byte
         | None -> ());
      icache_invalidate t phys 1
    done
  end
  else begin
    let phys = resolve t hart ~priv Vmem.Store vaddr size in
    let is_mmio = not (Memory.in_range (Bus.ram t.bus) phys size) in
    if is_mmio then begin
      charge hart t.config.mmio_penalty;
      (* a device store may change interrupt lines (CLINT msip /
         mtimecmp): force a refresh on every hart's next step *)
      Array.iter (fun h -> h.Hart.irq_stale <- 16) t.harts
    end;
    if not (phys_store t phys size v) then
      raise (Cause.Trap (Cause.Store_access_fault, vaddr));
    (if is_mmio then
       match t.on_mmio with
       | Some f -> f t hart ~write:true ~addr:phys ~size ~value:v
       | None -> ());
    (* stores break reservations overlapping the written bytes *)
    Array.iter
      (fun h ->
        match h.Hart.reservation with
        | Some r
          when Bits.ult r (Int64.add phys (Int64.of_int size))
               && Bits.ule phys r ->
            h.Hart.reservation <- None
        | _ -> ())
      t.harts;
    icache_invalidate t phys size
  end

(* Fill one icache slot from RAM; [idx] is a word index inside RAM. *)
let fetch_fill t idx ~pc =
  let phys = Int64.add t.config.ram_base (Int64.of_int (idx lsl 2)) in
  match phys_load t phys 4 with
  | None -> raise (Cause.Trap (Cause.Instr_access_fault, pc))
  | Some word -> begin
      let bits = Int64.to_int word in
      match Decode.decode bits with
      | Some i ->
          t.icache.(idx) <- Some (i, bits);
          (i, bits)
      | None -> raise (Cause.Trap (Cause.Illegal_instr, word))
    end

let fetch t hart =
  let pc = hart.Hart.pc in
  if Int64.logand pc 3L <> 0L then
    raise (Cause.Trap (Cause.Instr_misaligned, pc));
  let tlb = hart.Hart.tlb in
  Tlb.sync_epoch tlb (Csr_file.vm_epoch hart.Hart.csr);
  (* fetch fast path: the current fetch page's icache base is cached,
     so straight-line fetches cost two compares and two array reads *)
  let base = Tlb.fetch_lookup tlb ~priv:hart.Hart.priv pc in
  let idx =
    if base >= 0 then base + ((Int64.to_int pc land 0xFFF) lsr 2)
    else begin
      let phys = resolve t hart ~priv:hart.Hart.priv Vmem.Fetch pc 4 in
      match icache_index t phys with
      | None ->
          (* Fetches must target RAM. *)
          raise (Cause.Trap (Cause.Instr_access_fault, pc))
      | Some idx ->
          (* cache the page when it lies wholly in RAM and PMP grants
             execute over all of it (so hits can skip the range scan) *)
          let pg = Int64.logand phys page_mask in
          let off = Int64.sub pg t.config.ram_base in
          if
            off >= 0L
            && Int64.add off 4096L <= Int64.of_int t.config.ram_size
            && Pmp.check_ranges
                 (Csr_file.pmp_ranges hart.Hart.csr)
                 ~priv:hart.Hart.priv Pmp.Exec ~addr:pg ~size:4096
          then
            Tlb.fetch_install tlb ~priv:hart.Hart.priv pc
              ~base:(Int64.to_int off lsr 2);
          idx
    end
  in
  match t.icache.(idx) with
  | Some entry -> entry
  | None -> fetch_fill t idx ~pc

(* ------------------------------------------------------------------ *)
(* CSR instruction semantics                                           *)
(* ------------------------------------------------------------------ *)

let illegal bits = raise (Cause.Trap (Cause.Illegal_instr, Int64.of_int bits))

let counter_enabled t hart csr_addr =
  (* cycle/time/instret gating by mcounteren (from S/U) and scounteren
     (from U). *)
  ignore t;
  let bit = csr_addr land 0x1F in
  let csr = hart.Hart.csr in
  let ok_m =
    hart.Hart.priv = Priv.M
    || Bits.test (Csr_file.read_raw csr Csr_addr.mcounteren) bit
  in
  let ok_s =
    hart.Hart.priv <> Priv.U
    || Bits.test (Csr_file.read_raw csr Csr_addr.scounteren) bit
  in
  ok_m && ok_s

let exec_csr t hart bits op rd src csr_addr =
  let csr = hart.Hart.csr in
  let priv = hart.Hart.priv in
  if Priv.compare priv (Csr_addr.min_priv csr_addr) < 0 then illegal bits;
  let write_needed =
    match (op, src) with
    | Instr.Csrrw, _ -> true
    | (Instr.Csrrs | Instr.Csrrc), Instr.Reg 0 -> false
    | (Instr.Csrrs | Instr.Csrrc), Instr.Imm 0 -> false
    | (Instr.Csrrs | Instr.Csrrc), _ -> true
  in
  if write_needed && Csr_addr.is_read_only csr_addr then illegal bits;
  (* TVM traps satp accesses from S-mode. *)
  if
    csr_addr = Csr_addr.satp && priv = Priv.S
    && Bits.test (mstatus hart) Ms.tvm
  then illegal bits;
  let src_val =
    match src with
    | Instr.Reg r -> Hart.get hart r
    | Instr.Imm z -> Int64.of_int z
  in
  let finish ?(storage = true) old =
    (if write_needed && storage then begin
       let value = Hart.Xfer_c.csr_rmw op ~old ~src:src_val in
       Csr_file.write csr csr_addr value;
       match t.on_csr_write with
       | Some f -> f t hart csr_addr (Csr_file.read_raw csr csr_addr)
       | None -> ()
     end);
    Hart.set hart rd old;
    hart.Hart.pc <- Int64.add hart.Hart.pc 4L
  in
  (* Dynamic counters are not backed by CSR storage. *)
  if csr_addr = Csr_addr.cycle then begin
    if not (counter_enabled t hart csr_addr) then illegal bits;
    finish (Int64.of_int hart.Hart.cycles)
  end
  else if csr_addr = Csr_addr.time then begin
    if not t.config.csr_config.Csr_spec.has_time_csr then illegal bits;
    if not (counter_enabled t hart csr_addr) then illegal bits;
    finish (Clint.mtime t.clint)
  end
  else if csr_addr = Csr_addr.instret then begin
    if not (counter_enabled t hart csr_addr) then illegal bits;
    finish (Int64.of_int hart.Hart.instret)
  end
  else if csr_addr = Csr_addr.mcycle then
    (* counter writes are dropped in this model *)
    finish ~storage:false (Int64.of_int hart.Hart.cycles)
  else if csr_addr = Csr_addr.minstret then
    finish ~storage:false (Int64.of_int hart.Hart.instret)
  else if not (Csr_file.exists csr csr_addr) then illegal bits
  else finish (Csr_file.read csr csr_addr)

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)
(* ------------------------------------------------------------------ *)

let jump t hart target =
  ignore t;
  if Int64.logand target 3L <> 0L then
    raise (Cause.Trap (Cause.Instr_misaligned, target));
  hart.Hart.pc <- target

let exec t hart instr bits =
  let next () = hart.Hart.pc <- Int64.add hart.Hart.pc 4L in
  let ms () = mstatus hart in
  match instr with
  | Instr.Lui (rd, imm) ->
      Hart.set hart rd imm;
      next ()
  | Instr.Auipc (rd, imm) ->
      Hart.set hart rd (Int64.add hart.Hart.pc imm);
      next ()
  | Instr.Jal (rd, off) ->
      let target = Int64.add hart.Hart.pc off in
      let link = Int64.add hart.Hart.pc 4L in
      jump t hart target;
      Hart.set hart rd link
  | Instr.Jalr (rd, rs1, off) ->
      let target =
        Int64.logand (Int64.add (Hart.get hart rs1) off) (Int64.lognot 1L)
      in
      let link = Int64.add hart.Hart.pc 4L in
      jump t hart target;
      Hart.set hart rd link
  | Instr.Branch (op, rs1, rs2, off) ->
      if Alu.branch_taken op (Hart.get hart rs1) (Hart.get hart rs2) then
        jump t hart (Int64.add hart.Hart.pc off)
      else next ()
  | Instr.Load { width; unsigned; rd; rs1; imm } ->
      let addr = Int64.add (Hart.get hart rs1) imm in
      let size = match width with Instr.B -> 1 | H -> 2 | W -> 4 | D -> 8 in
      let v = vload t hart addr size ~signed:(not unsigned) in
      Hart.set hart rd v;
      next ()
  | Instr.Store { width; rs2; rs1; imm } ->
      let addr = Int64.add (Hart.get hart rs1) imm in
      let size = match width with Instr.B -> 1 | H -> 2 | W -> 4 | D -> 8 in
      vstore t hart addr size (Hart.get hart rs2);
      next ()
  | Instr.Op_imm (op, rd, rs1, imm) ->
      Hart.set hart rd (Alu.op_imm op (Hart.get hart rs1) imm);
      next ()
  | Instr.Op_imm32 (op, rd, rs1, imm) ->
      Hart.set hart rd (Alu.op_imm32 op (Hart.get hart rs1) imm);
      next ()
  | Instr.Op (op, rd, rs1, rs2) ->
      Hart.set hart rd (Alu.op op (Hart.get hart rs1) (Hart.get hart rs2));
      next ()
  | Instr.Op32 (op, rd, rs1, rs2) ->
      Hart.set hart rd (Alu.op32 op (Hart.get hart rs1) (Hart.get hart rs2));
      next ()
  | Instr.Fence -> next ()
  | Instr.Fence_i ->
      (* synchronize the instruction stream: drop decoded words and
         blocks so later fetches re-read RAM (required after writes
         that bypass the store-side invalidation, e.g. device DMA) *)
      flush_icache t;
      next ()
  | Instr.Ecall ->
      let cause =
        match hart.Hart.priv with
        | Priv.U -> Cause.Ecall_from_u
        | Priv.S -> Cause.Ecall_from_s
        | Priv.M -> Cause.Ecall_from_m
      in
      raise (Cause.Trap (cause, 0L))
  | Instr.Ebreak -> raise (Cause.Trap (Cause.Breakpoint, hart.Hart.pc))
  | Instr.Csr { op; rd; src; csr } -> exec_csr t hart bits op rd src csr
  | Instr.Mret ->
      if hart.Hart.priv <> Priv.M then illegal bits;
      charge hart t.config.xret_penalty;
      let csr = hart.Hart.csr in
      let m = ms () in
      let new_priv = Hart.Xfer_c.mret_target_priv m in
      Csr_file.write_raw csr Csr_addr.mstatus (Hart.Xfer_c.mret_mstatus m);
      hart.Hart.priv <- new_priv;
      hart.Hart.pc <- Csr_file.read_raw csr Csr_addr.mepc
  | Instr.Sret ->
      if hart.Hart.priv = Priv.U then illegal bits;
      if hart.Hart.priv = Priv.S && Bits.test (ms ()) Ms.tsr then illegal bits;
      charge hart t.config.xret_penalty;
      let csr = hart.Hart.csr in
      let m = ms () in
      let new_priv = Hart.Xfer_c.sret_target_priv m in
      Csr_file.write_raw csr Csr_addr.mstatus (Hart.Xfer_c.sret_mstatus m);
      hart.Hart.priv <- new_priv;
      hart.Hart.pc <- Csr_file.read_raw csr Csr_addr.sepc
  | Instr.Wfi ->
      if hart.Hart.priv = Priv.U then illegal bits;
      if hart.Hart.priv = Priv.S && Bits.test (ms ()) Ms.tw then illegal bits;
      hart.Hart.wfi <- true;
      next ()
  | Instr.Sfence_vma (rs1, _) ->
      if hart.Hart.priv = Priv.U then illegal bits;
      if hart.Hart.priv = Priv.S && Bits.test (ms ()) Ms.tvm then illegal bits;
      (* rs1 = x0: global fence; otherwise fence the named vpage.  ASID
         (rs2) is ignored: the TLB is not ASID-tagged, so over-flushing
         is the conservative, correct reading. *)
      if rs1 = 0 then sfence_vma t ~from:hart.Hart.id ()
      else sfence_vma t ~from:hart.Hart.id ~vaddr:(Hart.get hart rs1) ();
      next ()
  | Instr.Amo { op; wide; rd; rs1; rs2; _ } -> begin
      let size = if wide then 8 else 4 in
      let addr = Hart.get hart rs1 in
      (* AMOs always require natural alignment *)
      if not (Bits.is_aligned addr ~size) then
        raise (Cause.Trap (Cause.Store_misaligned, addr));
      let priv = effective_priv hart in
      let sx v = if wide then v else Bits.sext32 v in
      match op with
      | Instr.Lr ->
          let phys = resolve t hart ~priv Vmem.Load addr size in
          (match phys_load t phys size with
          | Some v ->
              Hart.set hart rd (sx v);
              hart.Hart.reservation <- Some phys;
              next ()
          | None -> raise (Cause.Trap (Cause.Load_access_fault, addr)))
      | Instr.Sc ->
          let phys = resolve t hart ~priv Vmem.Store addr size in
          (match hart.Hart.reservation with
          | Some r when r = phys ->
              hart.Hart.reservation <- None;
              if not (phys_store t phys size (Hart.get hart rs2)) then
                raise (Cause.Trap (Cause.Store_access_fault, addr));
              icache_invalidate t phys size;
              Hart.set hart rd 0L;
              next ()
          | _ ->
              hart.Hart.reservation <- None;
              Hart.set hart rd 1L;
              next ())
      | Instr.Swap | Instr.Amoadd | Instr.Amoxor | Instr.Amoand
      | Instr.Amoor | Instr.Amomin | Instr.Amomax | Instr.Amominu
      | Instr.Amomaxu ->
          (* read-modify-write; the write side is checked (AMOs need
             both permissions, and W implies the store check here) *)
          let phys = resolve t hart ~priv Vmem.Store addr size in
          if not (pmp_check t hart ~priv Pmp.Read ~addr:phys ~size) then
            raise (Cause.Trap (Cause.Store_access_fault, addr));
          (match phys_load t phys size with
          | None -> raise (Cause.Trap (Cause.Store_access_fault, addr))
          | Some raw ->
              let old = sx raw in
              let src = if wide then Hart.get hart rs2
                        else Bits.sext32 (Hart.get hart rs2) in
              let result =
                match op with
                | Instr.Swap -> src
                | Instr.Amoadd -> Int64.add old src
                | Instr.Amoxor -> Int64.logxor old src
                | Instr.Amoand -> Int64.logand old src
                | Instr.Amoor -> Int64.logor old src
                | Instr.Amomin -> if Int64.compare old src <= 0 then old else src
                | Instr.Amomax -> if Int64.compare old src >= 0 then old else src
                | Instr.Amominu -> if Bits.ule old src then old else src
                | Instr.Amomaxu -> if Bits.ule src old then old else src
                | Instr.Lr | Instr.Sc -> assert false
              in
              if not (phys_store t phys size result) then
                raise (Cause.Trap (Cause.Store_access_fault, addr));
              icache_invalidate t phys size;
              (* an atomic write breaks other harts' reservations *)
              Array.iter
                (fun h ->
                  if h != hart && h.Hart.reservation = Some phys then
                    h.Hart.reservation <- None)
                t.harts;
              Hart.set hart rd old;
              next ())
    end

(* ------------------------------------------------------------------ *)
(* Stepping and the run loop                                           *)
(* ------------------------------------------------------------------ *)

let wfi_quantum = 16

(* Per-step preamble shared by the interpreter and the block engine:
   deferred race actions, interrupt-line refresh, interrupt delivery,
   wfi wake/idle. Returns true when the step must now fetch and
   execute one instruction; false when the step was consumed by trap
   entry, a wfi wake, or an idle wfi quantum. Keeping a single copy
   of this sequence is what makes the two engines bit-exact: every
   architectural step runs exactly one [pre_step], whichever engine
   drives it. *)
let pre_step t hart =
  if t.deferred != [] then tick_deferred t;
  hart.Hart.just_trapped <- false;
  (* interrupt lines change only with device state (time advances per
     chunk; msip/PLIC on MMIO stores): refreshing every 16th step
     keeps delivery latency tiny without paying the cost per
     instruction *)
  hart.Hart.irq_stale <- hart.Hart.irq_stale + 1;
  if hart.Hart.irq_stale >= 16 || hart.Hart.wfi then begin
    hart.Hart.irq_stale <- 0;
    update_irq_lines t hart
  end;
  match pending_interrupt t hart with
  | Some i ->
      hart.Hart.wfi <- false;
      take_trap t hart (Cause.Interrupt i) ~tval:0L;
      false
  | None ->
      if hart.Hart.wfi then begin
        (* Wake on any pending-and-enabled interrupt; otherwise idle. *)
        let csr = hart.Hart.csr in
        let pending =
          Int64.logand
            (Csr_file.read_raw csr Csr_addr.mip)
            (Csr_file.read_raw csr Csr_addr.mie)
        in
        if pending <> 0L then hart.Hart.wfi <- false
        else charge hart wfi_quantum;
        false
      end
      else true

(* Fetch and execute exactly one instruction ([pre_step] returned
   true). *)
let fetch_exec_one t hart =
  match fetch t hart with
  | exception Cause.Trap (e, tval) ->
      take_trap t hart (Cause.Exception e) ~tval
  | instr, bits -> begin
      hart.Hart.cycles <- hart.Hart.cycles + 1;
      hart.Hart.instret <- hart.Hart.instret + 1;
      t.instr_count <- t.instr_count + 1;
      try exec t hart instr bits
      with Cause.Trap (e, tval) -> take_trap t hart (Cause.Exception e) ~tval
    end

let step t hart =
  if hart.Hart.halted then ()
  else if pre_step t hart then fetch_exec_one t hart

(* ------------------------------------------------------------------ *)
(* Decoded basic-block engine                                          *)
(* ------------------------------------------------------------------ *)

(* Compile one instruction to a closure over the owning machine. The
   hot unprivileged forms are specialized — operands, immediates,
   access sizes and the ALU operation itself are split out at compile
   time, so the closure body is straight-line unboxed int64 arithmetic
   (ocamlopt's local unboxing applies within one closure; a call into
   [Alu] would box every operand and the result). Everything else
   delegates to [exec], keeping a single copy of the tricky
   semantics. A closure must advance the hart *exactly* as [exec]
   would, including the order of side effects around a potential trap
   (e.g. a misaligned jump faults before the link register is
   written).

   Closure ABI: [op h], with [off] — the instruction's byte offset
   from its block's entry — baked in at compile time. A closure that
   needs its own pc (auipc, jal/jalr links, branch targets) computes
   it as [h.bpc + off], where [h.bpc] is the block entry pc the
   executor maintains; [h.pc] itself may be stale at that point,
   because pure closures never write it and the executor only
   materializes [pc <- bpc + 4 i] when something can observe it (a
   memory/delegate op, a slow pre-step, a trap, the block boundary).
   Control closures write the successor pc absolutely; memory and
   delegate closures run with [pc] accurate and advance it
   themselves, exactly as the interpreter would. Closures take the
   hart as their only argument so the executor's calls are direct
   one-argument indirect calls (a two-argument unknown application
   would detour through caml_apply2 on every instruction). *)
let op_of_instr t instr bits ~off =
  (* relative-to-block-entry constants, folded at compile time *)
  let off64 = Int64.of_int off in
  let next_rel = Int64.of_int (off + 4) in
  match instr with
  | Instr.Lui (rd, imm) -> fun h -> Hart.set h rd imm
  | Instr.Auipc (rd, imm) ->
      let rel = Int64.add off64 imm in
      fun h -> Hart.set h rd (Int64.add h.Hart.bpc rel)
  | Instr.Jal (rd, joff) ->
      let tgt_rel = Int64.add off64 joff in
      fun h ->
        let bpc = h.Hart.bpc in
        let target = Int64.add bpc tgt_rel in
        let link = Int64.add bpc next_rel in
        jump t h target;
        Hart.set h rd link
  | Instr.Jalr (rd, rs1, joff) ->
      fun h ->
        let target =
          Int64.logand (Int64.add (Hart.get h rs1) joff) (Int64.lognot 1L)
        in
        let link = Int64.add h.Hart.bpc next_rel in
        jump t h target;
        Hart.set h rd link
  | Instr.Branch (op, rs1, rs2, boff) -> (
      let tgt_rel = Int64.add off64 boff in
      match op with
      | Instr.Beq ->
          fun h ->
            if Hart.get h rs1 = Hart.get h rs2 then
              jump t h (Int64.add h.Hart.bpc tgt_rel)
            else h.Hart.pc <- Int64.add h.Hart.bpc next_rel
      | Instr.Bne ->
          fun h ->
            if Hart.get h rs1 <> Hart.get h rs2 then
              jump t h (Int64.add h.Hart.bpc tgt_rel)
            else h.Hart.pc <- Int64.add h.Hart.bpc next_rel
      | Instr.Blt ->
          fun h ->
            if Hart.get h rs1 < Hart.get h rs2 then
              jump t h (Int64.add h.Hart.bpc tgt_rel)
            else h.Hart.pc <- Int64.add h.Hart.bpc next_rel
      | Instr.Bge ->
          fun h ->
            if Hart.get h rs1 >= Hart.get h rs2 then
              jump t h (Int64.add h.Hart.bpc tgt_rel)
            else h.Hart.pc <- Int64.add h.Hart.bpc next_rel
      | Instr.Bltu ->
          fun h ->
            if Bits.ult (Hart.get h rs1) (Hart.get h rs2) then
              jump t h (Int64.add h.Hart.bpc tgt_rel)
            else h.Hart.pc <- Int64.add h.Hart.bpc next_rel
      | Instr.Bgeu ->
          fun h ->
            if not (Bits.ult (Hart.get h rs1) (Hart.get h rs2)) then
              jump t h (Int64.add h.Hart.bpc tgt_rel)
            else h.Hart.pc <- Int64.add h.Hart.bpc next_rel)
  | Instr.Load { width; unsigned; rd; rs1; imm } ->
      let size = match width with Instr.B -> 1 | H -> 2 | W -> 4 | D -> 8 in
      let signed = not unsigned in
      fun h ->
        let v = vload t h (Int64.add (Hart.get h rs1) imm) size ~signed in
        Hart.set h rd v;
        h.Hart.pc <- Int64.add h.Hart.pc 4L
  | Instr.Store { width; rs2; rs1; imm } ->
      let size = match width with Instr.B -> 1 | H -> 2 | W -> 4 | D -> 8 in
      fun h ->
        vstore t h (Int64.add (Hart.get h rs1) imm) size (Hart.get h rs2);
        h.Hart.pc <- Int64.add h.Hart.pc 4L
  | Instr.Op_imm (op, rd, rs1, imm) -> (
      match op with
      | Instr.Addi -> fun h -> Hart.set h rd (Int64.add (Hart.get h rs1) imm)
      | Instr.Xori ->
          fun h -> Hart.set h rd (Int64.logxor (Hart.get h rs1) imm)
      | Instr.Ori -> fun h -> Hart.set h rd (Int64.logor (Hart.get h rs1) imm)
      | Instr.Andi ->
          fun h -> Hart.set h rd (Int64.logand (Hart.get h rs1) imm)
      | Instr.Slli ->
          let sh = Int64.to_int (Int64.logand imm 0x3FL) in
          fun h -> Hart.set h rd (Int64.shift_left (Hart.get h rs1) sh)
      | Instr.Srli ->
          let sh = Int64.to_int (Int64.logand imm 0x3FL) in
          fun h ->
            Hart.set h rd (Int64.shift_right_logical (Hart.get h rs1) sh)
      | Instr.Srai ->
          let sh = Int64.to_int (Int64.logand imm 0x3FL) in
          fun h -> Hart.set h rd (Int64.shift_right (Hart.get h rs1) sh)
      | Instr.Slti | Instr.Sltiu ->
          fun h -> Hart.set h rd (Alu.op_imm op (Hart.get h rs1) imm))
  | Instr.Op_imm32 (op, rd, rs1, imm) -> (
      match op with
      | Instr.Addiw ->
          fun h ->
            Hart.set h rd (Bits.sext32 (Int64.add (Hart.get h rs1) imm))
      | Instr.Slliw | Instr.Srliw | Instr.Sraiw ->
          fun h -> Hart.set h rd (Alu.op_imm32 op (Hart.get h rs1) imm))
  | Instr.Op (op, rd, rs1, rs2) -> (
      match op with
      | Instr.Add ->
          fun h -> Hart.set h rd (Int64.add (Hart.get h rs1) (Hart.get h rs2))
      | Instr.Sub ->
          fun h -> Hart.set h rd (Int64.sub (Hart.get h rs1) (Hart.get h rs2))
      | Instr.Xor ->
          fun h ->
            Hart.set h rd (Int64.logxor (Hart.get h rs1) (Hart.get h rs2))
      | Instr.Or ->
          fun h ->
            Hart.set h rd (Int64.logor (Hart.get h rs1) (Hart.get h rs2))
      | Instr.And ->
          fun h ->
            Hart.set h rd (Int64.logand (Hart.get h rs1) (Hart.get h rs2))
      | Instr.Sltu ->
          fun h ->
            Hart.set h rd
              (if Bits.ult (Hart.get h rs1) (Hart.get h rs2) then 1L else 0L)
      | Instr.Slt | Instr.Sll | Instr.Srl | Instr.Sra | Instr.Mul | Instr.Mulh
      | Instr.Mulhsu | Instr.Mulhu | Instr.Div | Instr.Divu | Instr.Rem
      | Instr.Remu ->
          fun h ->
            Hart.set h rd (Alu.op op (Hart.get h rs1) (Hart.get h rs2)))
  | Instr.Op32 (op, rd, rs1, rs2) -> (
      match op with
      | Instr.Addw ->
          fun h ->
            Hart.set h rd
              (Bits.sext32 (Int64.add (Hart.get h rs1) (Hart.get h rs2)))
      | Instr.Subw ->
          fun h ->
            Hart.set h rd
              (Bits.sext32 (Int64.sub (Hart.get h rs1) (Hart.get h rs2)))
      | Instr.Sllw | Instr.Srlw | Instr.Sraw | Instr.Mulw | Instr.Divw
      | Instr.Divuw | Instr.Remw | Instr.Remuw ->
          fun h ->
            Hart.set h rd (Alu.op32 op (Hart.get h rs1) (Hart.get h rs2)))
  | Instr.Fence -> fun _ -> ()
  | Instr.Fence_i | Instr.Ecall | Instr.Ebreak | Instr.Csr _ | Instr.Mret
  | Instr.Sret | Instr.Wfi | Instr.Sfence_vma _ | Instr.Amo _ ->
      fun h -> exec t h instr bits

let max_block_len = 64

(* Executor class (see block.ml): 0 pure, 1 control, 2 memory,
   3 delegate. Class 0 must coincide exactly with [Instr.is_pure],
   which also drives [pure_run]. *)
let class_of_instr instr =
  if Instr.is_pure instr then 0
  else
    match instr with
    | Instr.Jal _ | Instr.Jalr _ | Instr.Branch _ -> 1
    | Instr.Load _ | Instr.Store _ | Instr.Amo _ -> 2
    | _ -> 3

(* Compile a block starting at icache word [idx0], reading only
   already-warm icache entries: compilation must never touch RAM or
   the bus, because a cold fill here would change icache fill timing
   relative to the interpreter (observable through DMA, which
   bypasses store-side invalidation until the next fence.i). Returns
   None when the first word is cold — the dispatcher then interprets
   one step, which warms it. Blocks never cross a 4 KiB page, so the
   page-granular store invalidation is a complete kill and the
   dispatch-time fetch-page check covers every instruction. *)
let compile_block t idx0 =
  match t.icache.(idx0) with
  | None -> None
  | Some _ ->
      let page_end = ((idx0 lsr 10) + 1) lsl 10 in
      let limit = min page_end (idx0 + max_block_len) in
      (* length of the warm prefix, cut after the first terminator *)
      let n = ref 0 in
      let scanning = ref true in
      while !scanning && idx0 + !n < limit do
        match t.icache.(idx0 + !n) with
        | None -> scanning := false
        | Some (i, _) ->
            incr n;
            if Instr.is_block_terminator i then scanning := false
      done;
      let n = !n in
      let ops =
        Array.init n (fun k ->
            match t.icache.(idx0 + k) with
            | Some (i, bits) -> op_of_instr t i bits ~off:(k lsl 2)
            | None -> assert false)
      in
      let pure_run = Array.make n 0 in
      let cls = Bytes.make n '\000' in
      let run = ref 0 in
      for k = n - 1 downto 0 do
        (match t.icache.(idx0 + k) with
        | Some (i, _) ->
            if Instr.is_pure i then incr run else run := 0;
            Bytes.set cls k (Char.chr (class_of_instr i))
        | None -> assert false);
        pure_run.(k) <- !run
      done;
      let term_inert = Char.code (Bytes.get cls (n - 1)) <= 2 in
      let whole =
        n <= 16
        && pure_run.(0) = n - 1
        && Char.code (Bytes.get cls (n - 1)) = 1
      in
      Some { Block.ops; pure_run; cls; term_inert; whole }

let get_or_compile t idx =
  match Block.lookup t.blocks idx with
  | Some _ as b -> b
  | None -> (
      match compile_block t idx with
      | Some b ->
          Block.insert t.blocks idx b;
          Some b
      | None -> None)

(* Execute [blk0] (cached at slot [start_idx0]); the caller has
   already run [pre_step] for the first instruction and it returned
   true. Returns the number of machine steps consumed, in
   [1, budget].

   Per-instruction equivalence with the interpreter: each retired
   instruction gets exactly one [pre_step] (the elided per-fetch work
   — alignment check, epoch sync, fetch-page lookup, icache read —
   cannot change outcome mid-block: pcs stay sequential and aligned,
   nothing inside a block bumps the vm-epoch before its terminator,
   and any store that rewrites this page kills the block, which the
   identity check below catches before the next instruction).

   Pure runs additionally batch the bookkeeping itself: for
   register-only, non-trapping, hook-free instructions the only
   observables of the per-step preamble are the irq-stale counter
   (bounded so no refresh point is skipped), the deferred-action
   queue (required empty) and interrupt delivery (provably absent
   while mip land mie = 0, since nothing in a pure run can change
   either side). Batched closures leave [pc] parked at the batch
   start (receiving their own position as a byte delta); the single
   [pc <- pc + 4b] store afterwards is the only boxed-int64 write of
   the whole batch.

   When a block ends and nothing stopped the hart, execution chains
   straight into the block at the new pc — same block for a tight
   loop, successor block across a direct branch — re-establishing
   virtual validity exactly as the dispatcher would. For a block
   whose final op is translation-inert (class <= 2), a chain target
   inside the same virtual page provably still maps to the same
   physical page as at dispatch, so the epoch sync and fetch-page
   lookup are skipped; a self-chain back to the block's own entry pc
   additionally skips the cache lookup (the block cannot have been
   invalidated: stores were identity-checked as they executed, and
   nothing else since dispatch writes memory). A chain target that is
   cold or unmapped falls back to one interpreted step and then tries
   again, so the loop only returns to [step_blocks] on budget
   exhaustion, trap, wfi, halt or power-off.

   Counter discipline: cycles/instret/instr_count updates for pure
   and control ops are accumulated in a local [pend] and flushed
   before anything that could observe them — a memory or delegate op
   (MMIO hooks, rdcycle), trap entry, a slow [pre_step], the
   interpreter fallback, and return. Pure adders ([charge]) commute
   with the flush, so only readers force one. *)
let exec_block t hart blk0 start_idx0 ~page_base:page_base0 ~budget =
  let blk = ref blk0 in
  let start_idx = ref start_idx0 in
  let ops = ref blk0.Block.ops in
  let pure = ref blk0.Block.pure_run in
  let cls = ref blk0.Block.cls in
  let n = ref (Array.length blk0.Block.ops) in
  (* virtual entry pc of the current block and the icache word index
     of its page, valid while [have_page] (killed by the interpreter
     fallback, whose instruction may change anything) *)
  let entry_pc = ref hart.Hart.pc in
  hart.Hart.bpc <- hart.Hart.pc;
  let page_base = ref page_base0 in
  let have_page = ref true in
  let steps = ref 0 in
  let retired = ref 0 in
  (* block-engine-retired instrs, for stats *)
  let disp = ref 0 in
  (* chained dispatches, flushed to stats on return *)
  let pend = ref 0 in
  let i = ref 0 in
  let continue_ = ref true in
  (* [pc_ok] tracks whether [hart.pc] is authoritative. While false,
     the true pc is [bpc + 4 i]: staleness only arises from pure ops
     skipping their pc write, and those leave pc parked where the
     last writer put it. [materialize] restores authority before
     anything that can observe pc. *)
  let pc_ok = ref true in
  let materialize () =
    if not !pc_ok then begin
      hart.Hart.pc <- Int64.add hart.Hart.bpc (Int64.of_int (!i lsl 2));
      pc_ok := true
    end
  in
  let flush () =
    if !pend > 0 then begin
      hart.Hart.cycles <- hart.Hart.cycles + !pend;
      hart.Hart.instret <- hart.Hart.instret + !pend;
      t.instr_count <- t.instr_count + !pend;
      pend := 0
    end
  in
  (* cached "mip land mie = 0": pure and control ops cannot change
     either side, so it is recomputed only after memory/delegate ops,
     trap entry, a slow pre_step or the interpreter fallback *)
  let no_irq = ref false in
  let sync_no_irq () =
    let csr = hart.Hart.csr in
    no_irq :=
      Int64.logand
        (Csr_file.read_raw csr Csr_addr.mip)
        (Csr_file.read_raw csr Csr_addr.mie)
      = 0L
  in
  sync_no_irq ();
  (* [pre_step] for the next instruction, with the common case — not
     stalled in wfi (possible right after a Wfi terminator), no
     deferred work, no line refresh due, nothing pending in mip∧mie
     (so no interrupt can be delivered) — inlined to four compares
     and one store. [just_trapped] is already false on every path
     that reaches here. *)
  let pre_next () =
    if
      (not hart.Hart.wfi)
      && t.deferred == []
      && hart.Hart.irq_stale < 15
      && !no_irq
    then begin
      hart.Hart.irq_stale <- hart.Hart.irq_stale + 1;
      true
    end
    else begin
      materialize ();
      flush ();
      let r = pre_step t hart in
      sync_no_irq ();
      r
    end
  in
  (* Resident loop for a [Block.whole] self-chain — the shape of every
     tight guest loop (one pure run capped by a control terminator,
     branching back to its own entry). Entered from the tier-1 chain
     site when the batch preconditions (mip land mie = 0, no deferred
     work) hold; keeps all hot state (steps, pending counters, the
     irq-stale window, the chain count) in parameters so iterating
     costs no heap traffic beyond the ops' own effects. Bit-exact with
     the generic batch-with-control-tail path: the window check,
     counter and stale updates, trap parking and the inter-step
     [pre_next] are the same decisions in the same order, merely with
     the block-shape reads constant-folded away. Every uncommon event
     writes the parameters back to the surrounding state and returns
     to the generic loop. *)
  let spin () =
    let sops = (!blk).Block.ops in
    let sn = !n in
    let sentry = !entry_pc in
    let term_off = Int64.of_int ((sn - 1) lsl 2) in
    (* [j] = index of the next op (0 at a fresh self-chain, mid-block
       while resuming after a straddled refresh); [ret]/[dsp] =
       instructions retired / dispatches begun inside the loop, folded
       into the surrounding counters on exit. Invariants at every
       [go]: pc = sentry + 4 j and authoritative, pre_step consumed
       for op [j], not wfi, deferred empty, mip land mie = 0,
       just_trapped clear. *)
    let rec go j steps0 pend0 stale ret dsp =
      let count = sn - j in
      if count > budget - steps0 then begin
        (* budget slice ends mid-run: hand the generic loop the
           mid-block state, it splits across the budget exactly as it
           would have without us *)
        hart.Hart.irq_stale <- stale;
        steps := steps0;
        pend := pend0;
        retired := !retired + ret;
        disp := !disp + dsp;
        i := j
      end
      else if count > 16 - stale then begin
        (* the irq-stale window closes mid-run: batch the pure prefix
           up to the refresh point (ops [j..j+w-1] are pure: the only
           non-pure op is the terminator, beyond the window), take the
           slow pre_step, then resume at op [j+w]. Identical decisions
           to the generic loop's capped batch + slow pre_next. *)
        let w = 16 - stale in
        for k = j to j + w - 1 do
          (Array.unsafe_get sops k) hart
        done;
        hart.Hart.pc <- Int64.add sentry (Int64.of_int ((j + w) lsl 2));
        hart.Hart.irq_stale <- 15 (* = stale + w - 1 *);
        pend := pend0 + w;
        flush ();
        let steps_a = steps0 + w in
        let ret_a = ret + w in
        let r = pre_step t hart in
        sync_no_irq ();
        if not r then begin
          (* interrupt delivered mid-block (trap entry consumed the
             step), or the hart stalled: stop, generic exit path *)
          steps := steps_a + 1;
          retired := !retired + ret_a;
          disp := !disp + dsp;
          i := j + w;
          continue_ := false
        end
        else if (not !no_irq) || t.deferred != [] then begin
          (* batch preconditions lapsed: generic loop takes over at
             op [j+w] with pc materialized *)
          steps := steps_a;
          retired := !retired + ret_a;
          disp := !disp + dsp;
          i := j + w
        end
        else go (j + w) steps_a 0 hart.Hart.irq_stale ret_a dsp
      end
      else begin
        (* the whole remainder fits the window: one batch with the
           control terminator swallowed *)
        let stale1 = stale + (count - 1) in
        let pend1 = pend0 + count in
        let trapped =
          try
            for k = j to sn - 1 do
              (Array.unsafe_get sops k) hart
            done;
            false
          with Cause.Trap (e, tval) ->
            (* only the terminator can raise, before writing pc *)
            hart.Hart.pc <- Int64.add sentry term_off;
            hart.Hart.irq_stale <- stale1;
            pend := pend1;
            flush ();
            take_trap t hart (Cause.Exception e) ~tval;
            sync_no_irq ();
            true
        in
        let steps1 = steps0 + count in
        let ret1 = ret + count in
        if trapped || steps1 >= budget then begin
          if not trapped then begin
            hart.Hart.irq_stale <- stale1;
            pend := pend1
          end;
          steps := steps1;
          retired := !retired + ret1;
          disp := !disp + dsp;
          i := sn;
          continue_ := false
        end
        else if stale1 < 15 then begin
          (* inline fast pre_next: not-wfi, deferred empty and
             mip land mie = 0 are spin invariants *)
          if hart.Hart.pc = sentry then
            go 0 steps1 pend1 (stale1 + 1) ret1 (dsp + 1)
          else begin
            (* fell through: back to the generic chain logic *)
            hart.Hart.irq_stale <- stale1 + 1;
            steps := steps1;
            pend := pend1;
            retired := !retired + ret1;
            disp := !disp + dsp;
            i := sn
          end
        end
        else begin
          (* line-refresh due between runs: the slow pre_next, pc
             already authoritative (the terminator wrote it) *)
          hart.Hart.irq_stale <- stale1;
          pend := pend1;
          flush ();
          let r = pre_step t hart in
          sync_no_irq ();
          if not r then begin
            steps := steps1 + 1;
            retired := !retired + ret1;
            disp := !disp + dsp;
            i := sn;
            continue_ := false
          end
          else if hart.Hart.pc = sentry && !no_irq && t.deferred == [] then
            go 0 steps1 0 hart.Hart.irq_stale ret1 (dsp + 1)
          else if hart.Hart.pc = sentry then begin
            (* chained home but the batch preconditions lapsed: hand
               the realized self-chain to the generic loop *)
            steps := steps1;
            retired := !retired + ret1;
            disp := !disp + (dsp + 1);
            i := 0
          end
          else begin
            steps := steps1;
            retired := !retired + ret1;
            disp := !disp + dsp;
            i := sn
          end
        end
      end
    in
    go 0 !steps !pend hart.Hart.irq_stale 0 1
  in
  while !continue_ do
    if !i < !n then begin
      let run = Array.unsafe_get !pure !i in
      let w =
        if (not !no_irq) || t.deferred != [] then 1
        else begin
          (* explicit int compares: Stdlib.min is polymorphic and
             would drag caml_lessequal into the per-batch path *)
          let a = 16 - hart.Hart.irq_stale in
          let c = budget - !steps in
          if a < c then a else c
        end
      in
      let bp = if run < w then run else w in
      (* Swallow the block's control terminator into the batch when
         the whole pure run fit and the window allows one more step:
         it cannot store, stall or observe counters, and it writes
         the successor pc itself (from [pc + delta]), so the batch
         then needs no pc store at all. *)
      let tail =
        bp = run
        && bp + 1 <= w
        && !i + run < !n
        && Char.code (Bytes.unsafe_get !cls (!i + run)) = 1
      in
      let b = if tail then bp + 1 else bp in
      if b >= 2 then begin
        let ops = !ops in
        let base = !i in
        (* the first instruction's pre_step already bumped the
           counter; the rest of the batch's bumps commute with the
           ops (none reads irq state) and with the counter flush *)
        hart.Hart.irq_stale <- hart.Hart.irq_stale + (b - 1);
        pend := !pend + b;
        if tail then (
          try
            for k = 0 to bp - 1 do
              (Array.unsafe_get ops (base + k)) hart
            done;
            (Array.unsafe_get ops (base + bp)) hart;
            (* the terminator wrote the successor pc *)
            pc_ok := true
          with Cause.Trap (e, tval) ->
            (* only the terminator can raise (misaligned target),
               before writing pc — park pc on it so mepc is right *)
            hart.Hart.pc <-
              Int64.add hart.Hart.bpc (Int64.of_int ((base + bp) lsl 2));
            pc_ok := true;
            flush ();
            take_trap t hart (Cause.Exception e) ~tval;
            sync_no_irq ())
        else begin
          for k = 0 to b - 1 do
            (Array.unsafe_get ops (base + k)) hart
          done;
          pc_ok := false
        end;
        steps := !steps + b;
        retired := !retired + b;
        i := !i + b;
        (* a pure batch cannot trap, halt, power off or invalidate
           blocks, and its control tail can only trap: the trap, the
           budget and the next pre_step are the only stop checks *)
        if hart.Hart.just_trapped || !steps >= budget then continue_ := false
        else if not (pre_next ()) then begin
          incr steps;
          continue_ := false
        end
      end
      else begin
        let c = Char.code (Bytes.unsafe_get !cls !i) in
        pend := !pend + 1;
        if c = 0 then begin
          (* pure single step: cannot trap; same reasoning as batch *)
          (Array.unsafe_get !ops !i) hart;
          pc_ok := false;
          incr steps;
          incr retired;
          incr i;
          if !steps >= budget then continue_ := false
          else if not (pre_next ()) then begin
            incr steps;
            continue_ := false
          end
        end
        else if c = 1 then begin
          (* jal/jalr/branch: no store, no halt/poweroff, no
             translation change — only a misaligned target traps *)
          (try
             (Array.unsafe_get !ops !i) hart;
             pc_ok := true
           with Cause.Trap (e, tval) ->
             hart.Hart.pc <- Int64.add hart.Hart.bpc (Int64.of_int (!i lsl 2));
             pc_ok := true;
             flush ();
             take_trap t hart (Cause.Exception e) ~tval;
             sync_no_irq ());
          incr steps;
          incr retired;
          incr i;
          if hart.Hart.just_trapped || !steps >= budget then continue_ := false
          else if not (pre_next ()) then begin
            incr steps;
            continue_ := false
          end
        end
        else begin
          (* memory or delegate: full interpreter ceremony and the
             full set of stop checks (a store may invalidate this very
             block; a delegate may do anything) *)
          materialize ();
          flush ();
          (try (Array.unsafe_get !ops !i) hart
           with Cause.Trap (e, tval) ->
             take_trap t hart (Cause.Exception e) ~tval);
          sync_no_irq ();
          incr steps;
          incr retired;
          incr i;
          if
            hart.Hart.just_trapped || t.poweroff || hart.Hart.halted
            || !steps >= budget
            || (match Block.lookup t.blocks !start_idx with
               | Some cur -> cur != !blk
               | None -> true)
          then continue_ := false
          else if not (pre_next ()) then begin
            (* interrupt delivered between two block instructions: the
               step is consumed by trap entry, exactly as the
               interpreter's *)
            incr steps;
            continue_ := false
          end
        end
      end
    end
    else begin
      (* Block boundary, pre_step already consumed and true: chain to
         the block at the (post-terminator) pc, or interpret one step
         to warm it and retry. A pure fallthrough tail (page-cut
         block) leaves pc stale, so re-establish it first. *)
      materialize ();
      let pc = hart.Hart.pc in
      let chained = ref false in
      if !have_page && (!blk).Block.term_inert then begin
        if pc = !entry_pc then begin
          (* tight loop back to this block's own entry *)
          if (!blk).Block.whole && !no_irq && t.deferred == [] then spin ()
          else begin
            incr disp;
            i := 0
          end;
          chained := true
        end
        else if
          Int64.logand (Int64.logxor pc !entry_pc) (Int64.lognot 0xFFFL) = 0L
        then begin
          (* same virtual page: the dispatch-time base still holds
             (pc is 4-aligned here: a misaligned control target would
             have trapped, and fallthrough pcs stay aligned) *)
          let idx = !page_base + ((Int64.to_int pc land 0xFFF) lsr 2) in
          match get_or_compile t idx with
          | Some b ->
              incr disp;
              blk := b;
              start_idx := idx;
              ops := b.Block.ops;
              pure := b.Block.pure_run;
              cls := b.Block.cls;
              n := Array.length b.Block.ops;
              entry_pc := pc;
              hart.Hart.bpc <- pc;
              i := 0;
              chained := true
          | None -> ()
        end
      end;
      if not !chained then begin
        if Int64.logand pc 3L = 0L then begin
          let tlb = hart.Hart.tlb in
          Tlb.sync_epoch tlb (Csr_file.vm_epoch hart.Hart.csr);
          let base = Tlb.fetch_lookup tlb ~priv:hart.Hart.priv pc in
          if base >= 0 then begin
            let idx = base + ((Int64.to_int pc land 0xFFF) lsr 2) in
            match get_or_compile t idx with
            | Some b ->
                incr disp;
                blk := b;
                start_idx := idx;
                ops := b.Block.ops;
                pure := b.Block.pure_run;
                cls := b.Block.cls;
                n := Array.length b.Block.ops;
                entry_pc := pc;
                hart.Hart.bpc <- pc;
                page_base := base;
                have_page := true;
                i := 0;
                chained := true
            | None -> ()
          end
        end;
        if not !chained then begin
          flush ();
          fetch_exec_one t hart;
          Block.note_interp_instr t.blocks;
          sync_no_irq ();
          have_page := false;
          incr steps;
          if
            hart.Hart.just_trapped || t.poweroff || hart.Hart.halted
            || !steps >= budget
          then continue_ := false
          else if not (pre_next ()) then begin
            incr steps;
            continue_ := false
          end
        end
      end
    end
  done;
  materialize ();
  flush ();
  Block.note_block_instrs t.blocks !retired;
  if !disp > 0 then Block.note_dispatches t.blocks !disp;
  !steps

(* Block-engine stepping: consume up to [budget] machine steps and
   return how many were consumed (>= 1 whenever the hart is live).
   [step] above remains the per-instruction oracle; this entry point
   must be bit-exact with running [step] the same number of times —
   record/replay digests and fleet determinism depend on it. Usage is
   confined to lib/rv, lib/verif and bench by lint rule 7. *)
let step_blocks t hart ~budget =
  let steps = ref 0 in
  while !steps < budget && (not t.poweroff) && not hart.Hart.halted do
    if not (pre_step t hart) then incr steps
    else begin
      let pc = hart.Hart.pc in
      let base =
        if Int64.logand pc 3L <> 0L then -1
        else begin
          let tlb = hart.Hart.tlb in
          Tlb.sync_epoch tlb (Csr_file.vm_epoch hart.Hart.csr);
          Tlb.fetch_lookup tlb ~priv:hart.Hart.priv pc
        end
      in
      if base < 0 then begin
        (* misaligned pc, cold fetch page, or tlb_entries = 0: one
           interpreted step (which also installs the fetch page) *)
        fetch_exec_one t hart;
        Block.note_interp_instr t.blocks;
        incr steps
      end
      else begin
        let idx = base + ((Int64.to_int pc land 0xFFF) lsr 2) in
        match get_or_compile t idx with
        | None ->
            (* cold icache word: interpret once to warm it *)
            fetch_exec_one t hart;
            Block.note_interp_instr t.blocks;
            incr steps
        | Some blk ->
            Block.note_dispatch t.blocks;
            steps :=
              !steps
              + exec_block t hart blk idx ~page_base:base
                  ~budget:(budget - !steps)
      end
    end
  done;
  !steps

let block_stats t = Block.stats t.blocks
let block_hit_rate t = Block.hit_rate t.blocks
let set_block_engine t on = t.block_engine <- on
let block_engine_enabled t = t.block_engine

let all_halted t =
  Array.for_all (fun h -> h.Hart.halted) t.harts

let now_ticks t = Clint.mtime t.clint

let sync_time t =
  let max_cycles =
    Array.fold_left (fun acc h -> max acc h.Hart.cycles) 0 t.harts
  in
  Clint.set_mtime t.clint
    (Int64.of_int (max_cycles / t.config.cycles_per_tick))

let poll_devices t =
  (match t.blockdev with
  | Some bd -> Blockdev.poll bd ~now:(now_ticks t) (Plic.raise_irq t.plic)
  | None -> ());
  match t.nic with
  | Some nic ->
      if Nic.irq_line nic then Plic.raise_irq t.plic (Nic.irq nic)
      else Plic.lower_irq t.plic (Nic.irq nic)
  | None -> ()

let run ?(max_instrs = Int64.max_int) ?(chunk = 32) t =
  let max_instrs =
    if max_instrs >= Int64.of_int max_int then max_int
    else Int64.to_int max_instrs
  in
  let start = t.instr_count in
  let budget_left () = max_instrs - (t.instr_count - start) in
  while (not t.poweroff) && (not (all_halted t)) && budget_left () > 0 do
    Array.iter
      (fun hart ->
        let n = ref 0 in
        if t.block_engine then
          (* same hart-slice budget; [step_blocks] consumes >= 1 step
             per call on a live hart, so the slice always terminates *)
          while !n < chunk && (not t.poweroff) && not hart.Hart.halted do
            n := !n + step_blocks t hart ~budget:(chunk - !n)
          done
        else
          while !n < chunk && (not t.poweroff) && not hart.Hart.halted do
            step t hart;
            incr n
          done)
      t.harts;
    sync_time t;
    poll_devices t;
    match t.on_chunk with Some f -> f t | None -> ()
  done;
  sync_time t

(* Scheduled execution: [pick] chooses the hart for every single step,
   so a scheduler (lib/explore) can preempt at arbitrary step
   boundaries. Device time is synced every [chunk] scheduled steps —
   pass 32 * nharts to mirror [run]'s cadence. The contract on [pick]
   is to return a non-halted hart (the explorer remaps halted picks
   deterministically before recording them); a halted or out-of-range
   pick steps nothing but still consumes budget, so the loop always
   terminates. [pick] may raise to abort the run early. *)
let run_scheduled ?(max_steps = max_int) ?(chunk = 64) ~pick t =
  let nharts = Array.length t.harts in
  let n = ref 0 in
  let total = ref 0 in
  while (not t.poweroff) && (not (all_halted t)) && !total < max_steps do
    let h = pick t in
    if h >= 0 && h < nharts && not t.harts.(h).Hart.halted then
      step t t.harts.(h);
    incr n;
    incr total;
    if !n >= chunk then begin
      n := 0;
      sync_time t;
      poll_devices t;
      match t.on_chunk with Some f -> f t | None -> ()
    end
  done;
  sync_time t
