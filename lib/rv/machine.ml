module Bits = Mir_util.Bits
module Ms = Csr_spec.Mstatus

type config = {
  csr_config : Csr_spec.config;
  nharts : int;
  ram_base : int64;
  ram_size : int;
  cycles_per_tick : int;
  hw_misaligned : bool;
  trap_penalty : int;
  xret_penalty : int;
  mmio_penalty : int;
  tlb_entries : int;
      (* per-hart software-TLB slots (rounded up to a power of two);
         0 disables the TLB and the fetch-page cache, leaving the raw
         walker — the configuration the differential fuzzer and the
         ips benchmark use as oracle/baseline *)
}

let default_config =
  {
    csr_config = Csr_spec.default_config;
    nharts = 1;
    ram_base = 0x80000000L;
    ram_size = 16 * 1024 * 1024;
    cycles_per_tick = 100;
    hw_misaligned = false;
    trap_penalty = 140;
    xret_penalty = 100;
    mmio_penalty = 60;
    tlb_entries = 256;
  }

(* Injectable cross-hart race windows, driven by the schedule explorer
   (lib/explore). Each defect delays one cross-hart propagation step
   (a remote TLB shootdown, a physical MSIP kick, a sibling PMP
   reinstall) by [race_window] global machine steps, opening a short
   inconsistency window that only a preemptive schedule can observe:
   under the stock round-robin [run], the window opens and closes
   inside one hart's slice, before the next hart-switch point. *)
type race_bug = Delayed_vm_epoch | Dropped_msip | Pmp_handoff_window

type t = {
  config : config;
  harts : Hart.t array;
  bus : Bus.t;
  clint : Clint.t;
  plic : Plic.t;
  uart : Uart.t;
  mutable blockdev : Blockdev.t option;
  mutable nic : Nic.t option;
  icache : (Instr.t * int) option array;
  mutable mmode_hook : (t -> Hart.t -> Cause.t -> unit) option;
  mutable on_trap :
    (t -> Hart.t -> Cause.t -> from_priv:Priv.t -> to_m:bool -> unit) option;
  mutable on_csr_write : (t -> Hart.t -> int -> int64 -> unit) option;
  mutable on_mmio :
    (t -> Hart.t -> write:bool -> addr:int64 -> size:int -> value:int64 ->
     unit)
    option;
  mutable on_chunk : (t -> unit) option;
  mutable poweroff : bool;
  mutable instr_count : int64;
  mutable race_bug : race_bug option;
  mutable deferred : deferred list;
}

and deferred = { mutable ticks : int; action : t -> unit }

let syscon_base = 0x100000L

let create config =
  let ram = Memory.create ~base:config.ram_base ~size:config.ram_size in
  let bus = Bus.create ~ram in
  let clint = Clint.create ~nharts:config.nharts in
  let plic = Plic.create ~nharts:config.nharts ~nsources:8 in
  let uart = Uart.create () in
  Bus.add_device bus (Clint.device clint ~base:Clint.default_base);
  Bus.add_device bus (Plic.device plic ~base:Plic.default_base);
  Bus.add_device bus (Uart.device uart ~base:Uart.default_base);
  let m =
    {
      config;
      harts =
        Array.init config.nharts (fun id ->
            Hart.create ~tlb_entries:config.tlb_entries config.csr_config
              ~id);
      bus;
      clint;
      plic;
      uart;
      blockdev = None;
      nic = None;
      icache = Array.make (config.ram_size / 4) None;
      mmode_hook = None;
      on_trap = None;
      on_csr_write = None;
      on_mmio = None;
      on_chunk = None;
      poweroff = false;
      instr_count = 0L;
      race_bug = None;
      deferred = [];
    }
  in
  (* Test-finisher ("syscon"): a word write of 0x5555 powers off. *)
  Bus.add_device bus
    {
      Device.name = "syscon";
      base = syscon_base;
      size = 0x1000L;
      load = (fun _ _ -> 0L);
      store =
        (fun off _ v ->
          if off = 0L && Int64.logand v 0xFFFFL = 0x5555L then
            m.poweroff <- true);
    };
  m

let attach_blockdev t ~capacity_sectors ~latency_ticks =
  let dev =
    Blockdev.create ~ram:(Bus.ram t.bus) ~capacity_sectors ~latency_ticks
      ~irq:1
  in
  Bus.add_device t.bus (Blockdev.device dev ~base:Blockdev.default_base);
  t.blockdev <- Some dev;
  dev

let attach_nic t =
  let dev = Nic.create ~ram:(Bus.ram t.bus) ~irq:2 in
  Bus.add_device t.bus (Nic.device dev ~base:Nic.default_base);
  t.nic <- Some dev;
  dev

let phys_load t addr size = Bus.load t.bus addr size
let phys_store t addr size v = Bus.store t.bus addr size v

let icache_index t addr =
  let off = Int64.sub addr t.config.ram_base in
  if off >= 0L && off < Int64.of_int t.config.ram_size then
    Some (Int64.to_int off / 4)
  else None

let icache_invalidate t addr size =
  match icache_index t addr with
  | Some i ->
      t.icache.(i) <- None;
      let last = Int64.add addr (Int64.of_int (size - 1)) in
      (match icache_index t last with
      | Some j when j <> i -> t.icache.(j) <- None
      | _ -> ())
  | None -> ()

let flush_icache t = Array.fill t.icache 0 (Array.length t.icache) None
let invalidate_icache t addr size = icache_invalidate t addr size

(* Deferred cross-hart actions for the injected race windows: the
   countdown ticks once per global machine step (any hart), so a
   deferral of [race_window] models a propagation delay of a few
   instructions of wall-clock. The queue is almost always empty; the
   single [deferred <> []] test in [step] is the only cost when no bug
   is armed. *)
let race_window = 6
let defer t ~ticks action = t.deferred <- t.deferred @ [ { ticks; action } ]

let tick_deferred t =
  List.iter (fun d -> d.ticks <- d.ticks - 1) t.deferred;
  let due, rest = List.partition (fun d -> d.ticks <= 0) t.deferred in
  t.deferred <- rest;
  List.iter (fun d -> d.action t) due

(* sfence.vma semantics over the software TLBs.  All harts are flushed
   on any hart's fence: over-invalidation is always architecturally
   safe, and it makes the counted-but-unfenced SBI remote-fence
   offload conservative too.  [from] names the fencing hart; it only
   matters under the Delayed_vm_epoch injected bug, where the fencing
   hart's own TLB stays coherent but the cross-hart shootdown lands
   [race_window] steps late. *)
let sfence_vma t ?from ?vaddr () =
  let flush h =
    match vaddr with
    | None -> Tlb.flush h.Hart.tlb
    | Some va -> Tlb.flush_page h.Hart.tlb va
  in
  match (t.race_bug, from) with
  | Some Delayed_vm_epoch, Some f ->
      Array.iter (fun h -> if h.Hart.id = f then flush h) t.harts;
      defer t ~ticks:race_window (fun t ->
          Array.iter (fun h -> if h.Hart.id <> f then flush h) t.harts)
  | _ -> Array.iter flush t.harts

let flush_tlbs t = Array.iter (fun h -> Tlb.flush h.Hart.tlb) t.harts

(* Aggregate TLB counters over the harts: (hits, misses, flushes). *)
let tlb_totals t =
  Array.fold_left
    (fun (h, m, f) hart ->
      let tlb = hart.Hart.tlb in
      (h + Tlb.hits tlb, m + Tlb.misses tlb, f + Tlb.flushes tlb))
    (0, 0, 0) t.harts

let load_program t addr bytes =
  Memory.store_bytes (Bus.ram t.bus) addr bytes;
  flush_icache t

let pmp_check t hart ~priv access ~addr ~size =
  ignore t;
  Pmp.check_ranges (Csr_file.pmp_ranges hart.Hart.csr) ~priv access ~addr
    ~size

let mstatus hart = Csr_file.read_raw hart.Hart.csr Csr_addr.mstatus

let translate t hart ~priv access vaddr =
  let satp = Csr_file.read_raw hart.Hart.csr Csr_addr.satp in
  let ms = mstatus hart in
  Vmem.translate
    ~read:(fun a -> phys_load t a 8)
    ~write:(fun a v -> ignore (phys_store t a 8 v))
    ~satp ~priv ~sum:(Bits.test ms Ms.sum) ~mxr:(Bits.test ms Ms.mxr) access
    vaddr

let charge hart n = hart.Hart.cycles <- Int64.add hart.Hart.cycles (Int64.of_int n)

let resume hart ~pc ~priv =
  hart.Hart.pc <- pc;
  hart.Hart.priv <- priv

(* ------------------------------------------------------------------ *)
(* Interrupt lines and pending-interrupt selection                     *)
(* ------------------------------------------------------------------ *)

let update_irq_lines t hart =
  let csr = hart.Hart.csr in
  let h = hart.Hart.id in
  Csr_file.set_mip_bits csr Csr_spec.Irq.mtip (Clint.mtip t.clint h);
  Csr_file.set_mip_bits csr Csr_spec.Irq.msip (Clint.msip t.clint h);
  Csr_file.set_mip_bits csr Csr_spec.Irq.meip (Plic.meip t.plic h);
  Csr_file.set_mip_bits csr Csr_spec.Irq.seip (Plic.seip t.plic h);
  (* Sstc: stimecmp drives STIP when menvcfg.STCE is set. *)
  if t.config.csr_config.Csr_spec.has_sstc then begin
    let menvcfg = Csr_file.read_raw csr Csr_addr.menvcfg in
    if Bits.test menvcfg 63 then
      let stimecmp = Csr_file.read_raw csr Csr_addr.stimecmp in
      Csr_file.set_mip_bits csr Csr_spec.Irq.stip
        (Bits.ule stimecmp (Clint.mtime t.clint))
  end

(* Standard priority: MEI, MSI, MTI, SEI, SSI, STI. *)
let intr_priority =
  Cause.
    [
      (Machine_external, 11);
      (Machine_software, 3);
      (Machine_timer, 7);
      (Supervisor_external, 9);
      (Supervisor_software, 1);
      (Supervisor_timer, 5);
    ]

let pending_interrupt t hart =
  ignore t;
  let csr = hart.Hart.csr in
  let mip = Csr_file.read_raw csr Csr_addr.mip in
  let mie = Csr_file.read_raw csr Csr_addr.mie in
  (* fast path: the common every-step case allocates nothing *)
  if Int64.logand mip mie = 0L then None
  else
    Hart.Xfer_c.pending_interrupt ~order:intr_priority ~priv:hart.Hart.priv
      ~mstatus:(mstatus hart) ~mip ~mie
      ~mideleg:(Csr_file.read_raw csr Csr_addr.mideleg)

(* ------------------------------------------------------------------ *)
(* Trap entry                                                          *)
(* ------------------------------------------------------------------ *)

let tvec_target tvec cause =
  let base = Int64.logand tvec (Int64.lognot 3L) in
  match cause with
  | Cause.Interrupt i when Int64.logand tvec 3L = 1L ->
      Int64.add base (Int64.of_int (4 * Cause.intr_code i))
  | _ -> base

let take_trap t hart cause ~tval =
  charge hart t.config.trap_penalty;
  hart.Hart.just_trapped <- true;
  let csr = hart.Hart.csr in
  let from_priv = hart.Hart.priv in
  let delegated =
    from_priv <> Priv.M
    &&
    match cause with
    | Cause.Exception e ->
        Bits.test (Csr_file.read_raw csr Csr_addr.medeleg) (Cause.exc_code e)
    | Cause.Interrupt i ->
        Bits.test (Csr_file.read_raw csr Csr_addr.mideleg) (Cause.intr_code i)
  in
  let to_m = not delegated in
  if to_m then begin
    Csr_file.write_raw csr Csr_addr.mepc hart.Hart.pc;
    Csr_file.write_raw csr Csr_addr.mcause (Cause.to_xcause cause);
    Csr_file.write_raw csr Csr_addr.mtval tval;
    (match t.on_trap with
    | Some f -> f t hart cause ~from_priv ~to_m
    | None -> ());
    Csr_file.write_raw csr Csr_addr.mstatus
      (Hart.Xfer_c.trap_entry_m ~mstatus:(mstatus hart) ~from_priv);
    hart.Hart.priv <- Priv.M;
    (match t.mmode_hook with
    | Some hook -> hook t hart cause
    | None ->
        hart.Hart.pc <-
          tvec_target (Csr_file.read_raw csr Csr_addr.mtvec) cause);
    (* the handler (hook or firmware-to-be) may retire device state:
       refresh the lines before the next interrupt decision *)
    update_irq_lines t hart
  end
  else begin
    Csr_file.write_raw csr Csr_addr.sepc hart.Hart.pc;
    Csr_file.write_raw csr Csr_addr.scause (Cause.to_xcause cause);
    Csr_file.write_raw csr Csr_addr.stval tval;
    (match t.on_trap with
    | Some f -> f t hart cause ~from_priv ~to_m
    | None -> ());
    Csr_file.write_raw csr Csr_addr.mstatus
      (Hart.Xfer_c.trap_entry_s ~mstatus:(mstatus hart) ~from_priv);
    hart.Hart.priv <- Priv.S;
    hart.Hart.pc <- tvec_target (Csr_file.read_raw csr Csr_addr.stvec) cause
  end

(* ------------------------------------------------------------------ *)
(* Memory access from the interpreter                                  *)
(* ------------------------------------------------------------------ *)

let effective_priv hart =
  let ms = mstatus hart in
  if Bits.test ms Ms.mprv then Ms.get_mpp ms else hart.Hart.priv

let access_fault (access : Vmem.access) =
  match access with
  | Vmem.Fetch -> Cause.Instr_access_fault
  | Vmem.Load -> Cause.Load_access_fault
  | Vmem.Store -> Cause.Store_access_fault

let pmp_access (access : Vmem.access) =
  match access with
  | Vmem.Fetch -> Pmp.Exec
  | Vmem.Load -> Pmp.Read
  | Vmem.Store -> Pmp.Write

let page_mask = Int64.lognot 0xFFFL

(* Translate + PMP-check one access of [size] bytes at [vaddr];
   raises Cause.Trap on fault.

   Translated accesses go through the per-hart software TLB: a hit
   answers translation, leaf permission, and PMP in a few integer
   compares with zero allocation.  A miss runs the bus-backed walker
   (no per-call closures), PMP-checks the result, and installs the
   page together with page-wide PMP verdicts so subsequent hits can
   skip the range scan.  Accesses never straddle a page here: aligned
   accesses of size <= 8 cannot cross a 4 KiB boundary, and misaligned
   ones are resolved byte by byte. *)
let resolve t hart ~priv access vaddr size =
  let csr = hart.Hart.csr in
  if priv = Priv.M || Csr_file.read_raw csr Csr_addr.satp = 0L then begin
    (* bare addressing / M-mode: no walk, PMP only *)
    if not (pmp_check t hart ~priv (pmp_access access) ~addr:vaddr ~size)
    then raise (Cause.Trap (access_fault access, vaddr));
    vaddr
  end
  else begin
    let tlb = hart.Hart.tlb in
    Tlb.sync_epoch tlb (Csr_file.vm_epoch csr);
    let pbase = Tlb.lookup tlb ~priv access vaddr in
    if pbase >= 0 then
      Int64.logor (Int64.of_int pbase) (Int64.logand vaddr 0xFFFL)
    else begin
      let satp = Csr_file.read_raw csr Csr_addr.satp in
      let ms = mstatus hart in
      let sum = Bits.test ms Ms.sum and mxr = Bits.test ms Ms.mxr in
      match
        Vmem.On_bus.translate_leaf t.bus ~satp ~priv ~sum ~mxr access vaddr
      with
      | Error e -> raise (Cause.Trap (e, vaddr))
      | Ok leaf ->
          let phys = leaf.Vmem.phys in
          if
            not (pmp_check t hart ~priv (pmp_access access) ~addr:phys ~size)
          then raise (Cause.Trap (access_fault access, vaddr));
          let ranges = Csr_file.pmp_ranges csr in
          let pg = Int64.logand phys page_mask in
          let pmp_page k =
            Pmp.check_ranges ranges ~priv k ~addr:pg ~size:4096
          in
          Tlb.install tlb ~priv ~vaddr ~phys ~pte:leaf.Vmem.pte ~sum ~mxr
            ~pmp_r:(pmp_page Pmp.Read) ~pmp_w:(pmp_page Pmp.Write)
            ~pmp_x:(pmp_page Pmp.Exec);
          phys
    end
  end

let vload t hart vaddr size ~signed =
  let priv = effective_priv hart in
  if not (Bits.is_aligned vaddr ~size) then begin
    if not t.config.hw_misaligned then
      raise (Cause.Trap (Cause.Load_misaligned, vaddr));
    (* Slow byte-wise path for hardware-handled misaligned loads.
       MMIO bytes pay the same penalty and fire the same hook as the
       aligned path, so costs and trace recording agree. *)
    let v = ref 0L in
    for i = size - 1 downto 0 do
      let a = Int64.add vaddr (Int64.of_int i) in
      let phys = resolve t hart ~priv Vmem.Load a 1 in
      let is_mmio = not (Memory.in_range (Bus.ram t.bus) phys 1) in
      if is_mmio then charge hart t.config.mmio_penalty;
      match phys_load t phys 1 with
      | Some b ->
          (if is_mmio then
             match t.on_mmio with
             | Some f -> f t hart ~write:false ~addr:phys ~size:1 ~value:b
             | None -> ());
          v := Int64.logor (Int64.shift_left !v 8) b
      | None -> raise (Cause.Trap (Cause.Load_access_fault, vaddr))
    done;
    if signed then Bits.sext !v ~width:(8 * size) else !v
  end
  else begin
    let phys = resolve t hart ~priv Vmem.Load vaddr size in
    let is_mmio = not (Memory.in_range (Bus.ram t.bus) phys size) in
    if is_mmio then charge hart t.config.mmio_penalty;
    match phys_load t phys size with
    | Some v ->
        (if is_mmio then
           match t.on_mmio with
           | Some f -> f t hart ~write:false ~addr:phys ~size ~value:v
           | None -> ());
        if signed then Bits.sext v ~width:(8 * size) else v
    | None -> raise (Cause.Trap (Cause.Load_access_fault, vaddr))
  end

let vstore t hart vaddr size v =
  let priv = effective_priv hart in
  if not (Bits.is_aligned vaddr ~size) then begin
    if not t.config.hw_misaligned then
      raise (Cause.Trap (Cause.Store_misaligned, vaddr));
    for i = 0 to size - 1 do
      let a = Int64.add vaddr (Int64.of_int i) in
      let phys = resolve t hart ~priv Vmem.Store a 1 in
      let byte = Bits.extract v ~lo:(8 * i) ~hi:((8 * i) + 7) in
      let is_mmio = not (Memory.in_range (Bus.ram t.bus) phys 1) in
      if is_mmio then begin
        charge hart t.config.mmio_penalty;
        (* as on the aligned path: a device store may change interrupt
           lines, so force a refresh on every hart's next step *)
        Array.iter (fun h -> h.Hart.irq_stale <- 16) t.harts
      end;
      if not (phys_store t phys 1 byte) then
        raise (Cause.Trap (Cause.Store_access_fault, vaddr));
      (if is_mmio then
         match t.on_mmio with
         | Some f -> f t hart ~write:true ~addr:phys ~size:1 ~value:byte
         | None -> ());
      icache_invalidate t phys 1
    done
  end
  else begin
    let phys = resolve t hart ~priv Vmem.Store vaddr size in
    let is_mmio = not (Memory.in_range (Bus.ram t.bus) phys size) in
    if is_mmio then begin
      charge hart t.config.mmio_penalty;
      (* a device store may change interrupt lines (CLINT msip /
         mtimecmp): force a refresh on every hart's next step *)
      Array.iter (fun h -> h.Hart.irq_stale <- 16) t.harts
    end;
    if not (phys_store t phys size v) then
      raise (Cause.Trap (Cause.Store_access_fault, vaddr));
    (if is_mmio then
       match t.on_mmio with
       | Some f -> f t hart ~write:true ~addr:phys ~size ~value:v
       | None -> ());
    (* stores break reservations overlapping the written bytes *)
    Array.iter
      (fun h ->
        match h.Hart.reservation with
        | Some r
          when Bits.ult r (Int64.add phys (Int64.of_int size))
               && Bits.ule phys r ->
            h.Hart.reservation <- None
        | _ -> ())
      t.harts;
    icache_invalidate t phys size
  end

(* Fill one icache slot from RAM; [idx] is a word index inside RAM. *)
let fetch_fill t idx ~pc =
  let phys = Int64.add t.config.ram_base (Int64.of_int (idx lsl 2)) in
  match phys_load t phys 4 with
  | None -> raise (Cause.Trap (Cause.Instr_access_fault, pc))
  | Some word -> begin
      let bits = Int64.to_int word in
      match Decode.decode bits with
      | Some i ->
          t.icache.(idx) <- Some (i, bits);
          (i, bits)
      | None -> raise (Cause.Trap (Cause.Illegal_instr, word))
    end

let fetch t hart =
  let pc = hart.Hart.pc in
  if Int64.logand pc 3L <> 0L then
    raise (Cause.Trap (Cause.Instr_misaligned, pc));
  let tlb = hart.Hart.tlb in
  Tlb.sync_epoch tlb (Csr_file.vm_epoch hart.Hart.csr);
  (* fetch fast path: the current fetch page's icache base is cached,
     so straight-line fetches cost two compares and two array reads *)
  let base = Tlb.fetch_lookup tlb ~priv:hart.Hart.priv pc in
  let idx =
    if base >= 0 then base + ((Int64.to_int pc land 0xFFF) lsr 2)
    else begin
      let phys = resolve t hart ~priv:hart.Hart.priv Vmem.Fetch pc 4 in
      match icache_index t phys with
      | None ->
          (* Fetches must target RAM. *)
          raise (Cause.Trap (Cause.Instr_access_fault, pc))
      | Some idx ->
          (* cache the page when it lies wholly in RAM and PMP grants
             execute over all of it (so hits can skip the range scan) *)
          let pg = Int64.logand phys page_mask in
          let off = Int64.sub pg t.config.ram_base in
          if
            off >= 0L
            && Int64.add off 4096L <= Int64.of_int t.config.ram_size
            && Pmp.check_ranges
                 (Csr_file.pmp_ranges hart.Hart.csr)
                 ~priv:hart.Hart.priv Pmp.Exec ~addr:pg ~size:4096
          then
            Tlb.fetch_install tlb ~priv:hart.Hart.priv pc
              ~base:(Int64.to_int off lsr 2);
          idx
    end
  in
  match t.icache.(idx) with
  | Some entry -> entry
  | None -> fetch_fill t idx ~pc

(* ------------------------------------------------------------------ *)
(* CSR instruction semantics                                           *)
(* ------------------------------------------------------------------ *)

let illegal bits = raise (Cause.Trap (Cause.Illegal_instr, Int64.of_int bits))

let counter_enabled t hart csr_addr =
  (* cycle/time/instret gating by mcounteren (from S/U) and scounteren
     (from U). *)
  ignore t;
  let bit = csr_addr land 0x1F in
  let csr = hart.Hart.csr in
  let ok_m =
    hart.Hart.priv = Priv.M
    || Bits.test (Csr_file.read_raw csr Csr_addr.mcounteren) bit
  in
  let ok_s =
    hart.Hart.priv <> Priv.U
    || Bits.test (Csr_file.read_raw csr Csr_addr.scounteren) bit
  in
  ok_m && ok_s

let exec_csr t hart bits op rd src csr_addr =
  let csr = hart.Hart.csr in
  let priv = hart.Hart.priv in
  if Priv.compare priv (Csr_addr.min_priv csr_addr) < 0 then illegal bits;
  let write_needed =
    match (op, src) with
    | Instr.Csrrw, _ -> true
    | (Instr.Csrrs | Instr.Csrrc), Instr.Reg 0 -> false
    | (Instr.Csrrs | Instr.Csrrc), Instr.Imm 0 -> false
    | (Instr.Csrrs | Instr.Csrrc), _ -> true
  in
  if write_needed && Csr_addr.is_read_only csr_addr then illegal bits;
  (* TVM traps satp accesses from S-mode. *)
  if
    csr_addr = Csr_addr.satp && priv = Priv.S
    && Bits.test (mstatus hart) Ms.tvm
  then illegal bits;
  let src_val =
    match src with
    | Instr.Reg r -> Hart.get hart r
    | Instr.Imm z -> Int64.of_int z
  in
  let finish ?(storage = true) old =
    (if write_needed && storage then begin
       let value = Hart.Xfer_c.csr_rmw op ~old ~src:src_val in
       Csr_file.write csr csr_addr value;
       match t.on_csr_write with
       | Some f -> f t hart csr_addr (Csr_file.read_raw csr csr_addr)
       | None -> ()
     end);
    Hart.set hart rd old;
    hart.Hart.pc <- Int64.add hart.Hart.pc 4L
  in
  (* Dynamic counters are not backed by CSR storage. *)
  if csr_addr = Csr_addr.cycle then begin
    if not (counter_enabled t hart csr_addr) then illegal bits;
    finish hart.Hart.cycles
  end
  else if csr_addr = Csr_addr.time then begin
    if not t.config.csr_config.Csr_spec.has_time_csr then illegal bits;
    if not (counter_enabled t hart csr_addr) then illegal bits;
    finish (Clint.mtime t.clint)
  end
  else if csr_addr = Csr_addr.instret then begin
    if not (counter_enabled t hart csr_addr) then illegal bits;
    finish hart.Hart.instret
  end
  else if csr_addr = Csr_addr.mcycle then
    (* counter writes are dropped in this model *)
    finish ~storage:false hart.Hart.cycles
  else if csr_addr = Csr_addr.minstret then
    finish ~storage:false hart.Hart.instret
  else if not (Csr_file.exists csr csr_addr) then illegal bits
  else finish (Csr_file.read csr csr_addr)

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)
(* ------------------------------------------------------------------ *)

let jump t hart target =
  ignore t;
  if Int64.logand target 3L <> 0L then
    raise (Cause.Trap (Cause.Instr_misaligned, target));
  hart.Hart.pc <- target

let exec t hart instr bits =
  let next () = hart.Hart.pc <- Int64.add hart.Hart.pc 4L in
  let ms () = mstatus hart in
  match instr with
  | Instr.Lui (rd, imm) ->
      Hart.set hart rd imm;
      next ()
  | Instr.Auipc (rd, imm) ->
      Hart.set hart rd (Int64.add hart.Hart.pc imm);
      next ()
  | Instr.Jal (rd, off) ->
      let target = Int64.add hart.Hart.pc off in
      let link = Int64.add hart.Hart.pc 4L in
      jump t hart target;
      Hart.set hart rd link
  | Instr.Jalr (rd, rs1, off) ->
      let target =
        Int64.logand (Int64.add (Hart.get hart rs1) off) (Int64.lognot 1L)
      in
      let link = Int64.add hart.Hart.pc 4L in
      jump t hart target;
      Hart.set hart rd link
  | Instr.Branch (op, rs1, rs2, off) ->
      if Alu.branch_taken op (Hart.get hart rs1) (Hart.get hart rs2) then
        jump t hart (Int64.add hart.Hart.pc off)
      else next ()
  | Instr.Load { width; unsigned; rd; rs1; imm } ->
      let addr = Int64.add (Hart.get hart rs1) imm in
      let size = match width with Instr.B -> 1 | H -> 2 | W -> 4 | D -> 8 in
      let v = vload t hart addr size ~signed:(not unsigned) in
      Hart.set hart rd v;
      next ()
  | Instr.Store { width; rs2; rs1; imm } ->
      let addr = Int64.add (Hart.get hart rs1) imm in
      let size = match width with Instr.B -> 1 | H -> 2 | W -> 4 | D -> 8 in
      vstore t hart addr size (Hart.get hart rs2);
      next ()
  | Instr.Op_imm (op, rd, rs1, imm) ->
      Hart.set hart rd (Alu.op_imm op (Hart.get hart rs1) imm);
      next ()
  | Instr.Op_imm32 (op, rd, rs1, imm) ->
      Hart.set hart rd (Alu.op_imm32 op (Hart.get hart rs1) imm);
      next ()
  | Instr.Op (op, rd, rs1, rs2) ->
      Hart.set hart rd (Alu.op op (Hart.get hart rs1) (Hart.get hart rs2));
      next ()
  | Instr.Op32 (op, rd, rs1, rs2) ->
      Hart.set hart rd (Alu.op32 op (Hart.get hart rs1) (Hart.get hart rs2));
      next ()
  | Instr.Fence -> next ()
  | Instr.Fence_i -> next ()
  | Instr.Ecall ->
      let cause =
        match hart.Hart.priv with
        | Priv.U -> Cause.Ecall_from_u
        | Priv.S -> Cause.Ecall_from_s
        | Priv.M -> Cause.Ecall_from_m
      in
      raise (Cause.Trap (cause, 0L))
  | Instr.Ebreak -> raise (Cause.Trap (Cause.Breakpoint, hart.Hart.pc))
  | Instr.Csr { op; rd; src; csr } -> exec_csr t hart bits op rd src csr
  | Instr.Mret ->
      if hart.Hart.priv <> Priv.M then illegal bits;
      charge hart t.config.xret_penalty;
      let csr = hart.Hart.csr in
      let m = ms () in
      let new_priv = Hart.Xfer_c.mret_target_priv m in
      Csr_file.write_raw csr Csr_addr.mstatus (Hart.Xfer_c.mret_mstatus m);
      hart.Hart.priv <- new_priv;
      hart.Hart.pc <- Csr_file.read_raw csr Csr_addr.mepc
  | Instr.Sret ->
      if hart.Hart.priv = Priv.U then illegal bits;
      if hart.Hart.priv = Priv.S && Bits.test (ms ()) Ms.tsr then illegal bits;
      charge hart t.config.xret_penalty;
      let csr = hart.Hart.csr in
      let m = ms () in
      let new_priv = Hart.Xfer_c.sret_target_priv m in
      Csr_file.write_raw csr Csr_addr.mstatus (Hart.Xfer_c.sret_mstatus m);
      hart.Hart.priv <- new_priv;
      hart.Hart.pc <- Csr_file.read_raw csr Csr_addr.sepc
  | Instr.Wfi ->
      if hart.Hart.priv = Priv.U then illegal bits;
      if hart.Hart.priv = Priv.S && Bits.test (ms ()) Ms.tw then illegal bits;
      hart.Hart.wfi <- true;
      next ()
  | Instr.Sfence_vma (rs1, _) ->
      if hart.Hart.priv = Priv.U then illegal bits;
      if hart.Hart.priv = Priv.S && Bits.test (ms ()) Ms.tvm then illegal bits;
      (* rs1 = x0: global fence; otherwise fence the named vpage.  ASID
         (rs2) is ignored: the TLB is not ASID-tagged, so over-flushing
         is the conservative, correct reading. *)
      if rs1 = 0 then sfence_vma t ~from:hart.Hart.id ()
      else sfence_vma t ~from:hart.Hart.id ~vaddr:(Hart.get hart rs1) ();
      next ()
  | Instr.Amo { op; wide; rd; rs1; rs2; _ } -> begin
      let size = if wide then 8 else 4 in
      let addr = Hart.get hart rs1 in
      (* AMOs always require natural alignment *)
      if not (Bits.is_aligned addr ~size) then
        raise (Cause.Trap (Cause.Store_misaligned, addr));
      let priv = effective_priv hart in
      let sx v = if wide then v else Bits.sext32 v in
      match op with
      | Instr.Lr ->
          let phys = resolve t hart ~priv Vmem.Load addr size in
          (match phys_load t phys size with
          | Some v ->
              Hart.set hart rd (sx v);
              hart.Hart.reservation <- Some phys;
              next ()
          | None -> raise (Cause.Trap (Cause.Load_access_fault, addr)))
      | Instr.Sc ->
          let phys = resolve t hart ~priv Vmem.Store addr size in
          (match hart.Hart.reservation with
          | Some r when r = phys ->
              hart.Hart.reservation <- None;
              if not (phys_store t phys size (Hart.get hart rs2)) then
                raise (Cause.Trap (Cause.Store_access_fault, addr));
              icache_invalidate t phys size;
              Hart.set hart rd 0L;
              next ()
          | _ ->
              hart.Hart.reservation <- None;
              Hart.set hart rd 1L;
              next ())
      | Instr.Swap | Instr.Amoadd | Instr.Amoxor | Instr.Amoand
      | Instr.Amoor | Instr.Amomin | Instr.Amomax | Instr.Amominu
      | Instr.Amomaxu ->
          (* read-modify-write; the write side is checked (AMOs need
             both permissions, and W implies the store check here) *)
          let phys = resolve t hart ~priv Vmem.Store addr size in
          if not (pmp_check t hart ~priv Pmp.Read ~addr:phys ~size) then
            raise (Cause.Trap (Cause.Store_access_fault, addr));
          (match phys_load t phys size with
          | None -> raise (Cause.Trap (Cause.Store_access_fault, addr))
          | Some raw ->
              let old = sx raw in
              let src = if wide then Hart.get hart rs2
                        else Bits.sext32 (Hart.get hart rs2) in
              let result =
                match op with
                | Instr.Swap -> src
                | Instr.Amoadd -> Int64.add old src
                | Instr.Amoxor -> Int64.logxor old src
                | Instr.Amoand -> Int64.logand old src
                | Instr.Amoor -> Int64.logor old src
                | Instr.Amomin -> if Int64.compare old src <= 0 then old else src
                | Instr.Amomax -> if Int64.compare old src >= 0 then old else src
                | Instr.Amominu -> if Bits.ule old src then old else src
                | Instr.Amomaxu -> if Bits.ule src old then old else src
                | Instr.Lr | Instr.Sc -> assert false
              in
              if not (phys_store t phys size result) then
                raise (Cause.Trap (Cause.Store_access_fault, addr));
              icache_invalidate t phys size;
              (* an atomic write breaks other harts' reservations *)
              Array.iter
                (fun h ->
                  if h != hart && h.Hart.reservation = Some phys then
                    h.Hart.reservation <- None)
                t.harts;
              Hart.set hart rd old;
              next ())
    end

(* ------------------------------------------------------------------ *)
(* Stepping and the run loop                                           *)
(* ------------------------------------------------------------------ *)

let wfi_quantum = 16

let step t hart =
  if hart.Hart.halted then ()
  else begin
    if t.deferred <> [] then tick_deferred t;
    hart.Hart.just_trapped <- false;
    (* interrupt lines change only with device state (time advances per
       chunk; msip/PLIC on MMIO stores): refreshing every 16th step
       keeps delivery latency tiny without paying the cost per
       instruction *)
    hart.Hart.irq_stale <- hart.Hart.irq_stale + 1;
    if hart.Hart.irq_stale >= 16 || hart.Hart.wfi then begin
      hart.Hart.irq_stale <- 0;
      update_irq_lines t hart
    end;
    match pending_interrupt t hart with
    | Some i ->
        hart.Hart.wfi <- false;
        take_trap t hart (Cause.Interrupt i) ~tval:0L
    | None ->
        if hart.Hart.wfi then begin
          (* Wake on any pending-and-enabled interrupt; otherwise idle. *)
          let csr = hart.Hart.csr in
          let pending =
            Int64.logand
              (Csr_file.read_raw csr Csr_addr.mip)
              (Csr_file.read_raw csr Csr_addr.mie)
          in
          if pending <> 0L then hart.Hart.wfi <- false
          else charge hart wfi_quantum
        end
        else begin
          match fetch t hart with
          | exception Cause.Trap (e, tval) ->
              take_trap t hart (Cause.Exception e) ~tval
          | instr, bits -> begin
              hart.Hart.cycles <- Int64.add hart.Hart.cycles 1L;
              hart.Hart.instret <- Int64.add hart.Hart.instret 1L;
              t.instr_count <- Int64.add t.instr_count 1L;
              try exec t hart instr bits
              with Cause.Trap (e, tval) ->
                take_trap t hart (Cause.Exception e) ~tval
            end
        end
  end

let all_halted t =
  Array.for_all (fun h -> h.Hart.halted) t.harts

let now_ticks t = Clint.mtime t.clint

let sync_time t =
  let max_cycles =
    Array.fold_left (fun acc h -> max acc h.Hart.cycles) 0L t.harts
  in
  Clint.set_mtime t.clint
    (Int64.div max_cycles (Int64.of_int t.config.cycles_per_tick))

let poll_devices t =
  (match t.blockdev with
  | Some bd -> Blockdev.poll bd ~now:(now_ticks t) (Plic.raise_irq t.plic)
  | None -> ());
  match t.nic with
  | Some nic ->
      if Nic.irq_line nic then Plic.raise_irq t.plic (Nic.irq nic)
      else Plic.lower_irq t.plic (Nic.irq nic)
  | None -> ()

let run ?(max_instrs = Int64.max_int) ?(chunk = 32) t =
  let start = t.instr_count in
  let budget_left () = Int64.sub max_instrs (Int64.sub t.instr_count start) in
  while (not t.poweroff) && (not (all_halted t)) && budget_left () > 0L do
    Array.iter
      (fun hart ->
        let n = ref 0 in
        while
          !n < chunk && (not t.poweroff) && not hart.Hart.halted
        do
          step t hart;
          incr n
        done)
      t.harts;
    sync_time t;
    poll_devices t;
    match t.on_chunk with Some f -> f t | None -> ()
  done;
  sync_time t

(* Scheduled execution: [pick] chooses the hart for every single step,
   so a scheduler (lib/explore) can preempt at arbitrary step
   boundaries. Device time is synced every [chunk] scheduled steps —
   pass 32 * nharts to mirror [run]'s cadence. The contract on [pick]
   is to return a non-halted hart (the explorer remaps halted picks
   deterministically before recording them); a halted or out-of-range
   pick steps nothing but still consumes budget, so the loop always
   terminates. [pick] may raise to abort the run early. *)
let run_scheduled ?(max_steps = max_int) ?(chunk = 64) ~pick t =
  let nharts = Array.length t.harts in
  let n = ref 0 in
  let total = ref 0 in
  while (not t.poweroff) && (not (all_halted t)) && !total < max_steps do
    let h = pick t in
    if h >= 0 && h < nharts && not t.harts.(h).Hart.halted then
      step t t.harts.(h);
    incr n;
    incr total;
    if !n >= chunk then begin
      n := 0;
      sync_time t;
      poll_devices t;
      match t.on_chunk with Some f -> f t | None -> ()
    end
  done;
  sync_time t
