(** A simple DMA-capable network interface.

    Models the request/response traffic of the network benchmarks:
    the host side (workload driver) injects request packets; the guest
    OS consumes them, processes, and transmits replies which the driver
    collects. Arrival raises a PLIC interrupt.

    Register layout (8-byte registers):
    - 0x00 rx length of head packet (read; 0 = empty),
    - 0x08 rx dma address (write),
    - 0x10 rx consume: DMA head packet to rx address and pop (write 1),
    - 0x18 tx dma address, 0x20 tx length, 0x28 tx doorbell (write 1). *)

type t

val default_base : int64
val create : ram:Memory.t -> irq:int -> t
val device : t -> base:int64 -> Device.t

val inject_rx : t -> bytes -> unit
(** Host side: enqueue an incoming packet. *)

val rx_pending : t -> int
val take_tx : t -> bytes option
(** Host side: collect the next transmitted packet. *)

val irq_line : t -> bool
(** Level of the interrupt line (high while packets wait). *)

val irq : t -> int

(** {2 Checkpoint support} *)

type state
(** Opaque deep copy of the device state. *)

val save_state : t -> state
val load_state : t -> state -> unit
