(** Per-hart CSR storage with architectural read/write semantics.

    Reads and writes go through the shared declarative specification
    ({!Csr_spec}); this module adds the storage, the S-mode *views*
    (sstatus/sie/sip are windows onto mstatus/mie/mip filtered by
    mideleg), and PMP write-lock enforcement. Privilege checks belong
    to the executor (and, for the virtual copy, to the VFM emulator) —
    both call the same entry points. *)

type t

val create : Csr_spec.config -> hart_id:int -> t
val config : t -> Csr_spec.config
val exists : t -> int -> bool
val spec : t -> int -> Csr_spec.t option

val read : t -> int -> int64
(** Architectural read (views and read masks applied). The CSR must
    exist. *)

val write : t -> int -> int64 -> unit
(** Architectural write (WARL legalization, views, PMP locks). *)

val read_raw : t -> int -> int64
(** Stored value without view translation — used by trap logic and by
    the machine when driving interrupt lines. *)

val write_raw : t -> int -> int64 -> unit
(** Direct store, bypassing WARL — hardware-internal updates only. *)

val dump : t -> int64 array
(** Copy of the raw backing store (checkpointing). *)

val restore_dump : t -> int64 array -> unit
(** Restore a {!dump}ed store; PMP decode caches are invalidated. *)

val pmp_entries : t -> Pmp.entry array
(** Decoded PMP entries 0..pmp_count-1, in priority order. *)

val pmp_ranges : t -> Pmp.ranges
(** Precomputed ranges for the hot-path access check (cached together
    with {!pmp_entries}). *)

val set_mip_bits : t -> int64 -> bool -> unit
(** Drive interrupt lines: set or clear the given mip bits. *)

val vm_epoch : t -> int
(** Monotone counter bumped by every write — raw or architectural —
    that can change address translation or protection: satp, the PMP
    registers, the mstatus MPRV/SUM/MXR bits, and {!restore_dump}.
    The hart's TLB compares it lazily and flushes on mismatch, so no
    CSR-install path can leave stale translations behind. *)
