(** Declarative CSR behaviour: the executable specification.

    The paper expresses the VFM specification as a function of the
    ISA specification (the official Sail model). In this reproduction
    the role of the Sail model is played by this module plus the
    reference interpreter: every WARL legalization rule is written
    once, here, and consumed both by the reference machine's CSR file
    and by Miralis's virtual CSRs. The verifier
    ({!Mir_verif.Faithful_emulation}) then checks that the *composed*
    behaviours (privilege checks, side effects, views) agree.

    Legalization rules are data ({!rule}), interpreted by the {!Sem}
    functor over an abstract bitvector domain: instantiated at
    [Mir_util.Bits_sig.I64] they are the concrete semantics; at the
    symbolic backend they become the transfer functions the
    faithful-emulation prover ({!Mir_verif.Prove}) explores over the
    whole state space. *)

(** Which optional architectural features a hart implements. The VFM
    instantiates two of these: the host configuration and the virtual
    (reference) configuration — Definition 2's [c_h] and [c_r]. *)
type config = {
  pmp_count : int;  (** implemented PMP entries (0..64) *)
  has_sstc : bool;  (** stimecmp / menvcfg.STCE *)
  has_h : bool;  (** hypervisor extension CSRs *)
  has_time_csr : bool;  (** reading [time] works without trapping *)
  custom_csrs : int list;  (** platform-specific CSRs (e.g. P550) *)
  force_s_interrupt_delegation : bool;
      (** mideleg's S-level bits are hardwired to 1 — the reference
          configuration the VFM exposes to the firmware (§4.3) *)
  mvendorid : int64;
  marchid : int64;
  mimpid : int64;
}

val default_config : config
(** A fully featured configuration (8 PMP entries, no Sstc, no H). *)

(** A WARL legalization rule, as data. *)
type rule =
  | R_id  (** store the masked value as-is *)
  | R_epc  (** clear bits 1:0 (IALIGN=32, no C extension) *)
  | R_tvec  (** mode (1:0) WARL over {0,1}; bad mode keeps old mode *)
  | R_satp  (** mode (63:60) WARL over {0,8}; bad mode keeps whole reg *)
  | R_mstatus  (** reserved MPP encoding 2 keeps the old MPP *)
  | R_pmpcfg of int  (** lock bit, reserved W&~R, bits 5:6; arg = entries *)
  | R_force_or of int64  (** hardwire the given bits to 1 (mideleg) *)

(** Behaviour of one CSR. Writing stores
    [legalize rule ~old ~value:((old land lnot write_mask) lor (value land write_mask))];
    reading yields [(stored land read_mask) lor read_or]. *)
type t = {
  name : string;
  read_mask : int64;
  read_or : int64;
  write_mask : int64;
  rule : rule;
  reset : int64;
}

val find : config -> int -> t option
(** [find config addr] is the spec of the CSR at [addr], or [None] if
    the configuration does not implement it. *)

val exists : config -> int -> bool

val all_addresses : config -> int list
(** Every implemented CSR address, used for exhaustive enumeration. *)

(** The semantics of the rules over an abstract bitvector domain. *)
module Sem (B : Mir_util.Bits_sig.S) : sig
  val epc_legalize : value:B.t -> B.t
  val tvec_legalize : old:B.t -> value:B.t -> B.t
  val satp_legalize : old:B.t -> value:B.t -> B.t
  val mstatus_legalize : old:B.t -> value:B.t -> B.t
  val pmpcfg_legalize : entries_in_reg:int -> old:B.t -> value:B.t -> B.t
  val legalize : rule -> old:B.t -> value:B.t -> B.t

  val apply_write : t -> old:B.t -> value:B.t -> B.t
  (** The stored value after a write, per the rule above. *)

  val apply_read : t -> B.t -> B.t
  (** The value observed by a read of the stored value. *)

  val sstatus_read : mstatus:B.t -> B.t
  val sstatus_write : mstatus:B.t -> value:B.t -> B.t
  val sie_read : mie:B.t -> mideleg:B.t -> B.t
  val sie_write : mie:B.t -> mideleg:B.t -> value:B.t -> B.t
  val sip_read : mip:B.t -> mideleg:B.t -> B.t
  val sip_write : mip:B.t -> mideleg:B.t -> value:B.t -> B.t
end

module C : sig
  val epc_legalize : value:int64 -> int64
  val tvec_legalize : old:int64 -> value:int64 -> int64
  val satp_legalize : old:int64 -> value:int64 -> int64
  val mstatus_legalize : old:int64 -> value:int64 -> int64
  val pmpcfg_legalize : entries_in_reg:int -> old:int64 -> value:int64 -> int64
  val legalize : rule -> old:int64 -> value:int64 -> int64
  val apply_write : t -> old:int64 -> value:int64 -> int64
  val apply_read : t -> int64 -> int64
  val sstatus_read : mstatus:int64 -> int64
  val sstatus_write : mstatus:int64 -> value:int64 -> int64
  val sie_read : mie:int64 -> mideleg:int64 -> int64
  val sie_write : mie:int64 -> mideleg:int64 -> value:int64 -> int64
  val sip_read : mip:int64 -> mideleg:int64 -> int64
  val sip_write : mip:int64 -> mideleg:int64 -> value:int64 -> int64
end
(** [Sem] at the concrete [int64] domain — today's semantics. *)

val apply_write : t -> old:int64 -> value:int64 -> int64
val apply_read : t -> int64 -> int64

(** [mstatus] bit positions, shared by machine and VFM. *)
module Mstatus : sig
  val sie : int
  val mie : int
  val spie : int
  val mpie : int
  val spp : int
  val mpp_lo : int
  val mpp_hi : int
  val mprv : int
  val sum : int
  val mxr : int
  val tvm : int
  val tw : int
  val tsr : int

  val get_mpp : int64 -> Priv.t
  val set_mpp : int64 -> Priv.t -> int64
  val get_spp : int64 -> Priv.t
  val set_spp : int64 -> Priv.t -> int64

  val sstatus_mask : int64
  (** The bits of [mstatus] visible through [sstatus]. *)

  val write_mask : int64
  (** All software-writable mstatus bits. *)

  val read_or : int64
  (** The hardwired UXL/SXL fields OR'd into every mstatus read. *)
end

(** Interrupt bit masks for mip/mie/mideleg. *)
module Irq : sig
  val ssip : int64
  val msip : int64
  val stip : int64
  val mtip : int64
  val seip : int64
  val meip : int64

  val s_mask : int64
  (** SSIP | STIP | SEIP *)

  val m_mask : int64
  (** MSIP | MTIP | MEIP *)
end

val misa_value : config -> int64
val medeleg_mask : int64
val mideleg_mask : int64
