type t = { buf : Buffer.t }

let default_base = 0x10000000L
let create () = { buf = Buffer.create 256 }
let output t = Buffer.contents t.buf
let clear t = Buffer.clear t.buf

type state = string

let save_state t = Buffer.contents t.buf

let load_state t s =
  Buffer.clear t.buf;
  Buffer.add_string t.buf s

let load _t off size =
  (* LSR: THR empty + idle. *)
  if Int64.to_int off = 5 && size = 1 then 0x60L else 0L

let store t off size v =
  if off = 0L && size = 1 then
    Buffer.add_char t.buf (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))

let device t ~base =
  {
    Device.name = "uart";
    base;
    size = 0x100L;
    load = load t;
    store = store t;
  }
