(** Per-hart direct-mapped software TLB and fetch-page cache.

    Each slot caches one 4 KiB translation — physical page base plus a
    per-access-kind validity mask folding together the leaf PTE
    permissions (including the D bit for stores), the privilege /
    SUM / MXR context the walk ran under, and the page-wide PMP
    verdict for the containing region — so a hit answers translation
    *and* protection in a handful of integer compares with zero
    allocation. Superpages are cached fractured (one slot per 4 KiB
    vpage actually touched), which keeps per-address [sfence.vma]
    exact.

    Invalidation is two-tier: explicit ({!flush} / {!flush_page}, from
    [sfence.vma] and checkpoint restore) and lazy ({!sync_epoch}
    against {!Csr_file.vm_epoch}, which covers satp/PMP/mstatus-VM
    writes on every write path, including raw world-switch
    installs). *)

type t

val create : entries:int -> t
(** [entries] is rounded up to a power of two; [0] disables the TLB
    (every lookup misses, installs are dropped). *)

val entries : t -> int
val hits : t -> int
val misses : t -> int
val flushes : t -> int
val reset_counters : t -> unit

val flush : t -> unit
(** Drop every slot and the fetch-page cache. *)

val flush_page : t -> int64 -> unit
(** Drop any slot caching the given virtual address's page, in every
    privilege (per-address [sfence.vma]). *)

val sync_epoch : t -> int -> unit
(** Flush iff the given vm-epoch differs from the last one seen. *)

val lookup : t -> priv:Priv.t -> Vmem.access -> int64 -> int
(** Physical page base for the access, or [-1] when the cache cannot
    serve it (counts a hit or a miss accordingly). *)

val install :
  t ->
  priv:Priv.t ->
  vaddr:int64 ->
  phys:int64 ->
  pte:int64 ->
  sum:bool ->
  mxr:bool ->
  pmp_r:bool ->
  pmp_w:bool ->
  pmp_x:bool ->
  unit
(** Install the result of a successful walk + PMP check. [pte] is the
    leaf PTE after the A/D update; [pmp_r]/[pmp_w]/[pmp_x] are
    page-wide PMP verdicts. Kinds whose permission, context, D-bit, or
    PMP verdict do not hold are left invalid, so e.g. a store through
    a load-installed entry misses and re-walks once to set D. *)

val iter_valid :
  t ->
  (vpn:int ->
  priv:Priv.t ->
  loads:bool ->
  stores:bool ->
  fetches:bool ->
  pbase:int ->
  unit) ->
  unit
(** Enumerate the valid slots: virtual page number, the privilege the
    walk ran under, which access kinds the entry can serve, and the
    cached physical page base. Used by the schedule explorer's
    sfence-coherence oracle to re-walk every cached translation. *)

val fetch_lookup : t -> priv:Priv.t -> int64 -> int
(** icache word-index base for the cached fetch page, or [-1]. *)

val fetch_install : t -> priv:Priv.t -> int64 -> base:int -> unit
