(* Per-hart direct-mapped software TLB.

   Each slot caches one 4 KiB translation: the physical page base, and
   a per-access-kind validity mask that folds together the leaf PTE
   permissions (including A/D state), the SUM/MXR context the walk ran
   under, and the page-wide PMP verdict for the containing region.  A
   hit therefore answers translation *and* protection in a handful of
   integer compares with zero allocation; anything the mask cannot
   prove (permission miss, D-bit not yet set, PMP region not
   page-uniform) simply misses and takes the full walk.

   Slots are packed into plain [int array]s — OCaml unboxes those, so
   lookups never touch the heap (an [int64 array] would box on read in
   generic contexts and cost a write barrier on install).

   Invalidation has two tiers:
   - explicit flushes: [sfence.vma] (global or per-address) and
     checkpoint restore call [flush]/[flush_page] directly;
   - epoch sync: [Csr_file] bumps a vm-epoch counter on every write to
     satp, the PMP registers, or the mstatus VM-relevant bits
     (MPRV/SUM/MXR), whatever code path performed the write.  Callers
     pass the current epoch to [sync_epoch] before looking up; a stale
     epoch empties the TLB.  Routing invalidation through the CSR file
     means a world switch that installs satp with [write_raw] cannot
     leave stale translations behind.

   Superpages are cached fractured: the walker returns the physical
   page for the exact 4 KiB vpage accessed, and that is what we
   install, so per-address sfence semantics need no range logic.

   A separate single-entry fetch-page cache maps the current fetch
   vpage to an icache word index base, letting straight-line fetches
   skip even the TLB probe.  It obeys the same two invalidation
   tiers. *)

type t = {
  size : int; (* number of slots; 0 disables the TLB entirely *)
  mask : int;
  tags : int array; (* (vpn lsl 3) lor (priv lsl 1) lor 1; 0 = empty *)
  flags : int array; (* kind mask: bit0 load, bit1 store, bit2 fetch *)
  pbase : int array; (* physical page base (low 12 bits clear) *)
  mutable epoch : int;
  mutable fetch_tag : int; (* same tag encoding; 0 = invalid *)
  mutable fetch_base : int; (* icache word index of the page start *)
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

let load_bit = 1
let store_bit = 2
let fetch_bit = 4

let kind_bit (access : Vmem.access) =
  match access with
  | Vmem.Load -> load_bit
  | Vmem.Store -> store_bit
  | Vmem.Fetch -> fetch_bit

let create ~entries =
  let size =
    if entries <= 0 then 0
    else begin
      let s = ref 1 in
      while !s < entries do
        s := !s lsl 1
      done;
      !s
    end
  in
  let n = max size 1 in
  {
    size;
    (* size = 0 keeps one permanently-empty slot; clamping the mask to
       0 makes every probe hit that slot and miss *)
    mask = max (size - 1) 0;
    tags = Array.make n 0;
    flags = Array.make n 0;
    pbase = Array.make n 0;
    epoch = 0;
    fetch_tag = 0;
    fetch_base = 0;
    hits = 0;
    misses = 0;
    flushes = 0;
  }

let entries t = t.size
let hits t = t.hits
let misses t = t.misses
let flushes t = t.flushes

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.flushes <- 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) 0;
  t.fetch_tag <- 0;
  t.flushes <- t.flushes + 1

(* Per-address invalidation drops the slot for [vaddr]'s vpage in every
   privilege (the tag priv bits are ignored on purpose: sfence.vma has
   no privilege operand). *)
let flush_page t vaddr =
  let vpn = Int64.to_int (Int64.shift_right_logical vaddr 12) in
  let i = vpn land t.mask in
  if t.tags.(i) lsr 3 = vpn then t.tags.(i) <- 0;
  if t.fetch_tag lsr 3 = vpn then t.fetch_tag <- 0;
  t.flushes <- t.flushes + 1

(* Lazy invalidation: the CSR file bumps its vm-epoch on satp/PMP/
   mstatus-VM writes; a mismatch here empties the cache. *)
let sync_epoch t epoch =
  if t.epoch <> epoch then begin
    t.epoch <- epoch;
    flush t
  end

let tag ~priv vpn = (vpn lsl 3) lor (Priv.to_int priv lsl 1) lor 1

(* Returns the cached physical page base for [vaddr], or -1 when the
   slot cannot serve this access (empty, wrong page/priv, or the kind
   mask cannot prove permission + PMP for [access]). *)
let lookup t ~priv access vaddr =
  let vpn = Int64.to_int (Int64.shift_right_logical vaddr 12) in
  let i = vpn land t.mask in
  if t.tags.(i) = tag ~priv vpn && t.flags.(i) land kind_bit access <> 0
  then begin
    t.hits <- t.hits + 1;
    t.pbase.(i)
  end
  else begin
    t.misses <- t.misses + 1;
    -1
  end

(* Install the result of a successful walk + PMP check.  [pte] is the
   leaf PTE *after* the hardware A/D update; [pmp_r/w/x] are the
   page-wide PMP verdicts for the physical page.  A kind is marked
   valid only when the PTE permission, the privilege/SUM/MXR context,
   the D bit (for stores), and the page-wide PMP verdict all hold — so
   a Store through a Load-installed entry misses and re-walks once to
   set D (A/D promotion), and a page straddling a PMP boundary is
   simply never cached. *)
let install t ~priv ~vaddr ~phys ~pte ~sum ~mxr ~pmp_r ~pmp_w ~pmp_x =
  if t.size <> 0 then begin
    let has bit = Int64.logand pte bit <> 0L in
    let r = has Vmem.pte_r
    and w = has Vmem.pte_w
    and x = has Vmem.pte_x
    and u = has Vmem.pte_u
    and d = has Vmem.pte_d in
    let data_priv_ok = if priv = Priv.U then u else (not u) || sum in
    let fetch_priv_ok = if priv = Priv.U then u else not u in
    let load_ok = (r || (mxr && x)) && data_priv_ok && pmp_r in
    let store_ok = w && data_priv_ok && d && pmp_w in
    let fetch_ok = x && fetch_priv_ok && pmp_x in
    let flags =
      (if load_ok then load_bit else 0)
      lor (if store_ok then store_bit else 0)
      lor if fetch_ok then fetch_bit else 0
    in
    if flags <> 0 then begin
      let vpn = Int64.to_int (Int64.shift_right_logical vaddr 12) in
      let i = vpn land t.mask in
      t.tags.(i) <- tag ~priv vpn;
      t.flags.(i) <- flags;
      t.pbase.(i) <- Int64.to_int (Int64.logand phys (Int64.lognot 0xFFFL))
    end
  end

(* Enumerate the valid slots (for the schedule explorer's cross-hart
   sfence-coherence oracle, which re-walks every cached translation
   and compares page bases). Decoding the packed tag is the inverse of
   [tag]; priv encoding 2 is unused, so [Priv.of_int] cannot fail on a
   valid slot. *)
let iter_valid t f =
  for i = 0 to Array.length t.tags - 1 do
    let tg = t.tags.(i) in
    if tg land 1 = 1 then
      match Priv.of_int ((tg lsr 1) land 3) with
      | Some priv ->
          f ~vpn:(tg lsr 3) ~priv
            ~loads:(t.flags.(i) land load_bit <> 0)
            ~stores:(t.flags.(i) land store_bit <> 0)
            ~fetches:(t.flags.(i) land fetch_bit <> 0)
            ~pbase:t.pbase.(i)
      | None -> ()
  done

(* ------------------------------------------------------------------ *)
(* Fetch-page cache                                                    *)
(* ------------------------------------------------------------------ *)

let fetch_lookup t ~priv pc =
  let vpn = Int64.to_int (Int64.shift_right_logical pc 12) in
  if t.fetch_tag = tag ~priv vpn then begin
    t.hits <- t.hits + 1;
    t.fetch_base
  end
  else -1

let fetch_install t ~priv pc ~base =
  if t.size <> 0 then begin
    let vpn = Int64.to_int (Int64.shift_right_logical pc 12) in
    t.fetch_tag <- tag ~priv vpn;
    t.fetch_base <- base
  end
