type reg = int
type branch_op = Beq | Bne | Blt | Bge | Bltu | Bgeu
type width = B | H | W | D

type op =
  | Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
  | Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu

type op32 = Addw | Subw | Sllw | Srlw | Sraw | Mulw | Divw | Divuw | Remw | Remuw
type op_imm = Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai
type op_imm32 = Addiw | Slliw | Srliw | Sraiw
type csr_op = Csrrw | Csrrs | Csrrc

type amo_op = Lr | Sc | Swap | Amoadd | Amoxor | Amoand | Amoor
            | Amomin | Amomax | Amominu | Amomaxu

type t =
  | Lui of reg * int64
  | Auipc of reg * int64
  | Jal of reg * int64
  | Jalr of reg * reg * int64
  | Branch of branch_op * reg * reg * int64
  | Load of { width : width; unsigned : bool; rd : reg; rs1 : reg; imm : int64 }
  | Store of { width : width; rs2 : reg; rs1 : reg; imm : int64 }
  | Op_imm of op_imm * reg * reg * int64
  | Op_imm32 of op_imm32 * reg * reg * int64
  | Op of op * reg * reg * reg
  | Op32 of op32 * reg * reg * reg
  | Fence
  | Fence_i
  | Ecall
  | Ebreak
  | Csr of { op : csr_op; rd : reg; src : src; csr : int }
  | Mret
  | Sret
  | Wfi
  | Sfence_vma of reg * reg
  | Amo of {
      op : amo_op;
      wide : bool;
      aq : bool;
      rl : bool;
      rd : reg;
      rs1 : reg;
      rs2 : reg;
    }

and src = Reg of reg | Imm of int

let is_privileged = function
  | Csr _ | Mret | Sret | Wfi | Sfence_vma _ -> true
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _
  | Op_imm _ | Op_imm32 _ | Op _ | Op32 _ | Fence | Fence_i | Ecall | Ebreak
  | Amo _ ->
      false

(* Block-engine classification (lib/rv/block.ml). A pure instruction
   touches only the register file and pc: it cannot trap, cannot
   access memory or CSRs, and fires no observation hook, so the block
   executor may batch its per-step bookkeeping. Fence is pure here
   because the interpreter executes it as a no-op. *)
let is_pure = function
  | Lui _ | Auipc _ | Op_imm _ | Op_imm32 _ | Op _ | Op32 _ | Fence -> true
  | Jal _ | Jalr _ | Branch _ | Load _ | Store _ | Fence_i | Ecall | Ebreak
  | Csr _ | Mret | Sret | Wfi | Sfence_vma _ | Amo _ ->
      false

(* A terminator ends a decoded block: control flow (the next pc is no
   longer sequential), anything privileged (it may change the
   translation/privilege context blocks are dispatched under), and the
   always-trapping pair. Loads/stores/AMOs do NOT terminate — stores
   into a cached page are caught by the executor's mid-block
   invalidation check. *)
let is_block_terminator = function
  | Jal _ | Jalr _ | Branch _ | Ecall | Ebreak | Fence_i -> true
  | i -> is_privileged i

let reg_names =
  [| "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1";
     "a0"; "a1"; "a2"; "a3"; "a4"; "a5"; "a6"; "a7";
     "s2"; "s3"; "s4"; "s5"; "s6"; "s7"; "s8"; "s9"; "s10"; "s11";
     "t3"; "t4"; "t5"; "t6" |]

let reg_name r =
  if r >= 0 && r < 32 then reg_names.(r) else Printf.sprintf "x%d" r

let branch_name = function
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt"
  | Bge -> "bge" | Bltu -> "bltu" | Bgeu -> "bgeu"

let op_name = function
  | Add -> "add" | Sub -> "sub" | Sll -> "sll" | Slt -> "slt"
  | Sltu -> "sltu" | Xor -> "xor" | Srl -> "srl" | Sra -> "sra"
  | Or -> "or" | And -> "and" | Mul -> "mul" | Mulh -> "mulh"
  | Mulhsu -> "mulhsu" | Mulhu -> "mulhu" | Div -> "div" | Divu -> "divu"
  | Rem -> "rem" | Remu -> "remu"

let op32_name = function
  | Addw -> "addw" | Subw -> "subw" | Sllw -> "sllw" | Srlw -> "srlw"
  | Sraw -> "sraw" | Mulw -> "mulw" | Divw -> "divw" | Divuw -> "divuw"
  | Remw -> "remw" | Remuw -> "remuw"

let op_imm_name = function
  | Addi -> "addi" | Slti -> "slti" | Sltiu -> "sltiu" | Xori -> "xori"
  | Ori -> "ori" | Andi -> "andi" | Slli -> "slli" | Srli -> "srli"
  | Srai -> "srai"

let op_imm32_name = function
  | Addiw -> "addiw" | Slliw -> "slliw" | Srliw -> "srliw" | Sraiw -> "sraiw"

let csr_op_name = function
  | Csrrw -> "csrrw" | Csrrs -> "csrrs" | Csrrc -> "csrrc"

let amo_op_name = function
  | Lr -> "lr" | Sc -> "sc" | Swap -> "amoswap" | Amoadd -> "amoadd"
  | Amoxor -> "amoxor" | Amoand -> "amoand" | Amoor -> "amoor"
  | Amomin -> "amomin" | Amomax -> "amomax" | Amominu -> "amominu"
  | Amomaxu -> "amomaxu"

let load_name width unsigned =
  match (width, unsigned) with
  | B, false -> "lb" | B, true -> "lbu"
  | H, false -> "lh" | H, true -> "lhu"
  | W, false -> "lw" | W, true -> "lwu"
  | D, _ -> "ld"

let store_name = function B -> "sb" | H -> "sh" | W -> "sw" | D -> "sd"

let to_string t =
  let r = reg_name in
  match t with
  | Lui (rd, imm) -> Printf.sprintf "lui %s, 0x%Lx" (r rd)
      (Int64.logand (Int64.shift_right_logical imm 12) 0xFFFFFL)
  | Auipc (rd, imm) -> Printf.sprintf "auipc %s, 0x%Lx" (r rd)
      (Int64.logand (Int64.shift_right_logical imm 12) 0xFFFFFL)
  | Jal (rd, off) -> Printf.sprintf "jal %s, %Ld" (r rd) off
  | Jalr (rd, rs1, off) -> Printf.sprintf "jalr %s, %Ld(%s)" (r rd) off (r rs1)
  | Branch (op, rs1, rs2, off) ->
      Printf.sprintf "%s %s, %s, %Ld" (branch_name op) (r rs1) (r rs2) off
  | Load { width; unsigned; rd; rs1; imm } ->
      Printf.sprintf "%s %s, %Ld(%s)" (load_name width unsigned) (r rd) imm (r rs1)
  | Store { width; rs2; rs1; imm } ->
      Printf.sprintf "%s %s, %Ld(%s)" (store_name width) (r rs2) imm (r rs1)
  | Op_imm (op, rd, rs1, imm) ->
      Printf.sprintf "%s %s, %s, %Ld" (op_imm_name op) (r rd) (r rs1) imm
  | Op_imm32 (op, rd, rs1, imm) ->
      Printf.sprintf "%s %s, %s, %Ld" (op_imm32_name op) (r rd) (r rs1) imm
  | Op (op, rd, rs1, rs2) ->
      Printf.sprintf "%s %s, %s, %s" (op_name op) (r rd) (r rs1) (r rs2)
  | Op32 (op, rd, rs1, rs2) ->
      Printf.sprintf "%s %s, %s, %s" (op32_name op) (r rd) (r rs1) (r rs2)
  | Fence -> "fence"
  | Fence_i -> "fence.i"
  | Ecall -> "ecall"
  | Ebreak -> "ebreak"
  | Csr { op; rd; src; csr } -> begin
      match src with
      | Reg rs1 ->
          Printf.sprintf "%s %s, 0x%x, %s" (csr_op_name op) (r rd) csr (r rs1)
      | Imm z ->
          Printf.sprintf "%si %s, 0x%x, %d" (csr_op_name op) (r rd) csr z
    end
  | Mret -> "mret"
  | Sret -> "sret"
  | Wfi -> "wfi"
  | Sfence_vma (rs1, rs2) -> Printf.sprintf "sfence.vma %s, %s" (r rs1) (r rs2)
  | Amo { op; wide; aq; rl; rd; rs1; rs2 } ->
      Printf.sprintf "%s.%s%s%s %s, %s, (%s)" (amo_op_name op)
        (if wide then "d" else "w")
        (if aq then ".aq" else "")
        (if rl then ".rl" else "")
        (r rd) (r rs2) (r rs1)

let pp fmt t = Format.pp_print_string fmt (to_string t)
