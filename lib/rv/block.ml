(* Decoded basic blocks and their physically-indexed cache.

   A block is a run of pre-decoded instructions compiled to closures,
   one per instruction, each advancing the hart exactly as the
   interpreter's [Machine.exec] would (most delegate straight to it).
   Blocks are keyed by the icache word index of their first
   instruction — a *physical* RAM location — so a block is valid for
   any virtual alias of its page; virtual-side validity (translation,
   privilege, page-wide PMP execute) is re-established on every
   dispatch through the TLB fetch-page cache, which the vm-epoch
   machinery already invalidates on satp/PMP/mstatus writes and
   sfence.vma.

   Physical-side invalidation is page-granular: any store into a RAM
   page that holds compiled blocks drops every block on that page
   (blocks never span a 4 KiB page, so clearing a page's slot range is
   a complete kill). Over-invalidation is harmless — a recompile reads
   the same icache entries the interpreter would fetch — and the
   [page_count] guard keeps the common store-to-data-page case at one
   array read.

   The cache lives inside the owning [Machine.t] (lint rule 6: no
   top-level mutable state in the domain-shared core). *)

type t = {
  ops : (Hart.t -> unit) array;
      (* one closure per instruction, taking only the hart (so calls
         are direct one-argument indirect calls, never caml_apply).
         A closure that needs its own pc computes it as
         [hart.bpc + off], with [off] — its byte offset from the
         block entry — baked in at compile time and [bpc] maintained
         by the executor. Pure closures never write [pc] (the
         executor materializes [pc <- bpc + 4 i] only when something
         can observe it); control closures write the successor pc
         absolutely; memory and delegate closures run with [pc]
         accurate and advance it themselves, exactly as the
         interpreter would. *)
  pure_run : int array;
      (* [pure_run.(i)] = number of consecutive pure (register-only,
         non-trapping, hook-free) ops starting at [i]; the executor
         batches their per-step bookkeeping when interrupt timing
         provably cannot observe the difference *)
  cls : Bytes.t;
      (* executor class per op, driving how much of the interpreter's
         per-step ceremony can be skipped:
         0 pure     — register-only; cannot trap, store, or observe
                      counters
         1 control  — jal/jalr/branch; can only trap (misaligned
                      target), cannot store, halt, power off, or
                      change translation
         2 memory   — load/store/amo; can trap, invalidate blocks and
                      power off, but cannot change translation,
                      privilege or the vm-epoch
         3 delegate — everything else (csr, xret, wfi, fences,
                      ecall/ebreak); full interpreter semantics,
                      may change anything *)
  term_inert : bool;
      (* class of the last op is <= 2: after the block falls off its
         end, translation, privilege and the vm-epoch are provably
         unchanged since dispatch, so a chain within the same virtual
         page may reuse the dispatch-time fetch-page base *)
  whole : bool;
      (* the block is one pure run capped by a control terminator and
         short enough (<= 16 ops) to fit a full irq-stale window: the
         executor may run it as a single batch and, on a self-chain,
         stay in a register-resident loop (the shape of every tight
         guest loop) *)
}

let length b = Array.length b.ops

type cache = {
  slots : t option array;  (* indexed like Machine.icache: RAM word *)
  page_count : int array;  (* live blocks per 4 KiB RAM page *)
  mutable compiled : int;
  mutable invalidated : int;
  mutable dispatches : int;  (* block executions begun *)
  mutable block_instrs : int;  (* instructions retired inside blocks *)
  mutable interp_instrs : int;
      (* instructions retired by the engine's interpreter fallback
         (cold/undecodable first word, fetch-page-cache miss) *)
}

let words_per_page = 1024 (* 4 KiB / 4 *)

let create ~words =
  {
    slots = Array.make words None;
    page_count = Array.make ((words + words_per_page - 1) / words_per_page) 0;
    compiled = 0;
    invalidated = 0;
    dispatches = 0;
    block_instrs = 0;
    interp_instrs = 0;
  }

let lookup c idx = Array.unsafe_get c.slots idx

let insert c idx b =
  c.slots.(idx) <- Some b;
  c.page_count.(idx / words_per_page) <-
    c.page_count.(idx / words_per_page) + 1;
  c.compiled <- c.compiled + 1

(* Kill every block on the page containing word [idx] (a store landed
   there). One array read when the page holds no blocks. *)
let invalidate_word c idx =
  let page = idx / words_per_page in
  let n = c.page_count.(page) in
  if n > 0 then begin
    Array.fill c.slots (page * words_per_page) words_per_page None;
    c.page_count.(page) <- 0;
    c.invalidated <- c.invalidated + n
  end

let flush c =
  Array.iteri
    (fun page n ->
      if n > 0 then begin
        Array.fill c.slots (page * words_per_page) words_per_page None;
        c.page_count.(page) <- 0;
        c.invalidated <- c.invalidated + n
      end)
    c.page_count

let note_dispatch c = c.dispatches <- c.dispatches + 1
let note_dispatches c n = c.dispatches <- c.dispatches + n
let note_block_instrs c n = c.block_instrs <- c.block_instrs + n
let note_interp_instr c = c.interp_instrs <- c.interp_instrs + 1

type stats = {
  compiled : int;
  invalidated : int;
  dispatches : int;
  block_instrs : int;
  interp_instrs : int;
}

let stats (c : cache) =
  {
    compiled = c.compiled;
    invalidated = c.invalidated;
    dispatches = c.dispatches;
    block_instrs = c.block_instrs;
    interp_instrs = c.interp_instrs;
  }

(* Hit rate over instructions executed by the block engine's entry
   point (block-retired / all engine-retired). *)
let hit_rate (c : cache) =
  let total = c.block_instrs + c.interp_instrs in
  if total = 0 then 0. else float_of_int c.block_instrs /. float_of_int total
