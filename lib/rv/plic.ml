type t = {
  nsources : int;
  priority : int array;
  pending : bool array;
  claimed : bool array;
  enable : int array; (* bitmask of sources, per context *)
  threshold : int array;
  nctx : int;
  line : bool array; (* cached level per context, see [line_valid] *)
  mutable line_valid : bool;
      (* the [line] cache matches the mutable state above. PLIC state
         only changes through the mutators in this file (MMIO window,
         raise/lower, claim/complete, state restore), each of which
         clears this flag — so the every-16-steps line refresh in the
         machine costs two array reads instead of two source scans. *)
}

let default_base = 0xC000000L
let window_size = 0x4000000L

let create ~nharts ~nsources =
  assert (nsources < 32);
  let nctx = 2 * nharts in
  {
    nsources;
    priority = Array.make (nsources + 1) 0;
    pending = Array.make (nsources + 1) false;
    claimed = Array.make (nsources + 1) false;
    enable = Array.make nctx 0;
    threshold = Array.make nctx 0;
    nctx;
    line = Array.make nctx false;
    line_valid = false;
  }

type state = {
  s_priority : int array;
  s_pending : bool array;
  s_claimed : bool array;
  s_enable : int array;
  s_threshold : int array;
}

let save_state t =
  {
    s_priority = Array.copy t.priority;
    s_pending = Array.copy t.pending;
    s_claimed = Array.copy t.claimed;
    s_enable = Array.copy t.enable;
    s_threshold = Array.copy t.threshold;
  }

let load_state t s =
  Array.blit s.s_priority 0 t.priority 0 (Array.length t.priority);
  Array.blit s.s_pending 0 t.pending 0 (Array.length t.pending);
  Array.blit s.s_claimed 0 t.claimed 0 (Array.length t.claimed);
  Array.blit s.s_enable 0 t.enable 0 t.nctx;
  Array.blit s.s_threshold 0 t.threshold 0 t.nctx;
  t.line_valid <- false

let raise_irq t src =
  if src > 0 && src <= t.nsources then begin
    t.pending.(src) <- true;
    t.line_valid <- false
  end

let lower_irq t src =
  if src > 0 && src <= t.nsources then begin
    t.pending.(src) <- false;
    t.line_valid <- false
  end

let enable_source t ~ctx src =
  if src > 0 && src <= t.nsources && ctx >= 0 && ctx < t.nctx then begin
    if t.priority.(src) = 0 then t.priority.(src) <- 1;
    t.enable.(ctx) <- t.enable.(ctx) lor (1 lsl src);
    t.line_valid <- false
  end

let best_candidate t ~ctx =
  let best = ref 0 and best_prio = ref t.threshold.(ctx) in
  for src = 1 to t.nsources do
    if
      t.pending.(src) && (not t.claimed.(src))
      && t.enable.(ctx) land (1 lsl src) <> 0
      && t.priority.(src) > !best_prio
    then begin
      best := src;
      best_prio := t.priority.(src)
    end
  done;
  !best

let refresh_lines t =
  for ctx = 0 to t.nctx - 1 do
    t.line.(ctx) <- best_candidate t ~ctx <> 0
  done;
  t.line_valid <- true

let pending_for t ~ctx =
  if not t.line_valid then refresh_lines t;
  t.line.(ctx)
let meip t h = pending_for t ~ctx:(2 * h)
let seip t h = pending_for t ~ctx:((2 * h) + 1)

let claim t ~ctx =
  let src = best_candidate t ~ctx in
  if src <> 0 then begin
    t.claimed.(src) <- true;
    t.line_valid <- false
  end;
  src

let complete t ~ctx:_ src =
  if src > 0 && src <= t.nsources then begin
    t.claimed.(src) <- false;
    t.line_valid <- false
  end

let load t off size =
  let off = Int64.to_int off in
  if size <> 4 then 0L
  else if off < 0x1000 then begin
    let src = off / 4 in
    if src <= t.nsources then Int64.of_int t.priority.(src) else 0L
  end
  else if off = 0x1000 then begin
    let v = ref 0 in
    for src = 1 to t.nsources do
      if t.pending.(src) then v := !v lor (1 lsl src)
    done;
    Int64.of_int !v
  end
  else if off >= 0x2000 && off < 0x2000 + (0x80 * t.nctx) then begin
    let ctx = (off - 0x2000) / 0x80 in
    if (off - 0x2000) mod 0x80 = 0 then Int64.of_int t.enable.(ctx) else 0L
  end
  else if off >= 0x200000 then begin
    let ctx = (off - 0x200000) / 0x1000 in
    if ctx >= t.nctx then 0L
    else
      match (off - 0x200000) mod 0x1000 with
      | 0 -> Int64.of_int t.threshold.(ctx)
      | 4 -> Int64.of_int (claim t ~ctx)
      | _ -> 0L
  end
  else 0L

let store t off size v =
  let off = Int64.to_int off in
  let v = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
  if size <> 4 then ()
  else if off < 0x1000 then begin
    let src = off / 4 in
    if src <= t.nsources then begin
      t.priority.(src) <- v land 0x7;
      t.line_valid <- false
    end
  end
  else if off >= 0x2000 && off < 0x2000 + (0x80 * t.nctx) then begin
    let ctx = (off - 0x2000) / 0x80 in
    if (off - 0x2000) mod 0x80 = 0 then begin
      t.enable.(ctx) <- v;
      t.line_valid <- false
    end
  end
  else if off >= 0x200000 then begin
    let ctx = (off - 0x200000) / 0x1000 in
    if ctx < t.nctx then
      match (off - 0x200000) mod 0x1000 with
      | 0 ->
          t.threshold.(ctx) <- v land 0x7;
          t.line_valid <- false
      | 4 -> complete t ~ctx v
      | _ -> ()
  end

let device t ~base =
  {
    Device.name = "plic";
    base;
    size = window_size;
    load = load t;
    store = store t;
  }
