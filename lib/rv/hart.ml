type t = {
  id : int;
  mutable pc : int64;
  regs : Bytes.t;
  csr : Csr_file.t;
  tlb : Tlb.t;
  mutable priv : Priv.t;
  mutable wfi : bool;
  mutable halted : bool;
  mutable cycles : int;
  mutable instret : int;
  mutable irq_stale : int;
  mutable reservation : int64 option;
  mutable just_trapped : bool;
  mutable bpc : int64;
      (* block-engine scratch: virtual pc of the executing decoded
         block's entry, read by closures that need their own pc
         (auipc, jal/jalr links, branches) while the executor leaves
         [pc] unwritten across pure runs. Meaningless outside
         [Machine.exec_block]; never snapshotted or hashed. *)
}

let create ?(tlb_entries = 256) config ~id =
  {
    id;
    pc = 0L;
    regs = Bytes.make 256 '\000';
    csr = Csr_file.create config ~hart_id:id;
    tlb = Tlb.create ~entries:tlb_entries;
    priv = Priv.M;
    wfi = false;
    halted = false;
    cycles = 0;
    instret = 0;
    irq_stale = 0;
    reservation = None;
    just_trapped = false;
    bpc = 0L;
  }

(* The register file is a flat byte buffer of 32 little-endian int64
   slots rather than an [int64 array]: array elements would each be a
   pointer to a boxed int64, so every register write would allocate
   and run the write barrier. Accesses compile to raw unboxed
   loads/stores, which the decoded basic-block engine depends on for
   its instrs/sec target. The register number is masked to 5 bits
   instead of bounds-checked — identical for every architecturally
   possible input (decoders produce 5-bit fields), and memory-safe
   for any other. *)
external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external swap64 : int64 -> int64 = "%bswap_int64"

let get t r =
  if r = 0 then 0L
  else
    let v = unsafe_get_64 t.regs ((r land 31) lsl 3) in
    if Sys.big_endian then swap64 v else v

let set t r v =
  if r <> 0 then
    unsafe_set_64 t.regs ((r land 31) lsl 3)
      (if Sys.big_endian then swap64 v else v)

let reset t ~pc =
  t.pc <- pc;
  t.reservation <- None;
  Bytes.fill t.regs 0 256 '\000';
  t.priv <- Priv.M;
  t.wfi <- false;
  t.halted <- false;
  t.just_trapped <- false;
  Tlb.flush t.tlb

(* ------------------------------------------------------------------ *)
(* Privilege-transfer transforms over an abstract bitvector domain.    *)
(* The machine interpreter runs [Xfer_c]; the faithful-emulation       *)
(* prover runs [Xfer (Mir_sym.Backend)] — the same code, so anything   *)
(* proved about the symbolic instantiation holds of the interpreter.   *)
(* Transforms are written branch-free (ite/mask form) where possible;  *)
(* [B.decide] marks the genuine control decisions (target privilege,   *)
(* interrupt selection), which the symbolic backend path-splits on.    *)
(* ------------------------------------------------------------------ *)

module Xfer (B : Mir_util.Bits_sig.S) = struct
  module Ms = Csr_spec.Mstatus

  (* mstatus after entering a trap handled in M-mode:
     MPIE <- MIE, MIE <- 0, MPP <- from_priv. *)
  let trap_entry_m ~mstatus ~from_priv =
    let m = B.write mstatus Ms.mpie (B.test mstatus Ms.mie) in
    let m = B.clear m Ms.mie in
    B.insert m ~lo:Ms.mpp_lo ~hi:Ms.mpp_hi
      ~value:(B.const (Int64.of_int (Priv.to_int from_priv)))

  (* mstatus after a delegated trap (handled in S-mode):
     SPIE <- SIE, SIE <- 0, SPP <- from_priv. *)
  let trap_entry_s ~mstatus ~from_priv =
    let m = B.write mstatus Ms.spie (B.test mstatus Ms.sie) in
    let m = B.clear m Ms.sie in
    B.write m Ms.spp (B.bit_const (from_priv = Priv.S))

  (* mstatus after mret: MIE <- MPIE, MPIE <- 1, MPP <- U, and MPRV is
     kept only when returning to M (MPP was 3). [skip_mpie] reproduces
     the Mret_skips_mpie injected bug: MIE keeps its old value. *)
  let mret_mstatus ?(skip_mpie = false) m0 =
    let mpp_is_m = B.bit_and (B.test m0 Ms.mpp_hi) (B.test m0 Ms.mpp_lo) in
    let m = if skip_mpie then m0 else B.write m0 Ms.mie (B.test m0 Ms.mpie) in
    let m = B.set m Ms.mpie in
    let m = B.insert m ~lo:Ms.mpp_lo ~hi:Ms.mpp_hi ~value:(B.const 0L) in
    B.write m Ms.mprv (B.bit_and (B.test m0 Ms.mprv) mpp_is_m)

  (* The privilege mret returns to — MPP, with the reserved encoding 2
     (never stored: legalized away) mapping to U like Mstatus.get_mpp. *)
  let mret_target_priv m =
    let hi = B.decide (B.test m Ms.mpp_hi) in
    let lo = B.decide (B.test m Ms.mpp_lo) in
    if hi && lo then Priv.M else if (not hi) && lo then Priv.S else Priv.U

  (* mstatus after sret: SIE <- SPIE, SPIE <- 1, SPP <- U, MPRV <- 0. *)
  let sret_mstatus m0 =
    let m = B.write m0 Ms.sie (B.test m0 Ms.spie) in
    let m = B.set m Ms.spie in
    let m = B.write m Ms.spp (B.bit_const false) in
    B.clear m Ms.mprv

  let sret_target_priv m =
    if B.decide (B.test m Ms.spp) then Priv.S else Priv.U

  (* The new CSR value of a csrrw/csrrs/csrrc before WARL merging. *)
  let csr_rmw (op : Instr.csr_op) ~old ~src =
    match op with
    | Instr.Csrrw -> src
    | Instr.Csrrs -> B.logor old src
    | Instr.Csrrc -> B.logand old (B.lognot src)

  (* Highest-priority pending interrupt in [mask], per [order]. *)
  let select_interrupt order mask =
    match
      List.find_opt (fun (_, code) -> B.decide (B.test mask code)) order
    with
    | Some (i, _) -> Some i
    | None -> None

  (* The architectural pending-interrupt decision (privilege enables,
     mideleg routing, priority), shared verbatim with the machine. *)
  let pending_interrupt ~order ~priv ~mstatus ~mip ~mie ~mideleg =
    let pending = B.logand mip mie in
    if B.decide (B.eq_const pending 0L) then None
    else begin
      let m_enabled = priv <> Priv.M || B.decide (B.test mstatus Ms.mie) in
      let s_enabled =
        priv = Priv.U || (priv = Priv.S && B.decide (B.test mstatus Ms.sie))
      in
      let m_pending = B.logand pending (B.lognot mideleg) in
      let s_pending = B.logand pending mideleg in
      if m_enabled && not (B.decide (B.eq_const m_pending 0L)) then
        select_interrupt order m_pending
      else if
        s_enabled
        && (not (B.decide (B.eq_const s_pending 0L)))
        && priv <> Priv.M
      then select_interrupt order s_pending
      else None
    end
end

(* The concrete instantiation the interpreter and the VFM run. *)
module Xfer_c = Xfer (Mir_util.Bits_sig.I64)
