(** Instruction AST for the RV64IM + Zicsr + privileged subset.

    This is the abstract form shared by the decoder (hardware side),
    the encoder (assembler side) and the VFM's emulator. Immediates are
    stored sign-extended to 64 bits in their *byte* interpretation
    (branch/jump offsets are byte offsets, LUI/AUIPC immediates are
    already shifted into bits 31:12). *)

type reg = int
(** Register index, 0..31. x0 reads as zero and ignores writes. *)

(** Branch comparison. *)
type branch_op = Beq | Bne | Blt | Bge | Bltu | Bgeu

(** Memory access width in bytes. *)
type width = B | H | W | D

(** Integer register-register operations (RV64IM). *)
type op =
  | Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
  | Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu

(** 32-bit ("W") register-register operations. *)
type op32 = Addw | Subw | Sllw | Srlw | Sraw | Mulw | Divw | Divuw | Remw | Remuw

(** Register-immediate operations. Shift amounts live in the
    immediate. *)
type op_imm = Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai

(** 32-bit register-immediate operations. *)
type op_imm32 = Addiw | Slliw | Srliw | Sraiw

(** CSR access operation. *)
type csr_op = Csrrw | Csrrs | Csrrc

(** Atomic memory operations (the A extension). [Lr]/[Sc] are the
    load-reserved/store-conditional pair; the rest are fetch-and-op. *)
type amo_op = Lr | Sc | Swap | Amoadd | Amoxor | Amoand | Amoor
            | Amomin | Amomax | Amominu | Amomaxu

type t =
  | Lui of reg * int64
  | Auipc of reg * int64
  | Jal of reg * int64
  | Jalr of reg * reg * int64  (** rd, rs1, offset *)
  | Branch of branch_op * reg * reg * int64  (** rs1, rs2, offset *)
  | Load of { width : width; unsigned : bool; rd : reg; rs1 : reg; imm : int64 }
  | Store of { width : width; rs2 : reg; rs1 : reg; imm : int64 }
  | Op_imm of op_imm * reg * reg * int64  (** op, rd, rs1, imm *)
  | Op_imm32 of op_imm32 * reg * reg * int64
  | Op of op * reg * reg * reg  (** op, rd, rs1, rs2 *)
  | Op32 of op32 * reg * reg * reg
  | Fence
  | Fence_i
  | Ecall
  | Ebreak
  | Csr of { op : csr_op; rd : reg; src : src; csr : int }
  | Mret
  | Sret
  | Wfi
  | Sfence_vma of reg * reg  (** rs1 (vaddr), rs2 (asid) *)
  | Amo of {
      op : amo_op;
      wide : bool;  (** true = 64-bit (.d), false = 32-bit (.w) *)
      aq : bool;
      rl : bool;
      rd : reg;
      rs1 : reg;
      rs2 : reg;
    }

(** Source operand of a CSR instruction: a register or a 5-bit
    zero-extended immediate (the [csrrwi] forms). *)
and src = Reg of reg | Imm of int

val is_privileged : t -> bool
(** True for the instructions a virtual firmware monitor must emulate:
    CSR accesses, [mret], [sret], [wfi], [sfence.vma]. This is the set
    the paper's Table 2 verification tasks cover. *)

val is_pure : t -> bool
(** True for register-only instructions (ALU forms, [lui]/[auipc],
    plain [fence]): no memory, no CSRs, no traps, no hooks. The block
    engine batches the per-step bookkeeping of pure runs. *)

val is_block_terminator : t -> bool
(** True for instructions that end a decoded basic block: control
    flow, every privileged instruction, [ecall]/[ebreak], and
    [fence.i]. *)

val reg_name : reg -> string
(** ABI register name ("zero", "ra", "sp", ...). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
