(** Flat physical RAM (little-endian).

    The evaluation platforms carry 4–16 GB; the simulator allocates a
    configurable window (default 32 MiB) at the standard RISC-V DRAM
    base, which is ample for the firmware, kernels and workload
    buffers while keeping allocation cheap. *)

type t

val create : base:int64 -> size:int -> t
val base : t -> int64
val size : t -> int
val in_range : t -> int64 -> int -> bool
(** [in_range t addr len] is true iff [addr, addr+len) is backed. *)

val load : t -> int64 -> int -> int64
(** [load t addr size] reads [size] ∈ {1,2,4,8} bytes, zero-extended.
    The caller guarantees range and alignment. *)

val store : t -> int64 -> int -> int64 -> unit
(** [store t addr size v] writes the low [size] bytes of [v]. *)

val load_bytes : t -> int64 -> int -> bytes
val store_bytes : t -> int64 -> bytes -> unit
val fill : t -> int64 -> int -> char -> unit

(** {2 Dirty-page tracking}

    Every store marks its 4 KiB page dirty; the checkpoint layer in
    [lib/trace] snapshots only the pages touched since the previous
    checkpoint. *)

val page_size : int
val npages : t -> int

val dirty_pages : t -> int list
(** Indices of pages written since the last {!clear_dirty}, ascending. *)

val clear_dirty : t -> unit
val get_page : t -> int -> bytes
(** Copy of page [p] (short at the end of an unaligned window). *)

val set_page : t -> int -> bytes -> unit
val copy_all : t -> bytes
val restore_all : t -> bytes -> unit

val hash : t -> int64
(** FNV-1a digest of the full contents. *)
