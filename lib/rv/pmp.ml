module Bits = Mir_util.Bits

type amode = Off | Tor | Na4 | Napot
type access = Read | Write | Exec

type entry = {
  r : bool;
  w : bool;
  x : bool;
  a : amode;
  l : bool;
  addr : int64;
}

let amode_of_int = function
  | 0 -> Off
  | 1 -> Tor
  | 2 -> Na4
  | 3 -> Napot
  | _ -> assert false

let amode_to_int = function Off -> 0 | Tor -> 1 | Na4 -> 2 | Napot -> 3

let entry_of_cfg_byte b ~addr =
  {
    r = b land 0x1 <> 0;
    w = b land 0x2 <> 0;
    x = b land 0x4 <> 0;
    a = amode_of_int ((b lsr 3) land 0x3);
    l = b land 0x80 <> 0;
    addr;
  }

let cfg_byte_of_entry e =
  (if e.r then 0x1 else 0)
  lor (if e.w then 0x2 else 0)
  lor (if e.x then 0x4 else 0)
  lor (amode_to_int e.a lsl 3)
  lor if e.l then 0x80 else 0

let off_entry = { r = false; w = false; x = false; a = Off; l = false; addr = 0L }

let range ~prev_addr e =
  match e.a with
  | Off -> None
  | Tor ->
      let lo = Int64.shift_left prev_addr 2
      and hi = Int64.shift_left e.addr 2 in
      if Bits.ult lo hi then Some (lo, hi) else None
  | Na4 -> Some (Int64.shift_left e.addr 2, Int64.shift_left (Int64.add e.addr 1L) 2)
  | Napot ->
      (* Count trailing ones: z trailing ones encode a 2^(z+3)-byte
         naturally aligned region. *)
      let z = Bits.ctz (Int64.lognot e.addr) in
      if z >= 54 then
        (* pmpaddr of all-ones: the entire address space. *)
        Some (0L, -1L (* treated as 2^64; Bits.ult handles it *))
      else
        let size = Int64.shift_left 1L (z + 3) in
        let base =
          Int64.shift_left (Int64.logand e.addr (Int64.lognot (Bits.mask (z + 1)))) 2
        in
        Some (base, Int64.add base size)

let napot_encode ~base ~size =
  assert (size >= 8L);
  assert (Int64.logand size (Int64.sub size 1L) = 0L);
  assert (Int64.logand base (Int64.sub size 1L) = 0L);
  let k = Bits.ctz size in
  (* addr[55:2] = base >> 2, with the low (k-3) bits set to 0111..1. *)
  Int64.logor
    (Int64.shift_right_logical base 2)
    (Bits.mask (k - 3))

let tor_encode byte_addr = Int64.shift_right_logical byte_addr 2

type verdict = Allowed | Denied | No_match

(* An access [addr, addr+size) overlaps/contains a range [lo, hi).
   hi = -1L means "to the top of the address space". *)
let overlaps ~lo ~hi ~addr ~size =
  let last = Int64.add addr (Int64.of_int (size - 1)) in
  (* overlap iff addr < hi && last >= lo *)
  (hi = -1L || Bits.ult addr hi) && Bits.ule lo last

let contains ~lo ~hi ~addr ~size =
  let last = Int64.add addr (Int64.of_int (size - 1)) in
  Bits.ule lo addr && (hi = -1L || Bits.ult last hi)

let perm_ok e = function
  | Read -> e.r
  | Write -> e.w
  | Exec -> e.x

let lookup ~entries access ~addr ~size =
  let n = Array.length entries in
  let rec go i prev_addr =
    if i >= n then No_match
    else
      let e = entries.(i) in
      let matched =
        match range ~prev_addr e with
        | None -> None
        | Some (lo, hi) ->
            if overlaps ~lo ~hi ~addr ~size then Some (lo, hi) else None
      in
      match matched with
      | Some (lo, hi) ->
          if contains ~lo ~hi ~addr ~size && perm_ok e access then Allowed
          else Denied
      | None -> go (i + 1) e.addr
  in
  go 0 0L

(* Like lookup, but also reports the deciding entry and whether the
   access is fully contained (needed for the M-mode rules). *)
let lookup_entry ~entries access ~addr ~size =
  let n = Array.length entries in
  let rec go i prev_addr =
    if i >= n then None
    else
      let e = entries.(i) in
      let matched =
        match range ~prev_addr e with
        | None -> None
        | Some (lo, hi) ->
            if overlaps ~lo ~hi ~addr ~size then Some (lo, hi) else None
      in
      match matched with
      | Some (lo, hi) ->
          let contained = contains ~lo ~hi ~addr ~size in
          Some (e, contained, contained && perm_ok e access)
      | None -> go (i + 1) e.addr
  in
  go 0 0L

let check ~entries ~priv access ~addr ~size =
  match priv with
  | Priv.M -> begin
      match lookup_entry ~entries access ~addr ~size with
      | None -> true (* M-mode default: allowed *)
      | Some (e, contained, ok) ->
          (* a partial match fails irrespective of L/R/W/X (priv. spec
             v1.12 §3.7.1); a full match on an unlocked entry does not
             constrain M *)
          if e.l then ok else contained
    end
  | Priv.S | Priv.U -> begin
      match lookup ~entries access ~addr ~size with
      | Allowed -> true
      | Denied -> false
      | No_match -> Array.length entries = 0
    end

type ranges = {
  items : (int64 * int64 * entry) array;
  implemented : bool;
}

let precompute entries =
  let acc = ref [] in
  let n = Array.length entries in
  for i = n - 1 downto 0 do
    let prev_addr = if i = 0 then 0L else entries.(i - 1).addr in
    match range ~prev_addr entries.(i) with
    | Some (lo, hi) -> acc := (lo, hi, entries.(i)) :: !acc
    | None -> ()
  done;
  { items = Array.of_list !acc; implemented = n > 0 }

let check_ranges ranges ~priv access ~addr ~size =
  let items = ranges.items in
  let n = Array.length items in
  let last = Int64.add addr (Int64.of_int (size - 1)) in
  let rec go i =
    if i >= n then
      (* no active entry matched *)
      (match priv with
      | Priv.M -> true
      | Priv.S | Priv.U -> not ranges.implemented)
    else
      let lo, hi, e = items.(i) in
      if (hi = -1L || Bits.ult addr hi) && Bits.ule lo last then begin
        (* overlap: this entry decides *)
        let contained = Bits.ule lo addr && (hi = -1L || Bits.ult last hi) in
        let ok = contained && perm_ok e access in
        match priv with
        | Priv.M -> if e.l then ok else contained
        | Priv.S | Priv.U -> ok
      end
      else go (i + 1)
  in
  go 0

let locked entries i =
  let n = Array.length entries in
  if i < 0 || i >= n then false
  else
    entries.(i).l
    || (i + 1 < n && entries.(i + 1).l && entries.(i + 1).a = Tor)
