(** Sv39 virtual-memory translation.

    Used for S/U-mode execution when [satp] selects Sv39 and by the
    VFM's MPRV emulation path, which must walk the OS page tables to
    perform accesses on behalf of the virtualized firmware. *)

type access = Fetch | Load | Store

type leaf = { phys : int64; pte : int64; level : int }
(** A successful walk: translated physical address, leaf PTE after the
    hardware A/D update, and the level it was found at (0 = 4 KiB
    page, -1 = bare/M-mode passthrough with [pte = 0]). Everything a
    TLB needs to install an entry. *)

(** The walker is functorized over its PTE memory: the interpreter
    instantiates it at {!Bus_mem} (static calls, no per-access closure
    allocation); the monitor's MPRV emulation and tests use the
    closure-backed {!translate} below. *)
module type MEM = sig
  type mem

  val read : mem -> int64 -> int64 option
  (** 8-byte physical load; [None] = bus error. *)

  val write : mem -> int64 -> int64 -> unit
  (** 8-byte physical store (A/D write-back). *)
end

module Make (M : MEM) : sig
  val translate_leaf :
    M.mem ->
    satp:int64 ->
    priv:Priv.t ->
    sum:bool ->
    mxr:bool ->
    access ->
    int64 ->
    (leaf, Cause.exc) result
end

module Bus_mem : MEM with type mem = Bus.t

module On_bus : sig
  val translate_leaf :
    Bus.t ->
    satp:int64 ->
    priv:Priv.t ->
    sum:bool ->
    mxr:bool ->
    access ->
    int64 ->
    (leaf, Cause.exc) result
end

val translate :
  read:(int64 -> int64 option) ->
  write:(int64 -> int64 -> unit) ->
  satp:int64 ->
  priv:Priv.t ->
  sum:bool ->
  mxr:bool ->
  access ->
  int64 ->
  (int64, Cause.exc) result
(** [translate ~read ~write ~satp ~priv ~sum ~mxr access vaddr] walks
    the page tables using [read] (8-byte physical loads, [None] = bus
    error) and [write] (to update A/D bits, hardware-managed style).
    Returns the physical address or the page-fault cause appropriate
    to the access type. If [satp] is Bare or [priv] is M, the address
    is returned unchanged. *)

val pte_ppn : int64 -> int64
(** The physical page number field of a PTE. *)

(* PTE permission bits, exported for page-table construction. *)
val pte_v : int64
val pte_r : int64
val pte_w : int64
val pte_x : int64
val pte_u : int64
val pte_g : int64
val pte_a : int64
val pte_d : int64
