module Bits = Mir_util.Bits

type config = {
  pmp_count : int;
  has_sstc : bool;
  has_h : bool;
  has_time_csr : bool;
  custom_csrs : int list;
  force_s_interrupt_delegation : bool;
  mvendorid : int64;
  marchid : int64;
  mimpid : int64;
}

let default_config =
  {
    pmp_count = 8;
    has_sstc = false;
    has_h = false;
    has_time_csr = false;
    custom_csrs = [];
    force_s_interrupt_delegation = false;
    mvendorid = 0L;
    marchid = 0L;
    mimpid = 0L;
  }

(* WARL legalization is declarative — a [rule], not a closure — so the
   same rule can be interpreted over any bitvector domain by the [Sem]
   functor below: concretely by the CSR files, symbolically by the
   faithful-emulation prover. *)
type rule =
  | R_id  (** store the masked value as-is *)
  | R_epc  (** clear bits 1:0 (IALIGN=32, no C extension) *)
  | R_tvec  (** mode (1:0) WARL over {0,1}; bad mode keeps old mode *)
  | R_satp  (** mode (63:60) WARL over {0,8}; bad mode keeps whole reg *)
  | R_mstatus  (** reserved MPP encoding 2 keeps the old MPP *)
  | R_pmpcfg of int  (** lock bit, reserved W&~R, bits 5:6; arg = entries *)
  | R_force_or of int64  (** hardwire the given bits to 1 (mideleg) *)

type t = {
  name : string;
  read_mask : int64;
  read_or : int64;
  write_mask : int64;
  rule : rule;
  reset : int64;
}

let ro name reset =
  { name; read_mask = -1L; read_or = 0L; write_mask = 0L; rule = R_id; reset }

let rw ?(read_mask = -1L) ?(read_or = 0L) ?(write_mask = -1L) ?(rule = R_id)
    ?(reset = 0L) name =
  { name; read_mask; read_or; write_mask; rule; reset }

module Mstatus = struct
  let sie = 1
  let mie = 3
  let spie = 5
  let mpie = 7
  let spp = 8
  let mpp_lo = 11
  let mpp_hi = 12
  let mprv = 17
  let sum = 18
  let mxr = 19
  let tvm = 20
  let tw = 21
  let tsr = 22

  let get_mpp v =
    match Priv.of_int (Int64.to_int (Bits.extract v ~lo:mpp_lo ~hi:mpp_hi)) with
    | Some p -> p
    | None -> Priv.U (* reserved encoding never stored: legalized away *)

  let set_mpp v p =
    Bits.insert v ~lo:mpp_lo ~hi:mpp_hi ~value:(Int64.of_int (Priv.to_int p))

  let get_spp v = if Bits.test v spp then Priv.S else Priv.U
  let set_spp v p = Bits.write v spp (p = Priv.S)

  (* SIE, SPIE, SPP, SUM, MXR plus the read-only UXL field. *)
  let sstatus_mask =
    List.fold_left
      (fun acc b -> Bits.set acc b)
      0L [ sie; spie; spp; sum; mxr ]

  let write_mask =
    List.fold_left
      (fun acc b -> Bits.set acc b)
      0L
      [ sie; mie; spie; mpie; spp; mprv; sum; mxr; tvm; tw; tsr ]
    |> fun m -> Int64.logor m (Int64.shift_left 3L mpp_lo)

  (* UXL = SXL = 2 (64-bit), hardwired. *)
  let read_or = Int64.logor (Int64.shift_left 2L 32) (Int64.shift_left 2L 34)
end

module Irq = struct
  let ssip = Bits.set 0L 1
  let msip = Bits.set 0L 3
  let stip = Bits.set 0L 5
  let mtip = Bits.set 0L 7
  let seip = Bits.set 0L 9
  let meip = Bits.set 0L 11
  let s_mask = Int64.logor ssip (Int64.logor stip seip)
  let m_mask = Int64.logor msip (Int64.logor mtip meip)
end

(* ------------------------------------------------------------------ *)
(* The abstract semantics: every WARL rule and every view over         *)
(* mstatus/mie/mip, written once against the bitvector signature.      *)
(* [Sem (Bits_sig.I64)] is the concrete semantics the CSR files run;   *)
(* [Sem (Mir_sym.Backend)] is the transfer function the prover         *)
(* explores. The rules are deliberately written in branch-free         *)
(* ite/mask form so the symbolic instantiation never path-splits       *)
(* inside a legalizer.                                                 *)
(* ------------------------------------------------------------------ *)

module Sem (B : Mir_util.Bits_sig.S) = struct
  let epc_legalize ~value = B.clear (B.clear value 0) 1

  let tvec_legalize ~old ~value =
    (* mode (bits 1:0) is WARL over {0 direct, 1 vectored}: encodings
       2 and 3 — exactly those with bit 1 set — keep the old mode. *)
    let bad_mode = B.test value 1 in
    B.ite bad_mode
      (B.insert value ~lo:0 ~hi:1 ~value:(B.extract old ~lo:0 ~hi:1))
      value

  let satp_legalize ~old ~value =
    (* mode (63:60) is WARL over {0 bare, 8 Sv39}: other modes leave
       the whole register unchanged, matching common hardware. *)
    let mode = B.extract value ~lo:60 ~hi:63 in
    let ok = B.bit_or (B.eq_const mode 0L) (B.eq_const mode 8L) in
    B.ite ok value old

  let mstatus_legalize ~old ~value =
    (* MPP: the reserved encoding 2 is WARL'd back to the old value. *)
    let reserved =
      B.eq_const (B.extract value ~lo:Mstatus.mpp_lo ~hi:Mstatus.mpp_hi) 2L
    in
    B.ite reserved
      (B.insert value ~lo:Mstatus.mpp_lo ~hi:Mstatus.mpp_hi
         ~value:(B.extract old ~lo:Mstatus.mpp_lo ~hi:Mstatus.mpp_hi))
      value

  (* pmpcfg legalization: per entry byte, honour the lock bit, clear
     the reserved W=1/R=0 combination (one of the paper's reported PMP
     virtualization bugs), and zero the reserved bits 5:6. *)
  let pmpcfg_legalize ~entries_in_reg ~old ~value =
    let result = ref (B.const 0L) in
    for i = 0 to 7 do
      let shift = 8 * i in
      if i < entries_in_reg then begin
        let old_byte = B.extract old ~lo:shift ~hi:(shift + 7) in
        let new_byte = B.extract value ~lo:shift ~hi:(shift + 7) in
        let locked = B.test old (shift + 7) in
        let b = B.logand new_byte (B.const 0x9FL) (* clear bits 5:6 *) in
        (* W=1,R=0 is reserved: clear W *)
        let w_not_r = B.bit_and (B.test b 1) (B.bit_not (B.test b 0)) in
        let b = B.ite w_not_r (B.clear b 1) b in
        let byte = B.ite locked old_byte b in
        result := B.insert !result ~lo:shift ~hi:(shift + 7) ~value:byte
      end
    done;
    !result

  let legalize rule ~old ~value =
    match rule with
    | R_id -> value
    | R_epc -> epc_legalize ~value
    | R_tvec -> tvec_legalize ~old ~value
    | R_satp -> satp_legalize ~old ~value
    | R_mstatus -> mstatus_legalize ~old ~value
    | R_pmpcfg entries_in_reg -> pmpcfg_legalize ~entries_in_reg ~old ~value
    | R_force_or bits -> B.logor value (B.const bits)

  let apply_write t ~old ~value =
    let wm = B.const t.write_mask in
    let merged =
      B.logor (B.logand old (B.lognot wm)) (B.logand value wm)
    in
    legalize t.rule ~old ~value:merged

  let apply_read t stored =
    B.logor (B.logand stored (B.const t.read_mask)) (B.const t.read_or)

  (* Views over mstatus/mie/mip — the sstatus/sie/sip read and write
     semantics shared by the reference CSR file and the virtual one. *)
  let sstatus_read ~mstatus =
    B.logor
      (B.logand mstatus (B.const Mstatus.sstatus_mask))
      (B.const (Int64.shift_left 2L 32)) (* UXL = 64-bit *)

  let sstatus_write ~mstatus ~value =
    let mask = B.const Mstatus.sstatus_mask in
    B.logor (B.logand mstatus (B.lognot mask)) (B.logand value mask)

  let sie_read ~mie ~mideleg = B.logand mie mideleg

  let sie_write ~mie ~mideleg ~value =
    B.logor (B.logand mie (B.lognot mideleg)) (B.logand value mideleg)

  let sip_read ~mip ~mideleg = B.logand mip mideleg

  let sip_write ~mip ~mideleg ~value =
    (* Only SSIP is writable from S-mode, and only if delegated. *)
    let d = B.logand mideleg (B.const Irq.ssip) in
    B.logor (B.logand mip (B.lognot d)) (B.logand value d)
end

(* The concrete instantiation — today's semantics, bit for bit. *)
module C = Sem (Mir_util.Bits_sig.I64)

let apply_write = C.apply_write
let apply_read = C.apply_read

let misa_value config =
  let ext c = Int64.shift_left 1L (Char.code c - Char.code 'a') in
  let base = Int64.shift_left 2L 62 in
  let exts =
    List.fold_left
      (fun acc c -> Int64.logor acc (ext c))
      0L
      ([ 'a'; 'i'; 'm'; 's'; 'u' ] @ if config.has_h then [ 'h' ] else [])
  in
  Int64.logor base exts

(* Delegatable exceptions: all standard synchronous causes except
   ecall-from-M (11). *)
let medeleg_mask = 0xB3FFL
let mideleg_mask = Irq.s_mask
let pmpaddr_mask = Bits.mask 54
let counteren_mask = 0xFFFFFFFFL

let find config addr =
  let some = Option.some in
  let n_pmp = config.pmp_count in
  if Csr_addr.is_pmpcfg addr then begin
    let reg = addr - 0x3A0 in
    if reg mod 2 <> 0 then None (* odd pmpcfg do not exist on RV64 *)
    else
      let first_entry = reg * 4 in
      let entries_in_reg = max 0 (min 8 (n_pmp - first_entry)) in
      if first_entry >= 64 then None
      else some (rw (Csr_addr.name addr) ~rule:(R_pmpcfg entries_in_reg))
  end
  else if Csr_addr.is_pmpaddr addr then begin
    let idx = addr - 0x3B0 in
    if idx >= 64 then None
    else
      (* Addresses above the implemented count exist read-only-zero up
         to 64 per spec; we model only implemented ones for clarity. *)
      if idx >= n_pmp then None
      else some (rw (Csr_addr.name addr) ~write_mask:pmpaddr_mask)
  end
  else if List.mem addr config.custom_csrs then
    some (rw (Csr_addr.name addr))
  else if addr = Csr_addr.mstatus then
    some
      (rw "mstatus" ~write_mask:Mstatus.write_mask ~read_or:Mstatus.read_or
         ~rule:R_mstatus)
  else if addr = Csr_addr.misa then some (ro "misa" (misa_value config))
  else if addr = Csr_addr.medeleg then
    some (rw "medeleg" ~write_mask:medeleg_mask)
  else if addr = Csr_addr.mideleg then begin
    if config.force_s_interrupt_delegation then
      some
        (rw "mideleg" ~write_mask:mideleg_mask ~reset:Irq.s_mask
           ~rule:(R_force_or Irq.s_mask))
    else some (rw "mideleg" ~write_mask:mideleg_mask)
  end
  else if addr = Csr_addr.mie then
    some (rw "mie" ~write_mask:(Int64.logor Irq.s_mask Irq.m_mask))
  else if addr = Csr_addr.mtvec then some (rw "mtvec" ~rule:R_tvec)
  else if addr = Csr_addr.mcounteren then
    some (rw "mcounteren" ~write_mask:counteren_mask)
  else if addr = Csr_addr.menvcfg then
    (* Only STCE (bit 63, with Sstc) and FIOM (bit 0) are writable. *)
    let m = if config.has_sstc then Bits.set 1L 63 else 1L in
    some (rw "menvcfg" ~write_mask:m)
  else if addr = Csr_addr.mcountinhibit then
    some (rw "mcountinhibit" ~write_mask:0x5L)
  else if addr = Csr_addr.mscratch then some (rw "mscratch")
  else if addr = Csr_addr.mepc then some (rw "mepc" ~rule:R_epc)
  else if addr = Csr_addr.mcause then some (rw "mcause")
  else if addr = Csr_addr.mtval then some (rw "mtval")
  else if addr = Csr_addr.mip then
    (* Only the S-level bits are directly writable by software. *)
    some (rw "mip" ~write_mask:Irq.s_mask)
  else if addr = Csr_addr.mcycle then some (rw "mcycle")
  else if addr = Csr_addr.minstret then some (rw "minstret")
  else if addr = Csr_addr.mvendorid then some (ro "mvendorid" config.mvendorid)
  else if addr = Csr_addr.marchid then some (ro "marchid" config.marchid)
  else if addr = Csr_addr.mimpid then some (ro "mimpid" config.mimpid)
  else if addr = Csr_addr.mhartid then some (ro "mhartid" 0L)
  else if addr = Csr_addr.mconfigptr then some (ro "mconfigptr" 0L)
  else if addr = Csr_addr.stvec then some (rw "stvec" ~rule:R_tvec)
  else if addr = Csr_addr.scounteren then
    some (rw "scounteren" ~write_mask:counteren_mask)
  else if addr = Csr_addr.senvcfg then some (rw "senvcfg" ~write_mask:1L)
  else if addr = Csr_addr.sscratch then some (rw "sscratch")
  else if addr = Csr_addr.sepc then some (rw "sepc" ~rule:R_epc)
  else if addr = Csr_addr.scause then some (rw "scause")
  else if addr = Csr_addr.stval then some (rw "stval")
  else if addr = Csr_addr.satp then some (rw "satp" ~rule:R_satp)
  else if addr = Csr_addr.stimecmp then
    if config.has_sstc then some (rw "stimecmp") else None
  else if
    addr = Csr_addr.sstatus || addr = Csr_addr.sie || addr = Csr_addr.sip
  then
    (* Views over mstatus/mie/mip: handled by the CSR file, but they
       must exist in the address map. Masks here describe the view. *)
    some (rw (Csr_addr.name addr))
  else if config.has_h then begin
    if addr = Csr_addr.hstatus then some (rw "hstatus" ~write_mask:0x3007E0E2L)
    else if addr = Csr_addr.hedeleg then
      some (rw "hedeleg" ~write_mask:medeleg_mask)
    else if addr = Csr_addr.hideleg then
      some (rw "hideleg" ~write_mask:0x444L)
    else if addr = Csr_addr.hie then some (rw "hie" ~write_mask:0x444L)
    else if addr = Csr_addr.hcounteren then
      some (rw "hcounteren" ~write_mask:counteren_mask)
    else if addr = Csr_addr.hgeie then some (rw "hgeie")
    else if addr = Csr_addr.htval then some (rw "htval")
    else if addr = Csr_addr.hip then some (rw "hip" ~write_mask:0x444L)
    else if addr = Csr_addr.hvip then some (rw "hvip" ~write_mask:0x444L)
    else if addr = Csr_addr.htinst then some (rw "htinst")
    else if addr = Csr_addr.hgatp then some (rw "hgatp" ~rule:R_satp)
    else if addr = Csr_addr.hgeip then some (ro "hgeip" 0L)
    else if addr = Csr_addr.vsstatus then
      some (rw "vsstatus" ~write_mask:Mstatus.write_mask)
    else if addr = Csr_addr.vsie then some (rw "vsie" ~write_mask:Irq.s_mask)
    else if addr = Csr_addr.vstvec then some (rw "vstvec" ~rule:R_tvec)
    else if addr = Csr_addr.vsscratch then some (rw "vsscratch")
    else if addr = Csr_addr.vsepc then some (rw "vsepc" ~rule:R_epc)
    else if addr = Csr_addr.vscause then some (rw "vscause")
    else if addr = Csr_addr.vstval then some (rw "vstval")
    else if addr = Csr_addr.vsip then some (rw "vsip" ~write_mask:Irq.s_mask)
    else if addr = Csr_addr.vsatp then some (rw "vsatp" ~rule:R_satp)
    else None
  end
  else None

let exists config addr = Option.is_some (find config addr)

let all_addresses config =
  let acc = ref [] in
  for addr = 0xFFF downto 0 do
    if exists config addr then acc := addr :: !acc
  done;
  !acc
