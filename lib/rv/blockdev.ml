let default_base = 0x10001000L
let sector_size = 512

type pending = { cmd : int; sector : int; dma : int64; len : int; deadline : int64 }

type t = {
  ram : Memory.t;
  disk : Bytes.t;
  latency : int64;
  irq : int;
  mutable sector : int64;
  mutable dma : int64;
  mutable len : int64;
  mutable status : int64; (* 0 idle, 1 busy, 2 done *)
  mutable pending : pending option;
}

let create ~ram ~capacity_sectors ~latency_ticks ~irq =
  {
    ram;
    disk = Bytes.make (capacity_sectors * sector_size) '\000';
    latency = latency_ticks;
    irq;
    sector = 0L;
    dma = 0L;
    len = 0L;
    status = 0L;
    pending = None;
  }

let busy t = t.status = 1L

type state = {
  s_disk : bytes;
  s_sector : int64;
  s_dma : int64;
  s_len : int64;
  s_status : int64;
  s_pending : pending option;
}

let save_state t =
  {
    s_disk = Bytes.copy t.disk;
    s_sector = t.sector;
    s_dma = t.dma;
    s_len = t.len;
    s_status = t.status;
    s_pending = t.pending;
  }

let load_state t s =
  Bytes.blit s.s_disk 0 t.disk 0 (Bytes.length t.disk);
  t.sector <- s.s_sector;
  t.dma <- s.s_dma;
  t.len <- s.s_len;
  t.status <- s.s_status;
  t.pending <- s.s_pending

let load t off size =
  if size <> 8 then 0L
  else
    match Int64.to_int off with
    | 0x00 -> t.sector
    | 0x08 -> t.dma
    | 0x10 -> t.len
    | 0x20 -> t.status
    | _ -> 0L

(* The command deadline is stamped lazily at the next poll: store
   records the request, poll sees [deadline = -1] and assigns one. *)
let store t off size v =
  if size <> 8 then ()
  else
    match Int64.to_int off with
    | 0x00 -> t.sector <- v
    | 0x08 -> t.dma <- v
    | 0x10 -> t.len <- v
    | 0x18 ->
        let cmd = Int64.to_int v in
        if (cmd = 1 || cmd = 2) && t.pending = None then begin
          t.status <- 1L;
          t.pending <-
            Some
              {
                cmd;
                sector = Int64.to_int t.sector;
                dma = t.dma;
                len = Int64.to_int t.len;
                deadline = -1L;
              }
        end
    | 0x20 -> t.status <- 0L (* acknowledge *)
    | _ -> ()

let clamp_len t sector len =
  let max_len = Bytes.length t.disk - (sector * sector_size) in
  max 0 (min len max_len)

let poll t ~now raise_irq =
  match t.pending with
  | None -> ()
  | Some p when p.deadline = -1L ->
      t.pending <- Some { p with deadline = Int64.add now t.latency }
  | Some p when Mir_util.Bits.ule p.deadline now ->
      let len = clamp_len t p.sector p.len in
      (if len > 0 && Memory.in_range t.ram p.dma len then
         if p.cmd = 1 then
           (* read: disk -> RAM *)
           Memory.store_bytes t.ram p.dma
             (Bytes.sub t.disk (p.sector * sector_size) len)
         else
           Bytes.blit
             (Memory.load_bytes t.ram p.dma len)
             0 t.disk (p.sector * sector_size) len);
      t.pending <- None;
      t.status <- 2L;
      raise_irq t.irq
  | Some _ -> ()

let write_sector t n b =
  Bytes.blit b 0 t.disk (n * sector_size) (min (Bytes.length b) sector_size)

let read_sector t n = Bytes.sub t.disk (n * sector_size) sector_size

let device t ~base =
  {
    Device.name = "blockdev";
    base;
    size = 0x1000L;
    load = load t;
    store = store t;
  }
