module Bits = Mir_util.Bits

type t = {
  msip : bool array;
  mtimecmp : int64 array;
  mutable mtime : int64;
}

let default_base = 0x2000000L
let window_size = 0x10000L

let create ~nharts =
  {
    msip = Array.make nharts false;
    (* Reset mtimecmp to the maximum so no timer fires until armed. *)
    mtimecmp = Array.make nharts (-1L);
    mtime = 0L;
  }

let nharts t = Array.length t.msip

type state = {
  s_msip : bool array;
  s_mtimecmp : int64 array;
  s_mtime : int64;
}

let save_state t =
  {
    s_msip = Array.copy t.msip;
    s_mtimecmp = Array.copy t.mtimecmp;
    s_mtime = t.mtime;
  }

let load_state t s =
  Array.blit s.s_msip 0 t.msip 0 (nharts t);
  Array.blit s.s_mtimecmp 0 t.mtimecmp 0 (nharts t);
  t.mtime <- s.s_mtime

let mtime t = t.mtime
let set_mtime t v = t.mtime <- v
let advance t d = t.mtime <- Int64.add t.mtime d
let mtimecmp t h = t.mtimecmp.(h)
let set_mtimecmp t h v = t.mtimecmp.(h) <- v
let msip t h = t.msip.(h)
let set_msip t h b = t.msip.(h) <- b
let mtip t h = Bits.ule t.mtimecmp.(h) t.mtime
let msip_offset h = Int64.of_int (4 * h)
let mtimecmp_offset h = Int64.of_int (0x4000 + (8 * h))
let mtime_offset = 0xBFF8L

let load t off size =
  let n = nharts t in
  let off_i = Int64.to_int off in
  if off_i < 4 * n && size = 4 then
    if t.msip.(off_i / 4) then 1L else 0L
  else if off_i >= 0x4000 && off_i < 0x4000 + (8 * n) then begin
    let h = (off_i - 0x4000) / 8 in
    match size with
    | 8 -> t.mtimecmp.(h)
    | 4 ->
        if off_i land 4 = 0 then Int64.logand t.mtimecmp.(h) 0xFFFFFFFFL
        else Int64.shift_right_logical t.mtimecmp.(h) 32
    | _ -> 0L
  end
  else if off = mtime_offset && size = 8 then t.mtime
  else if off_i = Int64.to_int mtime_offset && size = 4 then
    Int64.logand t.mtime 0xFFFFFFFFL
  else if off_i = Int64.to_int mtime_offset + 4 && size = 4 then
    Int64.shift_right_logical t.mtime 32
  else 0L

let store t off size v =
  let n = nharts t in
  let off_i = Int64.to_int off in
  if off_i < 4 * n && size = 4 then t.msip.(off_i / 4) <- Int64.logand v 1L <> 0L
  else if off_i >= 0x4000 && off_i < 0x4000 + (8 * n) then begin
    let h = (off_i - 0x4000) / 8 in
    match size with
    | 8 -> t.mtimecmp.(h) <- v
    | 4 ->
        let old = t.mtimecmp.(h) in
        t.mtimecmp.(h) <-
          (if off_i land 4 = 0 then
             Int64.logor
               (Int64.logand old 0xFFFFFFFF00000000L)
               (Int64.logand v 0xFFFFFFFFL)
           else
             Int64.logor
               (Int64.logand old 0xFFFFFFFFL)
               (Int64.shift_left v 32))
    | _ -> ()
  end
  else if off = mtime_offset && size = 8 then t.mtime <- v

let device t ~base =
  {
    Device.name = "clint";
    base;
    size = window_size;
    load = load t;
    store = store t;
  }
