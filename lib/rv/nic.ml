let default_base = 0x10002000L

type t = {
  ram : Memory.t;
  rx : bytes Queue.t;
  tx : bytes Queue.t;
  irq : int;
  mutable rx_addr : int64;
  mutable tx_addr : int64;
  mutable tx_len : int64;
}

let create ~ram ~irq =
  { ram; rx = Queue.create (); tx = Queue.create (); irq;
    rx_addr = 0L; tx_addr = 0L; tx_len = 0L }

type state = {
  s_rx : bytes list;
  s_tx : bytes list;
  s_rx_addr : int64;
  s_tx_addr : int64;
  s_tx_len : int64;
}

let save_state t =
  {
    s_rx = List.of_seq (Queue.to_seq t.rx);
    s_tx = List.of_seq (Queue.to_seq t.tx);
    s_rx_addr = t.rx_addr;
    s_tx_addr = t.tx_addr;
    s_tx_len = t.tx_len;
  }

let load_state t s =
  Queue.clear t.rx;
  List.iter (fun p -> Queue.add p t.rx) s.s_rx;
  Queue.clear t.tx;
  List.iter (fun p -> Queue.add p t.tx) s.s_tx;
  t.rx_addr <- s.s_rx_addr;
  t.tx_addr <- s.s_tx_addr;
  t.tx_len <- s.s_tx_len

let inject_rx t pkt = Queue.add pkt t.rx
let rx_pending t = Queue.length t.rx
let take_tx t = if Queue.is_empty t.tx then None else Some (Queue.pop t.tx)
let irq_line t = not (Queue.is_empty t.rx)
let irq t = t.irq

let load t off size =
  if size <> 8 then 0L
  else
    match Int64.to_int off with
    | 0x00 ->
        if Queue.is_empty t.rx then 0L
        else Int64.of_int (Bytes.length (Queue.peek t.rx))
    | 0x08 -> t.rx_addr
    | 0x18 -> t.tx_addr
    | 0x20 -> t.tx_len
    | _ -> 0L

let store t off size v =
  if size <> 8 then ()
  else
    match Int64.to_int off with
    | 0x08 -> t.rx_addr <- v
    | 0x10 ->
        if v = 1L && not (Queue.is_empty t.rx) then begin
          let pkt = Queue.pop t.rx in
          if Memory.in_range t.ram t.rx_addr (Bytes.length pkt) then
            Memory.store_bytes t.ram t.rx_addr pkt
        end
    | 0x18 -> t.tx_addr <- v
    | 0x20 -> t.tx_len <- v
    | 0x28 ->
        if v = 1L then begin
          let len = Int64.to_int t.tx_len in
          if len >= 0 && Memory.in_range t.ram t.tx_addr len then
            Queue.add (Memory.load_bytes t.ram t.tx_addr len) t.tx
        end
    | _ -> ()

let device t ~base =
  {
    Device.name = "nic";
    base;
    size = 0x1000L;
    load = load t;
    store = store t;
  }
