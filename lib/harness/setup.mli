(** System assembly: platform + firmware + kernel (+ Miralis).

    Builds the three configurations the evaluation compares
    throughout: Native (firmware in real M-mode — the baseline),
    Virtualized (firmware in vM-mode under Miralis with fast-path
    offload) and Virtualized_no_offload (the ablation). The same
    unmodified firmware image is used in all three. *)

type mode = Native | Virtualized | Virtualized_no_offload

val mode_name : mode -> string

type system = {
  platform : Mir_platform.Platform.t;
  mode : mode;
  machine : Mir_rv.Machine.t;
  miralis : Miralis.Monitor.t option;
}

val create :
  ?policy:Miralis.Policy.t ->
  ?inject_bug:Miralis.Config.bug ->
  ?firmware:(nharts:int -> kernel_entry:int64 -> bytes * (string * int64) list) ->
  Mir_platform.Platform.t ->
  mode ->
  system
(** Build the machine, load MiniSBI (or the given firmware image
    builder) and the interpreter kernel, and boot. *)

val run_scripts :
  ?max_instrs:int64 -> system -> Mir_kernel.Script.op list list -> unit
(** Write one script per hart (harts beyond the list get [Halt]) and
    run to power-off or the instruction budget. *)

(** {2 Tracing (record / replay / checkpoint)} *)

val attach_tracer : system -> sink:(Mir_trace.Event.t -> unit) -> Mir_trace.Tracer.t
(** Install trace hooks on the machine and, when present, the monitor.
    Attach after {!create} so boot is outside the recorded window (a
    replayed system attaches at the same point). *)

val attach_recorder :
  ?capacity:int -> system -> Mir_trace.Recorder.t * Mir_trace.Tracer.t

val attach_replay :
  ?seed:int64 -> system -> events:Mir_trace.Event.t list ->
  Mir_trace.Replay.t * Mir_trace.Tracer.t
(** Divergence reports name the run's root PRNG seed (the monitor's
    configured seed unless overridden), so a failure is one-command
    reproducible. *)

val checkpoint_manager :
  ?events_seen:(unit -> int) -> system -> every:int64 ->
  Mir_trace.Snapshot.manager
(** Periodic checkpoints; monitor state is captured via
    [Miralis.Monitor.save] when the system runs under the VFM. *)

val state_hash : system -> int64
(** Digest of the full architectural state ({!Mir_trace.Snapshot.hash}). *)

val hart0_cycles : system -> int
val stats : system -> Miralis.Vfm_stats.t option
val uart_output : system -> string

val seconds : system -> float
(** Simulated wall-clock time on hart 0. *)
