module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Script = Mir_kernel.Script

type mode = Native | Virtualized | Virtualized_no_offload

let mode_name = function
  | Native -> "Native"
  | Virtualized -> "Miralis"
  | Virtualized_no_offload -> "Miralis no-offload"

type system = {
  platform : Mir_platform.Platform.t;
  mode : mode;
  machine : Mir_rv.Machine.t;
  miralis : Miralis.Monitor.t option;
}

let create ?policy ?inject_bug ?(firmware = Mir_firmware.Minisbi.image)
    (platform : Mir_platform.Platform.t) mode =
  let m = Machine.create platform.Mir_platform.Platform.machine in
  (* storage and network are part of every system build: ~13 us per
     512-byte sector at the default clocking, matching low-end eMMC *)
  ignore (Machine.attach_blockdev m ~capacity_sectors:4096 ~latency_ticks:200L);
  ignore (Machine.attach_nic m);
  let nharts = platform.Mir_platform.Platform.machine.Machine.nharts in
  let kernel_entry = Mir_kernel.Interp_kernel.entry in
  let fw_image, _ = firmware ~nharts ~kernel_entry in
  Machine.load_program m Mir_firmware.Layout.fw_base fw_image;
  let kimage, _ = Mir_kernel.Interp_kernel.image () in
  Machine.load_program m kernel_entry kimage;
  match mode with
  | Native ->
      Array.iter
        (fun h ->
          Hart.reset h ~pc:Mir_firmware.Layout.fw_base;
          Hart.set h 10 (Int64.of_int h.Hart.id);
          Hart.set h 11 0L)
        m.Machine.harts;
      { platform; mode; machine = m; miralis = None }
  | Virtualized | Virtualized_no_offload ->
      let config =
        Miralis.Config.make
          ~offload:(mode = Virtualized)
          ~allowed_custom_csrs:platform.Mir_platform.Platform.custom_csrs
          ~cost:platform.Mir_platform.Platform.cost ?inject_bug
          ~machine:platform.Mir_platform.Platform.machine ()
      in
      let mir = Miralis.Monitor.create ?policy config m in
      Miralis.Monitor.boot mir ~fw_entry:Mir_firmware.Layout.fw_base;
      { platform; mode; machine = m; miralis = Some mir }

let run_scripts ?(max_instrs = 500_000_000L) system scripts =
  let nharts = Array.length system.machine.Machine.harts in
  for h = 0 to nharts - 1 do
    let script =
      match List.nth_opt scripts h with
      | Some s -> s
      | None -> [ Script.Halt ]
    in
    Script.write system.machine ~hart:h script
  done;
  Machine.run ~max_instrs system.machine

(* ------------------------------------------------------------------ *)
(* Tracing: record, replay, checkpoint (lib/trace)                     *)
(* ------------------------------------------------------------------ *)

let attach_tracer system ~sink =
  let tr = Mir_trace.Tracer.attach system.machine ~sink in
  (match system.miralis with
  | Some m -> m.Miralis.Monitor.tracer <- Some tr
  | None -> ());
  tr

let attach_recorder ?capacity system =
  let recorder = Mir_trace.Recorder.create ?capacity () in
  let tracer =
    attach_tracer system ~sink:(Mir_trace.Recorder.push recorder)
  in
  (recorder, tracer)

let attach_replay ?seed system ~events =
  (* Divergence reports carry the run's root PRNG seed so a failure is
     reproducible with a single --seed flag; default to the monitor's
     configured seed when the caller doesn't override it. *)
  let seed =
    match (seed, system.miralis) with
    | (Some _ as s), _ -> s
    | None, Some m -> Some m.Miralis.Monitor.config.Miralis.Config.seed
    | None, None -> None
  in
  let replay =
    Mir_trace.Replay.create ?seed ~machine:system.machine ~events ()
  in
  let tracer = attach_tracer system ~sink:(Mir_trace.Replay.feed replay) in
  (replay, tracer)

let checkpoint_manager ?events_seen system ~every =
  let extra_save =
    Option.map (fun m () -> Miralis.Monitor.save m) system.miralis
  in
  Mir_trace.Snapshot.manage ?extra_save ?events_seen ~every system.machine

let state_hash system = Mir_trace.Snapshot.hash system.machine

let hart0_cycles system = system.machine.Machine.harts.(0).Hart.cycles

let stats system =
  Option.map
    (fun m ->
      Miralis.Monitor.refresh_tlb_stats m;
      m.Miralis.Monitor.stats)
    system.miralis

let uart_output system = Mir_rv.Uart.output system.machine.Machine.uart

let seconds system =
  Mir_platform.Platform.seconds_of_cycles system.platform
    (Int64.of_int (hart0_cycles system))
