module Instr = Mir_rv.Instr
module Csr_addr = Mir_rv.Csr_addr

(* Hand-designed conformance vectors: short privileged-ISA streams
   targeting the emulation corners the paper's verification work (and
   PR-1's bug classes) care about — PMP reconfiguration, trap
   delegation flips, MPP/MPIE shuffles across xRET, WFI vs interrupt
   lines, and out-of-range vPMP probes. Register-sourced CSR writes
   take their values from the vector's seeded initial state, so each
   vector is deterministic without needing value literals.

   These are emitted to test/vectors/ as JSONL (see [emit]) and run
   under `dune runtest` plus scripts/ci.sh as a regression suite. *)

let csrw ?(rd = 0) csr src = Input.Op_instr (Instr.Csr { op = Instr.Csrrw; rd; src; csr })
let csrs ?(rd = 0) csr src = Input.Op_instr (Instr.Csr { op = Instr.Csrrs; rd; src; csr })
let csrc ?(rd = 0) csr src = Input.Op_instr (Instr.Csr { op = Instr.Csrrc; rd; src; csr })
let reg r = Instr.Reg r
let imm i = Instr.Imm i
let mret = Input.Op_instr Instr.Mret
let sret = Input.Op_instr Instr.Sret
let wfi = Input.Op_instr Instr.Wfi
let ecall = Input.Op_instr Instr.Ecall
let ebreak = Input.Op_instr Instr.Ebreak
let sfence = Input.Op_instr (Instr.Sfence_vma (0, 0))
let lines ?(meip = false) ~mtip ~msip () = Input.Op_lines { mtip; msip; meip }

let v seed ops = { Input.seed; ops }

let builtin =
  [
    (* PMP: rewrite addr then cfg, read both back, fire an mret so the
       new filter governs the next fetch. *)
    ( "pmp-reconfig",
      v 0x1001L
        [
          csrw (Csr_addr.pmpaddr 0) (reg 10);
          csrw (Csr_addr.pmpaddr 1) (reg 11);
          csrw (Csr_addr.pmpcfg 0) (reg 12);
          csrs ~rd:5 (Csr_addr.pmpcfg 0) (imm 0);
          csrs ~rd:6 (Csr_addr.pmpaddr 0) (imm 0);
          mret;
        ] );
    (* PMP: TOR/NAPOT bit sculpting with immediates (A-field = bits
       3..4 of each cfg byte) and a locked-looking read-back. *)
    ( "pmp-cfg-bits",
      v 0x1002L
        [
          csrw (Csr_addr.pmpaddr 0) (imm 31);
          csrw (Csr_addr.pmpcfg 0) (imm 0x0F);
          csrc (Csr_addr.pmpcfg 0) (imm 0x08);
          csrs (Csr_addr.pmpcfg 0) (imm 0x18);
          csrs ~rd:7 (Csr_addr.pmpcfg 0) (imm 0);
        ] );
    (* vPMP overrun probes: the last virtual entries plus two past the
       end; both sides must agree on which writes stick. *)
    ( "pmp-out-of-range",
      v 0x1003L
        [
          csrw (Csr_addr.pmpaddr 6) (reg 10);
          csrw (Csr_addr.pmpaddr 7) (reg 11);
          csrw (Csr_addr.pmpaddr 8) (reg 12);
          csrs ~rd:5 (Csr_addr.pmpaddr 7) (imm 0);
          csrs ~rd:6 (Csr_addr.pmpaddr 8) (imm 0);
          csrw (Csr_addr.pmpcfg 2) (reg 28);
        ] );
    (* Delegation: flip medeleg/mideleg then take an ecall, so trap
       routing depends on the just-written delegation masks. *)
    ( "deleg-ecall",
      v 0x1004L
        [
          csrw Csr_addr.medeleg (reg 10);
          csrw Csr_addr.mideleg (reg 11);
          ecall;
          csrc Csr_addr.medeleg (imm 0x1F);
          ecall;
          ebreak;
        ] );
    (* xRET dance: sculpt MPP/MPIE/SPP via mstatus then mret/sret;
       catches PR-1's Mpp_not_legalized / Mret_skips_mpie classes. *)
    ( "mret-mpp-dance",
      v 0x1005L
        [
          csrw Csr_addr.mstatus (reg 10);
          mret;
          csrs ~rd:5 Csr_addr.mstatus (imm 0);
          csrw Csr_addr.mepc (reg 11);
          mret;
          csrw Csr_addr.sstatus (reg 12);
          sret;
        ] );
    (* WFI against moving interrupt lines: resume conditions must
       match on both sides, including the MIE-gated delivery. *)
    ( "wfi-lines",
      v 0x1006L
        [
          lines ~mtip:false ~msip:false ();
          wfi;
          csrw Csr_addr.mie (reg 10);
          lines ~mtip:true ~msip:false ();
          wfi;
          lines ~mtip:false ~msip:true ();
          csrs ~rd:5 Csr_addr.mip (imm 0);
          wfi;
        ] );
    (* Interrupt priority: both timer and software pending with MIE
       on — delivery order is architecturally fixed (MTI before MSI
       only by priority rules; Interrupt_priority_swapped flips it). *)
    ( "irq-priority",
      v 0x1007L
        [
          csrs Csr_addr.mie (imm 0x8);
          csrs Csr_addr.mie (reg 10);
          lines ~meip:true ~mtip:true ~msip:true ();
          csrs Csr_addr.mstatus (imm 0x8);
          csrs ~rd:5 Csr_addr.mip (imm 0);
          csrc Csr_addr.mie (imm 0x8);
          lines ~mtip:false ~msip:false ();
        ] );
    (* Translation state: satp writes plus sfence and an sret into the
       just-programmed address space. *)
    ( "satp-sfence",
      v 0x1008L
        [
          csrw Csr_addr.satp (reg 10);
          sfence;
          csrs ~rd:5 Csr_addr.satp (imm 0);
          csrw Csr_addr.sepc (reg 11);
          sret;
          csrw Csr_addr.satp (imm 0);
        ] );
    (* Read-only and counter CSRs: writes must trap identically,
       reads must expose the same virtualized values. *)
    ( "counters-ro",
      v 0x1009L
        [
          csrs ~rd:5 Csr_addr.mhartid (imm 0);
          csrw Csr_addr.mvendorid (reg 10);
          csrs ~rd:6 Csr_addr.mcycle (imm 0);
          csrw Csr_addr.mcycle (reg 11);
          csrw Csr_addr.mcountinhibit (imm 1);
          csrs ~rd:7 Csr_addr.minstret (imm 0);
        ] );
    (* Unimplemented CSR space: both sides must inject the same
       illegal-instruction trap (0x5c0 is an unallocated M-mode
       address; 0x105 is stvec, legal, as a control). *)
    ( "unimpl-csr",
      v 0x100AL
        [
          csrw 0x5C0 (reg 10);
          csrs ~rd:5 0x5C0 (imm 0);
          csrw Csr_addr.stvec (reg 11);
          csrs ~rd:6 Csr_addr.stvec (imm 0);
          ecall;
        ] );
  ]

let emit ~dir =
  Corpus.ensure_dir dir;
  List.map
    (fun (name, input) ->
      let path = Filename.concat dir (name ^ ".jsonl") in
      Input.save input ~path;
      path)
    builtin
