module Instr = Mir_rv.Instr

(* Divergence minimization: truncate at the diverging op, ddmin-style
   chunk removal, then per-op simplification. Every candidate is
   re-executed; a candidate is kept only if it still diverges, so the
   result is always a genuine failing input. *)

let take n ops = List.filteri (fun i _ -> i < n) ops
let remove_span ops i len = List.filteri (fun j _ -> j < i || j >= i + len) ops
let replace ops i op = List.mapi (fun j o -> if j = i then op else o) ops

let still_fails exec input = input.Input.ops <> [] && Exec.diverges exec input

(* Remove chunks of decreasing size, restarting the scan after every
   successful removal (classic ddmin simplified to a greedy pass). *)
let chunk_pass exec input =
  let rec at_size input chunk =
    if chunk = 0 then input
    else
      let rec scan input i =
        let n = List.length input.Input.ops in
        if i >= n then at_size input (chunk / 2)
        else
          let cand =
            { input with Input.ops = remove_span input.Input.ops i chunk }
          in
          if still_fails exec cand then scan cand i
          else scan input (i + chunk)
      in
      scan input chunk
  in
  let n = List.length input.Input.ops in
  at_size input (max 1 (n / 2))

(* Candidate simplifications of one op, most aggressive first. *)
let simpler_ops = function
  | Input.Op_instr (Instr.Csr { op; rd; src; csr }) ->
      let cands = ref [] in
      if rd <> 0 then
        cands := Input.Op_instr (Instr.Csr { op; rd = 0; src; csr }) :: !cands;
      (match src with
      | Instr.Imm 0 -> ()
      | _ ->
          cands :=
            Input.Op_instr (Instr.Csr { op; rd; src = Instr.Imm 0; csr })
            :: !cands);
      List.rev !cands
  | Input.Op_instr (Instr.Sfence_vma (rs1, rs2)) ->
      if rs1 <> 0 || rs2 <> 0 then
        [ Input.Op_instr (Instr.Sfence_vma (0, 0)) ]
      else []
  | Input.Op_lines { mtip; msip; meip } ->
      if mtip || msip || meip then
        [ Input.Op_lines { mtip = false; msip = false; meip = false } ]
      else []
  | Input.Op_instr _ -> []

let simplify_pass exec input =
  let rec per_index input i =
    if i >= List.length input.Input.ops then input
    else
      let op = List.nth input.Input.ops i in
      let rec try_cands = function
        | [] -> per_index input (i + 1)
        | cand :: rest ->
            let cand_input =
              { input with Input.ops = replace input.Input.ops i cand }
            in
            if still_fails exec cand_input then per_index cand_input (i + 1)
            else try_cands rest
      in
      try_cands (simpler_ops op)
  in
  per_index input 0

let shrink exec (input : Input.t) =
  match (Exec.run exec input).Exec.divergence with
  | None -> input
  | Some (idx, _) ->
      let truncated = { input with Input.ops = take (idx + 1) input.Input.ops } in
      let start = if still_fails exec truncated then truncated else input in
      simplify_pass exec (chunk_pass exec start)
