module Instr = Mir_rv.Instr

(* Divergence minimization: truncate at the diverging op, ddmin-style
   chunk removal, then per-op simplification. Every candidate is
   re-executed; a candidate is kept only if it still diverges, so the
   result is always a genuine failing input. *)

let take n ops = List.filteri (fun i _ -> i < n) ops
let remove_span ops i len = List.filteri (fun j _ -> j < i || j >= i + len) ops
let replace ops i op = List.mapi (fun j o -> if j = i then op else o) ops

let still_fails exec input = input.Input.ops <> [] && Exec.diverges exec input

(* Generic ddmin over a list: remove chunks of decreasing size,
   restarting the scan after every successful removal (classic ddmin
   simplified to a greedy pass). Every candidate is validated by
   [still_fails], so the result is a genuine failing input. The scan
   starts at index [chunk], so the head element is always retained —
   for op streams that is the seed of the divergence window, for the
   schedule explorer it is the initial hart pick. *)
let ddmin ~still_fails items =
  let rec at_size items chunk =
    if chunk = 0 then items
    else
      let rec scan items i =
        let n = List.length items in
        if i >= n then at_size items (chunk / 2)
        else
          let cand = remove_span items i chunk in
          if still_fails cand then scan cand i else scan items (i + chunk)
      in
      scan items chunk
  in
  at_size items (max 1 (List.length items / 2))

let chunk_pass exec input =
  let ops =
    ddmin
      ~still_fails:(fun ops -> still_fails exec { input with Input.ops })
      input.Input.ops
  in
  { input with Input.ops }

(* Candidate simplifications of one op, most aggressive first. *)
let simpler_ops = function
  | Input.Op_instr (Instr.Csr { op; rd; src; csr }) ->
      let cands = ref [] in
      if rd <> 0 then
        cands := Input.Op_instr (Instr.Csr { op; rd = 0; src; csr }) :: !cands;
      (match src with
      | Instr.Imm 0 -> ()
      | _ ->
          cands :=
            Input.Op_instr (Instr.Csr { op; rd; src = Instr.Imm 0; csr })
            :: !cands);
      List.rev !cands
  | Input.Op_instr (Instr.Sfence_vma (rs1, rs2)) ->
      if rs1 <> 0 || rs2 <> 0 then
        [ Input.Op_instr (Instr.Sfence_vma (0, 0)) ]
      else []
  | Input.Op_lines { mtip; msip; meip } ->
      if mtip || msip || meip then
        [ Input.Op_lines { mtip = false; msip = false; meip = false } ]
      else []
  | Input.Op_instr _ -> []

let simplify_pass exec input =
  let rec per_index input i =
    if i >= List.length input.Input.ops then input
    else
      let op = List.nth input.Input.ops i in
      let rec try_cands = function
        | [] -> per_index input (i + 1)
        | cand :: rest ->
            let cand_input =
              { input with Input.ops = replace input.Input.ops i cand }
            in
            if still_fails exec cand_input then per_index cand_input (i + 1)
            else try_cands rest
      in
      try_cands (simpler_ops op)
  in
  per_index input 0

let shrink exec (input : Input.t) =
  match (Exec.run exec input).Exec.divergence with
  | None -> input
  | Some (idx, _) ->
      let truncated = { input with Input.ops = take (idx + 1) input.Input.ops } in
      let start = if still_fails exec truncated then truncated else input in
      simplify_pass exec (chunk_pass exec start)
