module Instr = Mir_rv.Instr
module Encode = Mir_rv.Encode
module Decode = Mir_rv.Decode

(* A fuzz input is a self-contained, replayable test vector: a state
   seed (the initial architectural sample is regenerated from it, so
   vectors stay one-line small) plus a stream of operations. *)

type op =
  | Op_instr of Instr.t  (** one privileged instruction *)
  | Op_lines of { mtip : bool; msip : bool; meip : bool }
      (** drive the timer/software/external interrupt lines *)

type t = { seed : int64; ops : op list }

let length t = List.length t.ops

(* FNV-1a content hash: corpus file names and the determinism tests
   both key on it, so it must depend only on the input's content. *)
let hash t =
  let h = ref 0xCBF29CE484222325L in
  let mix v = h := Int64.mul (Int64.logxor !h v) 0x100000001B3L in
  mix t.seed;
  List.iter
    (fun op ->
      match op with
      | Op_instr i -> mix (Int64.of_int (Encode.encode i))
      | Op_lines { mtip; msip; meip } ->
          mix
            (Int64.logor 0x4C00000000000000L
               (Int64.of_int
                  ((if meip then 4 else 0)
                  lor (if mtip then 2 else 0)
                  lor if msip then 1 else 0))))
    t.ops;
  !h

let equal a b =
  a.seed = b.seed
  && List.length a.ops = List.length b.ops
  && List.for_all2
       (fun x y ->
         match (x, y) with
         | Op_instr i, Op_instr j -> Encode.encode i = Encode.encode j
         | ( Op_lines { mtip = ta; msip = sa; meip = ea },
             Op_lines { mtip = tb; msip = sb; meip = eb } ) ->
             ta = tb && sa = sb && ea = eb
         | _ -> false)
       a.ops b.ops

let pp_op fmt = function
  | Op_instr i -> Format.fprintf fmt "%s" (Instr.to_string i)
  | Op_lines { mtip; msip; meip } ->
      Format.fprintf fmt "lines mtip=%b msip=%b meip=%b" mtip msip meip

let pp fmt t =
  Format.fprintf fmt "seed=0x%Lx (%d ops)" t.seed (length t);
  List.iter (fun op -> Format.fprintf fmt "@\n  %a" pp_op op) t.ops

(* ------------------------------------------------------------------ *)
(* JSONL serialization                                                 *)
(* ------------------------------------------------------------------ *)

(* One flat JSON object per line: a header carrying the seed, then one
   line per operation. Instructions travel as their 32-bit encoding,
   so the decoder is the single source of truth for what a vector
   means. The parser below is the exact inverse, not general JSON. *)

let to_jsonl t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "{\"fuzz\":1,\"seed\":\"0x%Lx\"}\n" t.seed);
  List.iter
    (fun op ->
      (match op with
      | Op_instr i ->
          Buffer.add_string buf
            (Printf.sprintf "{\"op\":\"i\",\"bits\":\"0x%x\"}"
               (Encode.encode i))
      | Op_lines { mtip; msip; meip } ->
          Buffer.add_string buf
            (Printf.sprintf "{\"op\":\"l\",\"mtip\":%b,\"msip\":%b,\"meip\":%b}"
               mtip msip meip));
      Buffer.add_char buf '\n')
    t.ops;
  Buffer.contents buf

(* Flat-object parser: {"key":value,...} with quoted-string, bool and
   bare-int values (same shape as lib/trace's event lines). *)
let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = Error (Printf.sprintf "%s at %d in %S" msg !pos line) in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if !pos < n && line.[!pos] = c then begin incr pos; true end else false
  in
  let parse_string () =
    let start = !pos in
    while !pos < n && line.[!pos] <> '"' do incr pos done;
    if !pos >= n then None
    else begin
      let s = String.sub line start (!pos - start) in
      incr pos;
      Some s
    end
  in
  let parse_scalar () =
    skip_ws ();
    if !pos < n && line.[!pos] = '"' then begin
      incr pos;
      parse_string ()
    end
    else begin
      let start = !pos in
      while
        !pos < n
        && (match line.[!pos] with
           | 'a' .. 'z' | '0' .. '9' | '-' -> true
           | _ -> false)
      do
        incr pos
      done;
      if !pos = start then None else Some (String.sub line start (!pos - start))
    end
  in
  if not (expect '{') then fail "expected '{'"
  else begin
    let fields = ref [] in
    let ok = ref true and err = ref None in
    let stop = ref (expect '}') in
    while (not !stop) && !ok do
      (match
         (skip_ws ();
          if !pos < n && line.[!pos] = '"' then begin
            incr pos;
            parse_string ()
          end
          else None)
       with
      | None ->
          ok := false;
          err := Some "expected key"
      | Some key ->
          if not (expect ':') then begin
            ok := false;
            err := Some "expected ':'"
          end
          else begin
            match parse_scalar () with
            | None ->
                ok := false;
                err := Some "expected value"
            | Some v ->
                fields := (key, v) :: !fields;
                if expect ',' then ()
                else if expect '}' then stop := true
                else begin
                  ok := false;
                  err := Some "expected ',' or '}'"
                end
          end);
      ()
    done;
    if !ok then Ok (List.rev !fields)
    else fail (Option.value !err ~default:"parse error")
  end

let ( let* ) = Result.bind

let field fields key =
  match List.assoc_opt key fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let bool_field fields key =
  let* v = field fields key in
  match v with
  | "true" -> Ok true
  | "false" -> Ok false
  | _ -> Error (Printf.sprintf "field %S: bad bool %S" key v)

let i64_field fields key =
  let* v = field fields key in
  match Int64.of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S: bad int64 %S" key v)

let op_of_line line =
  let* fields = parse_fields line in
  let* op = field fields "op" in
  match op with
  | "i" ->
      let* bits = i64_field fields "bits" in
      let bits = Int64.to_int (Int64.logand bits 0xFFFFFFFFL) in
      (match Decode.decode bits with
      | Some i -> Ok (Op_instr i)
      | None -> Error (Printf.sprintf "bits 0x%x do not decode" bits))
  | "l" ->
      let* mtip = bool_field fields "mtip" in
      let* msip = bool_field fields "msip" in
      let* meip = bool_field fields "meip" in
      Ok (Op_lines { mtip; msip; meip })
  | other -> Error (Printf.sprintf "unknown op kind %S" other)

let of_jsonl s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty input"
  | header :: rest ->
      let* fields = parse_fields header in
      let* _ = field fields "fuzz" in
      let* seed = i64_field fields "seed" in
      let* ops =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            let* op = op_of_line line in
            Ok (op :: acc))
          (Ok []) rest
      in
      Ok { seed; ops = List.rev ops }

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl t))

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_jsonl s
  | exception Sys_error msg -> Error msg
