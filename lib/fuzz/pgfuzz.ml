(* Paging op class for the differential fuzzer.

   The PR-2 fuzzer checks the VFM emulator against the reference
   machine; this class instead checks the machine against itself — the
   software-TLB configuration against the raw-walker configuration —
   over generated streams of page-table edits, satp switches, fences,
   SUM/MXR/MPRV flips, PMP reconfigurations, and S/U/M memory probes
   (see [Mir_verif.Pgdiff] for the oracle and the fence discipline).

   Generation is deterministic from the root seed via the same
   config-rooted PRNG streams as everything else, and a coarse
   edge map (op class x outcome) tracks behavioural coverage so the
   smoke run can show it actually exercised faults, PMP denials, and
   both address spaces. *)

module Prng = Mir_util.Prng
module Pgdiff = Mir_verif.Pgdiff
module Priv = Mir_rv.Priv
module Cause = Mir_rv.Cause

(* ------------------------------------------------------------------ *)
(* Op-stream generation                                                *)
(* ------------------------------------------------------------------ *)

(* PTE low-bit subsets worth generating: valid RWX/U/A/D combinations,
   plus a few architecturally-invalid ones (W-without-R, non-leaf bits)
   that must fault identically on both sides. *)
let perm_patterns =
  [|
    0xCF (* V R W X A D *);
    0xDF (* + U *);
    0x4B (* V R X A: no D, no W *);
    0x5B (* V R X U A *);
    0x43 (* V R A: read-only *);
    0x53 (* V R U A *);
    0x47 (* V R W A: D clear — first store promotes *);
    0x57 (* V R W U A *);
    0x03 (* V R: A clear — walker sets it *);
    0x07 (* V R W: A/D clear *);
    0x05 (* V W: reserved (W without R) — must fault *);
    0x01 (* V only: non-leaf pointer shape in an L0 slot — fault *);
    0xC9 (* V X A D: execute-only (MXR-sensitive) *);
    0xD9 (* V X U A D: user execute-only *);
  |]

let gen_vpn prng =
  (* mostly the mapped low windows, sometimes unmapped L1 territory *)
  if Prng.int_below prng 8 = 0 then 1024 + Prng.int_below prng 1024
  else Prng.int_below prng 1024

let gen_vaddr prng =
  match Prng.int_below prng 10 with
  | 0 | 1 ->
      (* identity gigapage window: superpage translations; offsets can
         reach the page tables themselves or fall off the end of RAM *)
      Int64.add 0x80000000L
        (Int64.of_int (Prng.int_below prng ((512 * 1024) + 0x2000)))
  | 2 ->
      (* non-canonical Sv39: must page-fault on both sides *)
      Int64.logor 0x4000000000000L
        (Int64.of_int (Prng.int_below prng 0x1000))
  | _ ->
      (* the low 4 MiB paged window, plus unmapped territory above *)
      Int64.of_int
        ((gen_vpn prng lsl 12) lor Prng.int_below prng 0x1000)

let sizes = [| 1; 2; 4; 8 |]

let gen_access prng =
  let kind =
    match Prng.int_below prng 5 with
    | 0 | 1 -> Pgdiff.Aload
    | 2 | 3 -> Pgdiff.Astore
    | _ -> Pgdiff.Afetch
  in
  let size = Prng.choose prng sizes in
  let vaddr = gen_vaddr prng in
  (* align most accesses (misaligned ones trap before translating) *)
  let vaddr =
    if Prng.int_below prng 8 = 0 then vaddr
    else Int64.logand vaddr (Int64.lognot (Int64.of_int (size - 1)))
  in
  Pgdiff.Access { kind; vaddr; size; value = Prng.next prng }

let gen_op prng : Pgdiff.op =
  match Prng.int_below prng 100 with
  | n when n < 45 -> gen_access prng
  | n when n < 62 ->
      Pgdiff.Map
        {
          root = Prng.int_below prng 2;
          vpn = Prng.int_below prng 1024;
          page = Prng.int_below prng Pgdiff.pool_pages;
          perms = Prng.choose prng perm_patterns;
          fence_all = Prng.int_below prng 3 = 0;
        }
  | n when n < 68 ->
      Pgdiff.Unmap
        {
          root = Prng.int_below prng 2;
          vpn = Prng.int_below prng 1024;
          fence_all = Prng.int_below prng 3 = 0;
        }
  | n when n < 76 -> Pgdiff.Satp_switch (Prng.int_below prng 3)
  | n when n < 80 -> Pgdiff.Sum_toggle
  | n when n < 83 -> Pgdiff.Mxr_toggle
  | n when n < 86 -> Pgdiff.Mprv_toggle
  | n when n < 92 ->
      Pgdiff.Priv_set
        (match Prng.int_below prng 5 with
        | 0 -> Priv.U
        | 1 -> Priv.M
        | _ -> Priv.S)
  | n when n < 98 ->
      let npages = 1 lsl Prng.int_below prng 4 in
      Pgdiff.Pmp_set
        {
          slot = Prng.int_below prng 3;
          base_page =
            (let b = Prng.int_below prng (Pgdiff.pool_pages - npages + 1) in
             b land lnot (npages - 1));
          npages;
          perms = 1 + Prng.int_below prng 7 (* at least one of R/W/X *);
        }
  | _ ->
      Pgdiff.Sfence
        {
          vaddr =
            (if Prng.bool prng then None
             else Some (Int64.of_int (gen_vpn prng lsl 12)));
        }

let gen_ops prng =
  let n = 8 + Prng.int_below prng 33 in
  List.init n (fun _ -> gen_op prng)

(* ------------------------------------------------------------------ *)
(* Coverage: op class x outcome class                                  *)
(* ------------------------------------------------------------------ *)

let op_class : Pgdiff.op -> int = function
  | Pgdiff.Access { kind = Pgdiff.Aload; _ } -> 0
  | Pgdiff.Access { kind = Pgdiff.Astore; _ } -> 1
  | Pgdiff.Access { kind = Pgdiff.Afetch; _ } -> 2
  | Pgdiff.Map _ -> 3
  | Pgdiff.Unmap _ -> 4
  | Pgdiff.Sfence _ -> 5
  | Pgdiff.Satp_switch _ -> 6
  | Pgdiff.Sum_toggle -> 7
  | Pgdiff.Mxr_toggle -> 8
  | Pgdiff.Mprv_toggle -> 9
  | Pgdiff.Priv_set _ -> 10
  | Pgdiff.Pmp_set _ -> 11

let outcome_class : Pgdiff.outcome -> int = function
  | Pgdiff.Nothing -> 0
  | Pgdiff.Stored -> 1
  | Pgdiff.Value _ -> 2
  | Pgdiff.Fault e -> 3 + Cause.exc_code e

type result = {
  execs : int;
  seconds : float;
  execs_per_sec : float;
  edges : int;  (** distinct (op class, outcome class) pairs seen *)
  divergence : (int * Pgdiff.divergence) option;
      (** (execution index, divergence) *)
}

let run ?(tlb_entries = 16) ~seed ~max_execs () =
  let prng = Miralis.Config.derive seed "pgfuzz/gen" in
  let pair = Pgdiff.create_pair ~tlb_entries () in
  let edges = Hashtbl.create 256 in
  let on_outcome _i op out =
    Hashtbl.replace edges (op_class op, outcome_class out) ()
  in
  let t0 = Sys.time () in
  let divergence = ref None in
  let execs = ref 0 in
  while !execs < max_execs && !divergence = None do
    let ops = gen_ops prng in
    (match Pgdiff.run_ops pair ~on_outcome ops with
    | Some d -> divergence := Some (!execs, d)
    | None -> ());
    incr execs
  done;
  let seconds = Sys.time () -. t0 in
  {
    execs = !execs;
    seconds;
    execs_per_sec = (if seconds > 0. then float_of_int !execs /. seconds else 0.);
    edges = Hashtbl.length edges;
    divergence = !divergence;
  }
