(* Edge-coverage map driving mutation scheduling.

   An edge is (instruction class x outcome class x trap cause): what
   kind of privileged operation ran, how it resolved (fall-through,
   world switch, injected trap, interrupt preemption, ...) and which
   cause was involved. The map is a fixed array of hit counts;
   AFL-style count bucketing (1, 2, 3, 4-7, 8-15, ...) decides when a
   hotter path still counts as new coverage. *)

let size = 16384

type t = { counts : int array }

let create () = { counts = Array.make size 0 }
let copy t = { counts = Array.copy t.counts }
let clear t = Array.fill t.counts 0 size 0

(* Stable edge index: no hashing beyond a mix so that determinism is
   trivial and collisions are structural, not seed-dependent. *)
let edge ~cls ~tag ~cause = (((cls * 8) + tag) * 32 + cause) mod size

let bucket n =
  if n = 0 then 0
  else if n = 1 then 1
  else if n = 2 then 2
  else if n = 3 then 3
  else if n < 8 then 4
  else if n < 16 then 5
  else if n < 32 then 6
  else if n < 128 then 7
  else 8

(* Record a hit; true iff the edge is new or crossed a count bucket —
   the "interesting input" signal. *)
let add t idx =
  let i = ((idx mod size) + size) mod size in
  let before = t.counts.(i) in
  t.counts.(i) <- before + 1;
  bucket (before + 1) <> bucket before

let hit t idx =
  let i = ((idx mod size) + size) mod size in
  t.counts.(i) > 0

let edges t =
  Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 t.counts

let total t = Array.fold_left ( + ) 0 t.counts
let equal a b = a.counts = b.counts

(* ------------------------------------------------------------------ *)
(* Serialization: sparse "index:count" pairs, one per line after a
   header. Round-trips exactly (tested), so coverage state can be
   persisted next to the corpus.                                       *)
(* ------------------------------------------------------------------ *)

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "coverage %d\n" size);
  Array.iteri
    (fun i c -> if c > 0 then Buffer.add_string buf (Printf.sprintf "%d:%d\n" i c))
    t.counts;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty coverage dump"
  | header :: rest ->
      if header <> Printf.sprintf "coverage %d" size then
        Error (Printf.sprintf "bad coverage header %S" header)
      else begin
        let t = create () in
        let rec go = function
          | [] -> Ok t
          | line :: rest -> begin
              match String.index_opt line ':' with
              | None -> Error (Printf.sprintf "bad coverage line %S" line)
              | Some k -> begin
                  match
                    ( int_of_string_opt (String.sub line 0 k),
                      int_of_string_opt
                        (String.sub line (k + 1) (String.length line - k - 1)) )
                  with
                  | Some i, Some c when i >= 0 && i < size && c > 0 ->
                      t.counts.(i) <- c;
                      go rest
                  | _ -> Error (Printf.sprintf "bad coverage line %S" line)
                end
            end
        in
        go rest
      end
