(** Divergence minimization: truncation at the diverging op, greedy
    ddmin-style chunk removal, then per-op simplification. *)

val ddmin : still_fails:('a list -> bool) -> 'a list -> 'a list
(** Greedy delta-debugging over any list: removes chunks of decreasing
    size, restarting the scan after every successful removal, keeping
    a candidate only when [still_fails] holds of it. The head element
    is always retained. Reused by the schedule explorer to minimize
    failing schedules over their preemption points. *)

val shrink : Exec.t -> Input.t -> Input.t
(** Returns a minimal input that still diverges under [exec] (the
    input itself if it does not diverge). Every removal is validated
    by re-execution, so the result is a genuine failing input no
    larger than the original. *)
