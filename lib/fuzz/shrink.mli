(** Divergence minimization: truncation at the diverging op, greedy
    ddmin-style chunk removal, then per-op simplification. *)

val shrink : Exec.t -> Input.t -> Input.t
(** Returns a minimal input that still diverges under [exec] (the
    input itself if it does not diverge). Every removal is validated
    by re-execution, so the result is a genuine failing input no
    larger than the original. *)
