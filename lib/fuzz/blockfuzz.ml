(* Block-engine differential fuzzer.

   Generates adversarial guest programs for [Mir_verif.Blockdiff]: the
   decoded basic-block engine against the per-instruction interpreter
   over the same lockstep schedule.  Where pgfuzz streams *paging
   operations* at a machine pair, this class streams *code* — the
   block engine's attack surface is program shape, so generation
   leans on exactly the structures the engine optimizes:

     - long pure ALU runs (batched bookkeeping, pc materialization);
     - tight loops and self-branches (tier-1 chains, the resident
       spin loop, irq-staleness arithmetic);
     - branches / jal / jalr with occasionally misaligned targets
       (mid-block traps from the control terminator);
     - loads / stores / AMOs that fault mid-block on wild or
       misaligned addresses;
     - stores into the program's own code window, splicing real
       instruction encodings (physical-side block invalidation);
     - CSR writes that bump the vm-epoch (satp, pmpaddr), fence.i,
       ecall / ebreak / mret (delegate terminators, virtual-side
       invalidation).

   WFI is deliberately not generated: with interrupts masked it
   would idle away the step budget without exercising anything.
   Generation is deterministic from the root seed via the same
   config-rooted PRNG streams as everything else; a coarse edge map
   over block-side segment summaries (pc region x privilege x mcause
   x wfi) shows a campaign actually reached traps, privilege drops
   and out-of-window excursions.  Divergences are shrunk by NOP
   substitution plus segment truncation before being reported, so a
   reproduction vector is close to minimal. *)

module Prng = Mir_util.Prng
module Blockdiff = Mir_verif.Blockdiff
module Instr = Mir_rv.Instr
module Encode = Mir_rv.Encode
module Csr_addr = Mir_rv.Csr_addr
module Priv = Mir_rv.Priv

(* ------------------------------------------------------------------ *)
(* Program generation                                                  *)
(* ------------------------------------------------------------------ *)

(* Destination pool: x10-x15 are Blockdiff's pinned pointers/payloads
   and must never be overwritten, so loads, ALU results and links go
   elsewhere (x29-x31 are trap-handler scratch — legal here, both
   sides clobber them identically). *)
let dst_pool =
  [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 16; 17; 18; 19; 20; 21; 22; 23; 24; 25; 26;
     27; 28; 29; 30; 31 |]

let dst prng = Prng.choose prng dst_pool
let any_reg prng = Prng.int_below prng 32

let alu_ops =
  [| Instr.Add; Instr.Sub; Instr.Sll; Instr.Slt; Instr.Sltu; Instr.Xor;
     Instr.Srl; Instr.Sra; Instr.Or; Instr.And; Instr.Mul; Instr.Mulh;
     Instr.Mulhsu; Instr.Mulhu; Instr.Div; Instr.Divu; Instr.Rem;
     Instr.Remu |]

let alu32_ops =
  [| Instr.Addw; Instr.Subw; Instr.Sllw; Instr.Srlw; Instr.Sraw; Instr.Mulw;
     Instr.Divw; Instr.Divuw; Instr.Remw; Instr.Remuw |]

let imm_ops =
  [| Instr.Addi; Instr.Slti; Instr.Sltiu; Instr.Xori; Instr.Ori; Instr.Andi |]

let branch_ops =
  [| Instr.Beq; Instr.Bne; Instr.Blt; Instr.Bge; Instr.Bltu; Instr.Bgeu |]

let widths = [| Instr.B; Instr.H; Instr.W; Instr.D |]
let width_size = function Instr.B -> 1 | Instr.H -> 2 | Instr.W -> 4 | Instr.D -> 8

let amo_ops =
  [| Instr.Lr; Instr.Sc; Instr.Swap; Instr.Amoadd; Instr.Amoxor;
     Instr.Amoand; Instr.Amoor; Instr.Amomin; Instr.Amomax; Instr.Amominu;
     Instr.Amomaxu |]

(* CSRs generated code may write: scratch space, trap plumbing the
   handler rereads anyway, and the vm-epoch bumpers (satp, pmpaddr
   with their cfg slots disabled) whose writes must invalidate cached
   blocks without changing M-mode execution. *)
let csr_write_targets =
  [| Csr_addr.mscratch; Csr_addr.sscratch; Csr_addr.mepc; Csr_addr.mcause;
     Csr_addr.mtval; Csr_addr.satp; Csr_addr.pmpaddr 0; Csr_addr.pmpaddr 1 |]

(* CSRs worth reading: the block engine defers cycle/instret updates
   across pure runs, and a mid-block csrr of a counter must still see
   the fully flushed value. *)
let csr_read_targets =
  [| Csr_addr.mcycle; Csr_addr.minstret; Csr_addr.cycle; Csr_addr.instret;
     Csr_addr.mhartid; Csr_addr.mstatus; Csr_addr.mip; Csr_addr.mscratch;
     Csr_addr.satp |]

let gen_alu prng =
  match Prng.int_below prng 6 with
  | 0 -> Instr.Op (Prng.choose prng alu_ops, dst prng, any_reg prng, any_reg prng)
  | 1 ->
      Instr.Op32 (Prng.choose prng alu32_ops, dst prng, any_reg prng, any_reg prng)
  | 2 ->
      Instr.Op_imm
        ( Prng.choose prng imm_ops,
          dst prng,
          any_reg prng,
          Int64.of_int (Prng.int_below prng 4096 - 2048) )
  | 3 ->
      let op =
        match Prng.int_below prng 3 with
        | 0 -> Instr.Slli
        | 1 -> Instr.Srli
        | _ -> Instr.Srai
      in
      Instr.Op_imm
        (op, dst prng, any_reg prng, Int64.of_int (Prng.int_below prng 64))
  | 4 ->
      if Prng.bool prng then
        Instr.Op_imm32
          ( Instr.Addiw,
            dst prng,
            any_reg prng,
            Int64.of_int (Prng.int_below prng 4096 - 2048) )
      else
        let op =
          match Prng.int_below prng 3 with
          | 0 -> Instr.Slliw
          | 1 -> Instr.Srliw
          | _ -> Instr.Sraiw
        in
        Instr.Op_imm32
          (op, dst prng, any_reg prng, Int64.of_int (Prng.int_below prng 32))
  | _ ->
      if Prng.bool prng then
        Instr.Lui
          ( dst prng,
            Int64.of_int (Prng.int_below prng 0x100000 - 0x80000) |> fun v ->
            Int64.shift_left v 12 )
      else Instr.Auipc (dst prng, Int64.shift_left (Int64.of_int (Prng.int_below prng 16)) 12)

(* In-window control target: index into the n+1 slots (the +1 lands
   on the terminal back-jump); 1 in 12 is nudged to a 2-byte offset,
   a misaligned target that must trap on the taken path. *)
let gen_target_delta prng i n =
  let ti = Prng.int_below prng (n + 1) in
  let delta = 4 * (ti - i) in
  if Prng.int_below prng 12 = 0 then delta + 2 else delta

let gen_mem prng ~wild =
  let width = Prng.choose prng widths in
  let size = width_size width in
  let base = if Prng.bool prng then 10 else 11 in
  let off =
    if Prng.int_below prng 10 = 0 then Prng.int_below prng 0x7F8 (* any alignment *)
    else Prng.int_below prng (0x800 / size) * size
  in
  let rs1 = if wild then any_reg prng else base in
  if Prng.bool prng then
    Instr.Load
      {
        width;
        unsigned = Prng.bool prng && width <> Instr.D;
        rd = dst prng;
        rs1;
        imm = Int64.of_int off;
      }
  else Instr.Store { width; rs2 = any_reg prng; rs1; imm = Int64.of_int off }

(* Store into the program's own code window: W-width, word-aligned,
   payload mostly one of the pinned valid encodings so the splice is
   live code. *)
let gen_selfmod prng =
  let rs1 = if Prng.bool prng then 12 else 13 in
  let rs2 =
    match Prng.int_below prng 4 with
    | 0 -> any_reg prng
    | 1 -> 15
    | _ -> 14
  in
  Instr.Store
    {
      width = Instr.W;
      rs2;
      rs1;
      imm = Int64.of_int (4 * Prng.int_below prng 128);
    }

let gen_csr prng =
  if Prng.int_below prng 3 = 0 then
    (* read: rd must land somewhere observable *)
    Instr.Csr
      {
        op = Instr.Csrrs;
        rd = dst prng;
        src = Instr.Imm 0;
        csr = Prng.choose prng csr_read_targets;
      }
  else
    let op =
      match Prng.int_below prng 3 with
      | 0 -> Instr.Csrrw
      | 1 -> Instr.Csrrs
      | _ -> Instr.Csrrc
    in
    let src =
      if Prng.bool prng then Instr.Reg (any_reg prng)
      else Instr.Imm (Prng.int_below prng 32)
    in
    Instr.Csr
      { op; rd = dst prng; src; csr = Prng.choose prng csr_write_targets }

let gen_instr prng i n =
  match Prng.int_below prng 100 with
  | k when k < 34 -> gen_alu prng
  | k when k < 46 ->
      Instr.Branch
        ( Prng.choose prng branch_ops,
          any_reg prng,
          any_reg prng,
          Int64.of_int (gen_target_delta prng i n) )
  | k when k < 50 ->
      let rd = if Prng.int_below prng 3 = 0 then dst prng else 0 in
      Instr.Jal (rd, Int64.of_int (gen_target_delta prng i n))
  | k when k < 54 ->
      let rs1 = if Prng.int_below prng 6 = 0 then any_reg prng
                else if Prng.bool prng then 12 else 13 in
      let off = 4 * Prng.int_below prng 128 in
      let off = if Prng.int_below prng 12 = 0 then off + 2 else off in
      let rd = if Prng.int_below prng 3 = 0 then dst prng else 0 in
      Instr.Jalr (rd, rs1, Int64.of_int off)
  | k when k < 70 -> gen_mem prng ~wild:false
  | k when k < 74 -> gen_selfmod prng
  | k when k < 78 ->
      let op = Prng.choose prng amo_ops in
      Instr.Amo
        {
          op;
          wide = Prng.bool prng;
          aq = false;
          rl = false;
          rd = dst prng;
          rs1 = (if Prng.bool prng then 10 else 11);
          rs2 = (if op = Instr.Lr then 0 else any_reg prng);
        }
  | k when k < 86 -> gen_csr prng
  | k when k < 88 -> if Prng.bool prng then Instr.Ecall else Instr.Ebreak
  | k when k < 92 -> (
      match Prng.int_below prng 3 with
      | 0 -> Instr.Fence
      | 1 -> Instr.Fence_i
      | _ -> Instr.Sfence_vma (0, 0))
  | k when k < 94 -> Instr.Mret
  | _ -> gen_mem prng ~wild:true

let gen_case prng =
  let n = 16 + Prng.int_below prng 180 in
  let body = List.init n (fun i -> gen_instr prng i n) in
  (* terminal back-jump: fall-through re-enters the program, so every
     case is an eternal loop bounded only by its step budget *)
  let all = body @ [ Instr.Jal (0, Int64.of_int (-4 * n)) ] in
  let words = Array.of_list (List.map Encode.encode all) in
  let nsegs = 4 + Prng.int_below prng 9 in
  let segs = Array.init nsegs (fun _ -> 1 + Prng.int_below prng 63) in
  { Blockdiff.seed = Prng.next prng; words; segs }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let nop = Encode.encode (Instr.Op_imm (Instr.Addi, 0, 0, 0L))

(* Segment truncation (everything after the diverging segment never
   ran) followed by one NOP-substitution pass over the code; each
   candidate is re-run on a fresh pair, so the result is a standalone
   reproduction. *)
let shrink (case : Blockdiff.case) (d : Blockdiff.divergence) =
  let best = ref case and bestd = ref d in
  (if d.Blockdiff.seg_index >= 0
      && d.Blockdiff.seg_index + 1 < Array.length case.Blockdiff.segs
   then
     let cand =
       {
         case with
         Blockdiff.segs =
           Array.sub case.Blockdiff.segs 0 (d.Blockdiff.seg_index + 1);
       }
     in
     match Blockdiff.run_case cand with
     | Some d' ->
         best := cand;
         bestd := d'
     | None -> ());
  let nwords = Array.length !best.Blockdiff.words in
  for i = 0 to nwords - 1 do
    if !best.Blockdiff.words.(i) <> nop then begin
      let words = Array.copy !best.Blockdiff.words in
      words.(i) <- nop;
      let cand = { !best with Blockdiff.words } in
      match Blockdiff.run_case cand with
      | Some d' ->
          best := cand;
          bestd := d'
      | None -> ()
    end
  done;
  (!best, !bestd)

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let priv_class = function Priv.U -> 0 | Priv.S -> 1 | Priv.M -> 2

type result = {
  execs : int;
  seconds : float;
  execs_per_sec : float;
  edges : int;
  divergence : (int * Blockdiff.case * Blockdiff.divergence) option;
}

let run ~seed ~max_execs () =
  let prng = Miralis.Config.derive seed "blockfuzz/gen" in
  let edges = Hashtbl.create 64 in
  let on_segment _i (v : Blockdiff.seg_view) =
    Hashtbl.replace edges
      ( v.Blockdiff.region,
        priv_class v.Blockdiff.priv,
        Int64.to_int v.Blockdiff.cause land 31,
        v.Blockdiff.wfi )
      ()
  in
  let t0 = Sys.time () in
  let divergence = ref None in
  let execs = ref 0 in
  while !execs < max_execs && !divergence = None do
    let case = gen_case prng in
    (match Blockdiff.run_case ~on_segment case with
    | Some d ->
        let shrunk, d' = shrink case d in
        divergence := Some (!execs, shrunk, d')
    | None -> ());
    incr execs
  done;
  let seconds = Sys.time () -. t0 in
  {
    execs = !execs;
    seconds;
    execs_per_sec =
      (if seconds > 0. then float_of_int !execs /. seconds else 0.);
    edges = Hashtbl.length edges;
    divergence = !divergence;
  }

(* ------------------------------------------------------------------ *)
(* Checked-in regression vectors                                       *)
(* ------------------------------------------------------------------ *)

(* A spread of generated cases under fixed seeds, plus two hand-built
   shapes generation only rarely concentrates: a dense self-modifying
   loop and a pure spin loop sliced by 1-step segments.  Emitted to
   test/vectors/ as block-*.jsonl; dune runtest replays each one and
   requires the engine to match the interpreter exactly. *)
let builtin () =
  let generated =
    List.map
      (fun seed ->
        let prng = Miralis.Config.derive seed "blockfuzz/gen" in
        (Printf.sprintf "block-gen-%Lx" seed, gen_case prng))
      [ 0xB10C1L; 0xB10C2L; 0xB10C3L; 0xB10C4L; 0xB10C5L; 0xB10C6L ]
  in
  let enc = Encode.encode in
  let selfmod =
    (* overwrite the loop body with addi x5,x5,1 (payload in x14),
       then run through the splice; loops via the terminal jump *)
    let body =
      [
        Instr.Store { width = Instr.W; rs2 = 14; rs1 = 12; imm = 16L };
        Instr.Op_imm (Instr.Addi, 6, 6, 1L);
        Instr.Op (Instr.Xor, 7, 6, 5);
        Instr.Op_imm (Instr.Addi, 8, 8, -1L);
        Instr.Ebreak (* slot 4 = byte 16: spliced to addi x5,x5,1 *);
        Instr.Op (Instr.Add, 9, 9, 5);
      ]
    in
    let n = List.length body in
    {
      Blockdiff.seed = 0x5E1FL;
      words =
        Array.of_list
          (List.map enc (body @ [ Instr.Jal (0, Int64.of_int (-4 * n)) ]));
      segs = [| 3; 1; 7; 32; 64; 17 |];
    }
  in
  let spin =
    (* the resident self-chain loop, observed at every 1-step budget
       phase and then in bulk *)
    let body =
      [
        Instr.Op_imm (Instr.Addi, 5, 5, 3L);
        Instr.Op (Instr.Xor, 5, 5, 6);
        Instr.Op_imm (Instr.Addi, 6, 6, -1L);
        Instr.Branch (Instr.Bne, 6, 0, -12L);
        Instr.Op_imm (Instr.Addi, 7, 7, 1L);
      ]
    in
    let n = List.length body in
    {
      Blockdiff.seed = 0x59117L;
      words =
        Array.of_list
          (List.map enc (body @ [ Instr.Jal (0, Int64.of_int (-4 * n)) ]));
      segs = [| 1; 1; 1; 1; 1; 1; 1; 2; 3; 5; 48; 64; 63; 33 |];
    }
  in
  generated @ [ ("block-selfmod", selfmod); ("block-spin", spin) ]

let emit ~dir =
  Corpus.ensure_dir dir;
  List.map
    (fun (name, case) ->
      let path = Filename.concat dir (name ^ ".jsonl") in
      Blockdiff.save case ~path;
      path)
    (builtin ())
