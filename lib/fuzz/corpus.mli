(** Corpus persistence: content-hash-named JSONL vectors in a flat
    directory, so identical campaigns rewrite identical files. *)

val ensure_dir : string -> unit

val save_input : dir:string -> prefix:string -> Input.t -> string
(** Write [<dir>/<prefix>-<hash>.jsonl]; returns the path. *)

val save_min : dir:string -> Input.t -> string
(** Write the shrunk crash as [<dir>/crash-<hash>.min.jsonl]. *)

val save_coverage : dir:string -> Coverage.t -> string

val load_dir : string -> (string * (Input.t, string) result) list
(** Every fuzz [*.jsonl] vector in the directory, sorted by file
    name; a missing directory loads as the empty list.
    [block-*.jsonl] block-engine vectors (the {!Mir_verif.Blockdiff}
    family) are skipped — they replay through [fuzz --blocks]. *)
