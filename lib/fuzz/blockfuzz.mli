(** Block-engine differential fuzzer: generated guest programs —
    pure-ALU runs, tight loops, mid-block traps, self-modifying
    stores, vm-epoch-bumping CSR writes, fence.i — executed by the
    decoded basic-block engine against the per-instruction
    interpreter in lockstep, via {!Mir_verif.Blockdiff}. *)

type result = {
  execs : int;
  seconds : float;
  execs_per_sec : float;
  edges : int;
      (** distinct (pc region, privilege, mcause, wfi) block-side
          segment summaries seen *)
  divergence : (int * Mir_verif.Blockdiff.case * Mir_verif.Blockdiff.divergence) option;
      (** (execution index, shrunk reproduction case, its
          divergence) *)
}

val run : seed:int64 -> max_execs:int -> unit -> result
(** Run [max_execs] generated cases (or stop at the first
    divergence, which is shrunk before being returned).
    Deterministic from [seed]. *)

val gen_case : Mir_util.Prng.t -> Mir_verif.Blockdiff.case
(** One generated case (exposed for the vector emitter and tests). *)

val shrink :
  Mir_verif.Blockdiff.case ->
  Mir_verif.Blockdiff.divergence ->
  Mir_verif.Blockdiff.case * Mir_verif.Blockdiff.divergence
(** Segment truncation plus one NOP-substitution pass; every kept
    candidate re-diverges on a fresh machine pair. *)

val emit : dir:string -> string list
(** Write the built-in block-engine regression vectors to [dir]
    (block-*.jsonl) and return their paths. *)
