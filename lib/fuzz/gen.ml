module Prng = Mir_util.Prng
module Instr = Mir_rv.Instr
module Csr_addr = Mir_rv.Csr_addr

(* The privileged-instruction grammar. Weights favour CSR traffic —
   that is where the WARL/PMP/delegation state lives — with a steady
   trickle of xRET/WFI/trap instructions and interrupt-line changes so
   that the accumulated state is actually exercised. *)

let gpr_pool = [| 0; 1; 5; 6; 7; 10; 11; 12; 17; 28; 31 |]

(* CSR addresses worth hammering: everything trap delivery,
   delegation, PMP and translation touch, a few read-only and counter
   CSRs (privilege/WARL corner cases), and unimplemented addresses so
   both sides must agree on illegal-instruction injection. *)
let csr_pool config =
  let vpmp = Miralis.Config.vpmp_count config in
  [
    Csr_addr.mstatus; Csr_addr.mstatus; Csr_addr.mstatus;
    Csr_addr.mie; Csr_addr.mip; Csr_addr.mideleg; Csr_addr.medeleg;
    Csr_addr.mtvec; Csr_addr.mepc; Csr_addr.mcause; Csr_addr.mtval;
    Csr_addr.mscratch; Csr_addr.misa; Csr_addr.mhartid;
    Csr_addr.mvendorid; Csr_addr.mcounteren; Csr_addr.mcountinhibit;
    Csr_addr.mcycle; Csr_addr.minstret; Csr_addr.menvcfg;
    Csr_addr.sstatus; Csr_addr.sie; Csr_addr.sip; Csr_addr.stvec;
    Csr_addr.sepc; Csr_addr.scause; Csr_addr.stval; Csr_addr.sscratch;
    Csr_addr.scounteren; Csr_addr.satp; Csr_addr.satp;
  ]
  @ List.init 8 (fun i -> Csr_addr.pmpcfg (2 * (i mod 2)))
  @ List.init (vpmp + 2) Csr_addr.pmpaddr (* +2: out-of-range probes *)
  |> Array.of_list

let csr_ops = [| Instr.Csrrw; Instr.Csrrs; Instr.Csrrc |]

let gen_csr config prng =
  let csr =
    if Prng.int_below prng 16 = 0 then Prng.int_below prng 4096
      (* random address: unimplemented/read-only/low-privilege space *)
    else Prng.choose prng (csr_pool config)
  in
  let op = Prng.choose prng csr_ops in
  let rd = Prng.choose prng gpr_pool in
  let src =
    if Prng.bool prng then Instr.Reg (Prng.choose prng gpr_pool)
    else Instr.Imm (Prng.int_below prng 32)
  in
  Instr.Csr { op; rd; src; csr }

let gen_op config prng =
  match Prng.int_below prng 100 with
  | n when n < 50 -> Input.Op_instr (gen_csr config prng)
  | n when n < 60 -> Input.Op_instr Instr.Mret
  | n when n < 67 -> Input.Op_instr Instr.Sret
  | n when n < 72 -> Input.Op_instr Instr.Wfi
  | n when n < 76 -> Input.Op_instr Instr.Ecall
  | n when n < 79 -> Input.Op_instr Instr.Ebreak
  | n when n < 82 ->
      Input.Op_instr
        (Instr.Sfence_vma (Prng.choose prng gpr_pool, Prng.choose prng gpr_pool))
  | n when n < 86 ->
      (* arm the global enable: interrupt-delivery divergences (e.g.
         priority order) need MIE=1, which every trap entry clears, so
         the random CSR traffic alone almost never leaves it on *)
      Input.Op_instr
        (Instr.Csr
           { op = Instr.Csrrs; rd = 0; src = Instr.Imm 8; csr = Csr_addr.mstatus })
  | n when n < 90 ->
      (* arm individual enables with a (random) register value *)
      Input.Op_instr
        (Instr.Csr
           {
             op = Instr.Csrrs;
             rd = 0;
             src = Instr.Reg (Prng.choose prng gpr_pool);
             csr = Csr_addr.mie;
           })
  | _ ->
      (* bias toward both lines on: simultaneous pending interrupts
         are where delivery-priority differences show *)
      Input.Op_lines
        {
          mtip = Prng.int_below prng 3 > 0;
          msip = Prng.int_below prng 3 > 0;
          meip = Prng.int_below prng 3 > 0;
        }

let fresh config prng ~len =
  let seed = Prng.next prng in
  { Input.seed; ops = List.init (max 1 len) (fun _ -> gen_op config prng) }

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

let max_len = 64

let nth_opt ops i = List.nth_opt ops i

let replace ops i op = List.mapi (fun j o -> if j = i then op else o) ops

let insert ops i op =
  let rec go j = function
    | [] -> [ op ]
    | x :: rest -> if j = i then op :: x :: rest else x :: go (j + 1) rest
  in
  go 0 ops

let remove ops i = List.filteri (fun j _ -> j <> i) ops

let take n ops = List.filteri (fun i _ -> i < n) ops
let drop n ops = List.filteri (fun i _ -> i >= n) ops

(* One mutation of [input]: grammar-level havoc plus corpus splicing.
   All randomness flows from [prng], so the whole campaign is a pure
   function of the root seed. *)
let mutate config prng ~(corpus : Input.t array) (input : Input.t) =
  let ops = input.Input.ops in
  let n = List.length ops in
  let pick () = Prng.int_below prng (max 1 n) in
  let mutated =
    match Prng.int_below prng 8 with
    | 0 -> { input with Input.ops = replace ops (pick ()) (gen_op config prng) }
    | 1 when n < max_len ->
        { input with Input.ops = insert ops (Prng.int_below prng (n + 1)) (gen_op config prng) }
    | 2 when n > 1 -> { input with Input.ops = remove ops (pick ()) }
    | 3 when n > 0 && n < max_len ->
        (* duplicate a slice: repetition finds counter/lock bugs *)
        let i = pick () in
        let len = 1 + Prng.int_below prng (max 1 (min 4 (n - i))) in
        let slice = take len (drop i ops) in
        { input with Input.ops = take i ops @ slice @ drop i ops }
    | 4 when n > 1 ->
        let i = pick () and j = pick () in
        let oi = nth_opt ops i and oj = nth_opt ops j in
        (match (oi, oj) with
        | Some oi, Some oj ->
            { input with Input.ops = replace (replace ops i oj) j oi }
        | _ -> input)
    | 5 when Array.length corpus > 0 ->
        (* splice: our prefix, another interesting input's suffix *)
        let other = Prng.choose prng corpus in
        let m = List.length other.Input.ops in
        let i = Prng.int_below prng (max 1 n)
        and j = Prng.int_below prng (max 1 m) in
        { input with Input.ops = take max_len (take i ops @ drop j other.Input.ops) }
    | 6 -> { input with Input.seed = Prng.next prng } (* new initial state *)
    | _ when n > 1 -> { input with Input.ops = take (1 + pick ()) ops }
    | _ -> { input with Input.ops = replace ops (pick ()) (gen_op config prng) }
  in
  if mutated.Input.ops = [] then
    { mutated with Input.ops = [ gen_op config prng ] }
  else mutated
