(** Edge-coverage map: (instruction class x outcome x trap cause) hit
    counts with AFL-style bucketing, driving mutation scheduling. *)

type t

val size : int
(** Number of buckets in the map. *)

val create : unit -> t
val copy : t -> t
val clear : t -> unit

val edge : cls:int -> tag:int -> cause:int -> int
(** Stable index of the (instruction class, outcome tag, cause) edge. *)

val add : t -> int -> bool
(** Record a hit; [true] iff the edge is new or its count crossed a
    power-of-two-ish bucket — the "interesting input" signal. *)

val hit : t -> int -> bool
val edges : t -> int
(** Number of distinct edges seen (nonzero buckets). *)

val total : t -> int
val equal : t -> t -> bool

val to_string : t -> string
val of_string : string -> (t, string) result
(** Exact inverse of {!to_string}. *)
