module Prng = Mir_util.Prng

(* The coverage-guided campaign loop. Everything that affects corpus
   content — generation, scheduling, mutation — draws from PRNG
   streams derived from the root seed, so two campaigns with the same
   seed and exec budget produce byte-identical corpora and coverage
   maps. Wall time is measured but only reported. *)

type divergence = {
  input : Input.t;  (** the diverging input, as found *)
  shrunk : Input.t;  (** minimized reproduction *)
  reason : string;  (** named first architectural mismatch *)
  at_exec : int;  (** execution count when found *)
}

type result = {
  execs : int;
  seconds : float;
  execs_per_sec : float;
  coverage : Coverage.t;
  corpus : Input.t list;  (** coverage-increasing inputs, discovery order *)
  curve : (int * int) list;  (** (execs, distinct edges) samples *)
  divergence : divergence option;
}

let seed_count = 16

let run ?inject_bug ?corpus_dir ?(initial = []) ?progress ~seed ~max_execs () =
  let t0 = Sys.time () in
  let exec = Exec.create ?inject_bug ~seed () in
  let config = Exec.config exec in
  let gen_prng = Miralis.Config.derive seed "fuzz:gen" in
  let sched_prng = Miralis.Config.derive seed "fuzz:sched" in
  let coverage = Coverage.create () in
  let corpus = ref [||] in
  let push input = corpus := Array.append !corpus [| input |] in
  let execs = ref 0 in
  let curve = ref [] in
  let divergence = ref None in
  let stride = max 1 (max_execs / 20) in
  let sample_curve () =
    if !execs mod stride = 0 || !execs = max_execs then begin
      curve := (!execs, Coverage.edges coverage) :: !curve;
      match progress with
      | Some f -> f !execs coverage
      | None -> ()
    end
  in
  (* Seed phase: replay any provided vectors, then fresh grammar
     streams. The very first input always lands new edges, so the
     corpus is never empty when mutation starts. *)
  let seeds =
    initial
    @ List.init seed_count (fun _ ->
          Gen.fresh config gen_prng ~len:(4 + Prng.int_below gen_prng 37))
  in
  let seeds = ref seeds in
  let next_candidate () =
    match !seeds with
    | s :: rest ->
        seeds := rest;
        s
    | [] ->
        (* max of two draws biases parents toward recent discoveries *)
        let n = Array.length !corpus in
        let i = Prng.int_below sched_prng n
        and j = Prng.int_below sched_prng n in
        let parent = !corpus.(max i j) in
        Gen.mutate config sched_prng ~corpus:!corpus parent
  in
  while !execs < max_execs && !divergence = None do
    let cand = next_candidate () in
    let r = Exec.run ~coverage exec cand in
    incr execs;
    if r.Exec.interesting then push cand;
    (match r.Exec.divergence with
    | Some (_, reason) ->
        let shrunk = Shrink.shrink exec cand in
        let reason =
          match (Exec.run exec shrunk).Exec.divergence with
          | Some (_, msg) -> msg
          | None -> reason
        in
        divergence := Some { input = cand; shrunk; reason; at_exec = !execs }
    | None -> ());
    sample_curve ()
  done;
  if !curve = [] || fst (List.hd !curve) <> !execs then
    curve := (!execs, Coverage.edges coverage) :: !curve;
  let seconds = Sys.time () -. t0 in
  let result =
    {
      execs = !execs;
      seconds;
      execs_per_sec =
        (if seconds > 0. then float_of_int !execs /. seconds else 0.);
      coverage;
      corpus = Array.to_list !corpus;
      curve = List.rev !curve;
      divergence = !divergence;
    }
  in
  (match corpus_dir with
  | None -> ()
  | Some dir ->
      Corpus.ensure_dir dir;
      List.iter
        (fun input -> ignore (Corpus.save_input ~dir ~prefix:"cov" input))
        result.corpus;
      ignore (Corpus.save_coverage ~dir coverage);
      (match result.divergence with
      | Some d ->
          ignore (Corpus.save_input ~dir ~prefix:"crash" d.input);
          ignore (Corpus.save_min ~dir d.shrunk)
      | None -> ()));
  result

(* Replay a set of vectors (conformance suite / saved corpus) without
   mutation: report the first divergence, if any. *)
let replay ?inject_bug ~seed inputs =
  let exec = Exec.create ?inject_bug ~seed () in
  let coverage = Coverage.create () in
  let rec go = function
    | [] -> (Ok (), coverage)
    | (name, input) :: rest -> (
        match (Exec.run ~coverage exec input).Exec.divergence with
        | Some (idx, msg) -> (Error (name, idx, msg), coverage)
        | None -> go rest)
  in
  go inputs
