(** Grammar-based generation and mutation of fuzz inputs.

    Instruction streams are drawn from a weighted privileged-ISA
    grammar (CSR traffic over trap/delegation/PMP/translation state,
    xRET, WFI, environment traps, SFENCE, interrupt-line changes); the
    mutator applies grammar-level havoc plus corpus splicing. All
    randomness flows from the provided PRNG, so a campaign is a pure
    function of the root seed. *)

val max_len : int
(** Hard cap on ops per input. *)

val gen_op : Miralis.Config.t -> Mir_util.Prng.t -> Input.op
val fresh : Miralis.Config.t -> Mir_util.Prng.t -> len:int -> Input.t

val mutate :
  Miralis.Config.t -> Mir_util.Prng.t -> corpus:Input.t array -> Input.t ->
  Input.t
