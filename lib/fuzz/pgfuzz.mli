(** Paging op class for the differential fuzzer: generated streams of
    page-table edits, satp switches, fences, SUM/MXR/MPRV flips, PMP
    reconfigurations, and S/U/M memory probes, checked TLB-machine
    against raw-walker-machine via {!Mir_verif.Pgdiff}. *)

type result = {
  execs : int;
  seconds : float;
  execs_per_sec : float;
  edges : int;  (** distinct (op class, outcome class) pairs seen *)
  divergence : (int * Mir_verif.Pgdiff.divergence) option;
      (** (execution index, divergence) *)
}

val run : ?tlb_entries:int -> seed:int64 -> max_execs:int -> unit -> result
(** Run [max_execs] generated op streams (or stop at the first
    divergence). Deterministic from [seed]. *)
