(* Corpus directory layout: one JSONL vector per file, named by
   content hash so re-running the same campaign rewrites identical
   files (deterministic corpora diff clean).

     cov-<hash>.jsonl        coverage-increasing input
     crash-<hash>.jsonl      diverging input, as found
     crash-<hash>.min.jsonl  the shrunk version
     coverage.txt            final coverage map *)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "corpus path %S is not a directory" dir)

let filename ~prefix input = Printf.sprintf "%s-%016Lx.jsonl" prefix (Input.hash input)

let save_input ~dir ~prefix input =
  ensure_dir dir;
  let path = Filename.concat dir (filename ~prefix input) in
  Input.save input ~path;
  path

let save_min ~dir input =
  ensure_dir dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "crash-%016Lx.min.jsonl" (Input.hash input))
  in
  Input.save input ~path;
  path

let save_coverage ~dir coverage =
  ensure_dir dir;
  let path = Filename.concat dir "coverage.txt" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Coverage.to_string coverage));
  path

(* Load every vector in a directory, sorted by file name so the order
   (and thus any replay) is stable across file systems.  Block-engine
   vectors ([block-*.jsonl] / [blockdiff-*.jsonl], a different JSONL
   family owned by Mir_verif.Blockdiff) share test/vectors/ and are
   skipped here; they replay through [fuzz --blocks] and
   test_blocks.ml instead. *)
let block_family f =
  String.length f >= 6 && String.sub f 0 6 = "block-"
  || String.length f >= 10 && String.sub f 0 10 = "blockdiff-"

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".jsonl" && not (block_family f))
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (f, Input.load ~path))
