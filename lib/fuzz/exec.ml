module Diff = Mir_verif.Diff
module Instr = Mir_rv.Instr
module Csr_addr = Mir_rv.Csr_addr

(* The differential executor: one input = one evolving stream through
   the reference machine and the VFM emulator, compared step by step
   with the lib/trace digest oracle (see Mir_verif.Diff stream API). *)

type t = { diff : Diff.t; config : Miralis.Config.t }

let create ?inject_bug ?seed () =
  let diff = Diff.create ?inject_bug ?seed () in
  { diff; config = Diff.config diff }

let config t = t.config

(* ------------------------------------------------------------------ *)
(* Coverage-edge classification                                        *)
(* ------------------------------------------------------------------ *)

(* Instruction class: which privileged operation kind ran, with CSR
   traffic subdivided by the architectural group it touches. *)
let csr_group csr =
  if Csr_addr.is_pmpcfg csr then 0
  else if Csr_addr.is_pmpaddr csr then 1
  else if csr = Csr_addr.mstatus || csr = Csr_addr.sstatus then 2
  else if
    csr = Csr_addr.mie || csr = Csr_addr.mip || csr = Csr_addr.sie
    || csr = Csr_addr.sip
  then 3
  else if csr = Csr_addr.mideleg || csr = Csr_addr.medeleg then 4
  else if
    csr = Csr_addr.mtvec || csr = Csr_addr.stvec || csr = Csr_addr.mepc
    || csr = Csr_addr.sepc || csr = Csr_addr.mcause || csr = Csr_addr.scause
    || csr = Csr_addr.mtval || csr = Csr_addr.stval
  then 5
  else if csr = Csr_addr.satp then 6
  else if
    csr = Csr_addr.mcycle || csr = Csr_addr.minstret || csr = Csr_addr.cycle
    || csr = Csr_addr.time || csr = Csr_addr.instret
    || csr = Csr_addr.mcounteren || csr = Csr_addr.scounteren
    || csr = Csr_addr.mcountinhibit
  then 7
  else 8

let op_class = function
  | Input.Op_instr (Instr.Csr { op; csr; _ }) ->
      let opi =
        match op with Instr.Csrrw -> 0 | Instr.Csrrs -> 1 | Instr.Csrrc -> 2
      in
      (csr_group csr * 3) + opi (* 0..26 *)
  | Input.Op_instr Instr.Mret -> 27
  | Input.Op_instr Instr.Sret -> 28
  | Input.Op_instr Instr.Wfi -> 29
  | Input.Op_instr Instr.Ecall -> 30
  | Input.Op_instr Instr.Ebreak -> 31
  | Input.Op_instr (Instr.Sfence_vma _) -> 32
  | Input.Op_instr _ -> 33 (* unprivileged: rejected by the emulator *)
  | Input.Op_lines _ -> 34

let edge_of op step =
  Coverage.edge ~cls:(op_class op)
    ~tag:(Diff.outcome_tag step.Diff.outcome)
    ~cause:(Diff.outcome_cause step.Diff.outcome)

(* ------------------------------------------------------------------ *)
(* Running one input                                                   *)
(* ------------------------------------------------------------------ *)

type result = {
  divergence : (int * string) option;
      (** index of the diverging op and the named mismatch *)
  ops_run : int;
  interesting : bool;
      (** the input produced new coverage (when a map was given) *)
}

let state_prng (input : Input.t) =
  Miralis.Config.derive input.Input.seed "fuzz:state"

let run ?coverage t (input : Input.t) =
  let sample = Diff.gen_sample t.diff (state_prng input) in
  Diff.stream_begin t.diff sample;
  let divergence = ref None in
  let interesting = ref false in
  let ops_run = ref 0 in
  let note op step =
    (match coverage with
    | Some map -> if Coverage.add map (edge_of op step) then interesting := true
    | None -> ());
    match step.Diff.verdict with
    | Diff.Agree | Diff.Skip -> true
    | Diff.Disagree msg ->
        divergence := Some (!ops_run, msg);
        false
  in
  let rec go = function
    | [] -> ()
    | op :: rest ->
        let step =
          match op with
          | Input.Op_instr i -> Diff.stream_step t.diff i
          | Input.Op_lines { mtip; msip; meip } ->
              Diff.set_lines t.diff ~mtip ~msip ~meip;
              { Diff.verdict = Diff.Agree; outcome = Diff.O_next }
        in
        let ok = note op step in
        incr ops_run;
        if ok then go rest
  in
  go input.Input.ops;
  { divergence = !divergence; ops_run = !ops_run; interesting = !interesting }

let diverges t input = (run t input).divergence <> None
