(** Fuzz inputs: self-contained, replayable test vectors.

    An input is a state seed — the initial architectural sample is
    regenerated deterministically from it, keeping vectors small —
    plus a stream of operations: privileged instructions interleaved
    with interrupt-line changes. Serialized as JSONL (a header line
    then one line per operation, instructions as their 32-bit
    encodings), which is the on-disk corpus and the checked-in
    conformance-vector format. *)

type op =
  | Op_instr of Mir_rv.Instr.t  (** one privileged instruction *)
  | Op_lines of { mtip : bool; msip : bool; meip : bool }
      (** drive the timer/software interrupt lines *)

type t = { seed : int64; ops : op list }

val length : t -> int

val hash : t -> int64
(** FNV-1a over the seed and encoded operations — stable across runs,
    used for corpus file names and determinism checks. *)

val equal : t -> t -> bool

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit

val to_jsonl : t -> string
val of_jsonl : string -> (t, string) result
val save : t -> path:string -> unit
val load : path:string -> (t, string) result
