(** The differential executor: runs one fuzz input simultaneously
    through the reference machine (the executable ISA spec under the
    virtual configuration) and the VFM emulator, comparing the
    post-state digests after every operation. *)

type t

val create :
  ?inject_bug:Miralis.Config.bug -> ?seed:int64 -> unit -> t
(** [seed] roots the configuration (and so the derived PRNG streams);
    [inject_bug] plants one of the §6.5 emulator bug classes, used by
    the tests to prove the fuzzer catches and shrinks real bugs. *)

val config : t -> Miralis.Config.t

val op_class : Input.op -> int
(** Coverage class of an operation (CSR group x op, xRET, WFI, ...). *)

type result = {
  divergence : (int * string) option;
      (** index of the diverging op and the named mismatch *)
  ops_run : int;
  interesting : bool;
      (** the input produced new coverage (when a map was given) *)
}

val run : ?coverage:Coverage.t -> t -> Input.t -> result
(** Execute the input from its regenerated initial state. Stops at the
    first divergence. When [coverage] is given, (op class x outcome x
    cause) edges are recorded into it. *)

val diverges : t -> Input.t -> bool
