(** The coverage-guided differential fuzzing campaign.

    Deterministic by construction: generation, scheduling and mutation
    all draw from PRNG streams derived from the root seed, so equal
    (seed, max_execs) campaigns produce identical corpora, coverage
    maps and verdicts. *)

type divergence = {
  input : Input.t;  (** the diverging input, as found *)
  shrunk : Input.t;  (** minimized reproduction *)
  reason : string;  (** named first architectural mismatch *)
  at_exec : int;  (** execution count when found *)
}

type result = {
  execs : int;
  seconds : float;
  execs_per_sec : float;
  coverage : Coverage.t;
  corpus : Input.t list;  (** coverage-increasing inputs, discovery order *)
  curve : (int * int) list;  (** (execs, distinct edges) samples *)
  divergence : divergence option;
}

val run :
  ?inject_bug:Miralis.Config.bug ->
  ?corpus_dir:string ->
  ?initial:Input.t list ->
  ?progress:(int -> Coverage.t -> unit) ->
  seed:int64 ->
  max_execs:int ->
  unit ->
  result
(** Run a campaign: seed the corpus with [initial] vectors plus fresh
    grammar streams, then mutate coverage-increasing inputs until
    [max_execs] executions or the first divergence (which is then
    shrunk). With [corpus_dir], persists the corpus, coverage map and
    any crash (plus its minimized form) under content-hash names. *)

val replay :
  ?inject_bug:Miralis.Config.bug ->
  seed:int64 ->
  (string * Input.t) list ->
  (unit, string * int * string) Stdlib.result * Coverage.t
(** Replay named vectors without mutation; [Error (name, op_index,
    reason)] identifies the first diverging vector. *)
