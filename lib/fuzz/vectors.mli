(** Hand-designed privileged-ISA conformance vectors: PMP
    reconfiguration, delegation flips, xRET MPP/MPIE dances, WFI vs
    interrupt lines, out-of-range vPMP probes, unimplemented CSRs. *)

val builtin : (string * Input.t) list
(** Named vectors, replayable with {!Fuzzer.replay}. *)

val emit : dir:string -> string list
(** Write each builtin vector to [<dir>/<name>.jsonl]; returns the
    paths. Used to (re)generate the checked-in [test/vectors/]. *)
