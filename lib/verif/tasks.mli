(** Named verification tasks (the rows of the paper's Table 2).

    Each task exhaustively enumerates an instruction subspace crossed
    with adversarial state samples and reports case counts, wall-clock
    time, and the first counterexample if the implementation diverges
    from the reference. *)

type report = {
  name : string;
  cases : int;
  skipped : int;
  mismatches : int;
  first_counterexample : string option;
  seconds : float;
}

val pp_report : Format.formatter -> report -> unit

val timed : string -> (unit -> int * int * int * string option) -> report
(** Wrap a task body returning (cases, skipped, mismatches, first). *)

val mret :
  ?samples:int -> ?inject_bug:Miralis.Config.bug -> ?seed:int64 -> unit ->
  report

val sret :
  ?samples:int -> ?inject_bug:Miralis.Config.bug -> ?seed:int64 -> unit ->
  report

val wfi :
  ?samples:int -> ?inject_bug:Miralis.Config.bug -> ?seed:int64 -> unit ->
  report

val decoder : ?words:int -> ?seed:int64 -> unit -> report
(** Round-trip and totality over the privileged encoding space. *)

val csr_read :
  ?samples:int -> ?inject_bug:Miralis.Config.bug -> ?seed:int64 -> unit ->
  report
(** Every implemented CSR (plus unimplemented probes) × read forms. *)

val csr_write :
  ?samples:int -> ?inject_bug:Miralis.Config.bug -> ?seed:int64 -> unit ->
  report
(** Every implemented CSR × csrrw/csrrs/csrrc × register and immediate
    forms — the long pole, as in the paper. *)

val virtual_interrupt :
  ?inject_bug:Miralis.Config.bug -> unit -> report
(** Exhaustive over the 6 standard interrupt bits of mip × mie ×
    mstatus.MIE × world. *)

val end_to_end :
  ?samples:int -> ?inject_bug:Miralis.Config.bug -> ?seed:int64 -> unit ->
  report
(** The full privileged instruction space. *)

val all : ?quick:bool -> ?seed:int64 -> unit -> report list
(** Every task, in Table 2 order. [quick] shrinks sample counts for
    use in the test suite. *)
