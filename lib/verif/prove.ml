(* The symbolic faithful-emulation prover.

   Where {!Tasks} samples the state space, this module covers it: the
   privileged semantics are functorized over an abstract bitvector
   domain ({!Mir_util.Bits_sig.S}), so the very transforms the monitor
   runs concretely can be re-executed at the symbolic backend
   ({!Mir_sym.Backend}) on fully unconstrained CSR words. Each proof
   instance pits the reference machine's dispatch against the
   emulator's over the same symbolic inputs; the path explorer splits
   on every genuinely control-dependent bit, and per leaf the two
   result states are checked for equivalence. A refuted leaf yields a
   concrete counterexample state, which is how every injected bug
   class must manifest.

   Modelling assumptions, mirrored from the sampled harness
   ({!Diff}): the virtual hart sits in vM-mode (privilege checks
   pass), device interrupt lines are held constant across the step,
   and stored CSR values range over their *reachable* sets — any raw
   word pushed through the CSR's own write semantics from reset, with
   mip additionally allowed any combination of the six standard
   interrupt bits (hardware lines set the M-level ones). *)

module B = Mir_sym.Backend
module W = Mir_sym.Word
module E = Mir_sym.Expr
module Eng = Mir_sym.Engine
module Csr_addr = Mir_rv.Csr_addr
module Csr_spec = Mir_rv.Csr_spec
module Cause = Mir_rv.Cause
module Priv = Mir_rv.Priv
module Instr = Mir_rv.Instr
module Ms = Csr_spec.Mstatus
module Irq = Csr_spec.Irq
module X = Mir_rv.Hart.Xfer (B)
module CS = Csr_spec.Sem (B)
module ES = Miralis.Emulator.Sem (B)

type report = {
  name : string;
  instances : int;  (** concrete instruction/address instances *)
  paths : int;  (** fully explored symbolic paths *)
  unexplored : int;  (** paths cut by depth bound or blast overflow *)
  mismatches : int;
  first_counterexample : string option;
  depth_hist : int array;  (** leaves per split depth *)
  seconds : float;
}

let proved r = r.mismatches = 0 && r.unexplored = 0

let pp_report ppf r =
  Format.fprintf ppf "[sym] %-18s %7d instances %8d paths  %s  (%.2fs)"
    r.name r.instances r.paths
    (if proved r then "PROVED"
     else
       Printf.sprintf "FAILED (%d mismatches, %d unexplored)" r.mismatches
         r.unexplored)
    r.seconds;
  match r.first_counterexample with
  | Some cex when r.mismatches > 0 ->
      Format.fprintf ppf "@,      counterexample: %s" cex
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Symbolic CSR state                                                  *)
(* ------------------------------------------------------------------ *)

module M = Map.Make (Int)

type st = W.t M.t

let get st addr =
  match M.find_opt addr st with
  | Some w -> w
  | None ->
      invalid_arg
        (Printf.sprintf "Prove: untracked CSR %s" (Csr_addr.name addr))

(* The reachable stored value of a CSR: a fresh word pushed through
   the CSR's own write semantics from its reset value — symbolically,
   the same state invariant the sampled harness establishes per
   sample. Unimplemented addresses get a raw word (their storage is
   only observable through the injected overrun bug). *)
let fresh_stored cfg addr =
  let raw = Eng.fresh_word (Csr_addr.name addr) in
  match Csr_spec.find cfg addr with
  | Some s -> CS.apply_write s ~old:(B.const s.Csr_spec.reset) ~value:raw
  | None -> raw

let std_irq_mask = Int64.logor Irq.s_mask Irq.m_mask

(* mip's M-level bits are driven by interrupt lines, not writes:
   allow any combination of the six standard bits. *)
let fresh_mip () = B.logand (Eng.fresh_word "mip") (B.const std_irq_mask)

let trap_regs =
  [
    Csr_addr.mstatus;
    Csr_addr.mtvec;
    Csr_addr.mepc;
    Csr_addr.mcause;
    Csr_addr.mtval;
  ]

let cfg_reg_of_entry i = Csr_addr.pmpcfg (i / 8 * 2)

(* The CSRs a probe of [addr] can read or write on either side: the
   M-mode trap frame (any probe may fault), the probed storage, the
   underlying registers of the s-level views, and — for pmpaddr — the
   pmpcfg registers consulted by the lock check. *)
let tracked_for cfg addr =
  let deps =
    if addr = Csr_addr.sstatus then []
    else if addr = Csr_addr.sie then [ Csr_addr.mie; Csr_addr.mideleg ]
    else if addr = Csr_addr.sip then [ Csr_addr.mip; Csr_addr.mideleg ]
    else if Csr_addr.is_pmpaddr addr then
      let i = addr - Csr_addr.pmpaddr 0 in
      addr :: cfg_reg_of_entry i
      ::
      (if i + 1 < cfg.Csr_spec.pmp_count then [ cfg_reg_of_entry (i + 1) ]
       else [])
    else [ addr ]
  in
  List.sort_uniq compare (trap_regs @ deps)

let build_state cfg addrs =
  List.fold_left
    (fun st addr ->
      let w =
        if addr = Csr_addr.mip then fresh_mip () else fresh_stored cfg addr
      in
      M.add addr w st)
    M.empty addrs

(* ------------------------------------------------------------------ *)
(* Shared architectural helpers (used by both sides)                   *)
(* ------------------------------------------------------------------ *)

(* M-mode exception entry: the reference machine's trap path and the
   monitor's virtual-trap injection run the same transform. *)
let trap_m st ~pc0 ~exc ~tval =
  let st = M.add Csr_addr.mepc (B.const pc0) st in
  let st =
    M.add Csr_addr.mcause
      (B.const (Cause.to_xcause (Cause.Exception exc)))
      st
  in
  let st = M.add Csr_addr.mtval tval st in
  let st =
    M.add Csr_addr.mstatus
      (X.trap_entry_m ~mstatus:(get st Csr_addr.mstatus) ~from_priv:Priv.M)
      st
  in
  (* Exceptions always target the base; vectoring applies to
     interrupts only. *)
  let target = B.logand (get st Csr_addr.mtvec) (B.const (Int64.lognot 3L)) in
  (st, target)

let arch_read cfg st addr =
  if addr = Csr_addr.sstatus then
    CS.sstatus_read ~mstatus:(get st Csr_addr.mstatus)
  else if addr = Csr_addr.sie then
    CS.sie_read ~mie:(get st Csr_addr.mie) ~mideleg:(get st Csr_addr.mideleg)
  else if addr = Csr_addr.sip then
    CS.sip_read ~mip:(get st Csr_addr.mip) ~mideleg:(get st Csr_addr.mideleg)
  else
    match Csr_spec.find cfg addr with
    | Some s -> CS.apply_read s (get st addr)
    | None -> invalid_arg "Prove.arch_read: unimplemented CSR"

(* The lock bit of PMP entry [i] as {!Mir_rv.Pmp.locked} computes it:
   the entry's own L, or the next entry's L when that entry is TOR
   (locking this entry's address as its range base). *)
let pmp_locked cfg st i =
  let byte_bit j k = B.test (get st (cfg_reg_of_entry j)) ((j mod 8 * 8) + k) in
  let l = byte_bit i 7 in
  if i + 1 < cfg.Csr_spec.pmp_count then
    let tor = E.and_ (byte_bit (i + 1) 3) (E.not_ (byte_bit (i + 1) 4)) in
    E.or_ l (E.and_ (byte_bit (i + 1) 7) tor)
  else l

let arch_write cfg st addr v =
  if addr = Csr_addr.sstatus then
    M.add Csr_addr.mstatus
      (CS.sstatus_write ~mstatus:(get st Csr_addr.mstatus) ~value:v)
      st
  else if addr = Csr_addr.sie then
    M.add Csr_addr.mie
      (CS.sie_write ~mie:(get st Csr_addr.mie)
         ~mideleg:(get st Csr_addr.mideleg) ~value:v)
      st
  else if addr = Csr_addr.sip then
    M.add Csr_addr.mip
      (CS.sip_write ~mip:(get st Csr_addr.mip)
         ~mideleg:(get st Csr_addr.mideleg) ~value:v)
      st
  else
    match Csr_spec.find cfg addr with
    | None -> invalid_arg "Prove.arch_write: unimplemented CSR"
    | Some s ->
        let old = get st addr in
        let stored = CS.apply_write s ~old ~value:v in
        let stored =
          if Csr_addr.is_pmpaddr addr then
            W.ite (pmp_locked cfg st (addr - Csr_addr.pmpaddr 0)) old stored
          else stored
        in
        M.add addr stored st

(* ------------------------------------------------------------------ *)
(* The two sides of one CSR-instruction step                           *)
(* ------------------------------------------------------------------ *)

type form = { op : Instr.csr_op; rd : int; src : Instr.src }

let read_forms =
  [
    { op = Instr.Csrrs; rd = 11; src = Instr.Reg 0 };
    { op = Instr.Csrrc; rd = 12; src = Instr.Reg 0 };
    { op = Instr.Csrrs; rd = 13; src = Instr.Imm 0 };
    { op = Instr.Csrrc; rd = 0; src = Instr.Imm 0 };
  ]

let write_forms =
  [
    { op = Instr.Csrrw; rd = 11; src = Instr.Reg 5 };
    { op = Instr.Csrrw; rd = 0; src = Instr.Reg 6 };
    { op = Instr.Csrrs; rd = 12; src = Instr.Reg 7 };
    { op = Instr.Csrrc; rd = 13; src = Instr.Reg 28 };
    { op = Instr.Csrrw; rd = 14; src = Instr.Imm 31 };
    { op = Instr.Csrrs; rd = 15; src = Instr.Imm 21 };
    { op = Instr.Csrrc; rd = 5; src = Instr.Imm 9 };
  ]

let write_needed (f : form) =
  match (f.op, f.src) with
  | Instr.Csrrw, _ -> true
  | (Instr.Csrrs | Instr.Csrrc), Instr.Reg 0 -> false
  | (Instr.Csrrs | Instr.Csrrc), Instr.Imm 0 -> false
  | (Instr.Csrrs | Instr.Csrrc), _ -> true

let op_name = function
  | Instr.Csrrw -> "csrrw"
  | Instr.Csrrs -> "csrrs"
  | Instr.Csrrc -> "csrrc"

let form_name (f : form) =
  Printf.sprintf "%s x%d, %s" (op_name f.op) f.rd
    (match f.src with
    | Instr.Reg r -> Printf.sprintf "x%d" r
    | Instr.Imm z -> string_of_int z)

(* The result of one architectural step, both sides reduced to the
   same shape: the virtual pc/priv the firmware observes next, the
   rd writeback, and the final stored-CSR state. *)
type side = { st : st; rd : (int * W.t) option; pc : W.t; priv : Priv.t }

type icx = {
  config : Miralis.Config.t;
  cfg : Csr_spec.config;  (** the virtual (= reference) CSR config *)
  pc0 : int64;
  bits : int;
  cycles : W.t;
  instret : W.t;
  src_val : W.t;
}

let has_bug (config : Miralis.Config.t) b =
  config.Miralis.Config.inject_bug = Some b

let step_trap icx st =
  let st, target =
    trap_m st ~pc0:icx.pc0 ~exc:Cause.Illegal_instr
      ~tval:(B.const (Int64.of_int icx.bits))
  in
  { st; rd = None; pc = target; priv = Priv.M }

let step_finish icx (f : form) st old =
  {
    st;
    rd = (if f.rd = 0 then None else Some (f.rd, old));
    pc = B.const (Int64.add icx.pc0 4L);
    priv = Priv.M;
  }

(* The reference: {!Mir_rv.Machine.exec_csr} on the virtual-equivalent
   machine, executing at M — privilege and counter-enable checks pass
   and TVM applies only at S, exactly as in the concrete dispatch. *)
let ref_csr icx st (f : form) addr =
  let wn = write_needed f in
  if wn && Csr_addr.is_read_only addr then step_trap icx st
  else if addr = Csr_addr.cycle then step_finish icx f st icx.cycles
  else if addr = Csr_addr.time then begin
    (* the modelled boards implement no time CSR; a mapped mtime would
       need a device model on both sides *)
    assert (not icx.cfg.Csr_spec.has_time_csr);
    step_trap icx st
  end
  else if addr = Csr_addr.instret then step_finish icx f st icx.instret
  else if addr = Csr_addr.mcycle then
    (* counter writes are dropped (storage=false) *)
    step_finish icx f st icx.cycles
  else if addr = Csr_addr.minstret then step_finish icx f st icx.instret
  else if not (Csr_spec.exists icx.cfg addr) then step_trap icx st
  else begin
    let old = arch_read icx.cfg st addr in
    let st =
      if wn then arch_write icx.cfg st addr (X.csr_rmw f.op ~old ~src:icx.src_val)
      else st
    in
    step_finish icx f st old
  end

(* The emulator: {!Miralis.Emulator.emulate_csr} against the virtual
   CSR file, with every injected-bug branch modelled. A [Vtrap]
   outcome is completed by the monitor's virtual-trap injection —
   the same M-mode entry transform. *)
let emu_csr icx st (f : form) addr =
  let wn = write_needed f in
  if wn && Csr_addr.is_read_only addr then step_trap icx st
  else if addr = Csr_addr.mcycle || addr = Csr_addr.cycle then
    step_finish icx f st icx.cycles
  else if addr = Csr_addr.minstret || addr = Csr_addr.instret then
    step_finish icx f st icx.instret
  else if addr = Csr_addr.time then step_trap icx st
  else if List.mem addr icx.config.Miralis.Config.allowed_custom_csrs then
    invalid_arg "Prove: custom CSR passthrough is not modelled"
  else if not (Csr_spec.exists icx.cfg addr) then
    if
      has_bug icx.config Miralis.Config.Vpmp_overrun
      && Csr_addr.is_pmpaddr addr
      && addr - Csr_addr.pmpaddr 0 = icx.cfg.Csr_spec.pmp_count
    then begin
      (* the out-of-bounds raw access of the injected overrun bug *)
      let old = get st addr in
      let st =
        if wn then M.add addr (X.csr_rmw f.op ~old ~src:icx.src_val) st else st
      in
      step_finish icx f st old
    end
    else step_trap icx st
  else begin
    let old = arch_read icx.cfg st addr in
    if wn then begin
      let v = X.csr_rmw f.op ~old ~src:icx.src_val in
      let st =
        if
          addr = Csr_addr.mstatus
          && has_bug icx.config Miralis.Config.Mpp_not_legalized
        then
          M.add addr
            (ES.mstatus_write_no_legalize ~old:(get st addr) ~value:v)
            st
        else if
          Csr_addr.is_pmpcfg addr
          && has_bug icx.config Miralis.Config.Pmp_w_without_r
        then M.add addr v st (* raw write: skips W=1/R=0 legalization *)
        else arch_write icx.cfg st addr v
      in
      step_finish icx f st old
    end
    else step_finish icx f st old
  end

(* ------------------------------------------------------------------ *)
(* Leaf comparison                                                     *)
(* ------------------------------------------------------------------ *)

type acc = {
  mutable instances : int;
  mutable paths : int;
  mutable unexplored : int;
  mutable mismatches : int;
  mutable first : string option;
  hist : int array;
}

let max_depth = 32
let new_acc () =
  {
    instances = 0;
    paths = 0;
    unexplored = 0;
    mismatches = 0;
    first = None;
    hist = Array.make (max_depth + 1) 0;
  }

let render_state env =
  String.concat " "
    (List.map
       (fun (n, v) -> Printf.sprintf "%s=0x%Lx" n v)
       (Eng.concretize_inputs env))

let note_mismatch acc describe msg =
  acc.mismatches <- acc.mismatches + 1;
  if acc.first = None then acc.first <- Some (describe ^ ": " ^ msg)

(* Check one explored leaf: the pair of result states must agree on
   privilege, rd writeback, next pc and every tracked CSR — under the
   leaf's path constraints, for *all* remaining free input bits. *)
let check_leaf acc ~describe tracked (leaf : (side * side) Eng.leaf) =
  let r, e = leaf.Eng.value in
  let env = Eng.lookup_in leaf.Eng.path in
  let concrete_fail msg =
    let full = Eng.env_of_path ~path:leaf.Eng.path ~refutation:[] in
    note_mismatch acc describe
      (Printf.sprintf "%s  [%s]" msg (render_state full))
  in
  if r.priv <> e.priv then
    concrete_fail
      (Printf.sprintf "priv: hw=%s vfm=%s" (Priv.to_string r.priv)
         (Priv.to_string e.priv))
  else begin
    let items =
      (match (r.rd, e.rd) with
      | None, None -> Ok []
      | Some (i, a), Some (j, b) when i = j ->
          Ok [ (Printf.sprintf "x%d" i, a, b) ]
      | _ -> Error "rd writeback target differs")
      |> Result.map (fun rd_items ->
             (("pc", r.pc, e.pc) :: rd_items)
             @ List.map
                 (fun a -> (Csr_addr.name a, get r.st a, get e.st a))
                 tracked)
    in
    match items with
    | Error msg -> concrete_fail msg
    | Ok items ->
        let rec go = function
          | [] -> ()
          | (label, a, b) :: rest -> (
              match W.equiv env a b with
              | E.Proved -> go rest
              | E.Refuted refutation ->
                  let full =
                    Eng.env_of_path ~path:leaf.Eng.path ~refutation
                  in
                  note_mismatch acc describe
                    (Printf.sprintf "%s: hw=0x%Lx vfm=0x%Lx  [%s]" label
                       (W.eval full a) (W.eval full b) (render_state full))
              | E.Abandoned _ ->
                  (* too wide to bit-blast: soundness requires counting
                     the leaf as unexplored, never as proved *)
                  acc.unexplored <- acc.unexplored + 1)
        in
        go items
  end

let merge_exploration acc ex =
  acc.instances <- acc.instances + 1;
  acc.paths <- acc.paths + ex.Eng.paths;
  acc.unexplored <- acc.unexplored + ex.Eng.unexplored;
  Array.iteri
    (fun d n -> if d <= max_depth then acc.hist.(d) <- acc.hist.(d) + n)
    ex.Eng.depth_hist

let report_of_acc name acc t0 =
  {
    name;
    instances = acc.instances;
    paths = acc.paths;
    unexplored = acc.unexplored;
    mismatches = acc.mismatches;
    first_counterexample = acc.first;
    depth_hist = acc.hist;
    seconds = Sys.time () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Proof tasks                                                         *)
(* ------------------------------------------------------------------ *)

let make_config ?inject_bug () =
  let host =
    {
      Mir_rv.Machine.default_config with
      Mir_rv.Machine.ram_size = 64 * 1024;
      nharts = 1;
    }
  in
  let config = Miralis.Config.make ?inject_bug ~machine:host () in
  let pc0 = Int64.add host.Mir_rv.Machine.ram_base 0x1000L in
  (config, config.Miralis.Config.vcsr_config, pc0)

(* The probed address space: every address in quick mode would be
   wasteful, so quick covers the implemented CSRs plus the interesting
   unimplemented corners (dynamic counters, the time CSR, odd pmpcfg,
   the pmpaddr just past the implemented count — the overrun bug's
   target — and the extremes). Full mode sweeps all 4096. *)
let probe_addrs ~quick cfg =
  if not quick then List.init 4096 Fun.id
  else
    List.sort_uniq compare
      (Csr_spec.all_addresses cfg
      @ [
          0x000;
          Csr_addr.cycle;
          Csr_addr.time;
          Csr_addr.instret;
          Csr_addr.mhpmcounter 3;
          Csr_addr.pmpcfg 0 + 1;
          Csr_addr.pmpaddr cfg.Csr_spec.pmp_count;
          Csr_addr.pmpaddr (cfg.Csr_spec.pmp_count + 1);
          Csr_addr.stimecmp;
          Csr_addr.hstatus;
          0x7FF;
          0xFFF;
        ])

let run_csr_task ~name ~forms ?(quick = false) ?inject_bug () =
  let t0 = Sys.time () in
  let config, cfg, pc0 = make_config ?inject_bug () in
  let acc = new_acc () in
  List.iter
    (fun addr ->
      let tracked = tracked_for cfg addr in
      List.iter
        (fun f ->
          Eng.reset ();
          let st0 = build_state cfg tracked in
          let src_val =
            match f.src with
            | Instr.Reg 0 -> B.const 0L
            | Instr.Reg r -> Eng.fresh_word (Printf.sprintf "x%d" r)
            | Instr.Imm z -> B.const (Int64.of_int z)
          in
          let icx =
            {
              config;
              cfg;
              pc0;
              bits = 0x73 lor (addr lsl 20);
              cycles = Eng.fresh_word "cycles";
              instret = Eng.fresh_word "instret";
              src_val;
            }
          in
          let ex =
            Eng.explore ~max_depth (fun () ->
                (ref_csr icx st0 f addr, emu_csr icx st0 f addr))
          in
          merge_exploration acc ex;
          let describe =
            Printf.sprintf "%s @%s" (form_name f) (Csr_addr.name addr)
          in
          List.iter (check_leaf acc ~describe tracked) ex.Eng.leaves)
        forms)
    (probe_addrs ~quick cfg);
  report_of_acc name acc t0

let csr_read ?quick ?inject_bug () =
  run_csr_task ~name:"csr_read" ~forms:read_forms ?quick ?inject_bug ()

let csr_write ?quick ?inject_bug () =
  run_csr_task ~name:"csr_write" ~forms:write_forms ?quick ?inject_bug ()

(* mret/sret: the reference executes the return in M-mode; the
   emulator applies the same transform to the virtual mstatus and
   either resumes the firmware (target vM) or world-switches. Both
   reduce to (pc', priv', mstatus'). *)
let xret ~name ~regs ~run ?inject_bug () =
  let t0 = Sys.time () in
  let config, cfg, _pc0 = make_config ?inject_bug () in
  let acc = new_acc () in
  let tracked = List.sort_uniq compare (trap_regs @ regs) in
  Eng.reset ();
  let st0 = build_state cfg tracked in
  let ex = Eng.explore ~max_depth (fun () -> run config st0) in
  merge_exploration acc ex;
  List.iter (check_leaf acc ~describe:name tracked) ex.Eng.leaves;
  report_of_acc name acc t0

let mret ?quick:_ ?inject_bug () =
  xret ~name:"mret" ~regs:[ Csr_addr.mepc ] ?inject_bug
    ~run:(fun config st ->
      let m = get st Csr_addr.mstatus in
      let target = get st Csr_addr.mepc in
      let reference =
        {
          st = M.add Csr_addr.mstatus (X.mret_mstatus m) st;
          rd = None;
          pc = target;
          priv = X.mret_target_priv m;
        }
      in
      let skip_mpie = has_bug config Miralis.Config.Mret_skips_mpie in
      let emu =
        {
          st = M.add Csr_addr.mstatus (ES.mret_mstatus ~skip_mpie m) st;
          rd = None;
          pc = target;
          priv = ES.mret_target_priv m;
        }
      in
      (reference, emu))
    ()

let sret ?quick:_ ?inject_bug () =
  xret ~name:"sret" ~regs:[ Csr_addr.sepc ] ?inject_bug
    ~run:(fun _config st ->
      let m = get st Csr_addr.mstatus in
      let target = get st Csr_addr.sepc in
      let reference =
        {
          st = M.add Csr_addr.mstatus (X.sret_mstatus m) st;
          rd = None;
          pc = target;
          priv = X.sret_target_priv m;
        }
      in
      let emu =
        {
          st = M.add Csr_addr.mstatus (ES.sret_mstatus m) st;
          rd = None;
          pc = target;
          priv = ES.sret_target_priv m;
        }
      in
      (reference, emu))
    ()

(* The virtual-interrupt injection decision against the reference
   take-an-interrupt decision, mirroring the sampled harness's
   scenario: SIE is held clear, the hart privilege matches the world
   (vM-mode firmware runs at M once re-entered; the OS at S), and an
   interrupt the physical machine would deliver to M-mode must be the
   one the monitor injects. *)
let virtual_interrupt ?quick:_ ?inject_bug () =
  let t0 = Sys.time () in
  let config, cfg, _pc0 = make_config ?inject_bug () in
  let acc = new_acc () in
  let order_emu =
    if has_bug config Miralis.Config.Interrupt_priority_swapped then
      Miralis.Emulator.intr_priority_buggy
    else Miralis.Emulator.intr_priority
  in
  List.iter
    (fun world ->
      Eng.reset ();
      let mstatus = B.clear (fresh_stored cfg Csr_addr.mstatus) Ms.sie in
      let mip = fresh_mip () in
      let mie = fresh_stored cfg Csr_addr.mie in
      let mideleg = fresh_stored cfg Csr_addr.mideleg in
      let priv =
        match world with Miralis.Vhart.Firmware -> Priv.M | Os -> Priv.S
      in
      let ex =
        Eng.explore ~max_depth (fun () ->
            let reference =
              (* only interrupts reaching physical M-mode correspond
                 to virtual injections; delegated ones are delivered
                 natively to the OS *)
              match
                X.pending_interrupt ~order:Miralis.Emulator.intr_priority
                  ~priv ~mstatus ~mip ~mie ~mideleg
              with
              | Some i
                when not (B.decide (B.test mideleg (Cause.intr_code i))) ->
                  Some i
              | _ -> None
            in
            let vfm =
              ES.virtual_interrupt ~order:order_emu ~world ~mstatus ~mip ~mie
                ~mideleg
            in
            (reference, vfm))
      in
      merge_exploration acc ex;
      let describe =
        Printf.sprintf "virq world=%s" (Miralis.Vhart.world_name world)
      in
      List.iter
        (fun (leaf : (Cause.intr option * Cause.intr option) Eng.leaf) ->
          let r, e = leaf.Eng.value in
          if r <> e then begin
            let full = Eng.env_of_path ~path:leaf.Eng.path ~refutation:[] in
            let show = function
              | None -> "none"
              | Some i -> Cause.to_string (Cause.Interrupt i)
            in
            note_mismatch acc describe
              (Printf.sprintf "inject: hw=%s vfm=%s  [%s]" (show r) (show e)
                 (render_state full))
          end)
        ex.Eng.leaves)
    [ Miralis.Vhart.Firmware; Miralis.Vhart.Os ];
  report_of_acc "virtual_interrupt" acc t0

let all ?(quick = false) ?inject_bug () =
  [
    csr_read ~quick ?inject_bug ();
    csr_write ~quick ?inject_bug ();
    mret ~quick ?inject_bug ();
    sret ~quick ?inject_bug ();
    virtual_interrupt ~quick ?inject_bug ();
  ]
