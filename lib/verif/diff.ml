module Bits = Mir_util.Bits
module Prng = Mir_util.Prng
module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Csr_spec = Mir_rv.Csr_spec
module Clint = Mir_rv.Clint
module Cause = Mir_rv.Cause
module Priv = Mir_rv.Priv
module Instr = Mir_rv.Instr
module Pmp = Mir_rv.Pmp
module Ms = Csr_spec.Mstatus

type t = {
  config : Miralis.Config.t;
  machine : Machine.t;
  hart : Hart.t;
  vhart : Miralis.Vhart.t;
  vregs : int64 array;
  addresses : int list;  (* implemented CSR addresses, cached *)
  pc0 : int64;
}

let create ?inject_bug ?seed () =
  (* A small host: the derived virtual configuration is what both
     sides use. *)
  let host =
    {
      Machine.default_config with
      Machine.ram_size = 64 * 1024;
      nharts = 1;
    }
  in
  let config = Miralis.Config.make ?inject_bug ?seed ~machine:host () in
  let ref_machine_config =
    { host with Machine.csr_config = config.Miralis.Config.vcsr_config }
  in
  let machine = Machine.create ref_machine_config in
  let hart = machine.Machine.harts.(0) in
  let vhart = Miralis.Vhart.create config ~id:0 in
  {
    config;
    machine;
    hart;
    vhart;
    vregs = Array.make 32 0L;
    addresses = Csr_spec.all_addresses config.Miralis.Config.vcsr_config;
    pc0 = Int64.add host.Machine.ram_base 0x1000L;
  }

let config t = t.config

type sample = {
  csrs : (int * int64) list;
  gprs : int64 array;
  mtip : bool;
  msip : bool;
}

let value_patterns =
  [| 0L; -1L; 1L; 0x5555555555555555L; 0xAAAAAAAAAAAAAAAAL;
     0x8000000000000000L; 0x7FFFFFFFFFFFFFFFL; 0x1800L; 0x1000L; 0x222L;
     0x80L |]

let gen_value prng =
  match Prng.int_below prng 3 with
  | 0 -> Prng.choose prng value_patterns
  | 1 -> Int64.shift_left 1L (Prng.int_below prng 64) (* one-hot *)
  | _ -> Prng.next prng

let gen_sample t prng =
  let vcfg = t.config.Miralis.Config.vcsr_config in
  let csrs =
    List.map
      (fun addr ->
        let spec = Option.get (Csr_spec.find vcfg addr) in
        let raw = gen_value prng in
        let v = Csr_spec.apply_write spec ~old:spec.Csr_spec.reset ~value:raw in
        let v =
          if addr = Csr_addr.mstatus then
            (* MIE clear so the reference executes the instruction. *)
            Bits.clear v Ms.mie
          else if addr = Csr_addr.mip then
            (* line-driven bits are set separately *)
            Int64.logand v Csr_spec.Irq.ssip
          else if Csr_addr.is_pmpcfg addr then
            (* keep entries unlocked so the reference fetch at pc0 is
               never blocked by a locked M-mode rule; lock semantics
               are covered by the dedicated PMP task *)
            Int64.logand v 0x7F7F7F7F7F7F7F7FL
          else v
        in
        (addr, v))
      t.addresses
  in
  {
    csrs;
    gprs = Array.init 32 (fun i -> if i = 0 then 0L else gen_value prng);
    mtip = Prng.bool prng;
    msip = Prng.bool prng;
  }

let apply_sample t sample =
  let hcsr = t.hart.Hart.csr and vcsr = t.vhart.Miralis.Vhart.csr in
  List.iter
    (fun (addr, v) ->
      Csr_file.write_raw hcsr addr v;
      Csr_file.write_raw vcsr addr v)
    sample.csrs;
  (* interrupt lines *)
  Clint.set_mtime t.machine.Machine.clint 1000L;
  Clint.set_mtimecmp t.machine.Machine.clint 0
    (if sample.mtip then 0L else -1L);
  Clint.set_msip t.machine.Machine.clint 0 sample.msip;
  List.iter
    (fun (bits, on) ->
      Csr_file.set_mip_bits hcsr bits on;
      Csr_file.set_mip_bits vcsr bits on)
    [ (Csr_spec.Irq.mtip, sample.mtip); (Csr_spec.Irq.msip, sample.msip) ];
  Array.iteri
    (fun i v ->
      Hart.set t.hart i v;
      t.vregs.(i) <- v)
    sample.gprs;
  t.hart.Hart.pc <- t.pc0;
  t.hart.Hart.priv <- Priv.M;
  t.hart.Hart.wfi <- false;
  t.vhart.Miralis.Vhart.world <- Miralis.Vhart.Firmware;
  t.vhart.Miralis.Vhart.mprv_active <- false

type verdict = Agree | Skip | Disagree of string

let tvec_target tvec cause =
  let base = Int64.logand tvec (Int64.lognot 3L) in
  match cause with
  | Cause.Interrupt i when Int64.logand tvec 3L = 1L ->
      Int64.add base (Int64.of_int (4 * Cause.intr_code i))
  | _ -> base

(* Apply the hardware trap-entry transform to the virtual CSRs —
   identical to what the machine's take_trap does on the reference. *)
let apply_vtrap t cause ~tval =
  let vcsr = t.vhart.Miralis.Vhart.csr in
  Csr_file.write_raw vcsr Csr_addr.mepc t.pc0;
  Csr_file.write_raw vcsr Csr_addr.mcause (Cause.to_xcause cause);
  Csr_file.write_raw vcsr Csr_addr.mtval tval;
  let m = Csr_file.read_raw vcsr Csr_addr.mstatus in
  let m = Bits.write m Ms.mpie (Bits.test m Ms.mie) in
  let m = Bits.clear m Ms.mie in
  let m = Ms.set_mpp m Priv.M in
  Csr_file.write_raw vcsr Csr_addr.mstatus m;
  tvec_target (Csr_file.read_raw vcsr Csr_addr.mtvec) cause

let compare_states t ~vpc ~vpriv ~vwfi instr =
  let hcsr = t.hart.Hart.csr and vcsr = t.vhart.Miralis.Vhart.csr in
  let fail fmt = Printf.ksprintf (fun s -> Some s) fmt in
  let istr = Instr.to_string instr in
  let csr_mismatch =
    List.find_map
      (fun addr ->
        let h = Csr_file.read_raw hcsr addr
        and v = Csr_file.read_raw vcsr addr in
        if h <> v then
          fail "%s: %s differs (hw=%Lx vfm=%Lx)" istr (Csr_addr.name addr) h v
        else None)
      t.addresses
  in
  match csr_mismatch with
  | Some _ as m -> m
  | None ->
      let rec regs i =
        if i >= 32 then None
        else if Hart.get t.hart i <> t.vregs.(i) then
          fail "%s: x%d differs (hw=%Lx vfm=%Lx)" istr i (Hart.get t.hart i)
            t.vregs.(i)
        else regs (i + 1)
      in
      (match regs 1 with
      | Some _ as m -> m
      | None ->
          if t.hart.Hart.pc <> vpc then
            fail "%s: pc differs (hw=%Lx vfm=%Lx)" istr t.hart.Hart.pc vpc
          else if t.hart.Hart.priv <> vpriv then
            fail "%s: priv differs (hw=%s vfm=%s)" istr
              (Priv.to_string t.hart.Hart.priv)
              (Priv.to_string vpriv)
          else if t.hart.Hart.wfi <> vwfi then
            fail "%s: wfi differs (hw=%b vfm=%b)" istr t.hart.Hart.wfi vwfi
          else None)

let check t sample instr =
  apply_sample t sample;
  (* The reference fetch at pc0 must be allowed by the sampled PMP. *)
  if
    not
      (Pmp.check
         ~entries:(Csr_file.pmp_entries t.hart.Hart.csr)
         ~priv:Priv.M Pmp.Exec ~addr:t.pc0 ~size:4)
  then Skip
  else begin
    let bits = Mir_rv.Encode.encode instr in
    ignore (Machine.phys_store t.machine t.pc0 4 (Int64.of_int bits));
    Machine.invalidate_icache t.machine t.pc0 4;
    (* reference step *)
    let pre_cycles = t.hart.Hart.cycles and pre_instret = t.hart.Hart.instret in
    Machine.step t.machine t.hart;
    (* virtual emulation *)
    let ctx =
      {
        Miralis.Emulator.read_gpr = (fun i -> t.vregs.(i));
        write_gpr = (fun i v -> if i <> 0 then t.vregs.(i) <- v);
        pc = t.pc0;
        cycles = Int64.add pre_cycles 1L;
        instret = Int64.add pre_instret 1L;
        phys_custom_read = (fun _ -> 0L);
        phys_custom_write = (fun _ _ -> ());
      }
    in
    let out = Miralis.Emulator.emulate t.config t.vhart ctx ~bits instr in
    let vpc, vpriv, vwfi =
      match out.Miralis.Emulator.action with
      | Miralis.Emulator.Next -> (Int64.add t.pc0 4L, Priv.M, false)
      | Miralis.Emulator.Jump pc -> (pc, Priv.M, false)
      | Miralis.Emulator.Exit_to_os { pc; priv } -> (pc, priv, false)
      | Miralis.Emulator.Vtrap (e, tval) ->
          (apply_vtrap t (Cause.Exception e) ~tval, Priv.M, false)
      | Miralis.Emulator.Wfi -> (Int64.add t.pc0 4L, Priv.M, true)
      | Miralis.Emulator.Unsupported -> (0L, Priv.M, false)
    in
    if out.Miralis.Emulator.action = Miralis.Emulator.Unsupported then
      Disagree (Instr.to_string instr ^ ": emulator reports Unsupported")
    else
      match compare_states t ~vpc ~vpriv ~vwfi instr with
      | None -> Agree
      | Some msg -> Disagree msg
  end

let check_interrupt_case t ~mip ~mie ~mstatus_mie ~world =
  let hcsr = t.hart.Hart.csr and vcsr = t.vhart.Miralis.Vhart.csr in
  (* Prime both sides. The reference runs at the privilege the world
     implies: M for vM-mode (gated by mstatus.MIE), S for the OS
     (M-level interrupts always enabled). *)
  Csr_file.write_raw hcsr Csr_addr.mip mip;
  Csr_file.write_raw vcsr Csr_addr.mip mip;
  Csr_file.write_raw hcsr Csr_addr.mie mie;
  Csr_file.write_raw vcsr Csr_addr.mie mie;
  let videleg = Csr_file.read_raw vcsr Csr_addr.mideleg in
  Csr_file.write_raw hcsr Csr_addr.mideleg videleg;
  let m = Csr_file.read_raw hcsr Csr_addr.mstatus in
  let m = Bits.write m Ms.mie mstatus_mie in
  (* keep S-level interrupts globally off on the reference so only the
     M-level (non-delegated) selection is compared *)
  let m = Bits.clear m Ms.sie in
  Csr_file.write_raw hcsr Csr_addr.mstatus m;
  Csr_file.write_raw vcsr Csr_addr.mstatus m;
  t.hart.Hart.priv <-
    (match world with Miralis.Vhart.Firmware -> Priv.M | Miralis.Vhart.Os -> Priv.S);
  t.vhart.Miralis.Vhart.world <- world;
  let reference =
    match Machine.pending_interrupt t.machine t.hart with
    | Some i when not (Bits.test videleg (Cause.intr_code i)) -> Some i
    | Some _ | None -> None
    (* delegated interrupts are delivered natively, not injected *)
  in
  let vfm = Miralis.Emulator.check_virtual_interrupt t.config t.vhart in
  if reference = vfm then Agree
  else
    Disagree
      (Printf.sprintf
         "interrupt: mip=%Lx mie=%Lx MIE=%b world=%s: hw=%s vfm=%s" mip mie
         mstatus_mie
         (Miralis.Vhart.world_name world)
         (match reference with
         | Some i -> Cause.to_string (Cause.Interrupt i)
         | None -> "none")
         (match vfm with
         | Some i -> Cause.to_string (Cause.Interrupt i)
         | None -> "none"))
