module Bits = Mir_util.Bits
module Prng = Mir_util.Prng
module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Csr_spec = Mir_rv.Csr_spec
module Clint = Mir_rv.Clint
module Plic = Mir_rv.Plic
module Cause = Mir_rv.Cause
module Priv = Mir_rv.Priv
module Instr = Mir_rv.Instr
module Pmp = Mir_rv.Pmp
module Ms = Csr_spec.Mstatus

type t = {
  config : Miralis.Config.t;
  machine : Machine.t;
  hart : Hart.t;
  vhart : Miralis.Vhart.t;
  vregs : int64 array;
  addresses : int list;  (* implemented CSR addresses, cached *)
  pc0 : int64;
}

let create ?inject_bug ?seed () =
  (* A small host: the derived virtual configuration is what both
     sides use. *)
  let host =
    {
      Machine.default_config with
      Machine.ram_size = 64 * 1024;
      nharts = 1;
    }
  in
  let config = Miralis.Config.make ?inject_bug ?seed ~machine:host () in
  let ref_machine_config =
    { host with Machine.csr_config = config.Miralis.Config.vcsr_config }
  in
  let machine = Machine.create ref_machine_config in
  let hart = machine.Machine.harts.(0) in
  let vhart = Miralis.Vhart.create config ~id:0 in
  {
    config;
    machine;
    hart;
    vhart;
    vregs = Array.make 32 0L;
    addresses = Csr_spec.all_addresses config.Miralis.Config.vcsr_config;
    pc0 = Int64.add host.Machine.ram_base 0x1000L;
  }

let config t = t.config

type sample = {
  csrs : (int * int64) list;
  gprs : int64 array;
  mtip : bool;
  msip : bool;
}

let value_patterns =
  [| 0L; -1L; 1L; 0x5555555555555555L; 0xAAAAAAAAAAAAAAAAL;
     0x8000000000000000L; 0x7FFFFFFFFFFFFFFFL; 0x1800L; 0x1000L; 0x222L;
     0x80L |]

let gen_value prng =
  match Prng.int_below prng 3 with
  | 0 -> Prng.choose prng value_patterns
  | 1 -> Int64.shift_left 1L (Prng.int_below prng 64) (* one-hot *)
  | _ -> Prng.next prng

let gen_sample t prng =
  let vcfg = t.config.Miralis.Config.vcsr_config in
  let csrs =
    List.map
      (fun addr ->
        let spec = Option.get (Csr_spec.find vcfg addr) in
        let raw = gen_value prng in
        let v = Csr_spec.apply_write spec ~old:spec.Csr_spec.reset ~value:raw in
        let v =
          if addr = Csr_addr.mstatus then
            (* MIE clear so the reference executes the instruction. *)
            Bits.clear v Ms.mie
          else if addr = Csr_addr.mip then
            (* line-driven bits are set separately *)
            Int64.logand v Csr_spec.Irq.ssip
          else if Csr_addr.is_pmpcfg addr then
            (* keep entries unlocked so the reference fetch at pc0 is
               never blocked by a locked M-mode rule; lock semantics
               are covered by the dedicated PMP task *)
            Int64.logand v 0x7F7F7F7F7F7F7F7FL
          else v
        in
        (addr, v))
      t.addresses
  in
  {
    csrs;
    gprs = Array.init 32 (fun i -> if i = 0 then 0L else gen_value prng);
    mtip = Prng.bool prng;
    msip = Prng.bool prng;
  }

let apply_sample t sample =
  let hcsr = t.hart.Hart.csr and vcsr = t.vhart.Miralis.Vhart.csr in
  List.iter
    (fun (addr, v) ->
      Csr_file.write_raw hcsr addr v;
      Csr_file.write_raw vcsr addr v)
    sample.csrs;
  (* interrupt lines: canonical device state, so an input's behaviour
     never depends on what a previous sample left in the CLINT/PLIC *)
  Clint.set_mtime t.machine.Machine.clint 1000L;
  Clint.set_mtimecmp t.machine.Machine.clint 0
    (if sample.mtip then 0L else -1L);
  Clint.set_msip t.machine.Machine.clint 0 sample.msip;
  Plic.lower_irq t.machine.Machine.plic 1;
  List.iter
    (fun (bits, on) ->
      Csr_file.set_mip_bits hcsr bits on;
      Csr_file.set_mip_bits vcsr bits on)
    [ (Csr_spec.Irq.mtip, sample.mtip); (Csr_spec.Irq.msip, sample.msip) ];
  Array.iteri
    (fun i v ->
      Hart.set t.hart i v;
      t.vregs.(i) <- v)
    sample.gprs;
  t.hart.Hart.pc <- t.pc0;
  t.hart.Hart.priv <- Priv.M;
  t.hart.Hart.wfi <- false;
  t.vhart.Miralis.Vhart.world <- Miralis.Vhart.Firmware;
  t.vhart.Miralis.Vhart.mprv_active <- false

type verdict = Agree | Skip | Disagree of string

let tvec_target tvec cause =
  let base = Int64.logand tvec (Int64.lognot 3L) in
  match cause with
  | Cause.Interrupt i when Int64.logand tvec 3L = 1L ->
      Int64.add base (Int64.of_int (4 * Cause.intr_code i))
  | _ -> base

(* Apply the hardware trap-entry transform to the virtual CSRs —
   identical to what the machine's take_trap does on the reference. *)
let apply_vtrap t cause ~tval =
  let vcsr = t.vhart.Miralis.Vhart.csr in
  Csr_file.write_raw vcsr Csr_addr.mepc t.pc0;
  Csr_file.write_raw vcsr Csr_addr.mcause (Cause.to_xcause cause);
  Csr_file.write_raw vcsr Csr_addr.mtval tval;
  Csr_file.write_raw vcsr Csr_addr.mstatus
    (Hart.Xfer_c.trap_entry_m
       ~mstatus:(Csr_file.read_raw vcsr Csr_addr.mstatus)
       ~from_priv:Priv.M);
  tvec_target (Csr_file.read_raw vcsr Csr_addr.mtvec) cause

let compare_states t ~vpc ~vpriv ~vwfi instr =
  let hcsr = t.hart.Hart.csr and vcsr = t.vhart.Miralis.Vhart.csr in
  let fail fmt = Printf.ksprintf (fun s -> Some s) fmt in
  let istr = Instr.to_string instr in
  let csr_mismatch =
    List.find_map
      (fun addr ->
        let h = Csr_file.read_raw hcsr addr
        and v = Csr_file.read_raw vcsr addr in
        if h <> v then
          fail "%s: %s differs (hw=%Lx vfm=%Lx)" istr (Csr_addr.name addr) h v
        else None)
      t.addresses
  in
  match csr_mismatch with
  | Some _ as m -> m
  | None ->
      let rec regs i =
        if i >= 32 then None
        else if Hart.get t.hart i <> t.vregs.(i) then
          fail "%s: x%d differs (hw=%Lx vfm=%Lx)" istr i (Hart.get t.hart i)
            t.vregs.(i)
        else regs (i + 1)
      in
      (match regs 1 with
      | Some _ as m -> m
      | None ->
          if t.hart.Hart.pc <> vpc then
            fail "%s: pc differs (hw=%Lx vfm=%Lx)" istr t.hart.Hart.pc vpc
          else if t.hart.Hart.priv <> vpriv then
            fail "%s: priv differs (hw=%s vfm=%s)" istr
              (Priv.to_string t.hart.Hart.priv)
              (Priv.to_string vpriv)
          else if t.hart.Hart.wfi <> vwfi then
            fail "%s: wfi differs (hw=%b vfm=%b)" istr t.hart.Hart.wfi vwfi
          else None)

let check t sample instr =
  apply_sample t sample;
  (* The reference fetch at pc0 must be allowed by the sampled PMP. *)
  if
    not
      (Pmp.check
         ~entries:(Csr_file.pmp_entries t.hart.Hart.csr)
         ~priv:Priv.M Pmp.Exec ~addr:t.pc0 ~size:4)
  then Skip
  else begin
    let bits = Mir_rv.Encode.encode instr in
    ignore (Machine.phys_store t.machine t.pc0 4 (Int64.of_int bits));
    Machine.invalidate_icache t.machine t.pc0 4;
    (* reference step *)
    let pre_cycles = t.hart.Hart.cycles and pre_instret = t.hart.Hart.instret in
    Machine.step t.machine t.hart;
    (* virtual emulation *)
    let ctx =
      {
        Miralis.Emulator.read_gpr = (fun i -> t.vregs.(i));
        write_gpr = (fun i v -> if i <> 0 then t.vregs.(i) <- v);
        pc = t.pc0;
        cycles = Int64.of_int (pre_cycles + 1);
        instret = Int64.of_int (pre_instret + 1);
        phys_custom_read = (fun _ -> 0L);
        phys_custom_write = (fun _ _ -> ());
      }
    in
    let out = Miralis.Emulator.emulate t.config t.vhart ctx ~bits instr in
    let vpc, vpriv, vwfi =
      match out.Miralis.Emulator.action with
      | Miralis.Emulator.Next -> (Int64.add t.pc0 4L, Priv.M, false)
      | Miralis.Emulator.Jump pc -> (pc, Priv.M, false)
      | Miralis.Emulator.Exit_to_os { pc; priv } -> (pc, priv, false)
      | Miralis.Emulator.Vtrap (e, tval) ->
          (apply_vtrap t (Cause.Exception e) ~tval, Priv.M, false)
      | Miralis.Emulator.Wfi -> (Int64.add t.pc0 4L, Priv.M, true)
      | Miralis.Emulator.Unsupported -> (0L, Priv.M, false)
    in
    if out.Miralis.Emulator.action = Miralis.Emulator.Unsupported then
      Disagree (Instr.to_string instr ^ ": emulator reports Unsupported")
    else
      match compare_states t ~vpc ~vpriv ~vwfi instr with
      | None -> Agree
      | Some msg -> Disagree msg
  end

(* ------------------------------------------------------------------ *)
(* Stream execution (the fuzzer's engine)                              *)
(* ------------------------------------------------------------------ *)

(* A stream executes a whole instruction sequence against ONE evolving
   state: CSR effects accumulate across instructions, which is where
   sequence-dependent bugs (PMP reconfiguration, delegation flips,
   MPIE shuffles) live. Each step re-arms the program counter, the
   privilege and the world — architecturally, the firmware trap
   handler runs one privileged instruction at a time from a fixed
   handler address — while every other piece of state flows on.

   The oracle is the lib/trace digest over pc/priv/wfi/x1..x31 and
   every implemented CSR, computed with the identical function on both
   sides; a mismatch is then named by the detailed comparator. *)

type outcome =
  | O_next
  | O_jump
  | O_exit_os
  | O_vtrap of Cause.exc
  | O_wfi
  | O_irq of Cause.intr
  | O_skip  (** the current PMP blocks the reference fetch *)

type step = { verdict : verdict; outcome : outcome }

let outcome_tag = function
  | O_next -> 0
  | O_jump -> 1
  | O_exit_os -> 2
  | O_vtrap _ -> 3
  | O_wfi -> 4
  | O_irq _ -> 5
  | O_skip -> 6

let outcome_cause = function
  | O_vtrap e -> Cause.exc_code e
  | O_irq i -> Cause.intr_code i
  | O_next | O_jump | O_exit_os | O_wfi | O_skip -> 0

(* Drive the timer/software/external interrupt lines mid-stream,
   exactly as [apply_sample] does initially: the CLINT and PLIC device
   state and both raw mip copies stay consistent, so the reference
   machine's own line refresh recomputes the same values. *)
let set_lines t ~mtip ~msip ~meip =
  Clint.set_mtime t.machine.Machine.clint 1000L;
  Clint.set_mtimecmp t.machine.Machine.clint 0 (if mtip then 0L else -1L);
  Clint.set_msip t.machine.Machine.clint 0 msip;
  let plic = t.machine.Machine.plic in
  Plic.enable_source plic ~ctx:0 1;
  if meip then Plic.raise_irq plic 1 else Plic.lower_irq plic 1;
  List.iter
    (fun (bits, on) ->
      Csr_file.set_mip_bits t.hart.Hart.csr bits on;
      Csr_file.set_mip_bits t.vhart.Miralis.Vhart.csr bits on)
    [
      (Csr_spec.Irq.mtip, mtip); (Csr_spec.Irq.msip, msip);
      (Csr_spec.Irq.meip, meip);
    ]

let ref_digest t =
  Mir_trace.Tracer.digest_values ~pc:t.hart.Hart.pc
    ~priv:(Priv.to_int t.hart.Hart.priv)
    ~wfi:t.hart.Hart.wfi
    ~regs:(Hart.get t.hart)
    ~csrs:t.addresses
    ~read_csr:(Csr_file.read_raw t.hart.Hart.csr)

let vfm_digest t ~vpc ~vpriv ~vwfi =
  Mir_trace.Tracer.digest_values ~pc:vpc ~priv:(Priv.to_int vpriv) ~wfi:vwfi
    ~regs:(fun i -> t.vregs.(i))
    ~csrs:t.addresses
    ~read_csr:(Csr_file.read_raw t.vhart.Miralis.Vhart.csr)

let rearm t =
  t.hart.Hart.pc <- t.pc0;
  t.hart.Hart.priv <- Priv.M;
  t.hart.Hart.wfi <- false;
  t.hart.Hart.irq_stale <- 0;
  t.vhart.Miralis.Vhart.world <- Miralis.Vhart.Firmware;
  (* SEIP is wire-owned: the reference machine recomputes it from the
     (idle) PLIC at every line refresh, including the one inside a
     trap to M-mode, so a software-set SEIP would survive on the
     virtual side only. Clear it on both sides at each re-arm so a
     write to it lives exactly to the end of its own step. *)
  Csr_file.set_mip_bits t.hart.Hart.csr Csr_spec.Irq.seip false;
  Csr_file.set_mip_bits t.vhart.Miralis.Vhart.csr Csr_spec.Irq.seip false

let stream_begin t sample = apply_sample t sample

let compare_digests t ~vpc ~vpriv ~vwfi instr =
  if ref_digest t = vfm_digest t ~vpc ~vpriv ~vwfi then Agree
  else
    match compare_states t ~vpc ~vpriv ~vwfi instr with
    | Some msg -> Disagree msg
    | None ->
        (* the digest folds every CSR; the comparator walks the same
           list, so this is unreachable unless they disagree on
           coverage — report rather than assert *)
        Disagree (Instr.to_string instr ^ ": digest mismatch only")

let stream_step t instr =
  rearm t;
  match Machine.pending_interrupt t.machine t.hart with
  | Some i -> begin
      (* The reference would take the interrupt instead of executing
         the instruction. Compare the injection decision, mirror the
         trap entry on the virtual side, and compare the post-states. *)
      let vfm = Miralis.Emulator.check_virtual_interrupt t.config t.vhart in
      match vfm with
      | Some vi when vi = i ->
          Machine.step t.machine t.hart;
          (* delivers the trap *)
          let target = apply_vtrap t (Cause.Interrupt i) ~tval:0L in
          let verdict =
            compare_digests t ~vpc:target ~vpriv:Priv.M ~vwfi:false instr
          in
          { verdict; outcome = O_irq i }
      | other ->
          {
            verdict =
              Disagree
                (Printf.sprintf
                   "interrupt injection differs: hw=%s vfm=%s"
                   (Cause.to_string (Cause.Interrupt i))
                   (match other with
                   | Some vi -> Cause.to_string (Cause.Interrupt vi)
                   | None -> "none"));
            outcome = O_irq i;
          }
    end
  | None ->
      (match Miralis.Emulator.check_virtual_interrupt t.config t.vhart with
      | Some vi ->
          {
            verdict =
              Disagree
                (Printf.sprintf
                   "interrupt injection differs: hw=none vfm=%s"
                   (Cause.to_string (Cause.Interrupt vi)));
            outcome = O_irq vi;
          }
      | None ->
      if
        not
          (Pmp.check
             ~entries:(Csr_file.pmp_entries t.hart.Hart.csr)
             ~priv:Priv.M Pmp.Exec ~addr:t.pc0 ~size:4)
      then { verdict = Skip; outcome = O_skip }
      else begin
        let bits = Mir_rv.Encode.encode instr in
        ignore (Machine.phys_store t.machine t.pc0 4 (Int64.of_int bits));
        Machine.invalidate_icache t.machine t.pc0 4;
        let pre_cycles = t.hart.Hart.cycles
        and pre_instret = t.hart.Hart.instret in
        Machine.step t.machine t.hart;
        let ctx =
          {
            Miralis.Emulator.read_gpr = (fun i -> t.vregs.(i));
            write_gpr = (fun i v -> if i <> 0 then t.vregs.(i) <- v);
            pc = t.pc0;
            cycles = Int64.of_int (pre_cycles + 1);
            instret = Int64.of_int (pre_instret + 1);
            phys_custom_read = (fun _ -> 0L);
            phys_custom_write = (fun _ _ -> ());
          }
        in
        let out = Miralis.Emulator.emulate t.config t.vhart ctx ~bits instr in
        let (vpc, vpriv, vwfi), outcome =
          match out.Miralis.Emulator.action with
          | Miralis.Emulator.Next -> ((Int64.add t.pc0 4L, Priv.M, false), O_next)
          | Miralis.Emulator.Jump pc -> ((pc, Priv.M, false), O_jump)
          | Miralis.Emulator.Exit_to_os { pc; priv } ->
              ((pc, priv, false), O_exit_os)
          | Miralis.Emulator.Vtrap (e, tval) ->
              ((apply_vtrap t (Cause.Exception e) ~tval, Priv.M, false), O_vtrap e)
          | Miralis.Emulator.Wfi -> ((Int64.add t.pc0 4L, Priv.M, true), O_wfi)
          | Miralis.Emulator.Unsupported -> ((0L, Priv.M, false), O_next)
        in
        if out.Miralis.Emulator.action = Miralis.Emulator.Unsupported then
          {
            verdict =
              Disagree (Instr.to_string instr ^ ": emulator reports Unsupported");
            outcome;
          }
        else { verdict = compare_digests t ~vpc ~vpriv ~vwfi instr; outcome }
      end)

let check_interrupt_case t ~mip ~mie ~mstatus_mie ~world =
  let hcsr = t.hart.Hart.csr and vcsr = t.vhart.Miralis.Vhart.csr in
  (* Prime both sides. The reference runs at the privilege the world
     implies: M for vM-mode (gated by mstatus.MIE), S for the OS
     (M-level interrupts always enabled). *)
  Csr_file.write_raw hcsr Csr_addr.mip mip;
  Csr_file.write_raw vcsr Csr_addr.mip mip;
  Csr_file.write_raw hcsr Csr_addr.mie mie;
  Csr_file.write_raw vcsr Csr_addr.mie mie;
  let videleg = Csr_file.read_raw vcsr Csr_addr.mideleg in
  Csr_file.write_raw hcsr Csr_addr.mideleg videleg;
  let m = Csr_file.read_raw hcsr Csr_addr.mstatus in
  let m = Bits.write m Ms.mie mstatus_mie in
  (* keep S-level interrupts globally off on the reference so only the
     M-level (non-delegated) selection is compared *)
  let m = Bits.clear m Ms.sie in
  Csr_file.write_raw hcsr Csr_addr.mstatus m;
  Csr_file.write_raw vcsr Csr_addr.mstatus m;
  t.hart.Hart.priv <-
    (match world with Miralis.Vhart.Firmware -> Priv.M | Miralis.Vhart.Os -> Priv.S);
  t.vhart.Miralis.Vhart.world <- world;
  let reference =
    match Machine.pending_interrupt t.machine t.hart with
    | Some i when not (Bits.test videleg (Cause.intr_code i)) -> Some i
    | Some _ | None -> None
    (* delegated interrupts are delivered natively, not injected *)
  in
  let vfm = Miralis.Emulator.check_virtual_interrupt t.config t.vhart in
  if reference = vfm then Agree
  else
    Disagree
      (Printf.sprintf
         "interrupt: mip=%Lx mie=%Lx MIE=%b world=%s: hw=%s vfm=%s" mip mie
         mstatus_mie
         (Miralis.Vhart.world_name world)
         (match reference with
         | Some i -> Cause.to_string (Cause.Interrupt i)
         | None -> "none")
         (match vfm with
         | Some i -> Cause.to_string (Cause.Interrupt i)
         | None -> "none"))
