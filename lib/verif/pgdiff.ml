(* Differential oracle for the memory-system fast paths.

   Two identically-configured machines execute the same stream of
   paging operations — page-table edits, satp switches, sfence.vma,
   SUM/MXR/MPRV flips, PMP reconfiguration, and S/U/M-mode memory
   probes — with exactly one difference: one machine runs the per-hart
   software TLB (and fetch-page cache), the other runs the raw Sv39
   walker on every access ([tlb_entries = 0]).  Every probe's outcome
   (value, store success, or trap cause) must agree, and at the end of
   the stream the two RAM images (which include PTE A/D bits) must
   hash identically.  Any disagreement is a TLB bug: a stale
   translation served after an event that must invalidate, or a cached
   permission/PMP verdict outliving its context.

   Fence discipline: operations that *edit PTE memory* are always
   followed by an sfence.vma (global or targeted), because serving a
   stale translation until the fence is architecturally legal — a
   divergence there would be noise, not signal.  satp switches,
   SUM/MXR/MPRV writes, and PMP reconfigurations are deliberately NOT
   fenced: the TLB must invalidate on its own at those events (via the
   CSR-file vm-epoch), and that is precisely the property this oracle
   checks. *)

module Machine = Mir_rv.Machine
module Memory = Mir_rv.Memory
module Bus = Mir_rv.Bus
module Hart = Mir_rv.Hart
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Csr_spec = Mir_rv.Csr_spec
module Cause = Mir_rv.Cause
module Priv = Mir_rv.Priv
module Vmem = Mir_rv.Vmem
module Pmp = Mir_rv.Pmp
module Ms = Csr_spec.Mstatus

(* ------------------------------------------------------------------ *)
(* Guest memory layout (offsets from ram_base; 512 KiB of RAM)         *)
(* ------------------------------------------------------------------ *)

let ram_size = 512 * 1024
let root0_off = 0x40000 (* L2 table behind satp0 *)
let root1_off = 0x41000 (* L2 table behind satp1 *)
let l1_off = function 0 -> 0x42000 | _ -> 0x43000
let l0_off root half = 0x44000 + (0x1000 * ((2 * root) + half))
let pool_off = 0x10000 (* data pages: 48 x 4 KiB *)
let pool_pages = 48

type access_kind = Aload | Astore | Afetch

type op =
  | Map of {
      root : int;  (* 0 or 1: which address space's tables to edit *)
      vpn : int;  (* 0..1023 *)
      page : int;  (* data-pool page index *)
      perms : int;  (* PTE low bits (V|R|W|X|U|A|D subset) *)
      fence_all : bool;  (* global vs per-address sfence afterwards *)
    }
  | Unmap of { root : int; vpn : int; fence_all : bool }
  | Sfence of { vaddr : int64 option }
  | Satp_switch of int  (* 0, 1, or 2 = bare *)
  | Sum_toggle
  | Mxr_toggle
  | Mprv_toggle  (* flips MPRV with MPP=S (probes M-mode translation) *)
  | Priv_set of Priv.t
  | Pmp_set of {
      slot : int;  (* 0..2; slot 7 stays the allow-all baseline *)
      base_page : int;  (* within the data pool *)
      npages : int;  (* power of two, for NAPOT *)
      perms : int;  (* R|W|X bits of the cfg byte *)
    }
  | Access of { kind : access_kind; vaddr : int64; size : int; value : int64 }

let pp_op fmt (op : op) =
  match op with
  | Map { root; vpn; page; perms; fence_all } ->
      Format.fprintf fmt "map root%d vpn=%#x page=%d perms=%#x %s" root vpn
        page perms
        (if fence_all then "sfence" else "sfence.addr")
  | Unmap { root; vpn; fence_all } ->
      Format.fprintf fmt "unmap root%d vpn=%#x %s" root vpn
        (if fence_all then "sfence" else "sfence.addr")
  | Sfence { vaddr = None } -> Format.fprintf fmt "sfence.vma"
  | Sfence { vaddr = Some va } -> Format.fprintf fmt "sfence.vma %#Lx" va
  | Satp_switch n -> Format.fprintf fmt "satp<-%s"
      (if n = 2 then "bare" else "root" ^ string_of_int n)
  | Sum_toggle -> Format.fprintf fmt "sum^=1"
  | Mxr_toggle -> Format.fprintf fmt "mxr^=1"
  | Mprv_toggle -> Format.fprintf fmt "mprv^=1(mpp=S)"
  | Priv_set p -> Format.fprintf fmt "priv<-%s" (Priv.to_string p)
  | Pmp_set { slot; base_page; npages; perms } ->
      Format.fprintf fmt "pmp%d<-pool[%d..+%d) perms=%#x" slot base_page
        npages perms
  | Access { kind; vaddr; size; _ } ->
      Format.fprintf fmt "%s%d %#Lx"
        (match kind with Aload -> "ld" | Astore -> "st" | Afetch -> "ifetch")
        size vaddr

type outcome = Value of int64 | Stored | Fault of Cause.exc | Nothing

let outcome_to_string = function
  | Value v -> Printf.sprintf "value %#Lx" v
  | Stored -> "stored"
  | Fault e -> Printf.sprintf "fault %s" (Cause.to_string (Cause.Exception e))
  | Nothing -> "-"

(* ------------------------------------------------------------------ *)
(* One side of the differential pair                                   *)
(* ------------------------------------------------------------------ *)

type side = { machine : Machine.t; hart : Hart.t }

let create ~tlb_entries =
  let machine =
    Machine.create
      {
        Machine.default_config with
        Machine.ram_size;
        nharts = 1;
        tlb_entries;
      }
  in
  { machine; hart = machine.Machine.harts.(0) }

let ram_base t = t.machine.Machine.config.Machine.ram_base
let abs t off = Int64.add (ram_base t) (Int64.of_int off)

let store64 t off v = ignore (Machine.phys_store t.machine (abs t off) 8 v)

let pte_ptr t off =
  (* non-leaf PTE pointing at the table at [off] *)
  Int64.logor
    (Int64.shift_left
       (Int64.shift_right_logical (abs t off) 12)
       10)
    Vmem.pte_v

let pte_leaf_pool page perms =
  (* leaf PTE mapping one data-pool page with the given low bits *)
  let ppn =
    Int64.add
      (Int64.shift_right_logical 0x80000000L 12)
      (Int64.of_int ((pool_off lsr 12) + page))
  in
  Int64.logor (Int64.shift_left ppn 10) (Int64.of_int perms)

let satp_of_root t root =
  let off = if root = 0 then root0_off else root1_off in
  Int64.logor
    (Int64.shift_left 8L 60)
    (Int64.shift_right_logical (abs t off) 12)

(* Identity gigapage over the DRAM window (VPN2 = 2): superpage
   coverage, and the window probes read/write the same bytes the page
   tables themselves live in. *)
let giga_identity =
  Int64.logor
    (Int64.shift_left (Int64.shift_right_logical 0x80000000L 12) 10)
    (List.fold_left Int64.logor 0L
       [ Vmem.pte_v; Vmem.pte_r; Vmem.pte_w; Vmem.pte_x; Vmem.pte_a;
         Vmem.pte_d ])

let reset t =
  let ram = Bus.ram t.machine.Machine.bus in
  Memory.fill ram (ram_base t) ram_size '\000';
  Hart.reset t.hart ~pc:(ram_base t);
  let csr = t.hart.Hart.csr in
  (* deterministic CSR baseline (raw writes bump the vm-epoch) *)
  let reset_csr addr =
    match Csr_file.spec csr addr with
    | Some s -> Csr_file.write_raw csr addr s.Csr_spec.reset
    | None -> ()
  in
  reset_csr Csr_addr.mstatus;
  reset_csr Csr_addr.satp;
  List.iter reset_csr [ Csr_addr.pmpcfg 0; Csr_addr.pmpcfg 2 ];
  for i = 0 to (Csr_file.config csr).Csr_spec.pmp_count - 1 do
    reset_csr (Csr_addr.pmpaddr i)
  done;
  (* page-table skeleton: two address spaces sharing the layout *)
  store64 t root0_off (pte_ptr t (l1_off 0));
  store64 t root1_off (pte_ptr t (l1_off 1));
  store64 t (root0_off + (2 * 8)) giga_identity;
  store64 t (root1_off + (2 * 8)) giga_identity;
  store64 t (l1_off 0) (pte_ptr t (l0_off 0 0));
  store64 t ((l1_off 0) + 8) (pte_ptr t (l0_off 0 1));
  store64 t (l1_off 1) (pte_ptr t (l0_off 1 0));
  store64 t ((l1_off 1) + 8) (pte_ptr t (l0_off 1 1));
  (* PMP baseline: slot 7 = NAPOT allow-all, so S/U accesses work
     until a Pmp_set op interposes a higher-priority slot *)
  Csr_file.write csr (Csr_addr.pmpaddr 7) (-1L);
  Csr_file.write csr (Csr_addr.pmpcfg 0)
    (Int64.shift_left (Int64.of_int 0b0011111) 56);
  Csr_file.write csr Csr_addr.satp (satp_of_root t 0);
  t.hart.Hart.priv <- Priv.S

let pte_slot_off root vpn = l0_off root (vpn lsr 9) + (8 * (vpn land 511))

let apply t (op : op) : outcome =
  let csr = t.hart.Hart.csr in
  match op with
  | Map { root; vpn; page; perms; fence_all } ->
      store64 t (pte_slot_off root vpn) (pte_leaf_pool page perms);
      Machine.sfence_vma t.machine
        ?vaddr:
          (if fence_all then None
           else Some (Int64.of_int (vpn lsl 12)))
        ();
      Nothing
  | Unmap { root; vpn; fence_all } ->
      store64 t (pte_slot_off root vpn) 0L;
      Machine.sfence_vma t.machine
        ?vaddr:
          (if fence_all then None
           else Some (Int64.of_int (vpn lsl 12)))
        ();
      Nothing
  | Sfence { vaddr } ->
      Machine.sfence_vma t.machine ?vaddr ();
      Nothing
  | Satp_switch n ->
      (* no sfence: the satp write itself must invalidate *)
      Csr_file.write csr Csr_addr.satp
        (if n = 2 then 0L else satp_of_root t n);
      Nothing
  | Sum_toggle ->
      Csr_file.write csr Csr_addr.mstatus
        (Int64.logxor
           (Csr_file.read_raw csr Csr_addr.mstatus)
           (Int64.shift_left 1L Ms.sum));
      Nothing
  | Mxr_toggle ->
      Csr_file.write csr Csr_addr.mstatus
        (Int64.logxor
           (Csr_file.read_raw csr Csr_addr.mstatus)
           (Int64.shift_left 1L Ms.mxr));
      Nothing
  | Mprv_toggle ->
      let m = Csr_file.read_raw csr Csr_addr.mstatus in
      let m = Int64.logxor m (Int64.shift_left 1L Ms.mprv) in
      (* MPP = S so MPRV-mediated accesses translate *)
      let m =
        Int64.logor
          (Int64.logand m (Int64.lognot (Int64.shift_left 3L Ms.mpp_lo)))
          (Int64.shift_left 1L Ms.mpp_lo)
      in
      Csr_file.write_raw csr Csr_addr.mstatus m;
      Nothing
  | Priv_set p ->
      t.hart.Hart.priv <- p;
      Nothing
  | Pmp_set { slot; base_page; npages; perms } ->
      let base = abs t (pool_off + (base_page lsl 12)) in
      let size = Int64.of_int (npages lsl 12) in
      Csr_file.write csr (Csr_addr.pmpaddr slot)
        (Pmp.napot_encode ~base ~size);
      let cfg = Csr_file.read_raw csr (Csr_addr.pmpcfg 0) in
      let shift = 8 * slot in
      let byte = Int64.of_int (perms lor 0b11000) (* NAPOT *) in
      Csr_file.write csr (Csr_addr.pmpcfg 0)
        (Int64.logor
           (Int64.logand cfg
              (Int64.lognot (Int64.shift_left 0xFFL shift)))
           (Int64.shift_left byte shift));
      Nothing
  | Access { kind; vaddr; size; value } -> (
      try
        match kind with
        | Aload -> Value (Machine.vload t.machine t.hart vaddr size ~signed:false)
        | Astore ->
            Machine.vstore t.machine t.hart vaddr size value;
            Stored
        | Afetch ->
            Value
              (Machine.resolve t.machine t.hart ~priv:t.hart.Hart.priv
                 Vmem.Fetch vaddr 4)
      with Cause.Trap (e, _) -> Fault e)

(* ------------------------------------------------------------------ *)
(* Differential execution                                              *)
(* ------------------------------------------------------------------ *)

type divergence = {
  op_index : int;  (* -1: final RAM hash mismatch *)
  op : string;
  tlb_outcome : string;
  walker_outcome : string;
}

type pair = { tlb : side; walker : side }

let create_pair ?(tlb_entries = 16) () =
  { tlb = create ~tlb_entries; walker = create ~tlb_entries:0 }

(* Run one op stream on both sides; [on_outcome] sees (op index, op,
   outcome) for coverage accounting.  Returns the first divergence. *)
let run_ops pair ?(on_outcome = fun _ _ _ -> ()) ops =
  reset pair.tlb;
  reset pair.walker;
  let div = ref None in
  let i = ref 0 in
  (try
     List.iter
       (fun op ->
         let a = apply pair.tlb op in
         let b = apply pair.walker op in
         on_outcome !i op a;
         if a <> b then begin
           div :=
             Some
               {
                 op_index = !i;
                 op = Format.asprintf "%a" pp_op op;
                 tlb_outcome = outcome_to_string a;
                 walker_outcome = outcome_to_string b;
               };
           raise Exit
         end;
         incr i)
       ops
   with Exit -> ());
  match !div with
  | Some _ as d -> d
  | None ->
      let hash side = Memory.hash (Bus.ram side.machine.Machine.bus) in
      let ha = hash pair.tlb and hb = hash pair.walker in
      if ha <> hb then
        Some
          {
            op_index = -1;
            op = "final RAM hash";
            tlb_outcome = Printf.sprintf "%#Lx" ha;
            walker_outcome = Printf.sprintf "%#Lx" hb;
          }
      else None
