(** The differential checker behind faithful emulation (Definition 1).

    One side is the reference machine — the executable ISA
    specification, instantiated with the *virtual* configuration
    [c_r] and executing the instruction natively in M-mode. The other
    side is Miralis's emulator operating on a virtual hart. Both start
    from the same sampled architectural state; the checker demands
    bit-identical post-states (CSRs, registers, pc, privilege, wfi),
    with traps compared through the common hardware trap-entry
    transform.

    This is the OCaml analogue of the paper's Kani setup: instead of
    symbolic execution over all states, we do bounded-exhaustive
    enumeration over the instruction space crossed with adversarial
    state samples (boundary patterns plus seeded-random values). *)

type t

val create : ?inject_bug:Miralis.Config.bug -> ?seed:int64 -> unit -> t
(** A checker instance: a one-hart reference machine configured with
    the virtual configuration, plus a virtual hart. [seed] roots all
    sampling randomness (default {!Miralis.Config.default_seed}). *)

val config : t -> Miralis.Config.t

(** One sampled machine state. *)
type sample

val gen_sample : t -> Mir_util.Prng.t -> sample
(** Draw a state: every implemented CSR gets a boundary or random
    value (legalized through the shared WARL spec so both sides can
    hold it), the registers are random, and the timer/software
    interrupt lines are sampled booleans. mstatus.MIE is forced clear
    so the reference machine executes the instruction rather than
    taking an interrupt. *)

(** Result of checking one (state, instruction) pair. *)
type verdict =
  | Agree
  | Skip  (** the sampled PMP forbids the reference fetch *)
  | Disagree of string

val check : t -> sample -> Mir_rv.Instr.t -> verdict

val check_interrupt_case :
  t -> mip:int64 -> mie:int64 -> mstatus_mie:bool ->
  world:Miralis.Vhart.world -> verdict
(** Compare the virtual-interrupt injection decision against the
    reference machine's M-level interrupt selection. *)

(** {2 Stream execution — the fuzzer's engine}

    A stream runs a whole instruction sequence against ONE evolving
    architectural state: CSR effects accumulate across steps, which is
    where sequence-dependent bugs (PMP reconfiguration, delegation
    flips, MPIE shuffles) live. Each step re-arms pc/privilege/world —
    the firmware handler executes one privileged instruction at a time
    from a fixed address — while all other state flows on. The oracle
    is the {!Mir_trace.Tracer.digest_values} digest over pc, priv,
    wfi, x1..x31 and {e every} implemented CSR, computed with the
    identical function on both sides. *)

(** How a stream step resolved — the trap-cause coordinate of the
    fuzzer's coverage edges. *)
type outcome =
  | O_next  (** plain fall-through emulation *)
  | O_jump  (** mret back into vM-mode *)
  | O_exit_os  (** world switch out of virtual M-mode *)
  | O_vtrap of Mir_rv.Cause.exc  (** trap injected into the firmware *)
  | O_wfi
  | O_irq of Mir_rv.Cause.intr  (** a virtual interrupt preempted the step *)
  | O_skip  (** the sampled PMP blocks the reference fetch *)

type step = { verdict : verdict; outcome : outcome }

val outcome_tag : outcome -> int
(** Small-int class of the outcome (0..6), stable across runs. *)

val outcome_cause : outcome -> int
(** Exception/interrupt code of trap outcomes, 0 otherwise. *)

val stream_begin : t -> sample -> unit
(** Load the sampled initial state into both sides. *)

val stream_step : t -> Mir_rv.Instr.t -> step
(** Execute one instruction on the evolving stream state: the
    reference machine steps for real (interrupt delivery included),
    the emulator runs on the virtual hart, and the post-state digests
    must agree. *)

val set_lines : t -> mtip:bool -> msip:bool -> meip:bool -> unit
(** Drive the timer/software/external interrupt lines mid-stream
    (CLINT, PLIC and both raw mip copies stay consistent). *)
