(** The differential checker behind faithful emulation (Definition 1).

    One side is the reference machine — the executable ISA
    specification, instantiated with the *virtual* configuration
    [c_r] and executing the instruction natively in M-mode. The other
    side is Miralis's emulator operating on a virtual hart. Both start
    from the same sampled architectural state; the checker demands
    bit-identical post-states (CSRs, registers, pc, privilege, wfi),
    with traps compared through the common hardware trap-entry
    transform.

    This is the OCaml analogue of the paper's Kani setup: instead of
    symbolic execution over all states, we do bounded-exhaustive
    enumeration over the instruction space crossed with adversarial
    state samples (boundary patterns plus seeded-random values). *)

type t

val create : ?inject_bug:Miralis.Config.bug -> ?seed:int64 -> unit -> t
(** A checker instance: a one-hart reference machine configured with
    the virtual configuration, plus a virtual hart. [seed] roots all
    sampling randomness (default {!Miralis.Config.default_seed}). *)

val config : t -> Miralis.Config.t

(** One sampled machine state. *)
type sample

val gen_sample : t -> Mir_util.Prng.t -> sample
(** Draw a state: every implemented CSR gets a boundary or random
    value (legalized through the shared WARL spec so both sides can
    hold it), the registers are random, and the timer/software
    interrupt lines are sampled booleans. mstatus.MIE is forced clear
    so the reference machine executes the instruction rather than
    taking an interrupt. *)

(** Result of checking one (state, instruction) pair. *)
type verdict =
  | Agree
  | Skip  (** the sampled PMP forbids the reference fetch *)
  | Disagree of string

val check : t -> sample -> Mir_rv.Instr.t -> verdict

val check_interrupt_case :
  t -> mip:int64 -> mie:int64 -> mstatus_mie:bool ->
  world:Miralis.Vhart.world -> verdict
(** Compare the virtual-interrupt injection decision against the
    reference machine's M-level interrupt selection. *)
