module Prng = Mir_util.Prng
module Bits = Mir_util.Bits
module Machine = Mir_rv.Machine
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Pmp = Mir_rv.Pmp
module Priv = Mir_rv.Priv
module Vhart = Miralis.Vhart
module Vpmp = Miralis.Vpmp
module Config = Miralis.Config

(* Does the 8-byte access at [addr] touch [base, base+size)? *)
let in_range base size addr =
  let last = Int64.add addr 7L in
  Bits.ule base last && Bits.ult addr (Int64.add base size)

(* Probe addresses: the boundaries of every virtual region, the
   carve-outs, and random addresses. *)
let probe_addresses prng config ventries =
  let boundary (lo, hi) =
    [ lo; Int64.add lo 8L; Int64.sub lo 8L; hi; Int64.sub hi 8L;
      Int64.add hi 8L ]
  in
  let regions =
    Array.to_list ventries
    |> List.mapi (fun i (_ : Pmp.entry) ->
           let prev =
             if i = 0 then 0L else ventries.(i - 1).Pmp.addr
           in
           Pmp.range ~prev_addr:prev ventries.(i))
    |> List.filter_map Fun.id
  in
  let carveouts =
    [
      config.Config.miralis_base;
      Int64.add config.Config.miralis_base 0x100L;
      Vpmp.vdev_base;
      Int64.add Vpmp.vdev_base 0x8L;
    ]
  in
  let random =
    List.init 24 (fun _ ->
        Bits.align_down
          (Int64.logand (Prng.next prng) 0xFFFFFFFFL)
          ~size:8)
  in
  List.concat_map boundary regions @ carveouts @ random
  |> List.filter (fun a -> a >= 0L)

let run ?(configs = 400) ?inject_bug ?seed () =
  Tasks.timed "PMP faithful execution" (fun () ->
      let host =
        { Machine.default_config with Machine.ram_size = 64 * 1024 }
      in
      let config = Config.make ?inject_bug ?seed ~machine:host () in
      let machine = Machine.create host in
      let hart = machine.Machine.harts.(0) in
      let vh = Vhart.create config ~id:0 in
      let prng = Config.prng config "verif:faithful-execution" in
      let cases = ref 0 and bad = ref 0 in
      let first = ref None in
      let vcfg = config.Config.vcsr_config in
      let nv = vcfg.Mir_rv.Csr_spec.pmp_count in
      for _ = 1 to configs do
        (* Sample a virtual PMP configuration through the
           architectural write path (locks and WARL included). *)
        for i = 0 to nv - 1 do
          Csr_file.write vh.Vhart.csr (Csr_addr.pmpaddr i)
            (Int64.shift_right_logical (Prng.next prng)
               (2 + Prng.int_below prng 30))
        done;
        Csr_file.write vh.Vhart.csr (Csr_addr.pmpcfg 0) (Prng.next prng);
        vh.Vhart.mprv_active <- Prng.int_below prng 4 = 0;
        let ventries = Csr_file.pmp_entries vh.Vhart.csr in
        List.iter
          (fun world ->
            vh.Vhart.world <- world;
            let host_entries = Vpmp.build config vh ~policy:[] in
            (* install physically too, exercising the serializer *)
            Vpmp.install config vh hart ~policy:[];
            let host_decoded = Csr_file.pmp_entries hart.Mir_rv.Hart.csr in
            let priv =
              match world with
              | Vhart.Firmware -> Priv.U (* vM-mode is physically U *)
              | Vhart.Os -> Priv.S
            in
            List.iter
              (fun addr ->
                List.iter
                  (fun access ->
                    incr cases;
                    let host_ok =
                      Pmp.check ~entries:host_entries ~priv access ~addr
                        ~size:8
                    in
                    let host_ok' =
                      Pmp.check ~entries:host_decoded ~priv access ~addr
                        ~size:8
                    in
                    let expected =
                      if
                        in_range config.Config.miralis_base
                          config.Config.miralis_size addr
                        || in_range Vpmp.vdev_base Vpmp.vdev_size addr
                      then false
                      else
                        match world with
                        | Vhart.Firmware ->
                            if vh.Vhart.mprv_active && access <> Pmp.Exec
                            then false
                            else
                              Pmp.check ~entries:ventries ~priv:Priv.M
                                access ~addr ~size:8
                        | Vhart.Os ->
                            Pmp.check ~entries:ventries ~priv:Priv.S access
                              ~addr ~size:8
                    in
                    if host_ok <> expected || host_ok' <> expected then begin
                      incr bad;
                      if !first = None then
                        first :=
                          Some
                            (Printf.sprintf
                               "world=%s mprv=%b addr=%Lx access=%s: \
                                host=%b installed=%b expected=%b"
                               (Vhart.world_name world)
                               vh.Vhart.mprv_active addr
                               (match access with
                               | Pmp.Read -> "R"
                               | Pmp.Write -> "W"
                               | Pmp.Exec -> "X")
                               host_ok host_ok' expected)
                    end)
                  [ Pmp.Read; Pmp.Write; Pmp.Exec ])
              (probe_addresses prng config ventries))
          [ Vhart.Firmware; Vhart.Os ]
      done;
      (!cases, 0, !bad, !first))
