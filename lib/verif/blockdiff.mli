(** Differential oracle for the decoded basic-block engine: one
    machine consuming steps through [Machine.step_blocks] against an
    identical machine stepped by the per-instruction interpreter, in
    lockstep segments over the same generated guest program.  The
    engine's contract is bit-exactness at every step boundary, so
    after each segment the complete architectural state must agree,
    and the final RAM images (including self-modified code) must hash
    identically. *)

type case = {
  seed : int64;  (** seeds registers and the data page *)
  words : int array;  (** instruction encodings, loaded at the code base *)
  segs : int array;  (** lockstep segment budgets, in machine steps *)
}

val pp_case : Format.formatter -> case -> unit

val max_words : int
(** Code-window capacity in instruction slots (256). *)

val payload_a : int
val payload_b : int
(** The two valid instruction encodings pinned in x14/x15 for
    self-modifying stores (addi x5,x5,1 and jal x0,+8). *)

type divergence = {
  seg_index : int;  (** -1 when the final RAM hashes disagree *)
  field : string;  (** which architectural field disagreed *)
  blocks_state : string;
  interp_state : string;
}

type seg_view = {
  steps : int;  (** steps consumed this segment *)
  priv : Mir_rv.Priv.t;
  cause : int64;  (** raw mcause after the segment *)
  region : int;  (** pc: 0 = code window, 1 = elsewhere in RAM, 2 = outside *)
  wfi : bool;
}
(** Block-side summary after a segment, for coverage accounting. *)

val run_case :
  ?on_segment:(int -> seg_view -> unit) -> case -> divergence option
(** Run one case on a freshly built pair of machines; returns the
    first divergence (None = the engine matched the interpreter at
    every segment boundary and in final RAM). *)

val save : case -> path:string -> unit
val load : path:string -> (case, string) result
(** JSONL vector round-trip ([load] is the exact inverse of
    [save]). *)
