(** Faithful execution of loads and stores (Definition 2, §6.3–6.4).

    The VFM must program the host PMP so that direct execution behaves
    as on a reference machine holding the virtual PMP configuration:

    - accesses to Miralis's own memory or the virtual-device window
      must fail on the host regardless of the virtual configuration;
    - every other access must succeed or fail on the host exactly as
      the reference [pmpCheck] decides for the virtual entries — with
      M-mode semantics while the firmware executes (plus the
      execute-only restriction during MPRV emulation) and S-mode
      semantics while the OS executes.

    The checker samples virtual PMP configurations (written through
    the architectural WARL path, so locked entries and reserved
    combinations are covered), builds the host entries with
    {!Miralis.Vpmp.build}, and compares verdicts at region boundaries
    and random probe addresses. *)

val run :
  ?configs:int -> ?inject_bug:Miralis.Config.bug -> ?seed:int64 -> unit ->
  Tasks.report
