(** The symbolic faithful-emulation prover.

    Establishes the paper's Definition 1 — the emulator agrees with
    the reference privileged semantics — over *all* states rather
    than samples: the shared transforms are re-executed at the
    symbolic bitvector backend ({!Mir_sym}), every control-dependent
    bit splits the path space, and each leaf's pair of result states
    is checked for equivalence over the remaining free bits. A task
    counts as *proved* only when every path was explored and none
    diverged; a diverging path yields a concrete counterexample
    state, which is how the injected bug classes must surface. *)

type report = {
  name : string;
  instances : int;  (** concrete instruction/address instances *)
  paths : int;  (** fully explored symbolic paths *)
  unexplored : int;  (** paths cut by depth bound or blast overflow *)
  mismatches : int;
  first_counterexample : string option;
  depth_hist : int array;  (** leaves per split depth *)
  seconds : float;
}

val proved : report -> bool
(** No mismatches and no unexplored paths. *)

val pp_report : Format.formatter -> report -> unit

val csr_read : ?quick:bool -> ?inject_bug:Miralis.Config.bug -> unit -> report
(** All read-only CSR instruction forms over the probed address
    space; [quick] restricts the sweep to the implemented CSRs plus
    the interesting unimplemented corners (default: all 4096). *)

val csr_write : ?quick:bool -> ?inject_bug:Miralis.Config.bug -> unit -> report
(** All writing CSR instruction forms, same address space. *)

val mret : ?quick:bool -> ?inject_bug:Miralis.Config.bug -> unit -> report
val sret : ?quick:bool -> ?inject_bug:Miralis.Config.bug -> unit -> report

val virtual_interrupt :
  ?quick:bool -> ?inject_bug:Miralis.Config.bug -> unit -> report
(** The virtual-interrupt injection decision against the reference
    take-an-interrupt decision, in both worlds. *)

val all :
  ?quick:bool -> ?inject_bug:Miralis.Config.bug -> unit -> report list
(** All five proof tasks, in order. *)
