(* Differential oracle for the decoded basic-block engine.

   Two identically-configured machines execute the same generated
   guest program over the same lockstep schedule, with exactly one
   difference: one side consumes steps through [Machine.step_blocks]
   (the decoded basic-block engine), the other calls the
   per-instruction interpreter [Machine.step] the same number of
   times.  The engine's contract is bit-exactness at every step
   boundary, so after each segment the complete architectural picture
   — pc, privilege, every register, the observable CSR file, cycle /
   instret / global step counters, WFI and halt state — must agree,
   and at the end of the case the two RAM images (which include any
   self-modified code) must hash identically.  Any disagreement is an
   engine bug: a stale block surviving an invalidation event, counter
   bookkeeping drifting across a batched pure run, a trap landing with
   the wrong pc, or an interrupt-staleness window shifted by the
   resident self-chain loop.

   The guest program is adversarial by construction (see
   [Mir_fuzz.Blockfuzz]): straight-line ALU runs, tight loops,
   branches and jumps with occasionally misaligned targets, loads /
   stores / AMOs that trap mid-block, stores into the program's own
   code pages (block invalidation), CSR traffic that bumps the
   vm-epoch (satp, pmpaddr), fence.i, ecall / ebreak / mret — all
   running under a trap handler that skips the faulting instruction
   when the resume point stays inside the code window and restarts
   the program otherwise, so no generated stream can wedge either
   machine somewhere the other can't follow.

   Layout (offsets from ram_base; 64 KiB of RAM):
     0x0100  trap handler (mtvec, direct mode; clobbers x29-x31)
     0x0E00  code window, 0x400 bytes — deliberately straddling the
             first 4 KiB page boundary so blocks and their
             invalidation get exercised across pages
     0x2000  data window, one 4 KiB page, PRNG-filled
   Registers x10-x15 are pinned pointers / payloads (data and code
   window bases, two valid instruction encodings for self-modifying
   stores) that generated code never overwrites. *)

module Machine = Mir_rv.Machine
module Memory = Mir_rv.Memory
module Bus = Mir_rv.Bus
module Hart = Mir_rv.Hart
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Instr = Mir_rv.Instr
module Encode = Mir_rv.Encode
module Priv = Mir_rv.Priv
module Prng = Mir_util.Prng

(* ------------------------------------------------------------------ *)
(* Guest layout                                                        *)
(* ------------------------------------------------------------------ *)

let ram_size = 64 * 1024
let handler_off = 0x100
let code_off = 0xE00
let code_span = 0x400 (* max 256 instruction slots *)
let data_off = 0x2000
let max_words = code_span / 4

(* The M-mode trap handler: skip the faulting instruction if mepc+4
   still lands inside the code window, otherwise restart the program
   at the window base.  The bounds check is what keeps wild jumps
   (jalr through a garbage register, mret to a stale mepc) from
   wedging both machines outside fetchable memory. *)
let handler =
  [
    (* x30 <- mepc + 4 *)
    Instr.Csr { op = Instr.Csrrs; rd = 30; src = Instr.Reg 0; csr = Csr_addr.mepc };
    Instr.Op_imm (Instr.Addi, 30, 30, 4L);
    (* x31 <- code window base (auipc at handler_off + 8) *)
    Instr.Auipc (31, 0x1000L);
    Instr.Op_imm
      (Instr.Addi, 31, 31, Int64.of_int (code_off - handler_off - 8 - 0x1000));
    Instr.Branch (Instr.Blt, 30, 31, 20L);
    Instr.Op_imm (Instr.Addi, 29, 31, Int64.of_int code_span);
    Instr.Branch (Instr.Bge, 30, 29, 12L);
    Instr.Csr { op = Instr.Csrrw; rd = 0; src = Instr.Reg 30; csr = Csr_addr.mepc };
    Instr.Mret;
    (* out of window: restart at the code base *)
    Instr.Csr { op = Instr.Csrrw; rd = 0; src = Instr.Reg 31; csr = Csr_addr.mepc };
    Instr.Mret;
  ]

(* Payload words for self-modifying stores: real instructions, so a
   store into the code window can splice live code, not just garbage
   that traps as illegal. *)
let payload_a = Encode.encode (Instr.Op_imm (Instr.Addi, 5, 5, 1L))
let payload_b = Encode.encode (Instr.Jal (0, 8L))

(* ------------------------------------------------------------------ *)
(* Cases                                                               *)
(* ------------------------------------------------------------------ *)

type case = {
  seed : int64;  (** seeds registers and the data page *)
  words : int array;  (** instruction encodings, loaded at the code base *)
  segs : int array;  (** lockstep segment budgets, in machine steps *)
}

let pp_case fmt c =
  Format.fprintf fmt "seed=0x%Lx %d words, %d segments (%d steps)" c.seed
    (Array.length c.words) (Array.length c.segs)
    (Array.fold_left ( + ) 0 c.segs)

(* ------------------------------------------------------------------ *)
(* One side of the differential pair                                   *)
(* ------------------------------------------------------------------ *)

type side = { machine : Machine.t; hart : Hart.t }

let create_side ~block_engine =
  let machine =
    Machine.create
      { Machine.default_config with Machine.ram_size; nharts = 1; block_engine }
  in
  { machine; hart = machine.Machine.harts.(0) }

let ram_base s = s.machine.Machine.config.Machine.ram_base
let abs s off = Int64.add (ram_base s) (Int64.of_int off)

let set_word img off w =
  for b = 0 to 3 do
    Bytes.set img (off + b) (Char.chr ((w lsr (8 * b)) land 0xFF))
  done

let setup side case =
  let n = Array.length case.words in
  if n = 0 || n > max_words then
    invalid_arg "Blockdiff.setup: code must be 1..256 words";
  let prng = Prng.create ~seed:case.seed in
  (* deterministic data-page contents first (so loads see real bits),
     then the image load, which flushes the icache and block cache *)
  for i = 0 to 511 do
    ignore
      (Machine.phys_store side.machine
         (abs side (data_off + (8 * i)))
         8 (Prng.next prng))
  done;
  let img = Bytes.make (code_off + (4 * n)) '\000' in
  List.iteri
    (fun i ins -> set_word img (handler_off + (4 * i)) (Encode.encode ins))
    handler;
  Array.iteri (fun i w -> set_word img (code_off + (4 * i)) w) case.words;
  Machine.load_program side.machine (ram_base side) img;
  Hart.reset side.hart ~pc:(abs side code_off);
  for r = 1 to 31 do
    Hart.set side.hart r (Prng.next prng)
  done;
  (* pinned pointers and payloads (generated code never writes 10-15) *)
  Hart.set side.hart 10 (abs side data_off);
  Hart.set side.hart 11 (abs side (data_off + 0x800));
  Hart.set side.hart 12 (abs side code_off);
  Hart.set side.hart 13 (abs side (code_off + 0x200));
  Hart.set side.hart 14 (Int64.of_int payload_a);
  Hart.set side.hart 15 (Int64.of_int payload_b);
  Csr_file.write_raw side.hart.Hart.csr Csr_addr.mtvec (abs side handler_off)

(* ------------------------------------------------------------------ *)
(* State comparison                                                    *)
(* ------------------------------------------------------------------ *)

let reg_names = Array.init 32 (fun i -> "x" ^ string_of_int i)

let csr_probe =
  [|
    ("mstatus", Csr_addr.mstatus); ("mepc", Csr_addr.mepc);
    ("mcause", Csr_addr.mcause); ("mtval", Csr_addr.mtval);
    ("mscratch", Csr_addr.mscratch); ("sscratch", Csr_addr.sscratch);
    ("satp", Csr_addr.satp); ("mie", Csr_addr.mie); ("mip", Csr_addr.mip);
    ("mtvec", Csr_addr.mtvec); ("stvec", Csr_addr.stvec);
    ("sepc", Csr_addr.sepc); ("scause", Csr_addr.scause);
    ("stval", Csr_addr.stval); ("medeleg", Csr_addr.medeleg);
    ("mideleg", Csr_addr.mideleg); ("pmpcfg0", Csr_addr.pmpcfg 0);
    ("pmpaddr0", Csr_addr.pmpaddr 0); ("pmpaddr1", Csr_addr.pmpaddr 1);
  |]

(* First architectural mismatch, as (field, block-side, interp-side);
   strings are only materialized on a mismatch. *)
let compare_sides a b =
  let diff = ref None in
  let chk64 name va vb =
    if !diff = None && va <> vb then
      diff :=
        Some (name, Printf.sprintf "%#Lx" va, Printf.sprintf "%#Lx" vb)
  in
  let chki name va vb =
    if !diff = None && va <> vb then
      diff := Some (name, string_of_int va, string_of_int vb)
  in
  let chkb name va vb =
    if !diff = None && va <> vb then
      diff := Some (name, string_of_bool va, string_of_bool vb)
  in
  chk64 "pc" a.hart.Hart.pc b.hart.Hart.pc;
  if !diff = None && a.hart.Hart.priv <> b.hart.Hart.priv then
    diff :=
      Some
        ( "priv",
          Priv.to_string a.hart.Hart.priv,
          Priv.to_string b.hart.Hart.priv );
  chkb "wfi" a.hart.Hart.wfi b.hart.Hart.wfi;
  chkb "halted" a.hart.Hart.halted b.hart.Hart.halted;
  chkb "poweroff" a.machine.Machine.poweroff b.machine.Machine.poweroff;
  chki "cycles" a.hart.Hart.cycles b.hart.Hart.cycles;
  chki "instret" a.hart.Hart.instret b.hart.Hart.instret;
  chki "instr_count" a.machine.Machine.instr_count
    b.machine.Machine.instr_count;
  for r = 1 to 31 do
    chk64 reg_names.(r) (Hart.get a.hart r) (Hart.get b.hart r)
  done;
  Array.iter
    (fun (name, addr) ->
      chk64 name
        (Csr_file.read_raw a.hart.Hart.csr addr)
        (Csr_file.read_raw b.hart.Hart.csr addr))
    csr_probe;
  !diff

(* ------------------------------------------------------------------ *)
(* Differential execution                                              *)
(* ------------------------------------------------------------------ *)

type divergence = {
  seg_index : int;  (** -1 when the final RAM hashes disagree *)
  field : string;
  blocks_state : string;
  interp_state : string;
}

type seg_view = {
  steps : int;
  priv : Priv.t;
  cause : int64;  (** raw mcause after the segment *)
  region : int;  (** pc: 0 = code window, 1 = elsewhere in RAM, 2 = outside *)
  wfi : bool;
}

let view side steps =
  let pc = side.hart.Hart.pc in
  let base = ram_base side in
  let region =
    if pc >= abs side code_off && pc < abs side (code_off + code_span) then 0
    else if pc >= base && pc < Int64.add base (Int64.of_int ram_size) then 1
    else 2
  in
  {
    steps;
    priv = side.hart.Hart.priv;
    cause = Csr_file.read_raw side.hart.Hart.csr Csr_addr.mcause;
    region;
    wfi = side.hart.Hart.wfi;
  }

(* Run one case on a fresh pair; [on_segment] sees (segment index,
   block-side view) for coverage accounting.  Returns the first
   divergence. *)
let run_case ?(on_segment = fun _ _ -> ()) case =
  let a = create_side ~block_engine:true in
  let b = create_side ~block_engine:false in
  setup a case;
  setup b case;
  let div = ref None in
  (try
     Array.iteri
       (fun si budget ->
         let consumed = ref 0 in
         while
           !consumed < budget
           && (not a.machine.Machine.poweroff)
           && not a.hart.Hart.halted
         do
           consumed :=
             !consumed
             + Machine.step_blocks a.machine a.hart
                 ~budget:(budget - !consumed)
         done;
         (* the interpreter side replays exactly the consumed count,
            so the comparison lands on the same step boundary *)
         for _ = 1 to !consumed do
           Machine.step b.machine b.hart
         done;
         on_segment si (view a !consumed);
         (match compare_sides a b with
         | Some (field, av, bv) ->
             div :=
               Some
                 { seg_index = si; field; blocks_state = av; interp_state = bv };
             raise Exit
         | None -> ());
         if a.machine.Machine.poweroff || a.hart.Hart.halted then raise Exit)
       case.segs
   with Exit -> ());
  match !div with
  | Some _ as d -> d
  | None ->
      let hash s = Memory.hash (Bus.ram s.machine.Machine.bus) in
      let ha = hash a and hb = hash b in
      if ha <> hb then
        Some
          {
            seg_index = -1;
            field = "ram hash";
            blocks_state = Printf.sprintf "%#Lx" ha;
            interp_state = Printf.sprintf "%#Lx" hb;
          }
      else None

(* ------------------------------------------------------------------ *)
(* JSONL vectors                                                       *)
(* ------------------------------------------------------------------ *)

(* One flat JSON object per line: a header with the register/data
   seed, then one line per code word and one per segment budget, in
   order.  Same family of formats as lib/fuzz's Input vectors; the
   parser below is the exact inverse of [to_jsonl], not general
   JSON. *)

let to_jsonl c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"blockdiff\":1,\"seed\":\"0x%Lx\"}\n" c.seed);
  Array.iter
    (fun w -> Buffer.add_string buf (Printf.sprintf "{\"op\":\"w\",\"bits\":\"0x%x\"}\n" w))
    c.words;
  Array.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "{\"op\":\"s\",\"steps\":%d}\n" s))
    c.segs;
  Buffer.contents buf

let of_jsonl s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty blockdiff vector"
  | header :: rest -> (
      match
        Scanf.sscanf header "{\"blockdiff\":1,\"seed\":\"0x%Lx\"}" Fun.id
      with
      | exception _ -> Error ("bad blockdiff header: " ^ header)
      | seed -> (
          let words = ref [] and segs = ref [] and err = ref None in
          List.iter
            (fun line ->
              if !err = None then
                match
                  Scanf.sscanf line "{\"op\":\"w\",\"bits\":\"0x%x\"}" Fun.id
                with
                | w -> words := w :: !words
                | exception _ -> (
                    match
                      Scanf.sscanf line "{\"op\":\"s\",\"steps\":%d}" Fun.id
                    with
                    | s -> segs := s :: !segs
                    | exception _ -> err := Some ("bad vector line: " ^ line)))
            rest;
          match !err with
          | Some e -> Error e
          | None ->
              let words = Array.of_list (List.rev !words) in
              let segs = Array.of_list (List.rev !segs) in
              if Array.length words = 0 || Array.length words > max_words then
                Error "blockdiff vector: code must be 1..256 words"
              else if
                Array.length segs = 0 || Array.exists (fun s -> s < 1) segs
              then Error "blockdiff vector: segments must be positive"
              else Ok { seed; words; segs }))

let save c ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl c))

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_jsonl s
  | exception Sys_error msg -> Error msg
