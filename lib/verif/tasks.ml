module Prng = Mir_util.Prng
module Instr = Mir_rv.Instr
module Csr_spec = Mir_rv.Csr_spec

type report = {
  name : string;
  cases : int;
  skipped : int;
  mismatches : int;
  first_counterexample : string option;
  seconds : float;
}

let pp_report fmt r =
  Format.fprintf fmt "%-22s %8d cases %6d skipped %4d mismatches %8.2fs%s"
    r.name r.cases r.skipped r.mismatches r.seconds
    (match r.first_counterexample with
    | Some c -> "\n    first: " ^ c
    | None -> "")

let timed name f =
  let t0 = Sys.time () in
  let cases, skipped, mismatches, first = f () in
  {
    name;
    cases;
    skipped;
    mismatches;
    first_counterexample = first;
    seconds = Sys.time () -. t0;
  }

(* Run [instrs] against [samples] fresh state samples each. *)
let sweep ?inject_bug ?seed ~name ~samples instrs =
  timed name (fun () ->
      let d = Diff.create ?inject_bug ?seed () in
      (* one deterministic stream per task, split off the config seed *)
      let prng = Miralis.Config.prng (Diff.config d) ("verif:" ^ name) in
      let cases = ref 0 and skipped = ref 0 and bad = ref 0 in
      let first = ref None in
      for _ = 1 to samples do
        let sample = Diff.gen_sample d prng in
        List.iter
          (fun instr ->
            incr cases;
            match Diff.check d sample instr with
            | Diff.Agree -> ()
            | Diff.Skip -> incr skipped
            | Diff.Disagree msg ->
                incr bad;
                if !first = None then first := Some msg)
          instrs
      done;
      (!cases, !skipped, !bad, !first))

let mret_instr = Instr.Mret
let sret_instr = Instr.Sret

let mret ?(samples = 3000) ?inject_bug ?seed () =
  sweep ?inject_bug ?seed ~name:"mret instruction" ~samples [ mret_instr ]

let sret ?(samples = 3000) ?inject_bug ?seed () =
  sweep ?inject_bug ?seed ~name:"sret instruction" ~samples [ sret_instr ]

let wfi ?(samples = 3000) ?inject_bug ?seed () =
  sweep ?inject_bug ?seed ~name:"wfi instruction" ~samples
    [ Instr.Wfi; Instr.Sfence_vma (0, 0); Instr.Ecall; Instr.Ebreak ]

(* The CSR tasks sweep the *entire* 12-bit CSR address space —
   implemented CSRs must match the reference bit-for-bit and
   unimplemented ones must fault identically on both sides. This is
   what caught the vPMP overrun bug (an out-of-range pmpaddr index the
   emulator accepted). *)
let csr_probe_addrs _config = List.init 4096 Fun.id

let read_forms csr =
  [
    Instr.Csr { op = Instr.Csrrs; rd = 11; src = Instr.Reg 0; csr };
    Instr.Csr { op = Instr.Csrrc; rd = 12; src = Instr.Reg 0; csr };
    Instr.Csr { op = Instr.Csrrs; rd = 13; src = Instr.Imm 0; csr };
    Instr.Csr { op = Instr.Csrrc; rd = 0; src = Instr.Imm 0; csr };
  ]

let write_forms csr =
  [
    Instr.Csr { op = Instr.Csrrw; rd = 11; src = Instr.Reg 5; csr };
    Instr.Csr { op = Instr.Csrrw; rd = 0; src = Instr.Reg 6; csr };
    Instr.Csr { op = Instr.Csrrs; rd = 12; src = Instr.Reg 7; csr };
    Instr.Csr { op = Instr.Csrrc; rd = 13; src = Instr.Reg 28; csr };
    Instr.Csr { op = Instr.Csrrw; rd = 14; src = Instr.Imm 31; csr };
    Instr.Csr { op = Instr.Csrrs; rd = 15; src = Instr.Imm 21; csr };
    Instr.Csr { op = Instr.Csrrc; rd = 5; src = Instr.Imm 9; csr };
  ]

let csr_read ?(samples = 40) ?inject_bug ?seed () =
  let d = Diff.create ?inject_bug ?seed () in
  let addrs =
    csr_probe_addrs (Diff.config d).Miralis.Config.vcsr_config
  in
  sweep ?inject_bug ?seed ~name:"CSR read" ~samples
    (List.concat_map read_forms addrs)

let csr_write ?(samples = 60) ?inject_bug ?seed () =
  let d = Diff.create ?inject_bug ?seed () in
  let addrs =
    csr_probe_addrs (Diff.config d).Miralis.Config.vcsr_config
  in
  sweep ?inject_bug ?seed ~name:"CSR write" ~samples
    (List.concat_map write_forms addrs)

let decoder ?(words = 400_000) ?seed () =
  timed "instruction decoder" (fun () ->
      let prng =
        Miralis.Config.derive
          (Option.value seed ~default:Miralis.Config.default_seed)
          "verif:decoder"
      in
      let cases = ref 0 and bad = ref 0 in
      let first = ref None in
      let note ok msg =
        incr cases;
        if not ok then begin
          incr bad;
          if !first = None then first := Some (msg ())
        end
      in
      (* Exhaustive round-trip over the privileged encoding space:
         every CSR address x op x representative registers. *)
      List.iter
        (fun csr ->
          List.iter
            (fun op ->
              List.iter
                (fun (rd, r) ->
                  List.iter
                    (fun use_imm ->
                      let src =
                        if use_imm then Instr.Imm r else Instr.Reg r
                      in
                      let i = Instr.Csr { op; rd; src; csr } in
                      let ok =
                        Mir_rv.Decode.decode (Mir_rv.Encode.encode i)
                        = Some i
                      in
                      note ok (fun () ->
                          "roundtrip failed: " ^ Instr.to_string i))
                    [ false; true ])
                [ (0, 0); (1, 31); (31, 1); (17, 17) ])
            [ Instr.Csrrw; Instr.Csrrs; Instr.Csrrc ])
        (List.init 4096 Fun.id);
      (* The SYSTEM privileged encodings. *)
      List.iter
        (fun i ->
          let ok = Mir_rv.Decode.decode (Mir_rv.Encode.encode i) = Some i in
          note ok (fun () -> "roundtrip failed: " ^ Instr.to_string i))
        ([ Instr.Mret; Instr.Sret; Instr.Wfi; Instr.Ecall; Instr.Ebreak ]
        @ List.concat_map
            (fun a -> [ Instr.Sfence_vma (a, 0); Instr.Sfence_vma (a, a) ])
            [ 0; 1; 15; 31 ]);
      (* Totality: decode never raises on random words. *)
      for _ = 1 to words do
        let w = Int64.to_int (Int64.logand (Prng.next prng) 0xFFFFFFFFL) in
        let ok =
          match Mir_rv.Decode.decode w with
          | Some _ | None -> true
          | exception _ -> false
        in
        note ok (fun () -> Printf.sprintf "decode raised on %08x" w)
      done;
      (!cases, 0, !bad, !first))

let virtual_interrupt ?inject_bug () =
  timed "virtual interrupt" (fun () ->
      let d = Diff.create ?inject_bug () in
      let cases = ref 0 and bad = ref 0 in
      let first = ref None in
      (* All combinations of the six standard bits in mip and mie. *)
      let expand bits =
        List.fold_left
          (fun acc (i, bit) ->
            if bits land (1 lsl i) <> 0 then Int64.logor acc bit else acc)
          0L
          [
            (0, Csr_spec.Irq.ssip); (1, Csr_spec.Irq.msip);
            (2, Csr_spec.Irq.stip); (3, Csr_spec.Irq.mtip);
            (4, Csr_spec.Irq.seip); (5, Csr_spec.Irq.meip);
          ]
      in
      for mip_bits = 0 to 63 do
        for mie_bits = 0 to 63 do
          List.iter
            (fun (mstatus_mie, world) ->
              incr cases;
              match
                Diff.check_interrupt_case d ~mip:(expand mip_bits)
                  ~mie:(expand mie_bits) ~mstatus_mie ~world
              with
              | Diff.Agree | Diff.Skip -> ()
              | Diff.Disagree msg ->
                  incr bad;
                  if !first = None then first := Some msg)
            [
              (true, Miralis.Vhart.Firmware);
              (false, Miralis.Vhart.Firmware);
              (true, Miralis.Vhart.Os);
              (false, Miralis.Vhart.Os);
            ]
        done
      done;
      (!cases, 0, !bad, !first))

let end_to_end ?(samples = 25) ?inject_bug ?seed () =
  let d = Diff.create ?inject_bug ?seed () in
  let addrs =
    csr_probe_addrs (Diff.config d).Miralis.Config.vcsr_config
  in
  let instrs =
    List.concat_map (fun a -> read_forms a @ write_forms a) addrs
    @ [ Instr.Mret; Instr.Sret; Instr.Wfi; Instr.Sfence_vma (5, 6);
        Instr.Ecall; Instr.Ebreak ]
  in
  sweep ?inject_bug ?seed ~name:"end-to-end emulation" ~samples instrs

let all ?(quick = false) ?seed () =
  let s n = if quick then max 1 (n / 10) else n in
  [
    mret ~samples:(s 3000) ?seed ();
    sret ~samples:(s 3000) ?seed ();
    wfi ~samples:(s 3000) ?seed ();
    decoder ~words:(s 400_000) ?seed ();
    csr_read ~samples:(s 40) ?seed ();
    csr_write ~samples:(s 60) ?seed ();
    virtual_interrupt ();
    end_to_end ~samples:(s 25) ?seed ();
  ]
