(** Differential oracle for the memory-system fast paths: a TLB-backed
    machine against a raw-walker machine ([tlb_entries = 0]) over a
    shared stream of paging operations. PTE edits are always fenced
    (stale-until-sfence is architecturally legal); satp switches,
    SUM/MXR/MPRV writes, and PMP reconfigurations are deliberately not
    — the TLB must self-invalidate there, which is the property under
    test. *)

type access_kind = Aload | Astore | Afetch

type op =
  | Map of {
      root : int;
      vpn : int;
      page : int;
      perms : int;
      fence_all : bool;
    }
  | Unmap of { root : int; vpn : int; fence_all : bool }
  | Sfence of { vaddr : int64 option }
  | Satp_switch of int  (** 0, 1, or 2 = bare *)
  | Sum_toggle
  | Mxr_toggle
  | Mprv_toggle
  | Priv_set of Mir_rv.Priv.t
  | Pmp_set of { slot : int; base_page : int; npages : int; perms : int }
  | Access of {
      kind : access_kind;
      vaddr : int64;
      size : int;
      value : int64;
    }

val pp_op : Format.formatter -> op -> unit

type outcome = Value of int64 | Stored | Fault of Mir_rv.Cause.exc | Nothing

val pool_pages : int
(** Number of 4 KiB data pages ops may map / PMP-cover. *)

type divergence = {
  op_index : int;  (** -1 when the final RAM hashes disagree *)
  op : string;
  tlb_outcome : string;
  walker_outcome : string;
}

type pair

val create_pair : ?tlb_entries:int -> unit -> pair
(** Build the two machines once; [run_ops] resets them per stream. *)

val run_ops :
  pair -> ?on_outcome:(int -> op -> outcome -> unit) -> op list ->
  divergence option
