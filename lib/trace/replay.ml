module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Csr_file = Mir_rv.Csr_file
module Priv = Mir_rv.Priv

type delta = { name : string; recorded : int64; live : int64 }

type divergence = {
  seq : int;
  hart : int;
  instrs : int64;
  pc : int64;
  expected : Event.t option;
  got : Event.t option;
  deltas : delta list;
  reason : string;
  seed : int64 option;
      (* the root PRNG seed of the diverging run, when known — printed
         so a failure is reproducible with one --seed flag *)
}

(* Shadow state: the last *verified* architectural state of each hart.
   The log only carries digests, so when a digest mismatches we diff
   the live hart against this shadow to name the registers that moved
   since the last agreed point. *)
type shadow = {
  mutable valid : bool;
  mutable s_pc : int64;
  mutable s_priv : Priv.t;
  s_regs : int64 array;
  s_csrs : int64 array; (* indexed like Tracer.tracked_csrs *)
}

type t = {
  machine : Machine.t;
  seed : int64 option;
  mutable remaining : Event.t list;
  mutable verified : int;
  mutable divergence : divergence option;
  shadows : shadow array;
}

type outcome =
  | Match of { verified : int }
  | Diverged of divergence
  | Truncated of { verified : int; remaining : int }

let ntracked = List.length Tracer.tracked_csrs

let create ?seed ~machine ~events () =
  {
    machine;
    seed;
    remaining = events;
    verified = 0;
    divergence = None;
    shadows =
      Array.map
        (fun (_ : Hart.t) ->
          {
            valid = false;
            s_pc = 0L;
            s_priv = Priv.M;
            s_regs = Array.make 32 0L;
            s_csrs = Array.make ntracked 0L;
          })
        machine.Machine.harts;
  }

let update_shadow t (hart : Hart.t) =
  let s = t.shadows.(hart.Hart.id) in
  s.valid <- true;
  s.s_pc <- hart.Hart.pc;
  s.s_priv <- hart.Hart.priv;
  for i = 0 to 31 do s.s_regs.(i) <- Hart.get hart i done;
  List.iteri
    (fun i (_, addr) ->
      s.s_csrs.(i) <- Csr_file.read_raw hart.Hart.csr addr)
    Tracer.tracked_csrs

let reg_names =
  [|
    "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0";
    "a1"; "a2"; "a3"; "a4"; "a5"; "a6"; "a7"; "s2"; "s3"; "s4"; "s5";
    "s6"; "s7"; "s8"; "s9"; "s10"; "s11"; "t3"; "t4"; "t5"; "t6";
  |]

(* Diff live hart state against the shadow (last verified state). The
   "recorded" side of each delta is the shadow value — what the state
   was when record and replay last agreed. *)
let compute_deltas t (hart : Hart.t) =
  let s = t.shadows.(hart.Hart.id) in
  if not s.valid then []
  else begin
    let deltas = ref [] in
    if hart.Hart.pc <> s.s_pc then
      deltas := { name = "pc"; recorded = s.s_pc; live = hart.Hart.pc } :: !deltas;
    if hart.Hart.priv <> s.s_priv then
      deltas :=
        {
          name = "priv";
          recorded = Int64.of_int (Priv.to_int s.s_priv);
          live = Int64.of_int (Priv.to_int hart.Hart.priv);
        }
        :: !deltas;
    for i = 31 downto 1 do
      if Hart.get hart i <> s.s_regs.(i) then
        deltas :=
          { name = reg_names.(i); recorded = s.s_regs.(i);
            live = Hart.get hart i }
          :: !deltas
    done;
    List.iteri
      (fun i (name, addr) ->
        let live = Csr_file.read_raw hart.Hart.csr addr in
        if live <> s.s_csrs.(i) then
          deltas := { name; recorded = s.s_csrs.(i); live } :: !deltas)
      Tracer.tracked_csrs;
    List.rev !deltas
  end

let diverge t (hart : Hart.t) ~expected ~got ~reason =
  if t.divergence = None then begin
    t.divergence <-
      Some
        {
          seq =
            (match expected with
            | Some (e : Event.t) -> e.Event.seq
            | None -> t.verified);
          hart = hart.Hart.id;
          instrs = Int64.of_int t.machine.Machine.instr_count;
          pc = hart.Hart.pc;
          expected;
          got;
          deltas = compute_deltas t hart;
          reason;
          seed = t.seed;
        };
    (* stop the run at the next chunk boundary *)
    t.machine.Machine.poweroff <- true
  end

let mismatch_reason (expected : Event.t) (got : Event.t) =
  if expected.Event.hart <> got.Event.hart then Some "event on wrong hart"
  else if Event.kind_name expected.Event.kind <> Event.kind_name got.Event.kind
  then Some "event kind differs"
  else if expected.Event.kind <> got.Event.kind then
    Some "event payload differs"
  else if expected.Event.pc <> got.Event.pc then Some "pc differs"
  else if expected.Event.instrs <> got.Event.instrs then
    Some "instruction count differs"
  else if expected.Event.digest <> got.Event.digest then
    Some "architectural state digest differs"
  else None

let feed t (got : Event.t) =
  if t.divergence <> None then ()
  else begin
    let hart = t.machine.Machine.harts.(got.Event.hart) in
    match t.remaining with
    | [] ->
        diverge t hart ~expected:None ~got:(Some got)
          ~reason:"live execution produced an event past the end of the log"
    | expected :: rest ->
        (match mismatch_reason expected got with
        | None ->
            t.remaining <- rest;
            t.verified <- t.verified + 1;
            update_shadow t hart
        | Some reason ->
            diverge t hart ~expected:(Some expected) ~got:(Some got) ~reason)
  end

let sink t = feed t

let finish t =
  match t.divergence with
  | Some d -> Diverged d
  | None ->
      if t.remaining = [] then Match { verified = t.verified }
      else
        Truncated
          { verified = t.verified; remaining = List.length t.remaining }

let verified t = t.verified
let divergence t = t.divergence

let pp_delta fmt d =
  Format.fprintf fmt "%s: recorded %Lx, live %Lx" d.name d.recorded d.live

let pp_divergence fmt d =
  Format.fprintf fmt
    "divergence at event #%d: hart%d pc=%Lx instrs=%Ld: %s" d.seq d.hart
    d.pc d.instrs d.reason;
  (match d.seed with
  | Some s ->
      Format.fprintf fmt "@\n  reproduce with: --seed 0x%Lx" s
  | None -> ());
  (match d.expected with
  | Some e -> Format.fprintf fmt "@\n  expected: %a" Event.pp e
  | None -> ());
  (match d.got with
  | Some e -> Format.fprintf fmt "@\n  got:      %a" Event.pp e
  | None -> ());
  List.iter (fun dl -> Format.fprintf fmt "@\n  delta %a" pp_delta dl) d.deltas

let pp_outcome fmt = function
  | Match { verified } ->
      Format.fprintf fmt "replay OK: %d events verified, no divergence"
        verified
  | Diverged d -> pp_divergence fmt d
  | Truncated { verified; remaining } ->
      Format.fprintf fmt
        "replay ended early: %d events verified, %d recorded events not \
         reached"
        verified remaining
