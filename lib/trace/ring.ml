type 'a t = {
  data : 'a option array;
  capacity : int;
  mutable start : int; (* index of the oldest element *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity";
  { data = Array.make capacity None; capacity; start = 0; len = 0; dropped = 0 }

let capacity t = t.capacity
let length t = t.len
let dropped t = t.dropped
let total t = t.len + t.dropped

let push t x =
  if t.len < t.capacity then begin
    t.data.((t.start + t.len) mod t.capacity) <- Some x;
    t.len <- t.len + 1
  end
  else begin
    (* full: overwrite the oldest *)
    t.data.(t.start) <- Some x;
    t.start <- (t.start + 1) mod t.capacity;
    t.dropped <- t.dropped + 1
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.get";
  Option.get t.data.((t.start + i) mod t.capacity)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := get t i :: !acc
  done;
  !acc

let clear t =
  Array.fill t.data 0 t.capacity None;
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0
