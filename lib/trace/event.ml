module Cause = Mir_rv.Cause
module Priv = Mir_rv.Priv

type kind =
  | Trap of { cause : Cause.t; from_priv : Priv.t; to_m : bool; tval : int64 }
  | Vtrap of { cause : Cause.t; tval : int64 }
  | Csr_write of { addr : int; value : int64 }
  | Mmio of { write : bool; addr : int64; size : int; value : int64 }
  | World_switch of { to_fw : bool }
  | Pmp_reinstall
  | Sbi_call of { ext : int64; fid : int64; offloaded : bool }

type t = {
  seq : int;
  hart : int;
  instrs : int64;
  pc : int64;
  digest : int64;
  kind : kind;
}

let kind_name = function
  | Trap _ -> "trap"
  | Vtrap _ -> "vtrap"
  | Csr_write _ -> "csrw"
  | Mmio _ -> "mmio"
  | World_switch _ -> "world"
  | Pmp_reinstall -> "pmp"
  | Sbi_call _ -> "sbi"

(* Everything in an event is immutable scalar data, so structural
   equality is the right notion. The sequence number is excluded:
   replay from a mid-run checkpoint restarts a fresh tracer whose
   counter begins at zero. *)
let equal a b =
  a.hart = b.hart && a.instrs = b.instrs && a.pc = b.pc
  && a.digest = b.digest && a.kind = b.kind

(* ------------------------------------------------------------------ *)
(* JSON-lines serialization                                            *)
(* ------------------------------------------------------------------ *)

(* The format is a flat JSON object per line. int64 values are emitted
   as quoted hex strings ("0x..."), which round-trips the full
   unsigned range without touching JSON number limits and keeps the
   log grep-able. All keys and string values are plain ASCII
   identifiers, so no escaping machinery is needed. *)

let hx v = Printf.sprintf "\"0x%Lx\"" v
let js_int = string_of_int
let js_bool b = if b then "true" else "false"
let js_str s = "\"" ^ s ^ "\""

let kind_fields k =
  ("k", js_str (kind_name k))
  ::
  (match k with
  | Trap { cause; from_priv; to_m; tval } ->
      [
        ("cause", hx (Cause.to_xcause cause));
        ("from", js_int (Priv.to_int from_priv));
        ("tom", js_bool to_m);
        ("tval", hx tval);
      ]
  | Vtrap { cause; tval } ->
      [ ("cause", hx (Cause.to_xcause cause)); ("tval", hx tval) ]
  | Csr_write { addr; value } ->
      [ ("csr", js_int addr); ("value", hx value) ]
  | Mmio { write; addr; size; value } ->
      [
        ("w", js_bool write);
        ("addr", hx addr);
        ("size", js_int size);
        ("value", hx value);
      ]
  | World_switch { to_fw } -> [ ("tofw", js_bool to_fw) ]
  | Pmp_reinstall -> []
  | Sbi_call { ext; fid; offloaded } ->
      [ ("ext", hx ext); ("fid", hx fid); ("off", js_bool offloaded) ])

let to_json t =
  let fields =
    [
      ("seq", js_int t.seq);
      ("hart", js_int t.hart);
      ("instrs", hx t.instrs);
      ("pc", hx t.pc);
      ("digest", hx t.digest);
    ]
    @ kind_fields t.kind
  in
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> "\"" ^ k ^ "\":" ^ v) fields)
  ^ "}"

(* Minimal parser for the flat objects above: ["key":value,...] with
   string, bool and integer values. Not a general JSON parser — just
   the inverse of [to_json]. *)
let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = Error (Printf.sprintf "%s at %d in %S" msg !pos line) in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if !pos < n && line.[!pos] = c then begin incr pos; true end
    else false
  in
  let parse_string () =
    (* caller consumed the opening quote *)
    let start = !pos in
    while !pos < n && line.[!pos] <> '"' do incr pos done;
    if !pos >= n then None
    else begin
      let s = String.sub line start (!pos - start) in
      incr pos;
      Some s
    end
  in
  let parse_scalar () =
    skip_ws ();
    if !pos < n && line.[!pos] = '"' then begin
      incr pos;
      parse_string ()
    end
    else begin
      let start = !pos in
      while
        !pos < n
        &&
        match line.[!pos] with
        | 'a' .. 'z' | '0' .. '9' | '-' -> true
        | _ -> false
      do
        incr pos
      done;
      if !pos = start then None else Some (String.sub line start (!pos - start))
    end
  in
  if not (expect '{') then fail "expected '{'"
  else begin
    let fields = ref [] in
    let ok = ref true and err = ref None in
    let stop = ref (expect '}') in
    while (not !stop) && !ok do
      (match
         skip_ws ();
         if !pos < n && line.[!pos] = '"' then begin
           incr pos;
           parse_string ()
         end
         else None
       with
      | None ->
          ok := false;
          err := Some "expected key"
      | Some key ->
          if not (expect ':') then begin
            ok := false;
            err := Some "expected ':'"
          end
          else begin
            match parse_scalar () with
            | None ->
                ok := false;
                err := Some "expected value"
            | Some v ->
                fields := (key, v) :: !fields;
                if expect ',' then ()
                else if expect '}' then stop := true
                else begin
                  ok := false;
                  err := Some "expected ',' or '}'"
                end
          end);
      ()
    done;
    if !ok then Ok (List.rev !fields)
    else fail (Option.value !err ~default:"parse error")
  end

let ( let* ) = Result.bind

let field fields key =
  match List.assoc_opt key fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let int_field fields key =
  let* v = field fields key in
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S: bad int %S" key v)

(* Int64.of_string accepts the full unsigned hex range. *)
let i64_field fields key =
  let* v = field fields key in
  match Int64.of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S: bad int64 %S" key v)

let bool_field fields key =
  let* v = field fields key in
  match v with
  | "true" -> Ok true
  | "false" -> Ok false
  | _ -> Error (Printf.sprintf "field %S: bad bool %S" key v)

let cause_field fields key =
  let* v = i64_field fields key in
  match Cause.of_xcause v with
  | Some c -> Ok c
  | None -> Error (Printf.sprintf "field %S: bad cause %Lx" key v)

let of_json line =
  let* fields = parse_fields line in
  let* seq = int_field fields "seq" in
  let* hart = int_field fields "hart" in
  let* instrs = i64_field fields "instrs" in
  let* pc = i64_field fields "pc" in
  let* digest = i64_field fields "digest" in
  let* k = field fields "k" in
  let* kind =
    match k with
    | "trap" ->
        let* cause = cause_field fields "cause" in
        let* from = int_field fields "from" in
        let* to_m = bool_field fields "tom" in
        let* tval = i64_field fields "tval" in
        let* from_priv =
          match Priv.of_int from with
          | Some p -> Ok p
          | None -> Error "bad privilege level"
        in
        Ok (Trap { cause; from_priv; to_m; tval })
    | "vtrap" ->
        let* cause = cause_field fields "cause" in
        let* tval = i64_field fields "tval" in
        Ok (Vtrap { cause; tval })
    | "csrw" ->
        let* addr = int_field fields "csr" in
        let* value = i64_field fields "value" in
        Ok (Csr_write { addr; value })
    | "mmio" ->
        let* write = bool_field fields "w" in
        let* addr = i64_field fields "addr" in
        let* size = int_field fields "size" in
        let* value = i64_field fields "value" in
        Ok (Mmio { write; addr; size; value })
    | "world" ->
        let* to_fw = bool_field fields "tofw" in
        Ok (World_switch { to_fw })
    | "pmp" -> Ok Pmp_reinstall
    | "sbi" ->
        let* ext = i64_field fields "ext" in
        let* fid = i64_field fields "fid" in
        let* offloaded = bool_field fields "off" in
        Ok (Sbi_call { ext; fid; offloaded })
    | other -> Error (Printf.sprintf "unknown event kind %S" other)
  in
  Ok { seq; hart; instrs; pc; digest; kind }

let pp_kind fmt = function
  | Trap { cause; from_priv; to_m; tval } ->
      Format.fprintf fmt "trap %s from=%s -> %s tval=%Lx"
        (Cause.to_string cause) (Priv.to_string from_priv)
        (if to_m then "M" else "S")
        tval
  | Vtrap { cause; tval } ->
      Format.fprintf fmt "vtrap %s tval=%Lx" (Cause.to_string cause) tval
  | Csr_write { addr; value } ->
      Format.fprintf fmt "csrw %03x <- %Lx" addr value
  | Mmio { write; addr; size; value } ->
      Format.fprintf fmt "mmio %s [%Lx]%d %Lx"
        (if write then "store" else "load")
        addr size value
  | World_switch { to_fw } ->
      Format.fprintf fmt "world -> %s" (if to_fw then "firmware" else "OS")
  | Pmp_reinstall -> Format.fprintf fmt "pmp reinstall"
  | Sbi_call { ext; fid; offloaded } ->
      Format.fprintf fmt "sbi ext=%Lx fid=%Lx%s" ext fid
        (if offloaded then " (offloaded)" else "")

let pp fmt t =
  Format.fprintf fmt "#%d hart%d i=%Ld pc=%Lx %a" t.seq t.hart t.instrs t.pc
    pp_kind t.kind
