(** Replayable schedule artifacts for the interleaving explorer.

    A schedule is the run-length encoding of a pick sequence — the
    (global step, hart) switch points of one explorer run. Replayed
    against the same scenario and seed it reproduces the exact
    interleaving, so a failing schedule checked into [test/schedules/]
    is a deterministic repro, the same way a PR 2 conformance vector
    is. Serialized as JSONL: one meta line, then one line per
    switch. *)

type t = {
  scenario : string;  (** scenario name (lib/explore/scenario.ml) *)
  bug : string option;  (** injected race bug, by CLI name *)
  seed : int64;  (** campaign seed the scenario was built with *)
  nharts : int;
  steps : int;  (** step budget that reproduces the violation *)
  oracle : string;  (** violated oracle name; [""] when none *)
  switches : (int * int) list;  (** (global step, hart), ascending *)
}

val preemption_points : t -> int
(** Number of switch points excluding the initial pick. *)

val save : t -> path:string -> unit
val load : path:string -> (t, string) result
