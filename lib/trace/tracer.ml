module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Priv = Mir_rv.Priv

(* The CSRs folded into every event digest — and diffed on divergence.
   These are the registers trap delivery and virtualization touch;
   anything else that drifts shows up indirectly (via pc, a GPR, or a
   later trap). *)
let tracked_csrs =
  [
    ("mstatus", Csr_addr.mstatus);
    ("mepc", Csr_addr.mepc);
    ("mcause", Csr_addr.mcause);
    ("mtval", Csr_addr.mtval);
    ("mscratch", Csr_addr.mscratch);
    ("mtvec", Csr_addr.mtvec);
    ("mie", Csr_addr.mie);
    ("mip", Csr_addr.mip);
    ("mideleg", Csr_addr.mideleg);
    ("medeleg", Csr_addr.medeleg);
    ("satp", Csr_addr.satp);
    ("sepc", Csr_addr.sepc);
    ("scause", Csr_addr.scause);
    ("stvec", Csr_addr.stvec);
    ("stval", Csr_addr.stval);
    ("sscratch", Csr_addr.sscratch);
  ]

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L
let mix h v = Int64.mul (Int64.logxor h v) fnv_prime

(* The digest over explicit state components. [read_csr] is applied to
   each address in [csrs], so the same function digests a physical
   hart, a virtual hart, or any synthetic state a checker holds — the
   fuzzer compares reference and emulated executions with it. *)
let digest_values ~pc ~priv ~wfi ~regs ~csrs ~read_csr =
  let h = ref fnv_offset in
  h := mix !h pc;
  h := mix !h (Int64.of_int priv);
  h := mix !h (if wfi then 1L else 0L);
  for i = 1 to 31 do
    h := mix !h (regs i)
  done;
  List.iter (fun addr -> h := mix !h (read_csr addr)) csrs;
  !h

let digest (hart : Hart.t) =
  digest_values ~pc:hart.Hart.pc
    ~priv:(Priv.to_int hart.Hart.priv)
    ~wfi:hart.Hart.wfi
    ~regs:(Hart.get hart)
    ~csrs:(List.map snd tracked_csrs)
    ~read_csr:(Csr_file.read_raw hart.Hart.csr)

type t = {
  machine : Machine.t;
  mutable sink : Event.t -> unit;
  mutable seq : int;
}

let set_sink t sink = t.sink <- sink

let reset t =
  t.seq <- 0

let emit t (hart : Hart.t) kind =
  let seq = t.seq in
  t.seq <- seq + 1;
  t.sink
    {
      Event.seq;
      hart = hart.Hart.id;
      instrs = Int64.of_int t.machine.Machine.instr_count;
      pc = hart.Hart.pc;
      digest = digest hart;
      kind;
    }

let attach machine ~sink =
  let t = { machine; sink; seq = 0 } in
  let prev_trap = machine.Machine.on_trap in
  machine.Machine.on_trap <-
    Some
      (fun m hart cause ~from_priv ~to_m ->
        (match prev_trap with
        | Some f -> f m hart cause ~from_priv ~to_m
        | None -> ());
        let tval =
          Csr_file.read_raw hart.Hart.csr
            (if to_m then Csr_addr.mtval else Csr_addr.stval)
        in
        emit t hart (Event.Trap { cause; from_priv; to_m; tval }));
  machine.Machine.on_csr_write <-
    Some (fun _m hart addr value -> emit t hart (Event.Csr_write { addr; value }));
  machine.Machine.on_mmio <-
    Some
      (fun _m hart ~write ~addr ~size ~value ->
        emit t hart (Event.Mmio { write; addr; size; value }));
  t
