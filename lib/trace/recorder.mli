(** Ring-buffer event store plus JSON-lines (de)serialization. *)

type t

val default_capacity : int
(** 2^20 events (~100 MB of JSONL at the upper end). *)

val create : ?capacity:int -> unit -> t

val push : t -> Event.t -> unit
(** The recorder's sink — pass [push t] to {!Tracer.attach}. *)

val count : t -> int
val dropped : t -> int
(** Events shed because the ring filled. A trace with drops cannot be
    replayed from the initial state (only from a checkpoint taken
    after the last drop). *)

val total : t -> int
val events : t -> Event.t list
(** Oldest first. *)

val clear : t -> unit

val to_jsonl : t -> string
val of_jsonl : string -> (Event.t list, string) result
val save : t -> path:string -> unit
val load : path:string -> (Event.t list, string) result
