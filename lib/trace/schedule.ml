(* Replayable schedule artifacts for the interleaving explorer
   (lib/explore).

   A schedule is the run-length encoding of a pick sequence: the list
   of (step, hart) switch points, "from global step [step] onward,
   hart [hart] runs". Replaying the switches against the same scenario
   and seed reproduces the exact interleaving, so a failing schedule
   is a deterministic repro the same way a PR 2 vector is.

   Serialized as JSONL in the house style (test/vectors/,
   fuzz corpora): a meta line naming the scenario, the injected bug,
   the seed and the violated oracle, then one line per switch. *)

type t = {
  scenario : string;
  bug : string option; (* injected race bug, by CLI name *)
  seed : int64;
  nharts : int;
  steps : int; (* step budget that reproduces the violation *)
  oracle : string; (* the oracle the schedule violates ("" = none) *)
  switches : (int * int) list; (* (global step, hart), ascending *)
}

let preemption_points t = max 0 (List.length t.switches - 1)

let hx v = Printf.sprintf "\"0x%Lx\"" v
let js_int = string_of_int
let js_str s = "\"" ^ s ^ "\""

let obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ k ^ "\":" ^ v) fields)
  ^ "}"

let meta_line t =
  obj
    [
      ("v", js_int 1);
      ("scenario", js_str t.scenario);
      ("bug", js_str (Option.value t.bug ~default:"none"));
      ("seed", hx t.seed);
      ("nharts", js_int t.nharts);
      ("steps", js_int t.steps);
      ("oracle", js_str t.oracle);
    ]

let switch_line (at, hart) = obj [ ("at", js_int at); ("hart", js_int hart) ]

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (meta_line t);
      output_char oc '\n';
      List.iter
        (fun sw ->
          output_string oc (switch_line sw);
          output_char oc '\n')
        t.switches)

let ( let* ) = Result.bind

let field fields key =
  match List.assoc_opt key fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let int_field fields key =
  let* v = field fields key in
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S: bad int %S" key v)

let i64_field fields key =
  let* v = field fields key in
  match Int64.of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S: bad int64 %S" key v)

let parse_meta line =
  let* fields = Event.parse_fields line in
  let* v = int_field fields "v" in
  if v <> 1 then Error (Printf.sprintf "unsupported schedule version %d" v)
  else
    let* scenario = field fields "scenario" in
    let* bug = field fields "bug" in
    let* seed = i64_field fields "seed" in
    let* nharts = int_field fields "nharts" in
    let* steps = int_field fields "steps" in
    let* oracle = field fields "oracle" in
    Ok
      {
        scenario;
        bug = (if bug = "none" then None else Some bug);
        seed;
        nharts;
        steps;
        oracle;
        switches = [];
      }

let parse_switch line =
  let* fields = Event.parse_fields line in
  let* at = int_field fields "at" in
  let* hart = int_field fields "hart" in
  Ok (at, hart)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           let l = String.trim (input_line ic) in
           if l <> "" then lines := l :: !lines
         done
       with End_of_file -> ());
      match List.rev !lines with
      | [] -> Error (path ^ ": empty schedule file")
      | meta :: rest ->
          let* t = parse_meta meta in
          let* switches =
            List.fold_left
              (fun acc line ->
                let* acc = acc in
                let* sw = parse_switch line in
                Ok (sw :: acc))
              (Ok []) rest
          in
          Ok { t with switches = List.rev switches })
