(** Trace events: the observable effects of one execution.

    Each event is stamped at emission time with the hart it happened
    on, the machine-global retired-instruction count, the hart's pc,
    and a digest of the hart's architectural state (pc, privilege,
    GPRs, trap/virtualization-relevant CSRs). During replay the digest
    pins down silent divergence — a run whose events *look* identical
    but whose state has drifted fails on the first digest mismatch. *)

type kind =
  | Trap of {
      cause : Mir_rv.Cause.t;
      from_priv : Mir_rv.Priv.t;
      to_m : bool;
      tval : int64;
    }  (** architectural trap entry (M- or S-targeted) *)
  | Vtrap of { cause : Mir_rv.Cause.t; tval : int64 }
      (** trap injected into the virtual firmware by the VFM *)
  | Csr_write of { addr : int; value : int64 }
      (** guest CSR instruction wrote [addr]; [value] is the
          legalized stored result *)
  | Mmio of { write : bool; addr : int64; size : int; value : int64 }
      (** device (non-RAM) access *)
  | World_switch of { to_fw : bool }
  | Pmp_reinstall
  | Sbi_call of { ext : int64; fid : int64; offloaded : bool }

type t = {
  seq : int;  (** position in the recording *)
  hart : int;
  instrs : int64;  (** machine-global retired instructions *)
  pc : int64;
  digest : int64;  (** per-hart architectural-state digest *)
  kind : kind;
}

val kind_name : kind -> string

val equal : t -> t -> bool
(** Structural equality ignoring [seq] (replay from a checkpoint
    restarts the counter). *)

val to_json : t -> string
(** One compact JSON object, no newline. int64s are quoted hex. *)

val of_json : string -> (t, string) result

val parse_fields : string -> ((string * string) list, string) result
(** The flat-object parser behind {!of_json}: ["key":value,...] with
    string, bool and integer values, returned in order. Shared with
    the other JSONL artifact formats (schedules). *)

val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit
