module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Csr_file = Mir_rv.Csr_file
module Memory = Mir_rv.Memory
module Bus = Mir_rv.Bus
module Clint = Mir_rv.Clint
module Plic = Mir_rv.Plic
module Uart = Mir_rv.Uart
module Blockdev = Mir_rv.Blockdev
module Nic = Mir_rv.Nic
module Priv = Mir_rv.Priv

type hart_state = {
  pc : int64;
  priv : Priv.t;
  wfi : bool;
  halted : bool;
  cycles : int64;
  instret : int64;
  irq_stale : int;
  reservation : int64 option;
  regs : int64 array;
  csrs : int64 array;
}

type device_state = {
  clint : Clint.state;
  plic : Plic.state;
  uart : Uart.state;
  blockdev : Blockdev.state option;
  nic : Nic.state option;
}

(* The root of a checkpoint chain copies all of RAM; every later
   checkpoint carries only the pages dirtied since the previous one
   plus a [prev] pointer. Restoring walks the chain root-forward. *)
type mem_delta = Full of bytes | Pages of (int * bytes) list

type t = {
  instrs : int64;
  events_before : int;
  harts : hart_state array;
  devices : device_state;
  mem : mem_delta;
  prev : t option;
  restore_extra : (unit -> unit) option;
}

let instrs t = t.instrs
let events_before t = t.events_before

let save_hart (h : Hart.t) =
  {
    pc = h.Hart.pc;
    priv = h.Hart.priv;
    wfi = h.Hart.wfi;
    halted = h.Hart.halted;
    cycles = Int64.of_int h.Hart.cycles;
    instret = Int64.of_int h.Hart.instret;
    irq_stale = h.Hart.irq_stale;
    reservation = h.Hart.reservation;
    regs = Array.init 32 (Hart.get h);
    csrs = Csr_file.dump h.Hart.csr;
  }

let restore_hart (h : Hart.t) s =
  h.Hart.pc <- s.pc;
  h.Hart.priv <- s.priv;
  h.Hart.wfi <- s.wfi;
  h.Hart.halted <- s.halted;
  h.Hart.cycles <- Int64.to_int s.cycles;
  h.Hart.instret <- Int64.to_int s.instret;
  h.Hart.irq_stale <- s.irq_stale;
  h.Hart.reservation <- s.reservation;
  for i = 1 to 31 do Hart.set h i s.regs.(i) done;
  Csr_file.restore_dump h.Hart.csr s.csrs

let save_devices (m : Machine.t) =
  {
    clint = Clint.save_state m.Machine.clint;
    plic = Plic.save_state m.Machine.plic;
    uart = Uart.save_state m.Machine.uart;
    blockdev = Option.map Blockdev.save_state m.Machine.blockdev;
    nic = Option.map Nic.save_state m.Machine.nic;
  }

let restore_devices (m : Machine.t) d =
  Clint.load_state m.Machine.clint d.clint;
  Plic.load_state m.Machine.plic d.plic;
  Uart.load_state m.Machine.uart d.uart;
  (match (m.Machine.blockdev, d.blockdev) with
  | Some dev, Some s -> Blockdev.load_state dev s
  | _ -> ());
  match (m.Machine.nic, d.nic) with
  | Some dev, Some s -> Nic.load_state dev s
  | _ -> ()

let take ?prev ?(events_before = 0) ?restore_extra (m : Machine.t) =
  let ram = Bus.ram m.Machine.bus in
  let mem =
    match prev with
    | None -> Full (Memory.copy_all ram)
    | Some _ ->
        Pages (List.map (fun p -> (p, Memory.get_page ram p))
                 (Memory.dirty_pages ram))
  in
  (* From here on, "dirty" means dirty relative to this checkpoint. *)
  Memory.clear_dirty ram;
  {
    instrs = Int64.of_int m.Machine.instr_count;
    events_before;
    harts = Array.map save_hart m.Machine.harts;
    devices = save_devices m;
    mem;
    prev;
    restore_extra;
  }

let rec apply_mem ram t =
  (match t.prev with Some p -> apply_mem ram p | None -> ());
  match t.mem with
  | Full b -> Memory.restore_all ram b
  | Pages pages -> List.iter (fun (p, b) -> Memory.set_page ram p b) pages

let restore (m : Machine.t) t =
  let ram = Bus.ram m.Machine.bus in
  apply_mem ram t;
  Memory.clear_dirty ram;
  Array.iteri (fun i s -> restore_hart m.Machine.harts.(i) s) t.harts;
  restore_devices m t.devices;
  (match t.restore_extra with Some f -> f () | None -> ());
  m.Machine.instr_count <- Int64.to_int t.instrs;
  m.Machine.poweroff <- false;
  (* Both derived caches must drop: restored RAM invalidates decoded
     instructions, restored satp/PMP/page tables invalidate cached
     translations (the CSR restore also bumps the vm-epoch, but the
     explicit flush keeps the invariant independent of that path). *)
  Machine.flush_icache m;
  Machine.flush_tlbs m

(* ------------------------------------------------------------------ *)
(* Architectural state hash                                            *)
(* ------------------------------------------------------------------ *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L
let mix h v = Int64.mul (Int64.logxor h v) fnv_prime

let hash (m : Machine.t) =
  let h = ref fnv_offset in
  let add v = h := mix !h v in
  Array.iter
    (fun (hart : Hart.t) ->
      add hart.Hart.pc;
      add (Int64.of_int (Priv.to_int hart.Hart.priv));
      add (if hart.Hart.wfi then 1L else 0L);
      add (if hart.Hart.halted then 1L else 0L);
      for i = 1 to 31 do
        add (Hart.get hart i)
      done;
      let csr = hart.Hart.csr in
      for a = 0 to 4095 do
        let v = Csr_file.read_raw csr a in
        if v <> 0L then begin
          add (Int64.of_int a);
          add v
        end
      done)
    m.Machine.harts;
  add (Memory.hash (Bus.ram m.Machine.bus));
  (* device-visible state: CLINT timers and the console transcript *)
  let clint = m.Machine.clint in
  for i = 0 to Clint.nharts clint - 1 do
    add (Clint.mtimecmp clint i);
    add (if Clint.msip clint i then 1L else 0L)
  done;
  String.iter
    (fun c -> add (Int64.of_int (Char.code c)))
    (Uart.output m.Machine.uart);
  !h

(* ------------------------------------------------------------------ *)
(* Periodic checkpoint manager                                         *)
(* ------------------------------------------------------------------ *)

type manager = {
  machine : Machine.t;
  every : int64;
  extra_save : (unit -> unit -> unit) option;
  events_seen : (unit -> int) option;
  mutable next_at : int64;
  mutable chain : t list; (* newest first; last element is the root *)
}

let checkpoints mgr = List.rev mgr.chain

let take_now mgr =
  let prev = match mgr.chain with [] -> None | c :: _ -> Some c in
  let events_before =
    match mgr.events_seen with Some f -> f () | None -> 0
  in
  let restore_extra = Option.map (fun f -> f ()) mgr.extra_save in
  let c = take ?prev ~events_before ?restore_extra mgr.machine in
  mgr.chain <- c :: mgr.chain;
  c

let manage ?extra_save ?events_seen ~every (machine : Machine.t) =
  if every <= 0L then invalid_arg "Snapshot.manage: every";
  let mgr =
    {
      machine;
      every;
      extra_save;
      events_seen;
      next_at = Int64.add (Int64.of_int machine.Machine.instr_count) every;
      chain = [];
    }
  in
  (* the root checkpoint anchors the chain at the current state *)
  ignore (take_now mgr);
  let prev_chunk = machine.Machine.on_chunk in
  machine.Machine.on_chunk <-
    Some
      (fun m ->
        (match prev_chunk with Some f -> f m | None -> ());
        if Int64.of_int m.Machine.instr_count >= mgr.next_at then begin
          ignore (take_now mgr);
          mgr.next_at <- Int64.add (Int64.of_int m.Machine.instr_count) mgr.every
        end);
  mgr

let latest_before mgr ~instrs =
  let rec pick = function
    | [] -> None
    | c :: rest -> if c.instrs <= instrs then Some c else pick rest
  in
  pick mgr.chain
