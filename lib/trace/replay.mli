(** Replay with divergence detection.

    Replay re-executes the (deterministic) machine while a fresh
    tracer feeds live events into {!feed}. Each live event must match
    the next recorded one — same hart, kind, payload, pc, instruction
    count and state digest. On the first mismatch the replayer freezes
    a structured report: the two events, plus a register/CSR delta of
    the live hart against its last *verified* state (the log carries
    digests, not full states, so the delta names what moved since
    record and replay last agreed), and powers the machine off.

    To replay from a checkpoint, [Snapshot.restore] the machine and
    pass the event-list suffix starting at the checkpoint's
    [events_before] index. *)

type delta = { name : string; recorded : int64; live : int64 }

type divergence = {
  seq : int;  (** recorded sequence number at the mismatch *)
  hart : int;
  instrs : int64;
  pc : int64;
  expected : Event.t option;  (** next recorded event, if any *)
  got : Event.t option;  (** live event, if any *)
  deltas : delta list;  (** named register/CSR drift *)
  reason : string;
  seed : int64 option;
      (** the root PRNG seed of the diverging run, when known — a
          divergence report carries everything needed to reproduce the
          failure with a single [--seed] flag *)
}

type t

val create :
  ?seed:int64 -> machine:Mir_rv.Machine.t -> events:Event.t list -> unit -> t
(** [seed] is stamped into any divergence report (and printed by
    {!pp_divergence}), making failures one-command reproducible. *)

val feed : t -> Event.t -> unit
(** The replayer's sink — pass [feed t] (or {!sink}) to
    {!Tracer.attach}. After a divergence further events are ignored
    and the machine is asked to power off. *)

val sink : t -> Event.t -> unit

type outcome =
  | Match of { verified : int }
  | Diverged of divergence
  | Truncated of { verified : int; remaining : int }
      (** execution ended before consuming the whole log *)

val finish : t -> outcome
val verified : t -> int
val divergence : t -> divergence option

val pp_delta : Format.formatter -> delta -> unit
val pp_divergence : Format.formatter -> divergence -> unit
val pp_outcome : Format.formatter -> outcome -> unit
