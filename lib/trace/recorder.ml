type t = { ring : Event.t Ring.t }

let default_capacity = 1 lsl 20

let create ?(capacity = default_capacity) () = { ring = Ring.create ~capacity }
let push t e = Ring.push t.ring e
let count t = Ring.length t.ring
let dropped t = Ring.dropped t.ring
let total t = Ring.total t.ring
let events t = Ring.to_list t.ring
let clear t = Ring.clear t.ring

let to_jsonl t =
  let buf = Buffer.create 4096 in
  Ring.iter
    (fun e ->
      Buffer.add_string buf (Event.to_json e);
      Buffer.add_char buf '\n')
    t.ring;
  Buffer.contents buf

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl t))

let of_jsonl s =
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go acc (lineno + 1) rest
        else begin
          match Event.of_json line with
          | Ok e -> go (e :: acc) (lineno + 1) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
        end
  in
  go [] 1 (String.split_on_char '\n' s)

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_jsonl s
  | exception Sys_error msg -> Error msg
