(** Event emission: hooks the machine and stamps events.

    A tracer owns the event sequence counter and the state-digest
    function. {!attach} installs the machine-level hooks (traps, CSR
    writes, MMIO); the VFM monitor calls {!emit} directly for its own
    events (world switches, PMP reinstalls, virtual traps, SBI calls),
    so machine-level and monitor-level events interleave in emission
    order in one stream. *)

type t

val attach : Mir_rv.Machine.t -> sink:(Event.t -> unit) -> t
(** Install trap/CSR/MMIO hooks. A pre-existing [on_trap] observer is
    chained, not replaced. Attach *after* system construction so boot
    is not recorded (replay attaches at the same point). *)

val emit : t -> Mir_rv.Hart.t -> Event.kind -> unit
(** Stamp [kind] with seq/hart/instrs/pc/digest and pass it to the
    sink. *)

val set_sink : t -> (Event.t -> unit) -> unit
(** Redirect the event stream (e.g. from a recorder to a replayer
    after rewinding to a checkpoint). *)

val reset : t -> unit
(** Restart the sequence counter. *)

val digest : Mir_rv.Hart.t -> int64
(** FNV-1a over pc, privilege, wfi, x1..x31 and {!tracked_csrs}. *)

val digest_values :
  pc:int64 -> priv:int -> wfi:bool -> regs:(int -> int64) ->
  csrs:int list -> read_csr:(int -> int64) -> int64
(** The same digest over explicit state components, so virtual or
    synthetic hart states can be digested with the identical function —
    the differential fuzzer's oracle compares a reference hart against
    an emulated one through this. [csrs] selects which addresses are
    folded in (the caller fixes the order). *)

val tracked_csrs : (string * int) list
(** Names and addresses of the CSRs covered by {!digest} — also the
    set diffed when replay reports a divergence. *)
