(** A bounded ring buffer that drops the *oldest* element on overflow.

    The recorder sits on the simulator's hot paths, so the event sink
    must never allocate unboundedly; when the window fills, the ring
    keeps the most recent events and counts what it shed. *)

type 'a t

val create : capacity:int -> 'a t
val capacity : 'a t -> int
val length : 'a t -> int

val dropped : 'a t -> int
(** Elements overwritten since creation (or the last {!clear}). *)

val total : 'a t -> int
(** Total pushes: [length + dropped]. *)

val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th oldest retained element. *)

val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
(** Oldest first. *)

val clear : 'a t -> unit
