(** Architectural checkpoints with incremental memory capture.

    A checkpoint records every hart (GPRs, pc, privilege, the full raw
    CSR file including PMP), the devices (CLINT, PLIC, UART, block
    device, NIC), and memory. The first checkpoint in a chain copies
    all of RAM; subsequent ones copy only the 4 KiB pages dirtied
    since the previous checkpoint ({!Mir_rv.Memory.dirty_pages}), so
    checkpointing every N million instructions stays cheap. Restore
    walks the chain root-forward.

    Monitor (VFM) state lives above this library in the dependency
    order, so it is captured through an opaque [restore_extra]
    closure — see [Miralis.Monitor.save]. *)

type t

val take :
  ?prev:t -> ?events_before:int -> ?restore_extra:(unit -> unit) ->
  Mir_rv.Machine.t -> t
(** Snapshot the machine. Without [prev] the snapshot is a chain root
    (full RAM copy); with it, only pages dirtied since [prev] are
    copied. [events_before] stamps the recorder's event count so
    replay knows where in the log to resume. Clears the dirty set. *)

val restore : Mir_rv.Machine.t -> t -> unit
(** Rewind the machine: memory (chain root forward), harts, devices,
    the [restore_extra] closure, the instruction counter. Clears
    poweroff and flushes the icache and every hart's TLB. *)

val instrs : t -> int64
val events_before : t -> int

val hash : Mir_rv.Machine.t -> int64
(** Digest of the full architectural state: every hart (pc, privilege,
    GPRs, all non-zero CSRs), all of RAM, CLINT comparators and the
    console transcript. Two runs that end bit-identical hash equal. *)

(** {2 Periodic checkpointing}

    A manager hooks {!Mir_rv.Machine.t.on_chunk} and takes a
    checkpoint every [every] retired instructions (measured at chunk
    granularity). The root checkpoint is taken immediately. *)

type manager

val manage :
  ?extra_save:(unit -> unit -> unit) ->
  ?events_seen:(unit -> int) ->
  every:int64 ->
  Mir_rv.Machine.t ->
  manager
(** [extra_save] is called at each checkpoint and must return the
    restore closure (e.g. [Miralis.Monitor.save]); [events_seen]
    supplies the recorder's running event count. *)

val checkpoints : manager -> t list
(** Oldest (root) first. *)

val take_now : manager -> t
val latest_before : manager -> instrs:int64 -> t option
