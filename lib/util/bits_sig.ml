(* The abstract bitvector interface the privileged semantics are
   functorized over.

   The same transform code — WARL legalization, trap entry, mret/sret,
   virtual-interrupt selection — runs twice: instantiated with {!I64}
   it is the concrete semantics executed by the reference machine and
   the VFM emulator; instantiated with the symbolic backend
   (Mir_sym.Backend) it becomes a symbolic transfer function the
   prover explores over *all* 2^64 states at once.

   Design rules for code written against [S]:

   - Data flow stays inside [t]/[bit]; a [bit] only becomes an OCaml
     [bool] through {!S.decide}, which the symbolic backend implements
     by path-splitting. Transforms should prefer {!S.ite} (a 64-bit
     mux) over [decide] so that WARL rules stay split-free; [decide]
     is for genuine control decisions (trap or not, interrupt
     priority, mret target world).
   - Shift amounts and bit indices are concrete OCaml ints: the
     privileged semantics never shift by a data-dependent amount. *)

module type S = sig
  type t
  (** a 64-bit word *)

  type bit
  (** a boolean; concretely [bool], symbolically a bit expression *)

  val const : int64 -> t
  val logand : t -> t -> t
  val logor : t -> t -> t
  val logxor : t -> t -> t
  val lognot : t -> t
  val shift_left : t -> int -> t
  val shift_right_logical : t -> int -> t

  val extract : t -> lo:int -> hi:int -> t
  (** bits [hi:lo], right-aligned (like {!Bits.extract}) *)

  val insert : t -> lo:int -> hi:int -> value:t -> t
  val test : t -> int -> bit
  val set : t -> int -> t
  val clear : t -> int -> t
  val write : t -> int -> bit -> t

  val eq_const : t -> int64 -> bit
  val bit_const : bool -> bit
  val bit_not : bit -> bit
  val bit_and : bit -> bit -> bit
  val bit_or : bit -> bit -> bit

  val ite : bit -> t -> t -> t
  (** word-level mux: [ite c a b] is [a] where [c], else [b] *)

  val decide : bit -> bool
  (** Concretize a control decision. The concrete instance is the
      identity; the symbolic backend evaluates the bit under the
      current path assignment and forks the path when it is still
      unknown. *)
end

(** The concrete instantiation: plain [int64], the exact operations of
    {!Bits}. Code functorized over {!S} and applied to [I64] compiles
    to the same computations the pre-functorization modules ran. *)
module I64 : S with type t = int64 and type bit = bool = struct
  type t = int64
  type bit = bool

  let const v = v
  let logand = Int64.logand
  let logor = Int64.logor
  let logxor = Int64.logxor
  let lognot = Int64.lognot
  let shift_left = Int64.shift_left
  let shift_right_logical = Int64.shift_right_logical
  let extract = Bits.extract
  let insert = Bits.insert
  let test = Bits.test
  let set = Bits.set
  let clear = Bits.clear
  let write = Bits.write
  let eq_const v c = v = c
  let bit_const b = b
  let bit_not = not
  let bit_and = ( && )
  let bit_or = ( || )
  let ite c a b = if c then a else b
  let decide b = b
end
