(** Deterministic pseudo-random number generator (splitmix64 core).

    Experiments must be reproducible run-to-run, so all stochastic
    components (workload generators, state samplers in the verifier)
    draw from an explicitly seeded generator rather than [Random]. *)

type t

val create : seed:int64 -> t
(** A fresh generator. Equal seeds yield equal streams. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int_below : t -> int -> int
(** [int_below t n] is uniform in [0, n). Requires [n > 0]. *)

val int64_below : t -> int64 -> int64
(** Uniform in [0, n) for an [int64] bound. Requires [n > 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
(** A fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed (Box–Muller). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val split : t -> t
(** A new generator seeded from [t]'s stream, usable independently. *)

val stream_seed : seed:int64 -> index:int -> int64
(** [stream_seed ~seed ~index] is the [index+1]-th output of a
    splitmix64 generator seeded with [seed], computed in O(1). Used to
    derive one independent seed per member of a fleet: the derived
    stream is a pure function of [(seed, index)], so it does not
    depend on how many siblings exist or on the order (or OS thread)
    in which they are created. Requires [index >= 0]. *)
