type t = { mutable state : int64 }

let create ~seed = { state = seed }

(* splitmix64: fast, well-distributed, trivially seedable. *)
let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

(* The (index+1)-th output of a splitmix64 generator seeded with
   [seed], computed in O(1): stream [i] of a fleet of generators is a
   pure function of (seed, i), independent of the order (or the
   domain) in which the streams are instantiated. *)
let stream_seed ~seed ~index =
  if index < 0 then invalid_arg "Prng.stream_seed: negative index";
  mix (Int64.add seed (Int64.mul (Int64.of_int (index + 1)) golden))

let int64_below t n =
  assert (n > 0L);
  (* Rejection-free modulo is fine for our (non-cryptographic) uses. *)
  Int64.unsigned_rem (next t) n

let int_below t n =
  assert (n > 0);
  Int64.to_int (int64_below t (Int64.of_int n))

let float t =
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let exponential t ~mean =
  let u = float t in
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = max 1e-12 (float t) and u2 = float t in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let choose t a =
  assert (Array.length a > 0);
  a.(int_below t (Array.length a))

let split t = { state = next t }
