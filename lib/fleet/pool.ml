(* A work-stealing domain pool for fleets of independent machines.

   Tasks are integers [0, tasks); each runs exactly once. Task [i] is
   dealt round-robin to deque [i mod domains], owners pop from the
   front, idle workers steal from the back of the fullest victim.
   Which domain runs a task affects only wall-clock time: the caller's
   task function writes its result into a slot owned by the task id,
   so fleet results are independent of the stealing order. *)

type deque = {
  lock : Mutex.t;
  slots : int array;  (* task ids dealt to this worker *)
  mutable front : int;  (* next owner pop *)
  mutable back : int;  (* one past the last live slot (steal end) *)
}

let pop_front d =
  Mutex.lock d.lock;
  let r =
    if d.front < d.back then begin
      let t = d.slots.(d.front) in
      d.front <- d.front + 1;
      Some t
    end
    else None
  in
  Mutex.unlock d.lock;
  r

let steal_back d =
  Mutex.lock d.lock;
  let r =
    if d.front < d.back then begin
      d.back <- d.back - 1;
      Some d.slots.(d.back)
    end
    else None
  in
  Mutex.unlock d.lock;
  r

let size d =
  Mutex.lock d.lock;
  let n = d.back - d.front in
  Mutex.unlock d.lock;
  n

(* Steal from the victim with the most queued work (ties to the lowest
   index), so long stragglers spread instead of clustering. *)
let steal deques ~self =
  let best = ref (-1) and best_n = ref 0 in
  Array.iteri
    (fun i d ->
      if i <> self then begin
        let n = size d in
        if n > !best_n then begin
          best := i;
          best_n := n
        end
      end)
    deques;
  if !best < 0 then None else steal_back deques.(!best)

let run ~domains ~tasks f =
  if domains < 1 then invalid_arg "Pool.run: domains < 1";
  if tasks < 0 then invalid_arg "Pool.run: tasks < 0";
  if domains = 1 || tasks <= 1 then
    for i = 0 to tasks - 1 do
      f i
    done
  else begin
    let nd = min domains tasks in
    let deques =
      Array.init nd (fun w ->
          let mine = ref [] in
          for i = tasks - 1 downto 0 do
            if i mod nd = w then mine := i :: !mine
          done;
          let slots = Array.of_list !mine in
          { lock = Mutex.create (); slots; front = 0; back = Array.length slots })
    in
    (* The first failure wins; the rest of the fleet still drains so
       every domain joins cleanly before the exception resurfaces. *)
    let failure = Atomic.make None in
    let worker w () =
      let rec loop () =
        match pop_front deques.(w) with
        | Some t ->
            run_task t;
            loop ()
        | None -> (
            match steal deques ~self:w with
            | Some t ->
                run_task t;
                loop ()
            | None -> ())
      and run_task t =
        if Atomic.get failure = None then
          try f t
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)))
      in
      loop ()
    in
    let spawned = Array.init (nd - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    Array.iter Domain.join spawned;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let default_domains () = max 1 (Domain.recommended_domain_count ())
