module Script = Mir_kernel.Script
module Prng = Mir_util.Prng

(* The load generator replays the paper's per-workload trap-rate mix
   (§8.3.3 / Fig. 3: memcached/redis/mysql between ~11k and ~389k
   traps/s per core) as simulated client requests. A profile describes
   one workload class; a machine's request stream is drawn from its
   own splitmix-derived PRNG, so the stream is a pure function of
   (fleet seed, machine id). *)

type profile = {
  name : string;
  requests_per_sec : float;
      (* client request arrival rate in simulated time; with the
         per-request trap count below this replays the paper's
         per-core trap rate for the class *)
  service_mean : int;  (* Compute iterations per request (~4 instrs each) *)
  service_spread : int;  (* +/- drawn per request shape from the PRNG *)
  timer_every : int;  (* re-arm the S timer every n requests (0: never) *)
  disk_every : int;  (* one O_DIRECT sector every n requests (0: never) *)
  console_every : int;
      (* one console-SBI putchar every n requests (0: never) — the
         legacy console is not offloadable, so it forces a world
         switch into the virtual firmware (logging, slow-query log) *)
  think_ticks : int;
      (* timer-tick sleep after each request (0: none) — models
         batch/compute classes whose trap rate is dominated by the
         periodic tick rather than by request service *)
  paper_traps_per_sec : int;  (* the per-core rate this class replays *)
}

(* Redis: single-threaded KV store, two rdtime timestamps around each
   service burst — ~272k traps/s per core in the paper. *)
let redis =
  {
    name = "redis";
    requests_per_sec = 130_000.;
    service_mean = 2600;
    service_spread = 1700;
    timer_every = 0;
    disk_every = 0;
    console_every = 64;
    think_ticks = 0;
    paper_traps_per_sec = 272_000;
  }

(* Memcached: smaller values, higher request rate — ~389k traps/s. *)
let memcached =
  {
    name = "memcached";
    requests_per_sec = 190_000.;
    service_mean = 1800;
    service_spread = 1200;
    timer_every = 0;
    disk_every = 0;
    console_every = 0;
    think_ticks = 0;
    paper_traps_per_sec = 389_000;
  }

(* MySQL: OLTP transactions — heavier service, a disk access every few
   transactions, a timer re-arm per batch. *)
let mysql =
  {
    name = "mysql";
    requests_per_sec = 45_000.;
    service_mean = 6000;
    service_spread = 2500;
    timer_every = 32;
    disk_every = 4;
    console_every = 16;
    think_ticks = 0;
    paper_traps_per_sec = 95_000;
  }

(* GCC-class batch compute: long native stretches, the periodic
   scheduler tick as almost the only trap source (~11k traps/s). The
   idle tail of each "request" is modelled as a timer-tick sleep, so
   simulated time passes at the paper's trap rate without paying host
   instructions for it. *)
let gcc =
  {
    name = "gcc";
    requests_per_sec = 2_900.;
    service_mean = 3000;
    service_spread = 800;
    timer_every = 0;
    disk_every = 0;
    console_every = 8;
    think_ticks = 5000;
    paper_traps_per_sec = 11_000;
  }

let profiles = [ memcached; redis; mysql; gcc ]

(* The datacenter mix: weights loosely shaped like a consolidation
   story — mostly KV front-ends, some OLTP, a batch tail. *)
let mix_weights =
  [ (memcached, 0.35); (redis, 0.30); (mysql, 0.20); (gcc, 0.15) ]

let find name =
  if name = "mix" then Some `Mix
  else
    Option.map (fun p -> `Profile p)
      (List.find_opt (fun p -> p.name = name) profiles)

let known_names = "mix" :: List.map (fun p -> p.name) profiles

(* Draw this machine's profile. The PRNG is the machine's own, so the
   assignment depends only on (fleet seed, machine id). *)
let pick workload prng =
  match workload with
  | `Profile p -> p
  | `Mix ->
      let u = Prng.float prng in
      let rec go acc = function
        | [] -> fst (List.hd mix_weights)
        | (p, w) :: rest -> if u < acc +. w then p else go (acc +. w) rest
      in
      go 0. mix_weights

(* Requests are generated as a body of [shapes] distinct request
   shapes executed under the kernel's Loop opcode. Every request is
   led by a Cycle_stamp, and one trailing stamp closes the last
   request, so per-request latency in simulated cycles is the delta of
   consecutive stamps. The stamp buffer bounds the request count. *)
let shapes = 8
let max_requests = 12_280  (* stamp buffer: (0x20000-0x8000)/8 slots *)

let request_ops prng profile ~index =
  let spread = profile.service_spread in
  let jitter = if spread = 0 then 0 else Prng.int_below prng (2 * spread) in
  let service = max 100 (profile.service_mean - spread + jitter) in
  [ Script.Cycle_stamp; Script.Rdtime;
    Script.Compute (Int64.of_int service); Script.Rdtime ]
  @ (if profile.disk_every > 0 && index mod profile.disk_every = 0 then
       [ Script.Disk_io
           { write = index mod (2 * profile.disk_every) = 0;
             sector = 64 + (index mod 256) } ]
     else [])
  @ (if profile.timer_every > 0 && index mod profile.timer_every = 0 then
       [ Script.Set_timer 4000L ]
     else [])
  @ (if profile.console_every > 0 && index mod profile.console_every = 0 then
       [ Script.Putchar '.' ]
     else [])
  @
  if profile.think_ticks > 0 then
    [ Script.Tick_wfi (Int64.of_int profile.think_ticks) ]
  else []

type stream = {
  profile : profile;
  script : Script.op list;
  requests : int;  (* stamped requests the script will execute *)
}

let machine_stream prng profile ~duration_ms =
  if duration_ms <= 0. then invalid_arg "Load.machine_stream: duration <= 0";
  let target =
    profile.requests_per_sec *. duration_ms /. 1000.
    *. (0.9 +. (0.2 *. Prng.float prng))
  in
  let loops =
    max 1 (min (max_requests / shapes) (int_of_float (target /. float_of_int shapes)))
  in
  let body =
    List.concat (List.init shapes (fun i -> request_ops prng profile ~index:i))
  in
  let script =
    body @ [ Script.Loop (Int64.of_int loops); Script.Cycle_stamp; Script.End ]
  in
  { profile; script; requests = shapes * loops }
