module Setup = Mir_harness.Setup
module Machine = Mir_rv.Machine
module Script = Mir_kernel.Script
module Platform = Mir_platform.Platform
module Prng = Mir_util.Prng
module Stats = Mir_util.Stats

(* ------------------------------------------------------------------ *)
(* Fleet specification                                                  *)
(* ------------------------------------------------------------------ *)

type spec = {
  machines : int;
  domains : int;
  workload : string;  (* a Load profile name, or "mix" *)
  seed : int64;
  duration_ms : float;  (* simulated load window per machine *)
  max_instrs : int64;  (* per-machine safety budget *)
  record_machine : int option;
      (* when set, that machine's run is recorded (trace events are
         returned in its result) — the replay tests re-execute it
         serially against the log *)
  block_engine : bool;
      (* execute each machine through the decoded basic-block engine
         (the default); digests are bit-identical either way, which
         the determinism tests assert *)
}

let default_spec =
  {
    machines = 64;
    domains = 1;
    workload = "mix";
    seed = 0x466C656574L (* "Fleet" *);
    duration_ms = 1.0;
    max_instrs = 400_000_000L;
    record_machine = None;
    block_engine = true;
  }

(* Every fleet machine is a single-hart VisionFive-2-class guest with
   a quarter of the usual RAM: the fleet scales in machine count, not
   in per-machine memory. The simulated layout (firmware, kernel,
   script region) fits comfortably below the monitor's reserved top
   megabyte. *)
let platform =
  let vf2 = Platform.visionfive2 in
  {
    vf2 with
    Platform.name = "fleet-vf2";
    nharts = 1;
    machine =
      { vf2.Platform.machine with Machine.nharts = 1;
        ram_size = 8 * 1024 * 1024 };
  }

let workload_of spec =
  match Load.find spec.workload with
  | Some w -> w
  | None ->
      invalid_arg
        (Printf.sprintf "Fleet: unknown workload %S (known: %s)" spec.workload
           (String.concat ", " Load.known_names))

(* The deterministic per-machine plan: seed, profile and request
   stream are pure functions of (fleet seed, machine id) — never of
   domain count, scheduling order, or sibling machines. *)
let plan spec id =
  let mseed = Prng.stream_seed ~seed:spec.seed ~index:id in
  let prng = Prng.create ~seed:mseed in
  let profile = Load.pick (workload_of spec) prng in
  let stream = Load.machine_stream prng profile ~duration_ms:spec.duration_ms in
  (mseed, stream)

(* ------------------------------------------------------------------ *)
(* One machine                                                          *)
(* ------------------------------------------------------------------ *)

type machine_result = {
  id : int;
  mseed : int64;
  profile : string;
  requests : int;
  completed : bool;  (* script ran to End (not the instruction cap) *)
  digest : int64;  (* full architectural state hash after the run *)
  instrs : int64;
  sim_seconds : float;
  traps : int;  (* traps that architecturally targeted M-mode *)
  world_switches : int;
  offload_hits : int;
  latencies : float array;  (* per-request simulated cycles *)
  log : string;  (* per-machine progress output, drained by the coordinator *)
  events : Mir_trace.Event.t list;  (* non-empty only when recorded *)
}

(* All per-machine output goes through this buffer; the coordinator
   prints buffers in machine-id order after the parallel phase, so
   fleet output is deterministic and never torn across domains. *)
let log_line buf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt

let build_system spec =
  let sys = Setup.create platform Setup.Virtualized in
  Machine.set_block_engine sys.Setup.machine spec.block_engine;
  sys

let run_one spec id =
  let mseed, stream = plan spec id in
  let sys = build_system spec in
  let traps = ref 0 in
  sys.Setup.machine.Machine.on_trap <-
    Some (fun _ _ _ ~from_priv:_ ~to_m -> if to_m then incr traps);
  (* the recorder chains the trap counter installed above *)
  let recorder =
    if spec.record_machine = Some id then Some (fst (Setup.attach_recorder sys))
    else None
  in
  Setup.run_scripts ~max_instrs:spec.max_instrs sys [ stream.Load.script ];
  let completed = sys.Setup.machine.Machine.poweroff in
  let stamps =
    Script.stamps sys.Setup.machine ~hart:0 ~count:(stream.Load.requests + 1)
  in
  let latencies =
    if completed then
      Array.init stream.Load.requests (fun i ->
          Int64.to_float (Int64.sub stamps.(i + 1) stamps.(i)))
    else [||]
  in
  let world_switches, offload_hits =
    match Setup.stats sys with
    | Some s ->
        (s.Miralis.Vfm_stats.world_switches, Miralis.Vfm_stats.offload_hits s)
    | None -> (0, 0)
  in
  let sim_seconds = Setup.seconds sys in
  let digest = Setup.state_hash sys in
  let buf = Buffer.create 128 in
  log_line buf
    "machine %3d: %-9s seed=%016Lx requests=%d traps=%d ws=%d sim=%.3fms \
     digest=%016Lx%s"
    id stream.Load.profile.Load.name mseed stream.Load.requests !traps
    world_switches (sim_seconds *. 1e3) digest
    (if completed then "" else "  [INSTR CAP HIT]");
  {
    id;
    mseed;
    profile = stream.Load.profile.Load.name;
    requests = stream.Load.requests;
    completed;
    digest;
    instrs = Int64.of_int sys.Setup.machine.Machine.instr_count;
    sim_seconds;
    traps = !traps;
    world_switches;
    offload_hits;
    latencies;
    log = Buffer.contents buf;
    events =
      (match recorder with
      | Some r -> Mir_trace.Recorder.events r
      | None -> []);
  }

(* ------------------------------------------------------------------ *)
(* The fleet run                                                        *)
(* ------------------------------------------------------------------ *)

type result = {
  spec : spec;
  results : machine_result array;  (* indexed by machine id *)
  wall_seconds : float;
}

let run spec =
  if spec.machines < 1 then invalid_arg "Fleet.run: machines < 1";
  ignore (workload_of spec) (* fail on an unknown workload before spawning *);
  let slots = Array.make spec.machines None in
  let t0 = Unix.gettimeofday () in
  Pool.run ~domains:spec.domains ~tasks:spec.machines (fun id ->
      slots.(id) <- Some (run_one spec id));
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let results =
    Array.map
      (function Some r -> r | None -> failwith "Fleet.run: missing result")
      slots
  in
  { spec; results; wall_seconds }

(* ------------------------------------------------------------------ *)
(* Fleet-wide metrics                                                   *)
(* ------------------------------------------------------------------ *)

type aggregate = {
  machines : int;
  requests : int;
  traps : int;
  world_switches : int;
  offload_hits : int;
  instrs : int64;
  all_completed : bool;
  sim_trap_rate : float;
      (* fleet-wide consolidated rate: sum over machines of that
         machine's traps per simulated second *)
  traps_per_wall_sec : float;  (* host-side aggregate throughput *)
  p50_cycles : float;
  p99_cycles : float;
  p999_cycles : float;
  fleet_digest : int64;  (* order-fixed fold of per-machine digests *)
}

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L
let mix h v = Int64.mul (Int64.logxor h v) fnv_prime

let aggregate r =
  let fold f init = Array.fold_left f init r.results in
  let requests = fold (fun a m -> a + m.requests) 0 in
  let traps = fold (fun a m -> a + m.traps) 0 in
  let world_switches = fold (fun a m -> a + m.world_switches) 0 in
  let offload_hits = fold (fun a m -> a + m.offload_hits) 0 in
  let instrs = fold (fun a m -> Int64.add a m.instrs) 0L in
  let all_completed = fold (fun a m -> a && m.completed) true in
  let sim_trap_rate =
    fold
      (fun a m ->
        if m.sim_seconds > 0. then a +. (float_of_int m.traps /. m.sim_seconds)
        else a)
      0.
  in
  let st = Stats.create () in
  Array.iter (fun m -> Array.iter (Stats.add st) m.latencies) r.results;
  let pct p = if Stats.count st = 0 then 0. else Stats.percentile st p in
  let fleet_digest =
    fold (fun h m -> mix (mix h (Int64.of_int m.id)) m.digest) fnv_offset
  in
  {
    machines = Array.length r.results;
    requests;
    traps;
    world_switches;
    offload_hits;
    instrs;
    all_completed;
    sim_trap_rate;
    traps_per_wall_sec =
      (if r.wall_seconds > 0. then float_of_int traps /. r.wall_seconds else 0.);
    p50_cycles = pct 50.;
    p99_cycles = pct 99.;
    p999_cycles = pct 99.9;
    fleet_digest;
  }

let drain_logs r =
  let buf = Buffer.create 4096 in
  Array.iter (fun m -> Buffer.add_string buf m.log) r.results;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Serial replay of one fleet machine                                   *)
(* ------------------------------------------------------------------ *)

(* Rebuild machine [id] of [spec] from scratch — same derived seed,
   same generated request stream — and re-execute it serially while
   verifying every trace event against [events] (recorded during a
   fleet run at any domain count). *)
let replay_machine spec ~id ~events =
  let _, stream = plan spec id in
  let sys = build_system spec in
  let replay, _tracer = Setup.attach_replay sys ~events in
  Setup.run_scripts ~max_instrs:spec.max_instrs sys [ stream.Load.script ];
  Mir_trace.Replay.finish replay
