(** Work-stealing domain pool (OCaml 5 [Domain]).

    Runs integer tasks [0, tasks) across a fixed set of domains: tasks
    are dealt round-robin onto per-worker deques, owners pop from the
    front, and an idle worker steals from the back of the victim with
    the most queued work. Each task runs exactly once; which domain
    runs it is scheduling-dependent, so the task function must write
    only to state owned by the task id (the fleet layer stores results
    in a per-task slot, keeping fleet output independent of domain
    count and stealing order). *)

val run : domains:int -> tasks:int -> (int -> unit) -> unit
(** [run ~domains ~tasks f] executes [f 0 .. f (tasks-1)], each
    exactly once, on at most [domains] domains (the calling domain
    participates; [domains = 1] degenerates to a plain serial loop).
    If a task raises, the remaining tasks are skipped, every domain is
    joined, and the first exception is re-raised with its backtrace.
    Requires [domains >= 1]. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], floored at 1. *)
