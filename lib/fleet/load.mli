(** Seeded load generator for the machine fleet.

    Replays the paper's per-workload trap-rate mix (§8.3.3: memcached,
    redis, mysql between ~11k and ~389k traps/s per core) as simulated
    client requests compiled to interpreter-kernel scripts. All
    randomness is drawn from the machine's own PRNG, so a machine's
    request stream is a pure function of (fleet seed, machine id). *)

type profile = {
  name : string;
  requests_per_sec : float;
  service_mean : int;
  service_spread : int;
  timer_every : int;
  disk_every : int;
  console_every : int;
  think_ticks : int;
  paper_traps_per_sec : int;
}

val redis : profile
val memcached : profile
val mysql : profile
val gcc : profile
val profiles : profile list

val find : string -> [ `Mix | `Profile of profile ] option
(** Look a workload up by name; ["mix"] is the weighted datacenter
    blend of all profiles. *)

val known_names : string list

val pick : [ `Mix | `Profile of profile ] -> Mir_util.Prng.t -> profile
(** The profile one machine runs: fixed for a named workload, drawn
    from the machine's PRNG for [`Mix]. *)

val max_requests : int
(** Stamp-buffer bound on requests per machine. *)

type stream = {
  profile : profile;
  script : Mir_kernel.Script.op list;
  requests : int;
}

val machine_stream :
  Mir_util.Prng.t -> profile -> duration_ms:float -> stream
(** Generate one machine's request stream covering [duration_ms] of
    simulated load at the profile's request rate (with a +/-10% seeded
    jitter). Every request starts with a cycle stamp and one trailing
    stamp closes the stream, so per-request latency in simulated
    cycles is the delta of consecutive stamps. *)
