(** Domain-parallel machine fleet: simulate the datacenter.

    Runs a fleet of independent simulated machines — each a complete
    single-hart system under its own Miralis monitor — across OCaml 5
    domains via a work-stealing pool ({!Pool}), fed by the seeded load
    generator ({!Load}) that replays the paper's per-workload
    trap-rate mix as simulated client requests.

    Determinism contract: every machine's seed, profile and request
    stream are pure functions of (fleet seed, machine id), no two
    machines share any mutable simulator state, and all aggregation
    folds per-machine results in machine-id order. Fleet results
    (digests, counters, latency percentiles) are therefore
    bit-identical regardless of domain count or stealing order; only
    [wall_seconds] varies. *)

type spec = {
  machines : int;
  domains : int;
  workload : string;  (** a {!Load} profile name, or ["mix"] *)
  seed : int64;
  duration_ms : float;  (** simulated load window per machine *)
  max_instrs : int64;  (** per-machine safety budget *)
  record_machine : int option;
      (** record this machine's trace during the fleet run *)
  block_engine : bool;
      (** execute each machine through the decoded basic-block engine
          (the default). Digests, counters and recorded traces are
          bit-identical either way — the engine is step-exact against
          the interpreter — so this knob only trades speed for an
          independent execution path. *)
}

val default_spec : spec
(** 64 machines, 1 domain, ["mix"], seed ["Fleet"], 1 ms, block
    engine on. *)

val platform : Mir_platform.Platform.t
(** The fleet guest: single-hart VisionFive-2-class machine, 8 MiB RAM. *)

type machine_result = {
  id : int;
  mseed : int64;  (** splitmix-derived from (fleet seed, id) *)
  profile : string;
  requests : int;
  completed : bool;
  digest : int64;  (** {!Mir_trace.Snapshot.hash} of the final state *)
  instrs : int64;
  sim_seconds : float;
  traps : int;
  world_switches : int;
  offload_hits : int;
  latencies : float array;  (** per-request simulated cycles *)
  log : string;  (** buffered progress lines, drained by the coordinator *)
  events : Mir_trace.Event.t list;  (** non-empty only when recorded *)
}

val plan : spec -> int -> int64 * Load.stream
(** The pure per-machine plan (derived seed, request stream) — exposed
    so tests can cross-check independence from domain count. *)

val run_one : spec -> int -> machine_result
(** Build and run machine [id] to completion on the calling domain. *)

type result = {
  spec : spec;
  results : machine_result array;  (** indexed by machine id *)
  wall_seconds : float;
}

val run : spec -> result
(** Run the whole fleet on [spec.domains] domains. *)

type aggregate = {
  machines : int;
  requests : int;
  traps : int;
  world_switches : int;
  offload_hits : int;
  instrs : int64;
  all_completed : bool;
  sim_trap_rate : float;
      (** fleet-wide consolidated traps per simulated second *)
  traps_per_wall_sec : float;  (** host-side aggregate throughput *)
  p50_cycles : float;
  p99_cycles : float;
  p999_cycles : float;  (** per-request latency percentiles, simulated cycles *)
  fleet_digest : int64;
}

val aggregate : result -> aggregate
(** Fold per-machine results in machine-id order; every field except
    [traps_per_wall_sec] is domain-count invariant. *)

val drain_logs : result -> string
(** All per-machine buffered output, concatenated in machine-id order. *)

val replay_machine :
  spec -> id:int -> events:Mir_trace.Event.t list -> Mir_trace.Replay.outcome
(** Rebuild machine [id] from the spec and re-execute it serially
    while verifying every event against a log recorded during a fleet
    run (at any domain count). *)
