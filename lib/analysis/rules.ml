(* The rule catalog: every repository invariant the type system cannot
   express, checked on the Parsetree rather than with grep. Working on
   the AST means comments and string literals can never trigger a rule,
   multi-line and type-annotated bindings are seen like any other, and
   the closure-capture race detector can reason about what a closure
   actually touches. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Longident / path helpers                                            *)
(* ------------------------------------------------------------------ *)

let rec flatten_longident = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (l, s) -> (
      match flatten_longident l with
      | Some p -> Some (p @ [ s ])
      | None -> None)
  | Longident.Lapply _ -> None

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

let ends_with ~suffix path =
  let rec drop n l = if n <= 0 then l else drop (n - 1) (List.tl l) in
  let lp = List.length path and ls = List.length suffix in
  lp >= ls && drop (lp - ls) path = suffix

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match flatten_longident txt with
      | Some p -> Some (strip_stdlib p)
      | None -> None)
  | _ -> None

let dotted = String.concat "."

(* File-path predicates over repo-relative, '/'-separated paths. *)
let starts_with prefix f =
  String.length f >= String.length prefix
  && String.sub f 0 (String.length prefix) = prefix

let in_any prefixes f = List.exists (fun p -> starts_with p f) prefixes
let everywhere (_ : string) = true
let nowhere (_ : string) = false

(* ------------------------------------------------------------------ *)
(* Generic traversals                                                  *)
(* ------------------------------------------------------------------ *)

(* Visit every expression identifier; [f] returns an optional
   diagnostic for the (Stdlib-stripped) dotted path. *)
let fold_idents ~file str ~f =
  let acc = ref [] in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match flatten_longident txt with
        | Some p -> (
            match f ~loc:e.pexp_loc (strip_stdlib p) with
            | Some d -> acc := d :: !acc
            | None -> ())
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str;
  ignore file;
  List.rev !acc

(* Does [e] (sub)contain an identifier whose last component is [name]? *)
let mentions_ident e ~name =
  let found = ref false in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match flatten_longident txt with
        | Some p when ends_with ~suffix:[ name ] p -> found := true
        | _ -> ())
    | _ -> ());
    if not !found then Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* Rule 1: obj-magic                                                   *)
(* ------------------------------------------------------------------ *)

let check_obj_magic ~file str =
  fold_idents ~file str ~f:(fun ~loc p ->
      if ends_with ~suffix:[ "Obj"; "magic" ] p then
        Some
          (Diagnostic.make ~rule:"obj-magic" ~loc ~file
             ~message:"Obj.magic is forbidden")
      else None)

(* ------------------------------------------------------------------ *)
(* Rule 2: stdlib-random                                               *)
(* ------------------------------------------------------------------ *)

(* Any qualified access rooted at the stdlib Random module — including
   Random.State — plus opening or aliasing the module itself. *)
let check_stdlib_random ~file str =
  let diags = ref [] in
  let flag loc what =
    diags :=
      Diagnostic.make ~rule:"stdlib-random" ~loc ~file
        ~message:
          (Printf.sprintf
             "%s: use the seeded Mir_util.Prng, never stdlib Random" what)
      :: !diags
  in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match flatten_longident txt with
        | Some p -> (
            match strip_stdlib p with
            | "Random" :: _ :: _ as p -> flag e.pexp_loc (dotted p)
            | _ -> ())
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let module_expr self me =
    (match me.pmod_desc with
    | Pmod_ident { txt; _ } -> (
        match flatten_longident txt with
        | Some p -> (
            match strip_stdlib p with
            | [ "Random" ] | "Random" :: _ ->
                flag me.pmod_loc ("module " ^ dotted (strip_stdlib p))
            | _ -> ())
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.module_expr self me
  in
  let it = { Ast_iterator.default_iterator with expr; module_expr } in
  it.structure it str;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Rules 3/5/7: fenced entry points                                    *)
(* ------------------------------------------------------------------ *)

let check_suffixes ~rule ~message_of ~suffixes ~file str =
  fold_idents ~file str ~f:(fun ~loc p ->
      if List.exists (fun s -> ends_with ~suffix:s p) suffixes then
        Some (Diagnostic.make ~rule ~loc ~file ~message:(message_of p))
      else None)

let check_csr_write ~file str =
  check_suffixes ~rule:"csr-write-path" ~file str
    ~suffixes:
      [
        [ "Csr_file"; "write" ];
        [ "Csr_file"; "write_raw" ];
        [ "Csr_file"; "set_mip_bits" ];
      ]
    ~message_of:(fun p ->
      Printf.sprintf "direct %s outside the sanctioned install paths"
        (dotted p))

let check_machine_step ~file str =
  check_suffixes ~rule:"machine-step" ~file str
    ~suffixes:[ [ "Machine"; "step" ] ]
    ~message_of:(fun p ->
      Printf.sprintf
        "direct hart stepping via %s; use Machine.run or \
         Machine.run_scheduled"
        (dotted p))

let check_block_step ~file str =
  check_suffixes ~rule:"block-step" ~file str
    ~suffixes:[ [ "Machine"; "step_blocks" ] ]
    ~message_of:(fun p ->
      Printf.sprintf
        "direct block-engine stepping via %s; use Machine.run with the \
         block_engine knob"
        (dotted p))

(* ------------------------------------------------------------------ *)
(* Rule 4: satp-raw-install                                            *)
(* ------------------------------------------------------------------ *)

(* An application of Csr_file.write_raw any of whose arguments mentions
   an identifier ending in [satp] (Csr_addr.satp, a local [satp], ...).
   Unlike the old single-line regex this sees through line breaks and
   intermediate lets. *)
let check_satp_raw ~file str =
  let diags = ref [] in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
        match ident_path f with
        | Some p when ends_with ~suffix:[ "Csr_file"; "write_raw" ] p ->
            if List.exists (fun (_, a) -> mentions_ident a ~name:"satp") args
            then
              diags :=
                Diagnostic.make ~rule:"satp-raw-install" ~loc:e.pexp_loc ~file
                  ~message:
                    "raw satp install outside the world-switch/architecture \
                     layers (TLB vm-epoch contract)"
                :: !diags
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Rule 6: toplevel-mutable                                            *)
(* ------------------------------------------------------------------ *)

(* Mutable-creating right-hand sides of *module-level* let bindings,
   at any module depth: plain structures, nested modules, functor
   bodies, include bodies. Local lets inside functions are fine — that
   is exactly where per-machine state is supposed to live. *)

let mutable_ctors =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Queue"; "create" ];
    [ "Buffer"; "create" ];
    [ "Stack"; "create" ];
    [ "Atomic"; "make" ];
    [ "Array"; "make" ];
    [ "Array"; "create_float" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Weak"; "create" ];
  ]

(* The expression a binding finally evaluates to, looking through
   annotations, local lets, opens and sequencing. *)
let rec binding_result e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> binding_result e
  | Pexp_let (_, _, body) | Pexp_open (_, body) | Pexp_sequence (_, body) ->
      binding_result body
  | _ -> e

let mutable_rhs e =
  let e = binding_result e in
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match ident_path f with
      | Some p when List.exists (fun c -> ends_with ~suffix:c p) mutable_ctors
        ->
          Some (dotted p)
      | _ -> None)
  | Pexp_record (fields, _)
    when List.exists
           (fun ({ Location.txt; _ }, _) ->
             match flatten_longident txt with
             | Some p -> ends_with ~suffix:[ "contents" ] p
             | None -> false)
           fields ->
      Some "{ contents = _ }"
  | Pexp_lazy _ -> Some "lazy"
  | _ -> None

let check_toplevel_mutable ~file str =
  let diags = ref [] in
  let rec walk_items items = List.iter walk_item items
  and walk_item item =
    match item.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match mutable_rhs vb.pvb_expr with
            | Some ctor ->
                diags :=
                  Diagnostic.make ~rule:"toplevel-mutable" ~loc:vb.pvb_loc
                    ~file
                    ~message:
                      (Printf.sprintf
                         "module-top-level mutable state (%s) in \
                          domain-shared code; thread it through the \
                          per-machine context"
                         ctor)
                  :: !diags
            | None -> ())
          vbs
    | Pstr_module mb -> walk_module_expr mb.pmb_expr
    | Pstr_recmodule mbs ->
        List.iter (fun mb -> walk_module_expr mb.pmb_expr) mbs
    | Pstr_include { pincl_mod; _ } -> walk_module_expr pincl_mod
    | _ -> ()
  and walk_module_expr me =
    match me.pmod_desc with
    | Pmod_structure items -> walk_items items
    | Pmod_functor (_, body) -> walk_module_expr body
    | Pmod_constraint (me, _) -> walk_module_expr me
    | _ -> ()
  in
  walk_items str;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Rule 8: domain-capture — the race detector                          *)
(* ------------------------------------------------------------------ *)

(* Function calls that mutate their first argument in place. *)
let mutator_calls =
  [
    [ "Hashtbl"; "add" ]; [ "Hashtbl"; "replace" ]; [ "Hashtbl"; "remove" ];
    [ "Hashtbl"; "reset" ]; [ "Hashtbl"; "clear" ];
    [ "Hashtbl"; "filter_map_inplace" ];
    [ "Array"; "set" ]; [ "Array"; "unsafe_set" ]; [ "Array"; "fill" ];
    [ "Array"; "blit" ]; [ "Array"; "sort" ];
    [ "Bytes"; "set" ]; [ "Bytes"; "unsafe_set" ]; [ "Bytes"; "fill" ];
    [ "Bytes"; "blit" ];
    [ "Buffer"; "add_char" ]; [ "Buffer"; "add_string" ];
    [ "Buffer"; "add_bytes" ]; [ "Buffer"; "add_substring" ];
    [ "Buffer"; "add_buffer" ]; [ "Buffer"; "clear" ];
    [ "Buffer"; "reset" ]; [ "Buffer"; "truncate" ];
    [ "Queue"; "push" ]; [ "Queue"; "add" ]; [ "Queue"; "pop" ];
    [ "Queue"; "take" ]; [ "Queue"; "clear" ]; [ "Queue"; "transfer" ];
    [ "Stack"; "push" ]; [ "Stack"; "pop" ]; [ "Stack"; "clear" ];
  ]

(* The spawn-like entry points whose closure arguments run on another
   domain: Domain.spawn and the fleet pool (Pool.run / Fleet.Pool.run). *)
let spawn_entry p =
  if ends_with ~suffix:[ "Domain"; "spawn" ] p then Some "Domain.spawn"
  else if ends_with ~suffix:[ "Pool"; "run" ] p then Some "Pool.run"
  else None

(* Every name bound anywhere inside [e] (parameters, lets, match cases,
   for indices). Shadow-insensitive over-approximation: treating a
   mutation target as bound whenever *some* binder shares its name can
   only suppress reports, never invent them. *)
let bound_names e =
  let names = Hashtbl.create 16 in
  let pat self p =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
        Hashtbl.replace names txt ()
    | _ -> ());
    Ast_iterator.default_iterator.pat self p
  in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_for ({ ppat_desc = Ppat_var { txt; _ }; _ }, _, _, _, _) ->
        Hashtbl.replace names txt ()
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with pat; expr } in
  it.expr it e;
  names

(* Peel r.field / !r down to the root identifier being mutated. *)
let rec mutation_base e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten_longident txt
  | Pexp_field (e, _) -> mutation_base e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident "!"; _ }; _ },
                [ (_, a) ]) ->
      mutation_base a
  | _ -> None

let is_fun_literal e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

let analyze_closure ~file ~entry closure =
  let bound = bound_names closure in
  let diags = ref [] in
  let flag loc name verb =
    diags :=
      Diagnostic.make ~rule:"domain-capture" ~loc ~file
        ~message:
          (Printf.sprintf
             "closure passed to %s %s captured '%s' without an \
              Atomic/Mutex wrapper"
             entry verb name)
      :: !diags
  in
  let check_target loc verb target =
    match mutation_base target with
    | Some p -> (
        match strip_stdlib p with
        | [ x ] -> if not (Hashtbl.mem bound x) then flag loc x verb
        | _ :: _ as p ->
            (* Qualified path: module-level state reached from another
               domain. Always a capture of shared state. *)
            flag loc (dotted p) verb
        | [] -> ())
    | None -> ()
  in
  let expr self e =
    match e.pexp_desc with
    | Pexp_setfield (target, _, _) ->
        check_target e.pexp_loc "assigns a field of" target;
        Ast_iterator.default_iterator.expr self e
    | Pexp_apply (f, args) -> (
        match ident_path f with
        | Some [ ":=" ] ->
            (match args with
            | (_, lhs) :: _ -> check_target e.pexp_loc "assigns" lhs
            | [] -> ());
            Ast_iterator.default_iterator.expr self e
        | Some [ "!" ] ->
            (match args with
            | (_, a) :: _ -> check_target e.pexp_loc "dereferences" a
            | [] -> ());
            Ast_iterator.default_iterator.expr self e
        | Some p when ends_with ~suffix:[ "Mutex"; "protect" ] p ->
            (* The critical section is lock-protected: trust it. *)
            ignore self
        | Some p
          when List.exists (fun c -> ends_with ~suffix:c p) mutator_calls -> (
            (match
               List.find_opt (fun (lbl, _) -> lbl = Asttypes.Nolabel) args
             with
            | Some (_, target) ->
                check_target e.pexp_loc
                  (Printf.sprintf "mutates (%s)" (dotted p))
                  target
            | None -> ());
            Ast_iterator.default_iterator.expr self e)
        | _ -> Ast_iterator.default_iterator.expr self e)
    | _ -> Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it closure;
  List.rev !diags

let check_domain_capture ~file str =
  let diags = ref [] in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
        match ident_path f with
        | Some p -> (
            match spawn_entry p with
            | Some entry ->
                List.iter
                  (fun (_, a) ->
                    if is_fun_literal a then
                      diags := analyze_closure ~file ~entry a :: !diags)
                  args
            | None -> ())
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str;
  List.concat (List.rev !diags)

(* ------------------------------------------------------------------ *)
(* Rule 9: determinism                                                 *)
(* ------------------------------------------------------------------ *)

let entropy_sources =
  [
    [ "Sys"; "time" ];
    [ "Unix"; "time" ];
    [ "Unix"; "gettimeofday" ];
    [ "Random"; "self_init" ];
    [ "Domain"; "self" ];
  ]

let check_determinism ~file str =
  fold_idents ~file str ~f:(fun ~loc p ->
      let banned =
        List.exists (fun s -> ends_with ~suffix:s p) entropy_sources
        || ends_with ~suffix:[ "gettimeofday" ] p
        || ends_with ~suffix:[ "self_init" ] p
      in
      if banned then
        Some
          (Diagnostic.make ~rule:"determinism" ~loc ~file
             ~message:
               (Printf.sprintf
                  "wall-clock/host-entropy source %s outside bench/; \
                   simulation results must be a pure function of the \
                   config seed"
                  (dotted p)))
      else None)

(* ------------------------------------------------------------------ *)
(* The catalog                                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  id : string;
  title : string;
  rationale : string;
  applies : string -> bool;
  sanctioned : string -> bool;
  check : file:string -> Parsetree.structure -> Diagnostic.t list;
}

let all =
  [
    {
      id = "obj-magic";
      title = "Obj.magic is banned outright";
      rationale =
        "unsafe casts void every invariant the verifier proves about \
         the simulator's state";
      applies = everywhere;
      sanctioned = nowhere;
      check = check_obj_magic;
    };
    {
      id = "stdlib-random";
      title = "stdlib Random is banned outside the seeded PRNG";
      rationale =
        "all randomness must flow from the config-rooted seeded PRNG, \
         or record/replay and the verification seeds lose determinism";
      applies = everywhere;
      sanctioned = (fun f -> f = "lib/util/prng.ml");
      check = check_stdlib_random;
    };
    {
      id = "csr-write-path";
      title = "CSR stores only via the sanctioned install paths";
      rationale =
        "Csr_file.write/write_raw/set_mip_bits may be used by the \
         architecture, the monitor's install paths, the policies and \
         the verification harnesses; everything else goes through \
         those layers";
      applies = everywhere;
      sanctioned =
        (fun f ->
          in_any [ "lib/rv/"; "lib/policies/"; "lib/verif/"; "test/" ] f
          || List.mem f
               [
                 "lib/core/emulator.ml"; "lib/core/monitor.ml";
                 "lib/core/world.ml"; "lib/core/offload.ml";
                 "lib/core/vpmp.ml";
               ]);
      check = check_csr_write;
    };
    {
      id = "satp-raw-install";
      title = "raw satp installs only in the world-switch layers";
      rationale =
        "a raw satp swap bypasses review of the TLB vm-epoch \
         invalidation contract";
      applies = everywhere;
      sanctioned =
        (fun f ->
          in_any [ "lib/rv/"; "lib/verif/"; "test/" ] f
          || List.mem f [ "lib/core/world.ml"; "lib/core/monitor.ml" ]);
      check = check_satp_raw;
    };
    {
      id = "machine-step";
      title = "Machine.step only in the machine, differs and benches";
      rationale =
        "multi-hart execution must go through Machine.run / \
         run_scheduled so schedule control and device/time sync are \
         never bypassed";
      applies = everywhere;
      sanctioned =
        (fun f ->
          in_any [ "lib/rv/"; "lib/verif/"; "bench/" ] f
          || f = "test/test_blocks.ml");
      check = check_machine_step;
    };
    {
      id = "toplevel-mutable";
      title = "no module-top-level mutable state under lib/";
      rationale =
        "the fleet runs machines on multiple OCaml domains; every \
         mutable structure must live inside a per-machine value \
         threaded through constructors";
      applies = (fun f -> starts_with "lib/" f);
      sanctioned = nowhere;
      check = check_toplevel_mutable;
    };
    {
      id = "block-step";
      title = "Machine.step_blocks behind the same fence as step";
      rationale =
        "Machine.run owns the engine/interpreter dispatch, so the \
         block_engine knob and its determinism contract are honored \
         everywhere";
      applies = everywhere;
      sanctioned =
        (fun f ->
          in_any [ "lib/rv/"; "lib/verif/"; "bench/" ] f
          || f = "test/test_blocks.ml");
      check = check_block_step;
    };
    {
      id = "domain-capture";
      title = "no unsynchronized mutable capture across Domain.spawn";
      rationale =
        "a closure handed to Domain.spawn or the fleet pool races on \
         any captured mutable value unless every access goes through \
         Atomic or a Mutex";
      applies = everywhere;
      sanctioned = nowhere;
      check = check_domain_capture;
    };
    {
      id = "determinism";
      title = "no wall-clock or host entropy outside bench/";
      rationale =
        "Sys.time, Unix.gettimeofday, Random.self_init and Domain.self \
         leak host nondeterminism into results that must be a pure \
         function of the config seed";
      applies = (fun f -> not (starts_with "bench/" f));
      sanctioned = nowhere;
      check = check_determinism;
    };
  ]

let ids = List.map (fun r -> r.id) all
let by_id id = List.find_opt (fun r -> r.id = id) all
let except disabled = List.filter (fun r -> not (List.mem r.id disabled)) all
