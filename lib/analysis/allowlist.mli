(** The structured allowlist: individually justified exceptions to the
    rule catalog. Every entry names the rule it suppresses, the file
    (or directory prefix ending in ['/']) it applies to, an optional
    line pin, and a written justification — entries without a reason
    are rejected by the test suite. Sanctioned *layers* (the monitor's
    install paths, the verification harnesses) live in the rule
    definitions themselves; this list is only for point exceptions. *)

type entry = {
  rule : string;
  path : string;  (** exact file, or a directory prefix ending in '/' *)
  line : int option;  (** pin to one line, or the whole file *)
  reason : string;  (** mandatory written justification *)
}

val entries : entry list

val suppresses : entry -> Diagnostic.t -> bool

val apply : Diagnostic.t list -> Diagnostic.t list * entry list
(** [apply ds] is [(kept, unused)]: the diagnostics no entry suppresses,
    and the entries that suppressed nothing (candidates for removal —
    the CLI reports them so the list cannot rot). *)
