(** The rule catalog.

    Each rule carries a stable id (used in diagnostics, [--rule] /
    [--disable] CLI filters, and allowlist entries), a human rationale,
    a scope predicate (which files the rule examines at all), a
    sanctioned-path predicate (files allowed to use the pattern by
    design — the monitor's install paths, the verification harnesses,
    ...), and the AST check itself.

    The catalog (ids are stable; never renumber):

    - ["obj-magic"] — [Obj.magic] is banned outright.
    - ["stdlib-random"] — stdlib [Random] is banned outside
      [lib/util/prng.ml]; all randomness flows from the seeded PRNG.
    - ["csr-write-path"] — [Csr_file.write]/[write_raw]/[set_mip_bits]
      only on the sanctioned install paths.
    - ["satp-raw-install"] — raw satp installs restricted further, to
      the architecture and world-switch/monitor layers.
    - ["machine-step"] — [Machine.step] only in the machine, the
      differs, the benches and the block-engine tests.
    - ["toplevel-mutable"] — no module-top-level mutable state anywhere
      under [lib/]: the fleet shares these modules across domains.
    - ["block-step"] — [Machine.step_blocks] behind the same fence as
      [machine-step].
    - ["domain-capture"] — the race detector: closures passed to
      [Domain.spawn] / [Pool.run] must not mutate (or dereference)
      captured mutable state without an [Atomic]/[Mutex] wrapper.
    - ["determinism"] — wall-clock and host-entropy sources
      ([Sys.time], [Unix.gettimeofday], [Unix.time],
      [Random.self_init], [Domain.self]) are banned outside [bench/]. *)

type t = {
  id : string;
  title : string;
  rationale : string;
  applies : string -> bool;
      (** [applies file]: the rule examines this repo-relative file. *)
  sanctioned : string -> bool;
      (** [sanctioned file]: the file may use the pattern by design
          (no diagnostics emitted, no allowlist entry needed). *)
  check : file:string -> Parsetree.structure -> Diagnostic.t list;
}

val all : t list
(** Every rule, in catalog order. *)

val ids : string list

val by_id : string -> t option

val except : string list -> t list
(** [except ids] is [all] without the given rules (for fixture tests
    asserting a rule's diagnostics disappear when it is disabled). *)
