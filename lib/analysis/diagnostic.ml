type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ~loc ~message ~file =
  let p = loc.Location.loc_start in
  {
    rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

(* Minimal JSON string escaping: the analyzer only emits paths, rule
   ids and fixed message text, but escape defensively anyway. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Printf.sprintf
    "{\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \
     \"message\": \"%s\"}"
    (json_escape d.rule) (json_escape d.file) d.line d.col
    (json_escape d.message)

let list_to_json ds =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n  \"diagnostics\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      Buffer.add_string b (to_json d))
    ds;
  if ds <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "],\n";
  Buffer.add_string b (Printf.sprintf "  \"count\": %d\n}" (List.length ds));
  Buffer.contents b
