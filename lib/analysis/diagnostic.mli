(** A single analyzer finding: a stable rule id anchored to a
    [file:line:col] source position. Diagnostics are the only output of
    the rule engine — the CLI renders them as text or JSON, CI fails on
    any, and the allowlist suppresses individually justified ones. *)

type t = {
  rule : string;  (** stable rule id, e.g. ["toplevel-mutable"] *)
  file : string;  (** repo-relative path, ['/']-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  message : string;
}

val make : rule:string -> loc:Location.t -> message:string -> file:string -> t
(** Build a diagnostic from a parsetree location (start position). *)

val compare : t -> t -> int
(** Order by file, then line, then column, then rule id. *)

val to_string : t -> string
(** [file:line:col: [rule] message] — one line, editor-clickable. *)

val to_json : t -> string
(** One JSON object with [rule], [file], [line], [col], [message]. *)

val list_to_json : t list -> string
(** A JSON report: [{"diagnostics": [...], "count": n}]. *)
