(** The analyzer driver: find sources, parse with compiler-libs, run
    the rule engine, apply the allowlist, render diagnostics.

    File paths handed to rules are repo-relative and ['/']-separated,
    because the sanctioned-path predicates and the allowlist are
    written against that form. *)

val default_dirs : string list
(** [lib bin bench examples test] — the directories CI gates on. *)

val scan : root:string -> string list -> string list
(** Every [.ml]/[.mli] under the given directories (repo-relative,
    sorted); directories that do not exist are skipped. *)

val check_source :
  ?rules:Rules.t list -> file:string -> string -> Diagnostic.t list
(** Analyze one compilation unit given as a string. [file] is the
    repo-relative path the rules' scope/sanction predicates see — the
    test fixtures use this to place a snippet in any layer. A syntax
    error yields a single ["parse-error"] diagnostic. No allowlist is
    applied. *)

val check_file :
  ?rules:Rules.t list -> root:string -> string -> Diagnostic.t list
(** [check_file ~root rel] reads [root/rel] and analyzes it. *)

type report = {
  diagnostics : Diagnostic.t list;  (** after the allowlist, sorted *)
  files : int;  (** compilation units scanned *)
  unused_allowlist : Allowlist.entry list;
}

val run :
  ?rules:Rules.t list -> root:string -> dirs:string list -> unit -> report
(** Scan, analyze every file, apply the allowlist. *)

val render :
  format:[ `Text | `Json ] -> report -> string
(** Render a report: one [Diagnostic.to_string] line each (text), or a
    [{"diagnostics": [...], "count": n}] object (json). *)
