let default_dirs = [ "lib"; "bin"; "bench"; "examples"; "test" ]

(* ------------------------------------------------------------------ *)
(* Source discovery                                                    *)
(* ------------------------------------------------------------------ *)

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let scan ~root dirs =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs then
      if Sys.is_directory abs then
        Array.iter
          (fun name -> walk (rel ^ "/" ^ name))
          (Sys.readdir abs)
      else if is_source rel then acc := rel :: !acc
  in
  List.iter
    (fun d ->
      let abs = Filename.concat root d in
      if Sys.file_exists abs && Sys.is_directory abs then
        Array.iter (fun name -> walk (d ^ "/" ^ name)) (Sys.readdir abs))
    dirs;
  List.sort String.compare !acc

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parsed =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature
  | Failed of Diagnostic.t

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Location.input_name := file;
  try
    if Filename.check_suffix file ".mli" then
      Intf (Parse.interface lexbuf)
    else Impl (Parse.implementation lexbuf)
  with exn ->
    let loc, msg =
      match Location.error_of_exn exn with
      | Some (`Ok { Location.main = { loc; txt }; _ }) ->
          (loc, Format.asprintf "%t" txt)
      | _ -> (Location.in_file file, Printexc.to_string exn)
    in
    Failed
      (Diagnostic.make ~rule:"parse-error" ~loc ~file
         ~message:("source does not parse: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Per-file analysis                                                   *)
(* ------------------------------------------------------------------ *)

let check_parsed ~rules ~file parsed =
  match parsed with
  | Failed d -> [ d ]
  | Intf _ ->
      (* Signatures carry no expressions, so no rule fires there; they
         are still parsed so a broken interface cannot hide. *)
      []
  | Impl str ->
      List.concat_map
        (fun r ->
          if r.Rules.applies file && not (r.Rules.sanctioned file) then
            r.Rules.check ~file str
          else [])
        rules

let check_source ?(rules = Rules.all) ~file source =
  List.sort Diagnostic.compare (check_parsed ~rules ~file (parse ~file source))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file ?(rules = Rules.all) ~root rel =
  check_source ~rules ~file:rel (read_file (Filename.concat root rel))

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

type report = {
  diagnostics : Diagnostic.t list;
  files : int;
  unused_allowlist : Allowlist.entry list;
}

let run ?(rules = Rules.all) ~root ~dirs () =
  let files = scan ~root dirs in
  let raw = List.concat_map (fun rel -> check_file ~rules ~root rel) files in
  let kept, unused = Allowlist.apply raw in
  {
    diagnostics = List.sort Diagnostic.compare kept;
    files = List.length files;
    unused_allowlist = unused;
  }

let render ~format report =
  match format with
  | `Text ->
      String.concat ""
        (List.map
           (fun d -> Diagnostic.to_string d ^ "\n")
           report.diagnostics)
  | `Json -> Diagnostic.list_to_json report.diagnostics ^ "\n"
