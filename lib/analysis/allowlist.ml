type entry = {
  rule : string;
  path : string;
  line : int option;
  reason : string;
}

let e ?line rule path reason = { rule; path; line; reason }

(* Keep this list short and honest: an entry is a debt note, and every
   one must say why the exception is sound. Directory prefixes end in
   '/'; everything else is an exact repo-relative file path. *)
let entries =
  [
    (* -------------------------------------------------------------- *)
    (* determinism: wall-clock used for human-facing throughput        *)
    (* reporting only. None of these values feed simulation state,     *)
    (* seeds, traces or digests — the fuzzer/prover/fleet results are  *)
    (* bit-identical under any clock.                                  *)
    (* -------------------------------------------------------------- *)
    e "determinism" "lib/fuzz/fuzzer.ml"
      "Sys.time only computes the execs/sec figure printed in the \
       campaign summary; coverage, corpus and divergence results are \
       clock-independent";
    e "determinism" "lib/fuzz/pgfuzz.ml"
      "Sys.time only computes the execs/sec figure printed in the \
       paging-campaign summary; stream generation is seed-driven";
    e "determinism" "lib/fuzz/blockfuzz.ml"
      "Sys.time only computes the execs/sec figure printed in the \
       block-campaign summary; program generation is seed-driven";
    e "determinism" "lib/verif/tasks.ml"
      "Sys.time only stamps the per-task seconds field of verification \
       reports; proof outcomes are exhaustive and clock-independent";
    e "determinism" "lib/verif/prove.ml"
      "Sys.time only stamps the seconds fields of prover reports \
       (BENCH_sym.json); path enumeration is exhaustive and \
       clock-independent";
    e "determinism" "lib/fleet/fleet.ml"
      "Unix.gettimeofday only measures host wall_seconds for the \
       throughput report; the determinism contract (bit-identical \
       results across domain counts) is tested over everything else";
    (* -------------------------------------------------------------- *)
    (* domain-capture                                                  *)
    (* -------------------------------------------------------------- *)
    e "domain-capture" "lib/fleet/fleet.ml"
      "Fleet.run's pool closure writes slots.(id) where id is the task \
       index: Pool.run runs every task exactly once, so writes are to \
       disjoint indices, and Domain.join in the pool publishes them \
       before slots is read";
  ]

let suppresses ent (d : Diagnostic.t) =
  ent.rule = d.rule
  && (match ent.line with None -> true | Some l -> l = d.line)
  &&
  let plen = String.length ent.path in
  if plen > 0 && ent.path.[plen - 1] = '/' then
    String.length d.file >= plen && String.sub d.file 0 plen = ent.path
  else ent.path = d.file

let apply ds =
  let used = ref [] in
  let kept =
    List.filter
      (fun d ->
        match List.find_opt (fun ent -> suppresses ent d) entries with
        | Some ent ->
            if not (List.memq ent !used) then used := ent :: !used;
            false
        | None -> true)
      ds
  in
  (kept, List.filter (fun ent -> not (List.memq ent !used)) entries)
