(** Cross-hart isolation oracles, checked at hart-switch points.

    Trap handling is atomic within one [Machine.step], so switch
    points are exactly the intermediate states a concurrent monitor
    would expose; an oracle that holds at every switch point of every
    schedule holds of the interleaving, full stop. *)

type violation = {
  oracle : string;  (** name of the violated oracle *)
  hart : int;  (** offending hart, [-1] when not hart-specific *)
  detail : string;
}

type t = { name : string; check : unit -> violation option }

val first_violation : t list -> violation option

val policy_flag : Miralis.Monitor.t -> t
(** The active policy has not flagged a violation. *)

val pmp_owner : Miralis.Monitor.t -> t
(** Every hart's physical PMP prefix equals [Vpmp.build] of its owning
    vhart's current view — no hart runs on a stale sibling's PMP. *)

val msip_delivery : Miralis.Monitor.t -> t
(** A pending offloaded IPI or remote fence for a hart implies that
    hart's physical msip line is raised: kicks are never dropped. *)

val sfence_coherence : Mir_rv.Machine.t -> t
(** After syncing each hart's TLB to its vm-epoch, every still-valid
    entry re-walks to the same physical frame: no hart can see a
    translation a completed cross-hart sfence should have shot down. *)

val isolation : regions:(unit -> (int64 * int64) list) -> Mir_rv.Machine.t -> t
(** No hart whose pc is outside a protected [(base, size)] region can
    read that region under its currently installed PMP. *)
