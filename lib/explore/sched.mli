(** Pluggable hart schedulers for [Machine.run_scheduled].

    A scheduler is a (possibly stateful) pick function: given the
    machine, the global step counter and the hart that ran last,
    return the hart to step next. All randomness comes from an
    explicit [Mir_util.Prng.t], so a scheduler replays bit-identically
    from its seed. *)

type t = {
  name : string;
  pick : Mir_rv.Machine.t -> step:int -> last:int -> int;
}

val round_robin : ?slice:int -> nharts:int -> unit -> t
(** Fixed time slices, hart 0 first — the cadence [Machine.run]
    itself uses; the explorer's deliberately-blind baseline. *)

val random :
  ?avg_slice:int ->
  ?max_switches:int ->
  ?start_step:int ->
  prng:Mir_util.Prng.t ->
  nharts:int ->
  unit ->
  t
(** Seeded random walk; the switch probability jumps to 1/2 right
    after a trap entry ([Hart.just_trapped]) and is 1/[avg_slice]
    otherwise. [max_switches] bounds the number of preemptions and
    [start_step] delays the first one — the shrinker's knobs. *)

val pct : ?events:int -> ?depth:int -> prng:Mir_util.Prng.t -> nharts:int -> unit -> t
(** PCT-style priority schedule (Burckhardt et al.): random hart
    priorities with [depth] demotions at randomly chosen trap-entry
    events; probes all bugs of preemption depth <= [depth]. *)

val dfs_schedules :
  nharts:int ->
  horizon:int ->
  grid:int ->
  max_switches:int ->
  (int * int) list Seq.t
(** Exhaustive small-bound enumeration: every schedule whose switches
    sit on a coarse step grid, up to [max_switches] switches within
    [horizon] steps. Finite and deterministic; each element feeds
    {!of_switches}. *)

val of_switches : (int * int) list -> t
(** Replay a recorded [(step, hart)] switch list: from each switch
    point onward run that hart. *)
