(* Explorer workload scenarios.

   Each scenario is a small multi-hart system (MiniSBI + interpreter
   kernel under Miralis, visionfive2 cost model) whose
   workload keeps one class of cross-hart invariant under pressure,
   plus the oracles that watch it. A scenario build is a pure function
   of (nharts, seed), so a schedule replayed against the same pair
   reproduces bit-identically.

   Each scenario also names the race bug (Machine.race_bug) it is
   designed to surface — the explorer arms the bug on the built
   machine when injection is requested. *)

module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Vmem = Mir_rv.Vmem
module Platform = Mir_platform.Platform
module Script = Mir_kernel.Script
module Paging = Mir_kernel.Paging
module Interp_kernel = Mir_kernel.Interp_kernel
module Uapp = Mir_kernel.Uapp
module Layout = Mir_firmware.Layout
module Minisbi = Mir_firmware.Minisbi
module Setup = Mir_harness.Setup
module Keystone = Mir_policies.Policy_keystone
module Monitor = Miralis.Monitor
module Config = Miralis.Config

type instance = {
  system : Setup.system;
  mir : Monitor.t;
  oracles : Oracle.t list;
  on_switch : step:int -> unit;
      (** scenario action at a hart-switch point (e.g. the sfence
          scenario's fenced PTE flip); runs after the oracles *)
  max_steps : int;  (** default step budget for one schedule *)
}

type t = {
  name : string;
  descr : string;
  bug : Machine.race_bug option;
      (** the injected race this scenario is designed to surface *)
  build : nharts:int -> seed:int64 -> instance;
}

let vf2 = Platform.visionfive2

let platform ~nharts =
  { vf2 with Platform.machine = { vf2.Platform.machine with Machine.nharts } }

(* Same assembly as the policy tests: machine + MiniSBI + interpreter
   kernel, booted under Miralis in the virtualized mode. *)
let build_system ?policy ?policy_pmp_slots ~nharts ~seed () =
  let p = platform ~nharts in
  let mc = p.Platform.machine in
  let m = Machine.create mc in
  Machine.load_program m Layout.fw_base
    (fst (Minisbi.image ~nharts ~kernel_entry:Interp_kernel.entry));
  Machine.load_program m Interp_kernel.entry (fst (Interp_kernel.image ()));
  let config =
    Config.make ?policy_pmp_slots ~cost:p.Platform.cost ~seed ~machine:mc ()
  in
  let mir = Monitor.create ?policy config m in
  Monitor.boot mir ~fw_entry:Layout.fw_base;
  ( {
      Setup.platform = p;
      mode = Setup.Virtualized;
      machine = m;
      miralis = Some mir;
    },
    mir )

let write_scripts m scripts =
  Array.iter
    (fun h ->
      let ops =
        match List.nth_opt scripts h.Hart.id with
        | Some s -> s
        | None -> [ Script.Halt ]
      in
      Script.write m ~hart:h.Hart.id ops)
    m.Machine.harts

(* ------------------------------------------------------------------ *)
(* ipi: hart 0 broadcasts IPIs while hart 1 takes offloaded rdtime     *)
(* traps — the workload for the MSIP delivery-ordering oracle. A       *)
(* dropped kick needs the send to land exactly while the target sits   *)
(* on a fresh trap entry, which only a preemption mid-emulation        *)
(* produces.                                                           *)
(* ------------------------------------------------------------------ *)

let ipi =
  let build ~nharts ~seed =
    let system, mir = build_system ~nharts ~seed () in
    let m = system.Setup.machine in
    write_scripts m
      [
        [ Script.Ipi_all; Script.Compute 40L; Script.Loop 400L ];
        [ Script.Rdtime; Script.Compute 25L; Script.Loop 600L ];
      ];
    {
      system;
      mir;
      oracles =
        [
          Oracle.policy_flag mir;
          Oracle.msip_delivery mir;
          Oracle.pmp_owner mir;
        ];
      on_switch = (fun ~step:_ -> ());
      max_steps = 6000;
    }
  in
  {
    name = "ipi";
    descr = "IPI broadcast vs offloaded traps (MSIP delivery ordering)";
    bug = Some Machine.Dropped_msip;
    build;
  }

(* ------------------------------------------------------------------ *)
(* sfence: hart 1 runs with Sv39 paging on and probes one virtual      *)
(* page whose PTE hart 0's kernel keeps flipping between two frames,   *)
(* each flip fenced with a cross-hart sfence.vma. The coherence        *)
(* oracle re-walks every TLB entry; a fence that fails to reach a      *)
(* preempted hart leaves a stale translation it can see.               *)
(* ------------------------------------------------------------------ *)

let probe_vaddr = 0xC000_0000L (* Sv39 VPN2 = 3: above the identity maps *)
let l1_base = 0x8075_0000L
let l0_base = 0x8075_1000L
let page_a = 0x8075_2000L
let page_b = 0x8075_3000L

let sfence =
  let build ~nharts ~seed =
    let system, mir = build_system ~nharts ~seed () in
    let m = system.Setup.machine in
    let satp_v = Paging.identity_satp m in
    let store at v = assert (Machine.phys_store m at 8 v) in
    let nonleaf target =
      Int64.logor
        (Int64.shift_left (Int64.shift_right_logical target 12) 10)
        Vmem.pte_v
    in
    let leaf target =
      Int64.logor
        (Int64.shift_left (Int64.shift_right_logical target 12) 10)
        (List.fold_left Int64.logor 0L
           [ Vmem.pte_v; Vmem.pte_r; Vmem.pte_w; Vmem.pte_a; Vmem.pte_d ])
    in
    store (Int64.add Paging.root 24L) (nonleaf l1_base);
    store l1_base (nonleaf l0_base);
    store l0_base (leaf page_a);
    store page_a 0xAAAA_AAAA_AAAA_AAAAL;
    store page_b 0xBBBB_BBBB_BBBB_BBBBL;
    write_scripts m
      [
        [ Script.Rdtime; Script.Compute 30L; Script.Loop 500L ];
        [
          Script.Enable_paging satp_v;
          Script.Load_probe probe_vaddr;
          Script.Compute 20L;
          Script.Loop 400L;
        ];
      ];
    let cur = ref page_a in
    let last_flip = ref 0 in
    (* hart 0's kernel edits the shared PTE and fences, modeled as one
       atomic action at a switch boundary (edit-then-sfence with no
       intervening steps, as the real sequence would retire). *)
    let on_switch ~step =
      if step - !last_flip >= 64 then begin
        last_flip := step;
        cur := (if !cur = page_a then page_b else page_a);
        store l0_base (leaf !cur);
        Machine.sfence_vma m ~from:0 ()
      end
    in
    {
      system;
      mir;
      oracles =
        [
          Oracle.policy_flag mir;
          Oracle.sfence_coherence m;
          Oracle.msip_delivery mir;
        ];
      on_switch;
      max_steps = 6000;
    }
  in
  {
    name = "sfence";
    descr = "concurrent PTE flip + remote fence (TLB epoch coherence)";
    bug = Some Machine.Delayed_vm_epoch;
    build;
  }

(* ------------------------------------------------------------------ *)
(* keystone: hart 0 cycles Keystone enclave rounds while hart 1 runs   *)
(* an ordinary OS workload. Creation and destruction change every      *)
(* sibling's PMP view; the isolation oracle demands that no hart       *)
(* outside the enclave can read its memory at any switch point.        *)
(* ------------------------------------------------------------------ *)

let enclave_base = 0x8080_0000L
let enclave_size = 4096L

let keystone =
  let build ~nharts ~seed =
    let policy, kstate = Keystone.create () in
    let system, mir =
      build_system ~policy ~policy_pmp_slots:Keystone.pmp_slots ~nharts ~seed
        ()
    in
    let m = system.Setup.machine in
    Machine.load_program m enclave_base
      (Uapp.image ~base:enclave_base ~iters:25L);
    Script.write_descriptor m ~index:0 ~base:enclave_base ~size:enclave_size
      ~entry:enclave_base;
    write_scripts m
      [
        [ Script.Enclave_round 0L; Script.Compute 60L; Script.Loop 8L ];
        [ Script.Rdtime; Script.Compute 35L; Script.Loop 200L ];
      ];
    let regions () =
      List.filter_map
        (fun e ->
          if e.Keystone.state = Keystone.Destroyed then None
          else Some (e.Keystone.base, e.Keystone.size))
        kstate.Keystone.enclaves
    in
    {
      system;
      mir;
      oracles =
        [
          Oracle.policy_flag mir;
          Oracle.isolation ~regions m;
          Oracle.pmp_owner mir;
          Oracle.msip_delivery mir;
        ];
      on_switch = (fun ~step:_ -> ());
      max_steps = 8000;
    }
  in
  {
    name = "keystone";
    descr = "enclave lifecycle vs OS sibling (PMP handoff isolation)";
    bug = Some Machine.Pmp_handoff_window;
    build;
  }

let all = [ ipi; sfence; keystone ]
let find name = List.find_opt (fun s -> s.name = name) all
