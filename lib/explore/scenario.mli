(** Explorer workload scenarios.

    Each scenario is a small multi-hart system (MiniSBI + interpreter
    kernel under Miralis) whose workload keeps one class of cross-hart
    invariant under pressure, plus the oracles that watch it. A build
    is a pure function of (nharts, seed), so a schedule replayed
    against the same pair reproduces bit-identically. *)

type instance = {
  system : Mir_harness.Setup.system;
  mir : Miralis.Monitor.t;
  oracles : Oracle.t list;
  on_switch : step:int -> unit;
      (** scenario action at a hart-switch point (e.g. the sfence
          scenario's fenced PTE flip); runs after the oracles *)
  max_steps : int;  (** default step budget for one schedule *)
}

type t = {
  name : string;
  descr : string;
  bug : Mir_rv.Machine.race_bug option;
      (** the injected race this scenario is designed to surface *)
  build : nharts:int -> seed:int64 -> instance;
}

val ipi : t
(** IPI broadcast vs offloaded traps (MSIP delivery ordering). *)

val sfence : t
(** Concurrent PTE flip + remote fence (TLB epoch coherence). *)

val keystone : t
(** Enclave lifecycle vs OS sibling (PMP handoff isolation). *)

val all : t list
val find : string -> t option
