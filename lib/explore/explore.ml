(* The schedule explorer: run scenarios under pluggable schedulers,
   check the cross-hart oracles at every switch point, and turn any
   violation into a shrunk, replayable schedule artifact.

   One explorer run = one scheduler + one fresh scenario instance.
   The pick function recording the schedule remaps picks of halted
   harts deterministically (next runnable, wrapping), records the
   switch, checks the oracles, and only then lets the scenario's
   switch action run — so a replayed schedule re-checks the oracles at
   exactly the same machine states and reproduces the same verdict. *)

module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Prng = Mir_util.Prng
module Setup = Mir_harness.Setup
module Config = Miralis.Config
module Schedule = Mir_trace.Schedule
module Shrink = Mir_fuzz.Shrink

exception Stop

type outcome = {
  violation : Oracle.violation option;
  steps : int;  (** global steps consumed (= pick calls) *)
  switches : (int * int) list;  (** recorded (step, hart), ascending *)
  trap_points : int;  (** switches taken right after a trap entry *)
}

let run_once (inst : Scenario.instance) ~(sched : Sched.t) ?max_steps () =
  let m = inst.Scenario.system.Setup.machine in
  let nharts = Array.length m.Machine.harts in
  let max_steps = Option.value max_steps ~default:inst.Scenario.max_steps in
  let step = ref 0 in
  let last = ref (-1) in
  let switches = ref [] in
  let trap_points = ref 0 in
  let violation = ref None in
  let pick m =
    let h0 = sched.Sched.pick m ~step:!step ~last:!last in
    let h = ref (((h0 mod nharts) + nharts) mod nharts) in
    let tries = ref 0 in
    while !tries < nharts && m.Machine.harts.(!h).Hart.halted do
      h := (!h + 1) mod nharts;
      incr tries
    done;
    let h = !h in
    if h <> !last then begin
      if !last >= 0 && m.Machine.harts.(!last).Hart.just_trapped then
        incr trap_points;
      switches := (!step, h) :: !switches;
      (if !last >= 0 then
         match Oracle.first_violation inst.Scenario.oracles with
         | Some v ->
             violation := Some v;
             raise Stop
         | None -> ());
      if !last >= 0 then inst.Scenario.on_switch ~step:!step
    end;
    incr step;
    last := h;
    h
  in
  (try Machine.run_scheduled m ~max_steps ~chunk:(32 * nharts) ~pick
   with Stop -> ());
  {
    violation = !violation;
    steps = !step;
    switches = List.rev !switches;
    trap_points = !trap_points;
  }

(* ------------------------------------------------------------------ *)
(* Bug names (CLI surface)                                             *)
(* ------------------------------------------------------------------ *)

let bug_name = function
  | Machine.Delayed_vm_epoch -> "vm-epoch"
  | Machine.Dropped_msip -> "msip-drop"
  | Machine.Pmp_handoff_window -> "pmp-handoff"

let bug_of_name = function
  | "vm-epoch" -> Ok (Some Machine.Delayed_vm_epoch)
  | "msip-drop" -> Ok (Some Machine.Dropped_msip)
  | "pmp-handoff" -> Ok (Some Machine.Pmp_handoff_window)
  | "none" -> Ok None
  | s -> Error (Printf.sprintf "unknown bug %S" s)

(* The scenario whose workload exercises the given bug's window. *)
let scenario_for_bug bug =
  let name =
    match bug with
    | Machine.Delayed_vm_epoch -> "sfence"
    | Machine.Dropped_msip -> "ipi"
    | Machine.Pmp_handoff_window -> "keystone"
  in
  Option.get (Scenario.find name)

let build (scn : Scenario.t) ?bug ~nharts ~seed () =
  let inst = scn.Scenario.build ~nharts ~seed in
  inst.Scenario.system.Setup.machine.Machine.race_bug <- bug;
  inst

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)
(* ------------------------------------------------------------------ *)

type family = Rr | Random | Pct | Dfs

let family_name = function
  | Rr -> "round-robin"
  | Random -> "random"
  | Pct -> "pct"
  | Dfs -> "dfs"

let family_of_name = function
  | "round-robin" | "rr" -> Ok Rr
  | "random" -> Ok Random
  | "pct" -> Ok Pct
  | "dfs" -> Ok Dfs
  | s -> Error (Printf.sprintf "unknown scheduler family %S" s)

type campaign = {
  family : family;
  schedules_run : int;
  steps_total : int;
  trap_points_total : int;
  switch_counts : int list;  (** per-schedule switch counts *)
  caught : (Oracle.violation * Schedule.t) option;
      (** first violation, with its (unshrunk) schedule *)
}

(* Replay budget slack: a violation found at step [s] needs [s+1] pick
   calls to reach; pad a little so shrunk variants that shift the
   violating switch slightly later still fit. *)
let budget_pad = 8

let run_family (scn : Scenario.t) ?bug ~family ~seed ~max_schedules ~nharts ()
    =
  let schedules_run = ref 0 in
  let steps_total = ref 0 in
  let traps = ref 0 in
  let counts = ref [] in
  let caught = ref None in
  let record o =
    incr schedules_run;
    steps_total := !steps_total + o.steps;
    traps := !traps + o.trap_points;
    counts := List.length o.switches :: !counts;
    match o.violation with
    | Some v when !caught = None ->
        caught :=
          Some
            ( v,
              {
                Schedule.scenario = scn.Scenario.name;
                bug = Option.map bug_name bug;
                seed;
                nharts;
                steps = o.steps + budget_pad;
                oracle = v.Oracle.oracle;
                switches = o.switches;
              } )
    | _ -> ()
  in
  let run_sched ?max_steps sched =
    let inst = build scn ?bug ~nharts ~seed () in
    record (run_once inst ~sched ?max_steps ())
  in
  let derived kind i =
    Config.derive seed
      (Printf.sprintf "explore:%s:%s:%d" scn.Scenario.name kind i)
  in
  (match family with
  | Rr -> run_sched (Sched.round_robin ~nharts ())
  | Random ->
      let i = ref 0 in
      while !caught = None && !i < max_schedules do
        run_sched (Sched.random ~prng:(derived "random" !i) ~nharts ());
        incr i
      done
  | Pct ->
      let i = ref 0 in
      while !caught = None && !i < max_schedules do
        let depth = 1 + (!i mod 3) in
        run_sched (Sched.pct ~depth ~prng:(derived "pct" !i) ~nharts ());
        incr i
      done
  | Dfs ->
      let horizon = 512 in
      Seq.iter
        (fun switches ->
          if !caught = None then
            run_sched ~max_steps:horizon (Sched.of_switches switches))
        (Seq.take max_schedules
           (Sched.dfs_schedules ~nharts ~horizon ~grid:64 ~max_switches:3)));
  {
    family;
    schedules_run = !schedules_run;
    steps_total = !steps_total;
    trap_points_total = !traps;
    switch_counts = !counts;
    caught = !caught;
  }

(* ------------------------------------------------------------------ *)
(* Replay and shrinking                                                *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

(* Replay a schedule on a fresh instance of its scenario. *)
let replay (sch : Schedule.t) =
  match Scenario.find sch.Schedule.scenario with
  | None -> Error (Printf.sprintf "unknown scenario %S" sch.Schedule.scenario)
  | Some scn ->
      let* bug =
        match sch.Schedule.bug with
        | None -> Ok None
        | Some n -> bug_of_name n
      in
      let inst =
        build scn ?bug ~nharts:sch.Schedule.nharts ~seed:sch.Schedule.seed ()
      in
      Ok
        (run_once inst
           ~sched:(Sched.of_switches sch.Schedule.switches)
           ~max_steps:sch.Schedule.steps ())

(* Does the replayed outcome reproduce the schedule's verdict? *)
let reproduces (sch : Schedule.t) (o : outcome) =
  match o.violation with
  | Some v -> v.Oracle.oracle = sch.Schedule.oracle
  | None -> sch.Schedule.oracle = ""

(* Search for a minimal-preemption reproducer: re-run the scenario
   under the trap-biased random walk with a hard preemption bound
   (2..7 switches, long base slices), deterministically seeded from
   the schedule. Dense random schedules rarely ddmin well — removing a
   switch shifts every later hart-local phase, so almost no strict
   subset still lines up the racing window — but the same violation is
   almost always reachable with a handful of trap-adjacent
   preemptions, which this search finds directly. *)
let search_minimal (sch : Schedule.t) ~attempts =
  match
    (Scenario.find sch.Schedule.scenario, bug_of_name
       (Option.value sch.Schedule.bug ~default:"none"))
  with
  | None, _ | _, Error _ -> None
  | Some scn, Ok bug ->
      let nharts = sch.Schedule.nharts in
      let seed = sch.Schedule.seed in
      let found = ref None in
      let j = ref 0 in
      while !found = None && !j < attempts do
        let k = 2 + (!j / 2 mod 6) in
        let prng =
          Config.derive seed
            (Printf.sprintf "explore:minimize:%s:%d" scn.Scenario.name !j)
        in
        let inst = build scn ?bug ~nharts ~seed () in
        let sched =
          if !j mod 2 = 0 then
            (* trap-biased walk with a hard preemption bound and a
               randomized start, so the budget is spent around one
               region of the run: finds windows that open right after
               a trap the walk is likely to be sitting on (IPI kicks,
               fence edits) *)
            let start_step =
              Prng.int_below prng (inst.Scenario.max_steps / 2)
            in
            Sched.random ~avg_slice:256 ~max_switches:k ~start_step ~prng
              ~nharts ()
          else begin
            (* uniformly placed absolute switch points: finds windows
               pinned to workload progress (e.g. enclave lifecycle
               calls deep into the run) that a bounded walk spends its
               budget before reaching *)
            let points =
              List.init k (fun _ ->
                  1 + Prng.int_below prng (inst.Scenario.max_steps - 1))
              |> List.sort_uniq compare
            in
            let h0 = Prng.int_below prng nharts in
            let switches =
              List.mapi
                (fun i at ->
                  (at, (h0 + (i + 1) * max 1 (nharts - 1)) mod nharts))
                points
            in
            Sched.of_switches ((0, h0) :: switches)
          end
        in
        let o = run_once inst ~sched () in
        (match o.violation with
        | Some v when v.Oracle.oracle = sch.Schedule.oracle ->
            found :=
              Some
                {
                  sch with
                  Schedule.switches = o.switches;
                  steps = o.steps + budget_pad;
                }
        | _ -> ());
        incr j
      done;
      !found

(* Schedule-point delta-debugging: ddmin over the switch tail (the
   initial pick is pinned), validating every candidate by full replay
   on a fresh instance. The shrunk schedule is re-validated and its
   step budget tightened to the reproducing run. *)
let ddmin_tail (sch : Schedule.t) =
  match sch.Schedule.switches with
  | [] -> sch
  | head :: tail ->
      let try_switches switches =
        let candidate =
          (* generous budget: dropping switches can move the violation *)
          { sch with Schedule.switches; steps = max sch.Schedule.steps 20_000 }
        in
        match replay candidate with
        | Ok o when reproduces candidate o -> Some o
        | _ -> None
      in
      let still_fails tail' = try_switches (head :: tail') <> None in
      let tail' = Shrink.ddmin ~still_fails tail in
      let switches = head :: tail' in
      let steps =
        match try_switches switches with
        | Some o -> o.steps + budget_pad
        | None -> sch.Schedule.steps
      in
      { sch with Schedule.switches; steps }

(* Full shrink: minimal-preemption search first, then the ddmin tail
   pass to drop any switch the search kept but the repro does not
   need. *)
let shrink ?(attempts = 300) (sch : Schedule.t) =
  let small = Option.value (search_minimal sch ~attempts) ~default:sch in
  ddmin_tail small
