(** The schedule explorer: run scenarios under pluggable schedulers,
    check the cross-hart oracles at every switch point, and turn any
    violation into a shrunk, replayable schedule artifact. *)

type outcome = {
  violation : Oracle.violation option;
  steps : int;  (** global steps consumed (= pick calls) *)
  switches : (int * int) list;  (** recorded (step, hart), ascending *)
  trap_points : int;  (** switches taken right after a trap entry *)
}

val run_once :
  Scenario.instance -> sched:Sched.t -> ?max_steps:int -> unit -> outcome
(** One schedule on a fresh instance: picks of halted harts are
    remapped to the next runnable hart, every switch is recorded and
    oracle-checked, and the run stops at the first violation. *)

val bug_name : Mir_rv.Machine.race_bug -> string
val bug_of_name : string -> (Mir_rv.Machine.race_bug option, string) result
val scenario_for_bug : Mir_rv.Machine.race_bug -> Scenario.t

val build :
  Scenario.t ->
  ?bug:Mir_rv.Machine.race_bug ->
  nharts:int ->
  seed:int64 ->
  unit ->
  Scenario.instance
(** Build a scenario instance and arm the injected bug, if any. *)

type family = Rr | Random | Pct | Dfs

val family_name : family -> string
val family_of_name : string -> (family, string) result

type campaign = {
  family : family;
  schedules_run : int;
  steps_total : int;
  trap_points_total : int;
  switch_counts : int list;  (** per-schedule switch counts *)
  caught : (Oracle.violation * Mir_trace.Schedule.t) option;
      (** first violation, with its (unshrunk) schedule *)
}

val run_family :
  Scenario.t ->
  ?bug:Mir_rv.Machine.race_bug ->
  family:family ->
  seed:int64 ->
  max_schedules:int ->
  nharts:int ->
  unit ->
  campaign
(** Run one scheduler family against a scenario until a violation is
    caught or the schedule budget is exhausted. Every schedule's
    randomness is derived from [seed] and the schedule index, so a
    campaign is deterministic. *)

val replay : Mir_trace.Schedule.t -> (outcome, string) result
(** Replay a schedule artifact on a fresh instance of its scenario. *)

val reproduces : Mir_trace.Schedule.t -> outcome -> bool
(** Does the replayed outcome reproduce the schedule's verdict? *)

val shrink : ?attempts:int -> Mir_trace.Schedule.t -> Mir_trace.Schedule.t
(** Minimize a failing schedule: a bounded-preemption re-search (2..7
    switches, deterministically seeded) followed by a ddmin pass over
    the surviving switch tail (the PR 2 shrinker). Every candidate is
    validated by full replay; the result reproduces the original
    oracle violation. *)
