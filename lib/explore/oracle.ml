(* Invariant oracles checked at hart-switch points.

   Each oracle inspects the whole-machine state between two steps and
   reports the first hart for which a cross-hart invariant is broken.
   They are only ever evaluated at schedule switch points — i.e. with
   no monitor handler mid-flight, since trap handling is atomic within
   one step — so "transiently inconsistent inside a handler" can never
   be reported; what they catch is state that leaked across a real
   hart interleaving. *)

module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Tlb = Mir_rv.Tlb
module Clint = Mir_rv.Clint
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Pmp = Mir_rv.Pmp
module Priv = Mir_rv.Priv
module Vmem = Mir_rv.Vmem
module Bits = Mir_util.Bits
module Ms = Mir_rv.Csr_spec.Mstatus
module Monitor = Miralis.Monitor
module Vclint = Miralis.Vclint
module Vpmp = Miralis.Vpmp
module Policy = Miralis.Policy

type violation = { oracle : string; hart : int; detail : string }
type t = { name : string; check : unit -> violation option }

let first_violation oracles = List.find_map (fun o -> o.check ()) oracles

(* Every policy violation the monitor itself flagged (it also powers
   the machine off, but the schedule runner attributes it like any
   other oracle hit). *)
let policy_flag (mir : Monitor.t) =
  {
    name = "policy";
    check =
      (fun () ->
        Option.map
          (fun msg -> { oracle = "policy"; hart = -1; detail = msg })
          mir.Monitor.violation);
  }

(* Physical-PMP-vs-owning-vhart consistency: for every hart, re-derive
   the entry array Miralis would install right now (virtual entries of
   the hart's current world + the policy's current entries) and
   compare it against what is actually decoded from the hart's
   physical pmpcfg/pmpaddr CSRs. Only the derived prefix is compared:
   [Vpmp.install] never clears slots beyond it, and they sit behind
   the catch-all entry, so they are unreachable. *)
let pmp_owner (mir : Monitor.t) =
  let check () =
    let m = mir.Monitor.machine in
    let found = ref None in
    Array.iter
      (fun hart ->
        if !found = None then begin
          let vh = mir.Monitor.vharts.(hart.Hart.id) in
          let policy =
            mir.Monitor.policy.Policy.pmp_entries (Monitor.policy_ctx mir hart)
          in
          let expected = Vpmp.build mir.Monitor.config vh ~policy in
          let actual = Csr_file.pmp_entries hart.Hart.csr in
          let n = min (Array.length expected) (Array.length actual) in
          for i = 0 to n - 1 do
            if !found = None && expected.(i) <> actual.(i) then
              found :=
                Some
                  {
                    oracle = "pmp-owner";
                    hart = hart.Hart.id;
                    detail =
                      Printf.sprintf
                        "pmp entry %d: expected cfg=%#x addr=%#Lx, installed \
                         cfg=%#x addr=%#Lx"
                        i
                        (Pmp.cfg_byte_of_entry expected.(i))
                        expected.(i).Pmp.addr
                        (Pmp.cfg_byte_of_entry actual.(i))
                        actual.(i).Pmp.addr;
                  }
          done
        end)
      m.Machine.harts;
    !found
  in
  { name = "pmp-owner"; check }

(* vCLINT MSIP delivery ordering: a posted virtual IPI (or remote
   fence) must be backed by a pending physical MSIP until the
   monitor's handler consumes both atomically. Observing the flag
   without the MSIP between steps means the kick was lost or delayed
   across a preemption — the target would sleep through the IPI. *)
let msip_delivery (mir : Monitor.t) =
  let check () =
    let m = mir.Monitor.machine in
    let vc = mir.Monitor.vclint in
    let found = ref None in
    Array.iter
      (fun hart ->
        let h = hart.Hart.id in
        if !found = None && not (Clint.msip m.Machine.clint h) then begin
          if Vclint.os_ipi_pending vc h then
            found :=
              Some
                {
                  oracle = "msip-delivery";
                  hart = h;
                  detail = "os_ipi_pending set but physical msip clear";
                }
          else if Vclint.rfence_pending vc h then
            found :=
              Some
                {
                  oracle = "msip-delivery";
                  hart = h;
                  detail = "rfence_pending set but physical msip clear";
                }
        end)
      m.Machine.harts;
    !found
  in
  { name = "msip-delivery"; check }

(* Cross-hart sfence / vm-epoch coherence: no hart may hold a TLB
   entry that disagrees with what a fresh page-table walk would
   produce right now. Scenario PTE edits are performed atomically with
   their fence (as a real kernel does: edit, then sfence.vma), so any
   disagreement at a switch point means a fence failed to reach this
   hart. The walk reuses the hart's current satp/SUM/MXR — the TLB's
   epoch discipline guarantees those match the install-time context —
   and runs with a no-op A/D writer so the check is read-only. *)
let sfence_coherence (m : Machine.t) =
  let check () =
    let found = ref None in
    Array.iter
      (fun hart ->
        if !found = None then begin
          let csr = hart.Hart.csr in
          Tlb.sync_epoch hart.Hart.tlb (Csr_file.vm_epoch csr);
          let satp = Csr_file.read_raw csr Csr_addr.satp in
          let ms = Csr_file.read_raw csr Csr_addr.mstatus in
          let sum = Bits.test ms Ms.sum and mxr = Bits.test ms Ms.mxr in
          let walk priv access vaddr =
            Vmem.translate
              ~read:(fun a -> Machine.phys_load m a 8)
              ~write:(fun _ _ -> ())
              ~satp ~priv ~sum ~mxr access vaddr
          in
          Tlb.iter_valid hart.Hart.tlb
            (fun ~vpn ~priv ~loads ~stores ~fetches ~pbase ->
              if !found = None then begin
                let vaddr = Int64.shift_left (Int64.of_int vpn) 12 in
                let kinds =
                  (if loads then [ Vmem.Load ] else [])
                  @ (if stores then [ Vmem.Store ] else [])
                  @ if fetches then [ Vmem.Fetch ] else []
                in
                List.iter
                  (fun access ->
                    if !found = None then
                      let stale detail =
                        found :=
                          Some
                            {
                              oracle = "sfence-coherence";
                              hart = hart.Hart.id;
                              detail =
                                Printf.sprintf "vaddr %#Lx: %s" vaddr detail;
                            }
                      in
                      match walk priv access vaddr with
                      | Ok phys ->
                          let page =
                            Int64.to_int (Int64.logand phys (Int64.lognot 0xFFFL))
                          in
                          if page <> pbase then
                            stale
                              (Printf.sprintf
                                 "TLB caches page %#x, walk yields %#x" pbase
                                 page)
                      | Error _ ->
                          stale "TLB entry valid but a fresh walk faults")
                  kinds
              end)
        end)
      m.Machine.harts;
    !found
  in
  { name = "sfence-coherence"; check }

(* Policy isolation: a protected region (an enclave, a confidential
   VM) must never be readable at supervisor privilege from a hart that
   is not currently executing inside it — in particular not from a
   sibling hart mid-handoff, which is exactly the window a stale PMP
   leaves open. [regions] is consulted at every check so it tracks the
   policy's live state (e.g. non-destroyed enclaves). *)
let isolation ~regions (m : Machine.t) =
  let check () =
    let found = ref None in
    List.iter
      (fun (base, size) ->
        Array.iter
          (fun hart ->
            if !found = None then begin
              let pc = hart.Hart.pc in
              let inside =
                Int64.unsigned_compare pc base >= 0
                && Int64.unsigned_compare pc (Int64.add base size) < 0
              in
              if
                (not inside)
                && Pmp.check_ranges
                     (Csr_file.pmp_ranges hart.Hart.csr)
                     ~priv:Priv.S Pmp.Read ~addr:base ~size:8
              then
                found :=
                  Some
                    {
                      oracle = "isolation";
                      hart = hart.Hart.id;
                      detail =
                        Printf.sprintf
                          "protected region %#Lx readable from outside (pc \
                           %#Lx)"
                          base pc;
                    }
            end)
          m.Machine.harts)
      (regions ());
    !found
  in
  { name = "isolation"; check }
