(* Pluggable hart schedulers for [Machine.run_scheduled].

   A scheduler is a (possibly stateful) pick function: given the
   machine, the global step counter and the hart that ran last, return
   the hart to step next. All randomness comes from an explicit
   [Mir_util.Prng.t], so a scheduler replays bit-identically from its
   seed. Trap entries are the preemption-interesting points: a hart
   whose previous step ended in a trap ([Hart.just_trapped]) is where
   the random walk and PCT schedulers concentrate their switches,
   since monitor emulation windows open there. *)

module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Prng = Mir_util.Prng

type t = {
  name : string;
  pick : Machine.t -> step:int -> last:int -> int;
}

(* Fixed time slices, hart 0 first — the cadence [Machine.run] itself
   uses. The explorer's baseline: a scheduler with no preemption at
   interesting points at all. *)
let round_robin ?(slice = 32) ~nharts () =
  {
    name = "round-robin";
    pick = (fun _ ~step ~last:_ -> step / slice mod nharts);
  }

(* Seeded random walk. Expected slice length [avg_slice]; after a trap
   entry the switch probability jumps to 1/2, so preemption
   concentrates on the windows where the monitor has just begun (or
   just finished) emulating on behalf of the interrupted hart.
   [max_switches] bounds the number of preemptions the walk will take
   and [start_step] delays the first one — the shrinker uses small
   bounds with a randomized start so the budget is spent around one
   region of the run instead of on boot-time traps. *)
let random ?(avg_slice = 8) ?(max_switches = max_int) ?(start_step = 0) ~prng
    ~nharts () =
  let taken = ref 0 in
  {
    name = "random";
    pick =
      (fun m ~step ~last ->
        if last < 0 then Prng.int_below prng nharts
        else if step < start_step || !taken >= max_switches then last
        else
          let trapped = m.Machine.harts.(last).Hart.just_trapped in
          let switch =
            if trapped then Prng.int_below prng 2 = 0
            else Prng.int_below prng avg_slice = 0
          in
          if (not switch) || nharts < 2 then last
          else begin
            incr taken;
            (last + 1 + Prng.int_below prng (nharts - 1)) mod nharts
          end);
  }

(* PCT-style priority schedule (Burckhardt et al.): harts run strictly
   by a random priority order, and at [depth] randomly chosen
   preemption-interesting events (trap entries observed so far) the
   currently-highest runnable hart is demoted below everyone else.
   With d demotion points this probes all bugs of preemption depth
   <= d, one schedule at a time. *)
let pct ?(events = 64) ?(depth = 2) ~prng ~nharts () =
  let prio = Array.init nharts (fun i -> i) in
  (* Fisher-Yates from the schedule's prng *)
  for i = nharts - 1 downto 1 do
    let j = Prng.int_below prng (i + 1) in
    let tmp = prio.(i) in
    prio.(i) <- prio.(j);
    prio.(j) <- tmp
  done;
  let change_at = Array.init depth (fun _ -> 1 + Prng.int_below prng events) in
  let event_count = ref 0 in
  let floor = ref (-1) in
  let top m =
    let best = ref (-1) in
    Array.iter
      (fun h ->
        if
          (not h.Hart.halted)
          && (!best < 0 || prio.(h.Hart.id) > prio.(!best))
        then best := h.Hart.id)
      m.Machine.harts;
    if !best < 0 then 0 else !best
  in
  {
    name = "pct";
    pick =
      (fun m ~step:_ ~last ->
        if last >= 0 && m.Machine.harts.(last).Hart.just_trapped then begin
          incr event_count;
          if Array.exists (fun c -> c = !event_count) change_at then begin
            let t = top m in
            prio.(t) <- !floor;
            decr floor
          end
        end;
        top m);
  }

(* Exhaustive small-bound enumeration: every schedule whose switches
   sit on a coarse step grid, up to [max_switches] switches within
   [horizon] steps. The sequence is finite and deterministic; the
   explorer walks it depth-first. Each element is a switch list
   suitable for {!of_switches}. *)
let dfs_schedules ~nharts ~horizon ~grid ~max_switches =
  let harts = List.init nharts (fun h -> h) in
  let rec gen pos cur left : (int * int) list Seq.t =
    if pos >= horizon then Seq.return []
    else
      let stay = gen (pos + grid) cur left in
      let alts =
        if left = 0 then Seq.empty
        else
          Seq.concat_map
            (fun h ->
              if h = cur then Seq.empty
              else
                Seq.map
                  (fun tail -> (pos, h) :: tail)
                  (gen (pos + grid) h (left - 1)))
            (List.to_seq harts)
      in
      Seq.append stay alts
  in
  Seq.concat_map
    (fun h0 -> Seq.map (fun tail -> (0, h0) :: tail) (gen grid h0 max_switches))
    (List.to_seq harts)

(* Replay a recorded switch list: from each (step, hart) switch point
   onward run that hart. Steps before the first switch (there are none
   in well-formed schedules, which start at step 0) run hart 0. *)
let of_switches switches =
  let rem = ref switches in
  let cur = ref 0 in
  {
    name = "replay";
    pick =
      (fun _ ~step ~last:_ ->
        (match !rem with
        | (at, h) :: tl when at <= step ->
            cur := h;
            rem := tl
        | _ -> ());
        !cur);
  }
