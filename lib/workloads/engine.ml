module Setup = Mir_harness.Setup
module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Script = Mir_kernel.Script
module Platform = Mir_platform.Platform

type result = {
  mode : Setup.mode;
  cycles : int64;
  seconds : float;
  ops : int;
  throughput : float;
  traps_to_m : int;
  traps_per_sec : float;
  world_switches : int;
  world_switches_per_sec : float;
  offload_hits : int;
}

let run_with_system ?policy ?(max_instrs = 500_000_000L) ?(stage = fun _ -> ())
    platform mode ~ops scripts =
  let sys = Setup.create ?policy platform mode in
  stage sys.Setup.machine;
  let traps = ref 0 in
  (* per-core accounting, as the paper reports ("number of traps are
     reported per core"): count hart 0 *)
  sys.Setup.machine.Machine.on_trap <-
    Some
      (fun _ hart _ ~from_priv:_ ~to_m ->
        if to_m && hart.Hart.id = 0 then incr traps);
  let start_cycles = Setup.hart0_cycles sys in
  Setup.run_scripts ~max_instrs sys scripts;
  let cycles = Int64.of_int (Setup.hart0_cycles sys - start_cycles) in
  let seconds = Platform.seconds_of_cycles platform cycles in
  let world_switches, offload_hits =
    match Setup.stats sys with
    | Some s ->
        (s.Miralis.Vfm_stats.world_switches, Miralis.Vfm_stats.offload_hits s)
    | None -> (0, 0)
  in
  ( {
      mode;
      cycles;
      seconds;
      ops;
      throughput = (if seconds > 0. then float_of_int ops /. seconds else 0.);
      traps_to_m = !traps;
      traps_per_sec =
        (if seconds > 0. then float_of_int !traps /. seconds else 0.);
      world_switches;
      world_switches_per_sec =
        (if seconds > 0. then float_of_int world_switches /. seconds else 0.);
      offload_hits;
    },
    sys )

let run ?policy ?max_instrs ?stage platform mode ~ops scripts =
  fst (run_with_system ?policy ?max_instrs ?stage platform mode ~ops scripts)

let relative ~baseline r =
  if baseline.throughput > 0. then r.throughput /. baseline.throughput else 0.

let stamps_deltas sys ~hart ~count =
  let stamps = Script.stamps sys.Setup.machine ~hart ~count in
  Array.init
    (max 0 (count - 1))
    (fun i -> Int64.to_float (Int64.sub stamps.(i + 1) stamps.(i)))
