module Setup = Mir_harness.Setup
module Script = Mir_kernel.Script
module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Cause = Mir_rv.Cause
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Platform = Mir_platform.Platform

type cause = Time_read | Set_timer | Misaligned | Ipi | Rfence | Other

let cause_name = function
  | Time_read -> "read time"
  | Set_timer -> "set timer"
  | Misaligned -> "misaligned"
  | Ipi -> "IPI"
  | Rfence -> "remote fence"
  | Other -> "other"

let causes = [ Time_read; Set_timer; Misaligned; Ipi; Rfence; Other ]

type window = { index : int; counts : (cause * int) list; total : int }

type trace = {
  windows : window list;
  boot_cycles : int64;
  boot_seconds : float;
  world_switches : int;
  traps_per_sec : float;
}

(* ------------------------------------------------------------------ *)
(* The phased boot script                                              *)
(* ------------------------------------------------------------------ *)

(* Bootloader: sequential image loading with misaligned copies and
   progress timestamps. *)
let bootloader_phase =
  List.concat
    (List.init 40 (fun i ->
         [
           Script.Rdtime;
           Script.Misaligned_load;
           Script.Misaligned_store;
           Script.Compute 12_000L;
         ]
         @ if i mod 8 = 0 then [ Script.Putchar '.' ] else []))

(* Early kernel init: calibration loops (rdtime bursts), SMP bring-up
   (IPIs, remote fences), timer setup, console writes. *)
let kernel_init_phase ~hart =
  let burst i =
    [
      Script.Rdtime; Script.Rdtime; Script.Rdtime;
      Script.Compute 2500L;
      Script.Set_timer 1500L;
    ]
    @ (if hart = 0 then [ Script.Ipi_all ] else [ Script.Ipi_self ])
    @ (if i mod 4 = 0 then [ Script.Rfence ] else [])
    @ (if hart = 0 && i mod 6 = 0 then [ Script.Putchar '*' ] else [])
    @ [ Script.Misaligned_load; Script.Compute 8000L ]
  in
  List.concat (List.init 30 burst)

(* Idle: the periodic tick, mostly asleep. *)
let idle_phase =
  List.concat
    (List.init 40 (fun _ -> [ Script.Tick_wfi 8000L; Script.Rdtime ]))

let script () =
  List.init 4 (fun hart ->
      bootloader_phase @ kernel_init_phase ~hart @ idle_phase
      @ [ Script.End ])

(* ------------------------------------------------------------------ *)
(* Classification and windowing                                        *)
(* ------------------------------------------------------------------ *)

let classify m hart (cause : Cause.t) =
  match cause with
  | Cause.Exception (Cause.Load_misaligned | Cause.Store_misaligned) ->
      Misaligned
  | Cause.Exception Cause.Illegal_instr -> begin
      let bits =
        Csr_file.read_raw hart.Hart.csr Csr_addr.mtval
      in
      match
        Mir_rv.Decode.decode (Int64.to_int (Int64.logand bits 0xFFFFFFFFL))
      with
      | Some (Mir_rv.Instr.Csr { csr; _ }) when csr = Csr_addr.time ->
          Time_read
      | _ -> Other
    end
  | Cause.Exception Cause.Ecall_from_s ->
      let ext = Hart.get hart 17 in
      if ext = Mir_sbi.Sbi.ext_time || ext = Mir_sbi.Sbi.ext_legacy_set_timer
      then Set_timer
      else if ext = Mir_sbi.Sbi.ext_ipi then Ipi
      else if ext = Mir_sbi.Sbi.ext_rfence then Rfence
      else Other
  | Cause.Interrupt Cause.Machine_timer ->
      (* the M-timer interrupt is part of the timer-deadline flow *)
      ignore m;
      Set_timer
  | Cause.Interrupt Cause.Machine_software -> Ipi
  | _ -> Other

let run platform mode ~window_ms =
  let sys = Setup.create platform mode in
  let m = sys.Setup.machine in
  let window_cycles =
    Int64.of_float
      (window_ms /. 1000. *. float_of_int platform.Platform.freq_mhz *. 1e6)
  in
  let tbl : (int * cause, int) Hashtbl.t = Hashtbl.create 64 in
  let traps = ref 0 in
  m.Machine.on_trap <-
    Some
      (fun m hart cause ~from_priv ~to_m ->
        (* Fig. 3 counts traps from the OS into M-mode (per core; we
           count hart 0 as the paper reports per-core numbers). *)
        if to_m && from_priv = Mir_rv.Priv.S && hart.Hart.id = 0 then begin
          incr traps;
          let w =
            hart.Hart.cycles / Int64.to_int window_cycles
          in
          let c = classify m hart cause in
          Hashtbl.replace tbl (w, c)
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl (w, c)))
        end);
  Setup.run_scripts ~max_instrs:400_000_000L sys (script ());
  let cycles = Int64.of_int (Setup.hart0_cycles sys) in
  let nwindows = 1 + Int64.to_int (Int64.div cycles window_cycles) in
  let windows =
    List.init nwindows (fun index ->
        let counts =
          List.map
            (fun c ->
              (c, Option.value ~default:0 (Hashtbl.find_opt tbl (index, c))))
            causes
        in
        { index; counts; total = List.fold_left (fun a (_, n) -> a + n) 0 counts })
  in
  let seconds = Platform.seconds_of_cycles platform cycles in
  {
    windows;
    boot_cycles = cycles;
    boot_seconds = seconds;
    world_switches =
      (match Setup.stats sys with
      | Some s -> s.Miralis.Vfm_stats.world_switches
      | None -> 0);
    traps_per_sec =
      (if seconds > 0. then float_of_int !traps /. seconds else 0.);
  }
