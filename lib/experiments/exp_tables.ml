module Tablefmt = Mir_util.Tablefmt
module Setup = Mir_harness.Setup
module Platform = Mir_platform.Platform
module Machine = Mir_rv.Machine
module Script = Mir_kernel.Script
module Models = Mir_workloads.Models
module Engine = Mir_workloads.Engine
open Exp_common

let table1 () =
  section "Table 1: Miralis lines of code decomposition";
  paper_note
    "emulator 2.7k, hardware interface 1.1k, MMIO devices 430, fast path \
     190, other 1.8k, total 6.2k";
  Tablefmt.print ~headers:[ "Subsystem"; "LoC" ]
    (List.map
       (fun (name, loc) -> [ name; string_of_int loc ])
       (Mir_harness.Loc.table1 ()));
  print_endline "\nFull repository inventory:";
  Tablefmt.print ~headers:[ "Library"; "LoC" ]
    (List.map
       (fun (name, loc) -> [ name; string_of_int loc ])
       (Mir_harness.Loc.repo_inventory ()))

let table2 ?(quick = false) () =
  section "Table 2: verification (bounded-exhaustive checking) times";
  paper_note
    "mret 68s, sret 56s, CSR read 99s, CSR write 9min, wfi 28s, decoder \
     45s, virtual interrupt 94s, end-to-end 118min (Kani symbolic \
     execution; ours is enumerative, so absolute times differ)";
  let reports =
    Mir_verif.Tasks.all ~quick ()
    @ [ Mir_verif.Faithful_execution.run ~configs:(if quick then 40 else 400) () ]
  in
  (* The symbolic prover covers the same subsystems over all states:
     those rows are labelled *proved* rather than *sampled*. *)
  let proofs = Mir_verif.Prove.all ~quick () in
  Tablefmt.print
    ~headers:[ "Verification task"; "Cases"; "Mismatches"; "Method"; "Time" ]
    (List.map
       (fun r ->
         [
           r.Mir_verif.Tasks.name;
           string_of_int r.Mir_verif.Tasks.cases;
           string_of_int r.Mir_verif.Tasks.mismatches;
           "sampled";
           Printf.sprintf "%.2fs" r.Mir_verif.Tasks.seconds;
         ])
       reports
    @ List.map
        (fun r ->
          [
            r.Mir_verif.Prove.name ^ " (sym)";
            string_of_int r.Mir_verif.Prove.paths;
            string_of_int r.Mir_verif.Prove.mismatches;
            (if Mir_verif.Prove.proved r then "proved" else "UNPROVED");
            Printf.sprintf "%.2fs" r.Mir_verif.Prove.seconds;
          ])
        proofs)

let table3 () =
  section "Table 3: evaluation platforms";
  Tablefmt.print
    ~headers:
      [ "Platform"; "Vendor"; "Core"; "Harts"; "Freq"; "RAM"; "Kernel" ]
    (List.map
       (fun (p : Platform.t) ->
         [
           p.Platform.name;
           p.Platform.vendor;
           p.Platform.core;
           string_of_int p.Platform.nharts;
           Printf.sprintf "%.1f GHz" (float_of_int p.Platform.freq_mhz /. 1000.);
           Printf.sprintf "%d GB" p.Platform.ram_gb;
           p.Platform.kernel_version;
         ])
       Platform.all)

(* Table 4: cost of one emulated privileged instruction and of a full
   world-switch round trip, measured like the paper does (minimal
   firmware, minimal kernel). *)
let measure_emulation platform =
  let sys =
    Setup.create ~firmware:Mir_firmware.Microfw.csrw_loop platform
      Setup.Virtualized
  in
  Machine.run ~max_instrs:4_000L sys.Setup.machine;
  let stats = Option.get (Setup.stats sys) in
  (* stats are machine-global; the loop runs on every hart *)
  let nharts = Array.length sys.Setup.machine.Machine.harts in
  let emulated = stats.Miralis.Vfm_stats.emulated_instrs / nharts in
  if emulated = 0 then 0.
  else
    float_of_int (Setup.hart0_cycles sys) /. float_of_int emulated

let measure_world_switch platform =
  let sys =
    Setup.create ~firmware:Mir_firmware.Microfw.null_handler platform
      Setup.Virtualized
  in
  let n = 400 in
  (* warm up with one call, then measure the steady state *)
  let script =
    [ Script.Putchar '\000'; Script.Cycle_stamp ]
    @ List.concat (List.init n (fun _ -> [ Script.Putchar '\000' ]))
    @ [ Script.Cycle_stamp; Script.End ]
  in
  Setup.run_scripts ~max_instrs:20_000_000L sys [ script ];
  let stamps = Script.stamps sys.Setup.machine ~hart:0 ~count:2 in
  let per_call =
    Int64.to_float (Int64.sub stamps.(1) stamps.(0)) /. float_of_int n
  in
  (* subtract the interpreter-loop overhead (~26 instructions/op) *)
  per_call -. 26.

let table4 () =
  section "Table 4: cost of Miralis operations (cycles)";
  paper_note
    "instruction emulation 483 (VF2) / 271 (P550); world switch round \
     trip 2704 (VF2) / 4098 (P550)";
  Tablefmt.print
    ~headers:[ "Platform"; "Instruction emulation"; "World switch" ]
    (List.map
       (fun p ->
         [
           p.Platform.name;
           f1 (measure_emulation p);
           f1 (measure_world_switch p);
         ])
       [ Platform.visionfive2; Platform.premier_p550 ])

(* Table 5: cost of a timer read and an IPI on the VisionFive 2 in the
   three configurations. *)
let measure_loop platform mode spec =
  let r =
    Engine.run platform mode ~ops:spec.Models.ops spec.Models.scripts
  in
  (* per-op cycles net of the interpreter loop (~26 instructions) *)
  let cycles =
    (Int64.to_float r.Engine.cycles /. float_of_int spec.Models.ops) -. 26.
  in
  Platform.ns_of_cycles platform (Int64.of_float cycles)

let table5 ?(n = 2000) () =
  section "Table 5: cost of timer read and IPI (VisionFive 2)";
  paper_note
    "read time: native 288ns, Miralis 208ns, no-offload 7.26us; IPI: \
     native 3.96us, Miralis 3.65us, no-offload 39.8us";
  let p = Platform.visionfive2 in
  Tablefmt.print ~headers:[ "Configuration"; "read time"; "IPI" ]
    (List.map
       (fun mode ->
         [
           mode_name mode;
           ns (measure_loop p mode (Models.rdtime_loop ~n));
           ns (measure_loop p mode (Models.ipi_loop ~n:(n / 4)));
         ])
       modes)
