module Plic = Mir_rv.Plic

type t = {
  nsources : int;
  vpriority : int64 array;
  venable : int64 array; (* per hart: the firmware's M-context enables *)
  vthreshold : int64 array;
}

let create ~nharts ~nsources =
  {
    nsources;
    vpriority = Array.make (nsources + 1) 0L;
    venable = Array.make nharts 0L;
    vthreshold = Array.make nharts 0L;
  }

type state = {
  s_vpriority : int64 array;
  s_venable : int64 array;
  s_vthreshold : int64 array;
}

let save_state t =
  {
    s_vpriority = Array.copy t.vpriority;
    s_venable = Array.copy t.venable;
    s_vthreshold = Array.copy t.vthreshold;
  }

let load_state t s =
  Array.blit s.s_vpriority 0 t.vpriority 0 (Array.length t.vpriority);
  Array.blit s.s_venable 0 t.venable 0 (Array.length t.venable);
  Array.blit s.s_vthreshold 0 t.vthreshold 0 (Array.length t.vthreshold)

let venable t ~hart = t.venable.(hart)
let vthreshold t ~hart = t.vthreshold.(hart)
let vpriority t src = t.vpriority.(src)

let emulate_access t plic ~hart ~offset ~size ~write =
  let off = Int64.to_int offset in
  if size <> 4 then None
  else if off < 0x1000 then begin
    (* source priorities: shadowed, and mirrored to the physical PLIC
       so pass-through claims see consistent ordering *)
    let src = off / 4 in
    if src > t.nsources then None
    else
      match write with
      | Some v ->
          t.vpriority.(src) <- Int64.logand v 0x7L;
          (* keep the physical priority in sync for the M contexts *)
          let d = Plic.device plic ~base:0L in
          d.Mir_rv.Device.store offset 4 v;
          Some 0L
      | None -> Some t.vpriority.(src)
  end
  else if off = 0x1000 then begin
    (* pending word: pass-through (read-only) *)
    match write with
    | Some _ -> Some 0L
    | None ->
        let d = Plic.device plic ~base:0L in
        Some (d.Mir_rv.Device.load offset 4)
  end
  else if off >= 0x2000 && off < 0x200000 then begin
    (* enables: the firmware only sees its own M context's word 0 *)
    let ctx = (off - 0x2000) / 0x80 in
    if ctx <> 2 * hart || (off - 0x2000) mod 0x80 <> 0 then
      (* other contexts (the OS's!) are invisible to the firmware *)
      Some 0L
    else begin
      match write with
      | Some v ->
          t.venable.(hart) <- Int64.logand v 0xFFFFFFFFL;
          let d = Plic.device plic ~base:0L in
          d.Mir_rv.Device.store offset 4 v;
          Some 0L
      | None -> Some t.venable.(hart)
    end
  end
  else if off >= 0x200000 then begin
    let ctx = (off - 0x200000) / 0x1000 in
    if ctx <> 2 * hart then Some 0L
    else
      match (off - 0x200000) mod 0x1000 with
      | 0 -> begin
          match write with
          | Some v ->
              t.vthreshold.(hart) <- Int64.logand v 0x7L;
              let d = Plic.device plic ~base:0L in
              d.Mir_rv.Device.store offset 4 v;
              Some 0L
          | None -> Some t.vthreshold.(hart)
        end
      | 4 -> begin
          (* claim/complete passes through to the physical M context *)
          match write with
          | Some v ->
              Plic.complete plic ~ctx (Int64.to_int v);
              Some 0L
          | None -> Some (Int64.of_int (Plic.claim plic ~ctx))
        end
      | _ -> None
  end
  else None
