module Csr_file = Mir_rv.Csr_file
module Csr_spec = Mir_rv.Csr_spec

type world = Firmware | Os

type t = {
  id : int;
  csr : Csr_file.t;
  mutable world : world;
  mutable mprv_active : bool;
  mutable entered_s : bool;
}

let vmideleg_forced = Csr_spec.Irq.s_mask

let create (config : Config.t) ~id =
  (* the virtual configuration's mideleg spec hardwires the S bits, so
     the reset value already reflects forced delegation *)
  let csr = Csr_file.create config.Config.vcsr_config ~hart_id:id in
  { id; csr; world = Firmware; mprv_active = false; entered_s = false }

let world_name = function Firmware -> "firmware" | Os -> "os"
