module Bits = Mir_util.Bits
module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Clint = Mir_rv.Clint
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Csr_spec = Mir_rv.Csr_spec
module Cause = Mir_rv.Cause
module Priv = Mir_rv.Priv
module Instr = Mir_rv.Instr
module Vmem = Mir_rv.Vmem
module Pmp = Mir_rv.Pmp
module Ms = Csr_spec.Mstatus

type t = {
  config : Config.t;
  machine : Machine.t;
  vharts : Vhart.t array;
  vclint : Vclint.t;
  vplic : Vplic.t;
  mutable policy : Policy.t;
  stats : Vfm_stats.t;
  mutable violation : string option;
  mutable tracer : Mir_trace.Tracer.t option;
}

let charge t hart n = ignore t; Machine.charge hart n
let vhart t (hart : Hart.t) = t.vharts.(hart.Hart.id)

(* Monitor-level trace events (world switches, PMP reinstalls, vtraps,
   SBI calls) interleave with the machine-level stream emitted by the
   same tracer. *)
let emit_event t hart kind =
  match t.tracer with
  | Some tr -> Mir_trace.Tracer.emit tr hart kind
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Resuming the hart                                                   *)
(* ------------------------------------------------------------------ *)

(* Miralis leaves its handler with an mret; emulate the physical
   mstatus pop. *)
let phys_mret (hart : Hart.t) =
  let csr = hart.Hart.csr in
  let m = Csr_file.read_raw csr Csr_addr.mstatus in
  let new_priv = Ms.get_mpp m in
  let m = Bits.write m Ms.mie (Bits.test m Ms.mpie) in
  let m = Bits.set m Ms.mpie in
  let m = Ms.set_mpp m Priv.U in
  let m = if new_priv <> Priv.M then Bits.clear m Ms.mprv else m in
  Csr_file.write_raw csr Csr_addr.mstatus m;
  new_priv

let return_to_os t (hart : Hart.t) ~pc =
  let priv = phys_mret hart in
  (* A trap that interrupted M-mode cannot belong to the OS world;
     downgrade to S defensively. *)
  let priv = if priv = Priv.M then Priv.S else priv in
  ignore t;
  Machine.resume hart ~pc ~priv

let enter_firmware t (hart : Hart.t) ~pc =
  ignore (phys_mret hart);
  ignore t;
  Machine.resume hart ~pc ~priv:Priv.U

(* ------------------------------------------------------------------ *)
(* Policy context                                                      *)
(* ------------------------------------------------------------------ *)

let rec policy_ctx t hart =
  {
    Policy.machine = t.machine;
    hart;
    vhart = vhart t hart;
    config = t.config;
    report_violation =
      (fun msg ->
        t.violation <- Some msg;
        Logs.err (fun m -> m "miralis: policy violation: %s" msg);
        t.machine.Machine.poweroff <- true);
    reinstall_pmp = (fun () -> reinstall_pmp t hart);
    reinstall_pmp_all = (fun () -> reinstall_pmp_all t hart);
    return_to_os = (fun ~pc -> return_to_os t hart ~pc);
  }

and policy_pmp_entries t hart =
  t.policy.Policy.pmp_entries (policy_ctx t hart)

and reinstall_pmp t hart =
  Vpmp.install t.config (vhart t hart) hart ~policy:(policy_pmp_entries t hart);
  emit_event t hart Mir_trace.Event.Pmp_reinstall

(* Policy entries changed for every hart (enclave create/destroy): the
   current hart reinstalls inline; siblings are reinstalled in the
   same step — except under the Pmp_handoff_window injected bug,
   where the sibling reinstalls land [race_window] steps late,
   reproducing the cross-hart PMP handoff window the schedule
   explorer's oracles are built to catch. *)
and reinstall_pmp_all t hart =
  reinstall_pmp t hart;
  let siblings m =
    Array.iter
      (fun h ->
        if h.Hart.id <> hart.Hart.id then begin
          reinstall_pmp t h;
          t.stats.Vfm_stats.pmp_remote_reinstalls <-
            t.stats.Vfm_stats.pmp_remote_reinstalls + 1
        end)
      m.Machine.harts
  in
  match t.machine.Machine.race_bug with
  | Some Machine.Pmp_handoff_window ->
      Machine.defer t.machine ~ticks:Machine.race_window siblings
  | _ -> siblings t.machine

(* ------------------------------------------------------------------ *)
(* World switches                                                      *)
(* ------------------------------------------------------------------ *)

let switch_to_fw t hart vh =
  assert (vh.Vhart.world = Vhart.Os);
  t.policy.Policy.on_switch_to_fw (policy_ctx t hart);
  (* The world flips before the PMP layout is derived: both the Vpmp
     builder and the policy's pmp_entries must see the new world. *)
  vh.Vhart.world <- Vhart.Firmware;
  World.to_fw t.config vh hart ~policy:(policy_pmp_entries t hart);
  t.stats.Vfm_stats.world_switches <- t.stats.Vfm_stats.world_switches + 1;
  emit_event t hart (Mir_trace.Event.World_switch { to_fw = true })

let switch_to_os t hart vh =
  assert (vh.Vhart.world = Vhart.Firmware);
  t.policy.Policy.on_switch_to_os (policy_ctx t hart);
  vh.Vhart.world <- Vhart.Os;
  World.to_os t.config vh hart ~policy:(policy_pmp_entries t hart);
  emit_event t hart (Mir_trace.Event.World_switch { to_fw = false })

(* ------------------------------------------------------------------ *)
(* Virtual trap injection                                              *)
(* ------------------------------------------------------------------ *)

let vtvec_target vtvec cause =
  let base = Int64.logand vtvec (Int64.lognot 3L) in
  match cause with
  | Cause.Interrupt i when Int64.logand vtvec 3L = 1L ->
      Int64.add base (Int64.of_int (4 * Cause.intr_code i))
  | _ -> base

let inject_vtrap t hart (vh : Vhart.t) cause ~tval ~epc ~mpp =
  assert (vh.Vhart.world = Vhart.Firmware);
  emit_event t hart (Mir_trace.Event.Vtrap { cause; tval });
  let v = vh.Vhart.csr in
  Csr_file.write_raw v Csr_addr.mepc epc;
  Csr_file.write_raw v Csr_addr.mcause (Cause.to_xcause cause);
  Csr_file.write_raw v Csr_addr.mtval tval;
  let m = Csr_file.read_raw v Csr_addr.mstatus in
  let m = Bits.write m Ms.mpie (Bits.test m Ms.mie) in
  let m = Bits.clear m Ms.mie in
  let m = Ms.set_mpp m mpp in
  Csr_file.write_raw v Csr_addr.mstatus m;
  t.stats.Vfm_stats.vtraps <- t.stats.Vfm_stats.vtraps + 1;
  enter_firmware t hart
    ~pc:(vtvec_target (Csr_file.read_raw v Csr_addr.mtvec) cause)

(* Re-inject an OS trap into the virtual firmware: world switch, then
   deliver with the privilege level hardware recorded in MPP. *)
let reinject_from_os t hart vh cause ~tval =
  let epc = Csr_file.read_raw hart.Hart.csr Csr_addr.mepc in
  let mpp = Ms.get_mpp (Csr_file.read_raw hart.Hart.csr Csr_addr.mstatus) in
  switch_to_fw t hart vh;
  inject_vtrap t hart vh cause ~tval ~epc ~mpp

(* ------------------------------------------------------------------ *)
(* Virtual interrupt state                                             *)
(* ------------------------------------------------------------------ *)

let sync_vmip t (vh : Vhart.t) =
  let h = vh.Vhart.id in
  let clint = t.machine.Machine.clint in
  let mtip = Vclint.vmtip t.vclint clint h in
  if mtip then begin
    (* Latch: stop the physical comparator from re-firing for the
       virtual deadline while the firmware leaves it pending. *)
    Vclint.disarm_virtual t.vclint h;
    Vclint.program_physical t.vclint clint h
  end;
  Csr_file.set_mip_bits vh.Vhart.csr Csr_spec.Irq.mtip mtip;
  Csr_file.set_mip_bits vh.Vhart.csr Csr_spec.Irq.msip
    (Vclint.vmsip t.vclint h)

(* ------------------------------------------------------------------ *)
(* Firmware-world trap handling                                        *)
(* ------------------------------------------------------------------ *)

let halt t msg =
  t.violation <- Some msg;
  Logs.err (fun m -> m "miralis: %s" msg);
  t.machine.Machine.poweroff <- true

let fetch_fw_instr t (hart : Hart.t) =
  (* The firmware executes with bare addressing: its pc is physical. *)
  let epc = Csr_file.read_raw hart.Hart.csr Csr_addr.mepc in
  match Machine.phys_load t.machine epc 4 with
  | None -> None
  | Some w -> Mir_rv.Decode.decode (Int64.to_int w)

let apply_emulator_outcome t hart vh epc (out : Emulator.outcome) =
  if out.Emulator.pmp_dirty then reinstall_pmp t hart;
  t.stats.Vfm_stats.emulated_instrs <- t.stats.Vfm_stats.emulated_instrs + 1;
  charge t hart t.config.Config.cost.Cost.emulate_instr;
  match out.Emulator.action with
  | Emulator.Next -> enter_firmware t hart ~pc:(Int64.add epc 4L)
  | Emulator.Jump pc -> enter_firmware t hart ~pc
  | Emulator.Exit_to_os { pc; priv } ->
      switch_to_os t hart vh;
      if not vh.Vhart.entered_s then vh.Vhart.entered_s <- true;
      ignore (phys_mret hart);
      Machine.resume hart ~pc ~priv
  | Emulator.Vtrap (exc, tval) ->
      inject_vtrap t hart vh (Cause.Exception exc) ~tval ~epc ~mpp:Priv.M
  | Emulator.Wfi -> begin
      sync_vmip t vh;
      match Emulator.check_virtual_interrupt t.config vh with
      | Some _ ->
          (* an interrupt is already pending: wfi completes at once *)
          enter_firmware t hart ~pc:(Int64.add epc 4L)
      | None ->
          hart.Hart.wfi <- true;
          enter_firmware t hart ~pc:(Int64.add epc 4L)
    end
  | Emulator.Unsupported ->
      halt t "emulator invoked on a non-privileged instruction"

let emulator_ctx _t (hart : Hart.t) epc =
  {
    Emulator.read_gpr = Hart.get hart;
    write_gpr = Hart.set hart;
    pc = epc;
    cycles = Int64.of_int hart.Hart.cycles;
    instret = Int64.of_int hart.Hart.instret;
    phys_custom_read = (fun a -> Csr_file.read_raw hart.Hart.csr a);
    phys_custom_write = (fun a v -> Csr_file.write_raw hart.Hart.csr a v);
  }

(* A memory fault by the firmware: virtual-device emulation, the MPRV
   trick, or (by default) re-injection as the firmware's own fault. *)
let handle_fw_memory_fault t hart vh cause =
  let csr = hart.Hart.csr in
  let epc = Csr_file.read_raw csr Csr_addr.mepc in
  let vaddr = Csr_file.read_raw csr Csr_addr.mtval in
  let in_vdev =
    Bits.ule Vpmp.vdev_base vaddr
    && Bits.ult vaddr (Int64.add Vpmp.vdev_base Vpmp.vdev_size)
  in
  let in_vplic =
    t.config.Config.virtualize_plic
    && Bits.ule Vpmp.plic_base vaddr
    && Bits.ult vaddr (Int64.add Vpmp.plic_base Vpmp.plic_size)
  in
  let vtrap () =
    match cause with
    | Cause.Exception e ->
        inject_vtrap t hart vh (Cause.Exception e) ~tval:vaddr ~epc ~mpp:Priv.M
    | Cause.Interrupt _ -> assert false
  in
  let resume_next () = enter_firmware t hart ~pc:(Int64.add epc 4L) in
  match fetch_fw_instr t hart with
  | None -> vtrap ()
  | Some instr -> begin
      if in_vplic then begin
        (* experimental virtual PLIC emulation *)
        let offset = Int64.sub vaddr Vpmp.plic_base in
        let h = hart.Hart.id in
        charge t hart t.config.Config.cost.Cost.vclint_access;
        match instr with
        | Instr.Load { rd; _ } -> begin
            match
              Vplic.emulate_access t.vplic t.machine.Machine.plic ~hart:h
                ~offset ~size:4 ~write:None
            with
            | Some v ->
                Hart.set hart rd (Bits.sext v ~width:32);
                resume_next ()
            | None -> vtrap ()
          end
        | Instr.Store { rs2; _ } -> begin
            match
              Vplic.emulate_access t.vplic t.machine.Machine.plic ~hart:h
                ~offset ~size:4 ~write:(Some (Hart.get hart rs2))
            with
            | Some _ -> resume_next ()
            | None -> vtrap ()
          end
        | _ -> vtrap ()
      end
      else if in_vdev then begin
        (* Virtual CLINT access. *)
        let offset v = Int64.sub v Vpmp.vdev_base in
        t.stats.Vfm_stats.vclint_accesses <-
          t.stats.Vfm_stats.vclint_accesses + 1;
        charge t hart t.config.Config.cost.Cost.vclint_access;
        match instr with
        | Instr.Load { width; unsigned; rd; _ } -> begin
            let size =
              match width with Instr.B -> 1 | H -> 2 | W -> 4 | D -> 8
            in
            match
              Vclint.emulate_access t.vclint t.machine.Machine.clint
                ~offset:(offset vaddr) ~size ~write:None
            with
            | Some v ->
                let v =
                  if unsigned || size = 8 then v
                  else Bits.sext v ~width:(8 * size)
                in
                Hart.set hart rd v;
                resume_next ()
            | None -> vtrap ()
          end
        | Instr.Store { width; rs2; _ } -> begin
            let size =
              match width with Instr.B -> 1 | H -> 2 | W -> 4 | D -> 8
            in
            match
              Vclint.emulate_access t.vclint t.machine.Machine.clint
                ~offset:(offset vaddr) ~size ~write:(Some (Hart.get hart rs2))
            with
            | Some _ ->
                sync_vmip t vh;
                resume_next ()
            | None -> vtrap ()
          end
        | _ -> vtrap ()
      end
      else if vh.Vhart.mprv_active then begin
        (* MPRV emulation: perform the access through the OS page
           tables on the firmware's behalf (paper §4.2). *)
        let v = vh.Vhart.csr in
        let satp = Csr_file.read_raw v Csr_addr.satp in
        let vms = Csr_file.read_raw v Csr_addr.mstatus in
        let priv = Ms.get_mpp vms in
        let translate access =
          Vmem.translate
            ~read:(fun a -> Machine.phys_load t.machine a 8)
            ~write:(fun a w -> ignore (Machine.phys_store t.machine a 8 w))
            ~satp ~priv ~sum:(Bits.test vms Ms.sum)
            ~mxr:(Bits.test vms Ms.mxr) access vaddr
        in
        (* MPRV accesses are protection-checked at MPP's privilege
           against the *virtual* PMP, as architected. *)
        let vpmp_ok access phys =
          Pmp.check
            ~entries:(Csr_file.pmp_entries v)
            ~priv access ~addr:phys ~size:1
        in
        match instr with
        | Instr.Load { width; unsigned; rd; _ } -> begin
            let size =
              match width with Instr.B -> 1 | H -> 2 | W -> 4 | D -> 8
            in
            match translate Vmem.Load with
            | Error e ->
                inject_vtrap t hart vh (Cause.Exception e) ~tval:vaddr ~epc
                  ~mpp:Priv.M
            | Ok phys when not (vpmp_ok Pmp.Read phys) ->
                inject_vtrap t hart vh
                  (Cause.Exception Cause.Load_access_fault) ~tval:vaddr ~epc
                  ~mpp:Priv.M
            | Ok phys -> begin
                match Machine.phys_load t.machine phys size with
                | None ->
                    inject_vtrap t hart vh
                      (Cause.Exception Cause.Load_access_fault) ~tval:vaddr
                      ~epc ~mpp:Priv.M
                | Some value ->
                    let value =
                      if unsigned || size = 8 then value
                      else Bits.sext value ~width:(8 * size)
                    in
                    Hart.set hart rd value;
                    resume_next ()
              end
          end
        | Instr.Store { width; rs2; _ } -> begin
            let size =
              match width with Instr.B -> 1 | H -> 2 | W -> 4 | D -> 8
            in
            match translate Vmem.Store with
            | Error e ->
                inject_vtrap t hart vh (Cause.Exception e) ~tval:vaddr ~epc
                  ~mpp:Priv.M
            | Ok phys when not (vpmp_ok Pmp.Write phys) ->
                inject_vtrap t hart vh
                  (Cause.Exception Cause.Store_access_fault) ~tval:vaddr ~epc
                  ~mpp:Priv.M
            | Ok phys ->
                if Machine.phys_store t.machine phys size (Hart.get hart rs2)
                then resume_next ()
                else
                  inject_vtrap t hart vh
                    (Cause.Exception Cause.Store_access_fault) ~tval:vaddr
                    ~epc ~mpp:Priv.M
          end
        | _ -> vtrap ()
      end
      else begin
        match t.policy.Policy.on_trap_from_fw (policy_ctx t hart) cause with
        | Policy.Handled -> ()
        | Policy.Pass -> vtrap ()
      end
    end

let handle_from_fw t hart vh cause =
  let csr = hart.Hart.csr in
  let epc = Csr_file.read_raw csr Csr_addr.mepc in
  match cause with
  | Cause.Exception Cause.Illegal_instr -> begin
      let bits = Csr_file.read_raw csr Csr_addr.mtval in
      match Mir_rv.Decode.decode (Int64.to_int (Int64.logand bits 0xFFFFFFFFL)) with
      | Some instr when Instr.is_privileged instr ->
          let out =
            Emulator.emulate t.config vh (emulator_ctx t hart epc)
              ~bits:(Int64.to_int (Int64.logand bits 0xFFFFFFFFL))
              instr
          in
          apply_emulator_outcome t hart vh epc out
      | Some _ | None ->
          (* A genuinely illegal instruction in the firmware: deliver
             the firmware its own illegal-instruction trap. *)
          inject_vtrap t hart vh cause ~tval:bits ~epc ~mpp:Priv.M
    end
  | Cause.Exception Cause.Ecall_from_u -> begin
      (* The firmware's own ecall: virtually this is ecall-from-M. *)
      match t.policy.Policy.on_ecall_from_fw (policy_ctx t hart) with
      | Policy.Handled -> ()
      | Policy.Pass ->
          inject_vtrap t hart vh (Cause.Exception Cause.Ecall_from_m) ~tval:0L
            ~epc ~mpp:Priv.M
    end
  | Cause.Exception (Cause.Load_access_fault | Cause.Store_access_fault) ->
      handle_fw_memory_fault t hart vh cause
  | Cause.Exception
      ( Cause.Load_misaligned | Cause.Store_misaligned | Cause.Breakpoint
      | Cause.Instr_misaligned | Cause.Instr_access_fault ) -> begin
      match t.policy.Policy.on_trap_from_fw (policy_ctx t hart) cause with
      | Policy.Handled -> ()
      | Policy.Pass ->
          let tval = Csr_file.read_raw csr Csr_addr.mtval in
          inject_vtrap t hart vh cause ~tval ~epc ~mpp:Priv.M
    end
  | Cause.Exception
      ( Cause.Ecall_from_s | Cause.Ecall_from_m | Cause.Instr_page_fault
      | Cause.Load_page_fault | Cause.Store_page_fault ) ->
      halt t
        (Printf.sprintf "unexpected trap from firmware world: %s"
           (Cause.to_string cause))
  | Cause.Interrupt _ ->
      (* handled by the shared interrupt path in [handle] *)
      assert false

(* ------------------------------------------------------------------ *)
(* OS-world trap handling                                              *)
(* ------------------------------------------------------------------ *)

let handle_from_os t hart vh cause =
  let csr = hart.Hart.csr in
  match cause with
  | Cause.Exception (Cause.Ecall_from_s | Cause.Ecall_from_u) -> begin
      match t.policy.Policy.on_ecall_from_os (policy_ctx t hart) with
      | Policy.Handled -> ()
      | Policy.Pass -> begin
          let emit_sbi offloaded =
            emit_event t hart
              (Mir_trace.Event.Sbi_call
                 { ext = Hart.get hart 17; fid = Hart.get hart 16; offloaded })
          in
          match Offload.try_ecall t.config t.machine t.vclint t.stats hart with
          | Offload.Resume_at pc ->
              emit_sbi true;
              return_to_os t hart ~pc
          | Offload.Not_handled ->
              emit_sbi false;
              reinject_from_os t hart vh cause ~tval:0L
        end
    end
  | Cause.Exception Cause.Illegal_instr -> begin
      let bits = Csr_file.read_raw csr Csr_addr.mtval in
      match Offload.try_illegal t.config t.machine t.stats hart ~bits with
      | Offload.Resume_at pc -> return_to_os t hart ~pc
      | Offload.Not_handled -> reinject_from_os t hart vh cause ~tval:bits
    end
  | Cause.Exception Cause.Load_misaligned -> begin
      match Offload.try_misaligned t.config t.machine t.stats hart ~store:false
      with
      | Offload.Resume_at pc -> return_to_os t hart ~pc
      | Offload.Not_handled ->
          reinject_from_os t hart vh cause
            ~tval:(Csr_file.read_raw csr Csr_addr.mtval)
    end
  | Cause.Exception Cause.Store_misaligned -> begin
      match Offload.try_misaligned t.config t.machine t.stats hart ~store:true
      with
      | Offload.Resume_at pc -> return_to_os t hart ~pc
      | Offload.Not_handled ->
          reinject_from_os t hart vh cause
            ~tval:(Csr_file.read_raw csr Csr_addr.mtval)
    end
  | Cause.Exception _ -> begin
      match t.policy.Policy.on_trap_from_os (policy_ctx t hart) cause with
      | Policy.Handled -> ()
      | Policy.Pass ->
          reinject_from_os t hart vh cause
            ~tval:(Csr_file.read_raw csr Csr_addr.mtval)
    end
  | Cause.Interrupt _ -> assert false

(* ------------------------------------------------------------------ *)
(* M-level interrupts (shared between worlds)                          *)
(* ------------------------------------------------------------------ *)

let handle_interrupt t hart vh (i : Cause.intr) =
  let csr = hart.Hart.csr in
  (* mepc is read at resume time: a policy hook may retarget it (the
     Keystone policy does, when an interrupt lands mid-enclave). *)
  let resume () =
    let epc = Csr_file.read_raw csr Csr_addr.mepc in
    match vh.Vhart.world with
    | Vhart.Os -> return_to_os t hart ~pc:epc
    | Vhart.Firmware -> enter_firmware t hart ~pc:epc
  in
  match t.policy.Policy.on_interrupt (policy_ctx t hart) i with
  | Policy.Handled -> ()
  | Policy.Pass -> begin
      let h = hart.Hart.id in
      let clint = t.machine.Machine.clint in
      match i with
      | Cause.Machine_timer ->
          let now = Clint.mtime clint in
          (if Bits.ule (Vclint.offload_deadline t.vclint h) now then begin
             (* The fast-path deadline fired: deliver STIP to the OS. *)
             Vclint.set_offload_deadline t.vclint h (-1L);
             Vclint.program_physical t.vclint clint h;
             match vh.Vhart.world with
             | Vhart.Os -> Csr_file.set_mip_bits csr Csr_spec.Irq.stip true
             | Vhart.Firmware ->
                 Csr_file.set_mip_bits vh.Vhart.csr Csr_spec.Irq.stip true
           end);
          (* A virtual deadline is latched into vmip by sync_vmip; the
             injection check after this handler delivers it. *)
          resume ()
      | Cause.Machine_software ->
          Clint.set_msip clint h false;
          (if Vclint.os_ipi_pending t.vclint h then begin
             Vclint.set_os_ipi_pending t.vclint h false;
             match vh.Vhart.world with
             | Vhart.Os -> Csr_file.set_mip_bits csr Csr_spec.Irq.ssip true
             | Vhart.Firmware ->
                 Csr_file.set_mip_bits vh.Vhart.csr Csr_spec.Irq.ssip true
           end);
          (if Vclint.rfence_pending t.vclint h then begin
             Vclint.set_rfence_pending t.vclint h false;
             Machine.flush_icache t.machine
           end);
          resume ()
      | Cause.Machine_external | Cause.Supervisor_external
      | Cause.Supervisor_software | Cause.Supervisor_timer ->
          (* S-level interrupts are force-delegated and never reach
             Miralis; M-external is not enabled. *)
          resume ()
    end

(* ------------------------------------------------------------------ *)
(* Top-level dispatch                                                  *)
(* ------------------------------------------------------------------ *)

let handle t (hart : Hart.t) cause =
  let vh = vhart t hart in
  charge t hart t.config.Config.cost.Cost.trap_entry;
  sync_vmip t vh;
  (match cause with
  | Cause.Interrupt i -> begin
      (match vh.Vhart.world with
      | Vhart.Os ->
          t.stats.Vfm_stats.traps_from_os <-
            t.stats.Vfm_stats.traps_from_os + 1
      | Vhart.Firmware ->
          t.stats.Vfm_stats.traps_from_fw <-
            t.stats.Vfm_stats.traps_from_fw + 1);
      handle_interrupt t hart vh i
    end
  | Cause.Exception _ -> begin
      match vh.Vhart.world with
      | Vhart.Os ->
          t.stats.Vfm_stats.traps_from_os <-
            t.stats.Vfm_stats.traps_from_os + 1;
          handle_from_os t hart vh cause
      | Vhart.Firmware ->
          t.stats.Vfm_stats.traps_from_fw <-
            t.stats.Vfm_stats.traps_from_fw + 1;
          handle_from_fw t hart vh cause
    end);
  (* Check for virtual interrupts: a pending-and-enabled virtual
     M-level interrupt preempts whichever world we were about to
     resume (paper §4.1). *)
  (if not t.machine.Machine.poweroff then begin
     sync_vmip t vh;
     match Emulator.check_virtual_interrupt t.config vh with
     | Some i -> begin
         let epc = hart.Hart.pc in
         match vh.Vhart.world with
         | Vhart.Firmware ->
             inject_vtrap t hart vh (Cause.Interrupt i) ~tval:0L ~epc
               ~mpp:Priv.M
         | Vhart.Os ->
             let mpp = hart.Hart.priv in
             switch_to_fw t hart vh;
             inject_vtrap t hart vh (Cause.Interrupt i) ~tval:0L ~epc ~mpp
       end
     | None -> ()
   end);
  charge t hart t.config.Config.cost.Cost.trap_exit

(* Mirror the machine's per-hart software-TLB counters into the
   stats record so experiments report them alongside trap/offload
   rates.  Derived observability only: not part of the checkpointed
   architectural state. *)
let refresh_tlb_stats t =
  let hits, misses, flushes = Machine.tlb_totals t.machine in
  t.stats.Vfm_stats.tlb_hits <- hits;
  t.stats.Vfm_stats.tlb_misses <- misses;
  t.stats.Vfm_stats.tlb_flushes <- flushes

(* Checkpoint support: capture all monitor-owned state (the machine
   itself is snapshotted separately by [Mir_trace.Snapshot]) and
   return the closure that restores it. *)
let save t =
  let vh_states =
    Array.map
      (fun (vh : Vhart.t) ->
        ( Csr_file.dump vh.Vhart.csr,
          vh.Vhart.world,
          vh.Vhart.mprv_active,
          vh.Vhart.entered_s ))
      t.vharts
  in
  let vclint_s = Vclint.save_state t.vclint in
  let vplic_s = Vplic.save_state t.vplic in
  let stats_s = Vfm_stats.save_state t.stats in
  let violation = t.violation in
  fun () ->
    Array.iteri
      (fun i (csrs, world, mprv_active, entered_s) ->
        let vh = t.vharts.(i) in
        Csr_file.restore_dump vh.Vhart.csr csrs;
        vh.Vhart.world <- world;
        vh.Vhart.mprv_active <- mprv_active;
        vh.Vhart.entered_s <- entered_s)
      vh_states;
    Vclint.load_state t.vclint vclint_s;
    Vplic.load_state t.vplic vplic_s;
    Vfm_stats.load_state t.stats stats_s;
    t.violation <- violation

let create ?policy config machine =
  let nharts = Array.length machine.Machine.harts in
  let t =
    {
      config;
      machine;
      vharts = Array.init nharts (fun id -> Vhart.create config ~id);
      vclint = Vclint.create ~nharts;
      vplic = Vplic.create ~nharts ~nsources:8;
      policy = Option.value policy ~default:(Policy.default "none");
      stats = Vfm_stats.create ();
      violation = None;
      tracer = None;
    }
  in
  machine.Machine.mmode_hook <- Some (fun _m hart cause -> handle t hart cause);
  t

let boot t ~fw_entry =
  Array.iter
    (fun hart ->
      let vh = vhart t hart in
      vh.Vhart.world <- Vhart.Firmware;
      Hart.reset hart ~pc:fw_entry;
      Hart.set hart 10 (Int64.of_int hart.Hart.id);
      Hart.set hart 11 0L;
      hart.Hart.priv <- Priv.U;
      (* Well-defined physical state for vM-mode execution. *)
      let p = hart.Hart.csr in
      Csr_file.write_raw p Csr_addr.satp 0L;
      Csr_file.write_raw p Csr_addr.medeleg 0L;
      Csr_file.write_raw p Csr_addr.mideleg 0L;
      Csr_file.write_raw p Csr_addr.mie World.miralis_mie;
      reinstall_pmp t hart)
    t.machine.Machine.harts
