(** The virtual CLINT and the VFM's timer multiplexing.

    The only MMIO device Miralis must emulate (paper §4.3): the
    firmware's accesses to the CLINT window trap (the window is
    PMP-protected) and are served from this virtual state. The single
    physical timer per hart is shared between two clients —
    the virtual firmware's [mtimecmp] and the VFM's own fast-path
    deadline (armed on behalf of the OS by the set_timer offload) — by
    programming the physical comparator to the earlier of the two. *)

type t

val create : nharts:int -> t

val vmtimecmp : t -> int -> int64
val set_vmtimecmp : t -> int -> int64 -> unit
(** The virtual firmware's timer deadline (from vCLINT writes);
    setting it re-arms the physical comparator contribution. *)

val disarm_virtual : t -> int -> unit
(** Latch the virtual MTI: stop the physical comparator from re-firing
    for the virtual deadline until it is reprogrammed. *)

val offload_deadline : t -> int -> int64
val set_offload_deadline : t -> int -> int64 -> unit
(** The fast path's deadline (from SBI set_timer offload). *)

val vmsip : t -> int -> bool
val set_vmsip : t -> int -> bool -> unit
(** Virtual software-interrupt pending, set by vCLINT msip writes. *)

val os_ipi_pending : t -> int -> bool
val set_os_ipi_pending : t -> int -> bool -> unit
(** An offloaded SBI IPI destined for the OS on this hart: the sending
    hart raises the physical msip; the receiving hart's VFM converts it
    to SSIP. *)

val rfence_pending : t -> int -> bool
val set_rfence_pending : t -> int -> bool -> unit
(** An offloaded remote-fence request for this hart. *)

val program_physical : t -> Mir_rv.Clint.t -> int -> unit
(** Program hart [h]'s physical comparator to
    [min vmtimecmp offload_deadline]. *)

val vmtip : t -> Mir_rv.Clint.t -> int -> bool
(** Virtual timer-interrupt line: physical mtime past the *virtual*
    deadline. *)

val emulate_access :
  t ->
  Mir_rv.Clint.t ->
  offset:int64 ->
  size:int ->
  write:int64 option ->
  int64 option
(** Serve one firmware access to the CLINT window. [write = Some v]
    stores, [None] loads; the result is the loaded value (0 for
    stores), or [None] if the offset/size is not a valid CLINT
    register access. mtime reads pass through to the physical clock;
    msip and mtimecmp hit the virtual state. *)

(** {2 Checkpoint support} *)

type state
(** Opaque deep copy. *)

val save_state : t -> state
val load_state : t -> state -> unit
