(** Miralis build-time configuration.

    Mirrors the knobs of the real system: fast-path offload on/off
    (the paper's headline ablation), the PMP budget split between
    Miralis-reserved and virtual entries (Fig. 5), the set of
    platform-specific CSRs the firmware is allowed to touch (like the
    P550's speculation-control CSRs), and — for the verification
    experiments — switchable *bug injections* reproducing classes of
    defects the paper's checker caught (§6.5). *)

(** Deliberate defects for checker-effectiveness experiments. Each
    reproduces a bug class from §6.5 of the paper. *)
type bug =
  | Mpp_not_legalized  (** accept the reserved MPP encoding *)
  | Pmp_w_without_r  (** accept the reserved W=1/R=0 combination *)
  | Vpmp_overrun  (** allow one vPMP index past the implemented count *)
  | Interrupt_priority_swapped  (** MSI before MEI *)
  | Mret_skips_mpie  (** mret forgets to restore MIE from MPIE *)

type t = {
  offload : bool;  (** fast-path offload of the five hot traps *)
  miralis_base : int64;  (** reserved VFM memory (protected by PMP 0) *)
  miralis_size : int64;
  policy_pmp_slots : int;  (** physical entries reserved for policies *)
  virtualize_plic : bool;
      (** experimental: trap-and-emulate firmware PLIC accesses (§4.3);
          consumes one extra physical PMP entry *)
  allowed_custom_csrs : int list;
  cost : Cost.t;
  vcsr_config : Mir_rv.Csr_spec.config;
      (** the *virtual* hart configuration exposed to the firmware
          (Definition 2's reference configuration [c_r]) *)
  inject_bug : bug option;
  seed : int64;
      (** root of every PRNG in the system — runs are reproducible by
          construction (required by record/replay) *)
}

val make :
  ?offload:bool ->
  ?policy_pmp_slots:int ->
  ?virtualize_plic:bool ->
  ?allowed_custom_csrs:int list ->
  ?cost:Cost.t ->
  ?inject_bug:bug ->
  ?seed:int64 ->
  machine:Mir_rv.Machine.config ->
  unit ->
  t
(** Derive a configuration from the host machine: Miralis reserves the
    top MiB of RAM, and the virtual PMP count is the physical count
    minus the reserved entries (2 fixed + policy slots + zero-anchor +
    catch-all), per Fig. 5. *)

val reserved_pmp_slots : t -> int
(** Entries not available to the virtual firmware. *)

val vpmp_count : t -> int

val default_seed : int64

val prng : t -> string -> Mir_util.Prng.t
(** [prng t label] is the deterministic PRNG stream for component
    [label], split off the configuration seed. Same seed and label —
    same stream; distinct labels — independent streams. *)

val derive : int64 -> string -> Mir_util.Prng.t
(** Like {!prng} from a bare seed (for call sites without a config). *)
