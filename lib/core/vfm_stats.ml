type t = {
  mutable traps_from_os : int;
  mutable traps_from_fw : int;
  mutable world_switches : int;
  mutable emulated_instrs : int;
  mutable vtraps : int;
  mutable offload_time_read : int;
  mutable offload_set_timer : int;
  mutable offload_ipi : int;
  mutable offload_rfence : int;
  mutable offload_misaligned : int;
  mutable vclint_accesses : int;
  (* sibling-hart PMP reinstalls performed by reinstall_pmp_all when a
     policy changes entries that every hart must observe (enclave
     create/destroy) *)
  mutable pmp_remote_reinstalls : int;
  (* simulator memory-system counters, mirrored from the machine's
     per-hart software TLBs (see Monitor.refresh_tlb_stats) *)
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable tlb_flushes : int;
}

let create () =
  {
    traps_from_os = 0;
    traps_from_fw = 0;
    world_switches = 0;
    emulated_instrs = 0;
    vtraps = 0;
    offload_time_read = 0;
    offload_set_timer = 0;
    offload_ipi = 0;
    offload_rfence = 0;
    offload_misaligned = 0;
    vclint_accesses = 0;
    pmp_remote_reinstalls = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    tlb_flushes = 0;
  }

(* Checkpoint support: every field is a mutable int, so a shallow
   record copy is a complete snapshot. *)
let save_state t = { t with traps_from_os = t.traps_from_os }

let load_state t s =
  t.traps_from_os <- s.traps_from_os;
  t.traps_from_fw <- s.traps_from_fw;
  t.world_switches <- s.world_switches;
  t.emulated_instrs <- s.emulated_instrs;
  t.vtraps <- s.vtraps;
  t.offload_time_read <- s.offload_time_read;
  t.offload_set_timer <- s.offload_set_timer;
  t.offload_ipi <- s.offload_ipi;
  t.offload_rfence <- s.offload_rfence;
  t.offload_misaligned <- s.offload_misaligned;
  t.vclint_accesses <- s.vclint_accesses;
  t.pmp_remote_reinstalls <- s.pmp_remote_reinstalls;
  t.tlb_hits <- s.tlb_hits;
  t.tlb_misses <- s.tlb_misses;
  t.tlb_flushes <- s.tlb_flushes

let offload_hits t =
  t.offload_time_read + t.offload_set_timer + t.offload_ipi + t.offload_rfence
  + t.offload_misaligned

let reset t =
  t.traps_from_os <- 0;
  t.traps_from_fw <- 0;
  t.world_switches <- 0;
  t.emulated_instrs <- 0;
  t.vtraps <- 0;
  t.offload_time_read <- 0;
  t.offload_set_timer <- 0;
  t.offload_ipi <- 0;
  t.offload_rfence <- 0;
  t.offload_misaligned <- 0;
  t.vclint_accesses <- 0;
  t.pmp_remote_reinstalls <- 0;
  t.tlb_hits <- 0;
  t.tlb_misses <- 0;
  t.tlb_flushes <- 0

let pp fmt t =
  Format.fprintf fmt
    "traps: os=%d fw=%d | world switches=%d | emulated=%d vtraps=%d | \
     offload: time=%d timer=%d ipi=%d rfence=%d misaligned=%d | vclint=%d | \
     pmp remote=%d | tlb: hits=%d misses=%d flushes=%d"
    t.traps_from_os t.traps_from_fw t.world_switches t.emulated_instrs
    t.vtraps t.offload_time_read t.offload_set_timer t.offload_ipi
    t.offload_rfence t.offload_misaligned t.vclint_accesses
    t.pmp_remote_reinstalls t.tlb_hits t.tlb_misses t.tlb_flushes
