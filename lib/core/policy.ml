module Hart = Mir_rv.Hart
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr

type decision = Pass | Handled

type ctx = {
  machine : Mir_rv.Machine.t;
  hart : Hart.t;
  vhart : Vhart.t;
  config : Config.t;
  report_violation : string -> unit;
  reinstall_pmp : unit -> unit;
  reinstall_pmp_all : unit -> unit;
  return_to_os : pc:int64 -> unit;
}

type t = {
  name : string;
  on_ecall_from_os : ctx -> decision;
  on_trap_from_os : ctx -> Mir_rv.Cause.t -> decision;
  on_switch_to_fw : ctx -> unit;
  on_ecall_from_fw : ctx -> decision;
  on_trap_from_fw : ctx -> Mir_rv.Cause.t -> decision;
  on_switch_to_os : ctx -> unit;
  on_interrupt : ctx -> Mir_rv.Cause.intr -> decision;
  pmp_entries : ctx -> Mir_rv.Pmp.entry list;
}

let default name =
  {
    name;
    on_ecall_from_os = (fun _ -> Pass);
    on_trap_from_os = (fun _ _ -> Pass);
    on_switch_to_fw = (fun _ -> ());
    on_ecall_from_fw = (fun _ -> Pass);
    on_trap_from_fw = (fun _ _ -> Pass);
    on_switch_to_os = (fun _ -> ());
    on_interrupt = (fun _ _ -> Pass);
    pmp_entries = (fun _ -> []);
  }

let sbi_args ctx = (Hart.get ctx.hart 17, Hart.get ctx.hart 16)

let sbi_return ctx ~err ~value =
  Hart.set ctx.hart 10 err;
  Hart.set ctx.hart 11 value;
  let mepc = Csr_file.read_raw ctx.hart.Hart.csr Csr_addr.mepc in
  ctx.return_to_os ~pc:(Int64.add mepc 4L)
