(** Experimental virtual PLIC (paper §4.3).

    Miralis "has experimental support for virtualizing M-mode external
    interrupts through a virtual PLIC, although it is not needed on the
    platforms we support" — vendor firmware delegates all external
    interrupts to the OS. This module mirrors that status: when
    {!Config.t.virtualize_plic} is set, the PLIC window is
    PMP-protected and firmware accesses are emulated here. Priorities,
    the firmware's enables and its threshold are shadowed; pending
    reads and claim/complete pass through to the physical M-mode
    context of the accessing hart, so a firmware interrupt dance works
    without giving it control of the OS's S-mode contexts. *)

type t

val create : nharts:int -> nsources:int -> t

val emulate_access :
  t ->
  Mir_rv.Plic.t ->
  hart:int ->
  offset:int64 ->
  size:int ->
  write:int64 option ->
  int64 option
(** Serve one firmware access to the PLIC window; [None] if the offset
    is not a register this model implements. *)

val venable : t -> hart:int -> int64
(** The firmware's shadowed enable word (tests/inspection). *)

val vthreshold : t -> hart:int -> int64
val vpriority : t -> int -> int64

(** {2 Checkpoint support} *)

type state
(** Opaque deep copy. *)

val save_state : t -> state
val load_state : t -> state -> unit
