type bug =
  | Mpp_not_legalized
  | Pmp_w_without_r
  | Vpmp_overrun
  | Interrupt_priority_swapped
  | Mret_skips_mpie

type t = {
  offload : bool;
  miralis_base : int64;
  miralis_size : int64;
  policy_pmp_slots : int;
  virtualize_plic : bool;
  allowed_custom_csrs : int list;
  cost : Cost.t;
  vcsr_config : Mir_rv.Csr_spec.config;
  inject_bug : bug option;
  seed : int64;
}

(* Every source of randomness in the system derives from one seed, so
   a run is reproducible by construction — a prerequisite for record
   and replay. Component streams are split off by hashing a label into
   the seed (FNV-1a), so adding a consumer never perturbs the others. *)
let default_seed = 0x4D6972616C6973L (* "Miralis" *)

let derive seed label =
  let h = ref (Int64.logxor 0xCBF29CE484222325L seed) in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001B3L)
    label;
  Mir_util.Prng.create ~seed:!h

let prng t label = derive t.seed label

(* Fixed reserved entries: Miralis memory, virtual-device window,
   zero-anchor, catch-all (Fig. 5); the experimental virtual PLIC
   claims one more. *)
let fixed_reserved ~virtualize_plic = if virtualize_plic then 5 else 4

let make ?(offload = true) ?(policy_pmp_slots = 1) ?(virtualize_plic = false)
    ?(allowed_custom_csrs = []) ?cost ?inject_bug ?(seed = default_seed)
    ~(machine : Mir_rv.Machine.config) () =
  let cost = Option.value cost ~default:Cost.default in
  let phys_pmp = machine.Mir_rv.Machine.csr_config.Mir_rv.Csr_spec.pmp_count in
  let vpmp =
    phys_pmp - fixed_reserved ~virtualize_plic - policy_pmp_slots
  in
  if vpmp < 1 then
    invalid_arg "Config.make: not enough physical PMP entries";
  (* Reserve the top of RAM for Miralis: 1 MiB on full-size machines,
     a quarter of RAM (power of two) on small ones like the verifier's
     reference machine. *)
  let miralis_size =
    let quarter = machine.Mir_rv.Machine.ram_size / 4 in
    let rec pow2 p = if 2 * p > quarter then p else pow2 (2 * p) in
    Int64.of_int (min 0x100000 (pow2 4096))
  in
  let miralis_base =
    Int64.sub
      (Int64.add machine.Mir_rv.Machine.ram_base
         (Int64.of_int machine.Mir_rv.Machine.ram_size))
      miralis_size
  in
  {
    offload;
    miralis_base;
    miralis_size;
    policy_pmp_slots;
    virtualize_plic;
    allowed_custom_csrs;
    cost;
    vcsr_config =
      {
        machine.Mir_rv.Machine.csr_config with
        Mir_rv.Csr_spec.pmp_count = vpmp;
        custom_csrs = allowed_custom_csrs;
        force_s_interrupt_delegation = true;
      };
    inject_bug;
    seed;
  }

let reserved_pmp_slots t =
  fixed_reserved ~virtualize_plic:t.virtualize_plic + t.policy_pmp_slots
let vpmp_count t = t.vcsr_config.Mir_rv.Csr_spec.pmp_count
