module Bits = Mir_util.Bits
module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Clint = Mir_rv.Clint
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Csr_spec = Mir_rv.Csr_spec
module Instr = Mir_rv.Instr
module Vmem = Mir_rv.Vmem
module Ms = Csr_spec.Mstatus

type result = Not_handled | Resume_at of int64

let mepc hart = Csr_file.read_raw hart.Hart.csr Csr_addr.mepc
let charge = Machine.charge

(* Expand an SBI hart mask (mask in a0, base hartid in a1; base = -1
   means "all harts") into a hart-id list. *)
let hart_targets (m : Machine.t) ~mask ~base =
  let n = Array.length m.Machine.harts in
  if base = -1L then List.init n Fun.id
  else
    List.filter_map
      (fun i ->
        let h = Int64.to_int base + i in
        if h < n && Bits.test mask i then Some h else None)
      (List.init 64 Fun.id)

(* Post a virtual IPI/rfence to each target: set the vCLINT pending
   flag and kick the physical MSIP in the same step. Under the
   Dropped_msip injected bug, a target that was preempted mid-trap
   (its last step ended in a trap entry and it has not run since) gets
   its physical kick [race_window] steps late, leaving a window in
   which the vCLINT says "pending" but the CLINT will not deliver —
   the delivery-ordering inconsistency the explorer's oracle checks.
   The posting hart itself is exempt: it is always mid-trap (it is
   executing the ecall being offloaded). *)
let kick_with (m : Machine.t) vclint flag ~poster targets =
  List.iter
    (fun h ->
      flag vclint h true;
      let dropped =
        m.Machine.race_bug = Some Machine.Dropped_msip
        && h <> poster
        && m.Machine.harts.(h).Hart.just_trapped
      in
      if dropped then
        Machine.defer m ~ticks:Machine.race_window (fun m ->
            Clint.set_msip m.Machine.clint h true)
      else Clint.set_msip m.Machine.clint h true)
    targets

let set_timer (config : Config.t) (m : Machine.t) vclint stats hart deadline =
  let h = hart.Hart.id in
  Vclint.set_offload_deadline vclint h deadline;
  Vclint.program_physical vclint m.Machine.clint h;
  (* Arming the timer clears any pending supervisor timer interrupt,
     as OpenSBI's handler does. *)
  Csr_file.set_mip_bits hart.Hart.csr Csr_spec.Irq.stip false;
  stats.Vfm_stats.offload_set_timer <- stats.Vfm_stats.offload_set_timer + 1;
  charge hart config.Config.cost.Cost.offload_set_timer

let try_ecall config (m : Machine.t) vclint stats hart =
  if not config.Config.offload then Not_handled
  else begin
    let ext = Hart.get hart 17 and fid = Hart.get hart 16 in
    let a0 = Hart.get hart 10 and a1 = Hart.get hart 11 in
    let ret () =
      Hart.set hart 10 Mir_sbi.Sbi.success;
      Hart.set hart 11 0L;
      Resume_at (Int64.add (mepc hart) 4L)
    in
    if
      (ext = Mir_sbi.Sbi.ext_time && fid = Mir_sbi.Sbi.fid_time_set_timer)
      || ext = Mir_sbi.Sbi.ext_legacy_set_timer
    then begin
      set_timer config m vclint stats hart a0;
      ret ()
    end
    else if ext = Mir_sbi.Sbi.ext_ipi && fid = Mir_sbi.Sbi.fid_ipi_send_ipi
    then begin
      kick_with m vclint Vclint.set_os_ipi_pending ~poster:hart.Hart.id
        (hart_targets m ~mask:a0 ~base:a1);
      stats.Vfm_stats.offload_ipi <- stats.Vfm_stats.offload_ipi + 1;
      charge hart config.Config.cost.Cost.offload_ipi;
      ret ()
    end
    else if ext = Mir_sbi.Sbi.ext_rfence then begin
      kick_with m vclint Vclint.set_rfence_pending ~poster:hart.Hart.id
        (hart_targets m ~mask:a0 ~base:a1);
      stats.Vfm_stats.offload_rfence <- stats.Vfm_stats.offload_rfence + 1;
      charge hart config.Config.cost.Cost.offload_rfence;
      ret ()
    end
    else Not_handled
  end

let try_illegal config (m : Machine.t) stats hart ~bits =
  if not config.Config.offload then Not_handled
  else
    match Mir_rv.Decode.decode (Int64.to_int (Int64.logand bits 0xFFFFFFFFL)) with
    | Some (Instr.Csr { op = Instr.Csrrs | Instr.Csrrc; rd; src; csr })
      when csr = Csr_addr.time
           && (src = Instr.Reg 0 || src = Instr.Imm 0) ->
        Hart.set hart rd (Clint.mtime m.Machine.clint);
        stats.Vfm_stats.offload_time_read <-
          stats.Vfm_stats.offload_time_read + 1;
        charge hart config.Config.cost.Cost.offload_time_read;
        Resume_at (Int64.add (mepc hart) 4L)
    | _ -> Not_handled

(* Emulate one misaligned load/store on behalf of the OS: fetch and
   decode the faulting instruction, translate byte-by-byte through the
   OS page tables, and perform the access. *)
let try_misaligned config (m : Machine.t) stats hart ~store =
  if not config.Config.offload then Not_handled
  else begin
    let csr = hart.Hart.csr in
    let epc = mepc hart in
    let vaddr = Csr_file.read_raw csr Csr_addr.mtval in
    (* Effective privilege of the interrupted access. *)
    let priv = Ms.get_mpp (Csr_file.read_raw csr Csr_addr.mstatus) in
    let fetch_instr () =
      match Machine.translate m hart ~priv Vmem.Fetch epc with
      | Error _ -> None
      | Ok phys -> begin
          match Machine.phys_load m phys 4 with
          | None -> None
          | Some w -> Mir_rv.Decode.decode (Int64.to_int w)
        end
    in
    let byte_at a =
      match Machine.translate m hart ~priv Vmem.Load a with
      | Error _ -> None
      | Ok phys -> Machine.phys_load m phys 1
    in
    let write_byte a v =
      match Machine.translate m hart ~priv Vmem.Store a with
      | Error _ -> false
      | Ok phys -> Machine.phys_store m phys 1 v
    in
    let finish () =
      stats.Vfm_stats.offload_misaligned <-
        stats.Vfm_stats.offload_misaligned + 1;
      charge hart config.Config.cost.Cost.offload_misaligned;
      Resume_at (Int64.add epc 4L)
    in
    match fetch_instr () with
    | Some (Instr.Load { width; unsigned; rd; _ }) when not store ->
        let size = match width with Instr.B -> 1 | H -> 2 | W -> 4 | D -> 8 in
        let rec read i acc =
          if i < 0 then Some acc
          else
            match byte_at (Int64.add vaddr (Int64.of_int i)) with
            | Some b -> read (i - 1) (Int64.logor (Int64.shift_left acc 8) b)
            | None -> None
        in
        (match read (size - 1) 0L with
        | Some v ->
            let v =
              if unsigned then v else Bits.sext v ~width:(8 * size)
            in
            Hart.set hart rd v;
            finish ()
        | None -> Not_handled)
    | Some (Instr.Store { width; rs2; _ }) when store ->
        let size = match width with Instr.B -> 1 | H -> 2 | W -> 4 | D -> 8 in
        let v = Hart.get hart rs2 in
        let rec write i =
          if i >= size then true
          else if
            write_byte
              (Int64.add vaddr (Int64.of_int i))
              (Bits.extract v ~lo:(8 * i) ~hi:((8 * i) + 7))
          then write (i + 1)
          else false
        in
        if write 0 then finish () else Not_handled
    | _ -> Not_handled
  end
