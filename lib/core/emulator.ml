module Bits = Mir_util.Bits
module Instr = Mir_rv.Instr
module Cause = Mir_rv.Cause
module Priv = Mir_rv.Priv
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Csr_spec = Mir_rv.Csr_spec
module Pmp = Mir_rv.Pmp
module Ms = Csr_spec.Mstatus

type ctx = {
  read_gpr : int -> int64;
  write_gpr : int -> int64 -> unit;
  pc : int64;
  cycles : int64;
  instret : int64;
  phys_custom_read : int -> int64;
  phys_custom_write : int -> int64 -> unit;
}

type action =
  | Next
  | Jump of int64
  | Exit_to_os of { pc : int64; priv : Priv.t }
  | Vtrap of Cause.exc * int64
  | Wfi
  | Unsupported

type outcome = { action : action; pmp_dirty : bool }

let ok action = { action; pmp_dirty = false }
let bug (config : Config.t) b = config.Config.inject_bug = Some b

let intr_priority =
  Cause.
    [
      (Machine_external, 11);
      (Machine_software, 3);
      (Machine_timer, 7);
      (Supervisor_external, 9);
      (Supervisor_software, 1);
      (Supervisor_timer, 5);
    ]

let intr_priority_buggy =
  (* MSI checked before MEI: the wrong-interrupt-priority bug. *)
  Cause.
    [
      (Machine_software, 3);
      (Machine_external, 11);
      (Machine_timer, 7);
      (Supervisor_external, 9);
      (Supervisor_software, 1);
      (Supervisor_timer, 5);
    ]

(* ------------------------------------------------------------------ *)
(* The emulator's pure state transforms, over an abstract bitvector    *)
(* domain. The concrete instantiation [Sem_c] is what [emulate] runs   *)
(* below; the faithful-emulation prover runs [Sem (Mir_sym.Backend)]   *)
(* against the reference semantics over the whole state space —        *)
(* including the injected-bug variants, which must each produce a      *)
(* divergence with a concrete counterexample.                          *)
(* ------------------------------------------------------------------ *)

module Sem (B : Mir_util.Bits_sig.S) = struct
  module X = Mir_rv.Hart.Xfer (B)

  let csr_rmw = X.csr_rmw
  let mret_mstatus = X.mret_mstatus
  let mret_target_priv = X.mret_target_priv
  let sret_mstatus = X.sret_mstatus
  let sret_target_priv = X.sret_target_priv

  (* The Mpp_not_legalized bug: mask-merge into mstatus but skip the
     WARL legalization of the MPP field. *)
  let mstatus_write_no_legalize ~old ~value =
    let wm = B.const Ms.write_mask in
    B.logor (B.logand old (B.lognot wm)) (B.logand value wm)

  (* The virtual-interrupt injection decision: only non-delegated
     (M-level) interrupts are injected into vM-mode — delegated ones
     belong to the OS and are delivered natively. In the Firmware
     world the virtual privilege is M, so injection is gated by the
     virtual mstatus.MIE; below M it is always enabled. *)
  let virtual_interrupt ~order ~(world : Vhart.world) ~mstatus ~mip ~mie
      ~mideleg =
    let pending = B.logand (B.logand mip mie) (B.lognot mideleg) in
    if B.decide (B.eq_const pending 0L) then None
    else begin
      let enabled =
        match world with
        | Vhart.Firmware -> B.decide (B.test mstatus Ms.mie)
        | Vhart.Os -> true
      in
      if not enabled then None else X.select_interrupt order pending
    end
end

module Sem_c = Sem (Mir_util.Bits_sig.I64)

(* Recompute whether the MPRV-emulation trick must be engaged: the
   firmware enabled MPRV with an MPP pointing below M, so its loads
   and stores must be translated on its behalf. *)
let sync_mprv (vh : Vhart.t) =
  let ms = Csr_file.read_raw vh.Vhart.csr Csr_addr.mstatus in
  let active = Bits.test ms Ms.mprv && Ms.get_mpp ms <> Priv.M in
  let changed = active <> vh.Vhart.mprv_active in
  vh.Vhart.mprv_active <- active;
  changed

let emulate_csr config (vh : Vhart.t) ctx ~bits op rd src csr_addr =
  let vcsr = vh.Vhart.csr in
  let illegal () = ok (Vtrap (Cause.Illegal_instr, Int64.of_int bits)) in
  (* The virtual privilege level is M while in vM-mode, so the
     privilege check always passes; the read-only check still
     applies. *)
  let write_needed =
    match (op, src) with
    | Instr.Csrrw, _ -> true
    | (Instr.Csrrs | Instr.Csrrc), Instr.Reg 0 -> false
    | (Instr.Csrrs | Instr.Csrrc), Instr.Imm 0 -> false
    | (Instr.Csrrs | Instr.Csrrc), _ -> true
  in
  if write_needed && Csr_addr.is_read_only csr_addr then illegal ()
  else begin
    let src_val =
      match src with
      | Instr.Reg r -> ctx.read_gpr r
      | Instr.Imm z -> Int64.of_int z
    in
    let new_value old = Sem_c.csr_rmw op ~old ~src:src_val in
    let finish ?(pmp_dirty = false) old =
      ctx.write_gpr rd old;
      { action = Next; pmp_dirty }
    in
    if csr_addr = Csr_addr.mcycle || csr_addr = Csr_addr.cycle then
      (* In virtual M-mode, cycle counters read the real ones. *)
      finish ctx.cycles
    else if csr_addr = Csr_addr.minstret || csr_addr = Csr_addr.instret then
      finish ctx.instret
    else if csr_addr = Csr_addr.time then
      (* The virtual hart, like the modelled boards, has no time CSR:
         the firmware's own read must trap — to the *virtual* trap
         handler. *)
      illegal ()
    else if List.mem csr_addr config.Config.allowed_custom_csrs then begin
      (* Platform CSRs explicitly allowed through to hardware. *)
      let old = ctx.phys_custom_read csr_addr in
      if write_needed then ctx.phys_custom_write csr_addr (new_value old);
      finish old
    end
    else if not (Csr_file.exists vcsr csr_addr) then begin
      (* The Vpmp_overrun bug accepts one pmpaddr index past the
         implemented count (the out-of-bounds write of §6.5). *)
      if
        bug config Config.Vpmp_overrun
        && Csr_addr.is_pmpaddr csr_addr
        && csr_addr - 0x3B0 = config.Config.vcsr_config.Csr_spec.pmp_count
      then begin
        let old = Csr_file.read_raw vcsr csr_addr in
        if write_needed then Csr_file.write_raw vcsr csr_addr (new_value old);
        finish ~pmp_dirty:true old
      end
      else illegal ()
    end
    else begin
      let old = Csr_file.read vcsr csr_addr in
      if write_needed then begin
        let v = new_value old in
        if csr_addr = Csr_addr.mstatus && bug config Config.Mpp_not_legalized
        then
          (* skip WARL legalization of MPP (bug class: CSR bit
             patterns) *)
          Csr_file.write_raw vcsr csr_addr
            (Sem_c.mstatus_write_no_legalize
               ~old:(Csr_file.read_raw vcsr csr_addr) ~value:v)
        else if
          Csr_addr.is_pmpcfg csr_addr && bug config Config.Pmp_w_without_r
        then
          (* skip the W=1/R=0 legalization *)
          Csr_file.write_raw vcsr csr_addr v
        else if Csr_addr.is_pmpaddr csr_addr then begin
          (* Honour virtual PMP locks, as hardware does. *)
          let idx = csr_addr - 0x3B0 in
          if not (Pmp.locked (Csr_file.pmp_entries vcsr) idx) then
            Csr_file.write vcsr csr_addr v
        end
        else Csr_file.write vcsr csr_addr v;
        let mprv_changed =
          if csr_addr = Csr_addr.mstatus then sync_mprv vh else false
        in
        let pmp_dirty =
          Csr_addr.is_pmpcfg csr_addr
          || Csr_addr.is_pmpaddr csr_addr
          || mprv_changed
        in
        ctx.write_gpr rd old;
        { action = Next; pmp_dirty }
      end
      else finish old
    end
  end

let emulate_mret config (vh : Vhart.t) =
  let vcsr = vh.Vhart.csr in
  let m = Csr_file.read_raw vcsr Csr_addr.mstatus in
  let new_priv = Sem_c.mret_target_priv m in
  Csr_file.write_raw vcsr Csr_addr.mstatus
    (Sem_c.mret_mstatus ~skip_mpie:(bug config Config.Mret_skips_mpie) m);
  let mprv_changed = sync_mprv vh in
  let target = Csr_file.read_raw vcsr Csr_addr.mepc in
  let action =
    if new_priv = Priv.M then Jump target
    else Exit_to_os { pc = target; priv = new_priv }
  in
  { action; pmp_dirty = mprv_changed }

let emulate_sret (vh : Vhart.t) =
  let vcsr = vh.Vhart.csr in
  let m = Csr_file.read_raw vcsr Csr_addr.mstatus in
  let new_priv = Sem_c.sret_target_priv m in
  Csr_file.write_raw vcsr Csr_addr.mstatus (Sem_c.sret_mstatus m);
  let mprv_changed = sync_mprv vh in
  let target = Csr_file.read_raw vcsr Csr_addr.sepc in
  { action = Exit_to_os { pc = target; priv = new_priv };
    pmp_dirty = mprv_changed }

let emulate config vh ctx ~bits instr =
  match instr with
  | Instr.Csr { op; rd; src; csr } ->
      emulate_csr config vh ctx ~bits op rd src csr
  | Instr.Mret -> emulate_mret config vh
  | Instr.Sret -> emulate_sret vh
  | Instr.Wfi -> ok Wfi
  | Instr.Sfence_vma _ -> ok Next
  | Instr.Ecall -> ok (Vtrap (Cause.Ecall_from_m, 0L))
  | Instr.Ebreak -> ok (Vtrap (Cause.Breakpoint, ctx.pc))
  | Instr.Fence | Instr.Fence_i -> ok Next
  | Instr.Lui _ | Instr.Auipc _ | Instr.Jal _ | Instr.Jalr _
  | Instr.Branch _ | Instr.Load _ | Instr.Store _ | Instr.Op_imm _
  | Instr.Op_imm32 _ | Instr.Op _ | Instr.Op32 _ | Instr.Amo _ ->
      ok Unsupported

let check_virtual_interrupt config (vh : Vhart.t) =
  let vcsr = vh.Vhart.csr in
  let order =
    if bug config Config.Interrupt_priority_swapped then intr_priority_buggy
    else intr_priority
  in
  Sem_c.virtual_interrupt ~order ~world:vh.Vhart.world
    ~mstatus:(Csr_file.read_raw vcsr Csr_addr.mstatus)
    ~mip:(Csr_file.read_raw vcsr Csr_addr.mip)
    ~mie:(Csr_file.read_raw vcsr Csr_addr.mie)
    ~mideleg:(Csr_file.read_raw vcsr Csr_addr.mideleg)
