(** Counters the evaluation reports: trap rates, world switches and
    fast-path hits (e.g. the paper's 0.479 world switches/second
    across microbenchmarks, or the 5500 traps/second during boot). *)

type t = {
  mutable traps_from_os : int;
  mutable traps_from_fw : int;
  mutable world_switches : int;  (** OS→firmware transitions *)
  mutable emulated_instrs : int;
  mutable vtraps : int;  (** traps injected into the virtual firmware *)
  mutable offload_time_read : int;
  mutable offload_set_timer : int;
  mutable offload_ipi : int;
  mutable offload_rfence : int;
  mutable offload_misaligned : int;
  mutable vclint_accesses : int;
  mutable pmp_remote_reinstalls : int;
      (** sibling-hart PMP reinstalls (policy entry changes that every
          hart must observe, e.g. enclave create/destroy) *)
  mutable tlb_hits : int;
      (** simulator software-TLB counters, mirrored from the machine
          (Monitor.refresh_tlb_stats) *)
  mutable tlb_misses : int;
  mutable tlb_flushes : int;
}

val create : unit -> t

val save_state : t -> t
(** Snapshot (checkpoint support). *)

val load_state : t -> t -> unit
(** [load_state t s] restores [t] from the snapshot [s]. *)

val offload_hits : t -> int
val reset : t -> unit
val pp : Format.formatter -> t -> unit
