(** The privileged-instruction emulator — the [vfm : S × I_p → S]
    function of the paper's Definition 1.

    When the deprivileged firmware executes a privileged instruction it
    traps (illegal instruction in U-mode) and lands here. The emulator
    applies the instruction's architectural semantics to the *virtual*
    CSR file, exactly as the reference machine would apply them to
    physical state in M-mode. {!Mir_verif.Faithful_emulation} checks
    this equivalence by exhaustive enumeration.

    The emulator is written against an abstract context (register
    accessors and counter values) so the verifier can drive it on
    synthetic states without a machine. *)

type ctx = {
  read_gpr : int -> int64;
  write_gpr : int -> int64 -> unit;
  pc : int64;  (** virtual PC of the trapping instruction *)
  cycles : int64;  (** hart cycle counter (mcycle) *)
  instret : int64;
  phys_custom_read : int -> int64;
      (** pass-through reads of allowed platform CSRs *)
  phys_custom_write : int -> int64 -> unit;
}

(** What the VFM must do after emulating one instruction. *)
type action =
  | Next  (** resume the firmware at pc+4 *)
  | Jump of int64  (** resume the firmware elsewhere (mret to vM) *)
  | Exit_to_os of { pc : int64; priv : Mir_rv.Priv.t }
      (** world switch: mret/sret left virtual M-mode *)
  | Vtrap of Mir_rv.Cause.exc * int64
      (** inject a trap into the virtual firmware *)
  | Wfi  (** firmware waits for a virtual interrupt *)
  | Unsupported  (** not a privileged instruction: VFM bug *)

type outcome = {
  action : action;
  pmp_dirty : bool;
      (** a vPMP register or mstatus.MPRV changed: the physical PMP
          must be reinstalled *)
}

val intr_priority : (Mir_rv.Cause.intr * int) list
(** Standard interrupt priority: MEI, MSI, MTI, SEI, SSI, STI. *)

val intr_priority_buggy : (Mir_rv.Cause.intr * int) list
(** MSI before MEI — the Interrupt_priority_swapped injected bug. *)

(** The emulator's pure state transforms over an abstract bitvector
    domain; [emulate] runs the concrete instantiation, the
    faithful-emulation prover ({!Mir_verif.Prove}) the symbolic one. *)
module Sem (B : Mir_util.Bits_sig.S) : sig
  val csr_rmw : Mir_rv.Instr.csr_op -> old:B.t -> src:B.t -> B.t
  val mret_mstatus : ?skip_mpie:bool -> B.t -> B.t
  val mret_target_priv : B.t -> Mir_rv.Priv.t
  val sret_mstatus : B.t -> B.t
  val sret_target_priv : B.t -> Mir_rv.Priv.t

  val mstatus_write_no_legalize : old:B.t -> value:B.t -> B.t
  (** The Mpp_not_legalized bug: mask-merge, skipping WARL. *)

  val virtual_interrupt :
    order:(Mir_rv.Cause.intr * int) list ->
    world:Vhart.world ->
    mstatus:B.t ->
    mip:B.t ->
    mie:B.t ->
    mideleg:B.t ->
    Mir_rv.Cause.intr option
  (** The virtual-interrupt injection decision (paper §4.1). *)
end

val emulate :
  Config.t -> Vhart.t -> ctx -> bits:int -> Mir_rv.Instr.t -> outcome
(** Emulate one privileged instruction against the virtual state.
    [bits] is the raw encoding (for the mtval of injected illegal
    instruction traps). *)

val check_virtual_interrupt :
  Config.t -> Vhart.t -> Mir_rv.Cause.intr option
(** The virtual-interrupt injection decision (paper §4.1): a virtual
    M-level interrupt must be injected if it is pending and enabled —
    evaluated after each emulation since traps and privileged
    instructions can mask or unmask interrupts. The caller must first
    sync the virtual mip's M-level bits from the virtual CLINT. *)
