module Clint = Mir_rv.Clint
module Bits = Mir_util.Bits

type t = {
  vmtimecmp : int64 array;
  varmed : bool array;
      (* physical comparator should consider the virtual deadline;
         cleared once the virtual MTI has been latched so the physical
         timer does not re-fire while the firmware leaves it pending *)
  offload_deadline : int64 array;
  vmsip : bool array;
  os_ipi : bool array;
  rfence : bool array;
}

let create ~nharts =
  {
    vmtimecmp = Array.make nharts (-1L);
    varmed = Array.make nharts false;
    offload_deadline = Array.make nharts (-1L);
    vmsip = Array.make nharts false;
    os_ipi = Array.make nharts false;
    rfence = Array.make nharts false;
  }

type state = {
  s_vmtimecmp : int64 array;
  s_varmed : bool array;
  s_offload_deadline : int64 array;
  s_vmsip : bool array;
  s_os_ipi : bool array;
  s_rfence : bool array;
}

let save_state t =
  {
    s_vmtimecmp = Array.copy t.vmtimecmp;
    s_varmed = Array.copy t.varmed;
    s_offload_deadline = Array.copy t.offload_deadline;
    s_vmsip = Array.copy t.vmsip;
    s_os_ipi = Array.copy t.os_ipi;
    s_rfence = Array.copy t.rfence;
  }

let load_state t s =
  let n = Array.length t.vmtimecmp in
  Array.blit s.s_vmtimecmp 0 t.vmtimecmp 0 n;
  Array.blit s.s_varmed 0 t.varmed 0 n;
  Array.blit s.s_offload_deadline 0 t.offload_deadline 0 n;
  Array.blit s.s_vmsip 0 t.vmsip 0 n;
  Array.blit s.s_os_ipi 0 t.os_ipi 0 n;
  Array.blit s.s_rfence 0 t.rfence 0 n

let vmtimecmp t h = t.vmtimecmp.(h)

let set_vmtimecmp t h v =
  t.vmtimecmp.(h) <- v;
  t.varmed.(h) <- true

let disarm_virtual t h = t.varmed.(h) <- false
let offload_deadline t h = t.offload_deadline.(h)
let set_offload_deadline t h v = t.offload_deadline.(h) <- v
let vmsip t h = t.vmsip.(h)
let set_vmsip t h b = t.vmsip.(h) <- b
let os_ipi_pending t h = t.os_ipi.(h)
let set_os_ipi_pending t h b = t.os_ipi.(h) <- b
let rfence_pending t h = t.rfence.(h)
let set_rfence_pending t h b = t.rfence.(h) <- b

let umin a b = if Bits.ult a b then a else b

let program_physical t clint h =
  let virt = if t.varmed.(h) then t.vmtimecmp.(h) else -1L in
  Clint.set_mtimecmp clint h (umin virt t.offload_deadline.(h))

let vmtip t clint h = Bits.ule t.vmtimecmp.(h) (Clint.mtime clint)

let nharts t = Array.length t.vmtimecmp

let emulate_access t clint ~offset ~size ~write =
  let n = nharts t in
  let off = Int64.to_int offset in
  if off < 4 * n && size = 4 then begin
    let h = off / 4 in
    match write with
    | Some v ->
        t.vmsip.(h) <- Int64.logand v 1L <> 0L;
        Some 0L
    | None -> Some (if t.vmsip.(h) then 1L else 0L)
  end
  else if off >= 0x4000 && off < 0x4000 + (8 * n) && (size = 8 || size = 4)
  then begin
    let h = (off - 0x4000) / 8 in
    let lo_half = off land 4 = 0 in
    match write with
    | Some v ->
        (if size = 8 then set_vmtimecmp t h v
         else
           let old = t.vmtimecmp.(h) in
           set_vmtimecmp t h
             (if lo_half then
                Int64.logor
                  (Int64.logand old 0xFFFFFFFF00000000L)
                  (Int64.logand v 0xFFFFFFFFL)
              else
                Int64.logor (Int64.logand old 0xFFFFFFFFL)
                  (Int64.shift_left v 32)));
        program_physical t clint h;
        Some 0L
    | None ->
        let v = t.vmtimecmp.(h) in
        Some
          (if size = 8 then v
           else if lo_half then Int64.logand v 0xFFFFFFFFL
           else Int64.shift_right_logical v 32)
  end
  else if off = Int64.to_int Clint.mtime_offset && (size = 8 || size = 4)
  then begin
    match write with
    | Some _ -> Some 0L (* mtime writes by firmware are dropped *)
    | None ->
        let v = Clint.mtime clint in
        Some
          (if size = 8 then v else Int64.logand v 0xFFFFFFFFL)
  end
  else if off = Int64.to_int Clint.mtime_offset + 4 && size = 4 then begin
    match write with
    | Some _ -> Some 0L
    | None -> Some (Int64.shift_right_logical (Clint.mtime clint) 32)
  end
  else None
