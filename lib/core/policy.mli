(** Policy modules (paper §5.1).

    An isolation policy complements or overrides Miralis's handling at
    seven points: ecall, trap, and world switch from the firmware;
    the same three from the OS; and interrupts. Policies can also
    claim PMP entries with *higher* priority than the virtual PMPs to
    protect memory from both the OS and the firmware.

    A policy that returns [Handled] has fully disposed of the event
    (typically via the {!ctx} helpers) and Miralis performs no further
    handling for it; [Pass] defers to the default behaviour. *)

type decision = Pass | Handled

(** The context handed to every hook. Policies may manipulate the
    hart directly; the closures are provided by the Miralis core. *)
type ctx = {
  machine : Mir_rv.Machine.t;
  hart : Mir_rv.Hart.t;
  vhart : Vhart.t;
  config : Config.t;
  report_violation : string -> unit;
      (** record a policy violation and stop the machine (§5.2) *)
  reinstall_pmp : unit -> unit;
      (** re-derive the current hart's physical PMP (after the policy
          changed entries only this hart observes, e.g. its own
          enclave entering or leaving execution) *)
  reinstall_pmp_all : unit -> unit;
      (** re-derive every hart's physical PMP. Required whenever the
          policy's entry list changes for sibling harts too (enclave
          create/destroy): a per-hart reinstall would leave siblings
          enforcing the stale entries until their own next trap. *)
  return_to_os : pc:int64 -> unit;
      (** resume direct execution at [pc] in the interrupted privilege
          (a physical mret) *)
}

type t = {
  name : string;
  on_ecall_from_os : ctx -> decision;
  on_trap_from_os : ctx -> Mir_rv.Cause.t -> decision;
  on_switch_to_fw : ctx -> unit;
  on_ecall_from_fw : ctx -> decision;
  on_trap_from_fw : ctx -> Mir_rv.Cause.t -> decision;
  on_switch_to_os : ctx -> unit;
  on_interrupt : ctx -> Mir_rv.Cause.intr -> decision;
  pmp_entries : ctx -> Mir_rv.Pmp.entry list;
}

val default : string -> t
(** A policy with every hook passing and no PMP entries. *)

val sbi_args : ctx -> int64 * int64
(** (extension id, function id) = (a7, a6) of the current ecall. *)

val sbi_return : ctx -> err:int64 -> value:int64 -> unit
(** Complete an SBI call: set a0/a1 and resume the OS after the
    ecall. *)
