(** The virtual firmware monitor core (paper §4).

    Miralis conceptually executes in M-mode with interrupts disabled
    and trap handlers that run to completion. It hooks the simulated
    machine's M-mode trap entry: every trap that architecturally
    targets M-mode is dispatched here. Traps from the virtual firmware
    (vM-mode, physically U) are emulated against the shadow CSRs;
    traps from the OS are either handled on the fast path, or
    re-injected into the virtual firmware after a world switch. After
    each trap Miralis checks for pending virtual interrupts and for a
    world switch, then resumes the hart. *)

type t = {
  config : Config.t;
  machine : Mir_rv.Machine.t;
  vharts : Vhart.t array;
  vclint : Vclint.t;
  vplic : Vplic.t;  (** experimental virtual PLIC (enabled via config) *)
  mutable policy : Policy.t;
  stats : Vfm_stats.t;
  mutable violation : string option;
      (** set when a policy stopped the machine *)
  mutable tracer : Mir_trace.Tracer.t option;
      (** when set, world switches, PMP reinstalls, virtual traps and
          SBI calls are emitted into the trace stream *)
}

val create : ?policy:Policy.t -> Config.t -> Mir_rv.Machine.t -> t
(** Build the VFM and install it as the machine's M-mode trap hook. *)

val boot : t -> fw_entry:int64 -> unit
(** Start every hart in vM-mode at the firmware entry point with the
    OpenSBI boot convention (a0 = hartid, a1 = devicetree, here 0).
    Installs the firmware-world PMP and well-defined physical CSRs. *)

val policy_ctx : t -> Mir_rv.Hart.t -> Policy.ctx
(** The context handed to policy hooks (also used by policies that
    need to act outside a hook, e.g. at boot). *)

val reinstall_pmp : t -> Mir_rv.Hart.t -> unit
(** Re-derive and install the physical PMP of one hart. *)

val reinstall_pmp_all : t -> Mir_rv.Hart.t -> unit
(** Re-derive every hart's physical PMP ([hart] is the one acting, and
    is reinstalled inline; siblings follow in the same step, or
    {!Mir_rv.Machine.race_window} steps late under the
    Pmp_handoff_window injected bug). *)

val enter_firmware : t -> Mir_rv.Hart.t -> pc:int64 -> unit
(** Resume a hart in vM-mode at [pc]. *)

val return_to_os : t -> Mir_rv.Hart.t -> pc:int64 -> unit
(** Resume direct execution at [pc] (physical mret semantics). *)

val inject_vtrap :
  t -> Mir_rv.Hart.t -> Vhart.t -> Mir_rv.Cause.t -> tval:int64 ->
  epc:int64 -> mpp:Mir_rv.Priv.t -> unit
(** Deliver a trap to the virtual firmware: virtual trap CSRs are set
    as hardware would and the hart resumes at the virtual [mtvec]. If
    the hart was executing the OS, callers must world-switch first. *)

val switch_to_fw : t -> Mir_rv.Hart.t -> Vhart.t -> unit
val switch_to_os : t -> Mir_rv.Hart.t -> Vhart.t -> unit
(** World switches including policy hooks and statistics. *)

val save : t -> unit -> unit
(** Snapshot all monitor state (virtual harts, vCLINT, vPLIC, stats)
    and return the restore closure — pass as the [extra_save] of
    [Mir_trace.Snapshot.manage]. *)

val refresh_tlb_stats : t -> unit
(** Mirror the machine's software-TLB hit/miss/flush counters into
    {!Vfm_stats} (called by the harness before reporting). *)
