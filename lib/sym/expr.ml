(* Single-bit symbolic expressions.

   This is the term layer of the symbolic bitvector engine: a bit is
   either a constant, a free variable, or a boolean combination. The
   smart constructors below constant-fold aggressively — they are the
   "known bits" domain: any bit whose value is forced by the inputs
   already seen collapses to [B0]/[B1], so fully concrete executions
   never allocate a composite node. What survives is a term over the
   free input variables, compared structurally first and by bounded
   bit-blasting ({!equiv}) as a fallback. *)

type t =
  | B0
  | B1
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

let b_const b = if b then B1 else B0

let not_ = function
  | B0 -> B1
  | B1 -> B0
  | Not e -> e
  | e -> Not e

(* Syntactic complement check — catches [x & ~x] without search. *)
let complementary a b =
  match (a, b) with Not x, y | y, Not x -> x = y | _ -> false

let and_ a b =
  match (a, b) with
  | B0, _ | _, B0 -> B0
  | B1, x | x, B1 -> x
  | a, b when a = b -> a
  | a, b when complementary a b -> B0
  | a, b -> And (a, b)

let or_ a b =
  match (a, b) with
  | B1, _ | _, B1 -> B1
  | B0, x | x, B0 -> x
  | a, b when a = b -> a
  | a, b when complementary a b -> B1
  | a, b -> Or (a, b)

let xor_ a b =
  match (a, b) with
  | B0, x | x, B0 -> x
  | B1, x | x, B1 -> not_ x
  | a, b when a = b -> B0
  | a, b when complementary a b -> B1
  | a, b -> Xor (a, b)

(* [c ? a : b] as a bit-level mux. *)
let mux c a b = or_ (and_ c a) (and_ (not_ c) b)

let rec eval env = function
  | B0 -> false
  | B1 -> true
  | Var v -> env v
  | Not e -> not (eval env e)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Xor (a, b) -> eval env a <> eval env b

(* Partial evaluation: substitute the variables [env] knows about and
   re-simplify. The result is [B0]/[B1] exactly when the assignment
   forces the bit. *)
let rec reduce env = function
  | B0 -> B0
  | B1 -> B1
  | Var v -> ( match env v with Some b -> b_const b | None -> Var v)
  | Not e -> not_ (reduce env e)
  | And (a, b) -> and_ (reduce env a) (reduce env b)
  | Or (a, b) -> or_ (reduce env a) (reduce env b)
  | Xor (a, b) -> xor_ (reduce env a) (reduce env b)

module Iset = Set.Make (Int)

let rec vars_acc acc = function
  | B0 | B1 -> acc
  | Var v -> Iset.add v acc
  | Not e -> vars_acc acc e
  | And (a, b) | Or (a, b) | Xor (a, b) -> vars_acc (vars_acc acc a) b

let free_vars e = Iset.elements (vars_acc Iset.empty e)

(* First free variable of [e], used to pick the next path split. *)
let rec some_var = function
  | B0 | B1 -> None
  | Var v -> Some v
  | Not e -> some_var e
  | And (a, b) | Or (a, b) | Xor (a, b) -> (
      match some_var a with Some _ as r -> r | None -> some_var b)

type verdict =
  | Proved
  | Refuted of (int * bool) list  (** a falsifying partial assignment *)
  | Abandoned of int  (** too many free variables to blast *)

(* Equivalence of two bits under a partial assignment: structural
   equality after reduction is the fast path; otherwise bit-blast the
   difference by enumerating the (few) residual free variables. *)
let equiv ?(max_blast_vars = 16) env a b =
  let a = reduce env a and b = reduce env b in
  if a = b then Proved
  else
    let diff = xor_ a b in
    match diff with
    | B0 -> Proved
    | B1 -> Refuted []
    | diff ->
        let vars = Array.of_list (free_vars diff) in
        let n = Array.length vars in
        if n > max_blast_vars then Abandoned n
        else begin
          let index = Hashtbl.create (2 * n) in
          Array.iteri (fun i v -> Hashtbl.replace index v i) vars;
          let refutation = ref None in
          let m = ref 0 in
          while !refutation = None && !m < 1 lsl n do
            let bits = !m in
            let env v = bits land (1 lsl Hashtbl.find index v) <> 0 in
            if eval env diff then
              refutation :=
                Some
                  (Array.to_list
                     (Array.mapi (fun i v -> (v, bits land (1 lsl i) <> 0)) vars));
            incr m
          done;
          match !refutation with Some asg -> Refuted asg | None -> Proved
        end

let rec pp ppf = function
  | B0 -> Format.pp_print_string ppf "0"
  | B1 -> Format.pp_print_string ppf "1"
  | Var v -> Format.fprintf ppf "v%d" v
  | Not e -> Format.fprintf ppf "!%a" pp e
  | And (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
  | Xor (a, b) -> Format.fprintf ppf "(%a ^ %a)" pp a pp b
