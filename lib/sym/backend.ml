(* The symbolic instantiation of the abstract bitvector signature.

   Words are 64 bit-terms ({!Word}), bits are terms ({!Expr}), and
   [decide] consults the engine's current path assignment — splitting
   the path when the bit is genuinely unknown. Functorized semantics
   applied to this module become symbolic transfer functions. *)

type t = Word.t
type bit = Expr.t

let const = Word.const
let logand = Word.logand
let logor = Word.logor
let logxor = Word.logxor
let lognot = Word.lognot
let shift_left = Word.shift_left
let shift_right_logical = Word.shift_right_logical
let extract = Word.extract
let insert = Word.insert
let test = Word.test
let set = Word.set
let clear = Word.clear
let write = Word.write
let eq_const = Word.eq_const
let bit_const = Expr.b_const
let bit_not = Expr.not_
let bit_and = Expr.and_
let bit_or = Expr.or_
let ite = Word.ite
let decide = Engine.decide_bit
