(** The symbolic backend, conforming to the shared bitvector signature
    so that any functor over [Mir_util.Bits_sig.S] accepts it. *)

include Mir_util.Bits_sig.S with type t = Word.t and type bit = Expr.t
