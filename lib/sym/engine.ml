(* The path explorer.

   Symbolic execution here is re-execution based: the transform under
   analysis is a pure OCaml function written against the abstract
   bitvector signature. We run it under a partial assignment of the
   input variables; whenever the code asks to [decide] a bit whose
   value the assignment does not force, we abort with {!Split} and
   re-run twice, once with the pivot variable bound each way. Because
   transforms are tiny (no loops over symbolic data), re-execution is
   cheaper than checkpointing, and the set of leaves is exactly the
   reachable path space.

   The engine context is global and single-threaded, matching how the
   concrete semantics run. Call {!reset} before each proof instance. *)

exception Split of int
(** raised by {!decide_bit} when the bit depends on the variable *)

type ctx = {
  mutable next_var : int;
  inputs : (string, int) Hashtbl.t; (* input name -> base variable id *)
  mutable input_order : string list; (* reverse creation order *)
  assign : (int, bool) Hashtbl.t; (* current path assignment *)
  mutable concolic : (int -> bool) option; (* full-assignment mode *)
}

let ctx =
  {
    next_var = 0;
    inputs = Hashtbl.create 64;
    input_order = [];
    assign = Hashtbl.create 64;
    concolic = None;
  }

let reset () =
  ctx.next_var <- 0;
  Hashtbl.reset ctx.inputs;
  ctx.input_order <- [];
  Hashtbl.reset ctx.assign;
  ctx.concolic <- None

(* A fresh unconstrained 64-bit input named [name]. The name keys the
   counterexample rendering. *)
let fresh_word name =
  let base = ctx.next_var in
  ctx.next_var <- base + 64;
  Hashtbl.replace ctx.inputs name base;
  ctx.input_order <- name :: ctx.input_order;
  Array.init Word.width (fun i -> Expr.Var (base + i))

(* The current partial assignment, as the environment shape the term
   layer wants. *)
let lookup v = Hashtbl.find_opt ctx.assign v

(* A lookup over an explicit path assignment, independent of the
   engine's current state — used when judging leaves after the
   exploration has finished. *)
let lookup_in path v = List.assoc_opt v path

let decide_bit b =
  match ctx.concolic with
  | Some env -> Expr.eval env b
  | None -> (
      match Expr.reduce lookup b with
      | Expr.B1 -> true
      | Expr.B0 -> false
      | e -> (
          match Expr.some_var e with
          | Some v -> raise (Split v)
          | None -> assert false))

type 'a leaf = { path : (int * bool) list; value : 'a }

type 'a exploration = {
  leaves : 'a leaf list;
  paths : int;  (** completed paths *)
  unexplored : int;  (** paths cut off by the split-depth bound *)
  depth_hist : int array;  (** [depth_hist.(d)] = leaves at split depth d *)
}

(* Depth-first exploration of [f]'s path space. [max_depth] bounds the
   number of splits along one path; transforms written in ite form stay
   far below it, so hitting the bound (counted in [unexplored]) is a
   soundness red flag the prover reports. *)
let explore ?(max_depth = 32) f =
  let leaves = ref [] and paths = ref 0 and unexplored = ref 0 in
  let hist = Array.make (max_depth + 1) 0 in
  let rec go depth path =
    Hashtbl.reset ctx.assign;
    List.iter (fun (v, b) -> Hashtbl.replace ctx.assign v b) path;
    match f () with
    | value ->
        incr paths;
        hist.(depth) <- hist.(depth) + 1;
        leaves := { path; value } :: !leaves
    | exception Split v ->
        if depth >= max_depth then incr unexplored
        else begin
          go (depth + 1) ((v, true) :: path);
          go (depth + 1) ((v, false) :: path)
        end
  in
  go 0 [];
  {
    leaves = List.rev !leaves;
    paths = !paths;
    unexplored = !unexplored;
    depth_hist = hist;
  }

(* Run [f] with every variable decided by [env]: no splits, a single
   concrete execution through the symbolic code. Used by the domain
   soundness tests to check concrete containment. *)
let concolic env f =
  ctx.concolic <- Some env;
  Fun.protect ~finally:(fun () -> ctx.concolic <- None) f

(* Build a total environment from concrete values for (a subset of) the
   declared inputs; unmentioned variables read as 0. *)
let env_of_inputs values =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun (name, v64) ->
      match Hashtbl.find_opt ctx.inputs name with
      | None -> invalid_arg ("Engine.env_of_inputs: unknown input " ^ name)
      | Some base ->
          for i = 0 to Word.width - 1 do
            Hashtbl.replace tbl (base + i)
              (Int64.logand (Int64.shift_right_logical v64 i) 1L = 1L)
          done)
    values;
  fun v -> match Hashtbl.find_opt tbl v with Some b -> b | None -> false

(* Total environment extending a path assignment with a refuting
   assignment from the equivalence checker; everything else is 0. *)
let env_of_path ~path ~refutation =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (v, b) -> Hashtbl.replace tbl v b) path;
  List.iter (fun (v, b) -> Hashtbl.replace tbl v b) refutation;
  fun v -> match Hashtbl.find_opt tbl v with Some b -> b | None -> false

(* Concrete values of all declared inputs under [env] — the
   counterexample state handed back to the user. *)
let concretize_inputs env =
  List.rev_map
    (fun name ->
      let base = Hashtbl.find ctx.inputs name in
      let v = ref 0L in
      for i = Word.width - 1 downto 0 do
        v :=
          Int64.logor (Int64.shift_left !v 1)
            (if env (base + i) then 1L else 0L)
      done;
      (name, !v))
    ctx.input_order
