(* Symbolic 64-bit words: one {!Expr.t} per bit position.

   All operations the privileged semantics need (see
   [Mir_util.Bits_sig.S]) are bit-parallel, so a word is just an array
   of 64 independent bit terms — no carry chains, which is why the
   WARL/trap/interrupt transforms stay small when run symbolically. *)

type t = Expr.t array (* length 64; index i = bit i *)

let width = 64

let const v =
  Array.init width (fun i ->
      if Int64.logand (Int64.shift_right_logical v i) 1L = 1L then Expr.B1
      else Expr.B0)

let map2 f a b = Array.init width (fun i -> f a.(i) b.(i))
let logand = map2 Expr.and_
let logor = map2 Expr.or_
let logxor = map2 Expr.xor_
let lognot a = Array.map Expr.not_ a

let shift_left a n =
  if n < 0 || n > 63 then invalid_arg "Word.shift_left";
  Array.init width (fun i -> if i < n then Expr.B0 else a.(i - n))

let shift_right_logical a n =
  if n < 0 || n > 63 then invalid_arg "Word.shift_right_logical";
  Array.init width (fun i -> if i + n > 63 then Expr.B0 else a.(i + n))

let extract a ~lo ~hi =
  if lo < 0 || lo > hi || hi > 63 then invalid_arg "Word.extract";
  Array.init width (fun i -> if i <= hi - lo then a.(lo + i) else Expr.B0)

let insert a ~lo ~hi ~value =
  if lo < 0 || lo > hi || hi > 63 then invalid_arg "Word.insert";
  Array.init width (fun i ->
      if i >= lo && i <= hi then value.(i - lo) else a.(i))

let test a i = a.(i)

let write a i b =
  let r = Array.copy a in
  r.(i) <- b;
  r

let set a i = write a i Expr.B1
let clear a i = write a i Expr.B0

let eq_const a c =
  let acc = ref Expr.B1 in
  for i = 0 to width - 1 do
    let want = Int64.logand (Int64.shift_right_logical c i) 1L = 1L in
    let bit = if want then a.(i) else Expr.not_ a.(i) in
    acc := Expr.and_ !acc bit
  done;
  !acc

let ite c a b = Array.init width (fun i -> Expr.mux c a.(i) b.(i))

let eval env a =
  let r = ref 0L in
  for i = width - 1 downto 0 do
    r := Int64.logor (Int64.shift_left !r 1) (if Expr.eval env a.(i) then 1L else 0L)
  done;
  !r

let reduce env a = Array.map (Expr.reduce env) a

(* Equivalence of two words under a partial assignment: every bit must
   be equivalent. Returns the first refuted bit's assignment, or the
   worst abandonment. *)
let equiv ?max_blast_vars env a b =
  let verdict = ref Expr.Proved in
  (try
     for i = 0 to width - 1 do
       match Expr.equiv ?max_blast_vars env a.(i) b.(i) with
       | Expr.Proved -> ()
       | Expr.Refuted _ as r ->
           verdict := r;
           raise Exit
       | Expr.Abandoned _ as r -> verdict := r
     done
   with Exit -> ());
  !verdict
