module Policy = Miralis.Policy
module Vhart = Miralis.Vhart
module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Pmp = Mir_rv.Pmp
module Cause = Mir_rv.Cause
module Layout = Mir_firmware.Layout

type state = {
  mutable locked : bool;
  mutable boot_image_hash : int64;
  mutable scrubbed : bool;
  mutable violations : int;
}

let pmp_slots = 3

let hash_region m ~base ~len =
  (* FNV-1a, 64-bit. *)
  let h = ref 0xCBF29CE484222325L in
  for i = 0 to len - 1 do
    match Machine.phys_load m (Int64.add base (Int64.of_int i)) 1 with
    | Some b ->
        h := Int64.mul (Int64.logxor !h b) 0x100000001B3L
    | None -> ()
  done;
  !h

let allow_napot ~base ~size ~r ~w ~x =
  { Pmp.r; w; x; a = Pmp.Napot; l = false;
    addr = Pmp.napot_encode ~base ~size }

let deny_all = { Pmp.off_entry with a = Pmp.Napot; addr = -1L }

let create ?(allow_uart = true)
    ?(kernel_region = (Layout.kernel_base, 0x1000L)) () =
  let state =
    { locked = false; boot_image_hash = 0L; scrubbed = false; violations = 0 }
  in
  (* Saved OS registers across a scrubbed firmware entry, per hart.
     Owned by this policy instance (not the module): two machines — or
     two fleet domains — must never share mutable monitor state. *)
  let saved_regs = Hashtbl.create 8 in
  let kbase, klen = kernel_region in
  let pmp_entries (ctx : Policy.ctx) =
    match ctx.Policy.vhart.Vhart.world with
    | Vhart.Os -> []
    | Vhart.Firmware ->
        if not state.locked then []
        else
          let uart =
            if allow_uart then
              [ allow_napot ~base:Layout.uart ~size:0x100L ~r:true ~w:true
                  ~x:false ]
            else []
          in
          uart
          @ [
              allow_napot ~base:Layout.fw_base
                ~size:Layout.fw_size ~r:true ~w:true ~x:true;
              deny_all;
            ]
  in
  let on_switch_to_os (ctx : Policy.ctx) =
    if not state.locked then begin
      state.locked <- true;
      state.boot_image_hash <-
        hash_region ctx.Policy.machine ~base:kbase ~len:(Int64.to_int klen)
    end;
    (* Restore the registers hidden at firmware entry, keeping the SBI
       return values (a0/a1) produced by the firmware. *)
    (match Hashtbl.find_opt saved_regs ctx.Policy.hart.Hart.id with
    | None -> ()
    | Some (regs, keep_ret) ->
        Hashtbl.remove saved_regs ctx.Policy.hart.Hart.id;
        state.scrubbed <- false;
        Array.iteri
          (fun i v ->
            if i >= 1 && not (keep_ret && (i = 10 || i = 11)) then
              Hart.set ctx.Policy.hart i v)
          regs)
  in
  (* Scrub registers at firmware entry. For SBI calls, the argument
     allow-list from the spec decides which a-registers flow. *)
  let pending_call = Hashtbl.create 8 in
  let on_ecall_from_os (ctx : Policy.ctx) =
    Hashtbl.replace pending_call ctx.Policy.hart.Hart.id true;
    Policy.Pass
  in
  let on_switch_to_fw (ctx : Policy.ctx) =
    if state.locked then begin
      let hart = ctx.Policy.hart in
      let regs = Array.init 32 (fun i -> Hart.get hart i) in
      let is_call =
        Hashtbl.find_opt pending_call hart.Hart.id = Some true
      in
      Hashtbl.replace pending_call hart.Hart.id false;
      Hashtbl.replace saved_regs hart.Hart.id (regs, is_call);
      state.scrubbed <- true;
      let keep =
        if is_call then begin
          let ext = Hart.get hart 17 and fid = Hart.get hart 16 in
          match Mir_sbi.Sbi.arg_count ~ext ~fid with
          | Some n -> List.init n (fun i -> 10 + i) @ [ 16; 17 ]
          | None -> [ 16; 17 ] (* unknown call: expose only IDs *)
        end
        else []
      in
      for r = 1 to 31 do
        if not (List.mem r keep) then Hart.set hart r 0L
      done
    end
  in
  let on_trap_from_fw (ctx : Policy.ctx) cause =
    match cause with
    | Cause.Exception
        ( Cause.Load_access_fault | Cause.Store_access_fault
        | Cause.Instr_access_fault ) ->
        state.violations <- state.violations + 1;
        ctx.Policy.report_violation
          (Printf.sprintf "sandbox: firmware %s at %s"
             (Cause.to_string cause)
             (Mir_util.Bits.to_hex
                (Mir_rv.Csr_file.read_raw ctx.Policy.hart.Hart.csr
                   Mir_rv.Csr_addr.mtval)));
        Policy.Handled
    | _ -> Policy.Pass
  in
  (* Misaligned accesses are emulated in the policy itself so the
     firmware never needs OS register state (paper §5.2). *)
  let on_trap_from_os (ctx : Policy.ctx) cause =
    let emulate ~store =
      match
        Miralis.Offload.try_misaligned
          { ctx.Policy.config with Miralis.Config.offload = true }
          ctx.Policy.machine
          (Miralis.Vfm_stats.create ())
          ctx.Policy.hart ~store
      with
      | Miralis.Offload.Resume_at pc ->
          ctx.Policy.return_to_os ~pc;
          Policy.Handled
      | Miralis.Offload.Not_handled -> Policy.Pass
    in
    match cause with
    | Cause.Exception Cause.Load_misaligned -> emulate ~store:false
    | Cause.Exception Cause.Store_misaligned -> emulate ~store:true
    | _ -> Policy.Pass
  in
  let policy =
    {
      (Policy.default "sandbox") with
      Policy.pmp_entries;
      on_switch_to_os;
      on_switch_to_fw;
      on_ecall_from_os;
      on_trap_from_fw;
      on_trap_from_os;
    }
  in
  (policy, state)
