module Policy = Miralis.Policy
module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Pmp = Mir_rv.Pmp
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Ms = Mir_rv.Csr_spec.Mstatus
module Priv = Mir_rv.Priv
module Bits = Mir_util.Bits

let ext_covh = Mir_sbi.Sbi.ext_covh
let fid_tsm_info = 0L
let fid_promote = 1L
let fid_run_vcpu = 2L
let fid_destroy = 3L
let err_interrupted = -4L

type cvm_state = Ready | Running | Interrupted | Destroyed

type cvm = {
  id : int;
  base : int64;
  size : int64;
  entry : int64;
  mutable state : cvm_state;
}

type state = {
  mutable cvms : cvm list;
  mutable vcpu_entries : int;
  mutable vm_exits : int;
}

let pmp_slots = 2

(* The supervisor CSRs shadowed per CVM — the VS-context. *)
let vs_context_csrs =
  Csr_addr.
    [ stvec; sscratch; sepc; scause; stval; satp; scounteren; senvcfg ]

type vcpu_ctx = {
  regs : int64 array;
  pc : int64;
  scsrs : int64 array;  (* indexed like vs_context_csrs *)
}

type hart_run = { cvm : cvm; host : vcpu_ctx; host_medeleg : int64 }

let capture hart ~pc =
  {
    regs = Array.init 32 (Hart.get hart);
    pc;
    scsrs =
      Array.of_list
        (List.map (Csr_file.read_raw hart.Hart.csr) vs_context_csrs);
  }

let install hart (ctx : vcpu_ctx) =
  Array.iteri (fun i v -> Hart.set hart i v) ctx.regs;
  List.iteri
    (fun i a -> Csr_file.write_raw hart.Hart.csr a ctx.scsrs.(i))
    vs_context_csrs

let fresh_vcpu cvm =
  { regs = Array.make 32 0L; pc = cvm.entry; scsrs = Array.make 8 0L }

let create () =
  let state = { cvms = []; vcpu_entries = 0; vm_exits = 0 } in
  let next_id = ref 0 in
  let running : (int, hart_run) Hashtbl.t = Hashtbl.create 4 in
  let suspended : (int, vcpu_ctx) Hashtbl.t = Hashtbl.create 4 in
  let find id =
    List.find_opt (fun c -> c.id = id && c.state <> Destroyed) state.cvms
  in
  let pmp_entries (ctx : Policy.ctx) =
    match Hashtbl.find_opt running ctx.Policy.hart.Hart.id with
    | Some run ->
        [
          {
            Pmp.r = true;
            w = true;
            x = true;
            a = Pmp.Napot;
            l = false;
            addr = Pmp.napot_encode ~base:run.cvm.base ~size:run.cvm.size;
          };
          { Pmp.off_entry with a = Pmp.Napot; addr = -1L };
        ]
    | None ->
        List.filter_map
          (fun c ->
            if c.state = Destroyed then None
            else
              Some
                {
                  Pmp.off_entry with
                  a = Pmp.Napot;
                  addr = Pmp.napot_encode ~base:c.base ~size:c.size;
                })
          state.cvms
        |> List.filteri (fun i _ -> i < pmp_slots)
  in
  let enter (ctx : Policy.ctx) run vcpu =
    let hart = ctx.Policy.hart in
    state.vcpu_entries <- state.vcpu_entries + 1;
    Hashtbl.replace running hart.Hart.id run;
    (* CVM ecalls (its SBI calls and teecalls) must reach the monitor. *)
    Csr_file.write_raw hart.Hart.csr Csr_addr.medeleg
      (Bits.clear run.host_medeleg 8);
    install hart vcpu;
    ctx.Policy.reinstall_pmp ();
    run.cvm.state <- Running;
    Machine.resume hart ~pc:vcpu.pc ~priv:Priv.U
  in
  let leave (ctx : Policy.ctx) run ~err ~value ~interrupted =
    let hart = ctx.Policy.hart in
    state.vm_exits <- state.vm_exits + 1;
    Hashtbl.remove running hart.Hart.id;
    Csr_file.write_raw hart.Hart.csr Csr_addr.medeleg run.host_medeleg;
    install hart run.host;
    Hart.set hart 10 err;
    Hart.set hart 11 value;
    ctx.Policy.reinstall_pmp ();
    if interrupted then begin
      run.cvm.state <- Interrupted;
      Csr_file.write_raw hart.Hart.csr Csr_addr.mepc run.host.pc;
      let m = Csr_file.read_raw hart.Hart.csr Csr_addr.mstatus in
      Csr_file.write_raw hart.Hart.csr Csr_addr.mstatus (Ms.set_mpp m Priv.S)
    end
    else begin
      (* the exiting trap came from U (the CVM); the host resumes in S *)
      let m = Csr_file.read_raw hart.Hart.csr Csr_addr.mstatus in
      Csr_file.write_raw hart.Hart.csr Csr_addr.mstatus (Ms.set_mpp m Priv.S);
      ctx.Policy.return_to_os ~pc:run.host.pc
    end
  in
  let on_ecall_from_os (ctx : Policy.ctx) =
    let hart = ctx.Policy.hart in
    match Hashtbl.find_opt running hart.Hart.id with
    | Some run ->
        (* teecall: the CVM exits voluntarily with a value. *)
        run.cvm.state <- Ready;
        Hashtbl.remove suspended run.cvm.id;
        leave ctx run ~err:0L ~value:(Hart.get hart 10) ~interrupted:false;
        Policy.Handled
    | None -> begin
        let ext, fid = Policy.sbi_args ctx in
        if ext <> ext_covh then Policy.Pass
        else if fid = fid_tsm_info then begin
          (* report: number of live CVMs *)
          let live =
            List.length
              (List.filter (fun c -> c.state <> Destroyed) state.cvms)
          in
          Policy.sbi_return ctx ~err:0L ~value:(Int64.of_int live);
          Policy.Handled
        end
        else if fid = fid_promote then begin
          let base = Hart.get hart 10
          and size = Hart.get hart 11
          and entry = Hart.get hart 12 in
          let ok =
            size >= 4096L
            && Int64.logand size (Int64.sub size 1L) = 0L
            && Int64.logand base (Int64.sub size 1L) = 0L
            && List.length
                 (List.filter (fun c -> c.state <> Destroyed) state.cvms)
               < pmp_slots - 1
          in
          if not ok then Policy.sbi_return ctx ~err:(-3L) ~value:0L
          else begin
            incr next_id;
            let c = { id = !next_id; base; size; entry; state = Ready } in
            state.cvms <- c :: state.cvms;
            (* sibling harts must pick up the new deny entry too *)
            ctx.Policy.reinstall_pmp_all ();
            Policy.sbi_return ctx ~err:0L ~value:(Int64.of_int c.id)
          end;
          Policy.Handled
        end
        else if fid = fid_run_vcpu then begin
          (match find (Int64.to_int (Hart.get hart 10)) with
          | None -> Policy.sbi_return ctx ~err:(-3L) ~value:0L
          | Some c -> begin
              let mepc = Csr_file.read_raw hart.Hart.csr Csr_addr.mepc in
              let host = capture hart ~pc:(Int64.add mepc 4L) in
              let host_medeleg =
                Csr_file.read_raw hart.Hart.csr Csr_addr.medeleg
              in
              match c.state with
              | Ready ->
                  enter ctx { cvm = c; host; host_medeleg } (fresh_vcpu c)
              | Interrupted ->
                  let vcpu =
                    match Hashtbl.find_opt suspended c.id with
                    | Some v -> v
                    | None -> fresh_vcpu c
                  in
                  Hashtbl.remove suspended c.id;
                  enter ctx { cvm = c; host; host_medeleg } vcpu
              | Running | Destroyed ->
                  Policy.sbi_return ctx ~err:(-3L) ~value:0L
            end);
          Policy.Handled
        end
        else if fid = fid_destroy then begin
          (match find (Int64.to_int (Hart.get hart 10)) with
          | None -> Policy.sbi_return ctx ~err:(-3L) ~value:0L
          | Some c ->
              c.state <- Destroyed;
              Hashtbl.remove suspended c.id;
              let words = Int64.to_int c.size / 8 in
              for i = 0 to words - 1 do
                ignore
                  (Machine.phys_store ctx.Policy.machine
                     (Int64.add c.base (Int64.of_int (8 * i)))
                     8 0L)
              done;
              ctx.Policy.reinstall_pmp_all ();
              Policy.sbi_return ctx ~err:0L ~value:0L);
          Policy.Handled
        end
        else begin
          Policy.sbi_return ctx ~err:(-2L) ~value:0L;
          Policy.Handled
        end
      end
  in
  let on_interrupt (ctx : Policy.ctx) _i =
    let hart = ctx.Policy.hart in
    match Hashtbl.find_opt running hart.Hart.id with
    | None -> Policy.Pass
    | Some run ->
        let pc = Csr_file.read_raw hart.Hart.csr Csr_addr.mepc in
        Hashtbl.replace suspended run.cvm.id (capture hart ~pc);
        leave ctx run ~err:err_interrupted ~value:0L ~interrupted:true;
        Policy.Pass
  in
  let policy =
    {
      (Policy.default "ace") with
      Policy.pmp_entries;
      on_ecall_from_os;
      on_interrupt;
    }
  in
  (policy, state)
