module Policy = Miralis.Policy
module Machine = Mir_rv.Machine
module Hart = Mir_rv.Hart
module Pmp = Mir_rv.Pmp
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Ms = Mir_rv.Csr_spec.Mstatus
module Priv = Mir_rv.Priv
module Bits = Mir_util.Bits

let ext_keystone = Mir_sbi.Sbi.ext_keystone
let fid_create = 0L
let fid_run = 1L
let fid_exit = 2L
let fid_destroy = 3L
let err_interrupted = -4L

type enclave_state = Created | Running | Interrupted | Destroyed

type enclave = {
  eid : int;
  base : int64;
  size : int64;
  entry : int64;
  mutable state : enclave_state;
}

type state = {
  mutable enclaves : enclave list;
  mutable entries_count : int;
  mutable exits_count : int;
}

(* Saved execution context: registers, pc, privilege, medeleg. *)
type ctx_save = { regs : int64 array; pc : int64; medeleg : int64 }

type hart_run = {
  enclave : enclave;
  host : ctx_save;
  mutable enclave_ctx : (int64 array * int64) option;
      (* saved enclave registers and pc when interrupted *)
}

let pmp_slots = 2

let snapshot hart ~pc =
  {
    regs = Array.init 32 (Hart.get hart);
    pc;
    medeleg = Csr_file.read_raw hart.Hart.csr Csr_addr.medeleg;
  }

let restore_regs hart regs = Array.iteri (fun i v -> Hart.set hart i v) regs

let create () =
  let state = { enclaves = []; entries_count = 0; exits_count = 0 } in
  let next_eid = ref 0 in
  (* at most one enclave runs per hart *)
  let running : (int, hart_run) Hashtbl.t = Hashtbl.create 4 in
  let find_enclave eid =
    List.find_opt
      (fun e -> e.eid = eid && e.state <> Destroyed)
      state.enclaves
  in
  let pmp_entries (ctx : Policy.ctx) =
    match Hashtbl.find_opt running ctx.Policy.hart.Hart.id with
    | Some run ->
        (* While the enclave executes: only its region is accessible.
           Everything else — OS memory, devices, firmware — is denied
           at higher priority than any vPMP. *)
        [
          {
            Pmp.r = true;
            w = true;
            x = true;
            a = Pmp.Napot;
            l = false;
            addr =
              Pmp.napot_encode ~base:run.enclave.base ~size:run.enclave.size;
          };
          { Pmp.off_entry with a = Pmp.Napot; addr = -1L };
        ]
    | None ->
        (* While the OS or firmware executes: every live enclave's
           memory is denied (one slot; enclaves share one NAPOT window
           in this implementation — create enforces it). *)
        List.filter_map
          (fun e ->
            if e.state = Destroyed then None
            else
              Some
                {
                  Pmp.off_entry with
                  a = Pmp.Napot;
                  addr = Pmp.napot_encode ~base:e.base ~size:e.size;
                })
          state.enclaves
        |> fun l -> List.filteri (fun i _ -> i < pmp_slots) l
  in
  let enter_enclave (ctx : Policy.ctx) run =
    let hart = ctx.Policy.hart in
    state.entries_count <- state.entries_count + 1;
    Hashtbl.replace running hart.Hart.id run;
    (* Enclave ecalls must reach the monitor, not the OS. *)
    Csr_file.write_raw hart.Hart.csr Csr_addr.medeleg
      (Bits.clear run.host.medeleg 8);
    (match run.enclave_ctx with
    | Some (regs, pc) ->
        restore_regs hart regs;
        ctx.Policy.reinstall_pmp ();
        Machine.resume hart ~pc ~priv:Priv.U
    | None ->
        for r = 1 to 31 do
          Hart.set hart r 0L
        done;
        Hart.set hart 10 (Int64.of_int run.enclave.eid);
        ctx.Policy.reinstall_pmp ();
        Machine.resume hart ~pc:run.enclave.entry ~priv:Priv.U);
    run.enclave.state <- Running
  in
  let leave_enclave (ctx : Policy.ctx) run ~err ~value ~interrupted =
    let hart = ctx.Policy.hart in
    Hashtbl.remove running hart.Hart.id;
    Csr_file.write_raw hart.Hart.csr Csr_addr.medeleg run.host.medeleg;
    restore_regs hart run.host.regs;
    Hart.set hart 10 err;
    Hart.set hart 11 value;
    ctx.Policy.reinstall_pmp ();
    if interrupted then begin
      run.enclave.state <- Interrupted;
      (* The pending interrupt is delivered by Miralis after this
         hook; make the hardware-visible return context point at the
         host. *)
      Csr_file.write_raw hart.Hart.csr Csr_addr.mepc run.host.pc;
      let m = Csr_file.read_raw hart.Hart.csr Csr_addr.mstatus in
      Csr_file.write_raw hart.Hart.csr Csr_addr.mstatus (Ms.set_mpp m Priv.S)
    end
    else begin
      state.exits_count <- state.exits_count + 1;
      (* the trap that got us here came from U (the enclave); the host
         resumes in S *)
      let m = Csr_file.read_raw hart.Hart.csr Csr_addr.mstatus in
      Csr_file.write_raw hart.Hart.csr Csr_addr.mstatus (Ms.set_mpp m Priv.S);
      ctx.Policy.return_to_os ~pc:run.host.pc
    end
  in
  (* Enclave contexts stashed when a run is interrupted, keyed by
     eid. *)
  let saved_ctxs : (int, int64 array * int64) Hashtbl.t = Hashtbl.create 4 in
  let on_ecall_from_os (ctx : Policy.ctx) =
    let hart = ctx.Policy.hart in
    match Hashtbl.find_opt running hart.Hart.id with
    | Some run ->
        (* An ecall from inside the enclave: exit. *)
        let value = Hart.get hart 10 in
        run.enclave.state <- Created;
        run.enclave_ctx <- None;
        leave_enclave ctx run ~err:0L ~value ~interrupted:false;
        Policy.Handled
    | None -> begin
        let ext, fid = Policy.sbi_args ctx in
        if ext <> ext_keystone then Policy.Pass
        else if fid = fid_create then begin
          let base = Hart.get hart 10
          and size = Hart.get hart 11
          and entry = Hart.get hart 12 in
          let ok =
            size >= 4096L
            && Int64.logand size (Int64.sub size 1L) = 0L
            && Int64.logand base (Int64.sub size 1L) = 0L
            && List.length
                 (List.filter (fun e -> e.state <> Destroyed) state.enclaves)
               < pmp_slots - 1
          in
          if not ok then Policy.sbi_return ctx ~err:(-3L) ~value:0L
          else begin
            incr next_eid;
            let e =
              { eid = !next_eid; base; size; entry; state = Created }
            in
            state.enclaves <- e :: state.enclaves;
            (* every hart must observe the new deny entry: a sibling
               running with the pre-create PMP could read the enclave
               before its own next reinstall *)
            ctx.Policy.reinstall_pmp_all ();
            Policy.sbi_return ctx ~err:0L ~value:(Int64.of_int e.eid)
          end;
          Policy.Handled
        end
        else if fid = fid_run then begin
          (match find_enclave (Int64.to_int (Hart.get hart 10)) with
          | None -> Policy.sbi_return ctx ~err:(-3L) ~value:0L
          | Some e -> begin
              let mepc = Csr_file.read_raw hart.Hart.csr Csr_addr.mepc in
              let host = snapshot hart ~pc:(Int64.add mepc 4L) in
              match e.state with
              | Created ->
                  enter_enclave ctx { enclave = e; host; enclave_ctx = None }
              | Interrupted ->
                  (* resume from the context stashed at interruption *)
                  let saved = Hashtbl.find_opt saved_ctxs e.eid in
                  Hashtbl.remove saved_ctxs e.eid;
                  enter_enclave ctx { enclave = e; host; enclave_ctx = saved }
              | Running | Destroyed ->
                  Policy.sbi_return ctx ~err:(-3L) ~value:0L
            end);
          Policy.Handled
        end
        else if fid = fid_destroy then begin
          (match find_enclave (Int64.to_int (Hart.get hart 10)) with
          | None -> Policy.sbi_return ctx ~err:(-3L) ~value:0L
          | Some e ->
              e.state <- Destroyed;
              (* scrub enclave memory before releasing it *)
              let len = Int64.to_int e.size in
              for i = 0 to (len / 8) - 1 do
                ignore
                  (Machine.phys_store ctx.Policy.machine
                     (Int64.add e.base (Int64.of_int (8 * i)))
                     8 0L)
              done;
              ctx.Policy.reinstall_pmp_all ();
              Policy.sbi_return ctx ~err:0L ~value:0L);
          Policy.Handled
        end
        else begin
          Policy.sbi_return ctx ~err:(-2L) ~value:0L;
          Policy.Handled
        end
      end
  in
  let on_interrupt (ctx : Policy.ctx) _i =
    let hart = ctx.Policy.hart in
    match Hashtbl.find_opt running hart.Hart.id with
    | None -> Policy.Pass
    | Some run ->
        (* Interrupt arrived while the enclave was executing: stash the
           enclave context, hand the hart back to the host with
           err_interrupted, then let Miralis deliver the interrupt. *)
        let epc = Csr_file.read_raw hart.Hart.csr Csr_addr.mepc in
        Hashtbl.replace saved_ctxs run.enclave.eid
          (Array.init 32 (Hart.get hart), epc);
        leave_enclave ctx run ~err:err_interrupted ~value:0L
          ~interrupted:true;
        Policy.Pass
  in
  let policy =
    {
      (Policy.default "keystone") with
      Policy.pmp_entries;
      on_ecall_from_os;
      on_interrupt;
    }
  in
  (policy, state)
