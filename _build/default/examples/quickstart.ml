(* Quickstart: boot unmodified firmware under Miralis and watch it run.

   This example builds the simulated VisionFive 2, loads the MiniSBI
   firmware image and the demo kernel, and runs the same workload
   twice: once with the firmware in real M-mode (native), once
   deprivileged in virtual M-mode under Miralis. The observable
   behaviour is identical; the Miralis run additionally reports what
   the monitor did.

     dune exec examples/quickstart.exe *)

module Setup = Mir_harness.Setup
module Script = Mir_kernel.Script
module Platform = Mir_platform.Platform

let workload =
  [
    Script.Putchar 'h'; Script.Putchar 'e'; Script.Putchar 'l';
    Script.Putchar 'l'; Script.Putchar 'o'; Script.Putchar '\n';
    Script.Rdtime; (* traps: no time CSR on this platform *)
    Script.Set_timer 200L; (* SBI timer programming *)
    Script.Tick_wfi 100L; (* sleep until the supervisor timer fires *)
    Script.Ipi_self; (* a software interrupt round trip *)
    Script.Misaligned_load; (* firmware-emulated on this hardware *)
    Script.Putchar 'b'; Script.Putchar 'y'; Script.Putchar 'e';
    Script.Putchar '\n';
    Script.End;
  ]

let run mode =
  Printf.printf "--- %s ---\n%!" (Setup.mode_name mode);
  let sys = Setup.create Platform.visionfive2 mode in
  Setup.run_scripts sys [ workload ];
  Printf.printf "console: %s" (Setup.uart_output sys);
  Printf.printf "simulated time: %.3f ms | timer ticks: %Ld | IPIs: %Ld\n"
    (Setup.seconds sys *. 1e3)
    (Script.sti_count sys.Setup.machine ~hart:0)
    (Script.ssi_count sys.Setup.machine ~hart:0);
  (match Setup.stats sys with
  | Some stats ->
      Format.printf "miralis: %a@." Miralis.Vfm_stats.pp stats
  | None -> ());
  print_newline ()

let () =
  print_endline "Miralis quickstart: the same firmware, two privilege models\n";
  run Setup.Native;
  run Setup.Virtualized;
  print_endline
    "The firmware image is bit-identical in both runs; under Miralis it \
     executed in user mode."
