examples/sandbox_demo.mli:
