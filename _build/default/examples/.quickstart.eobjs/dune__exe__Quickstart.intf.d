examples/quickstart.mli:
