examples/cvm_demo.mli:
