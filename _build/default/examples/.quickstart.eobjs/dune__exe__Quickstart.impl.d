examples/quickstart.ml: Format Mir_harness Mir_kernel Mir_platform Miralis Printf
