examples/enclave_demo.mli:
