examples/enclave_demo.ml: Mir_firmware Mir_harness Mir_kernel Mir_platform Mir_policies Mir_rv Miralis Option Printf
