examples/sandbox_demo.ml: List Mir_firmware Mir_harness Mir_kernel Mir_platform Mir_policies Mir_rv Miralis Printf String
