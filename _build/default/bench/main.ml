(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md for the experiment index), plus a
   Bechamel microbenchmark section for the simulator's own hot
   primitives.

   Usage:
     bench/main.exe               run everything
     bench/main.exe <name>...     run selected experiments
   Names: table1 table2 table3 table4 table5 fig3 fig10 fig11 fig12
          fig13 fig14 boottime q1 q4 micro *)

module T = Mir_experiments.Exp_tables
module F = Mir_experiments.Exp_figs

let experiments =
  [
    ("table1", fun () -> T.table1 ());
    ("table2", fun () -> T.table2 ());
    ("table3", fun () -> T.table3 ());
    ("table4", fun () -> T.table4 ());
    ("table5", fun () -> T.table5 ());
    ("fig3", fun () -> F.fig3 ());
    ("fig10", fun () -> F.fig10 ());
    ("fig11", fun () -> F.fig11 ());
    ("fig12", fun () -> F.fig12 ());
    ("fig13", fun () -> F.fig13 ());
    ("fig14", fun () -> F.fig14 ());
    ("boottime", fun () -> F.boot_time ());
    ("sstc", fun () -> F.sstc_projection ());
    ("q1", fun () -> F.q1 ());
    ("q4", fun () -> F.q4 ());
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulator's primitives              *)
(* ------------------------------------------------------------------ *)

let micro () =
  print_endline "\nSimulator microbenchmarks (Bechamel)";
  print_endline "====================================";
  let open Bechamel in
  let open Toolkit in
  let decode_word = 0x34011173 (* csrrw sp, mscratch, sp *) in
  let machine = Mir_rv.Machine.create Mir_rv.Machine.default_config in
  let hart = machine.Mir_rv.Machine.harts.(0) in
  let image, _ =
    Mir_asm.Asm.assemble ~base:0x80000000L
      Mir_asm.Asm.I.
        [ label "loop"; addi Mir_asm.Asm.Reg.a0 Mir_asm.Asm.Reg.a0 1L;
          xor Mir_asm.Asm.Reg.a1 Mir_asm.Asm.Reg.a1 Mir_asm.Asm.Reg.a0;
          j "loop" ]
  in
  Mir_rv.Machine.load_program machine 0x80000000L image;
  Mir_rv.Hart.reset hart ~pc:0x80000000L;
  let ranges = Mir_rv.Csr_file.pmp_ranges hart.Mir_rv.Hart.csr in
  let tests =
    [
      Test.make ~name:"decode" (Staged.stage (fun () ->
          ignore (Mir_rv.Decode.decode decode_word)));
      Test.make ~name:"hart-step" (Staged.stage (fun () ->
          Mir_rv.Machine.step machine hart));
      Test.make ~name:"pmp-check" (Staged.stage (fun () ->
          ignore
            (Mir_rv.Pmp.check_ranges ranges ~priv:Mir_rv.Priv.S
               Mir_rv.Pmp.Read ~addr:0x80001000L ~size:8)));
      Test.make ~name:"csr-read" (Staged.stage (fun () ->
          ignore
            (Mir_rv.Csr_file.read hart.Mir_rv.Hart.csr
               Mir_rv.Csr_addr.mstatus)));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) () in
    Benchmark.all cfg instances test
  in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                   ~predictors:[| Measure.run |])
      Instance.monotonic_clock
      (benchmark (Test.make_grouped ~name:"sim" tests))
  in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-24s %8.1f ns/op\n" name est
      | _ -> ())
    results

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let t0 = Unix.gettimeofday () in
  (match args with
  | [] ->
      List.iter (fun (_, f) -> f ()) experiments;
      micro ()
  | names ->
      List.iter
        (fun name ->
          if name = "micro" then micro ()
          else
            match List.assoc_opt name experiments with
            | Some f -> f ()
            | None ->
                Printf.eprintf "unknown experiment %S; known: %s micro\n" name
                  (String.concat " " (List.map fst experiments)))
        names);
  Printf.printf "\n[bench completed in %.1fs]\n" (Unix.gettimeofday () -. t0)
