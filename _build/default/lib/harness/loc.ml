let count_file path =
  match open_in path with
  | exception Sys_error _ -> 0
  | ic ->
      let n = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then incr n
         done
       with End_of_file -> ());
      close_in ic;
      !n

let project_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let count_files root paths =
  List.fold_left
    (fun acc p -> acc + count_file (Filename.concat root p))
    0 paths

let ml_and_mli base = [ base ^ ".ml"; base ^ ".mli" ]

let table1 () =
  match project_root () with
  | None -> [ ("(source tree not found)", 0) ]
  | Some root ->
      let core base = ml_and_mli ("lib/core/" ^ base) in
      let rows =
        [
          ("Emulator", count_files root (core "emulator"));
          ( "Hardware interface",
            count_files root (core "world" @ core "vpmp" @ core "vhart") );
          ("MMIO devices", count_files root (core "vclint"));
          ("Fast path offload", count_files root (core "offload"));
          ( "Other",
            count_files root
              (core "monitor" @ core "config" @ core "cost"
              @ core "vfm_stats" @ core "policy") );
        ]
      in
      rows @ [ ("Total", List.fold_left (fun a (_, n) -> a + n) 0 rows) ]

let dir_loc root dir =
  match Sys.readdir (Filename.concat root dir) with
  | exception Sys_error _ -> 0
  | files ->
      Array.fold_left
        (fun acc f ->
          if Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"
          then acc + count_file (Filename.concat (Filename.concat root dir) f)
          else acc)
        0 files

let repo_inventory () =
  match project_root () with
  | None -> []
  | Some root ->
      let libs =
        [
          ("util", "lib/util"); ("rv (machine)", "lib/rv");
          ("asm", "lib/asm"); ("sbi", "lib/sbi");
          ("firmware", "lib/firmware"); ("kernel", "lib/kernel");
          ("core (Miralis)", "lib/core"); ("policies", "lib/policies");
          ("platform", "lib/platform"); ("verif", "lib/verif");
          ("workloads", "lib/workloads"); ("harness", "lib/harness");
          ("tests", "test"); ("bench", "bench"); ("examples", "examples");
          ("bin", "bin");
        ]
      in
      List.map (fun (name, dir) -> (name, dir_loc root dir)) libs
