lib/harness/loc.mli:
