lib/harness/loc.ml: Array Filename List String Sys
