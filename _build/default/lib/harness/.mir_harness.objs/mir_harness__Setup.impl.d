lib/harness/setup.ml: Array Int64 List Mir_firmware Mir_kernel Mir_platform Mir_rv Miralis Option
