lib/harness/setup.mli: Mir_kernel Mir_platform Mir_rv Miralis
