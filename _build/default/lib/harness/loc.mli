(** Lines-of-code accounting (the paper's Table 1).

    Counts non-blank source lines per VFM subsystem, mapped onto the
    paper's decomposition: emulator, hardware interface, MMIO devices,
    fast-path offload, and other. *)

val count_file : string -> int
(** Non-blank lines in one file (0 if unreadable). *)

val project_root : unit -> string option
(** The directory containing [dune-project], searched upward from the
    current directory. *)

val table1 : unit -> (string * int) list
(** (subsystem, LoC) rows for the VFM core, ending with a total. *)

val repo_inventory : unit -> (string * int) list
(** LoC per library in the whole repository. *)
