type t = {
  mutable data : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 64 0.0; len = 0; sorted = true }

let add t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let total t = fold ( +. ) 0.0 t
let mean t = if t.len = 0 then 0.0 else total t /. float_of_int t.len
let min_value t = fold min infinity t
let max_value t = fold max neg_infinity t

let stddev t =
  if t.len < 2 then 0.0
  else
    let m = mean t in
    let ss = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 t in
    sqrt (ss /. float_of_int (t.len - 1))

let ensure_sorted t =
  if not t.sorted then begin
    let sub = Array.sub t.data 0 t.len in
    Array.sort compare sub;
    Array.blit sub 0 t.data 0 t.len;
    t.sorted <- true
  end

let percentile t p =
  if t.len = 0 then invalid_arg "Stats.percentile: empty sample";
  ensure_sorted t;
  let rank = p /. 100.0 *. float_of_int (t.len - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let frac = rank -. floor rank in
  (t.data.(lo) *. (1.0 -. frac)) +. (t.data.(hi) *. frac)

let median t = percentile t 50.0

let histogram t ~bins =
  assert (bins > 0);
  let lo = min_value t and hi = max_value t in
  let width =
    if hi > lo then (hi -. lo) /. float_of_int bins else 1.0
  in
  let counts = Array.make bins 0 in
  for i = 0 to t.len - 1 do
    let b = int_of_float ((t.data.(i) -. lo) /. width) in
    let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
    counts.(b) <- counts.(b) + 1
  done;
  Array.mapi
    (fun i c ->
      (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), c))
    counts

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t
