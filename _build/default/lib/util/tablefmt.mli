(** Plain-text table rendering for the experiment harness.

    Produces aligned, boxed tables resembling the paper's tables so the
    benchmark output can be compared to the published numbers at a
    glance. *)

type align = Left | Right

val render :
  ?title:string -> headers:string list -> ?aligns:align list ->
  string list list -> string

val print :
  ?title:string -> headers:string list -> ?aligns:align list ->
  string list list -> unit

val bar_chart :
  ?title:string -> ?width:int -> unit -> (string * float) list -> string
(** Horizontal ASCII bar chart, used for "figure" reproductions.
    [width] is the maximum bar width in characters (default 48). *)

val series_chart :
  ?title:string -> labels:string list -> (string * float list) list -> string
(** Renders one row per x-label with one numeric column per series;
    used for multi-series figures (e.g. latency distributions). *)
