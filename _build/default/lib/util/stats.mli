(** Sample statistics for benchmark reporting.

    Collects raw observations and answers the summary queries the
    evaluation harness prints: mean, percentiles, histograms. *)

type t

val create : unit -> t
(** An empty sample set. *)

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
val mean : t -> float
val total : t -> float
val min_value : t -> float
val max_value : t -> float

val stddev : t -> float
(** Sample standard deviation (0 for fewer than two observations). *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,100], by linear interpolation on
    the sorted sample. Raises [Invalid_argument] on an empty sample. *)

val median : t -> float

val histogram : t -> bins:int -> (float * float * int) array
(** [histogram t ~bins] buckets the sample into [bins] equal-width
    ranges and returns [(lo, hi, count)] per bucket. *)

val of_list : float list -> t
