lib/util/prng.mli:
