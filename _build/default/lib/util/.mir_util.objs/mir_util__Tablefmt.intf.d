lib/util/tablefmt.mli:
