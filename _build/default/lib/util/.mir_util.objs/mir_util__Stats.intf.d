lib/util/stats.mli:
