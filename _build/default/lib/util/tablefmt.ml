type align = Left | Right

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render ?title ~headers ?aligns rows =
  let ncols = List.length headers in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | _ -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.of_list (List.map String.length headers) in
  let note_row row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  List.iter note_row rows;
  let sep =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let fmt_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let a = List.nth aligns i in
          " " ^ pad a widths.(i) cell ^ " ")
        row
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (fmt_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (fmt_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print ?title ~headers ?aligns rows =
  print_endline (render ?title ~headers ?aligns rows)

let bar_chart ?title ?(width = 48) () entries =
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  let max_v = List.fold_left (fun acc (_, v) -> max acc v) 0.0 entries in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  List.iter
    (fun (label, v) ->
      let n =
        if max_v <= 0.0 then 0
        else int_of_float (v /. max_v *. float_of_int width)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s | %s %.3f\n"
           (pad Left label_w label) (String.make n '#') v))
    entries;
  Buffer.contents buf

let series_chart ?title ~labels series =
  let headers = "" :: List.map fst series in
  let rows =
    List.mapi
      (fun i label ->
        label
        :: List.map
             (fun (_, vs) ->
               match List.nth_opt vs i with
               | Some v -> Printf.sprintf "%.3f" v
               | None -> "-")
             series)
      labels
  in
  render ?title ~headers rows
