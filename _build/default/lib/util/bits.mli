(** 64-bit bit-manipulation helpers.

    All architectural values in the simulator are [int64]. This module
    gathers the field-extraction, masking and sign-extension operations
    used by the decoder, the CSR file and the PMP logic. *)

val mask : int -> int64
(** [mask n] is an [int64] with the low [n] bits set. [mask 64] is all
    ones and [mask 0] is zero. Raises [Invalid_argument] outside
    [0..64]. *)

val extract : int64 -> lo:int -> hi:int -> int64
(** [extract v ~lo ~hi] is bits [hi..lo] (inclusive) of [v], shifted
    down to bit 0. Requires [0 <= lo <= hi <= 63]. *)

val insert : int64 -> lo:int -> hi:int -> value:int64 -> int64
(** [insert v ~lo ~hi ~value] replaces bits [hi..lo] of [v] with the low
    bits of [value]. *)

val test : int64 -> int -> bool
(** [test v i] is true iff bit [i] of [v] is set. *)

val set : int64 -> int -> int64
(** [set v i] sets bit [i]. *)

val clear : int64 -> int -> int64
(** [clear v i] clears bit [i]. *)

val write : int64 -> int -> bool -> int64
(** [write v i b] sets bit [i] to [b]. *)

val sext : int64 -> width:int -> int64
(** [sext v ~width] sign-extends the low [width] bits of [v] to 64
    bits. Requires [1 <= width <= 64]. *)

val zext : int64 -> width:int -> int64
(** [zext v ~width] zero-extends, i.e. keeps only the low [width]
    bits. *)

val sext32 : int64 -> int64
(** [sext32 v] sign-extends the low 32 bits (the RV64 "W" result
    rule). *)

val is_aligned : int64 -> size:int -> bool
(** [is_aligned a ~size] is true iff [a] is a multiple of [size]
    ([size] a power of two). *)

val align_down : int64 -> size:int -> int64
(** [align_down a ~size] rounds [a] down to a multiple of [size]. *)

val ucompare : int64 -> int64 -> int
(** Unsigned comparison. *)

val ult : int64 -> int64 -> bool
(** Unsigned less-than. *)

val ule : int64 -> int64 -> bool
(** Unsigned less-or-equal. *)

val udiv : int64 -> int64 -> int64
(** Unsigned division (divisor must be non-zero). *)

val urem : int64 -> int64 -> int64
(** Unsigned remainder (divisor must be non-zero). *)

val pp_hex : Format.formatter -> int64 -> unit
(** Prints as [0x%Lx]. *)

val to_hex : int64 -> string
(** Hexadecimal rendering with [0x] prefix. *)

val popcount : int64 -> int
(** Number of set bits. *)

val ctz : int64 -> int
(** Count of trailing zero bits; 64 for zero. *)
