let mask n =
  if n < 0 || n > 64 then invalid_arg "Bits.mask"
  else if n = 64 then -1L
  else Int64.sub (Int64.shift_left 1L n) 1L

let extract v ~lo ~hi =
  assert (0 <= lo && lo <= hi && hi <= 63);
  Int64.logand (Int64.shift_right_logical v lo) (mask (hi - lo + 1))

let insert v ~lo ~hi ~value =
  assert (0 <= lo && lo <= hi && hi <= 63);
  let m = Int64.shift_left (mask (hi - lo + 1)) lo in
  Int64.logor
    (Int64.logand v (Int64.lognot m))
    (Int64.logand (Int64.shift_left value lo) m)

let test v i = Int64.logand (Int64.shift_right_logical v i) 1L = 1L
let set v i = Int64.logor v (Int64.shift_left 1L i)
let clear v i = Int64.logand v (Int64.lognot (Int64.shift_left 1L i))
let write v i b = if b then set v i else clear v i

let sext v ~width =
  assert (1 <= width && width <= 64);
  if width = 64 then v
  else
    let shift = 64 - width in
    Int64.shift_right (Int64.shift_left v shift) shift

let zext v ~width = Int64.logand v (mask width)
let sext32 v = sext v ~width:32
let is_aligned a ~size = Int64.logand a (Int64.of_int (size - 1)) = 0L

let align_down a ~size =
  Int64.logand a (Int64.lognot (Int64.of_int (size - 1)))

let ucompare = Int64.unsigned_compare
let ult a b = Int64.unsigned_compare a b < 0
let ule a b = Int64.unsigned_compare a b <= 0
let udiv = Int64.unsigned_div
let urem = Int64.unsigned_rem
let pp_hex fmt v = Format.fprintf fmt "0x%Lx" v
let to_hex v = Printf.sprintf "0x%Lx" v

let popcount v =
  let rec go v acc = if v = 0L then acc
    else go (Int64.shift_right_logical v 1)
        (acc + Int64.to_int (Int64.logand v 1L))
  in
  go v 0

let ctz v =
  if v = 0L then 64
  else
    let rec go v i = if test v i then i else go v (i + 1) in
    go v 0
