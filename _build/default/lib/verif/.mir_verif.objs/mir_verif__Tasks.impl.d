lib/verif/tasks.ml: Diff Format Fun Int64 List Mir_rv Mir_util Miralis Printf Sys
