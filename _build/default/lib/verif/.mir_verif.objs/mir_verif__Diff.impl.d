lib/verif/diff.ml: Array Int64 List Mir_rv Mir_util Miralis Option Printf
