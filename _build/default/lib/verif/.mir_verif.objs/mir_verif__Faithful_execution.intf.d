lib/verif/faithful_execution.mli: Miralis Tasks
