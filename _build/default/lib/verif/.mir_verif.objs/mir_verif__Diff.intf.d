lib/verif/diff.mli: Mir_rv Mir_util Miralis
