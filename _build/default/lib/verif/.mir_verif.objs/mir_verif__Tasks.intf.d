lib/verif/tasks.mli: Format Miralis
