lib/verif/faithful_execution.ml: Array Fun Int64 List Mir_rv Mir_util Miralis Printf Tasks
