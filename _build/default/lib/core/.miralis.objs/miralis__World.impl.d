lib/core/world.ml: Config Cost Int64 List Mir_rv Mir_util Vhart Vpmp
