lib/core/vclint.mli: Mir_rv
