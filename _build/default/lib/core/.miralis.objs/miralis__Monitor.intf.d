lib/core/monitor.mli: Config Mir_rv Policy Vclint Vfm_stats Vhart Vplic
