lib/core/vpmp.mli: Config Mir_rv Vhart
