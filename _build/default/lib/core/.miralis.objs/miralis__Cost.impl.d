lib/core/cost.ml: Float
