lib/core/emulator.ml: Config Int64 List Mir_rv Mir_util Vhart
