lib/core/vpmp.ml: Array Config Int64 List Mir_rv Mir_util Vhart
