lib/core/vhart.mli: Config Mir_rv
