lib/core/vhart.ml: Config Mir_rv
