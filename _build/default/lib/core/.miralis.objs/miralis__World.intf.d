lib/core/world.mli: Config Mir_rv Vhart
