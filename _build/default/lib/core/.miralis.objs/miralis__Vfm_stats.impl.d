lib/core/vfm_stats.ml: Format
