lib/core/vplic.ml: Array Int64 Mir_rv
