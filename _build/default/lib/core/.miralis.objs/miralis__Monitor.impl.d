lib/core/monitor.ml: Array Config Cost Emulator Int64 Logs Mir_rv Mir_util Offload Option Policy Printf Vclint Vfm_stats Vhart Vplic Vpmp World
