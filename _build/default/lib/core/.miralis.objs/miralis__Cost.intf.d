lib/core/cost.mli:
