lib/core/vclint.ml: Array Int64 Mir_rv Mir_util
