lib/core/vfm_stats.mli: Format
