lib/core/offload.ml: Array Config Cost Fun Int64 List Mir_rv Mir_sbi Mir_util Vclint Vfm_stats
