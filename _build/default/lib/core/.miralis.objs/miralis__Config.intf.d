lib/core/config.mli: Cost Mir_rv
