lib/core/config.ml: Cost Int64 Mir_rv Option
