lib/core/vplic.mli: Mir_rv
