lib/core/policy.ml: Config Int64 Mir_rv Vhart
