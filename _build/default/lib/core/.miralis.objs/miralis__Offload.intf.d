lib/core/offload.mli: Config Mir_rv Vclint Vfm_stats
