lib/core/policy.mli: Config Mir_rv Vhart
