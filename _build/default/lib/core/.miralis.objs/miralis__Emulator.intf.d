lib/core/emulator.mli: Config Mir_rv Vhart
