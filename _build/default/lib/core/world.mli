(** World switches: the CSR exchange between virtual and physical
    state (paper §4.1).

    From firmware to the OS, Miralis installs the virtual CSRs into
    the physical registers — except those required for emulation or
    isolation (PMP, the M-level mie bits). From the OS to firmware it
    loads the physical CSRs into the virtual copies and installs
    well-defined values physically. Both directions rewrite the PMP
    and therefore imply a TLB flush, charged through the cost model. *)

val miralis_mie : int64
(** The M-level interrupt enables Miralis keeps for itself (timer and
    software; externals are delegated to the OS's PLIC context). *)

val to_os :
  Config.t ->
  Vhart.t ->
  Mir_rv.Hart.t ->
  policy:Mir_rv.Pmp.entry list ->
  unit
(** Install the virtual S-level state into the physical registers and
    switch the PMP to the OS layout. Does not touch pc/priv. *)

val to_fw :
  Config.t ->
  Vhart.t ->
  Mir_rv.Hart.t ->
  policy:Mir_rv.Pmp.entry list ->
  unit
(** Save the physical S-level state into the virtual copies and
    install well-defined physical values (bare satp, no delegation,
    Miralis's mie) plus the firmware PMP layout. *)

val swap_csrs : Mir_rv.Csr_spec.config -> int list
(** The S-level CSRs exchanged on a world switch for a given
    configuration (includes Sstc and hypervisor CSRs when present) —
    exposed for tests. *)
