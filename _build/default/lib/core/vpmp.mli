(** Virtual PMP multiplexing (paper §4.2, Fig. 5).

    Miralis shares the physical PMP between four clients, in priority
    order:

    + entry 0 — Miralis's own memory (deny),
    + entry 1 — the virtual-device MMIO window (deny, so firmware
      accesses trap for emulation),
    + [policy_pmp_slots] entries for the active isolation policy,
    + one zero-anchor entry (address 0, OFF) so that vPMP 0 in TOR
      mode starts at address 0 as architected,
    + the virtual entries, transformed per world (in vM-mode, unlocked
      entries are granted RWX to mimic M-mode semantics; locked ones
      are installed verbatim),
    + a final catch-all entry: RWX over the whole address space during
      firmware execution (M-mode sees all memory), execute-only when
      MPRV emulation is engaged (so firmware loads/stores trap), and
      disabled during OS execution (S/U default-deny semantics). *)

val virtual_entries : Config.t -> Vhart.t -> Mir_rv.Pmp.entry array
(** The firmware-visible entries decoded from the virtual CSRs. When
    the [Vpmp_overrun] bug is injected, one extra (out-of-bounds)
    entry is included — the defect class of §6.5. *)

val build :
  Config.t ->
  Vhart.t ->
  policy:Mir_rv.Pmp.entry list ->
  Mir_rv.Pmp.entry array
(** The complete physical entry array for the hart's current world. *)

val install :
  Config.t -> Vhart.t -> Mir_rv.Hart.t -> policy:Mir_rv.Pmp.entry list -> unit
(** Write the built entries into the hart's physical pmpcfg/pmpaddr
    registers. *)

val vdev_base : int64
val vdev_size : int64
(** The PMP-protected virtual-device window (the CLINT). *)

val plic_base : int64
val plic_size : int64
(** The PLIC window, PMP-protected when the experimental virtual PLIC
    is enabled. *)
