(** Fast-path offloading (paper §3.4).

    The five trap causes that account for 99.98% of OS→firmware traps
    — reading [time], programming the supervisor timer, IPIs, remote
    fences and misaligned accesses — are software emulations of
    unimplemented-but-standard hardware features, so Miralis can
    handle them directly, bypassing the virtualized firmware entirely.
    Each handler is a few dozen lines, as the paper reports (10–100
    LoC per operation). *)

type result =
  | Not_handled  (** defer to the virtualized firmware *)
  | Resume_at of int64  (** handled; resume the OS at this pc *)

val try_ecall :
  Config.t ->
  Mir_rv.Machine.t ->
  Vclint.t ->
  Vfm_stats.t ->
  Mir_rv.Hart.t ->
  result
(** SBI set_timer / send_ipi / remote fences (and nothing else). *)

val try_illegal :
  Config.t ->
  Mir_rv.Machine.t ->
  Vfm_stats.t ->
  Mir_rv.Hart.t ->
  bits:int64 ->
  result
(** Reads of the [time] CSR on platforms without one. *)

val try_misaligned :
  Config.t ->
  Mir_rv.Machine.t ->
  Vfm_stats.t ->
  Mir_rv.Hart.t ->
  store:bool ->
  result
(** Misaligned load/store emulation on behalf of the OS. *)
