(** Cycle-cost model for VFM operations.

    The real Miralis executes on the hart it virtualizes; in this
    reproduction the VFM logic runs at meta level, so its execution
    time is charged to the simulated hart through this model. The
    per-platform constants are calibrated so the microbenchmark
    results (paper Tables 4 and 5) land in the published range; every
    macrobenchmark figure then *emerges* from the same constants. *)

type t = {
  trap_entry : int;  (** hardware trap + VFM dispatch *)
  trap_exit : int;  (** state restore + mret *)
  emulate_instr : int;  (** decode + one privileged-instruction emulation *)
  world_switch : int;  (** CSR save/install on a world transition *)
  tlb_flush : int;  (** PMP rewrite forces a TLB flush *)
  vclint_access : int;  (** virtual CLINT MMIO emulation *)
  offload_time_read : int;
  offload_set_timer : int;
  offload_ipi : int;
  offload_rfence : int;
  offload_misaligned : int;
}

val default : t
(** Constants in the range measured on the VisionFive 2 (Table 4:
    483-cycle emulated instruction, ~2.7k-cycle world-switch round
    trip). *)

val scale : t -> float -> t
(** Scale every constant (used to derive platform variants). *)
