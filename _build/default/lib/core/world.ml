module Bits = Mir_util.Bits
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Csr_spec = Mir_rv.Csr_spec
module Hart = Mir_rv.Hart
module Ms = Csr_spec.Mstatus

let miralis_mie = Int64.logor Csr_spec.Irq.mtip Csr_spec.Irq.msip

let swap_csrs (cfg : Csr_spec.config) =
  let base =
    [
      Csr_addr.stvec;
      Csr_addr.sscratch;
      Csr_addr.sepc;
      Csr_addr.scause;
      Csr_addr.stval;
      Csr_addr.satp;
      Csr_addr.scounteren;
      Csr_addr.senvcfg;
    ]
  in
  let sstc = if cfg.Csr_spec.has_sstc then [ Csr_addr.stimecmp ] else [] in
  let h =
    if cfg.Csr_spec.has_h then
      [
        Csr_addr.hstatus; Csr_addr.hedeleg; Csr_addr.hideleg; Csr_addr.hie;
        Csr_addr.hcounteren; Csr_addr.hgeie; Csr_addr.htval; Csr_addr.hip;
        Csr_addr.hvip; Csr_addr.htinst; Csr_addr.hgatp; Csr_addr.vsstatus;
        Csr_addr.vsie; Csr_addr.vstvec; Csr_addr.vsscratch; Csr_addr.vsepc;
        Csr_addr.vscause; Csr_addr.vstval; Csr_addr.vsip; Csr_addr.vsatp;
      ]
    else []
  in
  base @ sstc @ h

let charge_switch (config : Config.t) hart =
  Mir_rv.Machine.charge hart
    (config.Config.cost.Cost.world_switch + config.Config.cost.Cost.tlb_flush)

let to_os config (vh : Vhart.t) (hart : Hart.t) ~policy =
  let v = vh.Vhart.csr and p = hart.Hart.csr in
  (* mstatus: install the virtual S-level fields; MPRV must be off
     while the OS runs (it is an M-mode-only facility Miralis
     emulates). *)
  let mask = Ms.sstatus_mask in
  let pm = Csr_file.read_raw p Csr_addr.mstatus in
  let vm = Csr_file.read_raw v Csr_addr.mstatus in
  let pm' =
    Int64.logor (Int64.logand pm (Int64.lognot mask)) (Int64.logand vm mask)
  in
  let pm' = Bits.clear pm' Ms.mprv in
  Csr_file.write_raw p Csr_addr.mstatus pm';
  List.iter
    (fun a -> Csr_file.write_raw p a (Csr_file.read_raw v a))
    (swap_csrs (Csr_file.config v));
  (* Delegation becomes live: non-delegated traps keep coming to
     Miralis, delegated ones go straight to the OS. *)
  Csr_file.write_raw p Csr_addr.medeleg (Csr_file.read_raw v Csr_addr.medeleg);
  Csr_file.write_raw p Csr_addr.mideleg (Csr_file.read_raw v Csr_addr.mideleg);
  (* mie: Miralis's M-level bits plus the virtual S-level bits. *)
  Csr_file.write_raw p Csr_addr.mie
    (Int64.logor miralis_mie
       (Int64.logand (Csr_file.read_raw v Csr_addr.mie) Csr_spec.Irq.s_mask));
  (* mip: restore the OS-visible S-level pending bits (this is how the
     virtualized firmware delivers STIP/SSIP to the OS). *)
  let pmip = Csr_file.read_raw p Csr_addr.mip in
  Csr_file.write_raw p Csr_addr.mip
    (Int64.logor
       (Int64.logand pmip (Int64.lognot Csr_spec.Irq.s_mask))
       (Int64.logand (Csr_file.read_raw v Csr_addr.mip) Csr_spec.Irq.s_mask));
  Csr_file.write_raw p Csr_addr.mcounteren
    (Csr_file.read_raw v Csr_addr.mcounteren);
  Csr_file.write_raw p Csr_addr.menvcfg (Csr_file.read_raw v Csr_addr.menvcfg);
  Vpmp.install config vh hart ~policy;
  charge_switch config hart

let to_fw config (vh : Vhart.t) (hart : Hart.t) ~policy =
  let v = vh.Vhart.csr and p = hart.Hart.csr in
  (* Save the OS's S-level state into the virtual copies. *)
  let mask = Ms.sstatus_mask in
  let pm = Csr_file.read_raw p Csr_addr.mstatus in
  let vm = Csr_file.read_raw v Csr_addr.mstatus in
  Csr_file.write_raw v Csr_addr.mstatus
    (Int64.logor (Int64.logand vm (Int64.lognot mask)) (Int64.logand pm mask));
  List.iter
    (fun a -> Csr_file.write_raw v a (Csr_file.read_raw p a))
    (swap_csrs (Csr_file.config v));
  Csr_file.write_raw v Csr_addr.mie
    (Int64.logor
       (Int64.logand (Csr_file.read_raw v Csr_addr.mie)
          (Int64.lognot Csr_spec.Irq.s_mask))
       (Int64.logand (Csr_file.read_raw p Csr_addr.mie) Csr_spec.Irq.s_mask));
  Csr_file.write_raw v Csr_addr.mip
    (Int64.logor
       (Int64.logand (Csr_file.read_raw v Csr_addr.mip)
          (Int64.lognot Csr_spec.Irq.s_mask))
       (Int64.logand (Csr_file.read_raw p Csr_addr.mip) Csr_spec.Irq.s_mask));
  (* Well-defined physical values while the firmware executes: bare
     addressing, no delegation (every trap must reach Miralis), no
     S-level state leakage. *)
  Csr_file.write_raw p Csr_addr.satp 0L;
  Csr_file.write_raw p Csr_addr.medeleg 0L;
  Csr_file.write_raw p Csr_addr.mideleg 0L;
  Csr_file.write_raw p Csr_addr.mie miralis_mie;
  Csr_file.write_raw p Csr_addr.mip
    (Int64.logand (Csr_file.read_raw p Csr_addr.mip)
       (Int64.lognot Csr_spec.Irq.s_mask));
  let pm = Csr_file.read_raw p Csr_addr.mstatus in
  let pm = Int64.logand pm (Int64.lognot Ms.sstatus_mask) in
  let pm = Bits.clear pm Ms.mprv in
  Csr_file.write_raw p Csr_addr.mstatus pm;
  Vpmp.install config vh hart ~policy;
  charge_switch config hart
