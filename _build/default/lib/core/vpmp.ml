module Pmp = Mir_rv.Pmp
module Csr_file = Mir_rv.Csr_file
module Csr_addr = Mir_rv.Csr_addr
module Hart = Mir_rv.Hart
module Clint = Mir_rv.Clint

let vdev_base = Clint.default_base
let vdev_size = Clint.window_size
let plic_base = Mir_rv.Plic.default_base
let plic_size = Mir_rv.Plic.window_size

let deny_napot ~base ~size =
  {
    Pmp.r = false;
    w = false;
    x = false;
    a = Pmp.Napot;
    l = false;
    addr = Pmp.napot_encode ~base ~size;
  }

let all_memory ~r ~w ~x =
  { Pmp.r; w; x; a = Pmp.Napot; l = false; addr = -1L }

let virtual_entries (config : Config.t) (vh : Vhart.t) =
  let entries = Csr_file.pmp_entries vh.Vhart.csr in
  match config.Config.inject_bug with
  | Some Config.Vpmp_overrun ->
      (* Deliberately expose one entry past the implemented count,
         reading the (nonexistent) next pmpaddr as raw storage. This
         reproduces the out-of-bounds write bug the paper's checker
         found: the extra entry lands on the physical catch-all
         slot. *)
      let n = Array.length entries in
      let extra =
        Pmp.entry_of_cfg_byte 0x1F
          ~addr:
            (Csr_file.read_raw vh.Vhart.csr (Csr_addr.pmpaddr n))
      in
      Array.append entries [| extra |]
  | _ -> entries

let build (config : Config.t) (vh : Vhart.t) ~policy =
  let phys_count =
    (* physical slots available *)
    Config.reserved_pmp_slots config + Config.vpmp_count config
  in
  let fw = vh.Vhart.world = Vhart.Firmware in
  let miralis =
    deny_napot ~base:config.Config.miralis_base ~size:config.Config.miralis_size
  in
  let vdev = deny_napot ~base:vdev_base ~size:vdev_size in
  let vdev_plic =
    if config.Config.virtualize_plic then
      [ deny_napot ~base:plic_base ~size:plic_size ]
    else []
  in
  let policy_entries =
    let l = List.filteri (fun i _ -> i < config.Config.policy_pmp_slots) policy in
    l @ List.init (config.Config.policy_pmp_slots - List.length l)
          (fun _ -> Pmp.off_entry)
  in
  let anchor = { Pmp.off_entry with addr = 0L } in
  let mprv = vh.Vhart.mprv_active in
  let ventries =
    virtual_entries config vh
    |> Array.map (fun (e : Pmp.entry) ->
           if not fw then e
           else if not e.Pmp.l then
             (* In M-mode, unlocked entries do not constrain: grant
                RWX while preserving region geometry (TOR chains use
                the address of OFF entries too). During MPRV
                emulation, loads and stores must trap even inside
                these regions — the access has to be translated on the
                firmware's behalf — so only execute passes through.
                (This was caught by the faithful-execution checker.) *)
             if mprv then { e with Pmp.r = false; w = false; x = true }
             else { e with Pmp.r = true; w = true; x = true }
           else if mprv then
             (* locked entries constrain fetches (real M privilege)
                but data accesses use MPP's privilege and must trap *)
             { e with Pmp.r = false; w = false }
           else e)
    |> Array.to_list
  in
  let catch_all =
    if not fw then Pmp.off_entry
    else if vh.Vhart.mprv_active then all_memory ~r:false ~w:false ~x:true
    else all_memory ~r:true ~w:true ~x:true
  in
  let all =
    (miralis :: vdev :: vdev_plic) @ policy_entries
    @ (anchor :: ventries) @ [ catch_all ]
  in
  (* The Vpmp_overrun bug makes the list one longer than the physical
     budget; clamp like hardware would (the extra entry displaces the
     catch-all — the actual security consequence of the bug). *)
  let all = Array.of_list all in
  if Array.length all > phys_count then Array.sub all 0 phys_count else all

let install config vh (hart : Hart.t) ~policy =
  let entries = build config vh ~policy in
  let csr = hart.Hart.csr in
  (* Serialize into the physical pmpcfg/pmpaddr registers. *)
  Array.iteri
    (fun i (e : Pmp.entry) ->
      Csr_file.write_raw csr (Csr_addr.pmpaddr i) e.Pmp.addr;
      let reg = Csr_addr.pmpcfg (i / 8 * 2) in
      let old = Csr_file.read_raw csr reg in
      let shift = 8 * (i mod 8) in
      Csr_file.write_raw csr reg
        (Mir_util.Bits.insert old ~lo:shift ~hi:(shift + 7)
           ~value:(Int64.of_int (Pmp.cfg_byte_of_entry e))))
    entries
