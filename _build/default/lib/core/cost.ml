type t = {
  trap_entry : int;
  trap_exit : int;
  emulate_instr : int;
  world_switch : int;
  tlb_flush : int;
  vclint_access : int;
  offload_time_read : int;
  offload_set_timer : int;
  offload_ipi : int;
  offload_rfence : int;
  offload_misaligned : int;
}

(* Table 4 (VisionFive 2): emulating "csrw mscratch, x0" costs 483
   cycles including the M-mode round trip; a full world-switch round
   trip costs 2704 cycles. The emulation figure decomposes as
   trap_entry + emulate_instr + trap_exit; the world switch adds the
   CSR install and TLB flush in both directions. *)
let default =
  {
    trap_entry = 140;
    trap_exit = 113;
    emulate_instr = 230;
    world_switch = 620;
    tlb_flush = 180;
    vclint_access = 260;
    offload_time_read = 170;
    offload_set_timer = 260;
    offload_ipi = 320;
    offload_rfence = 360;
    offload_misaligned = 420;
  }

let scale t f =
  let s x = int_of_float (Float.round (float_of_int x *. f)) in
  {
    trap_entry = s t.trap_entry;
    trap_exit = s t.trap_exit;
    emulate_instr = s t.emulate_instr;
    world_switch = s t.world_switch;
    tlb_flush = s t.tlb_flush;
    vclint_access = s t.vclint_access;
    offload_time_read = s t.offload_time_read;
    offload_set_timer = s t.offload_set_timer;
    offload_ipi = s t.offload_ipi;
    offload_rfence = s t.offload_rfence;
    offload_misaligned = s t.offload_misaligned;
  }
