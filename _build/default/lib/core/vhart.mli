(** Per-hart virtual state owned by Miralis.

    The shadow CSR file is the virtual hart the firmware believes it
    is running on: the emulator operates on it, and its contents are
    exchanged with the physical registers on world switches. General
    purpose registers are *not* duplicated — they flow through worlds
    in the physical hart (which is why the sandbox policy scrubs
    them). *)

(** Which world the hart currently executes: the deprivileged firmware
    (vM-mode, physically U) or the OS (direct execution). *)
type world = Firmware | Os

type t = {
  id : int;
  csr : Mir_rv.Csr_file.t;  (** virtual CSRs (reference configuration) *)
  mutable world : world;
  mutable mprv_active : bool;
      (** the MPRV-emulation PMP trick is currently engaged *)
  mutable entered_s : bool;
      (** the firmware performed its first return to S-mode (used by
          the sandbox policy to lock down OS memory) *)
}

val create : Config.t -> id:int -> t
(** Fresh virtual hart. The virtual [mideleg] is initialized with all
    S-level bits hardwired to one (§4.3). *)

val world_name : world -> string

val vmideleg_forced : int64
(** The bits hardwired to 1 in the virtual mideleg. *)
