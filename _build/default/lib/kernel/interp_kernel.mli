(** The S-mode workload kernel: a script interpreter.

    Each hart reads its {!Script} from its per-hart region and
    executes it: compute blocks run as native dependency-chain
    arithmetic (direct execution), the remaining opcodes perform the
    paper's five hot trap operations through real instructions
    (rdtime, SBI ecalls, misaligned accesses, wfi ticks). A supervisor
    trap handler counts STI/SSI deliveries and acknowledges them the
    way Linux does (reprogramming the timer through SBI). *)

val program : Mir_asm.Asm.program
(** Assembles at {!Mir_firmware.Layout.kernel_base}. Entry convention:
    a0 = hartid (the firmware boot protocol). *)

val image : unit -> bytes * (string * int64) list

val entry : int64
