(** U-mode applications run inside enclaves / confidential VMs.

    Self-contained position-dependent programs: they compute a value
    (dependency-chain arithmetic with memory traffic confined to their
    own region) and exit through an ecall. Used by the RV8-style
    Keystone benchmarks (Fig. 14) and the ACE demo. *)

val compute_app :
  base:int64 -> iters:int64 -> Mir_asm.Asm.program
(** Runs [iters] rounds of arithmetic + loads/stores within
    [base, base+4K), then exits via a plain [ecall] with the checksum
    in a0 (the TEE policies interpret any ecall from the guest as
    exit-with-value). *)

val image : base:int64 -> iters:int64 -> bytes
(** Assembled at [base]. *)

val expected_checksum : iters:int64 -> int64
(** The checksum the app computes, for functional verification. *)
