module Machine = Mir_rv.Machine

type op =
  | End
  | Halt
  | Rdtime
  | Set_timer of int64
  | Ipi_self
  | Ipi_all
  | Rfence
  | Misaligned_load
  | Misaligned_store
  | Compute of int64
  | Putchar of char
  | Tick_wfi of int64
  | Loop of int64
  | Enclave_round of int64
  | Cvm_round of int64
  | Load_probe of int64
  | Disk_io of { write : bool; sector : int }
  | Cycle_stamp
  | Uproc_round of int64
  | Enable_paging of int64

let opcode = function
  | End -> (0L, 0L)
  | Halt -> (1L, 0L)
  | Rdtime -> (2L, 0L)
  | Set_timer d -> (3L, d)
  | Ipi_self -> (4L, 0L)
  | Ipi_all -> (5L, 0L)
  | Rfence -> (6L, 0L)
  | Misaligned_load -> (7L, 0L)
  | Misaligned_store -> (8L, 0L)
  | Compute n -> (9L, n)
  | Putchar c -> (10L, Int64.of_int (Char.code c))
  | Tick_wfi d -> (11L, d)
  | Loop n -> (12L, n)
  | Enclave_round i -> (13L, i)
  | Cvm_round i -> (14L, i)
  | Load_probe a -> (15L, a)
  | Disk_io { write; sector } ->
      (16L, Int64.of_int ((sector lsl 1) lor if write then 1 else 0))
  | Cycle_stamp -> (17L, 0L)
  | Uproc_round i -> (18L, i)
  | Enable_paging satp -> (19L, satp)

let region_stride = 0x40000L
let region_base ~hart =
  Int64.add Mir_firmware.Layout.kernel_data
    (Int64.mul (Int64.of_int hart) region_stride)

let script_offset = 0x100L
let counter_sti = 0L
let counter_ssi = 8L
let counter_result = 16L
let counter_probe = 24L
let counter_scratch = 0x40L

let write m ~hart ops =
  let ops =
    match List.rev ops with
    | End :: _ | Halt :: _ -> ops
    | _ -> ops @ [ End ]
  in
  let base = Int64.add (region_base ~hart) script_offset in
  let needed = 16 * List.length ops in
  if Int64.of_int needed >= Int64.sub region_stride script_offset then
    invalid_arg "Script.write: script too large for region";
  List.iteri
    (fun i op ->
      let o, a = opcode op in
      let at = Int64.add base (Int64.of_int (16 * i)) in
      assert (Machine.phys_store m at 8 o);
      assert (Machine.phys_store m (Int64.add at 8L) 8 a))
    ops;
  (* zero the counters *)
  ignore (Machine.phys_store m (Int64.add (region_base ~hart) counter_sti) 8 0L);
  ignore (Machine.phys_store m (Int64.add (region_base ~hart) counter_ssi) 8 0L)

let counter m ~hart off =
  Option.value ~default:0L
    (Machine.phys_load m (Int64.add (region_base ~hart) off) 8)

let stamp_offset = 0x8000L
let dma_offset = 0x20000L

let stamps m ~hart ~count =
  let base = Int64.add (region_base ~hart) stamp_offset in
  Array.init count (fun i ->
      Option.value ~default:0L
        (Machine.phys_load m (Int64.add base (Int64.of_int (8 * i))) 8))

let desc_base = 0x80740000L

let write_descriptor m ~index ~base ~size ~entry =
  let at = Int64.add desc_base (Int64.of_int (32 * index)) in
  assert (Machine.phys_store m at 8 base);
  assert (Machine.phys_store m (Int64.add at 8L) 8 size);
  assert (Machine.phys_store m (Int64.add at 16L) 8 entry)

let sti_count m ~hart = counter m ~hart counter_sti
let ssi_count m ~hart = counter m ~hart counter_ssi
let result_value m ~hart = counter m ~hart counter_result
let probe_value m ~hart = counter m ~hart counter_probe
