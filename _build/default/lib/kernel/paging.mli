(** Sv39 page-table construction for guest kernels.

    Builds identity-mapping gigapage tables in guest memory so the
    S-mode kernel can turn paging on mid-run (the {!Script.Enable_paging}
    opcode). With paging enabled, the firmware's MPRV-based misaligned
    emulation — and Miralis's MPRV-emulation path — must walk these
    real page tables. *)

val root : int64
(** Physical address of the root page table (within the kernel data
    area). *)

val identity_satp : Mir_rv.Machine.t -> int64
(** Write identity gigapage mappings (device space read-write, DRAM
    read-write-execute, both supervisor-only) into guest memory and
    return the satp value that activates them. *)
