module Asm = Mir_asm.Asm
module C = Mir_rv.Csr_addr
module Layout = Mir_firmware.Layout
open Asm.I
open Asm.Reg

let entry = Layout.kernel_base
let kstack_top = 0x80780000L

(* Register conventions inside the kernel:
   s0 = per-hart region base, s1 = script pointer, s2 = loop counter,
   s3 = script start, s4 = hartid. The trap handler relies on s0. *)
let program =
  [
    label "kentry";
    (* a0 = hartid *)
    mv s4 a0;
    la t0 "strap";
    csrw C.stvec t0;
    li sp kstack_top;
    li t0 4096L;
    mul t0 s4 t0;
    sub sp sp t0;
    li s0 Layout.kernel_data;
    li t0 Script.region_stride;
    mul t0 s4 t0;
    add s0 s0 t0;
    addi s3 s0 Script.script_offset;
    mv s1 s3;
    li s2 0L;
    (* s7 = cycle-stamp write pointer *)
    li t0 Script.stamp_offset;
    add s7 s0 t0;
    (* take SSI and STI *)
    li t0 0x22L;
    csrw C.sie t0;
    csrsi C.sstatus 2;
    (* ------------- interpreter loop ------------- *)
    label "kloop";
    ld t0 0L s1;
    ld t1 8L s1;
    addi s1 s1 16L;
    beqz t0 "op_end";
    li t2 1L;
    beq t0 t2 "op_halt";
    li t2 2L;
    beq t0 t2 "op_rdtime";
    li t2 3L;
    beq t0 t2 "op_settimer";
    li t2 4L;
    beq t0 t2 "op_ipi_self";
    li t2 5L;
    beq t0 t2 "op_ipi_all";
    li t2 6L;
    beq t0 t2 "op_rfence";
    li t2 7L;
    beq t0 t2 "op_mis_load";
    li t2 8L;
    beq t0 t2 "op_mis_store";
    li t2 9L;
    beq t0 t2 "op_compute";
    li t2 10L;
    beq t0 t2 "op_putchar";
    li t2 11L;
    beq t0 t2 "op_tick";
    li t2 12L;
    beq t0 t2 "op_loop";
    li t2 13L;
    beq t0 t2 "op_enclave";
    li t2 14L;
    beq t0 t2 "op_cvm";
    li t2 15L;
    beq t0 t2 "op_probe";
    li t2 16L;
    beq t0 t2 "op_disk";
    li t2 17L;
    beq t0 t2 "op_stamp";
    li t2 18L;
    beq t0 t2 "op_uproc";
    li t2 19L;
    beq t0 t2 "op_paging";
    j "op_end";
    (* ------------- opcodes ------------- *)
    label "op_end";
    bnez s4 "op_halt";
    li t0 Layout.syscon;
    li t1 0x5555L;
    sw t1 0L t0;
    label "op_halt";
    wfi;
    j "op_halt";
    label "op_rdtime";
    csrr t2 C.time;
    j "kloop";
    label "op_settimer";
    csrr t2 C.time;
    add a0 t2 t1;
    li a7 Mir_sbi.Sbi.ext_time;
    li a6 0L;
    ecall;
    j "kloop";
    label "op_ipi_self";
    li a0 1L;
    sll a0 a0 s4;
    li a1 0L;
    li a7 Mir_sbi.Sbi.ext_ipi;
    li a6 0L;
    ecall;
    j "kloop";
    label "op_ipi_all";
    li a0 (-1L);
    li a1 (-1L);
    li a7 Mir_sbi.Sbi.ext_ipi;
    li a6 0L;
    ecall;
    j "kloop";
    label "op_rfence";
    li a0 (-1L);
    li a1 (-1L);
    li a7 Mir_sbi.Sbi.ext_rfence;
    li a6 0L;
    ecall;
    j "kloop";
    label "op_mis_load";
    addi t2 s0 (Int64.add Script.counter_scratch 1L);
    ld t3 0L t2;
    j "kloop";
    label "op_mis_store";
    addi t2 s0 (Int64.add Script.counter_scratch 1L);
    li t3 0x123456789ABCDEFL;
    sd t3 0L t2;
    j "kloop";
    label "op_compute";
    (* dependency-chain arithmetic: ~4 instructions per iteration *)
    li t2 0L;
    label "comp_loop";
    addi t2 t2 3L;
    xor t2 t2 t1;
    addi t1 t1 (-1L);
    bnez t1 "comp_loop";
    j "kloop";
    label "op_putchar";
    mv a0 t1;
    li a7 Mir_sbi.Sbi.ext_legacy_console_putchar;
    li a6 0L;
    ecall;
    j "kloop";
    (* set a timer delta ticks out, then sleep until the STI counter
       moves (Linux-style periodic tick) *)
    label "op_tick";
    ld t3 0L s0;
    csrr t2 C.time;
    add a0 t2 t1;
    li a7 Mir_sbi.Sbi.ext_time;
    li a6 0L;
    ecall;
    label "tick_wait";
    ld t4 0L s0;
    bne t4 t3 "kloop";
    wfi;
    j "tick_wait";
    label "op_loop";
    bnez s2 "loop_have";
    mv s2 t1;
    label "loop_have";
    addi s2 s2 (-1L);
    beqz s2 "kloop";
    mv s1 s3;
    j "kloop";
    (* one full enclave lifecycle: create, run until completion
       (resuming after interruptions), destroy *)
    label "op_enclave";
    li t2 Script.desc_base;
    slli t3 t1 5;
    add t2 t2 t3;
    ld a0 0L t2;
    ld a1 8L t2;
    ld a2 16L t2;
    li a7 Mir_sbi.Sbi.ext_keystone;
    li a6 0L;
    ecall;
    mv s6 a1;
    (* eid *)
    label "enc_run";
    mv a0 s6;
    li a7 Mir_sbi.Sbi.ext_keystone;
    li a6 1L;
    ecall;
    li t2 (-4L);
    beq a0 t2 "enc_run";
    sd a1 16L s0;
    (* record the enclave's exit value *)
    mv a0 s6;
    li a7 Mir_sbi.Sbi.ext_keystone;
    li a6 3L;
    ecall;
    j "kloop";
    (* one confidential-VM lifecycle over the COVH interface *)
    label "op_cvm";
    li t2 Script.desc_base;
    slli t3 t1 5;
    add t2 t2 t3;
    ld a0 0L t2;
    ld a1 8L t2;
    ld a2 16L t2;
    li a7 Mir_sbi.Sbi.ext_covh;
    li a6 1L;
    ecall;
    mv s6 a1;
    label "cvm_run";
    mv a0 s6;
    li a7 Mir_sbi.Sbi.ext_covh;
    li a6 2L;
    ecall;
    li t2 (-4L);
    beq a0 t2 "cvm_run";
    sd a1 16L s0;
    mv a0 s6;
    li a7 Mir_sbi.Sbi.ext_covh;
    li a6 3L;
    ecall;
    j "kloop";
    label "op_probe";
    ld t2 0L t1;
    sd t2 24L s0;
    j "kloop";
    label "op_paging";
    csrw C.satp t1;
    sfence_vma;
    j "kloop";
    (* one 512-byte block transfer: program the device, poll, ack *)
    label "op_disk";
    li t2 Mir_rv.Blockdev.default_base;
    srli t3 t1 1;
    sd t3 0L t2;
    (* sector *)
    li t4 Script.dma_offset;
    add t4 t4 s0;
    sd t4 8L t2;
    li t4 512L;
    sd t4 16L t2;
    andi t4 t1 1L;
    addi t4 t4 1L;
    (* cmd: 1 = read, 2 = write *)
    sd t4 24L t2;
    label "disk_poll";
    ld t4 0x20L t2;
    li t5 2L;
    bne t4 t5 "disk_poll";
    sd zero 0x20L t2;
    j "kloop";
    label "op_stamp";
    csrr t2 C.cycle;
    sd t2 0L s7;
    addi s7 s7 8L;
    j "kloop";
    (* run the descriptor's app as a plain U-mode process: the native
       baseline for the enclave benchmarks. The app must preserve the
       s-registers (ours only touch t/a registers). *)
    label "op_uproc";
    li t2 Script.desc_base;
    slli t3 t1 5;
    add t2 t2 t3;
    ld t4 16L t2;
    csrw C.sepc t4;
    li t5 0x100L;
    csrc C.sstatus t5;
    (* SPP = U *)
    la t5 "uproc_done";
    sd t5 32L s0;
    (* continuation for the strap handler *)
    sret;
    label "uproc_done";
    j "kloop";
    (* ------------- S-mode trap handler ------------- *)
    label "strap";
    addi sp sp (-72L);
    sd t0 0L sp;
    sd t1 8L sp;
    sd t2 16L sp;
    sd a0 24L sp;
    sd a6 32L sp;
    sd a7 40L sp;
    sd ra 48L sp;
    sd a1 56L sp;
    sd t3 64L sp;
    csrr t0 C.scause;
    blt t0 zero "strap_intr";
    (* ecall from a U-mode process: record its exit value and return
       to the interpreter continuation in S-mode *)
    li t1 8L;
    beq t0 t1 "strap_uexit";
    (* unexpected synchronous trap in the kernel: report and stop *)
    li t1 Layout.uart;
    li t2 63L;
    (* '?' *)
    sb t2 0L t1;
    li t1 Layout.syscon;
    li t2 0x5555L;
    sw t2 0L t1;
    label "strap_spin";
    j "strap_spin";
    label "strap_uexit";
    sd a0 16L s0;
    (* result slot *)
    ld t1 32L s0;
    csrw C.sepc t1;
    li t1 0x100L;
    csrs C.sstatus t1;
    (* SPP = S *)
    j "strap_out";
    label "strap_intr";
    slli t0 t0 1;
    srli t0 t0 1;
    li t1 5L;
    beq t0 t1 "strap_sti";
    li t1 1L;
    beq t0 t1 "strap_ssi";
    j "strap_out";
    label "strap_sti";
    ld t1 0L s0;
    addi t1 t1 1L;
    sd t1 0L s0;
    (* quiesce the timer until the next explicit set_timer *)
    li a0 (-1L);
    li a7 Mir_sbi.Sbi.ext_time;
    li a6 0L;
    ecall;
    j "strap_out";
    label "strap_ssi";
    ld t1 8L s0;
    addi t1 t1 1L;
    sd t1 8L s0;
    csrci C.sip 2;
    j "strap_out";
    label "strap_out";
    ld t0 0L sp;
    ld t1 8L sp;
    ld t2 16L sp;
    ld a0 24L sp;
    ld a6 32L sp;
    ld a7 40L sp;
    ld ra 48L sp;
    ld a1 56L sp;
    ld t3 64L sp;
    addi sp sp 72L;
    sret;
  ]

let image () = Asm.assemble ~base:entry program
