lib/kernel/script.ml: Array Char Int64 List Mir_firmware Mir_rv Option
