lib/kernel/interp_kernel.ml: Int64 Mir_asm Mir_firmware Mir_rv Mir_sbi Script
