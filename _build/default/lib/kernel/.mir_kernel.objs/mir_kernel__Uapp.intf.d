lib/kernel/uapp.mli: Mir_asm
