lib/kernel/paging.ml: Int64 List Mir_rv
