lib/kernel/interp_kernel.mli: Mir_asm
