lib/kernel/uapp.ml: Int64 Mir_asm
