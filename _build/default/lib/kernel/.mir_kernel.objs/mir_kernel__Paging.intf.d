lib/kernel/paging.mli: Mir_rv
