lib/kernel/script.mli: Mir_rv
