module Machine = Mir_rv.Machine
module Vmem = Mir_rv.Vmem

let root = 0x80730000L

let leaf ~x ppn =
  Int64.logor
    (Int64.shift_left ppn 10)
    (List.fold_left Int64.logor 0L
       ([ Vmem.pte_v; Vmem.pte_r; Vmem.pte_w; Vmem.pte_a; Vmem.pte_d ]
       @ if x then [ Vmem.pte_x ] else []))

let identity_satp m =
  let store at v = assert (Machine.phys_store m at 8 v) in
  (* VPN2 = 0: devices (UART, syscon, CLINT, PLIC), read-write.
     VPN2 = 2: DRAM at 0x8000_0000, read-write-execute.
     Gigapage PPNs must be 1 GiB aligned: 0 and 0x80000. *)
  store root (leaf ~x:false 0L);
  store (Int64.add root 16L) (leaf ~x:true 0x80000L);
  Int64.logor (Int64.shift_left 8L 60) (Int64.shift_right_logical root 12)
