(** Workload scripts for the S-mode interpreter kernel.

    A script is a sequence of (opcode, argument) pairs the guest
    kernel executes. Compute blocks run natively (direct execution —
    where a VFM adds zero overhead); the other opcodes generate
    exactly the five hot trap causes of the paper's Fig. 3. The
    workload models in [lib/workloads] compile to these scripts. *)

type op =
  | End  (** power the machine off (hart 0) / halt (secondaries) *)
  | Halt  (** park this hart (wfi loop) *)
  | Rdtime  (** read the time CSR (traps on VF2-class hardware) *)
  | Set_timer of int64  (** rdtime + SBI set_timer(now + delta ticks) *)
  | Ipi_self  (** SBI send_ipi to self, then acknowledge the SSI *)
  | Ipi_all  (** SBI send_ipi to all harts *)
  | Rfence  (** SBI remote fence.i to all harts *)
  | Misaligned_load  (** one misaligned 8-byte load *)
  | Misaligned_store
  | Compute of int64  (** dependency-chain arithmetic, [n] iterations *)
  | Putchar of char  (** SBI legacy console *)
  | Tick_wfi of int64  (** set_timer(now + delta) then wfi until the STI *)
  | Loop of int64  (** jump back to the script start, [n] times total *)
  | Enclave_round of int64
      (** create/run-to-completion/destroy the Keystone enclave whose
          descriptor (base, size, entry) sits at index [i] *)
  | Cvm_round of int64
      (** promote/run-to-exit/destroy the ACE confidential VM at
          descriptor index [i] *)
  | Load_probe of int64
      (** load 8 bytes from a physical address and record the value —
          used by isolation tests to show reads are blocked *)
  | Disk_io of { write : bool; sector : int }
      (** one 512-byte block-device transfer (program + poll + ack) *)
  | Cycle_stamp
      (** append the cycle counter to the per-hart stamp buffer (used
          to build latency distributions) *)
  | Uproc_round of int64
      (** run the U-mode app at descriptor index [i] as a plain
          process (sret into U, ecall back) — the native baseline the
          enclave benchmarks compare against *)
  | Enable_paging of int64
      (** write the given satp value and fence — turns on Sv39 (see
          {!Paging}) *)

val opcode : op -> int64 * int64
(** Encoding as (op, arg). *)

val region_base : hart:int -> int64
(** Per-hart region: counters at +0, script at +0x100. *)

val region_stride : int64
val script_offset : int64
val counter_sti : int64
(** Offset of the supervisor-timer-interrupt counter. *)

val counter_ssi : int64
val counter_result : int64
(** Offset of the last TEE exit value (enclave/CVM checksum). *)

val counter_probe : int64
(** Offset of the last {!Load_probe} result. *)

val counter_scratch : int64
(** Offset of the misaligned-access scratch buffer. *)

val stamp_offset : int64
(** Offset of the cycle-stamp buffer in the per-hart region. *)

val dma_offset : int64
(** Offset of the disk DMA buffer in the per-hart region. *)

val stamps : Mir_rv.Machine.t -> hart:int -> count:int -> int64 array
(** The first [count] recorded cycle stamps. *)

val write : Mir_rv.Machine.t -> hart:int -> op list -> unit
(** Serialize a script into guest memory. Appends [End] if absent;
    raises [Invalid_argument] if it does not fit the region. *)

val sti_count : Mir_rv.Machine.t -> hart:int -> int64
val ssi_count : Mir_rv.Machine.t -> hart:int -> int64
val result_value : Mir_rv.Machine.t -> hart:int -> int64
val probe_value : Mir_rv.Machine.t -> hart:int -> int64

val desc_base : int64
(** TEE descriptor table (32 bytes per entry: base, size, entry). *)

val write_descriptor :
  Mir_rv.Machine.t -> index:int -> base:int64 -> size:int64 -> entry:int64 ->
  unit
