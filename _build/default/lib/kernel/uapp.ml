module Asm = Mir_asm.Asm
open Asm.I
open Asm.Reg

(* The app: acc = 0; for i = iters..1: acc = (acc*3 + i) xor (acc>>7),
   with a store/load round-trip through its scratch page each
   iteration. *)
let compute_app ~base ~iters =
  let scratch = Int64.add base 0xF00L in
  [
    label "uentry";
    li t0 iters;
    li a0 0L;
    li t3 scratch;
    label "uloop";
    slli t1 a0 1;
    add a0 a0 t1;
    (* acc *= 3 *)
    add a0 a0 t0;
    srai t2 a0 7;
    xor a0 a0 t2;
    sd a0 0L t3;
    ld a0 0L t3;
    addi t0 t0 (-1L);
    bnez t0 "uloop";
    (* exit to the monitor with the checksum in a0 *)
    ecall;
    label "uspin";
    j "uspin";
  ]

let image ~base ~iters =
  let bytes, _ = Asm.assemble ~base (compute_app ~base ~iters) in
  bytes

let expected_checksum ~iters =
  let acc = ref 0L in
  let i = ref iters in
  while !i > 0L do
    acc := Int64.add (Int64.mul !acc 3L) !i;
    acc := Int64.logxor !acc (Int64.shift_right !acc 7);
    i := Int64.sub !i 1L
  done;
  !acc
