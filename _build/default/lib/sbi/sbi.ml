let ext_base = 0x10L
let ext_time = 0x54494D45L (* "TIME" *)
let ext_ipi = 0x735049L (* "sPI" *)
let ext_rfence = 0x52464E43L (* "RFNC" *)
let ext_hsm = 0x48534DL (* "HSM" *)
let ext_srst = 0x53525354L (* "SRST" *)
let ext_dbcn = 0x4442434EL (* "DBCN" *)
let ext_legacy_set_timer = 0x00L
let ext_legacy_console_putchar = 0x01L
let ext_keystone = 0x4B455953L (* "KEYS" *)
let ext_covh = 0x434F5648L (* "COVH" *)
let fid_base_get_spec_version = 0L
let fid_base_get_impl_id = 1L
let fid_base_get_impl_version = 2L
let fid_base_probe_extension = 3L
let fid_base_get_mvendorid = 4L
let fid_base_get_marchid = 5L
let fid_base_get_mimpid = 6L
let fid_time_set_timer = 0L
let fid_ipi_send_ipi = 0L
let fid_rfence_fence_i = 0L
let fid_rfence_sfence_vma = 1L
let fid_rfence_sfence_vma_asid = 2L
let fid_hsm_hart_start = 0L
let fid_hsm_hart_stop = 1L
let fid_hsm_hart_get_status = 2L
let fid_srst_system_reset = 0L
let fid_dbcn_console_write = 0L
let fid_dbcn_console_write_byte = 2L
let success = 0L
let err_failed = -1L
let err_not_supported = -2L
let err_invalid_param = -3L
let err_denied = -4L
let err_invalid_address = -5L
let err_already_available = -6L

(* The argument-register table, transcribed from the SBI spec function
   signatures. The sandbox policy only forwards a0..a(n-1), a6 and a7
   on calls into the virtualized firmware. *)
let arg_count ~ext ~fid =
  let v n = Some n in
  if ext = ext_base then
    if fid >= 0L && fid <= 6L then if fid = 3L then v 1 else v 0 else None
  else if ext = ext_time then (if fid = 0L then v 1 else None)
  else if ext = ext_ipi then (if fid = 0L then v 2 else None)
  else if ext = ext_rfence then begin
    if fid = 0L then v 2 (* fence_i: hart_mask, base *)
    else if fid = 1L then v 4 (* sfence_vma: mask, base, start, size *)
    else if fid = 2L then v 5
    else None
  end
  else if ext = ext_hsm then begin
    if fid = 0L then v 3 (* hart_start: hartid, start_addr, opaque *)
    else if fid = 1L then v 0
    else if fid = 2L then v 1
    else None
  end
  else if ext = ext_srst then (if fid = 0L then v 2 else None)
  else if ext = ext_dbcn then begin
    if fid = 0L then v 3 (* write: num_bytes, base_lo, base_hi *)
    else if fid = 2L then v 1
    else None
  end
  else if ext = ext_legacy_set_timer then v 1
  else if ext = ext_legacy_console_putchar then v 1
  else None

let ext_name ext =
  if ext = ext_base then "base"
  else if ext = ext_time then "time"
  else if ext = ext_ipi then "ipi"
  else if ext = ext_rfence then "rfence"
  else if ext = ext_hsm then "hsm"
  else if ext = ext_srst then "srst"
  else if ext = ext_dbcn then "debug-console"
  else if ext = ext_legacy_set_timer then "legacy-set-timer"
  else if ext = ext_legacy_console_putchar then "legacy-console-putchar"
  else Printf.sprintf "ext-0x%Lx" ext
