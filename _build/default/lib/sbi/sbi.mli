(** The RISC-V Supervisor Binary Interface (SBI) specification as data.

    The OS requests firmware services via [ecall] from S-mode with the
    extension ID in a7, the function ID in a6, arguments in a0..a5 and
    the (error, value) result in a0/a1. The VFM's fast-path offload and
    the firmware sandbox policy both key off these tables; in
    particular the per-call argument-register allow-list that the
    sandbox uses to limit register leakage across worlds is generated
    from {!arg_count}, mirroring the paper's auto-generated
    allow-lists. *)

(* Extension IDs *)
val ext_base : int64
val ext_time : int64
val ext_ipi : int64
val ext_rfence : int64
val ext_hsm : int64
val ext_srst : int64
val ext_dbcn : int64
val ext_legacy_set_timer : int64
val ext_legacy_console_putchar : int64

val ext_keystone : int64
(** The Keystone policy's enclave-lifecycle extension ("KEYS"). *)

val ext_covh : int64
(** The ACE policy's confidential-VM extension ("COVH"). *)

(* Function IDs *)
val fid_base_get_spec_version : int64
val fid_base_get_impl_id : int64
val fid_base_get_impl_version : int64
val fid_base_probe_extension : int64
val fid_base_get_mvendorid : int64
val fid_base_get_marchid : int64
val fid_base_get_mimpid : int64
val fid_time_set_timer : int64
val fid_ipi_send_ipi : int64
val fid_rfence_fence_i : int64
val fid_rfence_sfence_vma : int64
val fid_rfence_sfence_vma_asid : int64
val fid_hsm_hart_start : int64
val fid_hsm_hart_stop : int64
val fid_hsm_hart_get_status : int64
val fid_srst_system_reset : int64
val fid_dbcn_console_write : int64
val fid_dbcn_console_write_byte : int64

(* Error codes *)
val success : int64
val err_failed : int64
val err_not_supported : int64
val err_invalid_param : int64
val err_denied : int64
val err_invalid_address : int64
val err_already_available : int64

val arg_count : ext:int64 -> fid:int64 -> int option
(** Number of argument registers (a0...) the call consumes per the SBI
    spec, or [None] for an unknown call. This is the source of the
    sandbox policy's register allow-list. *)

val ext_name : int64 -> string
(** Human-readable extension name. *)
