lib/sbi/sbi.mli:
