lib/sbi/sbi.ml: Printf
