(** The Keystone policy (paper §5.3): enclaves as a policy module.

    A re-implementation of the Keystone security monitor's core
    enclave lifecycle on top of Miralis: create / run / (implicit
    resume) / exit / destroy, exposed over an SBI extension. Enclave
    memory is protected by *policy* PMP entries that outrank the
    virtual PMPs, so it is shielded from both the OS and the firmware
    — the paper's key delta versus original Keystone, whose monitor
    had to trust the firmware it shared M-mode with.

    Threat model: same as Keystone, except the vendor firmware is as
    untrusted as the OS. Attestation is out of scope (as in the
    paper's port). *)

val ext_keystone : int64
(** SBI extension ID used by the policy ("KEYS"). *)

val fid_create : int64
(** a0 = base, a1 = size, a2 = entry -> eid *)

val fid_run : int64
(** a0 = eid; returns 0 = done, -4 = interrupted *)

val fid_exit : int64
(** from the enclave: a0 = return value *)

val fid_destroy : int64

val err_interrupted : int64

type enclave_state = Created | Running | Interrupted | Destroyed

type enclave = {
  eid : int;
  base : int64;
  size : int64;
  entry : int64;
  mutable state : enclave_state;
}

type state = {
  mutable enclaves : enclave list;
  mutable entries_count : int;  (** lifetime enclave entries (run+resume) *)
  mutable exits_count : int;
}

val pmp_slots : int

val create : unit -> Miralis.Policy.t * state
