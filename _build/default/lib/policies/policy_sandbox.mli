(** The firmware sandbox policy (paper §5.2).

    Confines the virtualized firmware to its own memory range plus an
    explicit MMIO allow-list (the UART for the console), blocking OS
    memory, the PCIe window and every other device. Registers crossing
    the OS→firmware boundary are scrubbed: on an SBI call only the
    argument registers from the spec-derived allow-list flow through;
    on everything else (interrupt injection) all registers are hidden
    and restored on return. Misaligned accesses are emulated directly
    in the policy (as the paper reports doing), so the firmware never
    needs OS register state for them.

    Until the firmware's first transition to S-mode it may access all
    memory (it loads the bootloader); at that first world switch the
    policy locks the sandbox and records a hash of the initial S-mode
    image. An illegal access stops the machine with a violation. *)

type state = {
  mutable locked : bool;  (** first S-mode entry happened *)
  mutable boot_image_hash : int64;
      (** FNV-1a of the kernel region at lock time *)
  mutable scrubbed : bool;
  mutable violations : int;
}

val pmp_slots : int
(** Physical PMP entries this policy claims (pass to
    {!Miralis.Config.make} as [policy_pmp_slots]). *)

val create :
  ?allow_uart:bool ->
  ?kernel_region:int64 * int64 ->
  unit ->
  Miralis.Policy.t * state
(** [kernel_region] is the (base, length) hashed at lock time;
    defaults to the standard kernel load area. *)

val hash_region : Mir_rv.Machine.t -> base:int64 -> len:int -> int64
(** The FNV-1a hash the policy uses (exposed for attestation checks in
    tests and examples). *)
