lib/policies/policy_keystone.mli: Miralis
