lib/policies/policy_sandbox.mli: Mir_rv Miralis
