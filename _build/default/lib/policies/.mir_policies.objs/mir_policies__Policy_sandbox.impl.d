lib/policies/policy_sandbox.ml: Array Hashtbl Int64 List Mir_firmware Mir_rv Mir_sbi Mir_util Miralis Printf
