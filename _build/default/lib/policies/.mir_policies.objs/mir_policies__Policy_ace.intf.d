lib/policies/policy_ace.mli: Miralis
