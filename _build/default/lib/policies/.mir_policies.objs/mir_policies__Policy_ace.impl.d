lib/policies/policy_ace.ml: Array Hashtbl Int64 List Mir_rv Mir_sbi Mir_util Miralis
