lib/policies/policy_keystone.ml: Array Hashtbl Int64 List Mir_rv Mir_sbi Mir_util Miralis
