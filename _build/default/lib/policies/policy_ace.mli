(** The ACE policy (paper §5.4): confidential VMs as a policy module.

    A port of the ACE security monitor's core protocol onto Miralis,
    following the paper's co-location approach: the policy manages the
    confidential-VM lifecycle and context switches itself, yielding to
    Miralis only when the firmware is involved. The host hypervisor
    stays responsible for scheduling (run_vcpu / exits), but has no
    access to CVM memory — and, unlike stock ACE, neither does the
    vendor firmware, which Miralis deprivileges underneath.

    Each CVM carries a shadow copy of the supervisor CSR set (the
    VS-context): on entry the host's S-level CSRs are swapped out and
    the CVM's swapped in, mirroring how ACE shadows VS-mode state.
    Exits return an exit reason to the host; interrupted CVMs are
    resumable. Destroyed CVM memory is scrubbed before release. *)

val ext_covh : int64
(** SBI extension ID ("COVH"). *)

val fid_tsm_info : int64
val fid_promote : int64
(** a0 = base, a1 = size, a2 = entry -> cvm id *)

val fid_run_vcpu : int64
(** a0 = id -> (0, exit_value) | (-4, 0) on irq *)

val fid_destroy : int64

type cvm_state = Ready | Running | Interrupted | Destroyed

type cvm = {
  id : int;
  base : int64;
  size : int64;
  entry : int64;
  mutable state : cvm_state;
}

type state = {
  mutable cvms : cvm list;
  mutable vcpu_entries : int;
  mutable vm_exits : int;
}

val pmp_slots : int
val create : unit -> Miralis.Policy.t * state
