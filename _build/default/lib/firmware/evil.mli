(** Malicious firmware images for exercising the isolation policies.

    Each variant boots normally (loads the S-mode kernel, so the
    sandbox locks down) and then, on the first SBI call from the OS,
    mounts its attack from vM-mode. Under the threat model of §2.3 the
    attacker controls the firmware entirely; the sandbox policy must
    stop every one of these with a violation rather than let it read
    or corrupt OS, enclave or Miralis state. *)

type attack =
  | Read_os_memory  (** load from the kernel image *)
  | Write_os_memory  (** store over the kernel image *)
  | Read_miralis_memory  (** load from Miralis's reserved range *)
  | Pmp_escape
      (** reprogram vPMP 0 to allow everything, then read OS memory —
          must still be blocked because policy PMPs outrank vPMPs *)
  | Dma_attack
      (** program the DMA block device to exfiltrate OS memory *)

val attack_name : attack -> string
val all_attacks : attack list

val image :
  attack -> nharts:int -> kernel_entry:int64 -> bytes * (string * int64) list
(** Assembled at {!Layout.fw_base}; drop-in replacement for MiniSBI in
    {!Mir_harness.Setup.create}'s [?firmware]. If the attack succeeds
    the firmware prints ['X'] on the UART — tests assert it never
    appears. *)
