module Asm = Mir_asm.Asm
module C = Mir_rv.Csr_addr
open Asm.I
open Asm.Reg

let csrw_loop ~nharts ~kernel_entry =
  ignore nharts;
  ignore kernel_entry;
  Asm.assemble ~base:Layout.fw_base
    [
      label "entry";
      label "loop";
      csrw C.mscratch zero;
      csrw C.mscratch zero;
      csrw C.mscratch zero;
      csrw C.mscratch zero;
      j "loop";
    ]

let null_handler ~nharts ~kernel_entry =
  ignore nharts;
  Asm.assemble ~base:Layout.fw_base
    [
      label "entry";
      la t0 "mtrap";
      csrw C.mtvec t0;
      li t0 (-1L);
      csrw (C.pmpaddr 0) t0;
      li t0 0x1FL;
      csrw (C.pmpcfg 0) t0;
      li t0 0xB109L;
      csrw C.medeleg t0;
      li t0 0x222L;
      csrw C.mideleg t0;
      li t0 (-1L);
      csrw C.mcounteren t0;
      csrw C.scounteren t0;
      li t0 kernel_entry;
      csrw C.mepc t0;
      li t1 0x1800L;
      csrc C.mstatus t1;
      li t1 0x800L;
      csrs C.mstatus t1;
      csrr a0 C.mhartid;
      li a1 0L;
      mret;
      (* the shortest possible handler: skip the ecall, return
         (t0 is clobbered; the measurement loop does not rely on it) *)
      label "mtrap";
      csrr t0 C.mepc;
      addi t0 t0 4L;
      csrw C.mepc t0;
      mret;
    ]
