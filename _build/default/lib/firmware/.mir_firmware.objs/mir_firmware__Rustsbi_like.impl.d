lib/firmware/rustsbi_like.ml: Int64 Layout List Mir_asm Mir_rv Mir_sbi Option
