lib/firmware/star64.ml: Bytes Minisbi
