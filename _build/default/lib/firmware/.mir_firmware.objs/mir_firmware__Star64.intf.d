lib/firmware/star64.mli:
