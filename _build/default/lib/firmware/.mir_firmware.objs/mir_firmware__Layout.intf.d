lib/firmware/layout.mli:
