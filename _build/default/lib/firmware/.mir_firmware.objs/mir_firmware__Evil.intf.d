lib/firmware/evil.mli:
