lib/firmware/zephyr_like.ml: Char Int64 Layout Mir_asm Mir_rv String
