lib/firmware/minisbi.ml: Int64 Layout List Mir_asm Mir_rv Mir_sbi
