lib/firmware/rustsbi_like.mli: Mir_asm
