lib/firmware/minisbi.mli: Mir_asm
