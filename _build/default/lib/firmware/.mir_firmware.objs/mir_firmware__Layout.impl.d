lib/firmware/layout.ml: Int64 Mir_rv
