lib/firmware/zephyr_like.mli:
