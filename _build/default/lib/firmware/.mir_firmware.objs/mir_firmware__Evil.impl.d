lib/firmware/evil.ml: Char Int64 Layout Mir_asm Mir_rv
