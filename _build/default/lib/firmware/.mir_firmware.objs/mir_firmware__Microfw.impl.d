lib/firmware/microfw.ml: Layout Mir_asm Mir_rv
