lib/firmware/microfw.mli:
