(** Minimal firmware images for the Table 4 microbenchmarks.

    [csrw_loop] executes "csrw mscratch, x0" forever in (v)M-mode —
    under Miralis every iteration is one trap + one emulation, giving
    the per-instruction emulation cost. [null_handler] boots the
    kernel and services every trap with the shortest possible handler
    (advance mepc, mret), giving the pure world-switch round-trip
    cost for an OS ecall. *)

val csrw_loop : nharts:int -> kernel_entry:int64 -> bytes * (string * int64) list
val null_handler : nharts:int -> kernel_entry:int64 -> bytes * (string * int64) list
