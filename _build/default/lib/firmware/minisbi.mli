(** MiniSBI: an OpenSBI-like M-mode firmware, as a real instruction
    stream.

    Implements the services the paper's trap study identifies as the
    hot OS↔firmware interface (Fig. 3): supervisor timer programming,
    IPIs, remote fences, misaligned load/store emulation (via
    mstatus.MPRV, which exercises Miralis's MPRV-emulation PMP trick),
    and emulation of reads of the unimplemented [time] CSR. It also
    provides the SBI base/probe, debug console, legacy console and
    system-reset extensions.

    The same image boots natively in M-mode (baseline) or deprivileged
    in vM-mode under Miralis — the paper's "unmodified vendor
    firmware" requirement. *)

val program : nharts:int -> kernel_entry:int64 -> Mir_asm.Asm.program
(** The firmware source (assembles at {!Layout.fw_base}). Trap frames
    and stacks live in the firmware data region per {!Layout}. *)

val image : nharts:int -> kernel_entry:int64 -> bytes * (string * int64) list
(** Assembled at {!Layout.fw_base}. *)

val entry : int64
(** Entry point (= {!Layout.fw_base}). *)
