(** A second, independently structured SBI firmware (the paper's
    RustSBI experiment: an SBI implementation written from scratch).

    Functionally equivalent to {!Minisbi} for the services the kernel
    uses, but organized differently: a computed jump table for trap
    dispatch, per-hart state blocks addressed off [tp], and callee
    style register conventions — so virtualizing it exercises
    different instruction sequences than MiniSBI does. *)

val program : nharts:int -> kernel_entry:int64 -> Mir_asm.Asm.program
val image : nharts:int -> kernel_entry:int64 -> bytes * (string * int64) list
