(* The Star64's vendor firmware is OpenSBI-based, like the VisionFive
   2's (both are JH7110 boards); the dump is byte-identical modulo the
   vendor build. We dump MiniSBI and discard all metadata. *)
let flash_dump ~nharts ~kernel_entry =
  let bytes, _labels = Minisbi.image ~nharts ~kernel_entry in
  Bytes.copy bytes

let size_kib ~nharts ~kernel_entry =
  (Bytes.length (flash_dump ~nharts ~kernel_entry) + 1023) / 1024

let image ~nharts ~kernel_entry = (flash_dump ~nharts ~kernel_entry, [])
