module Asm = Mir_asm.Asm
module C = Mir_rv.Csr_addr
open Asm.I
open Asm.Reg

(* Per-hart state block, addressed off tp: 16 saved registers. *)
let state_base = Int64.add Layout.fw_data 0x8000L
let state_stride = 512L

(* Registers this firmware saves on trap entry (it only clobbers
   these, unlike MiniSBI's full frame). Offsets into the tp block. *)
let saved = [ (t0, 0L); (t1, 8L); (t2, 16L); (t3, 24L); (t4, 32L);
              (t5, 40L); (t6, 48L); (a0, 56L); (a1, 64L); (a2, 72L);
              (a6, 80L); (a7, 88L); (s1, 96L); (ra, 104L) ]

let save_block = List.map (fun (r, off) -> sd r off tp) saved
let restore_block = List.map (fun (r, off) -> ld r off tp) saved

let clint_msip = Layout.clint
let clint_mtimecmp = Int64.add Layout.clint 0x4000L
let clint_mtime = Int64.add Layout.clint 0xBFF8L

let program ~nharts ~kernel_entry =
  [
    label "entry";
    (* mscratch = per-hart state block (the trap entry swaps it in) *)
    csrr a0 C.mhartid;
    li t1 state_stride;
    mul t1 t1 a0;
    li t0 state_base;
    add t0 t0 t1;
    csrw C.mscratch t0;
    la t0 "trap_entry";
    csrw C.mtvec t0;
    (* jump-table dispatch needs no stack: this firmware runs
       stackless, RustSBI-style *)
    li t0 0xB109L;
    csrw C.medeleg t0;
    li t0 0x222L;
    csrw C.mideleg t0;
    li t0 0x8L;
    csrw C.mie t0;
    li t0 (-1L);
    csrw C.mcounteren t0;
    csrw C.scounteren t0;
    li t0 (-1L);
    csrw (C.pmpaddr 0) t0;
    li t0 0x1FL;
    csrw (C.pmpcfg 0) t0;
    li t0 kernel_entry;
    csrw C.mepc t0;
    li t1 0x1800L;
    csrc C.mstatus t1;
    li t1 0x800L;
    csrs C.mstatus t1;
    csrr a0 C.mhartid;
    li a1 0L;
    mret;
    (* ---------------- trap entry: computed dispatch -------------- *)
    (* mscratch holds the per-hart state block (set at boot); the trap
       entry swaps it with tp, MiniSBI-style but around tp. *)
    label "trap_entry";
    Asm.Ins (Mir_rv.Instr.Csr { op = Mir_rv.Instr.Csrrw; rd = Asm.Reg.tp;
                                src = Mir_rv.Instr.Reg Asm.Reg.tp;
                                csr = C.mscratch });
  ]
  @ save_block
  @ [
      (* stash the guest tp (now in mscratch) and point mscratch back
         at the block for the next trap *)
      csrr t0 C.mscratch;
      sd t0 112L tp;
      csrw C.mscratch tp;
      csrr s1 C.mcause;
      blt s1 zero "irq";
      (* exceptions: dispatch through the jump table *)
      li t0 16L;
      bge s1 t0 "bad";
      la t0 "exc_table";
      slli t1 s1 3;
      add t0 t0 t1;
      ld t1 0L t0;
      jr t1;
      (* ---------------- interrupt handling ---------------- *)
      label "irq";
      slli s1 s1 1;
      srli s1 s1 1;
      li t0 7L;
      beq s1 t0 "irq_timer";
      li t0 3L;
      beq s1 t0 "irq_soft";
      j "out";
      label "irq_timer";
      li t0 0x20L;
      csrs C.mip t0;
      li t0 0x80L;
      csrc C.mie t0;
      j "out";
      label "irq_soft";
      csrr t0 C.mhartid;
      slli t0 t0 2;
      li t1 clint_msip;
      add t1 t1 t0;
      sw zero 0L t1;
      fence_i;
      li t0 0x2L;
      csrs C.mip t0;
      j "out";
      (* ---------------- exception handlers ---------------- *)
      (* cause 9: SBI call *)
      label "exc_ecall_s";
      csrr t0 C.mepc;
      addi t0 t0 4L;
      csrw C.mepc t0;
      (* a-registers are live in the block; reload the call args *)
      ld a0 56L tp;
      ld a1 64L tp;
      ld a6 80L tp;
      ld a7 88L tp;
      li t0 Mir_sbi.Sbi.ext_time;
      beq a7 t0 "sbi_timer";
      beqz a7 "sbi_timer";
      li t0 Mir_sbi.Sbi.ext_ipi;
      beq a7 t0 "sbi_send_ipi";
      li t0 Mir_sbi.Sbi.ext_rfence;
      beq a7 t0 "sbi_remote_fence";
      li t0 Mir_sbi.Sbi.ext_base;
      beq a7 t0 "sbi_base_ext";
      li t0 Mir_sbi.Sbi.ext_dbcn;
      beq a7 t0 "sbi_console";
      li t0 1L;
      beq a7 t0 "sbi_console_legacy";
      li t0 Mir_sbi.Sbi.ext_srst;
      beq a7 t0 "sbi_reset";
      li t0 (-2L);
      sd t0 56L tp;
      sd zero 64L tp;
      j "out";
      label "sbi_timer";
      csrr t0 C.mhartid;
      slli t0 t0 3;
      li t1 clint_mtimecmp;
      add t1 t1 t0;
      sd a0 0L t1;
      li t0 0x20L;
      csrc C.mip t0;
      li t0 0x80L;
      csrs C.mie t0;
      j "ok";
      label "sbi_send_ipi";
      (* mask in a0, base in a1 *)
      li t0 (-1L);
      bne a1 t0 "ipi_rel";
      li a0 (-1L);
      li a1 0L;
      label "ipi_rel";
      sll a0 a0 a1;
      li t1 0L;
      li t2 (Int64.of_int nharts);
      label "ipi_scan";
      bge t1 t2 "ok";
      srl t0 a0 t1;
      andi t0 t0 1L;
      beqz t0 "ipi_skip";
      slli t3 t1 2;
      li t4 clint_msip;
      add t4 t4 t3;
      li t5 1L;
      sw t5 0L t4;
      label "ipi_skip";
      addi t1 t1 1L;
      j "ipi_scan";
      label "sbi_remote_fence";
      fence_i;
      j "sbi_send_ipi";
      label "sbi_base_ext";
      li t0 3L;
      bne a6 t0 "base_z";
      li t0 1L;
      sd t0 64L tp;
      sd zero 56L tp;
      j "out";
      label "base_z";
      sd zero 56L tp;
      sd zero 64L tp;
      j "out";
      label "sbi_console";
      li t0 2L;
      bne a6 t0 "base_z";
      label "sbi_console_legacy";
      li t1 Layout.uart;
      andi t0 a0 0xFFL;
      sb t0 0L t1;
      j "ok";
      label "sbi_reset";
      li t0 Layout.syscon;
      li t1 0x5555L;
      sw t1 0L t0;
      j "ok";
      label "ok";
      sd zero 56L tp;
      sd zero 64L tp;
      j "out";
      (* cause 2: illegal instruction — rdtime emulation *)
      label "exc_illegal";
      csrr t0 C.mtval;
      srli t1 t0 20;
      li t2 0xC01L;
      bne t1 t2 "bad";
      srli t1 t0 12;
      andi t1 t1 7L;
      li t2 2L;
      bne t1 t2 "bad";
      (* rd: write the value into the saved block if the register is
         one we saved, else ignore (the kernel only uses t-regs) *)
      srli s1 t0 7;
      andi s1 s1 31L;
      li t1 clint_mtime;
      ld t2 0L t1;
      (* map rd -> block offset via the table at rd_map *)
      la t1 "rd_map";
      slli t3 s1 3;
      add t1 t1 t3;
      ld t3 0L t1;
      blt t3 zero "illegal_done";
      (* unsupported rd: drop *)
      add t3 t3 tp;
      sd t2 0L t3;
      label "illegal_done";
      csrr t0 C.mepc;
      addi t0 t0 4L;
      csrw C.mepc t0;
      j "out";
      (* cause 4/6: misaligned — direct byte copy (this firmware
         requires bare addressing, which our kernels use; MPRV is the
         MiniSBI strategy) *)
      label "exc_mis_load";
      csrr s1 C.mtval;
      csrr t0 C.mepc;
      lwu t1 0L t0;
      (* fetch the faulting instruction *)
      srli t2 t1 12;
      andi t2 t2 7L;
      (* size = 1 << (funct3 & 3) *)
      andi t3 t2 3L;
      li t4 1L;
      sll t4 t4 t3;
      (* read the bytes *)
      li t5 0L;
      (* value *)
      addi t6 t4 (-1L);
      label "ml_loop";
      blt t6 zero "ml_done";
      add t0 s1 t6;
      lbu t0 0L t0;
      slli t5 t5 8;
      or_ t5 t5 t0;
      addi t6 t6 (-1L);
      j "ml_loop";
      label "ml_done";
      (* sign-extend unless funct3 >= 4 *)
      li t0 4L;
      bge t2 t0 "ml_store_rd";
      li t0 64L;
      slli t6 t4 3;
      sub t0 t0 t6;
      sll t5 t5 t0;
      sra t5 t5 t0;
      label "ml_store_rd";
      csrr t0 C.mepc;
      lwu t1 0L t0;
      srli t1 t1 7;
      andi t1 t1 31L;
      la t0 "rd_map";
      slli t6 t1 3;
      add t0 t0 t6;
      ld t6 0L t0;
      blt t6 zero "ml_fin";
      add t6 t6 tp;
      sd t5 0L t6;
      label "ml_fin";
      csrr t0 C.mepc;
      addi t0 t0 4L;
      csrw C.mepc t0;
      j "out";
      label "exc_mis_store";
      csrr s1 C.mtval;
      csrr t0 C.mepc;
      lwu t1 0L t0;
      (* rs2 = bits 24:20; fetch its value from the block *)
      srli t2 t1 20;
      andi t2 t2 31L;
      la t3 "rd_map";
      slli t4 t2 3;
      add t3 t3 t4;
      ld t4 0L t3;
      li t5 0L;
      blt t4 zero "ms_sized";
      add t4 t4 tp;
      ld t5 0L t4;
      label "ms_sized";
      srli t2 t1 12;
      andi t2 t2 3L;
      li t4 1L;
      sll t4 t4 t2;
      li t6 0L;
      label "ms_loop";
      bge t6 t4 "ms_done";
      add t0 s1 t6;
      andi t2 t5 0xFFL;
      sb t2 0L t0;
      srli t5 t5 8;
      addi t6 t6 1L;
      j "ms_loop";
      label "ms_done";
      csrr t0 C.mepc;
      addi t0 t0 4L;
      csrw C.mepc t0;
      j "out";
      label "bad";
      li t0 Layout.uart;
      li t1 33L;
      sb t1 0L t0;
      li t0 Layout.syscon;
      li t1 0x5555L;
      sw t1 0L t0;
      label "dead";
      j "dead";
      (* ---------------- return ---------------- *)
      label "out";
    ]
  @ restore_block
  @ [ ld tp 112L tp; mret ]
  @ [
      (* exception dispatch table, indexed by mcause *)
      Asm.Align 8;
      label "exc_table";
      Asm.Word_label "bad"; (* 0 instr misaligned (delegated) *)
      Asm.Word_label "bad"; (* 1 *)
      Asm.Word_label "exc_illegal"; (* 2 *)
      Asm.Word_label "bad"; (* 3 *)
      Asm.Word_label "exc_mis_load"; (* 4 *)
      Asm.Word_label "bad"; (* 5 *)
      Asm.Word_label "exc_mis_store"; (* 6 *)
      Asm.Word_label "bad"; (* 7 *)
      Asm.Word_label "bad"; (* 8 *)
      Asm.Word_label "exc_ecall_s"; (* 9 *)
      Asm.Word_label "bad"; (* 10 *)
      Asm.Word_label "bad"; (* 11 *)
      Asm.Word_label "bad"; (* 12 *)
      Asm.Word_label "bad"; (* 13 *)
      Asm.Word_label "bad"; (* 14 *)
      Asm.Word_label "bad"; (* 15 *)
      (* register -> saved-block-offset map; -1 = not saved *)
      label "rd_map";
    ]
  @ List.init 32 (fun r ->
        let off =
          List.assoc_opt r
            (List.map (fun (reg, off) -> (reg, off)) saved)
        in
        Asm.Word64 (Option.value off ~default:(-1L)))

let image ~nharts ~kernel_entry =
  Asm.assemble ~base:Layout.fw_base (program ~nharts ~kernel_entry)
